// Integration: parameterized validation of Eq. 2 across the full mode/
// distance/granularity grid (paper Sec. IV-C and Fig. 7).
#include <gtest/gtest.h>

#include <tuple>

#include <sstream>
#include "core/experiment.hpp"
#include "core/speed_model.hpp"
#include "workload/delay.hpp"

namespace iw::core {
namespace {

using workload::Boundary;
using workload::Direction;

struct SpeedCase {
  Direction direction;
  std::int64_t msg_bytes;  // selects eager vs rendezvous
  int distance;
  double texec_ms;
};

class SpeedEq2 : public ::testing::TestWithParam<SpeedCase> {};

TEST_P(SpeedEq2, MeasuredSpeedWithinThreePercentOfEq2) {
  const SpeedCase param = GetParam();

  workload::RingSpec ring;
  ring.ranks = 24;
  ring.direction = param.direction;
  ring.boundary = Boundary::open;
  ring.distance = param.distance;
  ring.msg_bytes = param.msg_bytes;
  ring.steps = 24;
  ring.texec = milliseconds(param.texec_ms);
  ring.noisy = false;

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring);
  // Delay long enough to survive the whole chain at every speed.
  exp.delays = workload::single_delay(8, 0, milliseconds(6 * param.texec_ms));
  exp.min_idle = milliseconds(param.texec_ms / 4.0);

  const auto result = run_wave_experiment(exp);
  ASSERT_GE(result.up.front_fit.n, 3u) << "wave did not propagate";
  ASSERT_GT(result.up.speed_ranks_per_sec, 0.0);

  // The sigma*d structure: speed in units of 1/cycle must equal sigma*d.
  // For sigma*d > 1 the front is a staircase (sigma*d ranks share each
  // arrival step), so the least-squares slope carries a granularity error
  // of a few percent — scale the tolerance accordingly.
  const int sigma = sigma_factor(param.direction, result.protocol);
  const int hops_per_step = sigma * param.distance;
  const double tol = 0.03 + 0.015 * (hops_per_step - 1);
  EXPECT_NEAR(result.up.speed_ranks_per_sec / result.predicted_speed, 1.0,
              tol);
  const double hops_per_cycle =
      result.up.speed_ranks_per_sec * result.measured_cycle.sec();
  EXPECT_NEAR(hops_per_cycle, hops_per_step, tol * hops_per_step);
}

constexpr std::int64_t kSmall = 16384;
constexpr std::int64_t kLarge = 174080;

INSTANTIATE_TEST_SUITE_P(
    ModeDistanceGrid, SpeedEq2,
    ::testing::Values(
        // d = 1, both protocols, both directions (Fig. 5 grid).
        SpeedCase{Direction::unidirectional, kSmall, 1, 3.0},
        SpeedCase{Direction::bidirectional, kSmall, 1, 3.0},
        SpeedCase{Direction::unidirectional, kLarge, 1, 3.0},
        SpeedCase{Direction::bidirectional, kLarge, 1, 3.0},
        // d = 2: Fig. 7 (rendezvous uni vs bidi) plus eager cross-checks.
        SpeedCase{Direction::unidirectional, kLarge, 2, 3.0},
        SpeedCase{Direction::bidirectional, kLarge, 2, 3.0},
        SpeedCase{Direction::unidirectional, kSmall, 2, 3.0},
        SpeedCase{Direction::bidirectional, kSmall, 2, 3.0},
        // d = 3 extends the model beyond the paper's figures.
        SpeedCase{Direction::bidirectional, kLarge, 3, 3.0},
        SpeedCase{Direction::unidirectional, kSmall, 3, 3.0},
        // Different execution granularities.
        SpeedCase{Direction::unidirectional, kSmall, 1, 1.0},
        SpeedCase{Direction::bidirectional, kLarge, 1, 1.0},
        SpeedCase{Direction::unidirectional, kSmall, 1, 10.0},
        SpeedCase{Direction::bidirectional, kLarge, 2, 6.0}),
    [](const ::testing::TestParamInfo<SpeedCase>& param_info) {
      const auto& p = param_info.param;
      std::ostringstream name;
      name << (p.direction == Direction::unidirectional ? "uni" : "bidi")
           << (p.msg_bytes > 131072 ? "Rdv" : "Eager") << "D" << p.distance
           << "T" << static_cast<int>(p.texec_ms * 10);
      return name.str();
    });

TEST(SpeedEq2Extras, Fig7DistanceTwoDoubling) {
  // Fig. 7: with d = 2 rendezvous, bidirectional communication doubles the
  // propagation speed over unidirectional.
  auto make = [](Direction dir) {
    workload::RingSpec ring;
    ring.ranks = 24;
    ring.direction = dir;
    ring.boundary = Boundary::open;
    ring.distance = 2;
    ring.msg_bytes = 174080;
    ring.steps = 20;
    ring.texec = milliseconds(3.0);
    ring.noisy = false;
    WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = cluster_for_ring(ring);
    exp.delays = workload::single_delay(10, 0, milliseconds(18.0));
    return run_wave_experiment(exp);
  };
  const auto uni = make(Direction::unidirectional);
  const auto bidi = make(Direction::bidirectional);
  ASSERT_GT(uni.up.speed_ranks_per_sec, 0.0);
  EXPECT_NEAR(bidi.up.speed_ranks_per_sec / uni.up.speed_ranks_per_sec, 2.0,
              0.1);
  // And both directions of each case are symmetric.
  EXPECT_NEAR(bidi.up.speed_ranks_per_sec / bidi.down.speed_ranks_per_sec,
              1.0, 0.1);
}

TEST(SpeedEq2Extras, EqualFootingOfExecAndComm) {
  // Eq. 2 treats Texec and Tcomm symmetrically: doubling Texec should slow
  // the wave accordingly.
  auto speed_at = [](double texec_ms) {
    workload::RingSpec ring;
    ring.ranks = 20;
    ring.texec = milliseconds(texec_ms);
    ring.steps = 24;
    ring.noisy = false;
    WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = cluster_for_ring(ring);
    exp.delays =
        workload::single_delay(4, 0, milliseconds(5 * texec_ms));
    exp.min_idle = milliseconds(texec_ms / 4.0);
    return run_wave_experiment(exp).up.speed_ranks_per_sec;
  };
  const double v3 = speed_at(3.0);
  const double v6 = speed_at(6.0);
  EXPECT_NEAR(v3 / v6, 2.0, 0.05);
}

}  // namespace
}  // namespace iw::core
