// Integration: interacting idle waves (paper Sec. IV-B, Fig. 6) —
// cancellation is what rules out a linear wave equation.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/delay.hpp"

namespace iw::core {
namespace {

/// Fig. 6 setup: 100 ranks, 10 per socket, eager bidirectional periodic.
WaveExperiment fig6_experiment() {
  workload::RingSpec ring;
  ring.ranks = 100;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 16384;
  ring.steps = 20;
  ring.texec = milliseconds(3.0);
  ring.noisy = false;

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring, /*ppn1=*/false, /*per_socket=*/10);
  return exp;
}

Duration ideal_runtime(const WaveExperiment& exp, Duration delay) {
  return exp.ring.texec * exp.ring.steps + delay;
}

TEST(WaveInteraction, EqualDelaysCancelCompletely) {
  // Fig. 6(a): identical delays at local rank 5 of every socket. Waves
  // meet after five hops and annihilate: total excess = one delay.
  WaveExperiment exp = fig6_experiment();
  Rng rng(1);
  exp.delays = workload::per_socket_delays(
      10, 10, 5, 0, milliseconds(9.0), workload::MultiDelayMode::equal, rng);
  const auto result = run_wave_experiment(exp);

  const Duration makespan = result.trace.makespan() - SimTime::zero();
  EXPECT_NEAR((makespan - ideal_runtime(exp, milliseconds(9.0))).ms(), 0.0,
              1.0);

  // Cancellation point: the midpoint rank between two injection sites
  // (5 hops away) idles for at most one delay-worth; ranks beyond the
  // meeting point see no wave at all in later steps. Check a far rank's
  // total wait does not exceed ~ the single delay.
  for (int r = 0; r < 100; ++r)
    EXPECT_LT(result.trace.total(r, mpi::SegKind::wait).ms(), 10.5)
        << "rank " << r;
}

TEST(WaveInteraction, HalfDelaysPartiallyCancel) {
  // Fig. 6(b): odd sockets inject half-length delays. The longer waves
  // survive the first collision and keep propagating until they meet their
  // symmetric counterparts.
  WaveExperiment exp = fig6_experiment();
  Rng rng(1);
  exp.delays = workload::per_socket_delays(
      10, 10, 5, 0, milliseconds(9.0), workload::MultiDelayMode::half_odd,
      rng);
  const auto result = run_wave_experiment(exp);

  // Excess runtime still equals the *longest* delay (9 ms), not the sum.
  const Duration makespan = result.trace.makespan() - SimTime::zero();
  EXPECT_NEAR((makespan - ideal_runtime(exp, milliseconds(9.0))).ms(), 0.0,
              1.0);

  // The surviving half-amplitude residual of the long waves sweeps across
  // the odd injector itself (rank 15), which therefore idles ~4.5 ms in
  // total. Under *full* cancellation (equal delays) an injector never
  // idles; under linear superposition it would idle ~9 ms.
  const Duration wait_at_odd_injector =
      result.trace.total(15, mpi::SegKind::wait);
  EXPECT_GT(wait_at_odd_injector.ms(), 3.0);
  EXPECT_LT(wait_at_odd_injector.ms(), 6.5);
}

TEST(WaveInteraction, RandomDelaysLongestSurvives) {
  // Fig. 6(c): random delays; the longest wave survives until program end.
  WaveExperiment exp = fig6_experiment();
  Rng rng(99);
  exp.delays = workload::per_socket_delays(
      10, 10, 5, 0, milliseconds(9.0), workload::MultiDelayMode::random, rng);
  const auto result = run_wave_experiment(exp);

  Duration longest = Duration::zero();
  for (const auto& d : exp.delays) longest = std::max(longest, d.duration);

  const Duration makespan = result.trace.makespan() - SimTime::zero();
  EXPECT_NEAR((makespan - ideal_runtime(exp, longest)).ms(), 0.0, 1.0);
}

TEST(WaveInteraction, CancellationIsNotLinearSuperposition) {
  // Two waves passing through each other (linear superposition) would leave
  // every rank idling for the *sum* of both delays; cancellation means the
  // max governs. Inject two equal delays on a small ring and check.
  workload::RingSpec ring;
  ring.ranks = 20;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 16384;
  ring.steps = 16;
  ring.texec = milliseconds(3.0);
  ring.noisy = false;

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring);
  exp.delays = {workload::DelaySpec{2, 0, milliseconds(6.0)},
                workload::DelaySpec{12, 0, milliseconds(6.0)}};
  const auto result = run_wave_experiment(exp);

  // Every rank's cumulative wave-idle stays ~ one delay; superposition
  // would give ~12 ms on the ranks both waves cross.
  for (int r = 0; r < ring.ranks; ++r)
    EXPECT_LT(result.trace.total(r, mpi::SegKind::wait).ms(), 7.5)
        << "rank " << r;
  const Duration makespan = result.trace.makespan() - SimTime::zero();
  EXPECT_NEAR((makespan - (ring.texec * ring.steps + milliseconds(6.0))).ms(),
              0.0, 1.0);
}

}  // namespace
}  // namespace iw::core
