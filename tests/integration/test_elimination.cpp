// Integration: idle-period elimination by noise (paper Sec. V-B, Fig. 9) —
// "the application slowdown usually caused by strong idle waves may be
// unobservable due to the presence of noise".
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/delay.hpp"

namespace iw::core {
namespace {

/// Fig. 9 setup: 36 ranks (six per socket on six sockets), 30 steps,
/// Texec = 1.5 ms, a 6 ms idle wave (4 phases) injected at rank 1, step 1.
struct Fig9Run {
  Duration makespan;
  Duration excess;  ///< relative to the same system without the delay
};

Fig9Run run_fig9(double E_percent, bool with_delay, std::uint64_t seed) {
  workload::RingSpec ring;
  ring.ranks = 36;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 8192;
  ring.steps = 30;
  ring.texec = milliseconds(1.5);

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring, /*ppn1=*/false, /*per_socket=*/6);
  exp.cluster.seed = seed;
  if (with_delay)
    exp.delays = workload::single_delay(1, 1, milliseconds(6.0));
  if (E_percent > 0)
    exp.injected_noise = noise::NoiseSpec::exponential(
        milliseconds(1.5 * E_percent / 100.0));

  const auto result = run_wave_experiment(exp);
  return Fig9Run{result.trace.makespan() - SimTime::zero(), Duration::zero()};
}

Duration excess_at(double E_percent, std::uint64_t seed) {
  const Duration with = run_fig9(E_percent, true, seed).makespan;
  const Duration without = run_fig9(E_percent, false, seed).makespan;
  return with - without;
}

TEST(WaveElimination, NoiseFreeBaselineMatchesPaperTotal) {
  // Fig. 9(a): ttotal = 51.1 ms at E = 0 (30 * 1.5 ms + 6 ms + comm).
  const auto run = run_fig9(0.0, true, 1);
  EXPECT_NEAR(run.makespan.ms(), 51.1, 1.5);
}

TEST(WaveElimination, NoiseFreeExcessEqualsInjectedDelay) {
  // Fig. 9(a): "the excess runtime is roughly equal to the injected delay".
  const Duration excess = excess_at(0.0, 1);
  EXPECT_NEAR(excess.ms(), 6.0, 0.5);
}

TEST(WaveElimination, ModerateNoiseShrinksExcessOnlyMarginally) {
  // Fig. 9(b) at E = 20%: strong wave decay, but the runtime saving is
  // marginal; the overall runtime grows because of the noise itself.
  // Paper: 82.7 ms vs 51.1 ms. Our simulated noisy background advances at
  // ~2x the mean injected noise per step; the real system's (KPZ-like
  // coupled growth plus natural noise) is faster, so our total lands lower.
  // The qualitative statement under test: substantially above the silent
  // run, in the 60-90 ms band, with the noise (not the wave) dominating.
  const auto noisy = run_fig9(20.0, true, 1);
  const auto silent = run_fig9(0.0, true, 1);
  EXPECT_GT(noisy.makespan.ms(), silent.makespan.ms() * 1.25);
  EXPECT_NEAR(noisy.makespan.ms(), 75.0, 15.0);
}

TEST(WaveElimination, StrongNoiseAbsorbsTheWave) {
  // Fig. 9(c) at E = 25%: the paper observes no excess runtime. Our
  // background absorbs more slowly (see EXPERIMENTS.md), so at E = 25% the
  // wave is partially absorbed and at E = 50% it is gone. Median over
  // seeds to tame variance.
  auto median_excess = [](double E) {
    std::vector<double> v;
    for (std::uint64_t seed = 1; seed <= 7; ++seed)
      v.push_back(excess_at(E, seed).ms());
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double at25 = median_excess(25.0);
  const double at50 = median_excess(50.0);
  EXPECT_LT(at25, 4.5);  // > 25% of the 6 ms delay absorbed
  EXPECT_LT(at50, 2.0);  // essentially absorbed
}

TEST(WaveElimination, ExcessDecreasesMonotonicallyWithNoise) {
  // The elimination effect: median excess strictly shrinks with E.
  auto median_excess = [](double E) {
    std::vector<double> v;
    for (std::uint64_t seed = 1; seed <= 7; ++seed)
      v.push_back(excess_at(E, seed).ms());
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double e0 = median_excess(0.0);
  const double e20 = median_excess(20.0);
  const double e40 = median_excess(40.0);
  EXPECT_GT(e0, e20);
  EXPECT_GT(e20, e40);
  EXPECT_LT(e40, e0 / 2.0);
}

TEST(WaveElimination, NoiseAloneCostsRuntime) {
  // Sanity: the noisy-but-undelayed system is slower than the silent
  // undelayed one — noise is not free, it just hides the wave.
  const auto silent = run_fig9(0.0, false, 3);
  const auto noisy = run_fig9(25.0, false, 3);
  EXPECT_GT(noisy.makespan.ms(), silent.makespan.ms() * 1.2);
}

}  // namespace
}  // namespace iw::core
