// Guards tier-1 test registration: every tests/**/*.cpp in the source tree
// must appear in the CTest manifest that tests/CMakeLists.txt generates at
// configure time. A test file added without re-running the configure step
// (or one that escapes the glob) makes this fail loudly instead of silently
// dropping out of the suite.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#ifndef IW_TESTS_SOURCE_DIR
#error "tests/CMakeLists.txt must define IW_TESTS_SOURCE_DIR for this test"
#endif
#ifndef IW_TEST_MANIFEST
#error "tests/CMakeLists.txt must define IW_TEST_MANIFEST for this test"
#endif

namespace {

namespace fs = std::filesystem;

std::set<std::string> manifest_entries() {
  std::ifstream in(IW_TEST_MANIFEST);
  std::set<std::string> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) entries.insert(line);
  }
  return entries;
}

std::vector<std::string> test_sources_on_disk() {
  std::vector<std::string> sources;
  for (const auto& entry :
       fs::recursive_directory_iterator(fs::path(IW_TESTS_SOURCE_DIR))) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".cpp") continue;
    const std::string rel =
        fs::relative(entry.path(), fs::path(IW_TESTS_SOURCE_DIR))
            .generic_string();
    sources.push_back("tests/" + rel);
  }
  return sources;
}

TEST(BuildManifest, ManifestExistsAndIsNonEmpty) {
  ASSERT_TRUE(fs::exists(IW_TEST_MANIFEST))
      << "manifest not found at " << IW_TEST_MANIFEST
      << " — was the build configured with IW_BUILD_TESTS=ON?";
  EXPECT_FALSE(manifest_entries().empty());
}

TEST(BuildManifest, EveryTestSourceIsRegisteredWithCTest) {
  const std::set<std::string> registered = manifest_entries();
  std::vector<std::string> missing;
  for (const std::string& src : test_sources_on_disk()) {
    if (registered.count(src) == 0) missing.push_back(src);
  }
  std::string joined;
  for (const std::string& m : missing) joined += "\n  " + m;
  EXPECT_TRUE(missing.empty())
      << "test sources not registered with CTest (re-run cmake):" << joined;
}

TEST(BuildManifest, GuardsItself) {
  // If the glob ever stops picking up this very file, the other assertions
  // would never run; make the dependency explicit.
  EXPECT_EQ(manifest_entries().count("tests/integration/test_build_manifest.cpp"),
            1u);
}

}  // namespace
