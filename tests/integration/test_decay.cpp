// Integration: idle-wave decay under injected exponential noise (paper
// Sec. V-A, Fig. 8).
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "support/stats.hpp"
#include "workload/delay.hpp"

namespace iw::core {
namespace {

/// Fig. 8-style run: long delay, exponential noise with mean E*Texec,
/// measure the decay rate over the wave's path.
double decay_rate_us_per_rank(double E_percent, std::uint64_t seed,
                              const noise::NoiseSpec& system_noise =
                                  noise::NoiseSpec::none()) {
  workload::RingSpec ring;
  ring.ranks = 40;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 8192;
  ring.steps = 40;
  ring.texec = milliseconds(3.0);

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring, /*ppn1=*/false, /*per_socket=*/10);
  exp.cluster.system_noise = system_noise;
  exp.cluster.seed = seed;
  exp.delays = workload::single_delay(5, 0, milliseconds(90.0));
  exp.injected_noise = E_percent == 0.0
                           ? noise::NoiseSpec::none()
                           : noise::NoiseSpec::exponential(milliseconds(
                                 3.0 * E_percent / 100.0));
  // Threshold one full execution phase: noise-induced waits (sub-ms) must
  // not masquerade as wave arrivals in the front and amplitude fits.
  exp.min_idle = milliseconds(3.0);
  const auto result = run_wave_experiment(exp);
  return result.up.decay_us_per_rank;
}

TEST(IdleWaveDecay, SilentSystemBarelyDecays) {
  const double beta = decay_rate_us_per_rank(0.0, 1);
  EXPECT_LT(beta, 100.0);  // < 0.1 ms/rank on a 90 ms wave
}

TEST(IdleWaveDecay, NoiseProducesDecay) {
  const double beta = decay_rate_us_per_rank(10.0, 1);
  EXPECT_GT(beta, 300.0);  // clearly nonzero decay at E = 10%
}

TEST(IdleWaveDecay, DecayIncreasesWithNoiseLevel) {
  // Paper Fig. 8: "a clear positive correlation between the noise level
  // and the decay rate". Use medians over a few seeds per level.
  std::vector<double> levels{0.0, 2.0, 5.0, 10.0};
  std::vector<double> betas;
  for (const double E : levels) {
    std::vector<double> runs;
    for (std::uint64_t seed = 1; seed <= 5; ++seed)
      runs.push_back(decay_rate_us_per_rank(E, seed));
    betas.push_back(median(runs));
  }
  for (std::size_t i = 1; i < betas.size(); ++i)
    EXPECT_GT(betas[i], betas[i - 1])
        << "decay must increase from E=" << levels[i - 1] << "% to E="
        << levels[i] << "%";
}

TEST(IdleWaveDecay, DecayRateIndependentOfSystemNoiseProfile) {
  // Fig. 8 shows the same trend on InfiniBand, Omni-Path, and the pure
  // simulator: the *injected* noise dominates the decay. Compare medians
  // at E = 8% across system profiles; they must agree within a factor ~2
  // (the paper's spread across systems is of that order).
  std::vector<double> medians;
  for (const char* profile :
       {"emmy-smt-on", "meggie-smt-off"}) {
    std::vector<double> runs;
    for (std::uint64_t seed = 1; seed <= 5; ++seed)
      runs.push_back(
          decay_rate_us_per_rank(8.0, seed, noise::NoiseSpec::system(profile)));
    medians.push_back(median(runs));
  }
  // Plus the bare simulator.
  std::vector<double> runs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    runs.push_back(decay_rate_us_per_rank(8.0, seed));
  medians.push_back(median(runs));

  const double lo = *std::min_element(medians.begin(), medians.end());
  const double hi = *std::max_element(medians.begin(), medians.end());
  EXPECT_LT(hi / lo, 2.0);
  EXPECT_GT(lo, 0.0);
}

TEST(IdleWaveDecay, LeadingEdgeSpeedInsensitiveToNoise) {
  // Sec. IV-C: "even in a noisy system the propagation speed along the
  // leading slope of an idle wave is hardly changed from v_silent".
  workload::RingSpec ring;
  ring.ranks = 40;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 8192;
  ring.steps = 40;
  ring.texec = milliseconds(3.0);

  auto speed_at = [&](double E_percent) {
    WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = cluster_for_ring(ring, false, 10);
    exp.cluster.seed = 7;
    exp.delays = workload::single_delay(5, 0, milliseconds(90.0));
    if (E_percent > 0)
      exp.injected_noise = noise::NoiseSpec::exponential(
          milliseconds(3.0 * E_percent / 100.0));
    exp.min_idle = milliseconds(3.0);
    return run_wave_experiment(exp).up.speed_ranks_per_sec;
  };

  const double v_silent_measured = speed_at(0.0);
  const double v_noisy = speed_at(8.0);
  ASSERT_GT(v_silent_measured, 0.0);
  // The noisy system runs slower overall (cycle = Texec + noise + Tcomm),
  // so the front speed drops by roughly E; it must not change wildly.
  EXPECT_NEAR(v_noisy / v_silent_measured, 1.0, 0.2);
}

TEST(IdleWaveDecay, DecayRateRoughlyIndependentOfDelayLength) {
  // Sec. V-A: "the decay rate does not depend on the length of the
  // injected delay" (unless the wave is very narrow).
  auto beta_for_delay = [&](double delay_ms) {
    workload::RingSpec ring;
    ring.ranks = 40;
    ring.direction = workload::Direction::bidirectional;
    ring.boundary = workload::Boundary::periodic;
    ring.msg_bytes = 8192;
    ring.steps = 40;
    ring.texec = milliseconds(3.0);
    WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = cluster_for_ring(ring, false, 10);
    std::vector<double> betas;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      WaveExperiment run = exp;
      run.cluster.seed = seed;
      run.delays = workload::single_delay(5, 0, milliseconds(delay_ms));
      run.injected_noise =
          noise::NoiseSpec::exponential(milliseconds(3.0 * 0.08));
      run.min_idle = milliseconds(3.0);
      betas.push_back(run_wave_experiment(run).up.decay_us_per_rank);
    }
    return median(betas);
  };
  const double beta_60 = beta_for_delay(60.0);
  const double beta_120 = beta_for_delay(120.0);
  ASSERT_GT(beta_60, 0.0);
  EXPECT_NEAR(beta_120 / beta_60, 1.0, 0.5);
}

}  // namespace
}  // namespace iw::core
