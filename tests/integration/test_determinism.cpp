// Integration: bit-exact reproducibility — the foundation of every other
// measurement in this repository.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"
#include "workload/delay.hpp"

namespace iw::core {
namespace {

WaveExperiment canonical_experiment(std::uint64_t seed) {
  workload::RingSpec ring;
  ring.ranks = 24;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 16384;
  ring.steps = 15;
  ring.texec = milliseconds(2.0);

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring, false, 6);
  exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  exp.cluster.seed = seed;
  exp.delays = workload::single_delay(3, 1, milliseconds(8.0));
  exp.injected_noise = noise::NoiseSpec::exponential(microseconds(100.0));
  return exp;
}

bool traces_identical(const mpi::Trace& a, const mpi::Trace& b) {
  if (a.ranks() != b.ranks()) return false;
  for (int r = 0; r < a.ranks(); ++r) {
    const auto& sa = a.segments(r);
    const auto& sb = b.segments(r);
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].kind != sb[i].kind || sa[i].begin != sb[i].begin ||
          sa[i].end != sb[i].end || sa[i].step != sb[i].step)
        return false;
    }
    const auto ta = a.step_begin(r);
    const auto tb = b.step_begin(r);
    if (!std::equal(ta.begin(), ta.end(), tb.begin(), tb.end())) return false;
    if (a.finish(r) != b.finish(r)) return false;
  }
  return true;
}

TEST(Determinism, SameSeedSameTraceBitExact) {
  const auto r1 = run_wave_experiment(canonical_experiment(12345));
  const auto r2 = run_wave_experiment(canonical_experiment(12345));
  EXPECT_TRUE(traces_identical(r1.trace, r2.trace));
  EXPECT_EQ(r1.trace.makespan(), r2.trace.makespan());
  EXPECT_DOUBLE_EQ(r1.up.speed_ranks_per_sec, r2.up.speed_ranks_per_sec);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto r1 = run_wave_experiment(canonical_experiment(1));
  const auto r2 = run_wave_experiment(canonical_experiment(2));
  EXPECT_FALSE(traces_identical(r1.trace, r2.trace));
}

TEST(Determinism, SilentSystemIsSeedInvariant) {
  // Without any noise source the seed must not matter at all.
  auto exp1 = canonical_experiment(1);
  exp1.cluster.system_noise = noise::NoiseSpec::none();
  exp1.injected_noise = noise::NoiseSpec::none();
  auto exp2 = exp1;
  exp2.cluster.seed = 999;
  const auto r1 = run_wave_experiment(exp1);
  const auto r2 = run_wave_experiment(exp2);
  EXPECT_TRUE(traces_identical(r1.trace, r2.trace));
}

TEST(Determinism, TraceInvariantsHold) {
  // Segments per rank are time-ordered and non-overlapping; waits and
  // computes alternate sensibly; finish matches the last segment end.
  const auto result = run_wave_experiment(canonical_experiment(77));
  for (int r = 0; r < result.trace.ranks(); ++r) {
    const auto& segs = result.trace.segments(r);
    ASSERT_FALSE(segs.empty());
    for (std::size_t i = 1; i < segs.size(); ++i) {
      EXPECT_GE(segs[i].begin, segs[i - 1].end)
          << "overlapping segments on rank " << r;
    }
    EXPECT_EQ(result.trace.finish(r), segs.back().end);
  }
}

TEST(Determinism, WallClockConservation) {
  // For every rank: compute + injected + wait == finish time (no gaps in a
  // bulk-synchronous program that starts at t=0 and has no holes).
  const auto result = run_wave_experiment(canonical_experiment(31));
  for (int r = 0; r < result.trace.ranks(); ++r) {
    const Duration busy =
        result.trace.total(r, mpi::SegKind::compute) +
        result.trace.total(r, mpi::SegKind::injected) +
        result.trace.total(r, mpi::SegKind::wait);
    const Duration elapsed = result.trace.finish(r) - SimTime::zero();
    // Posting overheads are zero-cost ops, so the only non-traced time is
    // sub-microsecond scheduling slack.
    EXPECT_NEAR(busy.ms(), elapsed.ms(), 0.01) << "rank " << r;
  }
}

}  // namespace
}  // namespace iw::core
