// Integration: memory-bound workloads — the Fig. 1 / Fig. 2 physics of
// saturation, desynchronization, and automatic overlap.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "core/runtime_model.hpp"
#include "workload/lbm.hpp"
#include "workload/stream_triad.hpp"

namespace iw::core {
namespace {

ClusterConfig stream_cluster(int ranks, bool ppn1) {
  ClusterConfig config;
  config.topo = ppn1 ? net::TopologySpec::one_rank_per_node(ranks)
                     : net::TopologySpec::packed(ranks, 10);
  config.memory = MemorySystem{};  // 40 GB/s socket, 6.7 GB/s core
  config.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  return config;
}

TEST(StreamScaling, SingleSocketMatchesBandwidthModel) {
  // Fig. 1(b): up to one socket the simple bandwidth model works fine.
  workload::StreamTriadSpec spec;
  spec.ranks = 10;  // one socket
  spec.steps = 20;
  Cluster cluster(stream_cluster(10, false));
  const auto trace = cluster.run(workload::build_stream_triad(spec));
  const Duration cycle = measured_cycle(trace, 0, 5, 19);

  const StreamModelParams model;
  // Execution term: 1.2 GB / 40 GB/s = 30 ms; communication adds a few ms.
  EXPECT_GT(cycle, stream_exec_time(model, 1));
  EXPECT_LT(cycle, stream_exec_time(model, 1) + milliseconds(8.0));
}

TEST(StreamScaling, DesyncRaisesExecutionPerformanceAboveModel) {
  // Fig. 1(a): the measured *execution-only* performance exceeds the
  // linear-scaling model under strong scaling because desynchronized ranks
  // see less bandwidth contention. Run 4 sockets (2 nodes).
  // Desynchronization builds up diffusively, so give it a long horizon and
  // measure the settled tail.
  workload::StreamTriadSpec spec;
  spec.ranks = 40;
  spec.steps = 250;
  Cluster cluster(stream_cluster(40, false));
  const auto trace = cluster.run(workload::build_stream_triad(spec));

  // Mean compute time per rank per step, over the settled tail.
  double exec_ns = 0.0;
  int count = 0;
  for (int r = 0; r < 40; ++r)
    for (const auto& seg : trace.segments(r))
      if (seg.kind == mpi::SegKind::compute && seg.step >= 150) {
        exec_ns += static_cast<double>(seg.duration().ns());
        ++count;
      }
  const double mean_exec_ms = exec_ns / count / 1e6;

  // Model: each rank moves 30 MB at bmem/10 = 4 GB/s -> 7.5 ms.
  const double model_exec_ms = 30.0 / 4.0;
  EXPECT_LT(mean_exec_ms, model_exec_ms)
      << "desynchronization must create automatic overlap";
  // But not faster than the core-bandwidth bound (30 MB at 6.7 GB/s).
  EXPECT_GT(mean_exec_ms, 30.0 / 6.7 * 0.95);
}

TEST(StreamScaling, TotalPerformanceBelowModelAtScale) {
  // Fig. 1(a): total measured performance falls short of the optimistic
  // nonoverlapping model at larger socket counts (factor ~2 at 9 sockets).
  workload::StreamTriadSpec spec;
  spec.ranks = 60;  // 6 sockets, 3 nodes
  spec.steps = 40;
  Cluster cluster(stream_cluster(60, false));
  const auto trace = cluster.run(workload::build_stream_triad(spec));
  const Duration cycle = measured_cycle(trace, 0, 20, 39);
  const double perf = performance_from_time(triad_flops_per_step(spec), cycle);

  const StreamModelParams model;
  const double model_perf = stream_performance(model, 6);
  EXPECT_LT(perf, model_perf);
  EXPECT_GT(perf, model_perf / 4.0);  // in the right ballpark though
}

TEST(StreamScaling, Ppn1MatchesModelClosely) {
  // Fig. 1(c): with one process per node there is little contention and
  // the model predicts the average performance well.
  workload::StreamTriadSpec spec;
  spec.ranks = 8;
  spec.steps = 30;
  Cluster cluster(stream_cluster(8, true));
  const auto trace = cluster.run(workload::build_stream_triad(spec));
  const Duration cycle = measured_cycle(trace, 0, 10, 29);

  // Per rank: 150 MB at the core bandwidth 6.7 GB/s = 22.4 ms exec,
  // plus 2 * 2 MB / 3 GB/s ~ 1.33 ms comm.
  const double exec_ms = 1.2e9 / 8.0 / 6.7e9 * 1e3;
  const double comm_ms = 2.0 * 2e6 / 3e9 * 1e3;
  EXPECT_NEAR(cycle.ms(), exec_ms + comm_ms, 2.0);
}

TEST(LbmProxy, RunsAndShowsCommunicationShare) {
  workload::LbmSpec spec;
  spec.nx = 100;
  spec.ny = 100;
  spec.nz = 100;
  spec.ranks = 20;
  spec.steps = 30;
  Cluster cluster(stream_cluster(20, false));
  const auto trace = cluster.run(workload::build_lbm(spec));

  // Communication share: total wait / total runtime in the settled phase.
  double wait_ns = 0, total_ns = 0;
  for (int r = 0; r < 20; ++r) {
    wait_ns += static_cast<double>(trace.total(r, mpi::SegKind::wait).ns());
    total_ns +=
        static_cast<double>((trace.finish(r) - SimTime::zero()).ns());
  }
  const double share = wait_ns / total_ns;
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.7);
}

TEST(LbmProxy, DesynchronizationEmergesOverTime) {
  // Fig. 2: the spread of step positions across ranks grows from nearly
  // zero to a visible fraction of a timestep as the run progresses.
  workload::LbmSpec spec;
  spec.nx = 100;
  spec.ny = 100;
  spec.nz = 100;
  spec.ranks = 20;
  spec.steps = 400;
  Cluster cluster(stream_cluster(20, false));
  const auto trace = cluster.run(workload::build_lbm(spec));

  auto spread_at = [&](int step) {
    SimTime lo = SimTime::max(), hi = SimTime::zero();
    for (int r = 0; r < 20; ++r) {
      const SimTime t = trace.step_begin(r)[static_cast<std::size_t>(step)];
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    return hi - lo;
  };

  const Duration early = spread_at(2);
  const Duration late = spread_at(390);
  EXPECT_GT(late, early);
}

}  // namespace
}  // namespace iw::core
