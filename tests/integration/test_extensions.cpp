// Integration: idle waves meeting collectives and 2-D decompositions — the
// paper's future-work directions, implemented and characterized.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/idle_wave.hpp"
#include "support/stats.hpp"
#include "workload/collectives.hpp"
#include "workload/grid2d.hpp"

namespace iw::core {
namespace {

TEST(CollectiveWaves, BarrierGlobalizesTheDelay) {
  // With a barrier after every step, a one-off delay does not ripple one
  // rank per step — every rank feels it at the next barrier.
  workload::RingSpec ring;
  ring.ranks = 16;
  ring.steps = 10;
  ring.texec = milliseconds(2.0);
  ring.noisy = false;

  const std::vector<workload::DelaySpec> delays{{4, 2, milliseconds(8.0)}};
  const auto programs = workload::build_ring_with_collective(
      ring, workload::CollectiveKind::barrier, 1, 0, delays);

  ClusterConfig config;
  config.topo = net::TopologySpec::one_rank_per_node(16);
  Cluster cluster(config);
  const auto trace = cluster.run(programs);

  // Every rank — including the farthest — idles ~8 ms within step 2's
  // barrier, long before a point-to-point wave (1 rank/step) could arrive.
  for (int r = 0; r < 16; ++r) {
    if (r == 4) continue;  // the delayed rank itself never waits for others
    const auto periods = idle_periods(trace, r, milliseconds(6.0));
    ASSERT_FALSE(periods.empty()) << "rank " << r;
    EXPECT_LT(periods.front().begin.ms(), 3 * 2.0 + 8.0 + 1.0)
        << "rank " << r << " should stall at the very next barrier";
  }
  // Total cost still equals one delay (the barrier does not multiply it).
  const Duration makespan = trace.makespan() - SimTime::zero();
  EXPECT_NEAR(makespan.ms() - (10 * 2.0 + 8.0), 0.0, 1.0);
}

TEST(CollectiveWaves, SparseBarriersLetWavesTravelBetween) {
  // Barrier every 8 steps: within the window the wave ripples normally.
  workload::RingSpec ring;
  ring.ranks = 16;
  ring.steps = 8;
  ring.texec = milliseconds(2.0);
  ring.noisy = false;

  const std::vector<workload::DelaySpec> delays{{2, 0, milliseconds(6.0)}};
  const auto programs = workload::build_ring_with_collective(
      ring, workload::CollectiveKind::allreduce, 8, 16 * 1024, delays);

  ClusterConfig config;
  config.topo = net::TopologySpec::one_rank_per_node(16);
  Cluster cluster(config);
  const auto trace = cluster.run(programs);

  // Rank 5 (3 hops up) is reached by the point-to-point wave at ~step 3,
  // well before the final allreduce.
  const auto periods = idle_periods(trace, 5, milliseconds(4.0));
  ASSERT_FALSE(periods.empty());
  EXPECT_LT(periods.front().begin.ms(), 4 * 2.0 + 1.0);
}

TEST(Grid2DWaves, FrontExpandsAsManhattanBall) {
  // In 2-D the idle wave reaches rank (x, y) after |x-cx| + |y-cy| cycles:
  // arrival time is linear in the Manhattan distance from the injection.
  workload::Grid2DSpec spec;
  spec.px = 7;
  spec.py = 7;
  spec.steps = 18;
  spec.texec = milliseconds(2.0);
  spec.noisy = false;

  const int center = workload::grid_rank(spec, 3, 3);
  const std::vector<workload::DelaySpec> delays{
      {center, 0, milliseconds(12.0)}};
  const auto programs = workload::build_grid2d(spec, delays);

  ClusterConfig config;
  config.topo = net::TopologySpec::one_rank_per_node(spec.ranks());
  Cluster cluster(config);
  const auto trace = cluster.run(programs);

  std::vector<double> dist, arrival;
  for (int r = 0; r < spec.ranks(); ++r) {
    if (r == center) continue;
    const auto periods = idle_periods(trace, r, milliseconds(4.0));
    if (periods.empty()) continue;
    dist.push_back(workload::grid_distance(spec, center, r));
    arrival.push_back(periods.front().begin.ms());
  }
  ASSERT_GE(dist.size(), 30u) << "the wave must cover most of the grid";

  const LineFit fit = fit_line(dist, arrival);
  // One cycle (2 ms + comm) per Manhattan hop, high linearity.
  EXPECT_NEAR(fit.slope, 2.0, 0.25);
  EXPECT_GT(fit.r2, 0.97);
}

TEST(Grid2DWaves, CostIsStillOneDelay) {
  // Cancellation works in 2-D as well: the delay is paid once globally.
  workload::Grid2DSpec spec;
  spec.px = 6;
  spec.py = 6;
  spec.boundary = workload::Boundary::periodic;
  spec.steps = 15;
  spec.texec = milliseconds(2.0);
  spec.noisy = false;

  const std::vector<workload::DelaySpec> delays{{7, 0, milliseconds(9.0)}};
  ClusterConfig config;
  config.topo = net::TopologySpec::one_rank_per_node(spec.ranks());
  Cluster cluster(config);
  const auto trace = cluster.run(workload::build_grid2d(spec, delays));

  const Duration makespan = trace.makespan() - SimTime::zero();
  EXPECT_NEAR(makespan.ms() - (15 * 2.0 + 9.0), 0.0, 1.0);
}

TEST(Grid2DWaves, TwoInjectionsCancelIn2D) {
  workload::Grid2DSpec spec;
  spec.px = 6;
  spec.py = 6;
  spec.boundary = workload::Boundary::periodic;
  spec.steps = 15;
  spec.texec = milliseconds(2.0);
  spec.noisy = false;

  const std::vector<workload::DelaySpec> delays{
      {0, 0, milliseconds(6.0)},
      {workload::grid_rank(spec, 3, 3), 0, milliseconds(6.0)}};
  ClusterConfig config;
  config.topo = net::TopologySpec::one_rank_per_node(spec.ranks());
  Cluster cluster(config);
  const auto trace = cluster.run(workload::build_grid2d(spec, delays));

  // Nonlinear cancellation: cost = one delay, not two.
  const Duration makespan = trace.makespan() - SimTime::zero();
  EXPECT_NEAR(makespan.ms() - (15 * 2.0 + 6.0), 0.0, 1.0);
  for (int r = 0; r < spec.ranks(); ++r)
    EXPECT_LT(trace.total(r, mpi::SegKind::wait).ms(), 7.5) << "rank " << r;
}

}  // namespace
}  // namespace iw::core
