// Integration: the qualitative propagation matrix of paper Figs. 4 and 5.
#include <gtest/gtest.h>

#include <limits>

#include "core/experiment.hpp"
#include "workload/delay.hpp"

namespace iw::core {
namespace {

WaveExperiment flavor_experiment(workload::Direction dir,
                                 workload::Boundary bnd,
                                 std::int64_t msg_bytes) {
  workload::RingSpec ring;
  ring.ranks = 18;
  ring.direction = dir;
  ring.boundary = bnd;
  ring.msg_bytes = msg_bytes;
  ring.steps = 20;
  ring.texec = milliseconds(3.0);
  ring.noisy = false;  // silent system: sharpest assertions

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring);
  exp.delays = workload::single_delay(5, 0, milliseconds(13.5));
  return exp;
}

constexpr std::int64_t kSmall = 16384;    // eager
constexpr std::int64_t kLarge = 174080;   // rendezvous (> 131072)

TEST(PropagationFlavors, EagerUnidirectionalTravelsOnlyUpward) {
  // Fig. 4 / Fig. 5(a): ranks below the injection are unaffected because
  // the eager sender can get rid of its messages.
  const auto result =
      run_wave_experiment(flavor_experiment(workload::Direction::unidirectional,
                                            workload::Boundary::open, kSmall));
  EXPECT_EQ(result.up.survival_hops, 12);  // rank 6..17: runs out at the end
  EXPECT_EQ(result.down.survival_hops, 0);
  // Ranks below the injection never wait more than the noise floor.
  for (int r = 0; r < 5; ++r)
    EXPECT_LT(result.trace.total(r, mpi::SegKind::wait), milliseconds(1.0));
}

TEST(PropagationFlavors, EagerUnidirectionalPeriodicDiesAtInjector) {
  // Fig. 5(b): the wave wraps around and dies where it was born; after one
  // traversal everything is in sync again.
  const auto result = run_wave_experiment(
      flavor_experiment(workload::Direction::unidirectional,
                        workload::Boundary::periodic, kSmall));
  EXPECT_EQ(result.up.survival_hops, 17);  // all other ranks hit once
  // The injecting rank itself never idles: it is busy absorbing the
  // backlog of eager messages.
  EXPECT_LT(result.trace.total(5, mpi::SegKind::wait), milliseconds(1.0));
  // Total excess runtime ~ one injected delay, not more (wave died).
  const Duration makespan = result.trace.makespan() - SimTime::zero();
  const Duration ideal = milliseconds(3.0) * 20 + milliseconds(13.5);
  EXPECT_LT(makespan - ideal, milliseconds(2.0));
}

TEST(PropagationFlavors, EagerBidirectionalTravelsBothWays) {
  // Fig. 5(c): open boundaries, waves die at both chain ends.
  const auto result =
      run_wave_experiment(flavor_experiment(workload::Direction::bidirectional,
                                            workload::Boundary::open, kSmall));
  EXPECT_EQ(result.up.survival_hops, 12);
  EXPECT_EQ(result.down.survival_hops, 5);
}

TEST(PropagationFlavors, EagerBidirectionalPeriodicWavesCancel) {
  // Fig. 5(d): the two branches wrap and annihilate near the antipode
  // (rank 14 for injection at 5 on 18 ranks).
  const auto result = run_wave_experiment(
      flavor_experiment(workload::Direction::bidirectional,
                        workload::Boundary::periodic, kSmall));
  // Both branches survive to the probe cap (ranks/2 - 1 = 8 hops).
  EXPECT_EQ(result.up.survival_hops, 8);
  EXPECT_EQ(result.down.survival_hops, 8);
  // After cancellation the run ends with exactly one delay of excess.
  const Duration makespan = result.trace.makespan() - SimTime::zero();
  const Duration ideal = milliseconds(3.0) * 20 + milliseconds(13.5);
  EXPECT_LT(makespan - ideal, milliseconds(2.0));
}

TEST(PropagationFlavors, RendezvousUnidirectionalTravelsBothWays) {
  // Fig. 5(e): the sender toward the delayed rank blocks too (no CTS), so
  // the wave propagates backward as well.
  const auto result =
      run_wave_experiment(flavor_experiment(workload::Direction::unidirectional,
                                            workload::Boundary::open, kLarge));
  EXPECT_EQ(result.protocol, mpi::WireProtocol::rendezvous);
  EXPECT_EQ(result.up.survival_hops, 12);
  EXPECT_EQ(result.down.survival_hops, 5);
}

TEST(PropagationFlavors, SpeedRatiosAcrossModes) {
  // Fig. 5(g,h) / Sec. IV-C: bidirectional rendezvous is twice as fast as
  // every other mode.
  const auto eager_uni =
      run_wave_experiment(flavor_experiment(workload::Direction::unidirectional,
                                            workload::Boundary::open, kSmall));
  const auto rdv_uni =
      run_wave_experiment(flavor_experiment(workload::Direction::unidirectional,
                                            workload::Boundary::open, kLarge));
  const auto rdv_bidi =
      run_wave_experiment(flavor_experiment(workload::Direction::bidirectional,
                                            workload::Boundary::open, kLarge));

  const double v_eager = eager_uni.up.speed_ranks_per_sec;
  const double v_rdv = rdv_uni.up.speed_ranks_per_sec;
  const double v_rdv_bidi = rdv_bidi.up.speed_ranks_per_sec;

  // Rendezvous vs eager differ only through the slightly larger Tcomm.
  EXPECT_NEAR(v_rdv / v_eager, 1.0, 0.05);
  // The doubling.
  EXPECT_NEAR(v_rdv_bidi / v_rdv, 2.0, 0.05);
}

TEST(PropagationFlavors, MeasuredSpeedMatchesEq2InSilentSystem) {
  for (const auto msg : {kSmall, kLarge}) {
    for (const auto dir : {workload::Direction::unidirectional,
                           workload::Direction::bidirectional}) {
      const auto result = run_wave_experiment(
          flavor_experiment(dir, workload::Boundary::open, msg));
      ASSERT_GT(result.up.speed_ranks_per_sec, 0.0);
      EXPECT_NEAR(result.up.speed_ranks_per_sec / result.predicted_speed, 1.0,
                  0.03)
          << "direction=" << to_string(dir) << " msg=" << msg;
    }
  }
}

TEST(PropagationFlavors, FrontFitIsCleanInSilentSystem) {
  const auto result =
      run_wave_experiment(flavor_experiment(workload::Direction::unidirectional,
                                            workload::Boundary::open, kSmall));
  EXPECT_GT(result.up.front_fit.r2, 0.9999);
}

TEST(PropagationFlavors, ExcessRuntimeEqualsDelayInSilentSystem) {
  // Fig. 9(a) logic: on a noise-free system the idle wave costs the whole
  // injected delay in wall-clock time.
  const auto result =
      run_wave_experiment(flavor_experiment(workload::Direction::bidirectional,
                                            workload::Boundary::open, kSmall));
  const Duration makespan = result.trace.makespan() - SimTime::zero();
  const Duration ideal = milliseconds(3.0) * 20;
  EXPECT_NEAR((makespan - ideal).ms(), 13.5, 0.5);
}

TEST(PropagationFlavors, EagerBufferExhaustionCreatesBackwardWave) {
  // Paper footnote 1: "there is of course a limit to the internal buffers
  // that store such messages, but this can be handled like a transition to
  // a rendezvous protocol." With an unbounded buffer, ranks below an
  // eager-unidirectional injection never feel the delay; with a finite
  // buffer the sender below the delayed rank runs out of credit, falls
  // back to rendezvous, blocks — and a backward wave appears.
  auto run_with_capacity = [](std::int64_t capacity) {
    WaveExperiment exp = flavor_experiment(
        workload::Direction::unidirectional, workload::Boundary::open,
        kSmall);
    exp.cluster.transport.eager.buffer_capacity = capacity;
    return run_wave_experiment(exp);
  };

  const auto unbounded =
      run_with_capacity(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(unbounded.down.survival_hops, 0);
  EXPECT_LT(unbounded.trace.total(4, mpi::SegKind::wait), milliseconds(1.0));

  // Two messages of backlog (the delay spans 4.5 phases, so the third
  // send toward the sleeping rank finds the buffer full).
  const auto bounded = run_with_capacity(2 * kSmall);
  EXPECT_GT(bounded.down.survival_hops, 0)
      << "buffer exhaustion must propagate the wave backward";
  EXPECT_GT(bounded.trace.total(4, mpi::SegKind::wait), milliseconds(5.0));
}

}  // namespace
}  // namespace iw::core
