// Tests for the processor-sharing bandwidth domain.
#include <gtest/gtest.h>

#include <vector>

#include "memory/bandwidth_domain.hpp"

namespace iw::memory {
namespace {

TEST(BandwidthDomain, SoloJobRunsAtCoreRate) {
  sim::Engine eng;
  BandwidthDomain domain(eng, 40e9, 5e9);
  SimTime done;
  domain.submit(5'000'000, [&] { done = eng.now(); });  // 5 MB at 5 GB/s
  eng.run();
  EXPECT_EQ(done, SimTime::zero() + milliseconds(1.0));
  EXPECT_EQ(domain.solo_time(5'000'000), milliseconds(1.0));
}

TEST(BandwidthDomain, BelowSaturationJobsDoNotInterfere) {
  // 40 GB/s domain, 5 GB/s cores: up to 8 jobs scale perfectly.
  sim::Engine eng;
  BandwidthDomain domain(eng, 40e9, 5e9);
  std::vector<SimTime> done(4);
  for (int i = 0; i < 4; ++i)
    domain.submit(5'000'000, [&, i] { done[static_cast<std::size_t>(i)] = eng.now(); });
  eng.run();
  for (const auto t : done) EXPECT_EQ(t, SimTime::zero() + milliseconds(1.0));
}

TEST(BandwidthDomain, SaturationSharesBandwidth) {
  // 10 GB/s domain, 10 GB/s cores: 2 jobs halve each other's rate.
  sim::Engine eng;
  BandwidthDomain domain(eng, 10e9, 10e9);
  std::vector<SimTime> done(2);
  for (int i = 0; i < 2; ++i)
    domain.submit(10'000'000, [&, i] { done[static_cast<std::size_t>(i)] = eng.now(); });
  eng.run();
  // 10 MB each at 5 GB/s effective = 2 ms.
  EXPECT_EQ(done[0], SimTime::zero() + milliseconds(2.0));
  EXPECT_EQ(done[1], SimTime::zero() + milliseconds(2.0));
}

TEST(BandwidthDomain, LateArrivalSlowsEarlierJob) {
  sim::Engine eng;
  BandwidthDomain domain(eng, 10e9, 10e9);
  SimTime done_a, done_b;
  domain.submit(10'000'000, [&] { done_a = eng.now(); });
  // Job B arrives at t = 0.5 ms, when A has 5 MB left.
  eng.after(milliseconds(0.5), [&] {
    domain.submit(5'000'000, [&] { done_b = eng.now(); });
  });
  eng.run();
  // From 0.5 ms both run at 5 GB/s; both have 5 MB left -> 1 ms more.
  EXPECT_EQ(done_a, SimTime::zero() + milliseconds(1.5));
  EXPECT_EQ(done_b, SimTime::zero() + milliseconds(1.5));
}

TEST(BandwidthDomain, DepartureSpeedsUpSurvivor) {
  sim::Engine eng;
  BandwidthDomain domain(eng, 10e9, 10e9);
  SimTime done_small, done_big;
  domain.submit(2'000'000, [&] { done_small = eng.now(); });
  domain.submit(6'000'000, [&] { done_big = eng.now(); });
  eng.run();
  // Shared at 5 GB/s until the small job finishes at 0.4 ms (2 MB).
  EXPECT_EQ(done_small, SimTime::zero() + milliseconds(0.4));
  // Big job: 2 MB done at 0.4 ms, remaining 4 MB at full 10 GB/s = 0.4 ms.
  EXPECT_EQ(done_big, SimTime::zero() + milliseconds(0.8));
}

TEST(BandwidthDomain, WorkConservation) {
  // Total bytes / total time == domain bandwidth while saturated.
  sim::Engine eng;
  BandwidthDomain domain(eng, 8e9, 8e9);
  int remaining = 10;
  for (int i = 0; i < 10; ++i)
    domain.submit(8'000'000, [&] { --remaining; });
  eng.run();
  EXPECT_EQ(remaining, 0);
  // 80 MB at 8 GB/s = 10 ms regardless of sharing details.
  EXPECT_EQ(eng.now(), SimTime::zero() + milliseconds(10.0));
}

TEST(BandwidthDomain, ZeroByteJobCompletesImmediately) {
  sim::Engine eng;
  BandwidthDomain domain(eng, 1e9, 1e9);
  bool fired = false;
  domain.submit(0, [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(eng.now(), SimTime::zero());
}

TEST(BandwidthDomain, ActiveJobsAndRates) {
  sim::Engine eng;
  BandwidthDomain domain(eng, 10e9, 6e9);
  EXPECT_EQ(domain.active_jobs(), 0);
  EXPECT_DOUBLE_EQ(domain.current_rate(), 6e9);  // idle: core rate
  domain.submit(60'000'000, [] {});
  EXPECT_EQ(domain.active_jobs(), 1);
  EXPECT_DOUBLE_EQ(domain.current_rate(), 6e9);
  domain.submit(60'000'000, [] {});
  EXPECT_DOUBLE_EQ(domain.current_rate(), 5e9);  // 10/2
  eng.run();
  EXPECT_EQ(domain.active_jobs(), 0);
}

TEST(BandwidthDomain, RejectsBadParameters) {
  sim::Engine eng;
  EXPECT_THROW(BandwidthDomain(eng, 0.0, 1e9), std::invalid_argument);
  EXPECT_THROW(BandwidthDomain(eng, 1e9, -1.0), std::invalid_argument);
  BandwidthDomain domain(eng, 1e9, 1e9);
  EXPECT_THROW(domain.submit(-1, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace iw::memory
