// Tests for the roofline helpers.
#include <gtest/gtest.h>

#include "memory/roofline.hpp"

namespace iw::memory {
namespace {

TEST(Roofline, BandwidthBoundRegime) {
  const RooflineParams p{100e9, 40e9};  // 100 GF/s, 40 GB/s
  // Intensity 1 flop/byte: bandwidth-limited at 40 GF/s.
  EXPECT_DOUBLE_EQ(attainable_flops(p, 1.0), 40e9);
}

TEST(Roofline, ComputeBoundRegime) {
  const RooflineParams p{100e9, 40e9};
  EXPECT_DOUBLE_EQ(attainable_flops(p, 10.0), 100e9);
}

TEST(Roofline, KneeAtMachineBalance) {
  const RooflineParams p{100e9, 40e9};
  EXPECT_DOUBLE_EQ(attainable_flops(p, 2.5), 100e9);  // knee
  EXPECT_LT(attainable_flops(p, 2.4), 100e9);
}

TEST(Roofline, LoopTimeTakesTheMax) {
  const RooflineParams p{100e9, 40e9};
  // 40 MB, 1 Mflop: memory takes 1 ms, compute 10 us -> 1 ms.
  EXPECT_EQ(loop_time(p, 40'000'000, 1'000'000), milliseconds(1.0));
  // 4 KB, 1 Gflop: compute dominates at 10 ms.
  EXPECT_EQ(loop_time(p, 4096, 1'000'000'000), milliseconds(10.0));
}

TEST(Roofline, StreamTriadMatchesPaperExpectation) {
  // The paper's socket: 40 GB/s; triad on 5e7 elements over one socket
  // moves 1.2 GB -> 30 ms per traversal.
  const RooflineParams p{1e18, 40e9};
  EXPECT_EQ(loop_time(p, 1'200'000'000, 100'000'000), milliseconds(30.0));
}

TEST(Roofline, RejectsInvalid) {
  const RooflineParams p{100e9, 40e9};
  EXPECT_THROW((void)attainable_flops(p, -1.0), std::invalid_argument);
  EXPECT_THROW((void)loop_time(p, -1, 0), std::invalid_argument);
  EXPECT_THROW((void)attainable_flops(RooflineParams{0, 1}, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace iw::memory
