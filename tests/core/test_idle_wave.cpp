// Tests for idle-period extraction and wave-front analysis on crafted traces.
#include <gtest/gtest.h>

#include "core/idle_wave.hpp"

namespace iw::core {
namespace {

mpi::Segment wait_seg(std::int64_t b_ms, std::int64_t e_ms) {
  return mpi::Segment{mpi::SegKind::wait, SimTime{b_ms * 1'000'000},
                      SimTime{e_ms * 1'000'000}, 0, Duration::zero()};
}

TEST(IdlePeriods, FiltersByMinimumDuration) {
  mpi::Trace trace(2);
  trace.add_segment(0, wait_seg(0, 5));
  trace.add_segment(0, wait_seg(10, 10));  // zero length (excluded)
  trace.add_segment(0, wait_seg(20, 21));  // 1 ms
  const auto all = idle_periods(trace, 0, Duration::zero());
  EXPECT_EQ(all.size(), 3u);
  const auto big = idle_periods(trace, 0, milliseconds(2.0));
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0].duration(), milliseconds(5.0));
}

TEST(IdlePeriods, IgnoresNonWaitSegments) {
  mpi::Trace trace(1);
  trace.add_segment(0, mpi::Segment{mpi::SegKind::compute, SimTime{0},
                                    SimTime{1'000'000'000}, 0,
                                    Duration::zero()});
  trace.add_segment(0, mpi::Segment{mpi::SegKind::injected, SimTime{0},
                                    SimTime{1'000'000'000}, 0,
                                    Duration::zero()});
  EXPECT_TRUE(idle_periods(trace, 0, Duration::zero()).empty());
}

TEST(RankAtHops, OpenChainClipsAtEdges) {
  EXPECT_EQ(rank_at_hops(5, 2, +1, 10, workload::Boundary::open), 7);
  EXPECT_EQ(rank_at_hops(5, 5, -1, 10, workload::Boundary::open), 0);
  EXPECT_EQ(rank_at_hops(5, 6, -1, 10, workload::Boundary::open),
            std::nullopt);
  EXPECT_EQ(rank_at_hops(5, 5, +1, 10, workload::Boundary::open),
            std::nullopt);
}

TEST(RankAtHops, PeriodicWraps) {
  EXPECT_EQ(rank_at_hops(5, 6, +1, 10, workload::Boundary::periodic), 1);
  EXPECT_EQ(rank_at_hops(5, 6, -1, 10, workload::Boundary::periodic), 9);
  EXPECT_EQ(rank_at_hops(0, 10, +1, 10, workload::Boundary::periodic), 0);
}

/// Builds a synthetic trace of a clean wave: injected at rank 2, arriving
/// at rank 2+k at time (10 + 4k) ms with amplitude (20 - 2k) ms.
mpi::Trace synthetic_wave(int ranks) {
  mpi::Trace trace(ranks);
  trace.add_segment(2, mpi::Segment{mpi::SegKind::injected,
                                    SimTime{10'000'000}, SimTime{30'000'000},
                                    0, Duration::zero()});
  for (int k = 1; 2 + k < ranks; ++k) {
    const std::int64_t begin = (10 + 4 * k) * 1'000'000;
    const std::int64_t dur = (20 - 2 * k) * 1'000'000;
    if (dur <= 0) break;
    trace.add_segment(2 + k,
                      mpi::Segment{mpi::SegKind::wait, SimTime{begin},
                                   SimTime{begin + dur}, 0, Duration::zero()});
  }
  return trace;
}

TEST(AnalyzeWave, RecoversSpeedAndDecayExactly) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.direction = +1;
  const WaveAnalysis wave = analyze_wave(trace, probe);

  // Front: 4 ms per hop -> 250 ranks/s.
  EXPECT_NEAR(wave.speed_ranks_per_sec, 250.0, 1e-6);
  EXPECT_NEAR(wave.front_fit.r2, 1.0, 1e-12);
  // Amplitude: -2 ms per hop -> decay 2000 us/rank.
  EXPECT_NEAR(wave.decay_us_per_rank, 2000.0, 1e-6);
  // Amplitudes 18,16,...,2 ms: 9 ranks reached.
  EXPECT_EQ(wave.survival_hops, 9);
}

TEST(AnalyzeWave, MinIdleCutsShortPeriods) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(10.0);  // only amplitudes >= 10 ms count
  probe.direction = +1;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.survival_hops, 5);  // 18,16,14,12,10
}

TEST(AnalyzeWave, DirectionDownFindsNothingInUpwardWave) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.direction = -1;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.survival_hops, 0);
  EXPECT_DOUBLE_EQ(wave.speed_ranks_per_sec, 0.0);
}

TEST(AnalyzeWave, MaxHopsLimitsProbe) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.direction = +1;
  probe.max_hops = 3;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.observations.size(), 3u);
  EXPECT_EQ(wave.survival_hops, 3);
}

// ---- fit edge cases: every degenerate trace must yield a well-defined
// "no fit" (zeros, valid=false), never NaN or garbage. ----

TEST(AnalyzeWave, WaveNeverReachesAnyRank) {
  mpi::Trace trace(8);  // nothing but silence
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.reached_count, 0);
  EXPECT_EQ(wave.survival_hops, 0);
  EXPECT_FALSE(wave.front_valid);
  EXPECT_FALSE(wave.front_fit.valid);
  EXPECT_EQ(wave.front_fit.n, 0u);
  EXPECT_DOUBLE_EQ(wave.speed_ranks_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(wave.decay_us_per_rank, 0.0);
  EXPECT_DOUBLE_EQ(wave.front_rmse_us, 0.0);
  EXPECT_DOUBLE_EQ(wave.amplitude_rmse_us, 0.0);
}

TEST(AnalyzeWave, SingleObservationFrontIsDegenerateNotGarbage) {
  // Only one rank ever idles: least squares on one point has no slope.
  mpi::Trace trace(8);
  trace.add_segment(3, wait_seg(20, 30));
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.reached_count, 1);
  EXPECT_EQ(wave.survival_hops, 1);
  EXPECT_EQ(wave.front_fit.n, 1u);
  EXPECT_FALSE(wave.front_fit.valid);
  EXPECT_FALSE(wave.front_valid);
  EXPECT_DOUBLE_EQ(wave.speed_ranks_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(wave.decay_us_per_rank, 0.0);
  EXPECT_DOUBLE_EQ(wave.front_rmse_us, 0.0);
}

TEST(AnalyzeWave, PeriodicBoundaryHopsWrapAround) {
  // 6 ranks, injection at 4, upward probe: hops 1..5 visit 5,0,1,2,3.
  mpi::Trace trace(6);
  for (int k = 1; k <= 3; ++k)
    trace.add_segment((4 + k) % 6, wait_seg(10 + 4 * k, 18 + 4 * k));
  WaveProbe probe;
  probe.injection_rank = 4;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.boundary = workload::Boundary::periodic;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  ASSERT_EQ(wave.observations.size(), 5u);  // once around minus one
  EXPECT_EQ(wave.observations[0].rank, 5);
  EXPECT_EQ(wave.observations[1].rank, 0);  // wrapped
  EXPECT_EQ(wave.observations[2].rank, 1);
  EXPECT_TRUE(wave.observations[1].reached);
  EXPECT_EQ(wave.survival_hops, 3);
  EXPECT_TRUE(wave.front_valid);
  EXPECT_NEAR(wave.speed_ranks_per_sec, 250.0, 1e-6);  // 4 ms per hop
}

TEST(AnalyzeWave, AllWaitsBelowMinIdleYieldNoFit) {
  const mpi::Trace trace = synthetic_wave(12);  // amplitudes 18..2 ms
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(25.0);  // above every amplitude
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.reached_count, 0);
  EXPECT_EQ(wave.survival_hops, 0);
  EXPECT_FALSE(wave.front_valid);
  EXPECT_DOUBLE_EQ(wave.speed_ranks_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(wave.decay_us_per_rank, 0.0);
}

TEST(AnalyzeWave, CleanWaveResidualsAreTinyAndR2Perfect) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_TRUE(wave.front_valid);
  EXPECT_EQ(wave.reached_count, 9);
  EXPECT_NEAR(wave.front_rmse_us, 0.0, 1e-6);      // exact line
  EXPECT_NEAR(wave.amplitude_rmse_us, 0.0, 1e-6);  // exact line
  EXPECT_NEAR(wave.front_fit.r2, 1.0, 1e-12);
}

TEST(AnalyzeWave, WaitsEndingBeforeInjectionAreIgnored) {
  mpi::Trace trace(4);
  // A long pre-existing wait on rank 3 ends before injection.
  trace.add_segment(3, wait_seg(0, 5));
  trace.add_segment(3, wait_seg(20, 30));
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.direction = +1;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  ASSERT_TRUE(wave.observations[0].reached);
  EXPECT_EQ(wave.observations[0].arrival, SimTime{20'000'000});
}

}  // namespace
}  // namespace iw::core
