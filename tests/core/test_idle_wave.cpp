// Tests for idle-period extraction and wave-front analysis on crafted traces.
#include <gtest/gtest.h>

#include "core/idle_wave.hpp"

namespace iw::core {
namespace {

mpi::Segment wait_seg(std::int64_t b_ms, std::int64_t e_ms) {
  return mpi::Segment{mpi::SegKind::wait, SimTime{b_ms * 1'000'000},
                      SimTime{e_ms * 1'000'000}, 0, Duration::zero()};
}

TEST(IdlePeriods, FiltersByMinimumDuration) {
  mpi::Trace trace(2);
  trace.add_segment(0, wait_seg(0, 5));
  trace.add_segment(0, wait_seg(10, 10));  // zero length (excluded)
  trace.add_segment(0, wait_seg(20, 21));  // 1 ms
  const auto all = idle_periods(trace, 0, Duration::zero());
  EXPECT_EQ(all.size(), 3u);
  const auto big = idle_periods(trace, 0, milliseconds(2.0));
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0].duration(), milliseconds(5.0));
}

TEST(IdlePeriods, IgnoresNonWaitSegments) {
  mpi::Trace trace(1);
  trace.add_segment(0, mpi::Segment{mpi::SegKind::compute, SimTime{0},
                                    SimTime{1'000'000'000}, 0,
                                    Duration::zero()});
  trace.add_segment(0, mpi::Segment{mpi::SegKind::injected, SimTime{0},
                                    SimTime{1'000'000'000}, 0,
                                    Duration::zero()});
  EXPECT_TRUE(idle_periods(trace, 0, Duration::zero()).empty());
}

TEST(RankAtHops, OpenChainClipsAtEdges) {
  EXPECT_EQ(rank_at_hops(5, 2, +1, 10, workload::Boundary::open), 7);
  EXPECT_EQ(rank_at_hops(5, 5, -1, 10, workload::Boundary::open), 0);
  EXPECT_EQ(rank_at_hops(5, 6, -1, 10, workload::Boundary::open),
            std::nullopt);
  EXPECT_EQ(rank_at_hops(5, 5, +1, 10, workload::Boundary::open),
            std::nullopt);
}

TEST(RankAtHops, PeriodicWraps) {
  EXPECT_EQ(rank_at_hops(5, 6, +1, 10, workload::Boundary::periodic), 1);
  EXPECT_EQ(rank_at_hops(5, 6, -1, 10, workload::Boundary::periodic), 9);
  EXPECT_EQ(rank_at_hops(0, 10, +1, 10, workload::Boundary::periodic), 0);
}

/// Builds a synthetic trace of a clean wave: injected at rank 2, arriving
/// at rank 2+k at time (10 + 4k) ms with amplitude (20 - 2k) ms.
mpi::Trace synthetic_wave(int ranks) {
  mpi::Trace trace(ranks);
  trace.add_segment(2, mpi::Segment{mpi::SegKind::injected,
                                    SimTime{10'000'000}, SimTime{30'000'000},
                                    0, Duration::zero()});
  for (int k = 1; 2 + k < ranks; ++k) {
    const std::int64_t begin = (10 + 4 * k) * 1'000'000;
    const std::int64_t dur = (20 - 2 * k) * 1'000'000;
    if (dur <= 0) break;
    trace.add_segment(2 + k,
                      mpi::Segment{mpi::SegKind::wait, SimTime{begin},
                                   SimTime{begin + dur}, 0, Duration::zero()});
  }
  return trace;
}

TEST(AnalyzeWave, RecoversSpeedAndDecayExactly) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.direction = +1;
  const WaveAnalysis wave = analyze_wave(trace, probe);

  // Front: 4 ms per hop -> 250 ranks/s.
  EXPECT_NEAR(wave.speed_ranks_per_sec, 250.0, 1e-6);
  EXPECT_NEAR(wave.front_fit.r2, 1.0, 1e-12);
  // Amplitude: -2 ms per hop -> decay 2000 us/rank.
  EXPECT_NEAR(wave.decay_us_per_rank, 2000.0, 1e-6);
  // Amplitudes 18,16,...,2 ms: 9 ranks reached.
  EXPECT_EQ(wave.survival_hops, 9);
}

TEST(AnalyzeWave, MinIdleCutsShortPeriods) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(10.0);  // only amplitudes >= 10 ms count
  probe.direction = +1;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.survival_hops, 5);  // 18,16,14,12,10
}

TEST(AnalyzeWave, DirectionDownFindsNothingInUpwardWave) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.direction = -1;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.survival_hops, 0);
  EXPECT_DOUBLE_EQ(wave.speed_ranks_per_sec, 0.0);
}

TEST(AnalyzeWave, MaxHopsLimitsProbe) {
  const mpi::Trace trace = synthetic_wave(12);
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.direction = +1;
  probe.max_hops = 3;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  EXPECT_EQ(wave.observations.size(), 3u);
  EXPECT_EQ(wave.survival_hops, 3);
}

TEST(AnalyzeWave, WaitsEndingBeforeInjectionAreIgnored) {
  mpi::Trace trace(4);
  // A long pre-existing wait on rank 3 ends before injection.
  trace.add_segment(3, wait_seg(0, 5));
  trace.add_segment(3, wait_seg(20, 30));
  WaveProbe probe;
  probe.injection_rank = 2;
  probe.injection_time = SimTime{10'000'000};
  probe.min_idle = milliseconds(1.0);
  probe.direction = +1;
  const WaveAnalysis wave = analyze_wave(trace, probe);
  ASSERT_TRUE(wave.observations[0].reached);
  EXPECT_EQ(wave.observations[0].arrival, SimTime{20'000'000});
}

}  // namespace
}  // namespace iw::core
