// Tests for the Cluster facade and experiment helpers.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "workload/delay.hpp"
#include "workload/ring.hpp"

namespace iw::core {
namespace {

TEST(Cluster, RunsARingToCompletion) {
  workload::RingSpec ring;
  ring.ranks = 4;
  ring.steps = 3;
  ring.texec = milliseconds(1.0);
  ring.noisy = false;

  ClusterConfig config = cluster_for_ring(ring);
  Cluster cluster(config);
  const auto trace = cluster.run(workload::build_ring(ring));
  EXPECT_EQ(trace.ranks(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(trace.finish(r), SimTime::zero() + milliseconds(3.0));
    EXPECT_EQ(trace.step_begin(r).size(), 3u);
  }
  EXPECT_GT(cluster.events_processed(), 0u);
}

TEST(Cluster, RunIsSingleShot) {
  workload::RingSpec ring;
  ring.ranks = 2;
  ring.steps = 1;
  ring.noisy = false;
  ClusterConfig config = cluster_for_ring(ring);
  Cluster cluster(config);
  const auto programs = workload::build_ring(ring);
  (void)cluster.run(programs);
  EXPECT_THROW((void)cluster.run(programs), std::invalid_argument);
}

TEST(Cluster, ResetReproducesAFreshRunExactly) {
  workload::RingSpec ring;
  ring.ranks = 6;
  ring.steps = 6;
  ring.texec = milliseconds(1.0);
  const ClusterConfig config = cluster_for_ring(ring);
  const auto programs = workload::build_ring(ring);

  Cluster fresh(config);
  const auto want = fresh.run(programs);

  Cluster reused(config);
  (void)reused.run(programs);
  reused.reset(config);
  const auto got = reused.run(programs);

  ASSERT_EQ(got.ranks(), want.ranks());
  for (int r = 0; r < got.ranks(); ++r) {
    EXPECT_EQ(got.finish(r), want.finish(r));
    ASSERT_EQ(got.segments(r).size(), want.segments(r).size());
    for (std::size_t s = 0; s < got.segments(r).size(); ++s) {
      EXPECT_EQ(got.segments(r)[s].begin, want.segments(r)[s].begin);
      EXPECT_EQ(got.segments(r)[s].end, want.segments(r)[s].end);
      EXPECT_EQ(got.segments(r)[s].kind, want.segments(r)[s].kind);
    }
  }
  EXPECT_EQ(reused.events_processed(), fresh.events_processed());
}

TEST(Cluster, ResetCanReshapeTheTopology) {
  workload::RingSpec small;
  small.ranks = 4;
  small.steps = 2;
  small.noisy = false;
  workload::RingSpec big;
  big.ranks = 10;
  big.steps = 2;
  big.noisy = false;

  Cluster cluster(cluster_for_ring(small));
  EXPECT_EQ(cluster.run(workload::build_ring(small)).ranks(), 4);
  cluster.reset(cluster_for_ring(big));
  EXPECT_EQ(cluster.topology().ranks(), 10);
  EXPECT_EQ(cluster.run(workload::build_ring(big)).ranks(), 10);
  cluster.reset(cluster_for_ring(small));
  EXPECT_EQ(cluster.run(workload::build_ring(small)).ranks(), 4);
}

TEST(Cluster, ReusedRunsStopGrowingTransportPools) {
  workload::RingSpec ring;
  ring.ranks = 8;
  ring.steps = 10;
  ring.noisy = false;
  const ClusterConfig config = cluster_for_ring(ring);
  const auto programs = workload::build_ring(ring);

  Cluster cluster(config);
  (void)cluster.run(programs);  // warm every pool
  cluster.reset(config);
  (void)cluster.run(programs);
  const auto warm = cluster.transport_pool_stats();
  for (int i = 0; i < 3; ++i) {
    cluster.reset(config);
    (void)cluster.run(programs);
  }
  EXPECT_EQ(cluster.transport_pool_stats().allocations, warm.allocations);
}

TEST(Cluster, ProgramCountMustMatchRanks) {
  workload::RingSpec ring;
  ring.ranks = 4;
  ClusterConfig config = cluster_for_ring(ring);
  config.topo.ranks = 5;
  Cluster cluster(config);
  EXPECT_THROW((void)cluster.run(workload::build_ring(ring)),
               std::invalid_argument);
}

TEST(Cluster, MessageTimeFollowsProtocol) {
  workload::RingSpec ring;
  ring.ranks = 4;
  ClusterConfig config = cluster_for_ring(ring);
  Cluster cluster(config);
  const Duration small = cluster.message_time(0, 1, 8192);
  const Duration large = cluster.message_time(0, 1, 200'000);
  EXPECT_LT(small, large);
}

TEST(Cluster, SystemNoiseChangesTiming) {
  workload::RingSpec ring;
  ring.ranks = 2;
  ring.steps = 10;
  ring.texec = milliseconds(1.0);

  ClusterConfig silent = cluster_for_ring(ring);
  silent.system_noise = noise::NoiseSpec::none();
  Cluster c1(silent);
  const auto t_silent = c1.run(workload::build_ring(ring)).makespan();

  ClusterConfig noisy = cluster_for_ring(ring);
  noisy.system_noise = noise::NoiseSpec::exponential(microseconds(200.0));
  Cluster c2(noisy);
  const auto t_noisy = c2.run(workload::build_ring(ring)).makespan();

  EXPECT_GT(t_noisy, t_silent);
}

TEST(ExperimentHelpers, MeasuredCycleFromMarks) {
  mpi::Trace trace(1);
  for (int s = 0; s < 5; ++s)
    trace.mark_step(0, s, SimTime{s * 2'000'000});
  EXPECT_EQ(measured_cycle(trace, 0, 1, 4), milliseconds(2.0));
  EXPECT_THROW((void)measured_cycle(trace, 0, 3, 3), std::invalid_argument);
  EXPECT_THROW((void)measured_cycle(trace, 0, 0, 5), std::invalid_argument);
}

TEST(ExperimentHelpers, InjectionBegin) {
  mpi::Trace trace(2);
  trace.add_segment(1, {mpi::SegKind::injected, SimTime{42}, SimTime{100},
                        0, Duration::zero()});
  EXPECT_EQ(injection_begin(trace, 1), SimTime{42});
  EXPECT_EQ(injection_begin(trace, 0), SimTime::zero());
}

TEST(ExperimentHelpers, ClusterForRingShapes) {
  workload::RingSpec ring;
  ring.ranks = 12;
  const ClusterConfig ppn1 = cluster_for_ring(ring, true);
  EXPECT_EQ(net::Topology(ppn1.topo).nodes(), 12);
  const ClusterConfig packed = cluster_for_ring(ring, false, 6);
  EXPECT_EQ(net::Topology(packed.topo).sockets(), 2);
}

TEST(RunWaveExperiment, NoDelaysMeansNoWave) {
  workload::RingSpec ring;
  ring.ranks = 4;
  ring.steps = 3;
  ring.noisy = false;
  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring);
  const auto result = run_wave_experiment(exp);
  EXPECT_TRUE(result.up.observations.empty());
  EXPECT_TRUE(result.down.observations.empty());
  EXPECT_EQ(result.trace.ranks(), 4);
}

TEST(RunWaveExperiment, ReportsProtocolAndPrediction) {
  workload::RingSpec ring;
  ring.ranks = 8;
  ring.steps = 12;
  ring.texec = milliseconds(1.0);
  ring.noisy = false;
  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring);
  exp.delays = workload::single_delay(2, 0, milliseconds(5.0));
  const auto result = run_wave_experiment(exp);
  EXPECT_EQ(result.protocol, mpi::WireProtocol::eager);
  EXPECT_GT(result.predicted_speed, 900.0);   // ~1000 ranks/s at 1 ms
  EXPECT_LT(result.predicted_speed, 1000.0);  // comm adds a little
  EXPECT_GT(result.up.speed_ranks_per_sec, 0.0);
}

}  // namespace
}  // namespace iw::core
