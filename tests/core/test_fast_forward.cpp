// Fast-forward engine: eligibility gating, byte-identity against the full
// event simulation across workload variants, and the accounting counters.
//
// The identity checks are the load-bearing part: fast-forward is only
// admissible because its trace is *indistinguishable* from the full run's
// wherever they overlap, so every variant compares segment-for-segment.
// The sanitizer-matrix CI legs run exactly this suite (ctest -R
// fast_forward) to certify the synthesis under ASan and TSan too.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/experiment.hpp"
#include "core/fast_forward.hpp"
#include "obs/metrics.hpp"
#include "workload/delay.hpp"

namespace iw::core {
namespace {

WaveExperiment ring_experiment(int np, workload::Direction direction,
                               workload::Boundary boundary, int distance) {
  WaveExperiment exp;
  exp.ring.ranks = np;
  exp.ring.direction = direction;
  exp.ring.boundary = boundary;
  exp.ring.distance = distance;
  exp.ring.msg_bytes = 8192;
  exp.ring.steps = 12;
  exp.cluster = cluster_for_ring(exp.ring);
  exp.cluster.system_noise = noise::NoiseSpec::none();
  exp.delays = workload::single_delay(np / 3, 1, milliseconds(10.0));
  return exp;
}

/// Content identity: segments, step marks and finish times. Slab layout is
/// allowed to differ (silent rows alias shared canonical storage).
void expect_traces_identical(const mpi::Trace& a, const mpi::Trace& b) {
  ASSERT_EQ(a.ranks(), b.ranks());
  for (int r = 0; r < a.ranks(); ++r) {
    const auto sa = a.segments(r);
    const auto sb = b.segments(r);
    ASSERT_EQ(sa.size(), sb.size()) << "segment count, rank " << r;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i].kind, sb[i].kind) << "rank " << r << " segment " << i;
      ASSERT_EQ(sa[i].begin, sb[i].begin) << "rank " << r << " segment " << i;
      ASSERT_EQ(sa[i].end, sb[i].end) << "rank " << r << " segment " << i;
      ASSERT_EQ(sa[i].step, sb[i].step) << "rank " << r << " segment " << i;
    }
    const auto ta = a.step_begin(r);
    const auto tb = b.step_begin(r);
    ASSERT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin(), tb.end()))
        << "step marks, rank " << r;
    ASSERT_EQ(a.finish(r), b.finish(r)) << "finish, rank " << r;
  }
}

void expect_ffwd_matches_full(WaveExperiment exp) {
  exp.ffwd = FfwdMode::off;
  const WaveResult full = run_wave_experiment(exp);
  exp.ffwd = FfwdMode::force;
  const WaveResult fast = run_wave_experiment(exp);
  expect_traces_identical(full.trace, fast.trace);
  // The wave observables derive from the trace, so they must agree exactly.
  EXPECT_EQ(full.up.survival_hops, fast.up.survival_hops);
  EXPECT_EQ(full.down.survival_hops, fast.down.survival_hops);
  EXPECT_DOUBLE_EQ(full.up.speed_ranks_per_sec, fast.up.speed_ranks_per_sec);
  EXPECT_EQ(full.measured_cycle, fast.measured_cycle);
  // Accounting: the full path never skips; the fast path must have.
  EXPECT_EQ(full.ffwd_skips, 0u);
  EXPECT_GT(fast.ffwd_skips, 0u);
  EXPECT_GT(fast.ffwd_time_skipped.ns(), 0);
  EXPECT_LT(fast.events_processed, full.events_processed);
}

TEST(FastForward, ByteIdentityOpenUnidirectional) {
  expect_ffwd_matches_full(ring_experiment(64, workload::Direction::unidirectional,
                                           workload::Boundary::open, 1));
}

TEST(FastForward, ByteIdentityOpenBidirectionalDistance2) {
  expect_ffwd_matches_full(ring_experiment(96, workload::Direction::bidirectional,
                                           workload::Boundary::open, 2));
}

TEST(FastForward, ByteIdentityPeriodicBidirectional) {
  expect_ffwd_matches_full(ring_experiment(72, workload::Direction::bidirectional,
                                           workload::Boundary::periodic, 1));
}

TEST(FastForward, ByteIdentityHierarchicalTopology) {
  // Packed sockets behind a leaf-switch tier: pattern period
  // 2 x 2 x 8 = 32 ranks, exercised by the residue synthesis.
  WaveExperiment exp = ring_experiment(
      128, workload::Direction::unidirectional, workload::Boundary::open, 1);
  exp.cluster = cluster_for_ring(exp.ring, /*ppn1=*/false, /*per_socket=*/2);
  exp.cluster.system_noise = noise::NoiseSpec::none();
  exp.cluster.topo.nodes_per_switch = 8;
  expect_ffwd_matches_full(exp);
}

TEST(FastForward, ByteIdentityPeriodicHierarchical) {
  // Periodic eligibility demands np divisible by the period (here 32).
  WaveExperiment exp = ring_experiment(
      96, workload::Direction::bidirectional, workload::Boundary::periodic, 1);
  exp.cluster = cluster_for_ring(exp.ring, /*ppn1=*/false, /*per_socket=*/2);
  exp.cluster.system_noise = noise::NoiseSpec::none();
  exp.cluster.topo.nodes_per_switch = 8;
  expect_ffwd_matches_full(exp);
}

TEST(FastForward, SkipAccountingMatchesPlan) {
  const WaveExperiment exp = ring_experiment(
      80, workload::Direction::unidirectional, workload::Boundary::open, 1);
  const FastForwardPlan plan = plan_fast_forward(exp);
  ASSERT_TRUE(plan.eligible) << plan.reason;
  ASSERT_LT(plan.active_count, static_cast<std::size_t>(80));
  WaveExperiment forced = exp;
  forced.ffwd = FfwdMode::force;
  const WaveResult result = run_wave_experiment(forced);
  const std::uint64_t silent = 80 - plan.active_count;
  EXPECT_EQ(result.ffwd_skips,
            silent * static_cast<std::uint64_t>(exp.ring.steps));
}

TEST(FastForward, PublishesMetrics) {
  WaveExperiment exp = ring_experiment(
      64, workload::Direction::unidirectional, workload::Boundary::open, 1);
  exp.ffwd = FfwdMode::force;
  obs::MetricsRegistry metrics;
  exp.cluster.metrics = &metrics;
  const WaveResult result = run_wave_experiment(exp);
  EXPECT_EQ(metrics.counter(obs::MetricId::engine_ffwd_skips),
            result.ffwd_skips);
  EXPECT_EQ(metrics.counter(obs::MetricId::engine_ffwd_time_skipped),
            static_cast<std::uint64_t>(result.ffwd_time_skipped.ns() / 1000));
  EXPECT_GT(metrics.gauge(obs::MetricId::mem_peak_bytes_per_rank), 0.0);
}

TEST(FastForward, IneligibleReasonsAndForceThrows) {
  // Injected noise randomizes every rank — nothing is silent.
  WaveExperiment noisy = ring_experiment(
      64, workload::Direction::unidirectional, workload::Boundary::open, 1);
  noisy.injected_noise = noise::NoiseSpec::exponential(microseconds(50.0));
  EXPECT_FALSE(plan_fast_forward(noisy).eligible);
  noisy.ffwd = FfwdMode::force;
  EXPECT_THROW((void)run_wave_experiment(noisy), std::invalid_argument);

  // System noise, same story.
  WaveExperiment sys = ring_experiment(
      64, workload::Direction::unidirectional, workload::Boundary::open, 1);
  sys.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  EXPECT_FALSE(plan_fast_forward(sys).eligible);

  // Finite NIC injection depth breaks the ideal-NIC ghost-send premise.
  WaveExperiment nic = ring_experiment(
      64, workload::Direction::unidirectional, workload::Boundary::open, 1);
  nic.cluster.transport.nic.injection_depth = 2;
  EXPECT_FALSE(plan_fast_forward(nic).eligible);

  // Rendezvous-sized messages have handshake state the synthesis skips.
  WaveExperiment rdv = ring_experiment(
      64, workload::Direction::unidirectional, workload::Boundary::open, 1);
  rdv.ring.msg_bytes = 262144;
  EXPECT_FALSE(plan_fast_forward(rdv).eligible);

  // Periodic rings need np divisible by the pattern period (2x2 packed
  // sockets: period 4; 42 % 4 != 0).
  WaveExperiment periodic = ring_experiment(
      42, workload::Direction::unidirectional, workload::Boundary::periodic,
      1);
  periodic.cluster = cluster_for_ring(periodic.ring, false, 2);
  periodic.cluster.system_noise = noise::NoiseSpec::none();
  EXPECT_FALSE(plan_fast_forward(periodic).eligible);

  // Every refusal must carry its reason.
  EXPECT_FALSE(plan_fast_forward(noisy).reason.empty());
  EXPECT_FALSE(plan_fast_forward(periodic).reason.empty());
}

TEST(FastForward, AutoFallsBackWhenNothingIsSilent) {
  // At np=12 with an open boundary the delay cone and both end cones cover
  // the whole chain: auto mode must fall back to the full simulation.
  WaveExperiment exp = ring_experiment(
      12, workload::Direction::unidirectional, workload::Boundary::open, 1);
  const FastForwardPlan plan = plan_fast_forward(exp);
  ASSERT_EQ(plan.active_count, static_cast<std::size_t>(12));
  exp.ffwd = FfwdMode::auto_;
  const WaveResult result = run_wave_experiment(exp);
  EXPECT_EQ(result.ffwd_skips, 0u);
  EXPECT_GT(result.events_processed, 0u);
}

TEST(FastForward, AutoFallsBackWhenIneligible) {
  WaveExperiment exp = ring_experiment(
      64, workload::Direction::unidirectional, workload::Boundary::open, 1);
  exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  exp.ffwd = FfwdMode::auto_;
  const WaveResult result = run_wave_experiment(exp);
  EXPECT_EQ(result.ffwd_skips, 0u);
  EXPECT_GT(result.up.survival_hops, 0);
}

TEST(FastForward, ModeParsing) {
  EXPECT_EQ(ffwd_mode_from_string("off"), FfwdMode::off);
  EXPECT_EQ(ffwd_mode_from_string("auto"), FfwdMode::auto_);
  EXPECT_EQ(ffwd_mode_from_string("force"), FfwdMode::force);
  EXPECT_THROW((void)ffwd_mode_from_string("sometimes"),
               std::invalid_argument);
}

}  // namespace
}  // namespace iw::core
