// Tests for trace CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/trace_io.hpp"

namespace iw::core {
namespace {

mpi::Trace sample_trace() {
  mpi::Trace trace(2);
  trace.add_segment(0, {mpi::SegKind::compute, SimTime{0}, SimTime{3000000},
                        0, Duration{2400}});
  trace.add_segment(0, {mpi::SegKind::wait, SimTime{3000000},
                        SimTime{3500000}, 0, Duration::zero()});
  trace.add_segment(1, {mpi::SegKind::injected, SimTime{100}, SimTime{200},
                        1, Duration::zero()});
  trace.mark_step(0, 0, SimTime{0});
  trace.mark_step(0, 1, SimTime{3500000});
  trace.mark_step(1, 0, SimTime{50});
  trace.set_finish(0, SimTime{3500000});
  trace.set_finish(1, SimTime{200});
  return trace;
}

TEST(TraceIo, SegmentsCsvRowsAndHeader) {
  std::ostringstream out;
  write_segments_csv(sample_trace(), out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "rank,kind,begin_ns,end_ns,duration_ns,step,noise_ns");
  std::getline(in, line);
  EXPECT_EQ(line, "0,compute,0,3000000,3000000,0,2400");
  std::getline(in, line);
  EXPECT_EQ(line, "0,wait,3000000,3500000,500000,0,0");
  std::getline(in, line);
  EXPECT_EQ(line, "1,injected,100,200,100,1,0");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(TraceIo, StepPositionsCsv) {
  std::ostringstream out;
  write_step_positions_csv(sample_trace(), out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "step,rank,begin_ns");
  std::getline(in, line);
  EXPECT_EQ(line, "0,0,0");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0,3500000");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,50");
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "trace_io_test.tmp.csv";
  write_segments_csv(sample_trace(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4);  // header + 3 segments
  std::remove(path.c_str());
}

TEST(TraceIo, BadPathThrows) {
  EXPECT_THROW(write_segments_csv(sample_trace(), "/nonexistent-dir/x.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace iw::core
