// Tests for trace CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace_io.hpp"

namespace iw::core {
namespace {

mpi::Trace sample_trace() {
  mpi::Trace trace(2);
  trace.add_segment(0, {mpi::SegKind::compute, SimTime{0}, SimTime{3000000},
                        0, Duration{2400}});
  trace.add_segment(0, {mpi::SegKind::wait, SimTime{3000000},
                        SimTime{3500000}, 0, Duration::zero()});
  trace.add_segment(1, {mpi::SegKind::injected, SimTime{100}, SimTime{200},
                        1, Duration::zero()});
  trace.mark_step(0, 0, SimTime{0});
  trace.mark_step(0, 1, SimTime{3500000});
  trace.mark_step(1, 0, SimTime{50});
  trace.set_finish(0, SimTime{3500000});
  trace.set_finish(1, SimTime{200});
  return trace;
}

TEST(TraceIo, SegmentsCsvRowsAndHeader) {
  std::ostringstream out;
  write_segments_csv(sample_trace(), out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "rank,kind,begin_ns,end_ns,duration_ns,step,noise_ns");
  std::getline(in, line);
  EXPECT_EQ(line, "0,compute,0,3000000,3000000,0,2400");
  std::getline(in, line);
  EXPECT_EQ(line, "0,wait,3000000,3500000,500000,0,0");
  std::getline(in, line);
  EXPECT_EQ(line, "1,injected,100,200,100,1,0");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(TraceIo, StepPositionsCsv) {
  std::ostringstream out;
  write_step_positions_csv(sample_trace(), out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "step,rank,begin_ns");
  std::getline(in, line);
  EXPECT_EQ(line, "0,0,0");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0,3500000");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,50");
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) out.push_back(cell);
  return out;
}

// Schema-drift guard: the exact header column lists are a published
// interface (external pandas/gnuplot consumers key on them); renaming,
// reordering or appending a column must be a conscious, test-visible act.
TEST(TraceIo, CsvHeaderSchemas) {
  const std::vector<std::string> seg_cols{
      "rank", "kind", "begin_ns", "end_ns", "duration_ns", "step",
      "noise_ns"};
  const std::vector<std::string> step_cols{"step", "rank", "begin_ns"};

  std::ostringstream seg_out;
  write_segments_csv(mpi::Trace(1), seg_out);
  std::istringstream seg_in(seg_out.str());
  std::string header;
  std::getline(seg_in, header);
  EXPECT_EQ(split_csv(header), seg_cols);

  std::ostringstream step_out;
  write_step_positions_csv(mpi::Trace(1), step_out);
  std::istringstream step_in(step_out.str());
  std::getline(step_in, header);
  EXPECT_EQ(split_csv(header), step_cols);
}

// Parse-back round trip: every segment written must read back field-for-
// field against the hand-built trace, in emission order (rank-major, then
// recording order within a rank) — catching formatting drift the exact-
// string row tests above would attribute to the wrong column.
TEST(TraceIo, SegmentsCsvParsesBackToTheTrace) {
  const mpi::Trace trace = sample_trace();
  std::ostringstream out;
  write_segments_csv(trace, out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header, checked elsewhere

  std::size_t row = 0;
  for (int rank = 0; rank < trace.ranks(); ++rank) {
    for (const auto& seg : trace.segments(rank)) {
      ASSERT_TRUE(std::getline(in, line)) << "missing row " << row;
      const auto cells = split_csv(line);
      ASSERT_EQ(cells.size(), 7u) << line;
      EXPECT_EQ(std::stoi(cells[0]), rank) << line;
      EXPECT_EQ(cells[1], mpi::to_string(seg.kind)) << line;
      EXPECT_EQ(std::stoll(cells[2]), seg.begin.ns()) << line;
      EXPECT_EQ(std::stoll(cells[3]), seg.end.ns()) << line;
      EXPECT_EQ(std::stoll(cells[4]), seg.duration().ns()) << line;
      EXPECT_EQ(std::stoi(cells[5]), seg.step) << line;
      EXPECT_EQ(std::stoll(cells[6]), seg.noise.ns()) << line;
      ++row;
    }
  }
  EXPECT_FALSE(std::getline(in, line)) << "extra row: " << line;
}

TEST(TraceIo, StepPositionsCsvParsesBackToTheTrace) {
  const mpi::Trace trace = sample_trace();
  std::ostringstream out;
  write_step_positions_csv(trace, out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header

  std::size_t rows = 0;
  std::size_t expected = 0;
  for (int rank = 0; rank < trace.ranks(); ++rank)
    expected += trace.step_begin(rank).size();
  while (std::getline(in, line)) {
    const auto cells = split_csv(line);
    ASSERT_EQ(cells.size(), 3u) << line;
    const int step = std::stoi(cells[0]);
    const int rank = std::stoi(cells[1]);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, trace.ranks());
    const auto& begins = trace.step_begin(rank);
    ASSERT_GE(step, 0);
    ASSERT_LT(static_cast<std::size_t>(step), begins.size()) << line;
    EXPECT_EQ(std::stoll(cells[2]),
              begins[static_cast<std::size_t>(step)].ns())
        << line;
    ++rows;
  }
  EXPECT_EQ(rows, expected);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "trace_io_test.tmp.csv";
  write_segments_csv(sample_trace(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4);  // header + 3 segments
  std::remove(path.c_str());
}

TEST(TraceIo, BadPathThrows) {
  EXPECT_THROW(write_segments_csv(sample_trace(), "/nonexistent-dir/x.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace iw::core
