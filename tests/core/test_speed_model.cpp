// Tests for the Eq. 2 analytic propagation-speed model.
#include <gtest/gtest.h>

#include "core/speed_model.hpp"

namespace iw::core {
namespace {

using workload::Direction;
using mpi::WireProtocol;

TEST(SpeedModel, SigmaTwoOnlyForBidirectionalRendezvous) {
  EXPECT_EQ(sigma_factor(Direction::unidirectional, WireProtocol::eager), 1);
  EXPECT_EQ(sigma_factor(Direction::bidirectional, WireProtocol::eager), 1);
  EXPECT_EQ(sigma_factor(Direction::unidirectional, WireProtocol::rendezvous),
            1);
  EXPECT_EQ(sigma_factor(Direction::bidirectional, WireProtocol::rendezvous),
            2);
}

TEST(SpeedModel, PaperDefaultNumbers) {
  // Texec = 3 ms, negligible Tcomm: ~333 ranks/s for sigma = d = 1.
  const double v = v_silent(1, 1, milliseconds(3.0), microseconds(10.0));
  EXPECT_NEAR(v, 332.2, 0.2);
}

TEST(SpeedModel, ScalesLinearlyInSigmaAndD) {
  const Duration texec = milliseconds(3.0);
  const Duration tcomm = microseconds(100.0);
  const double base = v_silent(1, 1, texec, tcomm);
  EXPECT_DOUBLE_EQ(v_silent(2, 1, texec, tcomm), 2.0 * base);
  EXPECT_DOUBLE_EQ(v_silent(1, 3, texec, tcomm), 3.0 * base);
  EXPECT_DOUBLE_EQ(v_silent(2, 3, texec, tcomm), 6.0 * base);
}

TEST(SpeedModel, CommunicationAndExecutionOnEqualFooting) {
  // Eq. 2: only the sum Texec + Tcomm matters.
  const double a = v_silent(1, 1, milliseconds(2.0), milliseconds(1.0));
  const double b = v_silent(1, 1, milliseconds(1.0), milliseconds(2.0));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SpeedModel, ModeOverloadAgrees) {
  const Duration texec = milliseconds(3.0);
  const Duration tcomm = microseconds(50.0);
  EXPECT_DOUBLE_EQ(
      v_silent(Direction::bidirectional, WireProtocol::rendezvous, 2, texec,
               tcomm),
      v_silent(2, 2, texec, tcomm));
  EXPECT_DOUBLE_EQ(
      v_silent(Direction::unidirectional, WireProtocol::rendezvous, 2, texec,
               tcomm),
      v_silent(1, 2, texec, tcomm));
}

TEST(SpeedModel, RejectsInvalidInputs) {
  EXPECT_THROW((void)v_silent(3, 1, milliseconds(1.0), Duration::zero()),
               std::invalid_argument);
  EXPECT_THROW((void)v_silent(1, 0, milliseconds(1.0), Duration::zero()),
               std::invalid_argument);
  EXPECT_THROW((void)v_silent(1, 1, Duration::zero(), Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace iw::core
