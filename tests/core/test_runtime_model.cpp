// Tests for the Eq. 1 nonoverlapping runtime model.
#include <gtest/gtest.h>

#include "core/runtime_model.hpp"

namespace iw::core {
namespace {

TEST(RuntimeModel, PaperParametersOneSocket) {
  const StreamModelParams p;  // paper defaults
  // Memory term: 1.2 GB / 40 GB/s = 30 ms; comm term: 4 MB / 3 GB/s ~ 1.33 ms.
  EXPECT_EQ(stream_exec_time(p, 1), milliseconds(30.0));
  EXPECT_NEAR(stream_cycle_time(p, 1).ms(), 31.33, 0.01);
}

TEST(RuntimeModel, MemoryTermScalesCommTermDoesNot) {
  const StreamModelParams p;
  EXPECT_EQ(stream_exec_time(p, 2), milliseconds(15.0));
  EXPECT_EQ(stream_exec_time(p, 10), milliseconds(3.0));
  const Duration comm1 = stream_cycle_time(p, 1) - stream_exec_time(p, 1);
  const Duration comm10 = stream_cycle_time(p, 10) - stream_exec_time(p, 10);
  EXPECT_EQ(comm1, comm10);
}

TEST(RuntimeModel, PerformanceNumbersMatchFigureScale) {
  const StreamModelParams p;
  // 1 socket: 1e8 flop / 31.33 ms ~ 3.2 GF/s — the scale of Fig. 1(b).
  EXPECT_NEAR(stream_performance(p, 1) / 1e9, 3.19, 0.05);
  // 9 sockets: exec 3.33 ms + comm 1.33 ms -> ~21 GF/s (Fig. 1(a) red).
  EXPECT_NEAR(stream_performance(p, 9) / 1e9, 21.4, 0.5);
  // Execution-only model scales linearly.
  EXPECT_NEAR(stream_exec_performance(p, 9) / stream_exec_performance(p, 1),
              9.0, 1e-5);  // ns rounding of the cycle time
}

TEST(RuntimeModel, CommBoundAtLargeSocketCounts) {
  const StreamModelParams p;
  // As n grows the model saturates at flops / (2*Vnet/bnet) ~ 75 GF/s.
  const double cap =
      static_cast<double>(p.flops) / (2.0 * p.vnet_bytes / p.bnet_Bps);
  EXPECT_LT(stream_performance(p, 1000), cap);
  EXPECT_GT(stream_performance(p, 1000), 0.95 * cap);
}

TEST(RuntimeModel, PerformanceFromTime) {
  EXPECT_DOUBLE_EQ(performance_from_time(1'000'000, milliseconds(1.0)), 1e9);
  EXPECT_THROW((void)performance_from_time(1, Duration::zero()),
               std::invalid_argument);
}

TEST(RuntimeModel, RejectsBadSocketCount) {
  const StreamModelParams p;
  EXPECT_THROW((void)stream_exec_time(p, 0), std::invalid_argument);
}

}  // namespace
}  // namespace iw::core
