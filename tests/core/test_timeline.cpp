// Tests for the ASCII timeline renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "core/timeline.hpp"

namespace iw::core {
namespace {

mpi::Trace two_rank_trace() {
  mpi::Trace trace(2);
  // Rank 0: compute 0-10 ms, injected delay 10-20 ms.
  trace.add_segment(0, {mpi::SegKind::compute, SimTime{0},
                        SimTime{10'000'000}, 0, Duration::zero()});
  trace.add_segment(0, {mpi::SegKind::injected, SimTime{10'000'000},
                        SimTime{20'000'000}, 0, Duration::zero()});
  // Rank 1: compute 0-10 ms, waits 10-20 ms.
  trace.add_segment(1, {mpi::SegKind::compute, SimTime{0},
                        SimTime{10'000'000}, 0, Duration::zero()});
  trace.add_segment(1, {mpi::SegKind::wait, SimTime{10'000'000},
                        SimTime{20'000'000}, 0, Duration::zero()});
  trace.set_finish(0, SimTime{20'000'000});
  trace.set_finish(1, SimTime{20'000'000});
  return trace;
}

TEST(Timeline, GlyphsMatchSegments) {
  const auto trace = two_rank_trace();
  TimelineOptions opts;
  opts.columns = 10;
  const std::string art = render_timeline(trace, opts);
  std::istringstream in(art);
  std::string line1, line0;
  std::getline(in, line1);  // highest rank first
  std::getline(in, line0);
  EXPECT_NE(line1.find("....."), std::string::npos);
  EXPECT_NE(line1.find("#####"), std::string::npos);
  EXPECT_NE(line0.find("DDDDD"), std::string::npos);
  EXPECT_EQ(line0.find('#'), std::string::npos);
}

TEST(Timeline, RanksRenderTopDown) {
  const auto trace = two_rank_trace();
  TimelineOptions opts;
  opts.columns = 10;
  const std::string art = render_timeline(trace, opts);
  EXPECT_LT(art.find("  1 |"), art.find("  0 |"));
}

TEST(Timeline, WindowClipsSegments) {
  const auto trace = two_rank_trace();
  TimelineOptions opts;
  opts.columns = 10;
  opts.from = SimTime{0};
  opts.to = SimTime{10'000'000};  // only the compute part
  opts.show_axis = false;         // the axis legend itself contains D and #
  const std::string art = render_timeline(trace, opts);
  EXPECT_EQ(art.find('D'), std::string::npos);
  EXPECT_EQ(art.find('#'), std::string::npos);
  EXPECT_NE(art.find(".........."), std::string::npos);
}

TEST(Timeline, AxisOptional) {
  const auto trace = two_rank_trace();
  TimelineOptions opts;
  opts.columns = 10;
  opts.show_axis = false;
  EXPECT_EQ(render_timeline(trace, opts).find("t = "), std::string::npos);
  opts.show_axis = true;
  EXPECT_NE(render_timeline(trace, opts).find("t = "), std::string::npos);
}

TEST(Timeline, SocketSeparators) {
  mpi::Trace trace(4);
  for (int r = 0; r < 4; ++r) {
    trace.add_segment(r, {mpi::SegKind::compute, SimTime{0}, SimTime{1000},
                          0, Duration::zero()});
    trace.set_finish(r, SimTime{1000});
  }
  TimelineOptions opts;
  opts.columns = 10;
  opts.socket_separators = true;
  opts.ranks_per_socket = 2;
  opts.show_axis = false;
  const std::string art = render_timeline(trace, opts);
  // One separator between rank 2 and rank 1 (socket boundary), none at top.
  EXPECT_EQ(std::count(art.begin(), art.end(), '-'),
            10);  // exactly one 10-wide rule
}

TEST(Timeline, InvalidOptionsRejected) {
  const auto trace = two_rank_trace();
  TimelineOptions opts;
  opts.columns = 0;
  EXPECT_THROW((void)render_timeline(trace, opts), std::invalid_argument);
  opts.columns = 10;
  opts.from = SimTime{5};
  opts.to = SimTime{5};
  EXPECT_THROW((void)render_timeline(trace, opts), std::invalid_argument);
}

}  // namespace
}  // namespace iw::core
