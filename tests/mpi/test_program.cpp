// Tests for the rank-program builder.
#include <gtest/gtest.h>

#include "mpi/program.hpp"

namespace iw::mpi {
namespace {

TEST(Program, BuilderAppendsInOrder) {
  Program p;
  p.mark(0).compute(milliseconds(3.0)).isend(1, 8192, 0).irecv(2, 8192, 0)
      .waitall();
  ASSERT_EQ(p.size(), 5u);
  EXPECT_TRUE(std::holds_alternative<OpMark>(p.ops()[0]));
  EXPECT_TRUE(std::holds_alternative<OpCompute>(p.ops()[1]));
  EXPECT_TRUE(std::holds_alternative<OpIsend>(p.ops()[2]));
  EXPECT_TRUE(std::holds_alternative<OpIrecv>(p.ops()[3]));
  EXPECT_TRUE(std::holds_alternative<OpWaitAll>(p.ops()[4]));
}

TEST(Program, TotalInjectedSums) {
  Program p;
  p.inject(milliseconds(2.0)).compute(milliseconds(1.0))
      .inject(milliseconds(3.5));
  EXPECT_EQ(p.total_injected(), milliseconds(5.5));
}

TEST(Program, RoundsCountsWaitalls) {
  Program p;
  for (int i = 0; i < 7; ++i)
    p.compute(milliseconds(1.0)).isend(0, 1, i).waitall();
  EXPECT_EQ(p.rounds(), 7);
}

TEST(Program, EmptyProgram) {
  const Program p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.rounds(), 0);
  EXPECT_EQ(p.total_injected(), Duration::zero());
}

TEST(Program, OpFieldsPreserved) {
  Program p;
  p.isend(3, 16384, 5);
  const auto& send = std::get<OpIsend>(p.ops()[0]);
  EXPECT_EQ(send.peer, 3);
  EXPECT_EQ(send.bytes, 16384);
  EXPECT_EQ(send.tag, 5);
}

TEST(Program, MemWorkStoresBytes) {
  Program p;
  p.mem_work(1'000'000, false);
  const auto& work = std::get<OpMemWork>(p.ops()[0]);
  EXPECT_EQ(work.bytes, 1'000'000);
  EXPECT_FALSE(work.noisy);
}

TEST(Program, RejectsInvalidArguments) {
  Program p;
  EXPECT_THROW(p.compute(Duration{-1}), std::invalid_argument);
  EXPECT_THROW(p.inject(Duration{-1}), std::invalid_argument);
  EXPECT_THROW(p.isend(-1, 10, 0), std::invalid_argument);
  EXPECT_THROW(p.irecv(0, -10, 0), std::invalid_argument);
  EXPECT_THROW(p.mem_work(-1), std::invalid_argument);
}

}  // namespace
}  // namespace iw::mpi
