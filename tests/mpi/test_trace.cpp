// Tests for trace recording and queries.
#include <gtest/gtest.h>

#include "mpi/trace.hpp"

namespace iw::mpi {
namespace {

Segment seg(SegKind kind, std::int64_t b, std::int64_t e, std::int32_t step = 0) {
  return Segment{kind, SimTime{b}, SimTime{e}, step, Duration::zero()};
}

TEST(Trace, RecordsSegmentsPerRank) {
  Trace t(3);
  t.add_segment(0, seg(SegKind::compute, 0, 10));
  t.add_segment(0, seg(SegKind::wait, 10, 15));
  t.add_segment(2, seg(SegKind::injected, 0, 100));
  EXPECT_EQ(t.segments(0).size(), 2u);
  EXPECT_EQ(t.segments(1).size(), 0u);
  EXPECT_EQ(t.segments(2).size(), 1u);
  EXPECT_EQ(t.ranks(), 3);
}

TEST(Trace, TotalsByKind) {
  Trace t(1);
  t.add_segment(0, seg(SegKind::compute, 0, 10));
  t.add_segment(0, seg(SegKind::wait, 10, 15));
  t.add_segment(0, seg(SegKind::compute, 15, 30));
  EXPECT_EQ(t.total(0, SegKind::compute), Duration{25});
  EXPECT_EQ(t.total(0, SegKind::wait), Duration{5});
  EXPECT_EQ(t.total(0, SegKind::injected), Duration::zero());
}

TEST(Trace, StepMarksMustBeConsecutive) {
  Trace t(1);
  t.mark_step(0, 0, SimTime{0});
  t.mark_step(0, 1, SimTime{10});
  EXPECT_EQ(t.step_begin(0).size(), 2u);
  EXPECT_EQ(t.step_begin(0)[1], SimTime{10});
  EXPECT_THROW(t.mark_step(0, 5, SimTime{20}), std::logic_error);
}

TEST(Trace, FinishAndMakespan) {
  Trace t(2);
  t.set_finish(0, SimTime{100});
  t.set_finish(1, SimTime{250});
  EXPECT_EQ(t.finish(0), SimTime{100});
  EXPECT_EQ(t.makespan(), SimTime{250});
}

TEST(Trace, SegmentDurationHelper) {
  const Segment s = seg(SegKind::wait, 5, 25);
  EXPECT_EQ(s.duration(), Duration{20});
}

TEST(Trace, RejectsBadInput) {
  EXPECT_THROW(Trace{0}, std::invalid_argument);
  Trace t(1);
  EXPECT_THROW(t.add_segment(1, seg(SegKind::compute, 0, 1)),
               std::invalid_argument);
  EXPECT_THROW(t.add_segment(0, seg(SegKind::compute, 10, 5)),
               std::logic_error);
  EXPECT_THROW((void)t.segments(-1), std::invalid_argument);
}

TEST(Trace, SegKindNames) {
  EXPECT_STREQ(to_string(SegKind::compute), "compute");
  EXPECT_STREQ(to_string(SegKind::injected), "injected");
  EXPECT_STREQ(to_string(SegKind::wait), "wait");
}

}  // namespace
}  // namespace iw::mpi
