// Tests for the process interpreter: op semantics, blocking, tracing.
#include <gtest/gtest.h>

#include <memory>

#include "memory/bandwidth_domain.hpp"
#include "mpi/process.hpp"
#include "net/fabric.hpp"
#include "noise/noise_model.hpp"

namespace iw::mpi {
namespace {

class ProcessFixture {
 public:
  explicit ProcessFixture(int ranks)
      : topo_(net::TopologySpec::one_rank_per_node(ranks)),
        fabric_(net::FabricProfile::ideal(microseconds(1.0), 1e9)),
        transport_(engine_, topo_, fabric_, {}),
        trace_(ranks) {
    for (int r = 0; r < ranks; ++r)
      procs_.push_back(
          std::make_unique<Process>(r, engine_, transport_, trace_));
    transport_.set_completion_handler([this](int rank, RequestId req) {
      procs_[static_cast<std::size_t>(rank)]->on_request_complete(req);
    });
  }

  void run(std::vector<Program> programs) {
    programs_ = std::move(programs);  // processes borrow, fixture owns
    for (std::size_t r = 0; r < programs_.size(); ++r) {
      procs_[r]->set_program(&programs_[r]);
      procs_[r]->start();
    }
    engine_.run();
  }

  sim::Engine engine_;
  net::Topology topo_;
  net::FabricProfile fabric_;
  Transport transport_;
  Trace trace_;
  std::vector<Program> programs_;
  std::vector<std::unique_ptr<Process>> procs_;
};

TEST(Process, ComputeAdvancesClockAndTraces) {
  ProcessFixture f(1);
  Program p;
  p.mark(0).compute(milliseconds(3.0), false);
  f.run({std::move(p)});
  EXPECT_TRUE(f.procs_[0]->done());
  EXPECT_EQ(f.trace_.finish(0), SimTime::zero() + milliseconds(3.0));
  ASSERT_EQ(f.trace_.segments(0).size(), 1u);
  const auto& seg = f.trace_.segments(0)[0];
  EXPECT_EQ(seg.kind, SegKind::compute);
  EXPECT_EQ(seg.duration(), milliseconds(3.0));
  EXPECT_EQ(seg.step, 0);
}

TEST(Process, InjectTracedSeparately) {
  ProcessFixture f(1);
  Program p;
  p.mark(0).compute(milliseconds(1.0), false).inject(milliseconds(9.0));
  f.run({std::move(p)});
  EXPECT_EQ(f.trace_.total(0, SegKind::injected), milliseconds(9.0));
  EXPECT_EQ(f.trace_.finish(0), SimTime::zero() + milliseconds(10.0));
}

TEST(Process, NoiseSourceExtendsComputePhases) {
  ProcessFixture f(1);
  f.procs_[0]->add_noise(
      std::make_unique<noise::UniformNoise>(microseconds(100.0),
                                            microseconds(100.0)),
      Rng(1));
  Program p;
  p.mark(0).compute(milliseconds(1.0), true).compute(milliseconds(1.0), true);
  f.run({std::move(p)});
  // Two phases, each +100 us.
  EXPECT_EQ(f.trace_.finish(0), SimTime::zero() + milliseconds(2.2));
  EXPECT_EQ(f.trace_.segments(0)[0].noise, microseconds(100.0));
}

TEST(Process, NonNoisyComputeIgnoresNoise) {
  ProcessFixture f(1);
  f.procs_[0]->add_noise(
      std::make_unique<noise::UniformNoise>(microseconds(100.0),
                                            microseconds(100.0)),
      Rng(1));
  Program p;
  p.compute(milliseconds(1.0), false);
  f.run({std::move(p)});
  EXPECT_EQ(f.trace_.finish(0), SimTime::zero() + milliseconds(1.0));
}

TEST(Process, PingPongBlocksAndRecordsWait) {
  ProcessFixture f(2);
  // Rank 0 computes 1 ms then sends; rank 1 waits for it immediately.
  Program p0, p1;
  p0.mark(0).compute(milliseconds(1.0), false).isend(1, 100, 0).waitall();
  p1.mark(0).irecv(0, 100, 0).waitall();
  f.run({std::move(p0), std::move(p1)});
  // Rank 1 waited from t=0 to arrival (1 ms + ~1 us network).
  const Duration wait = f.trace_.total(1, SegKind::wait);
  EXPECT_GT(wait, milliseconds(1.0));
  EXPECT_LT(wait, milliseconds(1.1));
}

TEST(Process, WaitallWithCompletedRequestsDoesNotBlock) {
  ProcessFixture f(2);
  Program p0, p1;
  // Rank 0 sends eagerly (completes locally) and waits: no wait segment.
  p0.isend(1, 100, 0).waitall().compute(milliseconds(1.0), false);
  p1.compute(milliseconds(2.0), false).irecv(0, 100, 0).waitall();
  f.run({std::move(p0), std::move(p1)});
  // Eager local completion has overhead 0 on the ideal fabric.
  EXPECT_EQ(f.trace_.total(0, SegKind::wait), Duration::zero());
  EXPECT_EQ(f.trace_.total(1, SegKind::wait), Duration::zero());
}

TEST(Process, StepMarksRecordWallclock) {
  ProcessFixture f(1);
  Program p;
  p.mark(0).compute(milliseconds(2.0), false)
      .mark(1).compute(milliseconds(3.0), false)
      .mark(2);
  f.run({std::move(p)});
  const auto& marks = f.trace_.step_begin(0);
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_EQ(marks[0], SimTime::zero());
  EXPECT_EQ(marks[1], SimTime::zero() + milliseconds(2.0));
  EXPECT_EQ(marks[2], SimTime::zero() + milliseconds(5.0));
}

TEST(Process, MemWorkUsesDomain) {
  ProcessFixture f(1);
  memory::BandwidthDomain domain(f.engine_, 10e9, 10e9);
  f.procs_[0]->set_domain(&domain);
  Program p;
  p.mark(0).mem_work(10'000'000, false);  // 10 MB at 10 GB/s = 1 ms
  f.run({std::move(p)});
  EXPECT_EQ(f.trace_.finish(0), SimTime::zero() + milliseconds(1.0));
}

TEST(Process, MemWorkWithoutDomainThrows) {
  ProcessFixture f(1);
  Program p;
  p.mem_work(100);
  f.procs_[0]->set_program(&p);
  f.procs_[0]->start();
  EXPECT_THROW(f.engine_.run(), std::invalid_argument);
}

TEST(Process, DoneHandlerFires) {
  ProcessFixture f(1);
  int done_rank = -1;
  f.procs_[0]->set_done_handler(
      {[](void* ctx, int r) { *static_cast<int*>(ctx) = r; }, &done_rank});
  Program p;
  p.compute(milliseconds(1.0), false);
  f.run({std::move(p)});
  EXPECT_EQ(done_rank, 0);
}

TEST(Process, TwoRankRingStaysInLockstep) {
  ProcessFixture f(2);
  std::vector<Program> progs(2);
  for (int r = 0; r < 2; ++r) {
    const int peer = 1 - r;
    for (int s = 0; s < 5; ++s) {
      progs[static_cast<std::size_t>(r)]
          .mark(s)
          .compute(milliseconds(1.0), false)
          .isend(peer, 100, s)
          .irecv(peer, 100, s)
          .waitall();
    }
  }
  f.run(std::move(progs));
  // Both ranks finish together, 5 cycles of ~1 ms + ~1.1 us comm.
  EXPECT_EQ(f.trace_.finish(0), f.trace_.finish(1));
  EXPECT_GT(f.trace_.finish(0), SimTime::zero() + milliseconds(5.0));
  EXPECT_LT(f.trace_.finish(0), SimTime::zero() + milliseconds(5.1));
}

}  // namespace
}  // namespace iw::mpi
