// Tests for the eager/rendezvous transport: matching, protocol selection,
// completion timing, the deferred-push rule, and the finite-buffer fallback.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mpi/transport.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace iw::mpi {
namespace {

/// Harness: N ranks, 1 per node, recording completion times per (rank, req).
class TransportFixture {
 public:
  explicit TransportFixture(int ranks,
                            TransportConfig config = {},
                            net::FabricProfile fabric =
                                net::FabricProfile::ideal(microseconds(1.0),
                                                          1e9))
      : topo_(net::TopologySpec::one_rank_per_node(ranks)),
        fabric_(std::move(fabric)),
        transport_(engine_, topo_, fabric_, config) {
    transport_.set_completion_handler([this](int rank, RequestId req) {
      completions_[{rank, req}] = engine_.now();
    });
  }

  /// Posts a send; an eager send returns its local-completion delay, which
  /// the fixture converts back into a recorded completion (Process does the
  /// equivalent folding into its WaitAll accounting in production).
  void post_send(int src, int dst, int tag, std::int64_t bytes,
                 RequestId req) {
    if (const auto local = transport_.post_send(src, dst, tag, bytes, req)) {
      engine_.after(*local, [this, src, req] {
        completions_[{src, req}] = engine_.now();
      });
    }
  }

  [[nodiscard]] bool completed(int rank, RequestId req) const {
    return completions_.count({rank, req}) > 0;
  }
  [[nodiscard]] SimTime completion_time(int rank, RequestId req) const {
    return completions_.at({rank, req});
  }

  sim::Engine engine_;
  net::Topology topo_;
  net::FabricProfile fabric_;
  Transport transport_;
  std::map<std::pair<int, RequestId>, SimTime> completions_;
};

TEST(Transport, EagerSenderCompletesLocally) {
  TransportFixture f(2);
  // No receive posted: the eager sender must still complete (buffering).
  f.post_send(0, 1, 0, 1000, 0);
  f.engine_.run();
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_FALSE(f.completed(1, 0));
  EXPECT_EQ(f.transport_.stats().eager_sends, 1u);
  EXPECT_EQ(f.transport_.stats().unexpected_eager, 1u);
}

TEST(Transport, EagerRecvFirstThenSend) {
  TransportFixture f(2);
  f.transport_.post_recv(1, 0, 7, 1000, 3);
  f.post_send(0, 1, 7, 1000, 5);
  f.engine_.run();
  EXPECT_TRUE(f.completed(1, 3));
  EXPECT_TRUE(f.completed(0, 5));
}

TEST(Transport, EagerSendFirstThenRecvMatchesUnexpected) {
  TransportFixture f(2);
  f.post_send(0, 1, 7, 1000, 0);
  f.engine_.run();
  EXPECT_FALSE(f.completed(1, 9));
  f.transport_.post_recv(1, 0, 7, 1000, 9);
  f.engine_.run();
  EXPECT_TRUE(f.completed(1, 9));
}

TEST(Transport, EagerRecvTimingMatchesModel) {
  // ideal fabric: latency 1 us, 1 GB/s, zero overhead/gap.
  TransportFixture f(2);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.engine_.run();
  // arrival = 1 us latency + 1000 B / 1 GB/s = 1 us -> 2 us total.
  EXPECT_EQ(f.completion_time(1, 0), SimTime{2000});
  EXPECT_EQ(f.transport_.eager_transfer_time(0, 1, 1000), Duration{2000});
}

TEST(Transport, TagsDiscriminate) {
  TransportFixture f(2);
  f.transport_.post_recv(1, 0, /*tag=*/1, 100, 0);
  f.post_send(0, 1, /*tag=*/2, 100, 0);
  f.engine_.run();
  EXPECT_FALSE(f.completed(1, 0));  // tag mismatch: stays unexpected
  f.transport_.post_recv(1, 0, /*tag=*/2, 100, 1);
  f.engine_.run();
  EXPECT_TRUE(f.completed(1, 1));
}

TEST(Transport, SourcesDiscriminate) {
  TransportFixture f(3);
  f.transport_.post_recv(2, /*src=*/1, 0, 100, 0);
  f.post_send(0, 2, 0, 100, 0);  // from rank 0: no match
  f.engine_.run();
  EXPECT_FALSE(f.completed(2, 0));
  f.post_send(1, 2, 0, 100, 0);
  f.engine_.run();
  EXPECT_TRUE(f.completed(2, 0));
}

TEST(Transport, FifoMatchingPerSource) {
  TransportFixture f(2);
  // Two sends same (src, tag); two recvs: first recv gets first message.
  f.transport_.post_recv(1, 0, 0, 100, 0);
  f.transport_.post_recv(1, 0, 0, 100, 1);
  f.post_send(0, 1, 0, 100, 0);
  f.post_send(0, 1, 0, 100, 1);
  f.engine_.run();
  ASSERT_TRUE(f.completed(1, 0));
  ASSERT_TRUE(f.completed(1, 1));
  EXPECT_LE(f.completion_time(1, 0), f.completion_time(1, 1));
}

TEST(Transport, ProtocolSelectionByEagerLimit) {
  TransportFixture f(2);
  const std::int64_t limit = f.transport_.eager_limit();
  EXPECT_EQ(f.transport_.protocol_for(0, 1, limit), WireProtocol::eager);
  EXPECT_EQ(f.transport_.protocol_for(0, 1, limit + 1),
            WireProtocol::rendezvous);
}

TEST(Transport, EagerLimitOverride) {
  TransportConfig opt;
  opt.eager.limit_override = 1000;
  TransportFixture f(2, opt);
  EXPECT_EQ(f.transport_.eager_limit(), 1000);
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1001), WireProtocol::rendezvous);
}

TEST(Transport, RendezvousWaitsForReceiver) {
  TransportConfig opt;
  opt.eager.limit_override = 0;  // force rendezvous for every size
  TransportFixture f(2, opt);
  f.post_send(0, 1, 0, 1000, 0);
  f.engine_.run();
  // No receive posted: the sender must NOT complete.
  EXPECT_FALSE(f.completed(0, 0));
  EXPECT_EQ(f.transport_.stats().unexpected_rts, 1u);

  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.engine_.run();
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_EQ(f.transport_.stats().rendezvous_sends, 1u);
}

TEST(Transport, RendezvousTimingIncludesHandshake) {
  TransportConfig opt;
  opt.eager.limit_override = 0;
  TransportFixture f(2, opt);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.engine_.run();
  // RTS 1 us + CTS 1 us + data (1 us latency + 1 us transfer) = 4 us.
  EXPECT_EQ(f.completion_time(1, 0), SimTime{4000});
  EXPECT_EQ(f.transport_.rendezvous_transfer_time(0, 1, 1000),
            Duration{4000});
  // Sender completes when the payload is injected (before the latency).
  EXPECT_EQ(f.completion_time(0, 0), SimTime{3000});
}

TEST(Transport, DeferredPushHoldsDataWhileHandshakeOutstanding) {
  TransportConfig opt;
  opt.eager.limit_override = 0;
  TransportFixture f(3, opt);
  // Rank 0 sends to 1 (recv posted) and to 2 (no recv posted -> handshake
  // stuck). Under deferred_push the completed handshake to 1 must NOT push.
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.post_send(0, 2, 0, 1000, 1);
  f.engine_.run();
  EXPECT_FALSE(f.completed(1, 0));
  EXPECT_FALSE(f.completed(0, 0));
  EXPECT_GE(f.transport_.stats().deferred_pushes, 1u);

  // Unsticking the second handshake releases everything.
  f.transport_.post_recv(2, 0, 0, 1000, 0);
  f.engine_.run();
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_TRUE(f.completed(2, 0));
  EXPECT_TRUE(f.completed(0, 1));
}

TEST(Transport, IndependentPushesImmediately) {
  TransportConfig opt;
  opt.eager.limit_override = 0;
  opt.rendezvous.pipelining = RendezvousPipelining::independent;
  TransportFixture f(3, opt);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.post_send(0, 2, 0, 1000, 1);  // stuck, but must not block 0->1
  f.engine_.run();
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_EQ(f.transport_.stats().deferred_pushes, 0u);
}

TEST(Transport, FiniteEagerBufferFallsBackToRendezvous) {
  TransportConfig opt;
  opt.eager.buffer_capacity = 1500;
  TransportFixture f(2, opt);
  // First send fits; second would exceed the backlog cap while the first
  // is still unmatched -> rendezvous fallback.
  f.post_send(0, 1, 0, 1000, 0);
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::rendezvous);
  f.post_send(0, 1, 0, 1000, 1);
  f.engine_.run();
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_FALSE(f.completed(0, 1));  // rendezvous: waits for the receiver
  EXPECT_EQ(f.transport_.stats().eager_fallbacks, 1u);

  // Draining the backlog restores eager behaviour.
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.transport_.post_recv(1, 0, 0, 1000, 1);
  f.engine_.run();
  EXPECT_TRUE(f.completed(0, 1));
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::eager);
}

TEST(Transport, EagerBufferFallbackTracksBacklogAcrossDrain) {
  TransportConfig opt;
  opt.eager.buffer_capacity = 2500;
  TransportFixture f(2, opt);
  // Three 1000 B sends: the first two fit the 2500 B backlog cap, the
  // third must fall back to rendezvous while both are still unmatched.
  f.post_send(0, 1, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 1);
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::rendezvous);
  f.post_send(0, 1, 0, 1000, 2);
  f.engine_.run();
  EXPECT_EQ(f.transport_.stats().eager_sends, 2u);
  EXPECT_EQ(f.transport_.stats().eager_fallbacks, 1u);

  // Draining ONE eager message frees 1000 B: 1000 (left) + 1000 (next)
  // fits under 2500 again, so the protocol flips back after one drain.
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.engine_.run();
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::eager);
  // But a 2000 B eager send would still overflow (1000 + 2000 > 2500).
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 2000), WireProtocol::rendezvous);

  // Full drain: match the second eager and the rendezvous fallback.
  f.transport_.post_recv(1, 0, 0, 1000, 1);
  f.transport_.post_recv(1, 0, 0, 1000, 2);
  f.engine_.run();
  EXPECT_TRUE(f.completed(0, 2));
  EXPECT_TRUE(f.completed(1, 2));
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 2000), WireProtocol::eager);
}

TEST(Transport, UnexpectedRtsMatchInArrivalOrder) {
  TransportConfig opt;
  opt.eager.limit_override = 0;  // every send is rendezvous
  opt.rendezvous.pipelining = RendezvousPipelining::independent;
  TransportFixture f(2, opt);
  // Two same-(src, tag) RTS queue as unexpected; later receives must pair
  // with them FIFO, so recv 0 gets send 0 and recv 1 gets send 1.
  f.post_send(0, 1, 7, 1000, 0);
  f.post_send(0, 1, 7, 1000, 1);
  f.engine_.run();
  EXPECT_EQ(f.transport_.stats().unexpected_rts, 2u);

  f.transport_.post_recv(1, 0, 7, 1000, 0);
  f.engine_.run();
  // Only the first handshake is released by the first receive.
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_FALSE(f.completed(0, 1));

  f.transport_.post_recv(1, 0, 7, 1000, 1);
  f.engine_.run();
  EXPECT_TRUE(f.completed(0, 1));
  EXPECT_TRUE(f.completed(1, 1));
  EXPECT_LE(f.completion_time(1, 0), f.completion_time(1, 1));
}

TEST(Transport, DeferredPushCounterCountsEveryHeldPush) {
  TransportConfig opt;
  opt.eager.limit_override = 0;
  TransportFixture f(4, opt);
  // Rank 0 opens three handshakes; receivers 1 and 2 answer immediately,
  // receiver 3 stays silent. Both completed handshakes must be held (two
  // deferred pushes) until the third CTS clears the last handshake.
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.transport_.post_recv(2, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.post_send(0, 2, 0, 1000, 1);
  f.post_send(0, 3, 0, 1000, 2);
  f.engine_.run();
  EXPECT_EQ(f.transport_.stats().deferred_pushes, 2u);
  EXPECT_FALSE(f.completed(1, 0));
  EXPECT_FALSE(f.completed(2, 0));

  f.transport_.post_recv(3, 0, 0, 1000, 0);
  f.engine_.run();
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_TRUE(f.completed(2, 0));
  EXPECT_TRUE(f.completed(3, 0));
  // Held pushes flush in CTS-arrival order, before the releasing push.
  EXPECT_LE(f.completion_time(1, 0), f.completion_time(2, 0));
  EXPECT_LE(f.completion_time(2, 0), f.completion_time(3, 0));
  EXPECT_EQ(f.transport_.stats().deferred_pushes, 2u);
}

TEST(Transport, MidRunStopLeavesInFlightRendezvousRecoverable) {
  TransportConfig opt;
  opt.eager.limit_override = 0;
  TransportFixture f(2, opt);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  // Stop the engine mid-handshake: the RTS (1 us flight) has not landed.
  f.engine_.run_until(SimTime{500});
  EXPECT_EQ(f.transport_.pool_stats().rdv_in_flight, 1u);
  EXPECT_FALSE(f.completed(0, 0));

  // Resuming drains the handshake; the record returns to the free list.
  f.engine_.run();
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_EQ(f.transport_.pool_stats().rdv_in_flight, 0u);
}

TEST(Transport, SteadyStateMessagePathAllocatesNothing) {
  TransportConfig opt;
  opt.eager.limit_override = 4096;  // small sends eager, large rendezvous
  TransportFixture f(4, opt);

  // One mixed round: pre-posted eager, unexpected eager, and a rendezvous
  // exchange — every protocol path the steady state exercises.
  const auto round = [&f](int reps) {
    for (int r = 0; r < reps; ++r) {
      f.transport_.post_recv(1, 0, 0, 1000, r * 8 + 0);    // pre-posted eager
      f.post_send(0, 1, 0, 1000, r * 8 + 1);
      f.post_send(2, 3, 0, 1000, r * 8 + 2);    // unexpected eager
      f.engine_.run();
      f.transport_.post_recv(3, 2, 0, 1000, r * 8 + 3);
      f.post_send(1, 0, 0, 100'000, r * 8 + 4);  // rendezvous
      f.transport_.post_recv(0, 1, 0, 100'000, r * 8 + 5);
      f.engine_.run();
    }
  };

  round(16);  // warm every pool
  const Transport::PoolStats warm = f.transport_.pool_stats();
  round(64);  // steady state: pools must not grow again
  const Transport::PoolStats after = f.transport_.pool_stats();
  EXPECT_EQ(after.allocations, warm.allocations);
  EXPECT_EQ(after.rdv_in_flight, 0u);
  EXPECT_GT(f.transport_.stats().eager_sends, 100u);
  EXPECT_GT(f.transport_.stats().rendezvous_sends, 60u);
}

TEST(Transport, NicGapSerializesInjections) {
  net::FabricProfile fabric = net::FabricProfile::ideal(microseconds(1.0), 1e9);
  for (auto& p : fabric.link) p.gap = microseconds(5.0);
  TransportFixture f(3, {}, fabric);
  f.transport_.post_recv(1, 0, 0, 0, 0);
  f.transport_.post_recv(2, 0, 0, 0, 0);
  f.post_send(0, 1, 0, 0, 0);
  f.post_send(0, 2, 0, 0, 1);
  f.engine_.run();
  // First message: gap 5 + latency 1 = 6 us. Second queues behind on the
  // sender NIC: 10 + 1 = 11 us.
  EXPECT_EQ(f.completion_time(1, 0), SimTime{6000});
  EXPECT_EQ(f.completion_time(2, 0), SimTime{11000});
}

TEST(Transport, SelfSendRejected) {
  TransportFixture f(2);
  EXPECT_THROW((void)f.post_send(0, 0, 0, 10, 0),
               std::invalid_argument);
  EXPECT_THROW((void)f.transport_.post_recv(1, 1, 0, 10, 0),
               std::invalid_argument);
}

TEST(Transport, InterNodeSlowerThanIntraSocket) {
  // Packed topology: ranks 0,1 share a socket; 0,25 are on distinct nodes.
  sim::Engine engine;
  net::Topology topo(net::TopologySpec::packed(40));
  const net::FabricProfile fabric = net::FabricProfile::infiniband_qdr();
  Transport tr(engine, topo, fabric, {});
  const Duration near = tr.eager_transfer_time(0, 1, 8192);
  const Duration far = tr.eager_transfer_time(0, 25, 8192);
  EXPECT_LT(near, far);
}


TEST(Transport, IntraNodePayloadChargesMemoryDomains) {
  // With memory domains configured, an intra-socket message is two memory
  // copies: 10 MB at 10 GB/s twice = 2 ms, plus latency — far slower than
  // the NIC-path estimate when the bus is the bottleneck.
  sim::Engine engine;
  net::Topology topo(net::TopologySpec::packed(4, 2));  // 2 ranks/socket
  net::FabricProfile fabric = net::FabricProfile::ideal(microseconds(1.0), 1e12);
  Transport tr(engine, topo, fabric, {});
  memory::BandwidthDomain domain(engine, 10e9, 10e9);
  tr.set_memory_domains({&domain, &domain, &domain, &domain});
  SimTime recv_done;
  tr.set_completion_handler([&](int rank, RequestId req) {
    if (rank == 1 && req == 0) recv_done = engine.now();
  });
  tr.post_recv(1, 0, 0, 10'000'000, 0);
  tr.post_send(0, 1, 0, 10'000'000, 0);
  engine.run();
  // 10 MB goes rendezvous: RTS (1 us) + CTS (1 us), then two sequential
  // 1 ms copies + 1 us payload latency.
  EXPECT_EQ(recv_done, SimTime::zero() + milliseconds(2.0) + microseconds(3.0));
}

TEST(Transport, InterNodePayloadKeepsNicPath) {
  // Memory domains must not affect cross-node traffic.
  sim::Engine engine;
  net::Topology topo(net::TopologySpec::one_rank_per_node(2));
  net::FabricProfile fabric = net::FabricProfile::ideal(microseconds(1.0), 1e9);
  Transport tr(engine, topo, fabric, {});
  memory::BandwidthDomain domain(engine, 10e9, 10e9);
  tr.set_memory_domains({&domain, &domain});
  SimTime recv_done;
  tr.set_completion_handler([&](int rank, RequestId req) {
    if (rank == 1 && req == 0) recv_done = engine.now();
  });
  tr.post_recv(1, 0, 0, 1000, 0);
  tr.post_send(0, 1, 0, 1000, 0);
  engine.run();
  EXPECT_EQ(recv_done, SimTime{2000});  // 1 us latency + 1 us transfer
  EXPECT_EQ(domain.active_jobs(), 0);
}

TEST(Transport, MemoryPathCopiesContendWithComputeJobs) {
  // A message copy sharing the domain with a compute job slows both:
  // processor sharing at 5 GB/s each.
  sim::Engine engine;
  net::Topology topo(net::TopologySpec::packed(4, 2));
  net::FabricProfile fabric = net::FabricProfile::ideal(microseconds(0.0), 1e12);
  Transport tr(engine, topo, fabric, {});
  memory::BandwidthDomain domain(engine, 10e9, 10e9);
  tr.set_memory_domains({&domain, &domain, &domain, &domain});
  SimTime compute_done, recv_done;
  tr.set_completion_handler([&](int rank, RequestId req) {
    if (rank == 1 && req == 0) recv_done = engine.now();
  });
  domain.submit(10'000'000, [&] { compute_done = engine.now(); });
  tr.post_recv(1, 0, 0, 10'000'000, 0);
  tr.post_send(0, 1, 0, 10'000'000, 0);
  engine.run();
  // Copy 1 and the compute job share: both 10 MB at 5 GB/s -> done at 2 ms.
  EXPECT_EQ(compute_done, SimTime::zero() + milliseconds(2.0));
  // Copy 2 then runs alone: 1 ms more.
  EXPECT_EQ(recv_done, SimTime::zero() + milliseconds(3.0));
}

// The transport's structural audit (a no-op in plain Release) must hold at
// every phase boundary the rendezvous slab and queue pools pass through:
// warm steady state, a mid-run stop with a record in flight, the
// reconfigure() recycle, and the drained end state. The pool-accounting
// reconciliation (pool_stats().rdv_in_flight == live shadow slots) is part
// of audit() itself, so this doubles as the pool-balance regression test.
TEST(Transport, AuditHoldsAcrossProtocolPhasesAndReconfigure) {
  TransportConfig opt;
  opt.eager.limit_override = 4096;
  TransportFixture f(4, opt);
  f.transport_.audit();  // pristine

  for (int r = 0; r < 8; ++r) {
    f.transport_.post_recv(1, 0, 0, 1000, r * 8 + 0);
    f.post_send(0, 1, 0, 1000, r * 8 + 1);
    f.post_send(2, 3, 0, 1000, r * 8 + 2);  // unexpected eager
    f.post_send(1, 0, 0, 100'000, r * 8 + 3);  // rendezvous, recv later
    f.engine_.run_until(f.engine_.now() + microseconds(0.5));
    f.transport_.audit();  // mid-handshake: in-flight records stay balanced
    f.transport_.post_recv(3, 2, 0, 1000, r * 8 + 4);
    f.transport_.post_recv(0, 1, 0, 100'000, r * 8 + 5);
    f.engine_.run();
    f.transport_.audit();  // drained: rdv_in_flight reconciles to zero
    EXPECT_EQ(f.transport_.pool_stats().rdv_in_flight, 0u);
  }

  // Stop with a rendezvous handshake genuinely outstanding, then recycle
  // the transport for a new sweep point: reconfigure() audits on entry and
  // must reclaim the in-flight record (post-condition rdv_in_flight == 0).
  f.transport_.post_recv(1, 0, 0, 100'000, 900);
  f.post_send(0, 1, 0, 100'000, 901);
  f.engine_.run_until(f.engine_.now() + microseconds(0.5));
  EXPECT_EQ(f.transport_.pool_stats().rdv_in_flight, 1u);
  f.engine_.reset();
  f.transport_.reconfigure(f.fabric_, opt);
  f.transport_.audit();
  EXPECT_EQ(f.transport_.pool_stats().rdv_in_flight, 0u);

  // The recycled transport is fully serviceable (reconfigure() drops the
  // completion wiring by design — each sweep point re-wires it).
  f.transport_.set_completion_handler([&f](int rank, RequestId req) {
    f.completions_[{rank, req}] = f.engine_.now();
  });
  f.transport_.post_recv(1, 0, 0, 100'000, 902);
  f.post_send(0, 1, 0, 100'000, 903);
  f.engine_.run();
  f.transport_.audit();
  EXPECT_TRUE(f.completed(1, 902));
}

// ---- TransportConfig: validation and presets ------------------------------

TEST(TransportConfig, ValidateRejectsInconsistentCombinations) {
  TransportConfig c;
  c.nic.injection_depth = -1;
  try {
    c.validate();
    FAIL() << "negative injection_depth must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nic.injection_depth"),
              std::string::npos);
  }

  c = {};
  c.nic.backlog_capacity = 8;  // bounded backlog on an unbounded NIC
  try {
    c.validate();
    FAIL() << "backlog without a finite injection depth must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("injection_depth"),
              std::string::npos);
  }

  c = {};
  c.eager.buffer_capacity = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.eager.credit_window = -3;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.eager.limit_override = -2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(TransportConfig, PresetsValidateAndSetTheirFields) {
  EXPECT_NO_THROW(TransportConfig::ideal().validate());

  const TransportConfig nic = TransportConfig::finite_nic(4, 16);
  EXPECT_NO_THROW(nic.validate());
  EXPECT_EQ(nic.nic.injection_depth, 4);
  EXPECT_EQ(nic.nic.backlog_capacity, 16);

  const TransportConfig credits = TransportConfig::credit_limited(3);
  EXPECT_NO_THROW(credits.validate());
  EXPECT_EQ(credits.eager.credit_window, 3);
}

TEST(TransportConfig, TransportConstructorValidates) {
  TransportConfig bad;
  bad.nic.backlog_capacity = 8;  // inconsistent: unbounded NIC
  EXPECT_THROW(TransportFixture f(2, bad), std::invalid_argument);
}

TEST(TransportConfig, FlavorParserRoundTripsAndRejects) {
  EXPECT_EQ(rendezvous_flavor_from_string("rdma_put"),
            RendezvousFlavor::rdma_put);
  EXPECT_EQ(rendezvous_flavor_from_string(to_string(
                RendezvousFlavor::rdma_get)),
            RendezvousFlavor::rdma_get);
  EXPECT_THROW((void)rendezvous_flavor_from_string("rdma_write"),
               std::invalid_argument);
}

// ---- Finite-injection NIC -------------------------------------------------

TEST(Transport, NicBacklogDrainsFifoAcrossEndpointsUnderInterleaving) {
  net::FabricProfile fabric = net::FabricProfile::ideal(microseconds(1.0), 1e9);
  for (auto& p : fabric.link) p.gap = microseconds(5.0);
  TransportFixture f(3, TransportConfig::finite_nic(1), fabric);
  f.transport_.post_recv(1, 0, 0, 0, 0);
  f.transport_.post_recv(2, 0, 0, 0, 0);
  f.transport_.post_recv(1, 0, 0, 0, 1);
  f.transport_.post_recv(2, 0, 0, 0, 1);

  // Depth-1 NIC: the first post injects, the rest queue on the backlog.
  f.post_send(0, 1, 0, 0, 10);
  f.post_send(0, 2, 0, 0, 11);
  f.post_send(0, 1, 0, 0, 12);
  f.post_send(0, 2, 0, 0, 13);
  EXPECT_EQ(f.transport_.stats().nic_backlogged, 3u);
  EXPECT_EQ(f.transport_.pool_stats().nic_backlog_depth, 3u);

  // Interleave: while drains are still re-posting the backlog, a new send
  // arrives. FIFO means it goes strictly behind the queued ones, even
  // though the budget briefly frees right before it is posted.
  f.engine_.run_until(SimTime{7000});
  f.transport_.post_recv(1, 0, 0, 0, 2);
  f.post_send(0, 1, 0, 0, 14);
  f.engine_.run();

  // gap 5 us + latency 1 us each, serialized: arrivals at 6, 11, 16, 21,
  // 26 us in exact posting order across both destinations.
  EXPECT_EQ(f.completion_time(1, 0), SimTime{6000});
  EXPECT_EQ(f.completion_time(2, 0), SimTime{11000});
  EXPECT_EQ(f.completion_time(1, 1), SimTime{16000});
  EXPECT_EQ(f.completion_time(2, 1), SimTime{21000});
  EXPECT_EQ(f.completion_time(1, 2), SimTime{26000});
  EXPECT_EQ(f.transport_.pool_stats().nic_backlog_depth, 0u);
  EXPECT_EQ(f.transport_.pool_stats().nic_inflight, 0u);
}

TEST(Transport, NicBacklogDefersEagerLocalCompletion) {
  net::FabricProfile fabric = net::FabricProfile::ideal(microseconds(1.0), 1e9);
  for (auto& p : fabric.link) p.gap = microseconds(5.0);
  TransportFixture f(2, TransportConfig::finite_nic(1), fabric);
  f.transport_.post_recv(1, 0, 0, 0, 0);
  f.transport_.post_recv(1, 0, 0, 0, 1);

  // The first eager send completes locally at post time (the ideal-NIC
  // behaviour); the second is backlogged and must complete only when it
  // reaches the NIC at t = 5 us — the sender is coupled to NIC drain.
  f.post_send(0, 1, 0, 0, 10);
  f.post_send(0, 1, 0, 0, 11);
  f.engine_.run();
  EXPECT_EQ(f.completion_time(0, 10), SimTime::zero());
  EXPECT_EQ(f.completion_time(0, 11), SimTime{5000});
}

TEST(Transport, NicBoundedBacklogOverflowIsAHardError) {
  TransportFixture f(2, TransportConfig::finite_nic(1, /*backlog=*/1));
  f.post_send(0, 1, 0, 1000, 0);  // injects
  f.post_send(0, 1, 0, 1000, 1);  // fills the one backlog slot
  EXPECT_THROW(f.post_send(0, 1, 0, 1000, 2), std::logic_error);
}

TEST(Transport, NicBudgetAppliesToRtsButProtocolStillProgresses) {
  TransportConfig opt = TransportConfig::finite_nic(1);
  opt.eager.limit_override = 0;  // every send is rendezvous
  net::FabricProfile fabric = net::FabricProfile::ideal(microseconds(1.0), 1e9);
  for (auto& p : fabric.link) p.gap = microseconds(5.0);
  TransportFixture f(3, opt, fabric);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.transport_.post_recv(2, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.post_send(0, 2, 0, 1000, 1);  // RTS backlogged behind the first
  EXPECT_EQ(f.transport_.stats().nic_backlogged, 1u);
  f.engine_.run();
  // CTS and pushes are budget-exempt responses, so both handshakes finish.
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_TRUE(f.completed(2, 0));
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_TRUE(f.completed(0, 1));
  EXPECT_EQ(f.transport_.pool_stats().rdv_in_flight, 0u);
}

// ---- Credit-based eager flow control --------------------------------------

TEST(Transport, CreditExhaustionMidBurstLosesNoMessages) {
  TransportFixture f(2, TransportConfig::credit_limited(2));
  // Burst of four eager-sized sends with no receiver: the first two take
  // the window's credits, the rest demote to rendezvous — nothing is
  // dropped, the demoted sends just wait for the receiver like any
  // rendezvous message.
  for (int i = 0; i < 4; ++i) f.post_send(0, 1, 0, 1000, 10 + i);
  f.engine_.run();
  EXPECT_EQ(f.transport_.stats().eager_sends, 2u);
  EXPECT_EQ(f.transport_.stats().credit_stalls, 2u);
  EXPECT_EQ(f.transport_.stats().rendezvous_sends, 2u);
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::rendezvous);
  EXPECT_TRUE(f.completed(0, 10));   // eager: completed locally
  EXPECT_FALSE(f.completed(0, 12));  // demoted: waiting for the receiver

  // Receiver drains the burst: every message arrives exactly once and the
  // returned credits restore the eager protocol.
  for (int i = 0; i < 4; ++i) f.transport_.post_recv(1, 0, 0, 1000, 20 + i);
  f.engine_.run();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.completed(1, 20 + i)) << "receive " << i << " lost";
    EXPECT_TRUE(f.completed(0, 10 + i)) << "send " << i << " lost";
  }
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::eager);
}

TEST(Transport, CreditsReturnOnReceiverDrainNotArrival) {
  TransportFixture f(2, TransportConfig::credit_limited(1));
  f.post_send(0, 1, 0, 1000, 0);
  f.engine_.run();  // payload has ARRIVED (unexpected) but is not drained
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::rendezvous);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.engine_.run();
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::eager);
}

TEST(Transport, CreditWindowsArePerEndpointPair) {
  TransportFixture f(3, TransportConfig::credit_limited(1));
  f.post_send(0, 1, 0, 1000, 0);
  EXPECT_EQ(f.transport_.protocol_for(0, 1, 1000), WireProtocol::rendezvous);
  // An unrelated pair keeps its own window.
  EXPECT_EQ(f.transport_.protocol_for(0, 2, 1000), WireProtocol::eager);
  EXPECT_EQ(f.transport_.protocol_for(2, 1, 1000), WireProtocol::eager);
}

// ---- RDMA put/get rendezvous flavors --------------------------------------

TEST(Transport, RdmaPutFinCompletesReceiverAfterPayload) {
  TransportConfig opt;
  opt.eager.limit_override = 0;
  opt.rendezvous.flavor = RendezvousFlavor::rdma_put;
  net::FabricProfile fabric = net::FabricProfile::ideal(microseconds(1.0), 1e9);
  for (auto& p : fabric.link) p.gap = microseconds(2.0);
  TransportFixture f(2, opt, fabric);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.engine_.run();
  // RTS (gap 2 + lat 1 = 3) -> RTR (3 more) -> put injection (gap 2 +
  // 1000 B = 3): the sender is done at hand-off, t = 9 us. The receiver
  // completes at the FIN's arrival (2 + 1 more), t = 12 us — strictly
  // after the payload landed at t = 10. A WaitAll that saw the payload
  // arrive must still block until the FIN races in.
  EXPECT_EQ(f.completion_time(0, 0), SimTime{9000});
  EXPECT_EQ(f.completion_time(1, 0), SimTime{12000});
  EXPECT_EQ(f.transport_.rendezvous_transfer_time(0, 1, 1000),
            Duration{12000});
  EXPECT_EQ(f.transport_.stats().rdma_puts, 1u);
}

TEST(Transport, RdmaGetReceiverCompletesAtArrival) {
  TransportConfig opt;
  opt.eager.limit_override = 0;
  opt.rendezvous.flavor = RendezvousFlavor::rdma_get;
  TransportFixture f(2, opt);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.engine_.run();
  // RTS 1 us + GET request 1 us + payload (1 us latency + 1 us transfer):
  // the receiver completes at arrival, t = 4 us, with no CPU overhead; the
  // trailing FIN retires the sender at t = 5 us, off the critical path.
  EXPECT_EQ(f.completion_time(1, 0), SimTime{4000});
  EXPECT_EQ(f.completion_time(0, 0), SimTime{5000});
  EXPECT_EQ(f.transport_.rendezvous_transfer_time(0, 1, 1000),
            Duration{4000});
  EXPECT_EQ(f.transport_.stats().rdma_gets, 1u);
}

TEST(Transport, OneSidedFlavorsIgnoreDeferredPush) {
  // Under two_sided/deferred_push a second outstanding handshake holds the
  // first push (DeferredPushHoldsDataWhileHandshakeOutstanding). One-sided
  // puts are executed by the NIC and must NOT be held.
  TransportConfig opt;
  opt.eager.limit_override = 0;
  opt.rendezvous.flavor = RendezvousFlavor::rdma_put;
  TransportFixture f(3, opt);
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.post_send(0, 1, 0, 1000, 0);
  f.post_send(0, 2, 0, 1000, 1);  // stuck handshake, no receiver
  f.engine_.run();
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_EQ(f.transport_.stats().deferred_pushes, 0u);
}

TEST(Transport, RdmaPutUnexpectedRtsMatchesOnLateRecv) {
  TransportConfig opt;
  opt.eager.limit_override = 0;
  opt.rendezvous.flavor = RendezvousFlavor::rdma_put;
  TransportFixture f(2, opt);
  f.post_send(0, 1, 0, 1000, 0);
  f.engine_.run();
  EXPECT_EQ(f.transport_.stats().unexpected_rts, 1u);
  EXPECT_FALSE(f.completed(0, 0));
  f.transport_.post_recv(1, 0, 0, 1000, 0);
  f.engine_.run();
  EXPECT_TRUE(f.completed(0, 0));
  EXPECT_TRUE(f.completed(1, 0));
  EXPECT_EQ(f.transport_.pool_stats().rdv_in_flight, 0u);
}

// ---- Combined-feature steady state ----------------------------------------

TEST(Transport, SteadyStateWithFiniteNicAndCreditsAllocatesNothing) {
  TransportConfig opt;
  opt.eager.limit_override = 4096;
  opt.nic.injection_depth = 2;
  opt.eager.credit_window = 2;
  TransportFixture f(4, opt);

  const auto round = [&f](int reps) {
    for (int r = 0; r < reps; ++r) {
      // Burst deep enough to exercise the backlog AND the credit fallback.
      for (int i = 0; i < 4; ++i) f.post_send(0, 1, 0, 1000, r * 32 + i);
      for (int i = 0; i < 4; ++i)
        f.transport_.post_recv(1, 0, 0, 1000, r * 32 + 8 + i);
      f.post_send(2, 3, 0, 100'000, r * 32 + 16);  // rendezvous
      f.transport_.post_recv(3, 2, 0, 100'000, r * 32 + 17);
      f.engine_.run();
      f.transport_.audit();
    }
  };

  round(16);  // warm every pool, including backlog and credit tables
  const Transport::PoolStats warm = f.transport_.pool_stats();
  round(64);
  const Transport::PoolStats after = f.transport_.pool_stats();
  EXPECT_EQ(after.allocations, warm.allocations);
  EXPECT_EQ(after.rdv_in_flight, 0u);
  EXPECT_EQ(after.nic_backlog_depth, 0u);
  EXPECT_EQ(after.nic_inflight, 0u);
  EXPECT_GT(f.transport_.stats().nic_backlogged, 0u);
  EXPECT_GT(f.transport_.stats().credit_stalls, 0u);

  // Recycling across a sweep point keeps the pools (audit on entry).
  f.engine_.reset();
  f.transport_.reconfigure(f.fabric_, opt);
  EXPECT_EQ(f.transport_.pool_stats().allocations, after.allocations);
}

}  // namespace
}  // namespace iw::mpi
