// Tests for the STREAM-triad and LBM proxy workloads.
#include <gtest/gtest.h>

#include "workload/lbm.hpp"
#include "workload/stream_triad.hpp"

namespace iw::workload {
namespace {

TEST(StreamTriad, PaperWorkingSetSplitsEvenly) {
  StreamTriadSpec spec;
  spec.ranks = 20;
  // 5e7 elements * 24 B = 1.2 GB total -> 60 MB per rank.
  EXPECT_EQ(triad_bytes_per_rank(spec), 60'000'000);
  EXPECT_EQ(triad_flops_per_step(spec), 100'000'000);
}

TEST(StreamTriad, ProgramsHaveRingExchange) {
  StreamTriadSpec spec;
  spec.ranks = 4;
  spec.steps = 2;
  const auto programs = build_stream_triad(spec);
  ASSERT_EQ(programs.size(), 4u);
  // Per step: mark + mem_work + 2 sends + 2 recvs + waitall = 7 ops.
  EXPECT_EQ(programs[0].size(), 14u);
  int sends = 0;
  for (const auto& op : programs[2].ops())
    if (const auto* send = std::get_if<mpi::OpIsend>(&op)) {
      ++sends;
      EXPECT_TRUE(send->peer == 1 || send->peer == 3);  // closed ring
      EXPECT_EQ(send->bytes, spec.halo_bytes);
    }
  EXPECT_EQ(sends, 4);  // 2 per step
}

TEST(StreamTriad, SingleRankHasNoCommunication) {
  StreamTriadSpec spec;
  spec.ranks = 1;
  spec.steps = 3;
  const auto programs = build_stream_triad(spec);
  for (const auto& op : programs[0].ops()) {
    EXPECT_FALSE(std::holds_alternative<mpi::OpIsend>(op));
    EXPECT_FALSE(std::holds_alternative<mpi::OpIrecv>(op));
  }
}

TEST(StreamTriad, TwoRankRingDeduplicatesPeer) {
  StreamTriadSpec spec;
  spec.ranks = 2;
  spec.steps = 1;
  const auto programs = build_stream_triad(spec);
  int sends = 0, recvs = 0;
  for (const auto& op : programs[0].ops()) {
    sends += std::holds_alternative<mpi::OpIsend>(op);
    recvs += std::holds_alternative<mpi::OpIrecv>(op);
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
}

TEST(Lbm, PaperGeometryNumbers) {
  LbmSpec spec;  // defaults: 302^3, 100 ranks
  // Working set: 302^3 * 19 * 8 * 2 ~ 8.37 GB (paper: "more than 8 GB").
  EXPECT_GT(lbm_working_set(spec), std::int64_t{8'000'000'000});
  EXPECT_LT(lbm_working_set(spec), std::int64_t{9'000'000'000});
  // Halo: 302^2 * 5 pops * 8 B ~ 3.65 MB per face.
  EXPECT_NEAR(static_cast<double>(lbm_halo_bytes(spec)), 3.65e6, 0.1e6);
}

TEST(Lbm, CommunicationShareIsSubstantial) {
  // The paper reports >= 30% communication overhead. Check the ratio of
  // halo traffic (at ~3 GB/s) to slab traffic (at a 4 GB/s per-rank share)
  // lands in the right regime rather than being negligible.
  LbmSpec spec;
  const double t_comm =
      2.0 * static_cast<double>(lbm_halo_bytes(spec)) / 3.0e9;
  const double t_exec =
      static_cast<double>(lbm_bytes_per_rank(spec)) / 4.0e9;
  const double share = t_comm / (t_comm + t_exec);
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.6);
}

TEST(Lbm, ProgramsUsePeriodicNeighbors) {
  LbmSpec spec;
  spec.ranks = 4;
  spec.nx = 8;
  spec.ny = 4;
  spec.nz = 4;
  spec.steps = 1;
  const auto programs = build_lbm(spec);
  ASSERT_EQ(programs.size(), 4u);
  std::vector<int> peers;
  for (const auto& op : programs[0].ops())
    if (const auto* send = std::get_if<mpi::OpIsend>(&op))
      peers.push_back(send->peer);
  EXPECT_EQ(peers, (std::vector<int>{1, 3}));  // periodic wrap for rank 0
}

TEST(Lbm, Validation) {
  LbmSpec spec;
  spec.ranks = 1;
  EXPECT_THROW(build_lbm(spec), std::invalid_argument);
  spec = LbmSpec{};
  spec.ranks = 400;  // more ranks than outer layers
  EXPECT_THROW(build_lbm(spec), std::invalid_argument);
}

}  // namespace
}  // namespace iw::workload
