// Tests for the ring workload builder: neighbor sets, boundaries, programs.
#include <gtest/gtest.h>

#include "workload/ring.hpp"

namespace iw::workload {
namespace {

RingSpec base_spec() {
  RingSpec s;
  s.ranks = 10;
  s.steps = 3;
  s.msg_bytes = 4096;
  return s;
}

TEST(RingNeighbors, UnidirectionalOpenInterior) {
  RingSpec s = base_spec();
  EXPECT_EQ(send_peers(s, 4), (std::vector<int>{5}));
  EXPECT_EQ(recv_peers(s, 4), (std::vector<int>{3}));
}

TEST(RingNeighbors, UnidirectionalOpenEdges) {
  RingSpec s = base_spec();
  EXPECT_EQ(send_peers(s, 9), (std::vector<int>{}));  // no upper neighbor
  EXPECT_EQ(recv_peers(s, 0), (std::vector<int>{}));  // no lower neighbor
  EXPECT_EQ(send_peers(s, 0), (std::vector<int>{1}));
  EXPECT_EQ(recv_peers(s, 9), (std::vector<int>{8}));
}

TEST(RingNeighbors, UnidirectionalPeriodicWraps) {
  RingSpec s = base_spec();
  s.boundary = Boundary::periodic;
  EXPECT_EQ(send_peers(s, 9), (std::vector<int>{0}));
  EXPECT_EQ(recv_peers(s, 0), (std::vector<int>{9}));
}

TEST(RingNeighbors, BidirectionalBothSides) {
  RingSpec s = base_spec();
  s.direction = Direction::bidirectional;
  EXPECT_EQ(send_peers(s, 4), (std::vector<int>{5, 3}));
  EXPECT_EQ(recv_peers(s, 4), (std::vector<int>{3, 5}));
}

TEST(RingNeighbors, DistanceTwo) {
  RingSpec s = base_spec();
  s.distance = 2;
  EXPECT_EQ(send_peers(s, 4), (std::vector<int>{5, 6}));
  EXPECT_EQ(recv_peers(s, 4), (std::vector<int>{3, 2}));
  s.direction = Direction::bidirectional;
  EXPECT_EQ(send_peers(s, 4), (std::vector<int>{5, 3, 6, 2}));
}

TEST(RingNeighbors, DistanceTwoOpenEdgeClipping) {
  RingSpec s = base_spec();
  s.distance = 2;
  EXPECT_EQ(send_peers(s, 8), (std::vector<int>{9}));  // 10 clipped
  EXPECT_EQ(recv_peers(s, 1), (std::vector<int>{0}));  // -1 clipped
}

TEST(RingPrograms, OneProgramPerRankWithRightShape) {
  RingSpec s = base_spec();
  const auto programs = build_ring(s);
  ASSERT_EQ(programs.size(), 10u);
  // Interior rank: per step mark + compute + 1 send + 1 recv + waitall = 5.
  EXPECT_EQ(programs[4].size(), 15u);
  EXPECT_EQ(programs[4].rounds(), 3);
  // Edge rank 9 has no send.
  EXPECT_EQ(programs[9].size(), 12u);
}

TEST(RingPrograms, DelayInjectedAfterComputeOfThatStep) {
  RingSpec s = base_spec();
  const std::vector<DelaySpec> delays{{4, 1, milliseconds(10.0)}};
  const auto programs = build_ring(s, delays);
  EXPECT_EQ(programs[4].total_injected(), milliseconds(10.0));
  EXPECT_EQ(programs[3].total_injected(), Duration::zero());
  // The inject op must sit between step 1's compute and its sends.
  const auto& ops = programs[4].ops();
  bool found = false;
  for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
    if (std::holds_alternative<mpi::OpInject>(ops[i])) {
      EXPECT_TRUE(std::holds_alternative<mpi::OpCompute>(ops[i - 1]));
      EXPECT_TRUE(std::holds_alternative<mpi::OpIsend>(ops[i + 1]));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RingPrograms, MultipleDelaysOnSameRankStepAccumulate) {
  RingSpec s = base_spec();
  const std::vector<DelaySpec> delays{{4, 1, milliseconds(2.0)},
                                      {4, 1, milliseconds(3.0)}};
  const auto programs = build_ring(s, delays);
  EXPECT_EQ(programs[4].total_injected(), milliseconds(5.0));
}

TEST(RingPrograms, ValidationRejectsBadSpecs) {
  RingSpec s = base_spec();
  s.ranks = 1;
  EXPECT_THROW(build_ring(s), std::invalid_argument);

  s = base_spec();
  s.distance = 10;
  EXPECT_THROW(build_ring(s), std::invalid_argument);

  s = base_spec();
  s.boundary = Boundary::periodic;
  s.distance = 5;  // 2*5 >= 10
  EXPECT_THROW(build_ring(s), std::invalid_argument);

  s = base_spec();
  const std::vector<DelaySpec> bad{{99, 0, milliseconds(1.0)}};
  EXPECT_THROW(build_ring(s, bad), std::invalid_argument);
}

TEST(RingPrograms, NoisyFlagPropagates) {
  RingSpec s = base_spec();
  s.noisy = false;
  const auto programs = build_ring(s);
  for (const auto& op : programs[0].ops()) {
    if (const auto* comp = std::get_if<mpi::OpCompute>(&op)) {
      EXPECT_FALSE(comp->noisy);
    }
  }
}

TEST(RingEnums, Names) {
  EXPECT_STREQ(to_string(Direction::unidirectional), "unidirectional");
  EXPECT_STREQ(to_string(Boundary::periodic), "periodic");
}

}  // namespace
}  // namespace iw::workload
