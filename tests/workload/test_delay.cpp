// Tests for delay-injection plan builders (Fig. 6 variants).
#include <gtest/gtest.h>

#include "workload/delay.hpp"

namespace iw::workload {
namespace {

TEST(DelayPlans, SingleDelay) {
  const auto plan = single_delay(5, 0, milliseconds(13.5));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].rank, 5);
  EXPECT_EQ(plan[0].step, 0);
  EXPECT_EQ(plan[0].duration, milliseconds(13.5));
}

TEST(DelayPlans, EqualModePlacesLocalRankOnEverySocket) {
  Rng rng(1);
  const auto plan = per_socket_delays(10, 10, 5, 0, milliseconds(9.0),
                                      MultiDelayMode::equal, rng);
  ASSERT_EQ(plan.size(), 10u);
  for (int s = 0; s < 10; ++s) {
    EXPECT_EQ(plan[static_cast<std::size_t>(s)].rank, s * 10 + 5);
    EXPECT_EQ(plan[static_cast<std::size_t>(s)].duration, milliseconds(9.0));
    EXPECT_EQ(plan[static_cast<std::size_t>(s)].step, 0);
  }
}

TEST(DelayPlans, HalfOddHalvesOddSockets) {
  Rng rng(1);
  const auto plan = per_socket_delays(4, 10, 5, 0, milliseconds(8.0),
                                      MultiDelayMode::half_odd, rng);
  EXPECT_EQ(plan[0].duration, milliseconds(8.0));
  EXPECT_EQ(plan[1].duration, milliseconds(4.0));
  EXPECT_EQ(plan[2].duration, milliseconds(8.0));
  EXPECT_EQ(plan[3].duration, milliseconds(4.0));
}

TEST(DelayPlans, RandomModeBoundedAndVaried) {
  Rng rng(7);
  const auto plan = per_socket_delays(10, 10, 5, 0, milliseconds(10.0),
                                      MultiDelayMode::random, rng);
  bool varied = false;
  for (const auto& d : plan) {
    EXPECT_GT(d.duration, milliseconds(0.9));   // >= 10% of base
    EXPECT_LE(d.duration, milliseconds(10.0));  // <= base
    if (d.duration != plan[0].duration) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(DelayPlans, RandomModeDeterministicPerSeed) {
  Rng a(3), b(3), c(4);
  const auto pa = per_socket_delays(6, 6, 2, 1, milliseconds(5.0),
                                    MultiDelayMode::random, a);
  const auto pb = per_socket_delays(6, 6, 2, 1, milliseconds(5.0),
                                    MultiDelayMode::random, b);
  const auto pc = per_socket_delays(6, 6, 2, 1, milliseconds(5.0),
                                    MultiDelayMode::random, c);
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i].duration, pb[i].duration);
  bool differs = false;
  for (std::size_t i = 0; i < pa.size(); ++i)
    if (pa[i].duration != pc[i].duration) differs = true;
  EXPECT_TRUE(differs);
}

TEST(DelayPlans, Validation) {
  Rng rng(1);
  EXPECT_THROW((void)per_socket_delays(0, 10, 5, 0, milliseconds(1.0),
                                 MultiDelayMode::equal, rng),
               std::invalid_argument);
  EXPECT_THROW((void)per_socket_delays(2, 10, 10, 0, milliseconds(1.0),
                                 MultiDelayMode::equal, rng),
               std::invalid_argument);
  EXPECT_THROW((void)per_socket_delays(2, 10, 5, 0, Duration::zero(),
                                 MultiDelayMode::equal, rng),
               std::invalid_argument);
}

TEST(DelayPlans, ModeNames) {
  EXPECT_STREQ(to_string(MultiDelayMode::equal), "equal");
  EXPECT_STREQ(to_string(MultiDelayMode::half_odd), "half");
  EXPECT_STREQ(to_string(MultiDelayMode::random), "random");
}

}  // namespace
}  // namespace iw::workload
