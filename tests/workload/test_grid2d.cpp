// Tests for the 2-D Cartesian halo-exchange workload.
#include <gtest/gtest.h>

#include <algorithm>

#include "workload/grid2d.hpp"

namespace iw::workload {
namespace {

Grid2DSpec spec_4x3() {
  Grid2DSpec spec;
  spec.px = 4;
  spec.py = 3;
  spec.steps = 2;
  return spec;
}

TEST(Grid2D, RankCoordinateRoundTrip) {
  const Grid2DSpec spec = spec_4x3();
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 3; ++y) {
      const int rank = grid_rank(spec, x, y);
      EXPECT_EQ(grid_coords(spec, rank), std::make_pair(x, y));
    }
  EXPECT_EQ(grid_rank(spec, 0, 0), 0);
  EXPECT_EQ(grid_rank(spec, 3, 2), 11);
}

TEST(Grid2D, InteriorHasFourNeighbors) {
  const Grid2DSpec spec = spec_4x3();
  const auto n = grid_neighbors(spec, grid_rank(spec, 1, 1));
  EXPECT_EQ(n.size(), 4u);
  // Order: +x, -x, +y, -y.
  EXPECT_EQ(n, (std::vector<int>{grid_rank(spec, 2, 1), grid_rank(spec, 0, 1),
                                 grid_rank(spec, 1, 2),
                                 grid_rank(spec, 1, 0)}));
}

TEST(Grid2D, OpenCornersHaveTwoNeighbors) {
  const Grid2DSpec spec = spec_4x3();
  EXPECT_EQ(grid_neighbors(spec, grid_rank(spec, 0, 0)).size(), 2u);
  EXPECT_EQ(grid_neighbors(spec, grid_rank(spec, 3, 2)).size(), 2u);
  EXPECT_EQ(grid_neighbors(spec, grid_rank(spec, 1, 0)).size(), 3u);
}

TEST(Grid2D, PeriodicEveryoneHasFour) {
  Grid2DSpec spec;
  spec.px = 4;
  spec.py = 4;
  spec.boundary = Boundary::periodic;
  for (int r = 0; r < spec.ranks(); ++r)
    EXPECT_EQ(grid_neighbors(spec, r).size(), 4u) << "rank " << r;
  // Wrap: (0,0)'s -x neighbor is (3,0).
  const auto n = grid_neighbors(spec, 0);
  EXPECT_NE(std::find(n.begin(), n.end(), grid_rank(spec, 3, 0)), n.end());
}

TEST(Grid2D, ManhattanDistances) {
  const Grid2DSpec spec = spec_4x3();
  EXPECT_EQ(grid_distance(spec, grid_rank(spec, 0, 0), grid_rank(spec, 3, 2)),
            5);
  EXPECT_EQ(grid_distance(spec, 5, 5), 0);

  Grid2DSpec per;
  per.px = 6;
  per.py = 6;
  per.boundary = Boundary::periodic;
  // Wrap shortens: (0,0) to (5,0) is 1 hop on a periodic grid.
  EXPECT_EQ(grid_distance(per, grid_rank(per, 0, 0), grid_rank(per, 5, 0)),
            1);
}

TEST(Grid2D, ProgramsHaveSymmetricExchange) {
  Grid2DSpec spec = spec_4x3();
  const auto programs = build_grid2d(spec);
  ASSERT_EQ(programs.size(), 12u);
  // Per step: every neighbor gets one send and one recv.
  int sends = 0, recvs = 0;
  for (const auto& op : programs[5].ops()) {
    sends += std::holds_alternative<mpi::OpIsend>(op);
    recvs += std::holds_alternative<mpi::OpIrecv>(op);
  }
  EXPECT_EQ(sends, recvs);
  EXPECT_EQ(sends, 4 * spec.steps);  // rank 5 = (1,1) is interior
}

TEST(Grid2D, DelayInjection) {
  Grid2DSpec spec = spec_4x3();
  const std::vector<DelaySpec> delays{{5, 1, milliseconds(7.0)}};
  const auto programs = build_grid2d(spec, delays);
  EXPECT_EQ(programs[5].total_injected(), milliseconds(7.0));
  EXPECT_EQ(programs[4].total_injected(), Duration::zero());
}

TEST(Grid2D, Validation) {
  Grid2DSpec bad;
  bad.px = 1;
  bad.py = 1;
  EXPECT_THROW((void)build_grid2d(bad), std::invalid_argument);
  Grid2DSpec per;
  per.px = 2;
  per.py = 4;
  per.boundary = Boundary::periodic;
  EXPECT_THROW((void)build_grid2d(per), std::invalid_argument);
  const Grid2DSpec ok = spec_4x3();
  EXPECT_THROW((void)grid_rank(ok, 4, 0), std::invalid_argument);
  EXPECT_THROW((void)grid_coords(ok, 12), std::invalid_argument);
}

}  // namespace
}  // namespace iw::workload
