// Tests for collectives composed from point-to-point primitives.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "workload/collectives.hpp"

namespace iw::workload {
namespace {

/// Runs one program per rank on an ideal 1-ppn cluster and returns the
/// trace; convenience for collective-correctness checks.
mpi::Trace run(std::vector<mpi::Program> programs) {
  core::ClusterConfig config;
  config.topo = net::TopologySpec::one_rank_per_node(
      static_cast<int>(programs.size()));
  core::Cluster cluster(config);
  return cluster.run(programs);
}

std::vector<mpi::Program> barrier_only(int ranks) {
  std::vector<mpi::Program> programs(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    programs[static_cast<std::size_t>(r)].mark(0);
    append_barrier(programs[static_cast<std::size_t>(r)], r, ranks, 0);
  }
  return programs;
}

TEST(Barrier, CompletesOnAllRankCounts) {
  // Powers of two, odd counts, and primes: the tree must always terminate.
  for (const int n : {2, 3, 4, 5, 7, 8, 13, 16, 33}) {
    const auto trace = run(barrier_only(n));
    for (int r = 0; r < n; ++r)
      EXPECT_GT(trace.finish(r).ns(), 0) << "n=" << n << " rank=" << r;
  }
}

TEST(Barrier, SingleRankIsNoop) {
  mpi::Program prog;
  append_barrier(prog, 0, 1, 0);
  EXPECT_TRUE(prog.empty());
}

TEST(Barrier, NobodyLeavesBeforeTheLastArrives) {
  // Rank 3 of 8 computes 10 ms before entering the barrier; everyone's
  // barrier exit must be >= 10 ms.
  const int n = 8;
  std::vector<mpi::Program> programs(n);
  for (int r = 0; r < n; ++r) {
    if (r == 3) programs[static_cast<std::size_t>(r)].compute(
        milliseconds(10.0), false);
    append_barrier(programs[static_cast<std::size_t>(r)], r, n, 0);
  }
  const auto trace = run(std::move(programs));
  for (int r = 0; r < n; ++r)
    EXPECT_GE(trace.finish(r), SimTime::zero() + milliseconds(10.0))
        << "rank " << r << " left the barrier early";
}

TEST(Barrier, LogDepthNotLinear) {
  // Barrier latency grows ~log2(n), not ~n: 32 ranks must cost well under
  // 16x the 2-rank barrier.
  const auto t2 = run(barrier_only(2)).makespan();
  const auto t32 = run(barrier_only(32)).makespan();
  EXPECT_LT(t32.ns(), 8 * t2.ns());
  EXPECT_GT(t32, t2);
}

TEST(RingAllreduce, CompletesAndSynchronizes) {
  const int n = 6;
  std::vector<mpi::Program> programs(n);
  for (int r = 0; r < n; ++r) {
    if (r == 2) programs[static_cast<std::size_t>(r)].compute(
        milliseconds(5.0), false);
    append_ring_allreduce(programs[static_cast<std::size_t>(r)], r, n,
                          6 * 1024, 0);
  }
  const auto trace = run(std::move(programs));
  // Allreduce is globally synchronizing: no rank finishes before the
  // latecomer's 5 ms plus the rounds.
  for (int r = 0; r < n; ++r)
    EXPECT_GE(trace.finish(r), SimTime::zero() + milliseconds(5.0));
}

TEST(RingAllreduce, RoundStructure) {
  mpi::Program prog;
  append_ring_allreduce(prog, 0, 5, 5000, 0);
  // 2(n-1) = 8 rounds, each isend+irecv+waitall.
  EXPECT_EQ(prog.rounds(), 8);
  int sends = 0;
  for (const auto& op : prog.ops())
    if (const auto* send = std::get_if<mpi::OpIsend>(&op)) {
      ++sends;
      EXPECT_EQ(send->bytes, 1000);  // bytes / ranks
      EXPECT_EQ(send->peer, 1);      // always the right neighbor
    }
  EXPECT_EQ(sends, 8);
}

TEST(Bcast, RootSendsLeavesReceive) {
  const int n = 8;
  std::vector<mpi::Program> programs(n);
  for (int r = 0; r < n; ++r)
    append_bcast(programs[static_cast<std::size_t>(r)], r, n, 4096, 0);
  // Root has no receive; leaf 7 has no send.
  for (const auto& op : programs[0].ops())
    EXPECT_FALSE(std::holds_alternative<mpi::OpIrecv>(op));
  for (const auto& op : programs[7].ops())
    EXPECT_FALSE(std::holds_alternative<mpi::OpIsend>(op));
  const auto trace = run(std::move(programs));
  for (int r = 0; r < n; ++r) EXPECT_GT(trace.finish(r).ns(), 0);
}

TEST(Bcast, RootDelayReachesEveryone) {
  const int n = 8;
  std::vector<mpi::Program> programs(n);
  for (int r = 0; r < n; ++r) {
    if (r == 0) programs[0].compute(milliseconds(3.0), false);
    append_bcast(programs[static_cast<std::size_t>(r)], r, n, 4096, 0);
  }
  const auto trace = run(std::move(programs));
  for (int r = 1; r < n; ++r)
    EXPECT_GE(trace.finish(r), SimTime::zero() + milliseconds(3.0));
}

TEST(RingWithCollective, BuildsAndRuns) {
  RingSpec ring;
  ring.ranks = 8;
  ring.steps = 6;
  ring.texec = milliseconds(1.0);
  ring.noisy = false;
  const auto programs = build_ring_with_collective(
      ring, CollectiveKind::barrier, /*every=*/2, 0);
  const auto trace = run(programs);
  for (int r = 0; r < 8; ++r) {
    EXPECT_GE(trace.finish(r), SimTime::zero() + milliseconds(6.0));
    EXPECT_EQ(trace.step_begin(r).size(), 6u);
  }
}

TEST(RingWithCollective, TagSpans) {
  EXPECT_EQ(collective_tag_span(CollectiveKind::none, 8), 0);
  EXPECT_EQ(collective_tag_span(CollectiveKind::barrier, 8), 2);
  EXPECT_EQ(collective_tag_span(CollectiveKind::allreduce, 8), 14);
  EXPECT_EQ(collective_tag_span(CollectiveKind::bcast, 8), 1);
}

TEST(Collectives, Validation) {
  mpi::Program prog;
  EXPECT_THROW(append_ring_allreduce(prog, 0, 1, 100, 0),
               std::invalid_argument);
  EXPECT_THROW(append_barrier(prog, 5, 4, 0), std::invalid_argument);
  RingSpec ring;
  ring.ranks = 4;
  EXPECT_THROW(
      (void)build_ring_with_collective(ring, CollectiveKind::barrier, 0, 0),
      std::invalid_argument);
}

TEST(Collectives, KindNames) {
  EXPECT_STREQ(to_string(CollectiveKind::barrier), "barrier");
  EXPECT_STREQ(to_string(CollectiveKind::allreduce), "allreduce");
}

}  // namespace
}  // namespace iw::workload
