// Tests for the noise model zoo.
#include <gtest/gtest.h>

#include <vector>

#include "noise/noise_model.hpp"
#include "support/stats.hpp"

namespace iw::noise {
namespace {

std::vector<double> sample_us(const NoiseModel& model, int n, Rng& rng) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(model.sample(rng).us());
  return out;
}

TEST(ZeroNoise, AlwaysZero) {
  ZeroNoise model;
  Rng rng(1);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(model.sample(rng), Duration::zero());
  EXPECT_EQ(model.mean(), Duration::zero());
}

TEST(ExponentialNoise, MatchesConfiguredMean) {
  const ExponentialNoise model(microseconds(2.4));
  Rng rng(7);
  const auto s = summarize(sample_us(model, 200000, rng));
  EXPECT_NEAR(s.mean, 2.4, 0.05);
  EXPECT_GE(s.min, 0.0);
  EXPECT_EQ(model.mean(), microseconds(2.4));
}

TEST(ExponentialNoise, MaxAtPaperSampleCountBelow30us) {
  // Paper Fig. 3: Emmy's 3.3e5 samples peak below 30 us. An exponential
  // with mean 2.4 us has E[max] ~ 2.4 * ln(3.3e5) ~ 30.5 us; check the
  // realized max is in that ballpark and not wildly above.
  const ExponentialNoise model(microseconds(2.4));
  Rng rng(3);
  double max_us = 0;
  for (int i = 0; i < 330000; ++i)
    max_us = std::max(max_us, model.sample(rng).us());
  EXPECT_GT(max_us, 15.0);
  EXPECT_LT(max_us, 60.0);
}

TEST(GammaNoise, ShapeOneIsExponentialLike) {
  const GammaNoise model(1.0, microseconds(10.0));
  Rng rng(11);
  const auto s = summarize(sample_us(model, 100000, rng));
  EXPECT_NEAR(s.mean, 10.0, 0.3);
  EXPECT_NEAR(s.stddev, 10.0, 0.4);  // CV = 1 for exponential
}

TEST(GammaNoise, HighShapeConcentrates) {
  const GammaNoise model(16.0, microseconds(10.0));
  Rng rng(12);
  const auto s = summarize(sample_us(model, 100000, rng));
  EXPECT_NEAR(s.mean, 10.0, 0.3);
  EXPECT_NEAR(s.stddev, 2.5, 0.2);  // mean/sqrt(16)
}

TEST(UniformNoise, BoundsRespected) {
  const UniformNoise model(microseconds(2.0), microseconds(4.0));
  Rng rng(5);
  const auto s = summarize(sample_us(model, 50000, rng));
  EXPECT_GE(s.min, 2.0);
  EXPECT_LE(s.max, 4.0);
  EXPECT_NEAR(s.mean, 3.0, 0.05);
  EXPECT_EQ(model.mean(), microseconds(3.0));
}

TEST(NormalNoise, TruncatedAtZero) {
  const NormalNoise model(microseconds(1.0), microseconds(5.0));
  Rng rng(17);
  const auto s = summarize(sample_us(model, 50000, rng));
  EXPECT_GE(s.min, 0.0);
}

TEST(MixtureNoise, BlendsComponentsByWeight) {
  std::vector<MixtureNoise::Component> parts;
  parts.push_back({0.5, std::make_unique<UniformNoise>(microseconds(1.0),
                                                       microseconds(1.0))});
  parts.push_back({0.5, std::make_unique<UniformNoise>(microseconds(3.0),
                                                       microseconds(3.0))});
  const MixtureNoise model(std::move(parts));
  Rng rng(19);
  const auto s = summarize(sample_us(model, 100000, rng));
  EXPECT_NEAR(s.mean, 2.0, 0.05);
  EXPECT_EQ(model.mean(), microseconds(2.0));
}

TEST(MixtureNoise, WeightsNeedNotBeNormalized) {
  std::vector<MixtureNoise::Component> parts;
  parts.push_back({3.0, std::make_unique<UniformNoise>(microseconds(1.0),
                                                       microseconds(1.0))});
  parts.push_back({1.0, std::make_unique<UniformNoise>(microseconds(5.0),
                                                       microseconds(5.0))});
  const MixtureNoise model(std::move(parts));
  EXPECT_EQ(model.mean(), microseconds(2.0));
}

TEST(NoiseModels, CloneIsIndependentButEquivalent) {
  const ExponentialNoise model(microseconds(7.0));
  const auto copy = model.clone();
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(model.sample(a), copy->sample(b));
}

TEST(NoiseModels, DescribeMentionsParameters) {
  EXPECT_NE(ExponentialNoise(microseconds(2.4)).describe().find("2.40 us"),
            std::string::npos);
  EXPECT_NE(GammaNoise(2.0, microseconds(1.0)).describe().find("gamma"),
            std::string::npos);
}

TEST(NoiseModels, InvalidParametersRejected) {
  EXPECT_THROW(ExponentialNoise(Duration{-1}), std::invalid_argument);
  EXPECT_THROW(GammaNoise(0.0, microseconds(1.0)), std::invalid_argument);
  EXPECT_THROW(UniformNoise(microseconds(3.0), microseconds(2.0)),
               std::invalid_argument);
  EXPECT_THROW(MixtureNoise(std::vector<MixtureNoise::Component>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace iw::noise
