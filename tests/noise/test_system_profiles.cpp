// Tests for the calibrated cluster noise profiles (paper Fig. 3).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "noise/system_profiles.hpp"
#include "support/histogram.hpp"
#include "support/stats.hpp"

namespace iw::noise {
namespace {

std::vector<double> sample_us(const NoiseModel& model, int n, Rng rng) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(model.sample(rng).us());
  return out;
}

TEST(SystemProfiles, EmmySmtOnMatchesPaperStatistics) {
  const auto model = emmy_smt_on();
  const auto s = summarize(sample_us(*model, 330000, Rng(1)));
  EXPECT_NEAR(s.mean, 2.4, 0.1);   // paper: average 2.4 us
  EXPECT_LT(s.max, 60.0);          // paper: max below ~30 us
}

TEST(SystemProfiles, MeggieSmtOnMatchesPaperStatistics) {
  const auto model = meggie_smt_on();
  const auto s = summarize(sample_us(*model, 330000, Rng(2)));
  EXPECT_NEAR(s.mean, 2.8, 0.1);   // paper: average 2.8 us
}

TEST(SystemProfiles, MeggieSmtOffIsBimodalWithDriverPeak) {
  const auto model = meggie_smt_off();
  // Histogram with the paper's 7.2 us bins over 0..800 us.
  Histogram h(0.0, 800.0, 111);
  Rng rng(3);
  for (int i = 0; i < 330000; ++i) h.add(model->sample(rng).us());
  // Main mode near zero.
  EXPECT_LT(h.bin_center(h.mode_bin()), 20.0);
  // Distinct second mode near 660 us: the driver peak bin must clearly
  // dominate its mid-range neighborhood.
  std::size_t peak_bin = 0;
  std::size_t peak_count = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    if (h.bin_center(b) > 400.0 && h.count(b) > peak_count) {
      peak_count = h.count(b);
      peak_bin = b;
    }
  }
  EXPECT_NEAR(h.bin_center(peak_bin), 660.0, 30.0);
  EXPECT_GT(peak_count, 100u);
  // Valley between the modes: mid-range (~300 us) nearly empty.
  std::size_t valley = 0;
  for (std::size_t b = 0; b < h.bins(); ++b)
    if (h.bin_center(b) > 250.0 && h.bin_center(b) < 350.0)
      valley += h.count(b);
  EXPECT_LT(valley, peak_count / 5);
}

TEST(SystemProfiles, SmtOffCoarserThanSmtOn) {
  // The damping effect of SMT (paper citing Leon et al.): disabling SMT
  // makes noise coarser on both systems.
  const auto emmy_on = summarize(sample_us(*emmy_smt_on(), 50000, Rng(4)));
  const auto emmy_off = summarize(sample_us(*emmy_smt_off(), 50000, Rng(5)));
  EXPECT_GT(emmy_off.mean, emmy_on.mean);
  const auto meggie_on = summarize(sample_us(*meggie_smt_on(), 50000, Rng(6)));
  const auto meggie_off =
      summarize(sample_us(*meggie_smt_off(), 50000, Rng(7)));
  EXPECT_GT(meggie_off.mean, meggie_on.mean);
}

TEST(NoiseSpec, BuildsConfiguredKinds) {
  Rng rng(1);
  EXPECT_EQ(NoiseSpec::none().build()->sample(rng), Duration::zero());
  EXPECT_NEAR(NoiseSpec::exponential(milliseconds(1.0)).build()->mean().ms(),
              1.0, 1e-9);
  EXPECT_EQ(NoiseSpec::uniform(microseconds(1.0), microseconds(3.0))
                .build()
                ->mean(),
            microseconds(2.0));
  const auto gamma_model = NoiseSpec::gamma(4.0, microseconds(8.0)).build();
  EXPECT_EQ(gamma_model->mean(), microseconds(8.0));
}

TEST(NoiseSpec, SystemNamesResolve) {
  EXPECT_EQ(NoiseSpec::system("emmy-smt-on").kind,
            NoiseSpec::Kind::emmy_smt_on);
  EXPECT_EQ(NoiseSpec::system("meggie-smt-off").kind,
            NoiseSpec::Kind::meggie_smt_off);
  EXPECT_THROW((void)NoiseSpec::system("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace iw::noise
