// Tests for comma-separated list parsing of sweep axes (`--np=4,8,16`).
#include <gtest/gtest.h>

#include <stdexcept>

#include "support/cli.hpp"

namespace iw {
namespace {

TEST(CliList, ParsesInt64List) {
  const char* argv[] = {"prog", "--np=4,8,16"};
  const Cli cli(2, argv);
  const auto np = cli.get_list_or("np", std::vector<std::int64_t>{});
  ASSERT_EQ(np.size(), 3u);
  EXPECT_EQ(np[0], 4);
  EXPECT_EQ(np[1], 8);
  EXPECT_EQ(np[2], 16);
}

TEST(CliList, ParsesDoubleList) {
  const char* argv[] = {"prog", "--delay-ms=0.5,2,12.25"};
  const Cli cli(2, argv);
  const auto delays = cli.get_list_or("delay-ms", std::vector<double>{});
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_DOUBLE_EQ(delays[0], 0.5);
  EXPECT_DOUBLE_EQ(delays[1], 2.0);
  EXPECT_DOUBLE_EQ(delays[2], 12.25);
}

TEST(CliList, SingleElementAndSpaceForm) {
  const char* argv[] = {"prog", "--np", "42"};
  const Cli cli(3, argv);
  const auto np = cli.get_list_or("np", std::vector<std::int64_t>{});
  ASSERT_EQ(np.size(), 1u);
  EXPECT_EQ(np[0], 42);
}

TEST(CliList, AbsentFlagYieldsFallback) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  const auto np =
      cli.get_list_or("np", std::vector<std::int64_t>{7, 9});
  ASSERT_EQ(np.size(), 2u);
  EXPECT_EQ(np[0], 7);
  EXPECT_EQ(np[1], 9);
  const auto d = cli.get_list_or("delay", std::vector<double>{1.5});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0], 1.5);
}

TEST(CliList, NegativeValues) {
  const char* argv[] = {"prog", "--shift=-3,-1"};
  const Cli cli(2, argv);
  const auto shift = cli.get_list_or("shift", std::vector<std::int64_t>{});
  ASSERT_EQ(shift.size(), 2u);
  EXPECT_EQ(shift[0], -3);
  EXPECT_EQ(shift[1], -1);
}

TEST(CliList, RejectsMalformedLists) {
  const auto parse_i64 = [](const char* value) {
    const char* argv[] = {"prog", value};
    const Cli cli(2, argv);
    return cli.get_list_or("x", std::vector<std::int64_t>{});
  };
  EXPECT_THROW(parse_i64("--x=4,,8"), std::invalid_argument);
  EXPECT_THROW(parse_i64("--x=4,8,"), std::invalid_argument);
  EXPECT_THROW(parse_i64("--x=,4"), std::invalid_argument);
  EXPECT_THROW(parse_i64("--x=abc"), std::invalid_argument);
  EXPECT_THROW(parse_i64("--x=4,8q"), std::invalid_argument);
  // Fractional input is not a valid int64 element.
  EXPECT_THROW(parse_i64("--x=4.5"), std::invalid_argument);
}

TEST(CliList, UnknownFlagCheckingStillApplies) {
  const char* argv[] = {"prog", "--np=4,8"};
  const Cli cli(2, argv);
  EXPECT_NO_THROW(cli.allow_only({"np"}));
  EXPECT_THROW(cli.allow_only({"ranks"}), std::invalid_argument);
}

}  // namespace
}  // namespace iw
