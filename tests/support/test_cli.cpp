// Tests for comma-separated list parsing of sweep axes (`--np=4,8,16`),
// including seeded property tests against malformed input: parsing must
// either return the full list or throw std::invalid_argument — never
// crash, never silently truncate.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/rng.hpp"

namespace iw {
namespace {

TEST(CliList, ParsesInt64List) {
  const char* argv[] = {"prog", "--np=4,8,16"};
  const Cli cli(2, argv);
  const auto np = cli.get_list_or("np", std::vector<std::int64_t>{});
  ASSERT_EQ(np.size(), 3u);
  EXPECT_EQ(np[0], 4);
  EXPECT_EQ(np[1], 8);
  EXPECT_EQ(np[2], 16);
}

TEST(CliList, ParsesDoubleList) {
  const char* argv[] = {"prog", "--delay-ms=0.5,2,12.25"};
  const Cli cli(2, argv);
  const auto delays = cli.get_list_or("delay-ms", std::vector<double>{});
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_DOUBLE_EQ(delays[0], 0.5);
  EXPECT_DOUBLE_EQ(delays[1], 2.0);
  EXPECT_DOUBLE_EQ(delays[2], 12.25);
}

TEST(CliList, SingleElementAndSpaceForm) {
  const char* argv[] = {"prog", "--np", "42"};
  const Cli cli(3, argv);
  const auto np = cli.get_list_or("np", std::vector<std::int64_t>{});
  ASSERT_EQ(np.size(), 1u);
  EXPECT_EQ(np[0], 42);
}

TEST(CliList, AbsentFlagYieldsFallback) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  const auto np =
      cli.get_list_or("np", std::vector<std::int64_t>{7, 9});
  ASSERT_EQ(np.size(), 2u);
  EXPECT_EQ(np[0], 7);
  EXPECT_EQ(np[1], 9);
  const auto d = cli.get_list_or("delay", std::vector<double>{1.5});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0], 1.5);
}

TEST(CliList, NegativeValues) {
  const char* argv[] = {"prog", "--shift=-3,-1"};
  const Cli cli(2, argv);
  const auto shift = cli.get_list_or("shift", std::vector<std::int64_t>{});
  ASSERT_EQ(shift.size(), 2u);
  EXPECT_EQ(shift[0], -3);
  EXPECT_EQ(shift[1], -1);
}

TEST(CliList, RejectsMalformedLists) {
  const auto parse_i64 = [](const char* value) {
    const char* argv[] = {"prog", value};
    const Cli cli(2, argv);
    return cli.get_list_or("x", std::vector<std::int64_t>{});
  };
  EXPECT_THROW(parse_i64("--x=4,,8"), std::invalid_argument);
  EXPECT_THROW(parse_i64("--x=4,8,"), std::invalid_argument);
  EXPECT_THROW(parse_i64("--x=,4"), std::invalid_argument);
  EXPECT_THROW(parse_i64("--x=abc"), std::invalid_argument);
  EXPECT_THROW(parse_i64("--x=4,8q"), std::invalid_argument);
  // Fractional input is not a valid int64 element.
  EXPECT_THROW(parse_i64("--x=4.5"), std::invalid_argument);
}

TEST(CliIntList, RangeChecksIntoInt) {
  const char* argv[] = {"prog", "--np=4,8,16"};
  const Cli cli(2, argv);
  const auto np = cli.get_int_list_or("np", {});
  ASSERT_EQ(np.size(), 3u);
  EXPECT_EQ(np[2], 16);

  const char* big[] = {"prog", "--np=4,90000000000"};  // > int max
  const Cli overflow(2, big);
  EXPECT_THROW(overflow.get_int_list_or("np", {}), std::invalid_argument);

  const char* neg[] = {"prog", "--np=-90000000000"};  // < int min
  const Cli underflow(2, neg);
  EXPECT_THROW(underflow.get_int_list_or("np", {}), std::invalid_argument);
}

TEST(CliIntList, AbsentFlagYieldsFallback) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  const auto np = cli.get_int_list_or("np", {3, 5});
  ASSERT_EQ(np.size(), 2u);
  EXPECT_EQ(np[0], 3);
  EXPECT_EQ(np[1], 5);
}

// ---- property tests -------------------------------------------------------
// Seeded random strings over a list-ish alphabet. For every input, each
// parser must either (a) throw std::invalid_argument, or (b) return exactly
// comma_count+1 elements — the no-crash / no-silent-truncation contract the
// sweep_runner axis overrides rely on.

std::string random_list_input(Rng& rng, std::size_t max_len) {
  static constexpr char alphabet[] = "0123456789,,..--++eExq ";
  const std::size_t len = rng.uniform_below(max_len + 1);
  std::string s;
  for (std::size_t i = 0; i < len; ++i)
    s += alphabet[rng.uniform_below(sizeof alphabet - 1)];
  return s;
}

template <typename Parse>
void check_list_property(const std::string& input, Parse parse) {
  const std::string arg = "--x=" + input;
  const char* argv[] = {"prog", arg.c_str()};
  const Cli cli(2, argv);
  const std::size_t commas =
      static_cast<std::size_t>(std::count(input.begin(), input.end(), ','));
  try {
    const auto parsed = parse(cli);
    EXPECT_EQ(parsed.size(), commas + 1)
        << "silent truncation for input '" << input << "'";
  } catch (const std::invalid_argument&) {
    // rejected cleanly: fine
  }
}

TEST(CliListProperty, Int64ListNeverCrashesNorTruncates) {
  Rng rng(0xC11F00D5EEDull);
  for (int i = 0; i < 3000; ++i)
    check_list_property(random_list_input(rng, 24), [](const Cli& cli) {
      return cli.get_list_or("x", std::vector<std::int64_t>{});
    });
}

TEST(CliListProperty, DoubleListNeverCrashesNorTruncates) {
  Rng rng(0xD0B1E5EEDull);
  for (int i = 0; i < 3000; ++i)
    check_list_property(random_list_input(rng, 24), [](const Cli& cli) {
      return cli.get_list_or("x", std::vector<double>{});
    });
}

TEST(CliListProperty, IntListNeverCrashesNorTruncates) {
  Rng rng(0x1217EE7ull);
  for (int i = 0; i < 3000; ++i)
    check_list_property(random_list_input(rng, 24), [](const Cli& cli) {
      return cli.get_int_list_or("x", {});
    });
}

TEST(CliListProperty, ValidListsAlwaysParseInFull) {
  // The complementary direction: well-formed lists of random numerics must
  // parse, element for element.
  Rng rng(0xA11600Dull);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = 1 + rng.uniform_below(6);
    std::string input;
    std::vector<std::int64_t> want;
    for (std::size_t k = 0; k < n; ++k) {
      const auto v = static_cast<std::int64_t>(rng.uniform_below(1'000'000)) -
                     500'000;
      want.push_back(v);
      input += (k ? "," : "") + std::to_string(v);
    }
    const std::string arg = "--x=" + input;
    const char* argv[] = {"prog", arg.c_str()};
    const Cli cli(2, argv);
    EXPECT_EQ(cli.get_list_or("x", std::vector<std::int64_t>{}), want);
  }
}

TEST(CliList, UnknownFlagCheckingStillApplies) {
  const char* argv[] = {"prog", "--np=4,8"};
  const Cli cli(2, argv);
  EXPECT_NO_THROW(cli.allow_only({"np"}));
  EXPECT_THROW(cli.allow_only({"ranks"}), std::invalid_argument);
}

}  // namespace
}  // namespace iw
