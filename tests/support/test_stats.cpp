// Tests for descriptive statistics and line fitting.
#include <gtest/gtest.h>

#include <vector>

#include "support/stats.hpp"

namespace iw {
namespace {

TEST(Stats, MeanMedianOfKnownData) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(mean(v), 4.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, MedianEvenCountAveragesCenter) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, EmptyInputYieldsZeros) {
  const std::vector<double> v;
  EXPECT_DOUBLE_EQ(mean(v), 0.0);
  EXPECT_DOUBLE_EQ(median(v), 0.0);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Stats, SingleElement) {
  const std::vector<double> v{42.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Stats, SummaryStddevSampleDenominator) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sqrt(32/7)
}

TEST(Stats, PercentileRejectsOutOfRange) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(LineFit, ExactLineRecovered) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const LineFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 2.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 1.0);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
  EXPECT_EQ(fit.n, 4u);
}

TEST(LineFit, NegativeSlope) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  const std::vector<double> y{10.0, 8.0, 6.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, -2.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 10.0);
}

TEST(LineFit, NoisyDataReducesR2) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{2.0, 1.0, 4.0, 3.0, 6.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_GT(fit.slope, 0.0);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GT(fit.r2, 0.0);
}

TEST(LineFit, DegenerateInputsYieldZeroFit) {
  EXPECT_EQ(fit_line({}, {}).n, 0u);
  const std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(fit_line(one, one).slope, 0.0);
  // Constant x (vertical line): no defined slope.
  const std::vector<double> x{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fit_line(x, y).slope, 0.0);
}

TEST(LineFit, ConstantYPerfectFit) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{5.0, 5.0, 5.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(LineFit, MismatchedSizesRejected) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW((void)fit_line(x, y), std::invalid_argument);
}

}  // namespace
}  // namespace iw
