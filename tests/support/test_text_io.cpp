// Tests for table rendering, CSV emission, CLI parsing, and unit formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace iw {
namespace {

TEST(TextTable, AlignsColumnsUnderHeaders) {
  TextTable t;
  t.columns({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t;
  t.columns({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, OverlongRowRejected) {
  TextTable t;
  t.columns({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, SeparatorRendersRule) {
  TextTable t;
  t.columns({"abc"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Two rules: one under the header, one explicit.
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("---", pos)) != std::string::npos) {
    ++count;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(count, 2u);
}

TEST(FmtFixed, Decimals) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
}

TEST(Csv, InactiveWriterDiscards) {
  CsvWriter w;
  EXPECT_FALSE(w.active());
  EXPECT_NO_THROW(w.row({"a", "b"}));
}

TEST(Csv, WritesQuotedFields) {
  const std::string path = "test_csv_out.tmp.csv";
  {
    CsvWriter w(path);
    EXPECT_TRUE(w.active());
    w.header({"a", "b"});
    w.row({"plain", "with,comma"});
    w.row({"with\"quote", "x"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with\"\"quote\",x");
  std::remove(path.c_str());
}

TEST(Csv, NumFormatsRoundTrip) {
  EXPECT_EQ(csv_num(2.5), "2.5");
  const double v = 1.0 / 3.0;
  EXPECT_NEAR(std::stod(csv_num(v)), v, 1e-12);
}

TEST(Cli, ParsesAllFlagForms) {
  const char* argv[] = {"prog", "--a=1", "--b", "2", "--flag"};
  const Cli cli(5, argv);
  EXPECT_EQ(cli.get_or("a", std::int64_t{0}), 1);
  EXPECT_EQ(cli.get_or("b", std::int64_t{0}), 2);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get_or("flag", std::string{}), "true");
  EXPECT_EQ(cli.get_or("missing", 7.5), 7.5);
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Cli(2, argv), std::invalid_argument);
}

TEST(Cli, AllowOnlyCatchesTypos) {
  const char* argv[] = {"prog", "--sede=1"};
  const Cli cli(2, argv);
  EXPECT_THROW(cli.allow_only({"seed"}), std::invalid_argument);
  EXPECT_NO_THROW(cli.allow_only({"sede"}));
}

TEST(Units, DurationPicksNaturalScale) {
  EXPECT_EQ(fmt_duration(nanoseconds(640)), "640 ns");
  EXPECT_EQ(fmt_duration(microseconds(2.4)), "2.40 us");
  EXPECT_EQ(fmt_duration(milliseconds(3.0)), "3.00 ms");
  EXPECT_EQ(fmt_duration(seconds(1.5)), "1.500 s");
}

TEST(Units, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(16384), "16.0 KiB");
  EXPECT_EQ(fmt_bytes(2 * 1024 * 1024), "2.0 MiB");
}

TEST(Units, BandwidthAndFlops) {
  EXPECT_EQ(fmt_bandwidth(40e9), "40.0 GB/s");
  EXPECT_EQ(fmt_bandwidth(3.2e6), "3.2 MB/s");
  EXPECT_EQ(fmt_gflops(12.34e9), "12.34 GF/s");
}

}  // namespace
}  // namespace iw
