// Tests for the pooled ring buffer behind the transport's matching queues:
// FIFO semantics, ordered middle erase (both shift directions), growth
// accounting, and capacity retention across clear().
#include <gtest/gtest.h>

#include <vector>

#include "support/ring_queue.hpp"

namespace iw {
namespace {

TEST(RingQueue, FifoPushPop) {
  RingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, LogicalIndexingFollowsHeadAroundTheWrap) {
  RingQueue<int> q;
  // Force a wrapped layout: fill past the initial capacity boundary while
  // popping, so head_ sits mid-buffer.
  for (int i = 0; i < 8; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();
  for (int i = 8; i < 13; ++i) q.push_back(i);
  ASSERT_EQ(q.size(), 7u);
  for (std::size_t i = 0; i < q.size(); ++i)
    EXPECT_EQ(q[i], static_cast<int>(i) + 6);
}

TEST(RingQueue, EraseKeepsRelativeOrderBothDirections) {
  for (const std::size_t victim : {std::size_t{1}, std::size_t{4}}) {
    RingQueue<int> q;
    for (int i = 0; i < 6; ++i) q.push_back(i);
    q.erase(victim);  // 1 shifts the front side, 4 the back side
    std::vector<int> got;
    for (std::size_t i = 0; i < q.size(); ++i) got.push_back(q[i]);
    std::vector<int> want;
    for (int i = 0; i < 6; ++i)
      if (static_cast<std::size_t>(i) != victim) want.push_back(i);
    EXPECT_EQ(got, want);
  }
}

TEST(RingQueue, EraseFrontAndBackAreCheap) {
  RingQueue<int> q;
  for (int i = 0; i < 4; ++i) q.push_back(i);
  q.erase(0);
  EXPECT_EQ(q.front(), 1);
  q.erase(q.size() - 1);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0], 1);
  EXPECT_EQ(q[1], 2);
}

TEST(RingQueue, GrowthIsCountedAndClearRetainsCapacity) {
  RingQueue<int> q;
  EXPECT_EQ(q.grows(), 0u);
  for (int i = 0; i < 9; ++i) q.push_back(i);  // 8 -> 16 growth at the 9th
  EXPECT_EQ(q.grows(), 2u);
  const std::size_t cap = q.capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), cap);
  // Refilling to the old size allocates nothing new.
  for (int i = 0; i < 9; ++i) q.push_back(i);
  EXPECT_EQ(q.grows(), 2u);
  for (std::size_t i = 0; i < q.size(); ++i)
    EXPECT_EQ(q[i], static_cast<int>(i));
}

}  // namespace
}  // namespace iw
