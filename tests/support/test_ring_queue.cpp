// Tests for the pooled ring buffer behind the transport's matching queues:
// FIFO semantics, ordered middle erase (both shift directions), growth
// accounting, capacity retention across clear(), and the audit-mode
// defenses (structural audit, vacated-slot poisoning, misuse detection).
// Audit-only expectations are gated on iw::check::kAuditEnabled so the
// suite is meaningful in Release and strict in Debug/IDLEWAVE_AUDIT/
// sanitizer builds.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "support/check.hpp"
#include "support/ring_queue.hpp"

namespace iw {
namespace {

TEST(RingQueue, FifoPushPop) {
  RingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, LogicalIndexingFollowsHeadAroundTheWrap) {
  RingQueue<int> q;
  // Force a wrapped layout: fill past the initial capacity boundary while
  // popping, so head_ sits mid-buffer.
  for (int i = 0; i < 8; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();
  for (int i = 8; i < 13; ++i) q.push_back(i);
  ASSERT_EQ(q.size(), 7u);
  for (std::size_t i = 0; i < q.size(); ++i)
    EXPECT_EQ(q[i], static_cast<int>(i) + 6);
}

TEST(RingQueue, EraseKeepsRelativeOrderBothDirections) {
  for (const std::size_t victim : {std::size_t{1}, std::size_t{4}}) {
    RingQueue<int> q;
    for (int i = 0; i < 6; ++i) q.push_back(i);
    q.erase(victim);  // 1 shifts the front side, 4 the back side
    std::vector<int> got;
    for (std::size_t i = 0; i < q.size(); ++i) got.push_back(q[i]);
    std::vector<int> want;
    for (int i = 0; i < 6; ++i)
      if (static_cast<std::size_t>(i) != victim) want.push_back(i);
    EXPECT_EQ(got, want);
  }
}

TEST(RingQueue, EraseFrontAndBackAreCheap) {
  RingQueue<int> q;
  for (int i = 0; i < 4; ++i) q.push_back(i);
  q.erase(0);
  EXPECT_EQ(q.front(), 1);
  q.erase(q.size() - 1);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0], 1);
  EXPECT_EQ(q[1], 2);
}

TEST(RingQueue, GrowthIsCountedAndClearRetainsCapacity) {
  RingQueue<int> q;
  EXPECT_EQ(q.grows(), 0u);
  for (int i = 0; i < 9; ++i) q.push_back(i);  // 8 -> 16 growth at the 9th
  EXPECT_EQ(q.grows(), 2u);
  const std::size_t cap = q.capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), cap);
  // Refilling to the old size allocates nothing new.
  for (int i = 0; i < 9; ++i) q.push_back(i);
  EXPECT_EQ(q.grows(), 2u);
  for (std::size_t i = 0; i < q.size(); ++i)
    EXPECT_EQ(q[i], static_cast<int>(i));
}

TEST(RingQueue, WraparoundExactlyAtThePowerOfTwoBoundary) {
  RingQueue<int> q;
  // Fill to exactly the initial capacity (8), then walk the head all the
  // way around: at every step the physical write index crosses the
  // power-of-two mask boundary once. A masking bug (off-by-one in slot() or
  // next()) shows up as reordered or clobbered elements within one lap.
  for (int i = 0; i < 8; ++i) q.push_back(i);
  ASSERT_EQ(q.capacity(), 8u);
  for (int lap = 0; lap < 16; ++lap) {
    EXPECT_EQ(q.front(), lap);
    q.pop_front();
    q.push_back(lap + 8);
    q.audit();
    ASSERT_EQ(q.size(), 8u);
    EXPECT_EQ(q.capacity(), 8u) << "full-queue lap must not grow";
    for (std::size_t i = 0; i < q.size(); ++i)
      ASSERT_EQ(q[i], lap + 1 + static_cast<int>(i));
  }
}

TEST(RingQueue, OrderedMiddleEraseOnAWrappedQueue) {
  // Both erase shift directions, exercised while the live region straddles
  // the physical end of the buffer (head near the top, tail wrapped).
  for (const std::size_t victim : {std::size_t{1}, std::size_t{5}}) {
    RingQueue<int> q;
    for (int i = 0; i < 8; ++i) q.push_back(i);  // capacity exactly 8
    for (int i = 0; i < 6; ++i) q.pop_front();   // head_ = 6
    for (int i = 8; i < 13; ++i) q.push_back(i);  // elements 6..12, wrapped
    ASSERT_EQ(q.size(), 7u);
    ASSERT_EQ(q.capacity(), 8u) << "setup must keep the wrapped layout";
    q.erase(victim);  // 1 shifts the (wrapped) front side, 5 the back side
    q.audit();
    std::vector<int> got;
    for (std::size_t i = 0; i < q.size(); ++i) got.push_back(q[i]);
    std::vector<int> want;
    for (int v = 6; v < 13; ++v)
      if (static_cast<std::size_t>(v - 6) != victim) want.push_back(v);
    EXPECT_EQ(got, want);
  }
}

TEST(RingQueue, GrowthWhileNonEmptyAndWrappedPreservesOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);
  for (int i = 0; i < 5; ++i) q.pop_front();  // head_ = 5: wrapped after 2 pushes
  for (int i = 8; i < 16; ++i) q.push_back(i);  // 9th element forces a grow
  EXPECT_EQ(q.grows(), 2u);  // initial allocation + the mid-flight growth
  EXPECT_EQ(q.capacity(), 16u);
  q.audit();
  ASSERT_EQ(q.size(), 11u);
  for (std::size_t i = 0; i < q.size(); ++i)
    EXPECT_EQ(q[i], 5 + static_cast<int>(i));
}

TEST(RingQueue, AuditModePoisonsVacatedSlots) {
  // Poisoning is observable through resource ownership: once an element is
  // popped/erased/cleared, an audit build must have overwritten the vacated
  // slot with T{}, dropping the element's refcount. A non-audit build keeps
  // the stale copy alive inside the buffer (harmless, but worth pinning so
  // the poisoning cost never silently leaks into Release).
  struct Payload {
    std::shared_ptr<int> p;
  };
  const auto expected_after_vacate = [](long base) {
    return iw::check::kAuditEnabled ? base : base + 1;
  };

  RingQueue<Payload> q;
  auto popped = std::make_shared<int>(1);
  q.push_back(Payload{popped});
  q.push_back(Payload{std::make_shared<int>(2)});
  q.push_back(Payload{std::make_shared<int>(3)});
  q.pop_front();
  EXPECT_EQ(popped.use_count(), expected_after_vacate(1));

  auto erased = q[0].p;
  q.erase(0);
  EXPECT_EQ(erased.use_count(), expected_after_vacate(1));

  // Reuse after clear(): every slot the queue still held is poisoned, and
  // the storage is safely recyclable for fresh elements.
  auto cleared = q[0].p;
  q.clear();
  EXPECT_EQ(cleared.use_count(), expected_after_vacate(1));
  for (int i = 0; i < 4; ++i) q.push_back(Payload{std::make_shared<int>(i)});
  q.audit();
  ASSERT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(*q[static_cast<std::size_t>(i)].p, i);
}

TEST(RingQueue, AuditModeCatchesMisuse) {
  // The misuse paths are contract violations: exercising them is only safe
  // when the audit layer is compiled in to intercept (in Release they are
  // documented UB, which is exactly why the audits exist).
  if (!iw::check::kAuditEnabled) GTEST_SKIP() << "audit layer compiled out";
  RingQueue<int> q;
  EXPECT_THROW(q.pop_front(), std::logic_error);
  EXPECT_THROW((void)q.front(), std::logic_error);
  q.push_back(7);
  EXPECT_THROW(q.erase(1), std::logic_error);
  EXPECT_THROW((void)q[1], std::logic_error);
}

}  // namespace
}  // namespace iw
