// Pins the contract of the audit layer (support/check.hpp): IW_ASSERT and
// IW_AUDIT are real in audit builds (Debug, IDLEWAVE_AUDIT=ON, sanitizer
// presets) and compile to nothing — conditions unevaluated, statements
// dropped — everywhere else. The kAuditEnabled constant is the single
// runtime-queryable source of truth (the bench baseline guard keys off it).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "support/check.hpp"
#include "support/error.hpp"

namespace iw {
namespace {

TEST(Check, AuditFlagMatchesBuildConfiguration) {
#if IW_AUDIT_ENABLED
  EXPECT_TRUE(check::kAuditEnabled);
#else
  EXPECT_FALSE(check::kAuditEnabled);
#endif
#if defined(IDLEWAVE_AUDIT)
  // The CMake option force-enables the layer in any build type.
  EXPECT_TRUE(check::kAuditEnabled);
#elif !defined(NDEBUG)
  // Debug builds default the layer on.
  EXPECT_TRUE(check::kAuditEnabled);
#else
  // Plain Release: compiled out — this is the branch the tier-1 Release
  // run exercises, proving the macros cost nothing there.
  EXPECT_FALSE(check::kAuditEnabled);
#endif
}

TEST(Check, AssertConditionIsNotEvaluatedWhenCompiledOut) {
  int evaluations = 0;
  const auto probe = [&evaluations] {
    ++evaluations;
    return true;
  };
  ASSERT_TRUE(probe());  // baseline call, so the lambda is used in any build
  IW_ASSERT(probe(), "probe");
  EXPECT_EQ(evaluations, check::kAuditEnabled ? 2 : 1)
      << "a compiled-out IW_ASSERT must not evaluate its condition";
}

TEST(Check, AssertThrowsLogicErrorWithContextInAuditBuilds) {
  if (!check::kAuditEnabled) GTEST_SKIP() << "audit layer compiled out";
  try {
    IW_ASSERT(1 + 1 == 3, "the message");
    FAIL() << "IW_ASSERT(false) did not throw in an audit build";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("the message"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  }
}

TEST(Check, AuditStatementRunsExactlyInAuditBuilds) {
  int runs = 0;
  IW_AUDIT(++runs);
  EXPECT_EQ(runs, check::kAuditEnabled ? 1 : 0);
}

TEST(Check, AlwaysOnContractsRemainOnInEveryBuild) {
  // IW_REQUIRE / IW_CHECK (support/error.hpp) are the always-on tier; the
  // audit layer must not have weakened them.
  EXPECT_THROW(IW_REQUIRE(false, "precondition"), std::invalid_argument);
  EXPECT_THROW(IW_CHECK(false, "invariant"), std::logic_error);
}

}  // namespace
}  // namespace iw
