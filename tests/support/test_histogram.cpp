// Tests for the fixed-bin histogram.
#include <gtest/gtest.h>

#include "support/histogram.hpp"
#include "support/rng.hpp"

namespace iw {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 2.75);
  EXPECT_EQ(h.bins(), 4u);
}

TEST(Histogram, UnderflowOverflowTracked) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, FractionsNormalizeOverInRange) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.fraction(1), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, ModeBinFindsPeak) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.1);
  h.add(1.1);
  h.add(1.2);
  h.add(2.9);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, ExponentialSamplePeaksInFirstBin) {
  // The paper's Fig. 3 histograms are built from noise samples; an
  // exponential body must put the mode in the lowest bin.
  Histogram h(0.0, 30.0, 47);  // ~0.64 us bins over 30 us, as in the paper
  Rng rng(2024);
  for (int i = 0; i < 100000; ++i) h.add(rng.exponential(2.4));
  EXPECT_EQ(h.mode_bin(), 0u);
  EXPECT_GT(h.fraction(0), 0.2);
}

TEST(Histogram, RenderSkipsEmptyBinsAndScalesBars) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(2.5);
  const std::string art = h.render(10, true);
  // Two populated bins -> two lines.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
  EXPECT_NE(art.find("##########"), std::string::npos);  // full-size bar
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace iw
