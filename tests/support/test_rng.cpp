// Tests for deterministic random number generation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace iw {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, StreamsAreIndependentAcrossRanksAndPurposes) {
  Rng r0 = Rng::for_stream(7, 0, 0);
  Rng r1 = Rng::for_stream(7, 1, 0);
  Rng r0p1 = Rng::for_stream(7, 0, 1);
  const auto a = r0.next_u64();
  const auto b = r1.next_u64();
  const auto c = r0p1.next_u64();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // Same triple reproduces.
  Rng again = Rng::for_stream(7, 0, 0);
  EXPECT_EQ(again.next_u64(), a);
}

TEST(RngFork, StableAcrossCallsAndCallOrder) {
  const Rng parent(2024);
  Rng a = parent.fork(3);
  // fork() is const: asking for other children first must not change what
  // child 3 produces, and the parent's own stream is unperturbed.
  const Rng parent2(2024);
  (void)parent2.fork(7);
  (void)parent2.fork(0);
  Rng b = parent2.fork(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  Rng p1(2024), p2(2024);
  (void)p1.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p1.next_u64(), p2.next_u64());
}

TEST(RngFork, StreamsDoNotOverlapOnFirstThousandDraws) {
  // Eight children plus the parent: 9000 draws, all distinct. With 64-bit
  // outputs a single collision among 9k draws is ~2e-12 probability, so any
  // overlap signals correlated streams, not chance.
  const Rng parent(0xFEED);
  std::set<std::uint64_t> seen;
  Rng p = parent;
  for (int i = 0; i < 1000; ++i) seen.insert(p.next_u64());
  for (std::uint64_t child = 0; child < 8; ++child) {
    Rng rng = parent.fork(child);
    for (int i = 0; i < 1000; ++i) seen.insert(rng.next_u64());
  }
  EXPECT_EQ(seen.size(), 9000u);
}

TEST(RngFork, DifferentParentsGiveDifferentChildren) {
  Rng a = Rng(1).fork(0);
  Rng b = Rng(2).fork(0);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformBelowIsInRangeAndCoversValues) {
  Rng rng(17);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i)
    ++seen[static_cast<std::size_t>(rng.uniform_below(10))];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 each
}

TEST(Rng, ExponentialMatchesMeanAndVariance) {
  Rng rng(321);
  const double mean = 2.4;
  std::vector<double> samples;
  samples.reserve(200000);
  for (int i = 0; i < 200000; ++i) samples.push_back(rng.exponential(mean));
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.mean, mean, 0.03);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev, mean, 0.05);
  EXPECT_GE(s.min, 0.0);
}

TEST(Rng, ExponentialZeroMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
}

TEST(Rng, GammaMatchesMeanAndShape) {
  Rng rng(555);
  const double shape = 4.0, mean = 10.0;
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.gamma(shape, mean));
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.mean, mean, 0.15);
  // Gamma: var = mean^2 / shape -> stddev = mean/sqrt(shape) = 5.
  EXPECT_NEAR(s.stddev, mean / std::sqrt(shape), 0.15);
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(556);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.gamma(0.5, 3.0));
  EXPECT_NEAR(mean(samples), 3.0, 0.15);
}

TEST(Rng, NormalIsStandard) {
  Rng rng(777);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.normal());
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.mean, 0.0, 0.02);
  EXPECT_NEAR(s.stddev, 1.0, 0.02);
}

TEST(Rng, ExponentialDurationRoundsToNs) {
  Rng rng(9);
  const Duration mean = microseconds(10.0);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    acc += static_cast<double>(rng.exponential_duration(mean).ns());
  EXPECT_NEAR(acc / n, 10000.0, 150.0);
}

TEST(Rng, RejectsInvalidArguments) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_below(0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform(3.0, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace iw
