// Tests for the strong time types.
#include <gtest/gtest.h>

#include "support/time.hpp"

namespace iw {
namespace {

TEST(Duration, FactoriesRoundToNanoseconds) {
  EXPECT_EQ(nanoseconds(7).ns(), 7);
  EXPECT_EQ(microseconds(1.0).ns(), 1000);
  EXPECT_EQ(milliseconds(3.0).ns(), 3'000'000);
  EXPECT_EQ(seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(microseconds(0.6401).ns(), 640);  // rounds to nearest ns
}

TEST(Duration, ArithmeticAndComparison) {
  const Duration a = milliseconds(3.0);
  const Duration b = microseconds(500.0);
  EXPECT_EQ((a + b).ns(), 3'500'000);
  EXPECT_EQ((a - b).ns(), 2'500'000);
  EXPECT_EQ((a * 2).ns(), 6'000'000);
  EXPECT_EQ((2 * a).ns(), 6'000'000);
  EXPECT_EQ((a / 3).ns(), 1'000'000);
  EXPECT_DOUBLE_EQ(a / b, 6.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, milliseconds(3.0));
}

TEST(Duration, UnitConversions) {
  const Duration d = microseconds(2.4);
  EXPECT_DOUBLE_EQ(d.us(), 2.4);
  EXPECT_DOUBLE_EQ(d.ms(), 0.0024);
  EXPECT_NEAR(d.sec(), 2.4e-6, 1e-15);
}

TEST(Duration, NegativeValuesRepresentLag) {
  const Duration lag = milliseconds(1.0) - milliseconds(2.5);
  EXPECT_EQ(lag.ns(), -1'500'000);
  EXPECT_LT(lag, Duration::zero());
}

TEST(SimTime, AbsoluteRelativeAlgebra) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + milliseconds(3.0);
  EXPECT_EQ((t1 - t0).ns(), 3'000'000);
  EXPECT_EQ((t1 - milliseconds(1.0)).ns(), 2'000'000);
  EXPECT_GT(t1, t0);

  SimTime t = t0;
  t += microseconds(1.0);
  EXPECT_EQ(t.ns(), 1000);
}

TEST(SimTime, MaxActsAsInfinity) {
  EXPECT_GT(SimTime::max(), SimTime::zero() + seconds(1e9));
}

}  // namespace
}  // namespace iw
