// Property-based sweeps: invariants that must hold across wide parameter
// grids, exercised with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <tuple>
#include <sstream>

#include "core/experiment.hpp"
#include "memory/bandwidth_domain.hpp"
#include "support/rng.hpp"
#include "workload/delay.hpp"

namespace iw::core {
namespace {

// ---------------------------------------------------------------------------
// Property 1: makespan >= ideal lower bound, and excess <= injected delay
// (cancellation can only help, never hurt) across mode/size/delay grids.
// ---------------------------------------------------------------------------

using MakespanParams =
    std::tuple<workload::Direction, workload::Boundary, std::int64_t, double>;

class MakespanBounds : public ::testing::TestWithParam<MakespanParams> {};

TEST_P(MakespanBounds, ExcessBoundedByInjectedDelay) {
  const auto [dir, bnd, msg, delay_ms] = GetParam();

  workload::RingSpec ring;
  ring.ranks = 16;
  ring.direction = dir;
  ring.boundary = bnd;
  ring.msg_bytes = msg;
  ring.steps = 18;
  ring.texec = milliseconds(2.0);
  ring.noisy = false;

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring);
  exp.delays = workload::single_delay(4, 0, milliseconds(delay_ms));
  const auto result = run_wave_experiment(exp);

  const Duration makespan = result.trace.makespan() - SimTime::zero();
  const Duration compute_floor = ring.texec * ring.steps;
  // Lower bound: nobody finishes before their own compute.
  EXPECT_GE(makespan, compute_floor);
  // Upper bound: the delay is paid at most once, plus communication slack.
  EXPECT_LE(makespan.ms(),
            compute_floor.ms() + delay_ms + 0.3 * ring.steps + 2.0);
}

std::string makespan_case_name(
    const ::testing::TestParamInfo<MakespanParams>& param_info) {
  const workload::Direction dir = std::get<0>(param_info.param);
  const workload::Boundary bnd = std::get<1>(param_info.param);
  const std::int64_t msg = std::get<2>(param_info.param);
  const double delay = std::get<3>(param_info.param);
  std::ostringstream n;
  n << (dir == workload::Direction::unidirectional ? "uni" : "bidi")
    << (bnd == workload::Boundary::open ? "Open" : "Per")
    << (msg > 131072 ? "Rdv" : "Eager") << "D" << static_cast<int>(delay);
  return n.str();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MakespanBounds,
    ::testing::Combine(
        ::testing::Values(workload::Direction::unidirectional,
                          workload::Direction::bidirectional),
        ::testing::Values(workload::Boundary::open,
                          workload::Boundary::periodic),
        ::testing::Values(std::int64_t{8192}, std::int64_t{174080}),
        ::testing::Values(4.0, 10.0)),
    makespan_case_name);

// ---------------------------------------------------------------------------
// Property 2: total injected delay is conserved in the trace — the injected
// segments' durations equal the requested delays exactly, on every rank
// pattern.
// ---------------------------------------------------------------------------

class DelayConservation : public ::testing::TestWithParam<int> {};

TEST_P(DelayConservation, InjectedSegmentsMatchPlan) {
  const int delayed_ranks = GetParam();
  workload::RingSpec ring;
  ring.ranks = 12;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.steps = 10;
  ring.texec = milliseconds(1.0);
  ring.noisy = false;

  std::vector<workload::DelaySpec> delays;
  for (int i = 0; i < delayed_ranks; ++i)
    delays.push_back({i * (12 / delayed_ranks), i % ring.steps,
                      milliseconds(1.0 + i)});

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring);
  exp.delays = delays;
  const auto result = run_wave_experiment(exp);

  Duration total_injected = Duration::zero();
  for (int r = 0; r < ring.ranks; ++r)
    total_injected += result.trace.total(r, mpi::SegKind::injected);
  Duration requested = Duration::zero();
  for (const auto& d : delays) requested += d.duration;
  EXPECT_EQ(total_injected, requested);
}

INSTANTIATE_TEST_SUITE_P(Counts, DelayConservation,
                         ::testing::Values(1, 2, 3, 4, 6));

// ---------------------------------------------------------------------------
// Property 3: bandwidth-domain work conservation across job-count sweeps —
// N equal jobs of B bytes on a domain of bandwidth W finish in exactly
// N*B/W when saturated, B/core_rate when not.
// ---------------------------------------------------------------------------

class DomainSharing : public ::testing::TestWithParam<int> {};

TEST_P(DomainSharing, EqualJobsFinishTogetherAtConservedTime) {
  const int jobs = GetParam();
  sim::Engine eng;
  const double W = 40e9, core = 5e9;
  memory::BandwidthDomain domain(eng, W, core);
  const std::int64_t bytes = 10'000'000;
  int finished = 0;
  for (int i = 0; i < jobs; ++i) domain.submit(bytes, [&] { ++finished; });
  eng.run();
  EXPECT_EQ(finished, jobs);

  const double per_job_rate = std::min(core, W / jobs);
  const double expect_s = static_cast<double>(bytes) / per_job_rate;
  EXPECT_NEAR(eng.now().sec(), expect_s, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(JobCounts, DomainSharing,
                         ::testing::Values(1, 2, 4, 8, 9, 10, 16, 20));

// ---------------------------------------------------------------------------
// Property 4: seed determinism across the mode grid — same seed, same
// makespan; and the RNG streams keep ranks decorrelated (different ranks
// see different noise).
// ---------------------------------------------------------------------------

using DeterminismParams = std::tuple<workload::Direction, std::int64_t>;

class SeedDeterminism : public ::testing::TestWithParam<DeterminismParams> {};

TEST_P(SeedDeterminism, MakespanReproducible) {
  const auto [dir, msg] = GetParam();
  auto build = [&, direction = dir, bytes = msg] {
    workload::RingSpec ring;
    ring.ranks = 10;
    ring.direction = direction;
    ring.msg_bytes = bytes;
    ring.steps = 8;
    ring.texec = milliseconds(1.0);
    WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = cluster_for_ring(ring);
    exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
    exp.cluster.seed = 2718;
    exp.delays = workload::single_delay(2, 0, milliseconds(3.0));
    return run_wave_experiment(exp);
  };
  const auto a = build();
  const auto b = build();
  EXPECT_EQ(a.trace.makespan(), b.trace.makespan());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SeedDeterminism,
    ::testing::Combine(::testing::Values(workload::Direction::unidirectional,
                                         workload::Direction::bidirectional),
                       ::testing::Values(std::int64_t{8192},
                                         std::int64_t{174080})));

// ---------------------------------------------------------------------------
// Property 5: noise-model means are honored across distributions and
// magnitudes (the E parameter of the paper must be trustworthy).
// ---------------------------------------------------------------------------

class NoiseMeanFidelity
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(NoiseMeanFidelity, SampledMeanTracksConfiguredMean) {
  const auto [kind, mean_us] = GetParam();
  noise::NoiseSpec spec;
  switch (kind) {
    case 0: spec = noise::NoiseSpec::exponential(microseconds(mean_us)); break;
    case 1: spec = noise::NoiseSpec::gamma(4.0, microseconds(mean_us)); break;
    default:
      spec = noise::NoiseSpec::uniform(Duration::zero(),
                                       microseconds(2.0 * mean_us));
  }
  const auto model = spec.build();
  Rng rng(static_cast<std::uint64_t>(kind) * 1000 +
          static_cast<std::uint64_t>(mean_us));
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += model->sample(rng).us();
  EXPECT_NEAR(acc / n / mean_us, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndMeans, NoiseMeanFidelity,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(10.0, 300.0, 600.0)));

// ---------------------------------------------------------------------------
// Property 6: wave speed scales linearly with distance d (eager mode), for
// several d on a fixed ring.
// ---------------------------------------------------------------------------

class DistanceScaling : public ::testing::TestWithParam<int> {};

TEST_P(DistanceScaling, SpeedProportionalToD) {
  const int d = GetParam();
  workload::RingSpec ring;
  ring.ranks = 30;
  ring.distance = d;
  ring.msg_bytes = 8192;
  ring.steps = 30;
  ring.texec = milliseconds(2.0);
  ring.noisy = false;

  WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = cluster_for_ring(ring);
  exp.delays = workload::single_delay(4, 0, milliseconds(10.0));
  const auto result = run_wave_experiment(exp);

  ASSERT_GT(result.up.speed_ranks_per_sec, 0.0);
  const double hops_per_cycle =
      result.up.speed_ranks_per_sec * result.measured_cycle.sec();
  EXPECT_NEAR(hops_per_cycle, static_cast<double>(d), 0.1 * d);
}

INSTANTIATE_TEST_SUITE_P(Distances, DistanceScaling,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace iw::core
