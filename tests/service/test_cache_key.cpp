// Property tests for the campaign service's canonical cache key.
//
// The key must be a pure function of what determines a point's record —
// expanded axis values, campaign scalars, the point seed, and the record
// schema version — and of nothing else. In particular it must not depend on
// how a submission *spelled* those values: axis declaration order in the
// protocol's "axes" object and numeric spelling ("12" vs "12.0" vs "1.2e1")
// are client-side accidents that land on the same expanded point.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "sweep/spec.hpp"
#include "verify/golden.hpp"

namespace iw::service {
namespace {

sweep::SweepSpec base_spec() {
  sweep::SweepSpec spec;
  spec.np = {4};
  spec.steps = 4;
  spec.texec = milliseconds(0.5);
  spec.system_noise = "none";
  return spec;
}

std::vector<std::string> keys_of(const sweep::SweepSpec& spec) {
  std::vector<std::string> keys;
  for (const sweep::SweepPoint& pt : sweep::expand(spec))
    keys.push_back(canonical_point_key(spec, pt));
  return keys;
}

TEST(CacheKey, DeterministicAndDistinctAcrossPoints) {
  const sweep::SweepSpec spec = [] {
    sweep::SweepSpec s = base_spec();
    s.delay_ms = {6.0, 12.0};
    s.msg_bytes = {4096, 65536};
    return s;
  }();
  const std::vector<std::string> a = keys_of(spec);
  const std::vector<std::string> b = keys_of(spec);
  EXPECT_EQ(a, b);
  const std::set<std::string> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size()) << "points within a campaign collide";
}

TEST(CacheKey, InvariantUnderAxisDeclarationOrder) {
  // Two protocol submissions of the same campaign, axes declared in
  // opposite orders. The expanded points must address the same entries.
  const std::string fwd =
      R"({"steps":4,"texec_ns":500000,"system_noise":"none",)"
      R"("axes":{"delay_ms":[6,12],"msg_bytes":[4096],"np":[4]}})";
  const std::string rev =
      R"({"steps":4,"texec_ns":500000,"system_noise":"none",)"
      R"("axes":{"np":[4],"msg_bytes":[4096],"delay_ms":[6,12]}})";
  const sweep::SweepSpec a = spec_from_json(json::parse(fwd));
  const sweep::SweepSpec b = spec_from_json(json::parse(rev));
  EXPECT_EQ(keys_of(a), keys_of(b));
}

TEST(CacheKey, InvariantUnderNumericSpelling) {
  // "12", "12.0" and "1.2e1" parse to the same double, hence the same key.
  const char* spellings[] = {
      R"({"axes":{"delay_ms":[12],"np":[4]},"steps":4,"system_noise":"none"})",
      R"({"axes":{"delay_ms":[12.0],"np":[4]},"steps":4,"system_noise":"none"})",
      R"({"axes":{"delay_ms":[1.2e1],"np":[4]},"steps":4,"system_noise":"none"})",
  };
  const std::vector<std::string> first =
      keys_of(spec_from_json(json::parse(spellings[0])));
  for (const char* text : spellings)
    EXPECT_EQ(keys_of(spec_from_json(json::parse(text))), first) << text;
}

TEST(CacheKey, DistinctAcrossSeedSchemaAndPoint) {
  const sweep::SweepSpec spec = base_spec();
  const auto pts = sweep::expand(spec);
  ASSERT_EQ(pts.size(), 1u);
  const std::string key = canonical_point_key(spec, pts[0]);

  // Seed: a different campaign seed changes every point's fork.
  sweep::SweepSpec reseeded = spec;
  reseeded.campaign_seed += 1;
  EXPECT_NE(canonical_point_key(reseeded, sweep::expand(reseeded)[0]), key);

  // Schema version: a bump invalidates all cached records.
  EXPECT_NE(canonical_point_key(spec, pts[0],
                                verify::kGoldenSchemaVersion + 1),
            key);
  EXPECT_EQ(canonical_point_key(spec, pts[0], verify::kGoldenSchemaVersion),
            key);

  // Point: any axis perturbation moves the address.
  sweep::SweepSpec moved = spec;
  moved.delay_ms = {spec.delay_ms[0] + 1.0};
  EXPECT_NE(canonical_point_key(moved, sweep::expand(moved)[0]), key);
}

TEST(CacheKey, AddressIsStableHex) {
  const std::string addr = key_address("iw-point;schema=4;workload=ring");
  EXPECT_EQ(addr.size(), 16u);
  EXPECT_EQ(addr, key_address("iw-point;schema=4;workload=ring"));
  EXPECT_NE(addr, key_address("iw-point;schema=5;workload=ring"));
}

// ---------------------------------------------------------------------------
// Randomized cases: 200 seeded campaigns. For each, the key must (a) be
// reproducible, (b) survive a protocol round-trip (spec -> JSON -> spec),
// (c) separate points within the campaign, and (d) move when the campaign
// seed moves.
// ---------------------------------------------------------------------------

sweep::SweepSpec random_spec(Rng& rng) {
  sweep::SweepSpec spec;
  spec.workload = sweep::Workload::ring;
  spec.steps = 2 + static_cast<int>(rng.uniform_below(6));
  spec.texec = microseconds(100.0 + rng.uniform(0.0, 400.0));
  spec.distance = 1 + static_cast<int>(rng.uniform_below(2));
  spec.injection_at = rng.uniform(0.1, 0.9);
  spec.min_idle = microseconds(rng.uniform(10.0, 200.0));
  spec.system_noise = "none";
  spec.campaign_seed = rng.next_u64();
  spec.np = {2 + static_cast<int>(rng.uniform_below(6))};
  spec.delay_ms.clear();
  const std::size_t delays = 1 + rng.uniform_below(3);
  for (std::size_t i = 0; i < delays; ++i)
    spec.delay_ms.push_back(rng.uniform(0.5, 24.0));
  spec.msg_bytes.clear();
  const std::size_t sizes = 1 + rng.uniform_below(2);
  for (std::size_t i = 0; i < sizes; ++i)
    spec.msg_bytes.push_back(
        static_cast<std::int64_t>(64 + rng.uniform_below(1 << 16)));
  if (rng.uniform() < 0.5) spec.noise_E_percent = {rng.uniform(0.0, 30.0)};
  if (rng.uniform() < 0.3)
    spec.nic_depth = {static_cast<int>(rng.uniform_below(4))};
  if (rng.uniform() < 0.3)
    spec.eager_credits = {static_cast<int>(rng.uniform_below(8))};
  return spec;
}

TEST(CacheKey, RandomizedCampaigns) {
  constexpr int kCases = 200;
  std::set<std::string> all_keys;
  for (int c = 0; c < kCases; ++c) {
    Rng rng(0x1D7ECA5Eull + static_cast<std::uint64_t>(c));
    const sweep::SweepSpec spec = random_spec(rng);
    const std::vector<std::string> keys = keys_of(spec);

    // (a) reproducible
    ASSERT_EQ(keys_of(spec), keys) << "case " << c;

    // (b) protocol round-trip preserves every key bit-for-bit (doubles
    // travel as 17-digit decimals, the seed as a quoted u64)
    const sweep::SweepSpec rt =
        spec_from_json(json::parse(spec_to_json(spec)));
    ASSERT_EQ(keys_of(rt), keys) << "case " << c;

    // (c) no collisions inside the campaign
    const std::set<std::string> unique(keys.begin(), keys.end());
    ASSERT_EQ(unique.size(), keys.size()) << "case " << c;

    // (d) moving the campaign seed moves every key
    sweep::SweepSpec reseeded = spec;
    reseeded.campaign_seed ^= 0x9E3779B97F4A7C15ull;
    const std::vector<std::string> moved = keys_of(reseeded);
    for (std::size_t i = 0; i < keys.size(); ++i)
      ASSERT_NE(moved[i], keys[i]) << "case " << c << " point " << i;

    all_keys.insert(keys.begin(), keys.end());
  }
  // Cross-campaign: random campaigns essentially never collide.
  EXPECT_GT(all_keys.size(), static_cast<std::size_t>(kCases));
}

}  // namespace
}  // namespace iw::service
