// Wire-protocol tests: request parsing, spec round-trips, and the
// record/control line dichotomy the streaming clients rely on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "service/protocol.hpp"
#include "support/json.hpp"
#include "sweep/record.hpp"
#include "sweep/spec.hpp"

namespace iw::service {
namespace {

sweep::SweepSpec sample_spec() {
  sweep::SweepSpec spec;
  spec.delay_ms = {6.25, 12.0};
  spec.msg_bytes = {4096, 1 << 20};
  spec.np = {8};
  spec.noise_E_percent = {2.5};
  spec.direction = {workload::Direction::bidirectional};
  spec.boundary = {workload::Boundary::periodic};
  spec.rdv_flavor = {mpi::RendezvousFlavor::rdma_put};
  spec.workload = sweep::Workload::ring;
  spec.steps = 7;
  spec.texec = microseconds(123.0);
  spec.injection_at = 1.0 / 3.0;  // not representable in decimal
  spec.system_noise = "none";
  spec.campaign_seed = 0xFFFFFFFFFFFFFFF5ull;  // above double's 2^53 range
  return spec;
}

TEST(Protocol, SpecRoundTripIsExact) {
  const sweep::SweepSpec spec = sample_spec();
  const sweep::SweepSpec rt = spec_from_json(json::parse(spec_to_json(spec)));
  EXPECT_EQ(rt.workload, spec.workload);
  EXPECT_EQ(rt.steps, spec.steps);
  EXPECT_EQ(rt.texec.ns(), spec.texec.ns());
  EXPECT_EQ(rt.distance, spec.distance);
  EXPECT_EQ(rt.injection_step, spec.injection_step);
  EXPECT_EQ(rt.injection_at, spec.injection_at);  // bit-exact via %.17g
  EXPECT_EQ(rt.min_idle.ns(), spec.min_idle.ns());
  EXPECT_EQ(rt.system_noise, spec.system_noise);
  EXPECT_EQ(rt.ffwd, spec.ffwd);
  EXPECT_EQ(rt.campaign_seed, spec.campaign_seed);  // quoted u64, no rounding
  EXPECT_EQ(rt.delay_ms, spec.delay_ms);
  EXPECT_EQ(rt.msg_bytes, spec.msg_bytes);
  EXPECT_EQ(rt.np, spec.np);
  EXPECT_EQ(rt.noise_E_percent, spec.noise_E_percent);
  EXPECT_EQ(rt.direction, spec.direction);
  EXPECT_EQ(rt.boundary, spec.boundary);
  EXPECT_EQ(rt.rdv_flavor, spec.rdv_flavor);
}

TEST(Protocol, SubmitLineParsesBack) {
  const Request req = parse_request(submit_line("alice", 3, sample_spec()));
  EXPECT_EQ(req.type, RequestType::submit);
  EXPECT_EQ(req.client, "alice");
  EXPECT_EQ(req.priority, 3);
  EXPECT_EQ(req.spec.campaign_seed, sample_spec().campaign_seed);
}

TEST(Protocol, ControlVerbsParseBack) {
  EXPECT_EQ(parse_request(status_line()).type, RequestType::status);
  EXPECT_EQ(parse_request(shutdown_line()).type, RequestType::shutdown);
  const Request cancel = parse_request(cancel_line(42));
  EXPECT_EQ(cancel.type, RequestType::cancel);
  EXPECT_EQ(cancel.job, 42u);
  const Request results = parse_request(results_line(7));
  EXPECT_EQ(results.type, RequestType::results);
  EXPECT_EQ(results.job, 7u);
}

TEST(Protocol, MalformedRequestsThrowStructuredErrors) {
  EXPECT_THROW(parse_request("not json"), std::runtime_error);
  EXPECT_THROW(parse_request("{}"), std::runtime_error);
  EXPECT_THROW(parse_request(R"({"type":"frobnicate"})"), std::runtime_error);
  EXPECT_THROW(parse_request(R"({"type":"submit","spec":{}})"),
               std::runtime_error);  // missing client
  EXPECT_THROW(parse_request(R"({"type":"cancel","job":-1})"),
               std::runtime_error);
  EXPECT_THROW(parse_request(R"({"type":"cancel","job":1.5})"),
               std::runtime_error);
  EXPECT_THROW(
      parse_request(
          R"({"type":"submit","client":"a","spec":{"mystery":1}})"),
      std::runtime_error);  // unknown spec key
  EXPECT_THROW(
      parse_request(
          R"({"type":"submit","client":"a","spec":{"axes":{"bogus":[1]}}})"),
      std::runtime_error);  // unknown axis
  EXPECT_THROW(
      parse_request(
          R"({"type":"submit","client":"a","spec":{"axes":{"np":[]}}})"),
      std::runtime_error);  // empty axis
}

TEST(Protocol, MissingSpecKeysKeepDefaults) {
  const Request req = parse_request(
      R"({"type":"submit","client":"a","spec":{"steps":3}})");
  const sweep::SweepSpec defaults;
  EXPECT_EQ(req.spec.steps, 3);
  EXPECT_EQ(req.spec.texec.ns(), defaults.texec.ns());
  EXPECT_EQ(req.spec.campaign_seed, defaults.campaign_seed);
  EXPECT_EQ(req.spec.delay_ms, defaults.delay_ms);
}

TEST(Protocol, RecordAndControlLinesAreDisjoint) {
  sweep::SweepRecord rec;
  rec.index = 3;
  EXPECT_TRUE(is_record_line(sweep::record_json_line(rec)));
  EXPECT_FALSE(is_record_line(error_response("x", "y")));
  EXPECT_FALSE(is_record_line(accepted_response(1, 2, 3)));
  EXPECT_FALSE(is_record_line(done_response(1, 2, 3, 4)));
  EXPECT_FALSE(is_record_line(cancelled_response(1, 2)));
  EXPECT_FALSE(is_record_line(results_response(1, 2)));
  EXPECT_FALSE(is_record_line(cancel_ack_response(1, true)));
  EXPECT_FALSE(is_record_line(bye_response()));
  EXPECT_FALSE(is_record_line(status_line()));
}

TEST(Protocol, ResponsesCarryTheirFields) {
  const json::Value err = json::parse(error_response("admission-points", "m"));
  EXPECT_EQ(err.find("type")->text, "error");
  EXPECT_EQ(err.find("code")->text, "admission-points");
  EXPECT_EQ(err.find("message")->text, "m");
  const json::Value acc = json::parse(accepted_response(9, 12, 5));
  EXPECT_EQ(acc.find("job")->number, 9.0);
  EXPECT_EQ(acc.find("points")->number, 12.0);
  EXPECT_EQ(acc.find("cached")->number, 5.0);
  const json::Value done = json::parse(done_response(9, 12, 5, 7));
  EXPECT_EQ(done.find("records")->number, 12.0);
  EXPECT_EQ(done.find("cache_hits")->number, 5.0);
  EXPECT_EQ(done.find("computed")->number, 7.0);
}

}  // namespace
}  // namespace iw::service
