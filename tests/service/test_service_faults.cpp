// Fault-injection tests for the campaign service: admission rejections,
// bad specs, cancellation at an exact point boundary, and client
// disconnects (abandon) before and during a running batch. All
// deterministic — the cancellation tests use the service's on_batch_point
// hook, which fires at completed-point boundaries, not timers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "support/json.hpp"
#include "sweep/spec.hpp"

namespace iw::service {
namespace {

sweep::SweepSpec quick_spec(std::vector<double> delays) {
  sweep::SweepSpec spec;
  spec.delay_ms = std::move(delays);
  spec.msg_bytes = {4096};
  spec.np = {6};
  spec.steps = 6;
  spec.texec = milliseconds(1.0);
  spec.system_noise = "none";
  return spec;
}

void pump_dry(CampaignService& service) {
  for (int i = 0; i < 64; ++i)
    if (!service.pump()) return;
  FAIL() << "service did not drain within 64 batches";
}

std::size_t record_count(const std::vector<std::string>& lines) {
  std::size_t n = 0;
  for (const std::string& line : lines)
    if (is_record_line(line)) n += 1;
  return n;
}

/// The drained stream's terminal control line (last line).
json::Value terminal(const std::vector<std::string>& lines) {
  EXPECT_FALSE(lines.empty());
  EXPECT_FALSE(is_record_line(lines.back()));
  return json::parse(lines.back());
}

TEST(ServiceFaults, OverLimitSubmitIsStructuredRejection) {
  obs::MetricsRegistry metrics;
  ServiceOptions options;
  options.limits.max_points_per_client = 3;
  options.metrics = &metrics;
  CampaignService service(options);

  const SubmitResult r =
      service.submit("a", 0, quick_spec({3.0, 6.0, 9.0, 12.0}));
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.error_code, "admission-points");
  EXPECT_FALSE(r.message.empty());
  EXPECT_EQ(r.job, 0u) << "rejected submissions allocate no job id";
  EXPECT_EQ(metrics.counter(obs::MetricId::service_jobs_rejected), 1u);

  // The rejection is per-client and leaves the service fully usable.
  const SubmitResult ok = service.submit("a", 0, quick_spec({3.0, 6.0}));
  ASSERT_TRUE(ok.accepted);
  pump_dry(service);
  EXPECT_TRUE(service.finished(ok.job));
}

TEST(ServiceFaults, JobQuotaCountsOnlyOpenJobs) {
  ServiceOptions options;
  options.limits.max_jobs_per_client = 1;
  CampaignService service(options);

  const SubmitResult first = service.submit("a", 0, quick_spec({6.0}));
  ASSERT_TRUE(first.accepted);
  const SubmitResult second = service.submit("a", 0, quick_spec({12.0}));
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.error_code, "admission-jobs");
  // Another client is unaffected by a's quota.
  EXPECT_TRUE(service.submit("b", 0, quick_spec({12.0})).accepted);

  pump_dry(service);
  EXPECT_TRUE(service.finished(first.job));
  // a's job closed: the quota slot is free again.
  EXPECT_TRUE(service.submit("a", 0, quick_spec({18.0})).accepted);
}

TEST(ServiceFaults, BadSpecIsRejectedNotHung) {
  CampaignService service;
  sweep::SweepSpec bad = quick_spec({6.0});
  bad.system_noise = "no-such-machine";
  const SubmitResult r = service.submit("a", 0, bad);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.error_code, "bad-spec");
  EXPECT_FALSE(r.message.empty());
  EXPECT_FALSE(service.pump()) << "a rejected spec must queue nothing";
}

// ---------------------------------------------------------------------------
// Cancellation at a point boundary. The hook fires (outside the service
// lock) after each completed point of the running batch; cancelling there
// stops the batch before its next point starts. Every record completed
// before the stop must still reach the stream, and must be in the cache.
// ---------------------------------------------------------------------------

struct HookCtx {
  CampaignService* service = nullptr;
  std::atomic<std::uint64_t> job{0};
  std::atomic<bool> fired{false};
  std::atomic<bool> abandon{false};  // false: cancel(); true: abandon()
};

void cancel_after_first_point(void* opaque, std::uint64_t job,
                              std::size_t done_in_batch) {
  auto* ctx = static_cast<HookCtx*>(opaque);
  if (job != ctx->job.load() || done_in_batch < 1) return;
  if (ctx->fired.exchange(true)) return;
  if (ctx->abandon.load())
    ctx->service->abandon(job);
  else
    ctx->service->cancel(job);
}

TEST(ServiceFaults, CancelDuringRunningPointLosesNoCompletedRecords) {
  HookCtx ctx;
  ServiceOptions options;
  options.threads = 1;  // sequential points: the cancel lands mid-batch
  options.batch_points = 8;
  options.on_batch_point = &cancel_after_first_point;
  options.on_batch_ctx = &ctx;
  CampaignService service(options);
  ctx.service = &service;

  const sweep::SweepSpec spec = quick_spec({3.0, 6.0, 9.0, 12.0});
  const SubmitResult r = service.submit("a", 0, spec);
  ASSERT_TRUE(r.accepted);
  ctx.job.store(r.job);
  pump_dry(service);
  ASSERT_TRUE(ctx.fired.load());
  ASSERT_TRUE(service.finished(r.job));

  std::vector<std::string> lines;
  ASSERT_TRUE(service.drain(r.job, lines));
  const std::size_t completed = record_count(lines);
  EXPECT_GE(completed, 1u) << "the point that finished must be delivered";
  EXPECT_LT(completed, 4u) << "the cancel must have stopped the batch";
  const json::Value term = terminal(lines);
  EXPECT_EQ(term.find("type")->text, "cancelled");
  EXPECT_EQ(term.find("records")->number, static_cast<double>(completed));

  // Cancelling again is a no-op on a finished job.
  EXPECT_FALSE(service.cancel(r.job));

  // Every completed record went into the cache: a resubmission of the same
  // campaign reports exactly that many hits, then computes only the rest.
  ctx.job.store(0);  // disarm the hook
  const SubmitResult again = service.submit("a", 0, spec);
  ASSERT_TRUE(again.accepted);
  EXPECT_EQ(again.cached, completed);
  pump_dry(service);
  ASSERT_TRUE(service.finished(again.job));
  std::vector<std::string> full;
  ASSERT_TRUE(service.drain(again.job, full));
  EXPECT_EQ(record_count(full), 4u);
  EXPECT_EQ(terminal(full).find("type")->text, "done");
}

TEST(ServiceFaults, DisconnectBeforeRunReclaimsJobAndQuota) {
  obs::MetricsRegistry metrics;
  ServiceOptions options;
  options.limits.max_points_per_client = 4;
  options.metrics = &metrics;
  CampaignService service(options);

  const SubmitResult r =
      service.submit("a", 0, quick_spec({3.0, 6.0, 9.0, 12.0}));
  ASSERT_TRUE(r.accepted);
  // Quota is fully committed: a second submission would not fit...
  EXPECT_FALSE(service.submit("a", 0, quick_spec({18.0})).accepted);

  // ...until the client disconnects. Abandon reclaims queue slots and
  // quota immediately; nothing was computed, so nothing reaches the cache.
  service.abandon(r.job);
  EXPECT_FALSE(service.pump()) << "abandoned work must leave the queue";
  EXPECT_EQ(metrics.gauge(obs::MetricId::service_queue_depth), 0.0);

  const SubmitResult again =
      service.submit("a", 0, quick_spec({3.0, 6.0, 9.0, 12.0}));
  ASSERT_TRUE(again.accepted) << again.message;
  EXPECT_EQ(again.cached, 0u);
  pump_dry(service);
  EXPECT_TRUE(service.finished(again.job));
}

TEST(ServiceFaults, DisconnectMidStreamKeepsCompletedPhysicsInCache) {
  HookCtx ctx;
  ctx.abandon.store(true);
  ServiceOptions options;
  options.threads = 1;
  options.batch_points = 8;
  options.on_batch_point = &cancel_after_first_point;
  options.on_batch_ctx = &ctx;
  CampaignService service(options);
  ctx.service = &service;

  const sweep::SweepSpec spec = quick_spec({3.0, 6.0, 9.0, 12.0});
  const SubmitResult r = service.submit("a", 0, spec);
  ASSERT_TRUE(r.accepted);
  ctx.job.store(r.job);
  pump_dry(service);
  ASSERT_TRUE(ctx.fired.load());

  // The abandoned job terminates without buffering output for a client
  // that will never read it.
  ASSERT_TRUE(service.finished(r.job));
  std::vector<std::string> lines;
  ASSERT_TRUE(service.drain(r.job, lines));
  EXPECT_TRUE(lines.empty());

  // But the physics completed before the disconnect is not thrown away:
  // the next submission of the same campaign cache-hits those points.
  ctx.job.store(0);
  const SubmitResult again = service.submit("b", 0, spec);
  ASSERT_TRUE(again.accepted);
  EXPECT_GE(again.cached, 1u);
  EXPECT_LT(again.cached, 4u);
  pump_dry(service);
  std::vector<std::string> full;
  ASSERT_TRUE(service.drain(again.job, full));
  EXPECT_EQ(record_count(full), 4u);
}

TEST(ServiceFaults, CancelUnknownJobIsFalse) {
  CampaignService service;
  EXPECT_FALSE(service.cancel(42));
  std::vector<std::string> lines;
  EXPECT_FALSE(service.drain(42, lines));
  EXPECT_FALSE(service.results_so_far(42, lines));
  // Unknown reads as terminal: the server keys "stop streaming this job"
  // off finished(), and a bogus id must never leave a stream open forever.
  EXPECT_TRUE(service.finished(42));
}

}  // namespace
}  // namespace iw::service
