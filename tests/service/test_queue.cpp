// JobQueue unit tests: admission quotas, fair-share scheduling, and the
// starvation bound — all deterministic, counted in scheduling decisions
// rather than seconds (the queue is pure bookkeeping; no physics runs here).
#include <gtest/gtest.h>

#include <cstdint>

#include "service/queue.hpp"

namespace iw::service {
namespace {

TEST(JobQueue, AdmissionPointQuotaIsStructuredRejection) {
  QueueLimits limits;
  limits.max_points_per_client = 10;
  JobQueue q(limits);

  EXPECT_TRUE(q.check("a", 10).accepted);
  const Admission over = q.check("a", 11);
  EXPECT_FALSE(over.accepted);
  EXPECT_EQ(over.error_code, "admission-points");
  EXPECT_FALSE(over.message.empty());

  // Load already queued counts against the quota.
  q.open("a", 1, 0, 6, 0);
  EXPECT_TRUE(q.check("a", 4).accepted);
  const Admission full = q.check("a", 5);
  EXPECT_FALSE(full.accepted);
  EXPECT_EQ(full.error_code, "admission-points");
  // ...but only for that client.
  EXPECT_TRUE(q.check("b", 10).accepted);
}

TEST(JobQueue, AdmissionJobQuota) {
  QueueLimits limits;
  limits.max_jobs_per_client = 2;
  JobQueue q(limits);
  q.open("a", 1, 0, 1, 0);
  q.open("a", 2, 0, 1, 0);
  const Admission adm = q.check("a", 1);
  EXPECT_FALSE(adm.accepted);
  EXPECT_EQ(adm.error_code, "admission-jobs");
}

TEST(JobQueue, PriorityThenFifoWithinClient) {
  JobQueue q;
  q.open("a", 1, 0, 4, 0);  // submitted first, low priority
  q.open("a", 2, 5, 4, 0);  // higher priority wins
  q.open("a", 3, 5, 4, 0);  // same priority: admission order

  Claim c;
  ASSERT_TRUE(q.decide(4, c));
  EXPECT_EQ(c.job, 2u);
  ASSERT_TRUE(q.decide(4, c));
  EXPECT_EQ(c.job, 3u);
  ASSERT_TRUE(q.decide(4, c));
  EXPECT_EQ(c.job, 1u);
}

TEST(JobQueue, ClaimsAreContiguousAndBounded) {
  JobQueue q;
  q.open("a", 1, 0, 10, 0);
  Claim c;
  ASSERT_TRUE(q.decide(4, c));
  EXPECT_EQ(c.first, 0u);
  EXPECT_EQ(c.count, 4u);
  ASSERT_TRUE(q.decide(4, c));
  EXPECT_EQ(c.first, 4u);
  EXPECT_EQ(c.count, 4u);
  ASSERT_TRUE(q.decide(4, c));
  EXPECT_EQ(c.first, 8u);
  EXPECT_EQ(c.count, 2u);  // clamped to what is left
  EXPECT_FALSE(q.decide(4, c));
  EXPECT_EQ(q.queue_depth(), 0u);
  EXPECT_EQ(q.client_load("a"), 10u);  // claimed, not yet completed

  q.complete_claimed(1, 10);
  EXPECT_EQ(q.client_load("a"), 0u);
  q.close(1);
  EXPECT_EQ(q.clients_active(), 0u);
}

TEST(JobQueue, CancelReclaimsUnclaimedAndReserved) {
  JobQueue q;
  q.open("a", 1, 0, 8, 3);
  Claim c;
  ASSERT_TRUE(q.decide(4, c));
  EXPECT_EQ(q.queue_depth(), 4u);
  EXPECT_EQ(q.client_load("a"), 11u);

  // Cancel reclaims the 4 unclaimed pending + 3 reserved slots instantly;
  // the 4 claimed ones drain when the running batch returns.
  EXPECT_EQ(q.cancel(1), 7u);
  EXPECT_EQ(q.queue_depth(), 0u);
  EXPECT_EQ(q.client_load("a"), 4u);
  EXPECT_EQ(q.claimed(1), 4u);
  q.complete_claimed(1, 4);
  EXPECT_EQ(q.client_load("a"), 0u);
  q.close(1);
}

TEST(JobQueue, ReservedPromotionReentersQueue) {
  JobQueue q;
  q.open("a", 1, 0, 0, 2);
  EXPECT_EQ(q.queue_depth(), 0u);
  q.promote_reserved(1, 1);
  EXPECT_EQ(q.queue_depth(), 1u);
  q.complete_reserved(1, 1);
  Claim c;
  ASSERT_TRUE(q.decide(8, c));
  EXPECT_EQ(c.count, 1u);
  q.complete_claimed(1, 1);
  q.close(1);
}

// ---------------------------------------------------------------------------
// The starvation bound. A greedy client queues 10k points; a small client
// arrives late with far fewer. Fair share serves the minimum-charged client
// every decision, so from the moment the small client arrives it wins every
// decision until its lifetime charge catches up with the greedy client's —
// which takes longer than its whole campaign. The bound is provable in
// decision counts and independent of wall-clock.
// ---------------------------------------------------------------------------

TEST(JobQueue, LateSmallClientIsNotStarvedByGreedyBacklog) {
  constexpr std::size_t kGreedy = 10000;
  constexpr std::size_t kSmall = 100;
  constexpr std::size_t kBatch = 10;

  JobQueue q;
  q.open("greedy", 1, 0, kGreedy, 0);

  // The greedy client gets a head start.
  Claim c;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(q.decide(kBatch, c));
    EXPECT_EQ(c.job, 1u);
    q.complete_claimed(1, c.count);
  }
  const std::uint64_t arrival = q.decisions();

  q.open("small", 2, 0, kSmall, 0);
  std::size_t small_done = 0;
  std::uint64_t small_finish = 0;
  while (small_done < kSmall) {
    ASSERT_TRUE(q.decide(kBatch, c));
    q.complete_claimed(c.job, c.count);
    if (c.job == 2) {
      small_done += c.count;
      if (small_done == kSmall) small_finish = q.decisions();
    }
    // Termination guard: the bound below is the real assertion.
    ASSERT_LT(q.decisions(), arrival + 1000u);
  }

  // Declared bound: the small campaign completes within
  // ceil(points / batch) decisions of its arrival — the greedy client's
  // 500-point head-start charge means the small client wins every decision.
  EXPECT_LE(small_finish - arrival, (kSmall + kBatch - 1) / kBatch);

  // And the greedy client still finishes: nothing leaked.
  while (q.queue_depth() > 0) {
    ASSERT_TRUE(q.decide(kBatch, c));
    q.complete_claimed(c.job, c.count);
  }
  q.close(1);
  q.close(2);
  EXPECT_EQ(q.clients_active(), 0u);
}

TEST(JobQueue, FairShareAlternatesEquallyChargedClients) {
  JobQueue q;
  q.open("a", 1, 0, 40, 0);
  q.open("b", 2, 0, 40, 0);
  Claim c;
  std::size_t a_runs = 0;
  std::size_t b_runs = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.decide(10, c));
    q.complete_claimed(c.job, c.count);
    (c.job == 1 ? a_runs : b_runs) += 1;
  }
  EXPECT_EQ(a_runs, 4u);
  EXPECT_EQ(b_runs, 4u);
}

}  // namespace
}  // namespace iw::service
