// Socket-level tests for idlewaved's front-end: a real Server on a real
// AF_UNIX socket, driven by raw protocol lines. Covers the full
// submit/stream/status/cancel/shutdown surface plus the disconnect fault:
// a client that vanishes mid-stream has its jobs abandoned and its queue
// share reclaimed, while completed physics stays in the shared cache.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/framing.hpp"
#include "support/json.hpp"
#include "sweep/spec.hpp"

namespace iw::service {
namespace {

sweep::SweepSpec quick_spec(std::vector<double> delays) {
  sweep::SweepSpec spec;
  spec.delay_ms = std::move(delays);
  spec.msg_bytes = {4096};
  spec.np = {6};
  spec.steps = 6;
  spec.texec = milliseconds(1.0);
  spec.system_noise = "none";
  return spec;
}

/// Client-side line reader with a receive timeout, so a daemon bug fails
/// the test instead of hanging it.
class TimedReader {
 public:
  explicit TimedReader(int fd) : fd_(fd) {
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  bool next(std::string& line) {
    while (!buf_.next_line(line)) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buf_.feed(chunk, static_cast<std::size_t>(n));
    }
    return true;
  }

 private:
  int fd_;
  LineBuffer buf_;
};

/// Polls `pred` until it holds or ~5 s elapse.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.socket_path = ::testing::TempDir() + "iw_test_" +
                          std::to_string(::getpid()) + ".sock";
    options.service.threads = 2;
    options.service.batch_points = 2;
    server_ = std::make_unique<Server>(std::move(options));
    server_->start();
  }

  void TearDown() override {
    server_->stop();
    server_->wait();
  }

  [[nodiscard]] ScopedFd connect() const {
    return unix_connect(server_->socket_path());
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerFixture, SubmitStreamsRecordsThenDone) {
  ScopedFd fd = connect();
  ASSERT_TRUE(
      send_line(fd.get(), submit_line("alice", 0, quick_spec({6.0, 12.0}))));

  TimedReader reader(fd.get());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  const json::Value accepted = json::parse(line);
  ASSERT_EQ(accepted.find("type")->text, "accepted");
  EXPECT_EQ(accepted.find("points")->number, 2.0);

  std::size_t records = 0;
  while (reader.next(line)) {
    if (is_record_line(line)) {
      records += 1;
      continue;
    }
    const json::Value done = json::parse(line);
    EXPECT_EQ(done.find("type")->text, "done");
    EXPECT_EQ(done.find("records")->number, 2.0);
    break;
  }
  EXPECT_EQ(records, 2u);
}

TEST_F(ServerFixture, StatusAndMalformedLinesAnswerInline) {
  ScopedFd fd = connect();
  TimedReader reader(fd.get());
  std::string line;

  ASSERT_TRUE(send_line(fd.get(), status_line()));
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(json::parse(line).find("type")->text, "status");

  // A malformed request gets a structured error, not a dropped connection.
  ASSERT_TRUE(send_line(fd.get(), "this is not json"));
  ASSERT_TRUE(reader.next(line));
  const json::Value err = json::parse(line);
  EXPECT_EQ(err.find("type")->text, "error");
  EXPECT_EQ(err.find("code")->text, "bad-request");

  // The connection survives: status still answers.
  ASSERT_TRUE(send_line(fd.get(), status_line()));
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(json::parse(line).find("type")->text, "status");
}

TEST_F(ServerFixture, DisconnectMidStreamReclaimsJobAndSlot) {
  std::uint64_t job = 0;
  {
    ScopedFd fd = connect();
    ASSERT_TRUE(send_line(
        fd.get(),
        submit_line("ghost", 0, quick_spec({3.0, 6.0, 9.0, 12.0, 15.0}))));
    TimedReader reader(fd.get());
    std::string line;
    ASSERT_TRUE(reader.next(line));
    const json::Value accepted = json::parse(line);
    ASSERT_EQ(accepted.find("type")->text, "accepted");
    job = static_cast<std::uint64_t>(accepted.find("job")->number);
    // fd closes here: the client vanishes while the campaign runs.
  }

  // The daemon notices the hangup, abandons the job, and drains the queue.
  ASSERT_TRUE(eventually([&] { return server_->service().finished(job); }));
  const json::Value status = json::parse(server_->service().status_json());
  EXPECT_EQ(status.find("queue_depth")->number, 0.0);
  EXPECT_EQ(status.find("jobs_open")->number, 0.0);

  // A fresh client can immediately run the same campaign; whatever the
  // abandoned run completed is served from the cache.
  ScopedFd fd = connect();
  ASSERT_TRUE(send_line(
      fd.get(),
      submit_line("ghost", 0, quick_spec({3.0, 6.0, 9.0, 12.0, 15.0}))));
  TimedReader reader(fd.get());
  std::string line;
  std::size_t records = 0;
  bool done = false;
  while (reader.next(line)) {
    if (is_record_line(line)) {
      records += 1;
      continue;
    }
    const json::Value msg = json::parse(line);
    if (msg.find("type")->text == "accepted") continue;
    EXPECT_EQ(msg.find("type")->text, "done");
    done = true;
    break;
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(records, 5u);
}

TEST_F(ServerFixture, CancelFromAnotherConnection) {
  ScopedFd submitter = connect();
  // A slow campaign: enough points that the cancel races nothing.
  ASSERT_TRUE(send_line(
      submitter.get(),
      submit_line("slow", 0,
                  quick_spec({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}))));
  TimedReader reader(submitter.get());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  const json::Value accepted = json::parse(line);
  ASSERT_EQ(accepted.find("type")->text, "accepted");
  const auto job = static_cast<std::uint64_t>(accepted.find("job")->number);

  ScopedFd controller = connect();
  ASSERT_TRUE(send_line(controller.get(), cancel_line(job)));
  TimedReader creader(controller.get());
  ASSERT_TRUE(creader.next(line));
  const json::Value ack = json::parse(line);
  EXPECT_EQ(ack.find("type")->text, "cancel-ack");

  // The submitter's stream ends with a terminal line — "cancelled" if any
  // work remained, "done" if the campaign beat the cancel.
  std::string type;
  while (reader.next(line)) {
    if (is_record_line(line)) continue;
    type = json::parse(line).find("type")->text;
    break;
  }
  EXPECT_TRUE(type == "cancelled" || type == "done") << type;
}

TEST_F(ServerFixture, ShutdownVerbStopsTheServer) {
  ScopedFd fd = connect();
  ASSERT_TRUE(send_line(fd.get(), shutdown_line()));
  TimedReader reader(fd.get());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(json::parse(line).find("type")->text, "bye");
  server_->wait();  // returns: the verb shut both threads down
}

}  // namespace
}  // namespace iw::service
