// Deterministic end-to-end harness for the campaign service, fully
// in-process (no fork/exec, no sockets): tests drive CampaignService
// directly via submit()/pump()/drain() and get the exact protocol lines a
// socket client would read.
//
// The two acceptance certificates of the service live here:
//   (a) a cached replay is BYTE-identical to a fresh compute — the merged
//       JSONL a client assembles from the stream equals a one-shot
//       run_campaign + JsonlSink file of the same campaign;
//   (b) two overlapping campaigns recompute zero shared points.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "support/json.hpp"
#include "sweep/record.hpp"
#include "sweep/runner.hpp"

namespace iw::service {
namespace {

/// Small, fast, deterministic campaign: one axis (delay) varies.
sweep::SweepSpec quick_spec(std::vector<double> delays) {
  sweep::SweepSpec spec;
  spec.delay_ms = std::move(delays);
  spec.msg_bytes = {4096};
  spec.np = {6};
  spec.steps = 6;
  spec.texec = milliseconds(1.0);
  spec.system_noise = "none";
  return spec;
}

/// Pumps until the queue drains (bounded; every pump call runs one batch).
void pump_dry(CampaignService& service) {
  for (int i = 0; i < 64; ++i)
    if (!service.pump()) return;
  FAIL() << "service did not drain within 64 batches";
}

/// Splits drained lines into (record lines, control lines).
struct Stream {
  std::vector<std::string> records;
  std::vector<std::string> controls;
};

Stream split(const std::vector<std::string>& lines) {
  Stream s;
  for (const std::string& line : lines)
    (is_record_line(line) ? s.records : s.controls).push_back(line);
  return s;
}

/// One-shot reference: run_campaign + JsonlSink, as sweep_runner does.
std::string one_shot_jsonl(const sweep::SweepSpec& spec, int threads) {
  const std::string path =
      ::testing::TempDir() + "iw_service_oneshot.jsonl";
  {
    sweep::JsonlSink sink(path);
    sweep::RunnerOptions options;
    options.threads = threads;
    options.sinks.push_back(&sink);
    const sweep::CampaignResult result = run_campaign(spec, options);
    EXPECT_EQ(result.records.size(), result.total_points);
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string joined(const std::vector<std::string>& lines) {
  std::string all;
  for (const std::string& line : lines) {
    all += line;
    all += '\n';
  }
  return all;
}

TEST(ServiceE2E, OverlappingCampaignsShareEveryCommonPoint) {
  obs::MetricsRegistry metrics;
  ServiceOptions options;
  options.threads = 2;
  options.batch_points = 2;
  options.metrics = &metrics;
  CampaignService service(options);

  // Campaign A: delays {6,12}. Campaign B extends the FIRST axis to
  // {6,12,18} with the same campaign seed — first-axis extension preserves
  // the shared points' indices and therefore their fork seeds.
  const SubmitResult a = service.submit("alice", 0, quick_spec({6.0, 12.0}));
  ASSERT_TRUE(a.accepted) << a.message;
  EXPECT_EQ(a.points, 2u);
  EXPECT_EQ(a.cached, 0u);
  pump_dry(service);
  ASSERT_TRUE(service.finished(a.job));

  std::vector<std::string> a_lines;
  ASSERT_TRUE(service.drain(a.job, a_lines));
  const Stream a_stream = split(a_lines);
  ASSERT_EQ(a_stream.records.size(), 2u);
  ASSERT_EQ(a_stream.controls.size(), 1u);

  const SubmitResult b =
      service.submit("bob", 0, quick_spec({6.0, 12.0, 18.0}));
  ASSERT_TRUE(b.accepted);
  EXPECT_EQ(b.points, 3u);
  EXPECT_EQ(b.cached, 2u) << "both shared points must be cache hits";
  pump_dry(service);
  ASSERT_TRUE(service.finished(b.job));

  std::vector<std::string> b_lines;
  ASSERT_TRUE(service.drain(b.job, b_lines));
  const Stream b_stream = split(b_lines);
  ASSERT_EQ(b_stream.records.size(), 3u);
  const json::Value done = json::parse(b_stream.controls.back());
  EXPECT_EQ(done.find("type")->text, "done");
  EXPECT_EQ(done.find("cache_hits")->number, 2.0);
  EXPECT_EQ(done.find("computed")->number, 1.0)
      << "zero shared points may be recomputed";

  // Across both campaigns, exactly 3 distinct points were ever computed.
  EXPECT_EQ(metrics.counter(obs::MetricId::service_points_computed), 3u);
  EXPECT_EQ(metrics.counter(obs::MetricId::service_cache_hits), 2u);
  EXPECT_EQ(service.cache_size(), 3u);

  // Certificate (a): the merged stream B assembled is byte-identical to a
  // one-shot sweep_runner-style run of the same campaign, even though two
  // of its three records were cached replays.
  EXPECT_EQ(joined(b_stream.records),
            one_shot_jsonl(quick_spec({6.0, 12.0, 18.0}), 1));
}

TEST(ServiceE2E, CachedReplayIsByteIdenticalToFreshRun) {
  ServiceOptions options;
  options.threads = 2;
  options.batch_points = 8;
  CampaignService service(options);
  const sweep::SweepSpec spec = quick_spec({6.0, 12.0});

  const SubmitResult first = service.submit("a", 0, spec);
  ASSERT_TRUE(first.accepted);
  pump_dry(service);
  std::vector<std::string> first_lines;
  ASSERT_TRUE(service.drain(first.job, first_lines));

  // Second submission: all points come from the cache — no pump needed,
  // the job finishes inside submit().
  const SubmitResult second = service.submit("a", 0, spec);
  ASSERT_TRUE(second.accepted);
  EXPECT_EQ(second.cached, 2u);
  ASSERT_TRUE(service.finished(second.job));
  std::vector<std::string> second_lines;
  ASSERT_TRUE(service.drain(second.job, second_lines));

  EXPECT_EQ(joined(split(first_lines).records),
            joined(split(second_lines).records));
  EXPECT_EQ(joined(split(second_lines).records), one_shot_jsonl(spec, 1));
}

TEST(ServiceE2E, StreamOrderIsAscendingAndContiguous) {
  ServiceOptions options;
  options.batch_points = 1;  // worst case: one point per decision
  CampaignService service(options);
  const SubmitResult r =
      service.submit("a", 0, quick_spec({3.0, 6.0, 9.0, 12.0}));
  ASSERT_TRUE(r.accepted);
  pump_dry(service);
  std::vector<std::string> lines;
  ASSERT_TRUE(service.drain(r.job, lines));
  const Stream s = split(lines);
  ASSERT_EQ(s.records.size(), 4u);
  for (std::size_t i = 0; i < s.records.size(); ++i) {
    const json::Value rec = json::parse(s.records[i]);
    EXPECT_EQ(rec.find("index")->number, static_cast<double>(i));
  }
}

TEST(ServiceE2E, StatusReportsQueueAndClients) {
  CampaignService service;
  const SubmitResult r = service.submit("carol", 0, quick_spec({6.0, 12.0}));
  ASSERT_TRUE(r.accepted);
  const json::Value before = json::parse(service.status_json());
  EXPECT_EQ(before.find("queue_depth")->number, 2.0);
  EXPECT_EQ(before.find("clients_active")->number, 1.0);
  EXPECT_EQ(before.find("jobs_open")->number, 1.0);
  pump_dry(service);
  const json::Value after = json::parse(service.status_json());
  EXPECT_EQ(after.find("queue_depth")->number, 0.0);
  EXPECT_EQ(after.find("jobs_open")->number, 0.0);
  EXPECT_EQ(after.find("points_computed")->number, 2.0);
}

TEST(ServiceE2E, ResultsReplayMatchesStream) {
  CampaignService service;
  const sweep::SweepSpec spec = quick_spec({6.0, 12.0});
  const SubmitResult r = service.submit("a", 0, spec);
  ASSERT_TRUE(r.accepted);
  pump_dry(service);
  std::vector<std::string> streamed;
  ASSERT_TRUE(service.drain(r.job, streamed));
  std::vector<std::string> replayed;
  ASSERT_TRUE(service.results_so_far(r.job, replayed));
  EXPECT_EQ(replayed, split(streamed).records);
}

}  // namespace
}  // namespace iw::service
