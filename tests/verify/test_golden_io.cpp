// Golden-corpus file format: write/load round trip and header validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "verify/golden.hpp"

namespace iw::verify {
namespace {

sweep::SweepRecord sample_record(std::uint64_t index) {
  sweep::SweepRecord rec;
  rec.index = index;
  rec.delay_ms = 12.5;
  rec.msg_bytes = 16384;
  rec.np = 18;
  rec.ppn = 1;
  rec.noise_E_percent = 5.0;
  rec.workload = "ring";
  rec.direction = "bidirectional";
  rec.boundary = "periodic";
  rec.seed = 18446744073709551615ull;  // u64 max must survive the trip
  rec.protocol = "eager";
  rec.v_up_ranks_per_sec = 331.25;
  rec.v_down_ranks_per_sec = 0.0;
  rec.v_eq2_ranks_per_sec = 333.0;
  rec.decay_up_us_per_rank = 86.8158333333;
  rec.survival_up_hops = 9;
  rec.survival_down_hops = 0;
  rec.front_r2_up = 0.999708739501;
  rec.front_rmse_up_us = 148.243373133;
  rec.cycle_us = 3322.661;
  rec.makespan_ms = 86.170258;
  rec.events_processed = 1941;
  rec.peak_events_pending = 22;
  return rec;
}

/// Self-deleting temp path inside the test's working directory.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path(name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(GoldenIo, WriteLoadRoundTrip) {
  TempFile file("golden_io_roundtrip.csv");
  const std::vector<sweep::SweepRecord> records = {sample_record(0),
                                                   sample_record(1)};
  write_golden(file.path, "unit_test", records);

  const GoldenCorpus corpus = load_golden(file.path);
  EXPECT_EQ(corpus.schema_version, kGoldenSchemaVersion);
  EXPECT_EQ(corpus.scenario, "unit_test");
  ASSERT_EQ(corpus.records.size(), 2u);
  // Every column must survive the trip textually.
  for (std::size_t r = 0; r < records.size(); ++r)
    for (std::size_t c = 0; c < sweep::record_schema().size(); ++c)
      EXPECT_EQ(sweep::column_value(corpus.records[r], c),
                sweep::column_value(records[r], c))
          << "row " << r << " column " << sweep::record_schema()[c].name;
}

TEST(GoldenIo, MissingFileThrows) {
  EXPECT_THROW(load_golden("does_not_exist_anywhere.csv"),
               std::runtime_error);
}

TEST(GoldenIo, RejectsMissingMagic) {
  TempFile file("golden_io_nomagic.csv");
  std::ofstream(file.path) << "index,delay_ms\n0,1\n";
  EXPECT_THROW(load_golden(file.path), std::runtime_error);
}

TEST(GoldenIo, RejectsWrongSchemaVersion) {
  TempFile file("golden_io_version.csv");
  write_golden(file.path, "v", {sample_record(0)});
  // Rewrite the header with a bumped version, keeping the rest.
  std::ifstream in(file.path);
  std::string line, rest;
  std::getline(in, line);
  for (std::string l; std::getline(in, l);) rest += l + "\n";
  in.close();
  std::ofstream(file.path) << "# iw-golden schema=99 scenario=v points=1\n"
                           << rest;
  EXPECT_THROW(load_golden(file.path), std::runtime_error);
}

TEST(GoldenIo, RejectsColumnDrift) {
  TempFile file("golden_io_drift.csv");
  write_golden(file.path, "v", {sample_record(0)});
  std::ifstream in(file.path);
  std::string header, columns, rest;
  std::getline(in, header);
  std::getline(in, columns);
  for (std::string l; std::getline(in, l);) rest += l + "\n";
  in.close();
  // Rename one column: positional reinterpretation must be refused.
  columns.replace(columns.find("delay_ms"), 8, "delay_xx");
  std::ofstream(file.path) << header << "\n" << columns << "\n" << rest;
  EXPECT_THROW(load_golden(file.path), std::runtime_error);
}

TEST(GoldenIo, RejectsPointCountMismatch) {
  TempFile file("golden_io_count.csv");
  write_golden(file.path, "v", {sample_record(0), sample_record(1)});
  // Drop the last data row without fixing the header.
  std::ifstream in(file.path);
  std::vector<std::string> lines;
  for (std::string l; std::getline(in, l);) lines.push_back(l);
  in.close();
  std::ofstream out(file.path);
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << "\n";
  out.close();
  EXPECT_THROW(load_golden(file.path), std::runtime_error);
}

TEST(GoldenIo, RejectsMalformedRow) {
  TempFile file("golden_io_badrow.csv");
  write_golden(file.path, "v", {sample_record(0)});
  std::ifstream in(file.path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Corrupt the np field of the data row (third CSV field).
  const std::size_t row_start = content.find("\n", content.find("\n") + 1) + 1;
  std::string row = content.substr(row_start);
  row.replace(row.find("18"), 2, "xx");
  std::ofstream(file.path) << content.substr(0, row_start) << row;
  EXPECT_THROW(load_golden(file.path), std::runtime_error);
}

}  // namespace
}  // namespace iw::verify
