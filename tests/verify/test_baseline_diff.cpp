// Verdict baselining: parsing archived verdict JSON and classifying
// baseline -> candidate transitions, driven by doctored verdict documents.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "verify/baseline.hpp"
#include "verify/verify.hpp"

namespace iw::verify {
namespace {

/// A doctored two-scenario verdict: speed_vs_delay passes, decay_vs_size
/// fails with one field diff and one missed mutation probe.
const char* kBaselineJson = R"({"schema":2,"pass":false,"scenarios":[
  {"name":"speed_vs_delay","golden":"tests/golden/speed_vs_delay.csv",
   "pass":true,"error":"","records_run":52,"seconds":1.5,
   "records_compared":52,"field_diffs":[],"structural":[],
   "oracle":{"records_checked":52,"speed_checks":40,"violations":[]},
   "mutations":[{"target":"golden","column":"seed","record_index":3,
                 "caught":true,"detail":"differ named it"}]},
  {"name":"decay_vs_size","golden":"tests/golden/decay_vs_size.csv",
   "pass":false,"error":"","records_run":15,"seconds":0.8,
   "records_compared":15,
   "field_diffs":[{"record_index":7,"column":"cycle_us",
                   "expected":"3100.5","actual":"3190.2","rel_err":0.028}],
   "structural":[],
   "oracle":{"records_checked":15,"speed_checks":12,"violations":[]},
   "mutations":[{"target":"sim","column":"cycle_us","record_index":7,
                 "caught":false,"detail":"differ MISSED it"}]}
]})";

/// The doctored candidate: speed_vs_delay now FAILS (a regression, with an
/// oracle violation), decay_vs_size is fixed, and a new scenario appears.
const char* kCandidateJson = R"({"schema":2,"pass":false,"scenarios":[
  {"name":"speed_vs_delay","pass":false,"error":"","records_run":52,
   "field_diffs":[],"structural":["record count 51 != 52"],
   "oracle":{"violations":[{"record_index":9,"check":"speed",
     "column":"v_up_ranks_per_sec","value":901.0,"bound":700.0,
     "detail":"fitted speed off Eq. 2"}]},
   "mutations":[]},
  {"name":"decay_vs_size","pass":true,"error":"","records_run":15,
   "field_diffs":[],"structural":[],"oracle":{"violations":[]},
   "mutations":[]},
  {"name":"scale_wave","pass":true,"error":"","records_run":3,
   "field_diffs":[],"structural":[],"oracle":{"violations":[]},
   "mutations":[]}
]})";

TEST(VerdictParse, ExtractsSummaries) {
  const VerdictDocument doc = parse_verdict_json(kBaselineJson);
  EXPECT_EQ(doc.schema, 2);
  EXPECT_FALSE(doc.pass);
  ASSERT_EQ(doc.scenarios.size(), 2u);
  EXPECT_EQ(doc.scenarios[0].name, "speed_vs_delay");
  EXPECT_TRUE(doc.scenarios[0].pass);
  EXPECT_EQ(doc.scenarios[0].records_run, 52u);
  EXPECT_EQ(doc.scenarios[0].field_diffs, 0u);
  EXPECT_EQ(doc.scenarios[0].mutations_missed, 0u);
  EXPECT_EQ(doc.scenarios[1].name, "decay_vs_size");
  EXPECT_FALSE(doc.scenarios[1].pass);
  EXPECT_EQ(doc.scenarios[1].field_diffs, 1u);
  EXPECT_EQ(doc.scenarios[1].mutations_missed, 1u);
}

TEST(VerdictParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_verdict_json("{"), std::runtime_error);
  EXPECT_THROW((void)parse_verdict_json("[1,2,3]"), std::runtime_error);
  EXPECT_THROW((void)parse_verdict_json("{\"pass\":true}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_verdict_json(
                   "{\"pass\":true,\"scenarios\":[{\"pass\":true}]}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_verdict_json("{\"pass\":true,"
                                        "\"scenarios\":[]} trailing"),
               std::runtime_error);
}

TEST(VerdictParse, HandlesStringEscapes) {
  const VerdictDocument doc = parse_verdict_json(
      R"({"pass":false,"scenarios":[{"name":"x","pass":false,)"
      R"("error":"line\none \"quoted\" 	tab"}]})");
  EXPECT_EQ(doc.scenarios[0].error, "line\none \"quoted\" \ttab");
}

TEST(BaselineDiff, ClassifiesEveryTransition) {
  const BaselineReport report =
      diff_verdicts(parse_verdict_json(kBaselineJson),
                    parse_verdict_json(kCandidateJson));
  ASSERT_EQ(report.deltas.size(), 3u);

  EXPECT_EQ(report.deltas[0].scenario, "speed_vs_delay");
  EXPECT_EQ(report.deltas[0].kind, DeltaKind::regressed);
  EXPECT_NE(report.deltas[0].detail.find("1 structural"), std::string::npos);

  EXPECT_EQ(report.deltas[1].scenario, "decay_vs_size");
  EXPECT_EQ(report.deltas[1].kind, DeltaKind::fixed);

  EXPECT_EQ(report.deltas[2].scenario, "scale_wave");
  EXPECT_EQ(report.deltas[2].kind, DeltaKind::appeared);

  EXPECT_TRUE(report.regression());
  const std::string table = report.render();
  EXPECT_NE(table.find("regressed"), std::string::npos);
  EXPECT_NE(table.find("fixed"), std::string::npos);
}

TEST(BaselineDiff, CleanWhenNothingRegresses) {
  // Candidate == baseline: two unchanged scenarios, no gate.
  const VerdictDocument doc = parse_verdict_json(kBaselineJson);
  const BaselineReport report = diff_verdicts(doc, doc);
  ASSERT_EQ(report.deltas.size(), 2u);
  EXPECT_EQ(report.deltas[0].kind, DeltaKind::unchanged);
  EXPECT_EQ(report.deltas[1].kind, DeltaKind::unchanged);
  EXPECT_FALSE(report.regression());
}

TEST(BaselineDiff, VanishedCoverageGates) {
  const BaselineReport report =
      diff_verdicts(parse_verdict_json(kBaselineJson),
                    parse_verdict_json(R"({"pass":true,"scenarios":[
        {"name":"speed_vs_delay","pass":true,"error":"","field_diffs":[],
         "structural":[],"oracle":{"violations":[]},"mutations":[]}]})"));
  ASSERT_EQ(report.deltas.size(), 2u);
  EXPECT_EQ(report.deltas[1].kind, DeltaKind::vanished);
  EXPECT_TRUE(report.regression());
}

TEST(BaselineDiff, NewFailingScenarioGates) {
  const BaselineReport report = diff_verdicts(
      parse_verdict_json(R"({"pass":true,"scenarios":[]})"),
      parse_verdict_json(R"({"pass":false,"scenarios":[
        {"name":"brand_new","pass":false,"error":"golden missing",
         "field_diffs":[],"structural":[],"oracle":{"violations":[]},
         "mutations":[]}]})"));
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_EQ(report.deltas[0].kind, DeltaKind::regressed);
  EXPECT_TRUE(report.regression());
}

TEST(BaselineDiff, DegradedWhenStillFailingWorse) {
  const char* worse = R"({"pass":false,"scenarios":[
    {"name":"decay_vs_size","pass":false,"error":"",
     "field_diffs":[{"record_index":1,"column":"a","expected":"1",
                     "actual":"2","rel_err":1.0},
                    {"record_index":2,"column":"b","expected":"1",
                     "actual":"2","rel_err":1.0},
                    {"record_index":3,"column":"c","expected":"1",
                     "actual":"2","rel_err":1.0}],
     "structural":[],"oracle":{"violations":[]},"mutations":[]}]})";
  const char* base_one = R"({"pass":false,"scenarios":[
    {"name":"decay_vs_size","pass":false,"error":"",
     "field_diffs":[{"record_index":1,"column":"a","expected":"1",
                     "actual":"2","rel_err":1.0}],
     "structural":[],"oracle":{"violations":[]},"mutations":[]}]})";
  const BaselineReport report = diff_verdicts(parse_verdict_json(base_one),
                                              parse_verdict_json(worse));
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_EQ(report.deltas[0].kind, DeltaKind::degraded);
  EXPECT_TRUE(report.regression());

  // Same badness the other way round: still failing, but not worse.
  const BaselineReport stable = diff_verdicts(parse_verdict_json(worse),
                                              parse_verdict_json(base_one));
  EXPECT_EQ(stable.deltas[0].kind, DeltaKind::unchanged);
  EXPECT_FALSE(stable.regression());
}

TEST(BaselineDiff, RoundTripsThroughRealVerdictJson) {
  // A verdict built by the production serializer must parse back with the
  // same pass/fail and offense counts the differ will see from archives.
  ScenarioVerdict v;
  v.scenario = "synthetic";
  v.golden_file = "tests/golden/synthetic.csv";
  v.records_run = 4;
  v.diff.records_compared = 4;
  FieldDiff d;
  d.record_index = 2;
  d.column = "cycle_us";
  d.expected = "10";
  d.actual = "11";
  d.rel_err = 0.1;
  v.diff.field_diffs.push_back(d);
  const VerdictDocument doc = parse_verdict_json(verdict_json({v}));
  ASSERT_EQ(doc.scenarios.size(), 1u);
  EXPECT_EQ(doc.scenarios[0].name, "synthetic");
  EXPECT_FALSE(doc.scenarios[0].pass);
  EXPECT_EQ(doc.scenarios[0].field_diffs, 1u);
  EXPECT_FALSE(doc.pass);
}

TEST(BaselineDiff, LoadVerdictReadsFiles) {
  const std::string path = ::testing::TempDir() + "iw_verdict_baseline.json";
  {
    std::ofstream out(path);
    out << kBaselineJson;
  }
  const VerdictDocument doc = load_verdict(path);
  EXPECT_EQ(doc.scenarios.size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_verdict(path), std::runtime_error);
}

}  // namespace
}  // namespace iw::verify
