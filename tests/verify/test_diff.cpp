// Field-tolerance diffing: exact vs approx policies, index matching,
// structural problems, and single-field mutation detection over the whole
// schema (the unit-level half of the mutation self-check).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "verify/diff.hpp"

namespace iw::verify {
namespace {

sweep::SweepRecord base_record(std::uint64_t index) {
  sweep::SweepRecord rec;
  rec.index = index;
  rec.delay_ms = 4.0 + static_cast<double>(index);
  rec.msg_bytes = 16384;
  rec.np = 18;
  rec.ppn = 1;
  rec.workload = "ring";
  rec.direction = "unidirectional";
  rec.boundary = "open";
  rec.seed = 1234567890123456789ull + index;
  rec.protocol = "eager";
  rec.v_up_ranks_per_sec = 250.0;
  rec.v_eq2_ranks_per_sec = 251.5;
  rec.decay_up_us_per_rank = 12.25;
  rec.survival_up_hops = 7;
  rec.front_r2_up = 0.9999;
  rec.front_rmse_up_us = 3.5;
  rec.cycle_us = 3200.0;
  rec.makespan_ms = 60.5;
  rec.events_processed = 1941;
  rec.peak_events_pending = 37;
  return rec;
}

std::vector<sweep::SweepRecord> table(std::size_t n) {
  std::vector<sweep::SweepRecord> records;
  for (std::size_t i = 0; i < n; ++i) records.push_back(base_record(i));
  return records;
}

TEST(Diff, IdenticalTablesAreClean) {
  const auto golden = table(4);
  const DiffReport report = diff_records(golden, golden, {}, true);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records_compared, 4u);
}

TEST(Diff, ApproxColumnWithinEpsilonPasses) {
  const auto golden = table(2);
  auto fresh = golden;
  fresh[1].v_up_ranks_per_sec *= 1.0 + 1e-12;  // below rel_eps = 1e-9
  EXPECT_TRUE(diff_records(golden, fresh, {}, true).clean());
}

TEST(Diff, ApproxColumnBeyondEpsilonIsFlagged) {
  const auto golden = table(2);
  auto fresh = golden;
  fresh[1].v_up_ranks_per_sec *= 1.001;
  const DiffReport report = diff_records(golden, fresh, {}, true);
  ASSERT_EQ(report.field_diffs.size(), 1u);
  EXPECT_EQ(report.field_diffs[0].record_index, 1u);
  EXPECT_EQ(report.field_diffs[0].column, "v_up_ranks_per_sec");
  EXPECT_NEAR(report.field_diffs[0].rel_err, 0.001, 1e-4);
}

TEST(Diff, ExactColumnOffByOneIsFlagged) {
  const auto golden = table(2);
  auto fresh = golden;
  fresh[0].events_processed += 1;  // counters never drift legitimately
  const DiffReport report = diff_records(golden, fresh, {}, true);
  ASSERT_EQ(report.field_diffs.size(), 1u);
  EXPECT_EQ(report.field_diffs[0].column, "events_processed");
}

TEST(Diff, WiderPolicyAcceptsLargerDrift) {
  const auto golden = table(1);
  auto fresh = golden;
  fresh[0].cycle_us *= 1.0005;
  TolerancePolicy wide;
  wide.rel_eps = 1e-3;
  EXPECT_TRUE(diff_records(golden, fresh, wide, true).clean());
  EXPECT_FALSE(diff_records(golden, fresh, {}, true).clean());
}

TEST(Diff, SubsetRunMatchesByIndex) {
  const auto golden = table(6);
  // A quick-subset run: only points 1 and 4, delivered out of their golden
  // positions.
  std::vector<sweep::SweepRecord> fresh = {golden[4], golden[1]};
  const DiffReport report = diff_records(golden, fresh, {}, false);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records_compared, 2u);
}

TEST(Diff, FullRunReportsMissingGoldenRows) {
  const auto golden = table(3);
  const std::vector<sweep::SweepRecord> fresh = {golden[0], golden[2]};
  const DiffReport report = diff_records(golden, fresh, {}, true);
  ASSERT_EQ(report.structural.size(), 1u);
  EXPECT_NE(report.structural[0].find("index 1"), std::string::npos);
}

TEST(Diff, UnknownFreshIndexIsStructural) {
  const auto golden = table(2);
  std::vector<sweep::SweepRecord> fresh = {base_record(7)};
  const DiffReport report = diff_records(golden, fresh, {}, false);
  ASSERT_EQ(report.structural.size(), 1u);
  EXPECT_NE(report.structural[0].find("no golden row"), std::string::npos);
}

TEST(Diff, DuplicateFreshIndexIsStructural) {
  const auto golden = table(2);
  const std::vector<sweep::SweepRecord> fresh = {golden[0], golden[0]};
  const DiffReport report = diff_records(golden, fresh, {}, false);
  ASSERT_EQ(report.structural.size(), 1u);
  EXPECT_NE(report.structural[0].find("repeats index"), std::string::npos);
}

// The differ must catch a perturbation of ANY single column — a column the
// differ skips is a hole every future regression can hide in. This is the
// exhaustive version of verify_runner's --self-check probes.
TEST(Diff, EverySingleColumnMutationIsCaught) {
  const auto golden = table(3);
  const auto& schema = sweep::record_schema();
  for (std::size_t c = 0; c < schema.size(); ++c) {
    if (std::string(schema[c].name) == "index") continue;  // identity key
    auto fresh = golden;
    const std::string old = sweep::column_value(fresh[1], c);
    std::string mutated;
    switch (schema[c].type) {
      case sweep::ColumnType::text:
        mutated = old + "_x";
        break;
      case sweep::ColumnType::f64:
        mutated = std::to_string(std::stod(old) * 1.01 + 1.0);
        break;
      case sweep::ColumnType::u64:
        mutated = std::to_string(std::stoull(old) + 1);
        break;
      default:
        mutated = std::to_string(std::stoll(old) + 1);
        break;
    }
    sweep::set_column(fresh[1], c, mutated);
    const DiffReport report = diff_records(golden, fresh, {}, true);
    ASSERT_EQ(report.field_diffs.size(), 1u)
        << "column " << schema[c].name << " mutation not caught";
    EXPECT_EQ(report.field_diffs[0].column, schema[c].name);
    EXPECT_EQ(report.field_diffs[0].record_index, 1u);
  }
}

}  // namespace
}  // namespace iw::verify
