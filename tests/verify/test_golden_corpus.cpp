// The checked-in golden corpus itself: every catalog scenario has a valid,
// physics-consistent corpus, quick subsets are well-formed, and the full
// verify pipeline passes end-to-end against the real goldens — including
// failing loudly when a golden field is perturbed on disk.
//
// IW_GOLDEN_DIR points at tests/golden in the source tree (set in
// tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <filesystem>

#include "sweep/scenario.hpp"
#include "verify/oracle.hpp"
#include "verify/verify.hpp"

namespace iw::verify {
namespace {

namespace fs = std::filesystem;

TEST(GoldenCorpus, EveryScenarioHasAFullValidCorpus) {
  for (const sweep::Scenario& s : sweep::scenario_catalog()) {
    const GoldenCorpus corpus =
        load_golden(golden_path(IW_GOLDEN_DIR, s.name));
    EXPECT_EQ(corpus.scenario, s.name);
    EXPECT_EQ(corpus.records.size(), s.spec.points())
        << s.name << ": corpus must hold the full campaign";
  }
}

TEST(GoldenCorpus, QuickSubsetsAreNonEmptyAndInRange) {
  for (const sweep::Scenario& s : sweep::scenario_catalog()) {
    EXPECT_FALSE(s.quick_subset.empty())
        << s.name << ": CI quick mode would silently run the full campaign";
    for (const std::size_t index : s.quick_subset)
      EXPECT_LT(index, s.spec.points()) << s.name;
  }
}

TEST(GoldenCorpus, StoredRecordsSatisfyTheOracles) {
  // The corpus must obey the analytic model without re-simulation: a stale
  // or hand-edited golden that violates physics is caught here, in tier-1.
  for (const sweep::Scenario& s : sweep::scenario_catalog()) {
    const GoldenCorpus corpus =
        load_golden(golden_path(IW_GOLDEN_DIR, s.name));
    const OracleReport report = check_oracles(s, corpus.records);
    EXPECT_TRUE(report.clean())
        << s.name << ": " +
               (report.violations.empty()
                    ? std::string{}
                    : report.violations[0].check + "/" +
                          report.violations[0].column + ": " +
                          report.violations[0].detail);
  }
}

TEST(GoldenCorpus, QuickVerifyWithSelfCheckPassesEndToEnd) {
  const sweep::Scenario* s = sweep::find_scenario("decay_vs_size");
  ASSERT_NE(s, nullptr);
  VerifyOptions options;
  options.golden_dir = IW_GOLDEN_DIR;
  options.quick = true;
  options.self_check = true;
  const ScenarioVerdict verdict = verify_scenario(*s, options);
  EXPECT_TRUE(verdict.error.empty()) << verdict.error;
  EXPECT_TRUE(verdict.diff.clean());
  EXPECT_TRUE(verdict.oracle.clean());
  ASSERT_EQ(verdict.mutations.size(), 4u);
  for (const MutationOutcome& m : verdict.mutations)
    EXPECT_TRUE(m.caught) << m.detail;
  EXPECT_TRUE(verdict.pass());
}

TEST(GoldenCorpus, PerturbedGoldenOnDiskFailsWithNamedField) {
  const sweep::Scenario* s = sweep::find_scenario("ppn_contrast");
  ASSERT_NE(s, nullptr);
  GoldenCorpus corpus = load_golden(golden_path(IW_GOLDEN_DIR, s->name));
  ASSERT_FALSE(corpus.records.empty());

  // Perturb one observable of one record and write the tampered corpus to
  // a scratch dir: verification against it must fail, naming the field.
  const std::uint64_t victim = corpus.records[1].index;
  corpus.records[1].cycle_us *= 1.01;
  const fs::path dir = fs::path("golden_corpus_tampered");
  fs::create_directories(dir);
  write_golden(golden_path(dir.string(), s->name), s->name, corpus.records);

  VerifyOptions options;
  options.golden_dir = dir.string();
  const ScenarioVerdict verdict = verify_scenario(*s, options);
  fs::remove_all(dir);

  EXPECT_TRUE(verdict.error.empty()) << verdict.error;
  EXPECT_FALSE(verdict.pass());
  ASSERT_EQ(verdict.diff.field_diffs.size(), 1u);
  EXPECT_EQ(verdict.diff.field_diffs[0].column, "cycle_us");
  EXPECT_EQ(verdict.diff.field_diffs[0].record_index, victim);
}

}  // namespace
}  // namespace iw::verify
