// Analytic oracle layer: each check flags crafted bad records and stays
// quiet on records consistent with the model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "sweep/spec.hpp"
#include "verify/oracle.hpp"

namespace iw::verify {
namespace {

sweep::Scenario test_scenario() {
  sweep::Scenario s;
  s.name = "oracle_unit";
  s.spec.delay_ms = {10.0};
  s.spec.msg_bytes = {16384};
  s.spec.np = {12};
  s.spec.noise_E_percent = {0.0, 10.0};
  s.spec.steps = 12;
  return s;  // 2 points: E = 0 and E = 10
}

/// Builds records consistent with the scenario's expansion and oracles.
std::vector<sweep::SweepRecord> clean_records(const sweep::Scenario& s) {
  std::vector<sweep::SweepRecord> records;
  for (const sweep::SweepPoint& p : sweep::expand(s.spec)) {
    sweep::SweepRecord r;
    r.index = p.index;
    r.delay_ms = p.delay_ms;
    r.msg_bytes = p.msg_bytes;
    r.np = p.np;
    r.ppn = p.ppn;
    r.noise_E_percent = p.noise_E_percent;
    r.workload = to_string(p.workload);
    r.direction = to_string(p.direction);
    r.boundary = to_string(p.boundary);
    r.nic_depth = p.nic_depth;
    r.eager_credits = p.eager_credits;
    r.rdv_flavor = to_string(p.rdv_flavor);
    r.seed = p.exp.cluster.seed;
    r.protocol = "eager";  // 16 KiB is far below the eager limit
    r.v_eq2_ranks_per_sec = 300.0;
    r.v_up_ranks_per_sec = 310.0;  // ~3% off Eq. 2
    r.decay_up_us_per_rank = 5.0 + 20.0 * p.noise_E_percent;
    r.survival_up_hops = p.noise_E_percent > 0.0 ? 4 : 5;
    r.front_r2_up = 0.999;
    r.front_rmse_up_us = 10.0;
    // Texec = 3 ms default; noise lengthens the cycle.
    r.cycle_us = 3500.0 + 20.0 * p.noise_E_percent;
    r.makespan_ms = 50.0;
    r.events_processed = 1000 + p.index;
    r.peak_events_pending = 30;
    records.push_back(r);
  }
  return records;
}

bool has_violation(const OracleReport& report, const std::string& check,
                   const std::string& column) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const OracleViolation& v) {
                       return v.check == check && v.column == column;
                     });
}

TEST(Oracle, CleanRecordsPass) {
  const auto s = test_scenario();
  const OracleReport report = check_oracles(s, clean_records(s));
  EXPECT_TRUE(report.clean()) << (report.violations.empty()
                                      ? ""
                                      : report.violations[0].check + "/" +
                                            report.violations[0].column +
                                            ": " +
                                            report.violations[0].detail);
  EXPECT_EQ(report.records_checked, 2u);
  EXPECT_EQ(report.speed_checks, 2u);
}

TEST(Oracle, SpeedFarFromEq2IsFlagged) {
  const auto s = test_scenario();
  auto records = clean_records(s);
  records[0].v_up_ranks_per_sec = 2.0 * records[0].v_eq2_ranks_per_sec;
  const OracleReport report = check_oracles(s, records);
  EXPECT_TRUE(has_violation(report, "speed_eq2", "v_up_ranks_per_sec"));
  EXPECT_EQ(report.violations[0].record_index, 0u);
}

TEST(Oracle, ScatteredFrontSkipsSpeedCheck) {
  const auto s = test_scenario();
  auto records = clean_records(s);
  records[0].v_up_ranks_per_sec = 2.0 * records[0].v_eq2_ranks_per_sec;
  records[0].front_r2_up = 0.5;  // below min_front_r2: fit means nothing
  const OracleReport report = check_oracles(s, records);
  EXPECT_FALSE(has_violation(report, "speed_eq2", "v_up_ranks_per_sec"));
  EXPECT_EQ(report.speed_checks, 1u);  // only the untouched record
}

TEST(Oracle, CycleOutsideEq1BandIsFlagged) {
  const auto s = test_scenario();
  auto low = clean_records(s);
  low[0].cycle_us = 0.5 * s.spec.texec.us();  // below the Texec floor
  EXPECT_TRUE(has_violation(check_oracles(s, low), "cycle_eq1", "cycle_us"));

  auto high = clean_records(s);
  high[0].cycle_us = 100.0 * s.spec.texec.us();
  EXPECT_TRUE(has_violation(check_oracles(s, high), "cycle_eq1", "cycle_us"));
}

TEST(Oracle, NonFiniteObservableIsFlagged) {
  const auto s = test_scenario();
  auto records = clean_records(s);
  records[1].decay_up_us_per_rank =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(has_violation(check_oracles(s, records), "sanity",
                            "decay_up_us_per_rank"));
}

TEST(Oracle, SurvivalBeyondChainIsFlagged) {
  const auto s = test_scenario();
  auto records = clean_records(s);
  records[0].survival_up_hops = records[0].np;  // > np-1 is impossible
  EXPECT_TRUE(has_violation(check_oracles(s, records), "sanity",
                            "survival_up_hops"));
}

TEST(Oracle, SeedDriftAgainstExpansionIsFlagged) {
  const auto s = test_scenario();
  auto records = clean_records(s);
  records[0].seed += 1;
  EXPECT_TRUE(
      has_violation(check_oracles(s, records), "expansion", "seed"));
}

TEST(Oracle, AxisDriftAgainstExpansionIsFlagged) {
  const auto s = test_scenario();
  auto records = clean_records(s);
  records[1].delay_ms = 11.0;  // catalog says 10
  EXPECT_TRUE(
      has_violation(check_oracles(s, records), "expansion", "delay_ms"));
}

TEST(Oracle, ProtocolAgainstSizeRuleIsFlagged) {
  const auto s = test_scenario();
  auto records = clean_records(s);
  records[0].protocol = "rendezvous";  // 16 KiB must be eager
  EXPECT_TRUE(
      has_violation(check_oracles(s, records), "expansion", "protocol"));
}

TEST(Oracle, IndexBeyondExpansionIsFlagged) {
  const auto s = test_scenario();
  auto records = clean_records(s);
  records[0].index = 999;
  EXPECT_TRUE(
      has_violation(check_oracles(s, records), "expansion", "index"));
}

TEST(Oracle, DampingTrendsEnforcedWhenDeclared) {
  auto s = test_scenario();
  s.oracle.damping_trend_in_noise = true;

  // Clean records respect both trends.
  EXPECT_TRUE(check_oracles(s, clean_records(s)).clean());

  // Cycle shrinking under rising E breaks monotonicity.
  auto faster = clean_records(s);
  faster[1].cycle_us = faster[0].cycle_us * 0.9;
  EXPECT_TRUE(has_violation(check_oracles(s, faster), "cycle_monotone",
                            "cycle_us"));

  // Survival growing well past the noise-free baseline breaks damping.
  auto undamped = clean_records(s);
  undamped[1].survival_up_hops =
      undamped[0].survival_up_hops + s.oracle.survival_slack_hops + 1;
  EXPECT_TRUE(has_violation(check_oracles(s, undamped), "survival_damping",
                            "survival_up_hops"));
}

}  // namespace
}  // namespace iw::verify
