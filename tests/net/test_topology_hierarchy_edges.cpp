// Edge cases of the hierarchical fabric tiers: degenerate single-rank
// islands, rank counts that do not divide the switch-group size, and the
// division-free classification tables checked against a naive modulo
// reference over randomized shapes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "support/rng.hpp"

namespace iw::net {
namespace {

/// The straightforward all-divisions classification the precomputed tables
/// must reproduce: tier index = rank / (ranks per tier), compared top-down.
LinkClass classify_naive(const TopologySpec& spec, int per_socket, int a,
                         int b) {
  if (a == b) return LinkClass::self;
  const int per_node = per_socket * spec.sockets_per_node;
  if (a / per_socket == b / per_socket) return LinkClass::intra_socket;
  if (a / per_node == b / per_node) return LinkClass::inter_socket;
  if (spec.nodes_per_switch == 0) return LinkClass::inter_node;
  const int per_switch = per_node * spec.nodes_per_switch;
  if (a / per_switch == b / per_switch) return LinkClass::inter_node;
  if (spec.switches_per_island == 0) return LinkClass::inter_switch;
  const int per_island = per_switch * spec.switches_per_island;
  if (a / per_island == b / per_island) return LinkClass::inter_switch;
  return LinkClass::inter_island;
}

void expect_matches_naive(const TopologySpec& spec) {
  const Topology topo(spec);
  const int per_socket = topo.ranks_per_socket();
  std::array<bool, static_cast<std::size_t>(kLinkClassCount)> seen{};
  for (int a = 0; a < spec.ranks; ++a) {
    for (int b = 0; b < spec.ranks; ++b) {
      const LinkClass got = topo.classify(a, b);
      const LinkClass want = classify_naive(spec, per_socket, a, b);
      ASSERT_EQ(got, want) << "ranks " << a << " -> " << b << " (np="
                           << spec.ranks << ", per_socket=" << per_socket
                           << ", sockets=" << spec.sockets_per_node
                           << ", nodes/switch=" << spec.nodes_per_switch
                           << ", switches/island="
                           << spec.switches_per_island << ")";
      seen[static_cast<std::size_t>(got)] = true;
    }
  }
  // produces() must agree exactly with the exhaustively observed classes.
  for (int c = 0; c < kLinkClassCount; ++c) {
    const auto cls = static_cast<LinkClass>(c);
    EXPECT_EQ(topo.produces(cls), seen[static_cast<std::size_t>(c)])
        << "produces(" << to_string(cls) << ") disagrees with observation";
  }
}

TEST(TopologyHierarchyEdges, SingleRankIslands) {
  // One rank per socket, one socket per node, one node per switch, one
  // switch per island: every rank is alone in its island, so every
  // cross-rank link is inter_island and nothing below is ever produced.
  TopologySpec spec;
  spec.ranks = 5;
  spec.ranks_per_socket = 1;
  spec.sockets_per_node = 1;
  spec.nodes_per_switch = 1;
  spec.switches_per_island = 1;
  const Topology topo(spec);
  EXPECT_EQ(topo.islands(), 5);
  EXPECT_EQ(topo.switches(), 5);
  EXPECT_EQ(topo.pattern_period(), 1);
  for (int a = 0; a < 5; ++a)
    for (int b = 0; b < 5; ++b)
      EXPECT_EQ(topo.classify(a, b),
                a == b ? LinkClass::self : LinkClass::inter_island);
  EXPECT_FALSE(topo.produces(LinkClass::intra_socket));
  EXPECT_FALSE(topo.produces(LinkClass::inter_socket));
  EXPECT_FALSE(topo.produces(LinkClass::inter_node));
  EXPECT_FALSE(topo.produces(LinkClass::inter_switch));
  EXPECT_TRUE(topo.produces(LinkClass::inter_island));
  expect_matches_naive(spec);
}

TEST(TopologyHierarchyEdges, RanksNotDivisibleBySwitchGroup) {
  // 2 ranks/socket x 2 sockets x 3 nodes = 12 ranks per switch group;
  // 50 ranks fill 4 switch groups with the last one partial (2 ranks).
  TopologySpec spec;
  spec.ranks = 50;
  spec.ranks_per_socket = 2;
  spec.nodes_per_switch = 3;
  const Topology topo(spec);
  EXPECT_EQ(topo.ranks_per_switch(), 12);
  EXPECT_EQ(topo.switches(), 5);  // ceil(50 / 12)
  EXPECT_EQ(topo.switch_of(47), 3);
  EXPECT_EQ(topo.switch_of(48), 4);
  // The partial last group (ranks 48-49) still classifies like any other:
  // 48 and 49 share a socket; 40 and 44 share switch group 3 but not a
  // node; 48 (group 4) and 36 (group 3) cross the switch tier.
  EXPECT_EQ(topo.classify(48, 49), LinkClass::intra_socket);
  EXPECT_EQ(topo.classify(40, 44), LinkClass::inter_node);
  EXPECT_EQ(topo.classify(48, 36), LinkClass::inter_switch);
  expect_matches_naive(spec);
}

TEST(TopologyHierarchyEdges, PartialIslandCounts) {
  // 4 ranks/switch, 2 switches/island; 20 ranks = 5 switch groups =
  // 2 full islands plus a partial third.
  TopologySpec spec;
  spec.ranks = 20;
  spec.ranks_per_socket = 1;
  spec.sockets_per_node = 2;
  spec.nodes_per_switch = 2;
  spec.switches_per_island = 2;
  const Topology topo(spec);
  EXPECT_EQ(topo.ranks_per_island(), 8);
  EXPECT_EQ(topo.islands(), 3);
  EXPECT_EQ(topo.island_of(15), 1);
  EXPECT_EQ(topo.island_of(16), 2);
  expect_matches_naive(spec);
}

TEST(TopologyHierarchyEdges, PatternPeriodTranslationInvariance) {
  TopologySpec spec;
  spec.ranks = 3 * 12;  // three full switch groups
  spec.ranks_per_socket = 2;
  spec.nodes_per_switch = 3;
  const Topology topo(spec);
  const int period = topo.pattern_period();
  ASSERT_EQ(period, 12);
  for (int a = 0; a < period; ++a)
    for (int b = 0; b < period; ++b)
      for (int shift = period; shift + period <= spec.ranks;
           shift += period)
        EXPECT_EQ(topo.classify(a, b), topo.classify(a + shift, b + shift));
}

TEST(TopologyHierarchyEdges, RandomizedShapesMatchNaiveReference) {
  // Deterministic fuzz over tier shapes, including disabled tiers and
  // partial top groups. Every (a, b) pair of every shape must agree with
  // the all-divisions reference.
  const Rng rng(0x70D07071ull);
  for (int trial = 0; trial < 40; ++trial) {
    const Rng r = rng.fork(static_cast<std::uint64_t>(trial));
    TopologySpec spec;
    spec.ranks_per_socket = 1 + static_cast<int>(r.fork(0).next_u64() % 3);
    spec.sockets_per_node = 1 + static_cast<int>(r.fork(1).next_u64() % 3);
    spec.nodes_per_switch = static_cast<int>(r.fork(2).next_u64() % 4);  // 0-3
    spec.switches_per_island =
        spec.nodes_per_switch == 0
            ? 0
            : static_cast<int>(r.fork(3).next_u64() % 3);  // 0-2
    spec.ranks = 2 + static_cast<int>(r.fork(4).next_u64() % 60);
    expect_matches_naive(spec);
  }
}

}  // namespace
}  // namespace iw::net
