// Tests for the hierarchical topology and link classification.
#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace iw::net {
namespace {

TEST(Topology, PackedMappingMatchesPaperNodes) {
  // 40 ranks on dual-socket 10-core nodes: 4 sockets, 2 nodes.
  const Topology topo(TopologySpec::packed(40));
  EXPECT_EQ(topo.ranks(), 40);
  EXPECT_EQ(topo.ranks_per_socket(), 10);
  EXPECT_EQ(topo.ranks_per_node(), 20);
  EXPECT_EQ(topo.sockets(), 4);
  EXPECT_EQ(topo.nodes(), 2);
  EXPECT_EQ(topo.socket_of(0), 0);
  EXPECT_EQ(topo.socket_of(9), 0);
  EXPECT_EQ(topo.socket_of(10), 1);
  EXPECT_EQ(topo.node_of(19), 0);
  EXPECT_EQ(topo.node_of(20), 1);
}

TEST(Topology, PartialLastSocketCounts) {
  const Topology topo(TopologySpec::packed(25));
  EXPECT_EQ(topo.sockets(), 3);
  EXPECT_EQ(topo.nodes(), 2);
}

TEST(Topology, CustomRanksPerSocket) {
  // Fig. 9 runs six processes per socket on six sockets.
  const Topology topo(TopologySpec::packed(36, 6));
  EXPECT_EQ(topo.sockets(), 6);
  EXPECT_EQ(topo.nodes(), 3);
  EXPECT_EQ(topo.socket_of(5), 0);
  EXPECT_EQ(topo.socket_of(6), 1);
  EXPECT_EQ(topo.node_of(11), 0);
  EXPECT_EQ(topo.node_of(12), 1);
}

TEST(Topology, OneRankPerNode) {
  const Topology topo(TopologySpec::one_rank_per_node(18));
  EXPECT_EQ(topo.ranks(), 18);
  EXPECT_EQ(topo.nodes(), 18);
  for (int r = 0; r < 18; ++r) EXPECT_EQ(topo.node_of(r), r);
}

TEST(Topology, LinkClassification) {
  const Topology topo(TopologySpec::packed(40));
  EXPECT_EQ(topo.classify(3, 3), LinkClass::self);
  EXPECT_EQ(topo.classify(3, 7), LinkClass::intra_socket);
  EXPECT_EQ(topo.classify(3, 13), LinkClass::inter_socket);
  EXPECT_EQ(topo.classify(3, 23), LinkClass::inter_node);
  // Symmetry.
  EXPECT_EQ(topo.classify(23, 3), LinkClass::inter_node);
}

TEST(Topology, PPN1AlwaysInterNode) {
  const Topology topo(TopologySpec::one_rank_per_node(8));
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a != b) {
        EXPECT_EQ(topo.classify(a, b), LinkClass::inter_node);
      }
    }
  }
}

TEST(Topology, RejectsInvalidSpecs) {
  TopologySpec bad;
  bad.ranks = 0;
  EXPECT_THROW(Topology{bad}, std::invalid_argument);
  TopologySpec toomany = TopologySpec::packed(10, 11);
  toomany.cores_per_socket = 10;
  EXPECT_THROW(Topology{toomany}, std::invalid_argument);
}

TEST(Topology, RangeChecksOnQueries) {
  const Topology topo(TopologySpec::packed(10));
  EXPECT_THROW((void)topo.socket_of(-1), std::invalid_argument);
  EXPECT_THROW((void)topo.socket_of(10), std::invalid_argument);
  EXPECT_THROW((void)topo.classify(0, 10), std::invalid_argument);
}

TEST(LinkClass, Names) {
  EXPECT_STREQ(to_string(LinkClass::intra_socket), "intra-socket");
  EXPECT_STREQ(to_string(LinkClass::inter_node), "inter-node");
}

}  // namespace
}  // namespace iw::net
