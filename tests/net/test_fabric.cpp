// Tests for link cost parameters and fabric profiles.
#include <gtest/gtest.h>

#include "net/fabric.hpp"

namespace iw::net {
namespace {

TEST(LinkParams, HockneyTransferTime) {
  LinkParams p;
  p.latency = microseconds(2.0);
  p.bandwidth_Bps = 1e9;  // 1 GB/s: 1 byte per ns
  EXPECT_EQ(p.transfer_time(0).ns(), 2000);
  EXPECT_EQ(p.transfer_time(1000).ns(), 3000);
  EXPECT_EQ(p.control_time().ns(), 2000);
}

TEST(LinkParams, TransferTimeRejectsNegativeSize) {
  LinkParams p;
  p.latency = microseconds(1.0);
  p.bandwidth_Bps = 1e9;
  EXPECT_THROW((void)p.transfer_time(-1), std::invalid_argument);
}

TEST(FabricProfile, InfinibandMatchesPaperParameters) {
  const FabricProfile f = FabricProfile::infiniband_qdr();
  // Asymptotic internode bandwidth ~3 GB/s (the paper's bnet).
  EXPECT_DOUBLE_EQ(f.params(LinkClass::inter_node).bandwidth_Bps, 3.0e9);
  // Eager limit: 16384 doubles = 131072 B.
  EXPECT_EQ(f.eager_limit_bytes, 131072);
  // Hierarchy: intra-socket beats inter-socket beats inter-node on latency.
  EXPECT_LT(f.params(LinkClass::intra_socket).latency,
            f.params(LinkClass::inter_socket).latency);
  EXPECT_LT(f.params(LinkClass::inter_socket).latency,
            f.params(LinkClass::inter_node).latency);
}

TEST(FabricProfile, OmnipathFasterLinkHigherOverhead) {
  const FabricProfile ib = FabricProfile::infiniband_qdr();
  const FabricProfile opa = FabricProfile::omnipath();
  EXPECT_GT(opa.params(LinkClass::inter_node).bandwidth_Bps,
            ib.params(LinkClass::inter_node).bandwidth_Bps);
  // The CPU-hungry Omni-Path driver shows up as per-message overhead.
  EXPECT_GT(opa.params(LinkClass::inter_node).overhead,
            ib.params(LinkClass::inter_node).overhead);
}

TEST(FabricProfile, IdealIsHomogeneous) {
  const FabricProfile f = FabricProfile::ideal(microseconds(1.0), 5e9);
  for (int c = 0; c < kLinkClassCount; ++c) {
    const auto& p = f.link[static_cast<std::size_t>(c)];
    EXPECT_EQ(p.latency, microseconds(1.0));
    EXPECT_DOUBLE_EQ(p.bandwidth_Bps, 5e9);
    EXPECT_EQ(p.overhead, Duration::zero());
    EXPECT_EQ(p.gap, Duration::zero());
  }
}

TEST(FabricProfile, MessageTimeOrderingAcrossClasses) {
  // A fixed-size message must be fastest intra-socket and slowest
  // inter-node on both real profiles.
  for (const auto& f :
       {FabricProfile::infiniband_qdr(), FabricProfile::omnipath()}) {
    const std::int64_t bytes = 8192;
    EXPECT_LT(f.params(LinkClass::intra_socket).transfer_time(bytes),
              f.params(LinkClass::inter_node).transfer_time(bytes));
  }
}

}  // namespace
}  // namespace iw::net
