// Tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace iw::sim {
namespace {

TEST(Engine, ClockAdvancesWithEvents) {
  Engine eng;
  std::vector<std::int64_t> times;
  eng.after(Duration{100}, [&] { times.push_back(eng.now().ns()); });
  eng.after(Duration{50}, [&] { times.push_back(eng.now().ns()); });
  eng.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{50, 100}));
  EXPECT_EQ(eng.now().ns(), 100);
  EXPECT_EQ(eng.events_processed(), 2u);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  int fired = 0;
  eng.after(Duration{10}, [&] {
    ++fired;
    eng.after(Duration{10}, [&] {
      ++fired;
      eng.after(Duration{10}, [&] { ++fired; });
    });
  });
  eng.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(eng.now().ns(), 30);
}

TEST(Engine, ZeroDelayEventFiresAtSameTime) {
  Engine eng;
  std::vector<int> order;
  eng.after(Duration{5}, [&] {
    order.push_back(1);
    eng.after(Duration::zero(), [&] { order.push_back(2); });
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now().ns(), 5);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.after(Duration{10}, [&] { ++fired; });
  eng.after(Duration{20}, [&] { ++fired; });
  eng.after(Duration{30}, [&] { ++fired; });
  eng.run_until(SimTime{20});
  EXPECT_EQ(fired, 2);  // the t=20 event still fires
  EXPECT_EQ(eng.events_pending(), 1u);
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, StopExitsLoop) {
  Engine eng;
  int fired = 0;
  eng.after(Duration{1}, [&] {
    ++fired;
    eng.stop();
  });
  eng.after(Duration{2}, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(eng.stopped());
  eng.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PastSchedulingRejected) {
  Engine eng;
  eng.after(Duration{10}, [&] {
    EXPECT_THROW(eng.at(SimTime{5}, [] {}), std::invalid_argument);
  });
  eng.run();
  EXPECT_THROW(eng.after(Duration{-1}, [] {}), std::invalid_argument);
}

// Regression for the batch-drain fast path: stop() inside a same-timestamp
// batch must not drop the batch's remaining events — they stay pending and
// fire on resume, still in (time, seq) order.
TEST(Engine, StopMidBatchKeepsRemainingEvents) {
  Engine eng;
  std::vector<int> order;
  eng.at(SimTime{5}, [&] {
    order.push_back(0);
    eng.stop();
  });
  eng.at(SimTime{5}, [&] { order.push_back(1); });
  eng.at(SimTime{5}, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(eng.events_pending(), 2u);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(eng.now().ns(), 5);
}

TEST(Engine, PeakPendingTracksCalendarPopulation) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.at(SimTime{10 + i}, [] {});
  for (int i = 0; i < 3; ++i) eng.at(SimTime{10}, [] {});  // same-time chain
  EXPECT_EQ(eng.peak_events_pending(), 10u);
  eng.run();
  EXPECT_EQ(eng.peak_events_pending(), 10u);
  EXPECT_EQ(eng.events_processed(), 10u);
}

TEST(Engine, DeterministicTieOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i)
    eng.at(SimTime{100}, [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace iw::sim
