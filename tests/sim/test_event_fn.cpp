// Tests for EventFn, the small-buffer move-only callable of the engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "sim/event.hpp"

namespace iw::sim {
namespace {

TEST(EventFn, DefaultIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn == nullptr);
}

TEST(EventFn, SmallClosureIsInline) {
  int x = 0;
  EventFn fn = [&x] { ++x; };
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(x, 2);
}

TEST(EventFn, LargeClosureFallsBackToHeap) {
  struct Big {
    std::uint64_t words[16];  // 128 bytes > kInlineBytes
  };
  Big big{};
  big.words[0] = 7;
  std::uint64_t out = 0;
  EventFn fn = [big, &out] { out = big.words[0]; };
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(out, 7u);
}

TEST(EventFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  EventFn a = [counter] { ++*counter; };
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
  EXPECT_EQ(counter.use_count(), 2);  // local + the one inside b
}

TEST(EventFn, MoveAssignDestroysPreviousTarget) {
  auto held = std::make_shared<int>(0);
  EventFn fn = [held] {};
  EXPECT_EQ(held.use_count(), 2);
  fn = EventFn{[] {}};
  EXPECT_EQ(held.use_count(), 1);  // the old closure was destroyed
}

TEST(EventFn, DestructorReleasesCapturedState) {
  auto held = std::make_shared<int>(0);
  {
    EventFn fn = [held] {};
    EXPECT_EQ(held.use_count(), 2);
  }
  EXPECT_EQ(held.use_count(), 1);
}

TEST(EventFn, AcceptsMoveOnlyCallables) {
  auto p = std::make_unique<int>(9);
  int out = 0;
  EventFn fn = [p = std::move(p), &out] { out = *p; };
  fn();
  EXPECT_EQ(out, 9);
}

TEST(EventFn, WrapsStdFunction) {
  int x = 0;
  std::function<void()> f = [&x] { x = 5; };
  EventFn fn = f;  // copies the std::function into the EventFn
  fn();
  EXPECT_EQ(x, 5);
  EXPECT_TRUE(f != nullptr);  // source untouched
}

TEST(EventFn, SelfMoveAssignIsSafe) {
  int x = 0;
  EventFn fn = [&x] { ++x; };
  EventFn& alias = fn;
  fn = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(x, 1);
}

}  // namespace
}  // namespace iw::sim
