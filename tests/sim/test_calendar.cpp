// Tests for the deterministic event calendar.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/calendar.hpp"

namespace iw::sim {
namespace {

TEST(Calendar, PopsInTimeOrder) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(SimTime{30}, [&] { order.push_back(3); });
  cal.schedule(SimTime{10}, [&] { order.push_back(1); });
  cal.schedule(SimTime{20}, [&] { order.push_back(2); });
  while (!cal.empty()) cal.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Calendar, TiesBreakByScheduleOrder) {
  Calendar cal;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    cal.schedule(SimTime{100}, [&order, i] { order.push_back(i); });
  while (!cal.empty()) cal.pop().fn();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Calendar, MixedTiesAndTimes) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(SimTime{5}, [&] { order.push_back(10); });
  cal.schedule(SimTime{5}, [&] { order.push_back(11); });
  cal.schedule(SimTime{1}, [&] { order.push_back(0); });
  cal.schedule(SimTime{5}, [&] { order.push_back(12); });
  while (!cal.empty()) cal.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11, 12}));
}

TEST(Calendar, NextTimeReportsEarliest) {
  Calendar cal;
  cal.schedule(SimTime{42}, [] {});
  cal.schedule(SimTime{7}, [] {});
  EXPECT_EQ(cal.next_time(), SimTime{7});
  EXPECT_EQ(cal.size(), 2u);
}

TEST(Calendar, EmptyAccessorsThrow) {
  Calendar cal;
  EXPECT_TRUE(cal.empty());
  EXPECT_THROW((void)cal.next_time(), std::invalid_argument);
  EXPECT_THROW((void)cal.pop(), std::invalid_argument);
}

TEST(Calendar, SequenceNumbersIncrease) {
  Calendar cal;
  const auto s1 = cal.schedule(SimTime{1}, [] {});
  const auto s2 = cal.schedule(SimTime{1}, [] {});
  EXPECT_LT(s1, s2);
}

// Regression for the (time, seq) contract under the slab-heap + same-time
// chaining rework: same-time events scheduled NON-consecutively (other
// timestamps in between) must still interleave purely by (time, seq).
TEST(Calendar, TieBreakSurvivesInterleavedScheduling) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(SimTime{5}, [&] { order.push_back(0); });   // seq 0
  cal.schedule(SimTime{9}, [&] { order.push_back(10); });  // seq 1
  cal.schedule(SimTime{5}, [&] { order.push_back(1); });   // seq 2
  cal.schedule(SimTime{2}, [&] { order.push_back(-1); });  // seq 3
  cal.schedule(SimTime{5}, [&] { order.push_back(2); });   // seq 4
  cal.schedule(SimTime{9}, [&] { order.push_back(11); });  // seq 5
  while (!cal.empty()) cal.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 10, 11}));
}

// Events appended to a same-time chain while it is being drained must fire
// after the already-pending events of that timestamp (larger seq).
TEST(Calendar, SameTimeScheduleDuringDrain) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(SimTime{5}, [&] {
    order.push_back(0);
    cal.schedule(SimTime{5}, [&] { order.push_back(2); });
  });
  cal.schedule(SimTime{5}, [&] { order.push_back(1); });
  while (!cal.empty()) cal.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Regression for the seed's pop-by-copy bug: pop() must MOVE the closure
// out — captured state must never be copied between schedule and fire.
TEST(Calendar, PopMovesTheClosureWithoutCopying) {
  struct CopyCounter {
    int* copies;
    CopyCounter(int* c) : copies(c) {}
    CopyCounter(const CopyCounter& o) : copies(o.copies) { ++*copies; }
    CopyCounter(CopyCounter&& o) noexcept : copies(o.copies) {}
    void operator()() const {}
  };
  int copies = 0;
  Calendar cal;
  cal.schedule(SimTime{1}, CopyCounter{&copies});
  Event ev = cal.pop();
  ev.fn();
  EXPECT_EQ(copies, 0);
}

TEST(Calendar, AcceptsMoveOnlyClosures) {
  Calendar cal;
  auto payload = std::make_unique<int>(42);
  int observed = 0;
  cal.schedule(SimTime{1}, [p = std::move(payload), &observed] {
    observed = *p;
  });
  cal.pop().fn();
  EXPECT_EQ(observed, 42);
}

TEST(Calendar, PopIfAtDrainsOnlyTheGivenTimestamp) {
  Calendar cal;
  int fired = 0;
  cal.schedule(SimTime{5}, [&] { ++fired; });
  cal.schedule(SimTime{5}, [&] { ++fired; });
  cal.schedule(SimTime{8}, [&] { ++fired; });
  EventFn fn;
  while (cal.pop_if_at(SimTime{5}, fn)) fn();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(cal.size(), 1u);
  EXPECT_FALSE(cal.pop_if_at(SimTime{7}, fn));
  EXPECT_TRUE(cal.pop_if_at(SimTime{8}, fn));
}

TEST(Calendar, PeakSizeCountsChainedEvents) {
  Calendar cal;
  for (int i = 0; i < 10; ++i) cal.schedule(SimTime{7}, [] {});
  for (int i = 0; i < 5; ++i) cal.schedule(SimTime{20 + i}, [] {});
  EXPECT_EQ(cal.size(), 15u);
  EXPECT_EQ(cal.peak_size(), 15u);
  while (!cal.empty()) cal.pop();
  EXPECT_EQ(cal.peak_size(), 15u);
  EXPECT_EQ(cal.size(), 0u);
}

// Stress the chain/heap interaction deterministically: a pseudo-random mix
// of duplicate and unique timestamps must drain in exact (time, seq) order.
TEST(Calendar, RandomizedMixDrainsInTimeSeqOrder) {
  Calendar cal;
  std::uint64_t rng = 0xC0FFEE123456789ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  struct Fired {
    std::int64_t when;
    std::uint64_t seq;
  };
  std::vector<Fired> fired;
  std::vector<std::pair<std::int64_t, std::uint64_t>> scheduled;
  for (int i = 0; i < 2000; ++i) {
    const auto when = static_cast<std::int64_t>(next() % 64);  // many dups
    const auto seq = cal.schedule(SimTime{when}, [] {});
    scheduled.emplace_back(when, seq);
  }
  while (!cal.empty()) {
    Event ev = cal.pop();
    fired.push_back(Fired{ev.when.ns(), ev.seq});
  }
  std::sort(scheduled.begin(), scheduled.end());
  ASSERT_EQ(fired.size(), scheduled.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i].when, scheduled[i].first) << "at index " << i;
    EXPECT_EQ(fired[i].seq, scheduled[i].second) << "at index " << i;
  }
}

// Drive the slab/heap/time-index machinery through heavy churn with the
// structural audit engaged at every step. audit() is a no-op in plain
// Release, so this test is cheap there and exhaustive in Debug/
// IDLEWAVE_AUDIT/sanitizer builds: free-list integrity, heap order, chain
// ordering, and the live-count reconciliation all hold at every
// intermediate state, including across reset() and slab reuse.
TEST(Calendar, AuditHoldsThroughChurnAndReset) {
  Calendar cal;
  std::uint64_t rng = 0x1D1EAF0000C0DEull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 3; ++round) {
    // Interleave schedules (with many duplicate timestamps, so chains form)
    // and pops (so slots recycle LIFO while chains are live).
    for (int i = 0; i < 600; ++i) {
      cal.schedule(SimTime{static_cast<std::int64_t>(next() % 32)}, [] {});
      if (i % 3 == 2) {
        (void)cal.pop();
        (void)cal.pop();
      }
      cal.audit();
    }
    while (!cal.empty()) {
      (void)cal.pop();
      cal.audit();
    }
    cal.reset();  // runs its own IW_AUDIT(audit()) and must leave pristine
    cal.audit();
    EXPECT_EQ(cal.size(), 0u);
    EXPECT_EQ(cal.peak_size(), 0u);
  }
}

}  // namespace
}  // namespace iw::sim
