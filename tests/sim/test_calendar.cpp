// Tests for the deterministic event calendar.
#include <gtest/gtest.h>

#include <vector>

#include "sim/calendar.hpp"

namespace iw::sim {
namespace {

TEST(Calendar, PopsInTimeOrder) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(SimTime{30}, [&] { order.push_back(3); });
  cal.schedule(SimTime{10}, [&] { order.push_back(1); });
  cal.schedule(SimTime{20}, [&] { order.push_back(2); });
  while (!cal.empty()) cal.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Calendar, TiesBreakByScheduleOrder) {
  Calendar cal;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    cal.schedule(SimTime{100}, [&order, i] { order.push_back(i); });
  while (!cal.empty()) cal.pop().fn();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Calendar, MixedTiesAndTimes) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(SimTime{5}, [&] { order.push_back(10); });
  cal.schedule(SimTime{5}, [&] { order.push_back(11); });
  cal.schedule(SimTime{1}, [&] { order.push_back(0); });
  cal.schedule(SimTime{5}, [&] { order.push_back(12); });
  while (!cal.empty()) cal.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11, 12}));
}

TEST(Calendar, NextTimeReportsEarliest) {
  Calendar cal;
  cal.schedule(SimTime{42}, [] {});
  cal.schedule(SimTime{7}, [] {});
  EXPECT_EQ(cal.next_time(), SimTime{7});
  EXPECT_EQ(cal.size(), 2u);
}

TEST(Calendar, EmptyAccessorsThrow) {
  Calendar cal;
  EXPECT_TRUE(cal.empty());
  EXPECT_THROW((void)cal.next_time(), std::invalid_argument);
  EXPECT_THROW((void)cal.pop(), std::invalid_argument);
}

TEST(Calendar, SequenceNumbersIncrease) {
  Calendar cal;
  const auto s1 = cal.schedule(SimTime{1}, [] {});
  const auto s2 = cal.schedule(SimTime{1}, [] {});
  EXPECT_LT(s1, s2);
}

}  // namespace
}  // namespace iw::sim
