// Tests for the protocol flight recorder ring (obs::Tracer).
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "obs/tracer.hpp"
#include "support/time.hpp"

namespace iw::obs {
namespace {

TEST(Tracer, StartsEmptyWithRequestedCapacity) {
  Tracer t(16);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), 16u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_TRUE(t.drain_ordered().empty());
}

TEST(Tracer, DefaultCapacityIsLarge) {
  Tracer t;
  EXPECT_EQ(t.capacity(), Tracer::kDefaultCapacity);
}

TEST(Tracer, ZeroCapacityRefused) {
  EXPECT_THROW(Tracer{0}, std::exception);
}

TEST(Tracer, RecordsFieldsAndDefaults) {
  Tracer t(8);
  t.record(SimTime{100}, TraceEvent::kEagerSend, /*rank=*/2, /*peer=*/3,
           /*bytes=*/1024, /*slot=*/7);
  t.record(SimTime{200}, TraceEvent::kWaitBegin, /*rank=*/5);
  const auto out = t.drain_ordered();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].t, SimTime{100});
  EXPECT_EQ(out[0].ev, TraceEvent::kEagerSend);
  EXPECT_EQ(out[0].rank, 2);
  EXPECT_EQ(out[0].peer, 3);
  EXPECT_EQ(out[0].bytes, 1024);
  EXPECT_EQ(out[0].slot, 7u);
  // Omitted arguments take the documented neutral values.
  EXPECT_EQ(out[1].peer, -1);
  EXPECT_EQ(out[1].bytes, 0);
  EXPECT_EQ(out[1].slot, Tracer::kNoSlot);
}

TEST(Tracer, WrapOverwritesOldestAndCountsDropped) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i) {
    t.record(SimTime{i}, TraceEvent::kMatch, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto out = t.drain_ordered();
  ASSERT_EQ(out.size(), 4u);
  // The survivors are the newest four, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].rank, 6 + i);
  }
}

TEST(Tracer, DrainIsNonDestructiveClearForgets) {
  Tracer t(4);
  t.record(SimTime{1}, TraceEvent::kRunBegin, -1);
  EXPECT_EQ(t.drain_ordered().size(), 1u);
  EXPECT_EQ(t.drain_ordered().size(), 1u);  // drain copies, ring unchanged
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.capacity(), 4u);  // storage retained
  t.record(SimTime{2}, TraceEvent::kRunEnd, -1);
  const auto out = t.drain_ordered();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ev, TraceEvent::kRunEnd);
}

TEST(Tracer, EventNamesAreUniqueLowerSnake) {
  std::set<std::string> seen;
  for (int i = 0; i < static_cast<int>(TraceEvent::kCount); ++i) {
    const std::string name = to_string(static_cast<TraceEvent>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << "event " << i << " has no name";
    for (const char c : name) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) || c == '_')
          << "event " << i << " name " << name;
    }
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_STREQ(to_string(TraceEvent::kCount), "unknown");
}

}  // namespace
}  // namespace iw::obs
