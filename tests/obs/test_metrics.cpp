// Tests for the unified metrics registry: X-macro table integrity,
// counter/gauge semantics, snapshot deltas, JSON export, and the
// engine/tracer publish seams.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"

namespace iw::obs {
namespace {

TEST(Metrics, TableNamesAreUniqueAndDotted) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const std::string name = metric_name(static_cast<MetricId>(i));
    EXPECT_NE(name.find('.'), std::string::npos) << name;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate metric " << name;
  }
}

TEST(Metrics, CounterAddsGaugeSets) {
  MetricsRegistry reg;
  reg.add(MetricId::transport_eager_sends, 3);
  reg.add(MetricId::transport_eager_sends, 4);
  EXPECT_EQ(reg.counter(MetricId::transport_eager_sends), 7u);

  reg.set(MetricId::pool_allocations, 5.0);
  reg.set(MetricId::pool_allocations, 2.0);
  EXPECT_EQ(reg.gauge(MetricId::pool_allocations), 2.0);

  // set_max combines publishes from multiple workers: peaks never shrink.
  reg.set_max(MetricId::engine_calendar_peak, 10.0);
  reg.set_max(MetricId::engine_calendar_peak, 6.0);
  EXPECT_EQ(reg.gauge(MetricId::engine_calendar_peak), 10.0);

  reg.clear();
  EXPECT_EQ(reg.counter(MetricId::transport_eager_sends), 0u);
  EXPECT_EQ(reg.gauge(MetricId::pool_allocations), 0.0);
}

TEST(Metrics, SnapshotDeltaSubtractsCountersKeepsGauges) {
  MetricsRegistry reg;
  reg.add(MetricId::engine_events_processed, 100);
  reg.set(MetricId::engine_calendar_peak, 8.0);
  const MetricsSnapshot before = reg.snapshot();

  reg.add(MetricId::engine_events_processed, 42);
  reg.set(MetricId::engine_calendar_peak, 5.0);
  const MetricsSnapshot after = reg.snapshot();

  const MetricsSnapshot d = after.delta(before);
  EXPECT_EQ(d.counter(MetricId::engine_events_processed), 42u);
  EXPECT_EQ(d.gauge(MetricId::engine_calendar_peak), 5.0);

  // A cleared registry must not produce wrapped counter deltas.
  reg.clear();
  const MetricsSnapshot cleared = reg.snapshot();
  EXPECT_EQ(cleared.delta(before).counter(MetricId::engine_events_processed),
            0u);
}

TEST(Metrics, JsonCarriesEveryMetricOnce) {
  MetricsRegistry reg;
  reg.add(MetricId::transport_rendezvous_sends, 11);
  reg.set(MetricId::tracer_records, 3.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const std::string key =
        std::string{"\""} + metric_name(static_cast<MetricId>(i)) + "\":";
    const auto first = json.find(key);
    ASSERT_NE(first, std::string::npos) << key;
    EXPECT_EQ(json.find(key, first + 1), std::string::npos)
        << key << " appears twice";
  }
  EXPECT_NE(json.find("\"transport.rendezvous_sends\":11"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tracer.records\":3"), std::string::npos) << json;
}

TEST(Metrics, PublishEngineAndTracer) {
  sim::Engine engine;
  int fired = 0;
  engine.at(SimTime{10}, [&] { ++fired; });
  engine.at(SimTime{20}, [&] { ++fired; });
  engine.run();
  ASSERT_EQ(fired, 2);

  Tracer tracer(8);
  tracer.record(SimTime{1}, TraceEvent::kRunBegin, -1);
  tracer.record(SimTime{2}, TraceEvent::kRunEnd, -1);

  MetricsRegistry reg;
  reg.publish(engine);
  reg.publish(tracer);
  EXPECT_EQ(reg.counter(MetricId::engine_events_processed),
            engine.events_processed());
  EXPECT_GE(reg.counter(MetricId::engine_events_processed), 2u);
  EXPECT_EQ(reg.gauge(MetricId::tracer_records), 2.0);
  EXPECT_EQ(reg.gauge(MetricId::tracer_dropped), 0.0);
}

}  // namespace
}  // namespace iw::obs
