// Tests for the Chrome-trace exporter: flow-arrow pairing, FIFO matching,
// orphan tolerance, engine-track routing, and per-track timestamp order —
// all against a hand-built mpi::Trace plus hand-built recorder records.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace_io.hpp"
#include "mpi/trace.hpp"
#include "obs/tracer.hpp"

namespace iw::core {
namespace {

mpi::Trace two_rank_trace() {
  mpi::Trace trace(2);
  trace.add_segment(0, {mpi::SegKind::compute, SimTime{0}, SimTime{5000}, 0,
                        Duration::zero()});
  trace.add_segment(1, {mpi::SegKind::wait, SimTime{1000}, SimTime{4000}, 0,
                        Duration::zero()});
  trace.set_finish(0, SimTime{5000});
  trace.set_finish(1, SimTime{4000});
  return trace;
}

std::string render(const mpi::Trace& trace,
                   const std::vector<obs::TraceRecord>& records) {
  std::ostringstream out;
  write_chrome_trace(trace, records, out);
  return out.str();
}

int count(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (auto pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

obs::TraceRecord rec(std::int64_t t_ns, obs::TraceEvent ev, int rank,
                     int peer = -1, std::int64_t bytes = 0) {
  return obs::TraceRecord{SimTime{t_ns}, ev, rank, peer, bytes,
                          obs::Tracer::kNoSlot};
}

TEST(ChromeTrace, MetadataNamesEveryTrack) {
  const std::string json = render(two_rank_trace(), {});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"idlewave cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
  // The engine track sits one past the last rank.
  EXPECT_NE(json.find("\"tid\":2,\"args\":{\"name\":\"engine\"}"),
            std::string::npos);
}

TEST(ChromeTrace, SegmentsBecomeCompleteEvents) {
  const std::string json = render(two_rank_trace(), {});
  EXPECT_NE(json.find("\"name\":\"compute\",\"cat\":\"segment\",\"ph\":\"X\","
                      "\"pid\":0,\"tid\":0,\"ts\":0.000,\"dur\":5.000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"wait\""), std::string::npos);
}

TEST(ChromeTrace, MirroredPairMakesOneFlowArrow) {
  // Eager send on rank 0 at t=1000, mirrored arrival on rank 1 at t=2000.
  const std::string json = render(
      two_rank_trace(),
      {rec(1000, obs::TraceEvent::kEagerSend, 0, 1, 64),
       rec(2000, obs::TraceEvent::kEagerRecv, 1, 0, 64)});
  EXPECT_EQ(count(json, "\"ph\":\"s\""), 1);
  EXPECT_EQ(count(json, "\"ph\":\"f\""), 1);
  // Start leg on the sender's track at the send instant, end leg on the
  // receiver's track at the arrival instant, sharing one id.
  EXPECT_NE(json.find("\"name\":\"eager\",\"cat\":\"flow\",\"ph\":\"s\","
                      "\"id\":1,\"pid\":0,\"tid\":0,\"ts\":1.000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"eager\",\"cat\":\"flow\",\"ph\":\"f\","
                      "\"bp\":\"e\",\"id\":1,\"pid\":0,\"tid\":1,"
                      "\"ts\":2.000"),
            std::string::npos)
      << json;
}

TEST(ChromeTrace, FifoMatchingPairsInWireOrder) {
  // Two same-pair same-size sends, two arrivals: first arrival takes the
  // first send (FIFO), so flow 1 spans 1000->3000 and flow 2 spans
  // 2000->4000.
  const std::string json = render(
      two_rank_trace(),
      {rec(1000, obs::TraceEvent::kRtsSend, 0, 1, 256),
       rec(2000, obs::TraceEvent::kRtsSend, 0, 1, 256),
       rec(3000, obs::TraceEvent::kRtsRecv, 1, 0, 256),
       rec(4000, obs::TraceEvent::kRtsRecv, 1, 0, 256)});
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":1,\"pid\":0,\"tid\":0,"
                      "\"ts\":1.000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":1,\"pid\":0,"
                      "\"tid\":1,\"ts\":3.000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":2,\"pid\":0,\"tid\":0,"
                      "\"ts\":2.000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":2,\"pid\":0,"
                      "\"tid\":1,\"ts\":4.000"),
            std::string::npos)
      << json;
}

TEST(ChromeTrace, OrphanArrivalGetsNoArrow) {
  // An arrival whose send was evicted from the recorder ring renders as an
  // instant but produces no flow legs; different bytes also never match.
  const std::string json = render(
      two_rank_trace(),
      {rec(1000, obs::TraceEvent::kEagerSend, 0, 1, 64),
       rec(2000, obs::TraceEvent::kEagerRecv, 1, 0, 128)});
  EXPECT_NE(json.find("\"name\":\"eager_recv\""), std::string::npos);
  EXPECT_EQ(count(json, "\"ph\":\"s\""), 0);
  EXPECT_EQ(count(json, "\"ph\":\"f\""), 0);
}

TEST(ChromeTrace, GetPairMatchesUnmirrored) {
  // RDMA get records both ends on the issuing rank (rank=1 peer=0 twice);
  // the arrow must still form, on the issuing rank's track.
  const std::string json = render(
      two_rank_trace(),
      {rec(1000, obs::TraceEvent::kGetSend, 1, 0, 512),
       rec(3000, obs::TraceEvent::kGetRecv, 1, 0, 512)});
  EXPECT_NE(json.find("\"name\":\"get\",\"cat\":\"flow\",\"ph\":\"s\","
                      "\"id\":1,\"pid\":0,\"tid\":1,\"ts\":1.000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"get\",\"cat\":\"flow\",\"ph\":\"f\","
                      "\"bp\":\"e\",\"id\":1,\"pid\":0,\"tid\":1,"
                      "\"ts\":3.000"),
            std::string::npos)
      << json;
}

TEST(ChromeTrace, EngineRecordsLandOnEngineTrack) {
  const std::string json = render(
      two_rank_trace(), {rec(0, obs::TraceEvent::kRunBegin, -1),
                         rec(9000, obs::TraceEvent::kRunEnd, -1)});
  EXPECT_NE(json.find("\"name\":\"run_begin\",\"cat\":\"protocol\",\"ph\":"
                      "\"i\",\"s\":\"t\",\"pid\":0,\"tid\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"run_end\""), std::string::npos);
}

TEST(ChromeTrace, TimestampsMonotonePerTrack) {
  // Records handed over out of track order (rank 1 first) must still come
  // out sorted per tid.
  const std::string json = render(
      two_rank_trace(),
      {rec(8000, obs::TraceEvent::kWaitEnd, 1),
       rec(7000, obs::TraceEvent::kPostSend, 0, 1, 64),
       rec(100, obs::TraceEvent::kPostRecv, 1, 0, 64),
       rec(50, obs::TraceEvent::kMatch, 0, 1, 64)});
  std::istringstream in(json);
  std::string line;
  int last_tid = -1;
  double last_ts = -1.0;
  int timed_events = 0;
  while (std::getline(in, line)) {
    if (line.find("\"ph\":\"M\"") != std::string::npos) continue;
    const auto tid_pos = line.find("\"tid\":");
    const auto ts_pos = line.find("\"ts\":");
    if (tid_pos == std::string::npos || ts_pos == std::string::npos) continue;
    const int tid = std::stoi(line.substr(tid_pos + 6));
    const double ts = std::stod(line.substr(ts_pos + 5));
    if (tid != last_tid) {
      last_tid = tid;
      last_ts = -1.0;
    } else {
      EXPECT_GE(tid, last_tid) << "tracks interleaved: " << line;
    }
    EXPECT_GE(ts, last_ts) << "time went backwards on tid " << tid << ": "
                           << line;
    last_ts = ts;
    ++timed_events;
  }
  EXPECT_GE(timed_events, 6);  // 2 segments + 4 instants
}

}  // namespace
}  // namespace iw::core
