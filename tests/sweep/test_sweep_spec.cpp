// Tests for sweep-spec expansion and the scenario registry.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sweep/scenario.hpp"
#include "sweep/spec.hpp"

namespace iw::sweep {
namespace {

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.delay_ms = {6, 12};
  spec.msg_bytes = {8192, 262144};
  spec.np = {8};
  spec.noise_E_percent = {0, 10};
  spec.steps = 8;
  spec.system_noise = "none";
  return spec;
}

TEST(SweepSpec, PointCountIsAxisProduct) {
  const SweepSpec spec = tiny_spec();
  EXPECT_EQ(spec.points(), 8u);
  EXPECT_EQ(expand(spec).size(), 8u);
}

TEST(SweepSpec, IndicesAreSequentialAndAxesEnumerate) {
  const auto points = expand(tiny_spec());
  std::set<std::tuple<double, std::int64_t, double>> combos;
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    combos.insert({points[i].delay_ms, points[i].msg_bytes,
                   points[i].noise_E_percent});
  }
  EXPECT_EQ(combos.size(), points.size());  // every combination distinct
}

TEST(SweepSpec, ExpansionIsDeterministicWithDistinctSeeds) {
  const auto a = expand(tiny_spec());
  const auto b = expand(tiny_spec());
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].exp.cluster.seed, b[i].exp.cluster.seed);
    seeds.insert(a[i].exp.cluster.seed);
  }
  // Every point owns an independent stream.
  EXPECT_EQ(seeds.size(), a.size());

  SweepSpec other = tiny_spec();
  other.campaign_seed ^= 0xABCD;
  const auto c = expand(other);
  EXPECT_NE(c.front().exp.cluster.seed, a.front().exp.cluster.seed);
}

TEST(SweepSpec, ExperimentsReflectAxisValues) {
  const auto points = expand(tiny_spec());
  for (const SweepPoint& pt : points) {
    EXPECT_EQ(pt.exp.ring.ranks, pt.np);
    EXPECT_EQ(pt.exp.ring.msg_bytes, pt.msg_bytes);
    ASSERT_EQ(pt.exp.delays.size(), 1u);
    EXPECT_NEAR(pt.exp.delays.front().duration.ms(), pt.delay_ms, 1e-9);
    // np/3 injection keeps both branches visible on the open chain.
    EXPECT_EQ(pt.exp.delays.front().rank, pt.np / 3);
    if (pt.noise_E_percent > 0)
      EXPECT_EQ(pt.exp.injected_noise.kind,
                noise::NoiseSpec::Kind::exponential);
    else
      EXPECT_EQ(pt.exp.injected_noise.kind, noise::NoiseSpec::Kind::none);
  }
}

TEST(SweepSpec, PpnAxisSwitchesPlacement) {
  SweepSpec spec = tiny_spec();
  spec.delay_ms = {12};
  spec.msg_bytes = {8192};
  spec.noise_E_percent = {0};
  spec.np = {20};
  spec.ppn = {1, 10};
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 2u);
  // PPN=1: one node per rank; PPN=10: ten ranks share each socket.
  EXPECT_NE(net::Topology(points[0].exp.cluster.topo).nodes(),
            net::Topology(points[1].exp.cluster.topo).nodes());
}

TEST(SweepSpec, Grid2dExpansionBuildsCenterInjectedGrids) {
  SweepSpec spec;
  spec.workload = Workload::grid2d;
  spec.delay_ms = {10};
  spec.np = {25};
  spec.steps = 12;
  spec.system_noise = "none";
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 1u);
  ASSERT_TRUE(points[0].exp.grid.has_value());
  EXPECT_EQ(points[0].exp.grid->px, 5);
  EXPECT_EQ(points[0].exp.grid->py, 5);
  // Center of a 5x5 grid is (2, 2) -> rank 12 row-major.
  ASSERT_EQ(points[0].exp.delays.size(), 1u);
  EXPECT_EQ(points[0].exp.delays.front().rank, 12);
}

TEST(SweepSpec, RejectsBadInput) {
  SweepSpec spec = tiny_spec();
  spec.delay_ms.clear();
  EXPECT_THROW((void)expand(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.np = {0};
  EXPECT_THROW((void)expand(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.workload = Workload::grid2d;
  spec.np = {24};  // not a perfect square
  EXPECT_THROW((void)expand(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.workload = Workload::grid2d;
  spec.np = {16};
  spec.direction = {workload::Direction::unidirectional,
                    workload::Direction::bidirectional};
  // Halo exchange has no direction flavor; a multi-valued axis would
  // duplicate points under distinct labels.
  EXPECT_THROW((void)expand(spec), std::invalid_argument);
}

TEST(ScenarioRegistry, CatalogHasUniqueFindableNames) {
  const auto& catalog = scenario_catalog();
  ASSERT_FALSE(catalog.empty());
  std::set<std::string> names;
  for (const Scenario& s : catalog) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate: " << s.name;
    EXPECT_EQ(find_scenario(s.name), &s);
    EXPECT_FALSE(s.summary.empty());
    EXPECT_FALSE(s.paper_ref.empty());
  }
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
  EXPECT_EQ(scenario_names().size(), catalog.size());
}

TEST(ScenarioRegistry, EveryScenarioExpands) {
  for (const Scenario& s : scenario_catalog()) {
    const auto points = expand(s.spec);
    EXPECT_EQ(points.size(), s.spec.points()) << s.name;
    EXPECT_GE(points.size(), 1u) << s.name;
  }
}

TEST(ScenarioRegistry, SpeedVsDelayIsACampaignScaleScenario) {
  const Scenario* s = find_scenario("speed_vs_delay");
  ASSERT_NE(s, nullptr);
  EXPECT_GE(s->spec.points(), 50u);
}

}  // namespace
}  // namespace iw::sweep
