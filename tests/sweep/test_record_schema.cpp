// Column-drift guard: the typed record schema, record_fields() and
// record_columns() must agree in size, order and names, and serialization
// must round-trip — so a new SweepRecord field cannot ship half-serialized
// (present in the struct, missing from sinks/goldens, or vice versa).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sweep/record.hpp"

namespace iw::sweep {
namespace {

/// A record with every field set to a distinctive non-default value, so a
/// get/set mix-up between two columns cannot cancel out.
SweepRecord distinctive_record() {
  SweepRecord rec;
  rec.index = 41;
  rec.delay_ms = 12.5;
  rec.msg_bytes = 174080;
  rec.np = 18;
  rec.ppn = 10;
  rec.noise_E_percent = 7.25;
  rec.workload = "grid2d";
  rec.direction = "bidirectional";
  rec.boundary = "periodic";
  rec.seed = 18446744073709551615ull;
  rec.protocol = "rendezvous";
  rec.v_up_ranks_per_sec = 331.0625;
  rec.v_down_ranks_per_sec = 165.5;
  rec.v_eq2_ranks_per_sec = 333.125;
  rec.decay_up_us_per_rank = 86.875;
  rec.survival_up_hops = 9;
  rec.survival_down_hops = 4;
  rec.front_r2_up = 0.998046875;
  rec.front_rmse_up_us = 148.25;
  rec.cycle_us = 3322.75;
  rec.makespan_ms = 86.1875;
  rec.events_processed = 1941;
  rec.peak_events_pending = 37;
  return rec;
}

TEST(RecordSchema, SchemaFieldsAndColumnsAgree) {
  const auto& schema = record_schema();
  const auto fields = record_fields(SweepRecord{});
  const auto columns = record_columns();
  ASSERT_EQ(schema.size(), fields.size());
  ASSERT_EQ(schema.size(), columns.size());
  for (std::size_t i = 0; i < schema.size(); ++i) {
    EXPECT_EQ(schema[i].name, fields[i].name) << "position " << i;
    EXPECT_EQ(schema[i].name, columns[i]) << "position " << i;
    EXPECT_EQ(schema[i].json_quoted, fields[i].is_string) << schema[i].name;
  }
}

TEST(RecordSchema, ColumnNamesAreUniqueAndResolvable) {
  std::set<std::string> seen;
  for (const ColumnMeta& meta : record_schema()) {
    EXPECT_TRUE(seen.insert(meta.name).second)
        << "duplicate column " << meta.name;
    const auto index = column_index(meta.name);
    ASSERT_TRUE(index.has_value()) << meta.name;
    EXPECT_EQ(record_schema()[*index].name, std::string(meta.name));
  }
  EXPECT_FALSE(column_index("no_such_column").has_value());
}

TEST(RecordSchema, RowRoundTripIsIdentity) {
  // CSV -> parse -> CSV: serializing, re-parsing and re-serializing a
  // record must reproduce the exact same row, for every column.
  const SweepRecord rec = distinctive_record();
  std::vector<std::string> row;
  for (std::size_t c = 0; c < record_schema().size(); ++c)
    row.push_back(column_value(rec, c));

  const SweepRecord parsed = record_from_row(row);
  for (std::size_t c = 0; c < record_schema().size(); ++c)
    EXPECT_EQ(column_value(parsed, c), row[c])
        << "column " << record_schema()[c].name;
}

TEST(RecordSchema, RecordFieldsMatchColumnValues) {
  const SweepRecord rec = distinctive_record();
  const auto fields = record_fields(rec);
  for (std::size_t c = 0; c < fields.size(); ++c)
    EXPECT_EQ(fields[c].value, column_value(rec, c)) << fields[c].name;
}

TEST(RecordSchema, SetColumnRejectsGarbage) {
  SweepRecord rec;
  const std::size_t np = *column_index("np");
  const std::size_t delay = *column_index("delay_ms");
  const std::size_t seed = *column_index("seed");
  EXPECT_THROW(set_column(rec, np, "12abc"), std::invalid_argument);
  EXPECT_THROW(set_column(rec, np, ""), std::invalid_argument);
  EXPECT_THROW(set_column(rec, np, "99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(set_column(rec, delay, "1.2.3"), std::invalid_argument);
  EXPECT_THROW(set_column(rec, seed, "-1"), std::invalid_argument);
  EXPECT_THROW(set_column(rec, np, "4,5"), std::invalid_argument);
}

TEST(RecordSchema, RowSizeMismatchRejected) {
  std::vector<std::string> row(record_schema().size() - 1, "0");
  EXPECT_THROW(record_from_row(row), std::invalid_argument);
  row.assign(record_schema().size() + 1, "0");
  EXPECT_THROW(record_from_row(row), std::invalid_argument);
}

TEST(RecordSchema, EveryColumnHasAResolvableToleranceClass) {
  // The verify differ dispatches on these two enums; a new column always
  // declares both, so this is mostly documentation — but it pins that
  // exact-class columns include the reproducibility-critical identity
  // fields and approx never applies to text.
  for (const ColumnMeta& meta : record_schema()) {
    if (meta.type == ColumnType::text) {
      EXPECT_EQ(meta.tolerance, ColumnTolerance::exact) << meta.name;
    }
  }
  for (const char* must_be_exact :
       {"index", "seed", "protocol", "events_processed",
        "peak_events_pending"}) {
    const auto c = column_index(must_be_exact);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(record_schema()[*c].tolerance, ColumnTolerance::exact)
        << must_be_exact;
  }
}

}  // namespace
}  // namespace iw::sweep
