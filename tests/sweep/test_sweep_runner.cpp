// Tests for the sharded campaign runner and the structured result sinks:
// thread-count invariance (byte-identical CSV/JSONL), in-order streaming,
// cancellation without loss of completed records, and record reduction.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/record.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace iw::sweep {
namespace {

/// A small but non-trivial campaign: 12 points over three axes, cheap
/// enough that the full suite stays fast.
SweepSpec tiny_campaign() {
  SweepSpec spec;
  spec.delay_ms = {6, 12};
  spec.msg_bytes = {8192, 262144};
  spec.noise_E_percent = {0, 10};
  spec.np = {8};
  spec.steps = 8;
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Records indices in arrival order (the runner serializes write() calls).
class IndexSink final : public RecordSink {
 public:
  void write(const SweepRecord& rec) override {
    indices.push_back(rec.index);
  }
  std::vector<std::uint64_t> indices;
};

TEST(SweepRunner, EightThreadsProduceByteIdenticalCsvAndJsonl) {
  const auto points = expand(tiny_campaign());
  const std::string csv1 = "sweep_t1.tmp.csv", csv8 = "sweep_t8.tmp.csv";
  const std::string jl1 = "sweep_t1.tmp.jsonl", jl8 = "sweep_t8.tmp.jsonl";

  for (const int threads : {1, 8}) {
    CsvSink csv(threads == 1 ? csv1 : csv8);
    JsonlSink jsonl(threads == 1 ? jl1 : jl8);
    RunnerOptions options;
    options.threads = threads;
    options.sinks = {&csv, &jsonl};
    const CampaignResult result = run_campaign(points, options);
    EXPECT_EQ(result.records.size(), points.size());
    EXPECT_FALSE(result.cancelled);
  }

  const std::string a = slurp(csv1), b = slurp(csv8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  const std::string c = slurp(jl1), d = slurp(jl8);
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c, d);
  for (const auto& path : {csv1, csv8, jl1, jl8}) std::remove(path.c_str());
}

TEST(SweepRunner, RecordsArriveAtSinksInPointOrder) {
  const auto points = expand(tiny_campaign());
  IndexSink sink;
  RunnerOptions options;
  options.threads = 8;
  options.sinks = {&sink};
  const CampaignResult result = run_campaign(points, options);
  ASSERT_EQ(sink.indices.size(), points.size());
  for (std::size_t i = 0; i < sink.indices.size(); ++i)
    EXPECT_EQ(sink.indices[i], i);
  for (std::size_t i = 0; i < result.records.size(); ++i)
    EXPECT_EQ(result.records[i].index, i);
}

TEST(SweepRunner, ProgressReportsEveryCompletionUpToTotal) {
  const auto points = expand(tiny_campaign());
  std::vector<std::size_t> seen;
  RunnerOptions options;
  options.threads = 3;
  options.on_progress = [&seen, &points](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, points.size());
    seen.push_back(done);
  };
  (void)run_campaign(points, options);
  ASSERT_EQ(seen.size(), points.size());
  // Completion counts are strictly increasing and end at the total.
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_GT(seen[i], seen[i - 1]);
  EXPECT_EQ(seen.back(), points.size());
}

TEST(SweepRunner, CancellationKeepsEveryCompletedRecord) {
  const auto points = expand(tiny_campaign());

  // Reference: the full run, for comparing per-point content.
  const CampaignResult full = run_campaign(points, RunnerOptions{});
  ASSERT_EQ(full.records.size(), points.size());

  std::atomic<bool> cancel{false};
  IndexSink sink;
  RunnerOptions options;
  options.threads = 2;
  options.cancel = &cancel;
  options.sinks = {&sink};
  options.on_progress = [&cancel](std::size_t done, std::size_t) {
    if (done >= 5) cancel.store(true);
  };
  const CampaignResult result = run_campaign(points, options);

  EXPECT_TRUE(result.cancelled);
  EXPECT_GE(result.records.size(), 5u);
  EXPECT_LT(result.records.size(), points.size());
  // Every completed record reached the sink, in ascending order, and its
  // content matches the uncancelled run of the same point bit-for-bit.
  ASSERT_EQ(sink.indices.size(), result.records.size());
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(sink.indices[i], result.records[i].index);
    if (i > 0) {
      EXPECT_GT(result.records[i].index, result.records[i - 1].index);
    }
    const SweepRecord& got = result.records[i];
    const SweepRecord& want = full.records[got.index];
    EXPECT_EQ(record_fields(got).size(), record_fields(want).size());
    const auto gf = record_fields(got);
    const auto wf = record_fields(want);
    for (std::size_t f = 0; f < gf.size(); ++f)
      EXPECT_EQ(gf[f].value, wf[f].value) << gf[f].name;
  }
}

TEST(SweepRunner, FailedPointRethrowsAndOnlyPrefixReachesSinks) {
  auto points = expand(tiny_campaign());
  // Poison point 2: a delay rank outside the ring makes build_ring throw.
  points[2].exp.delays.front().rank = 999;

  IndexSink sink;
  RunnerOptions options;
  options.threads = 4;
  options.sinks = {&sink};
  EXPECT_THROW((void)run_campaign(points, options), std::invalid_argument);
  // The sinks saw an untruncated prefix: nothing past the poisoned index.
  for (std::size_t i = 0; i < sink.indices.size(); ++i) {
    EXPECT_EQ(sink.indices[i], i);
    EXPECT_LT(sink.indices[i], 2u);
  }
}

TEST(SweepRunner, PreCancelledCampaignCompletesNothing) {
  const auto points = expand(tiny_campaign());
  std::atomic<bool> cancel{true};
  RunnerOptions options;
  options.threads = 4;
  options.cancel = &cancel;
  const CampaignResult result = run_campaign(points, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.total_points, points.size());
}

TEST(SweepRunner, ThreadCountInvarianceHoldsForGridCampaigns) {
  SweepSpec spec;
  spec.workload = Workload::grid2d;
  spec.delay_ms = {10};
  spec.np = {25};
  spec.steps = 10;
  const auto points = expand(spec);

  RunnerOptions opt1, opt4;
  opt4.threads = 4;
  const auto r1 = run_campaign(points, opt1);
  const auto r4 = run_campaign(points, opt4);
  ASSERT_EQ(r1.records.size(), r4.records.size());
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    const auto a = record_fields(r1.records[i]);
    const auto b = record_fields(r4.records[i]);
    for (std::size_t f = 0; f < a.size(); ++f)
      EXPECT_EQ(a[f].value, b[f].value) << a[f].name;
  }
}

TEST(SweepRunner, ReusedClusterMatchesFreshClustersByteForByte) {
  // The determinism guard for the cluster-reuse fast path: one WaveRunner
  // recycling its Cluster across consecutive points must produce CSV output
  // byte-identical to a fresh Cluster per point. Axes change np and message
  // size between points, so the reset path re-shapes every pool.
  SweepSpec spec;
  spec.delay_ms = {6, 12, 24};
  spec.msg_bytes = {8192, 262144};
  spec.np = {8, 12};
  spec.steps = 8;
  const auto points = expand(spec);
  ASSERT_GE(points.size(), 3u);

  const std::string fresh_csv = "sweep_fresh.tmp.csv";
  const std::string reused_csv = "sweep_reused.tmp.csv";
  {
    CsvSink sink(fresh_csv);
    for (const SweepPoint& p : points)
      sink.write(reduce(p, core::run_wave_experiment(p.exp)));
  }
  {
    CsvSink sink(reused_csv);
    core::WaveRunner lab;
    for (const SweepPoint& p : points) sink.write(reduce(p, lab.run(p.exp)));
  }
  const std::string a = slurp(fresh_csv), b = slurp(reused_csv);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  for (const auto& path : {fresh_csv, reused_csv}) std::remove(path.c_str());
}

TEST(SweepRecord, ReduceCarriesAxesAndObservables) {
  SweepSpec spec = tiny_campaign();
  spec.delay_ms = {12};
  spec.msg_bytes = {262144};  // above the 128 KiB limit -> rendezvous
  spec.noise_E_percent = {0};
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 1u);
  const CampaignResult result = run_campaign(points, RunnerOptions{});
  ASSERT_EQ(result.records.size(), 1u);
  const SweepRecord& rec = result.records.front();
  EXPECT_EQ(rec.protocol, "rendezvous");
  EXPECT_EQ(rec.np, 8);
  EXPECT_DOUBLE_EQ(rec.delay_ms, 12.0);
  EXPECT_GT(rec.v_up_ranks_per_sec, 0.0);
  EXPECT_GT(rec.events_processed, 0u);
  EXPECT_GT(rec.makespan_ms, 0.0);
  EXPECT_GT(rec.cycle_us, 0.0);
  // Column list and field list stay aligned.
  const auto columns = record_columns();
  const auto fields = record_fields(rec);
  ASSERT_EQ(columns.size(), fields.size());
  for (std::size_t i = 0; i < columns.size(); ++i)
    EXPECT_EQ(columns[i], fields[i].name);
}

TEST(SweepRecord, SummaryRendersPerProtocolRows) {
  const auto result = run_campaign(expand(tiny_campaign()), RunnerOptions{});
  const std::string summary = render_summary(result.records);
  EXPECT_NE(summary.find("eager"), std::string::npos);
  EXPECT_NE(summary.find("rendezvous"), std::string::npos);
}

}  // namespace
}  // namespace iw::sweep
