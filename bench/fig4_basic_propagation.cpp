// Fig. 4 reproduction: the delay propagation mechanism in the simplest
// setting — eager unidirectional next-neighbor communication, one process
// per node, a 4.5-phase delay injected at rank 5 in the first time step.
//
// Output: the rank-time timeline, the per-rank front arrival table, and the
// measured vs Eq. 2 propagation speed.
#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/timeline.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "ranks", "steps", "texec-ms", "delay-phases",
                  "seed"});
  auto csv = bench::csv_from_cli(cli);

  workload::RingSpec ring;
  ring.ranks = static_cast<int>(cli.get_or("ranks", std::int64_t{9}));
  ring.direction = workload::Direction::unidirectional;
  ring.boundary = workload::Boundary::open;
  ring.msg_bytes = 8192;
  ring.steps = static_cast<int>(cli.get_or("steps", std::int64_t{12}));
  ring.texec = milliseconds(cli.get_or("texec-ms", 3.0));

  const double delay_phases = cli.get_or("delay-phases", 4.5);
  const Duration delay =
      Duration{static_cast<std::int64_t>(delay_phases *
                                         static_cast<double>(ring.texec.ns()))};

  bench::print_header(
      "Fig. 4 — basic delay propagation mechanism",
      "eager unidirectional, 1 ppn, delay " + fmt_duration(delay) +
          " at rank 5, step 0; Texec = " + fmt_duration(ring.texec));

  core::WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = core::cluster_for_ring(ring);
  exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  exp.cluster.seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{42}));
  exp.delays = workload::single_delay(5, 0, delay);

  const auto result = core::run_wave_experiment(exp);

  core::TimelineOptions opts;
  opts.columns = 100;
  std::cout << core::render_timeline(result.trace, opts) << "\n";

  TextTable table;
  table.columns({"rank", "hops", "front arrival [ms]", "idle period [ms]"});
  csv.header({"rank", "hops", "arrival_ms", "idle_ms"});
  for (const auto& obs : result.up.observations) {
    if (!obs.reached) break;
    table.add_row({std::to_string(obs.rank), std::to_string(obs.hops),
                   fmt_fixed(obs.arrival.ms(), 3),
                   fmt_fixed(obs.amplitude.ms(), 3)});
    csv.row({std::to_string(obs.rank), std::to_string(obs.hops),
             csv_num(obs.arrival.ms()), csv_num(obs.amplitude.ms())});
  }
  std::cout << table.render() << "\n";

  std::cout << "cycle Texec+Tcomm : " << fmt_duration(result.measured_cycle)
            << "\n"
            << "speed measured    : "
            << fmt_fixed(result.up.speed_ranks_per_sec, 1) << " ranks/s\n"
            << "speed Eq. 2       : " << fmt_fixed(result.predicted_speed, 1)
            << " ranks/s (sigma=1, d=1)\n"
            << "ranks < 5 total wait: "
            << fmt_duration(result.trace.total(0, mpi::SegKind::wait))
            << " (eager senders are unaffected by the downstream delay)\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
