// Flight-recorder overhead certification with a machine-readable
// BENCH_trace.json artifact.
//
// The protocol tracer is compiled into the production transport
// unconditionally (each trace site is a branch-predicted null check when
// disarmed), so "untraced" no longer exists as a build of the fast path.
// What does still exist is the naive replica in transport_workloads.hpp,
// which predates the flight recorder and never gained trace sites: the
// fast/naive speedup ratio cancels the machine, and comparing today's
// ratio against the pre-tracer reference recorded in
// bench/baselines/BENCH_trace_baseline.json (paired-median speedups of a
// transport built without trace sites) isolates exactly the cost of the
// compiled-in (disarmed) instrumentation.
//
// Certifications:
//   * disarmed overhead — geomean fast/naive speedup over the three
//     perf_transport workloads must stay within 2% of the baseline
//     geomean. Gated only when this run's mode matches the baseline's
//     (speedups are size-dependent, so a --quick run against the full
//     baseline would compare different workloads); a mode-mismatched run
//     reports the ratio but gates the correctness guard (speedup >= 1)
//     alone, and says so.
//   * armed overhead — the same workloads re-run with the tracer armed
//     (ring pre-sized, every protocol event recorded). Informational: the
//     JSON carries the per-workload armed/disarmed contrast.
//   * protocol zero-alloc — the finite-NIC and credit-window bursts from
//     perf_transport's protocol cert re-run here with the tracer compiled
//     in, both disarmed and armed; neither may grow a transport pool
//     after warm-up. Gated.
//
// Flags: --json=<path> (default BENCH_trace.json; --out is an alias),
//        --quick (CI-sized run), --reps=N, --ranks=N, --steps=N,
//        --baseline=<path> (default: the checked-in BENCH_transport.json).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "support/cli.hpp"
#include "transport_workloads.hpp"

#ifndef IW_BENCH_BASELINE_DIR
#define IW_BENCH_BASELINE_DIR "bench/baselines"
#endif

namespace {

using namespace iw;
using namespace iw::bench_transport;

struct Baseline {
  std::string mode;
  double geomean_speedup = 0.0;
};

/// Pulls the two fields this bench needs out of a baseline JSON (the
/// checked-in BENCH_trace_baseline.json, or any BENCH_transport.json via
/// --baseline). Deliberately a string scan, not a JSON parser: both files
/// have a fixed generated layout and may carry extra summary fields, so
/// only the stable keys are read.
Baseline load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read baseline: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const auto field = [&](const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos)
      throw std::runtime_error("baseline " + path + " has no \"" + key +
                               "\" field");
    return text.substr(pos + needle.size());
  };

  Baseline b;
  b.geomean_speedup = std::stod(field("geomean_speedup"));
  std::string mode = field("mode");
  const auto open = mode.find('"');
  const auto close = mode.find('"', open + 1);
  if (open == std::string::npos || close == std::string::npos)
    throw std::runtime_error("baseline " + path + ": malformed \"mode\"");
  b.mode = mode.substr(open + 1, close - open - 1);
  return b;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

struct TraceComparison {
  std::string name;
  Measurement naive;     ///< best rep (throughput reporting)
  Measurement disarmed;  ///< best rep (throughput reporting)
  Measurement armed;     ///< best rep (throughput reporting)
  // One entry per rep, each a ratio of measurements taken back-to-back.
  // On a machine with drifting background load, best-of-each-side ratios
  // are unstable (the two bests can come from different contention
  // regimes); paired ratios see the same regime in numerator and
  // denominator, and the median rejects the reps where interference
  // landed mid-pair.
  std::vector<double> rep_speedups;      ///< disarmed/naive, paired
  std::vector<double> rep_armed_costs;   ///< disarmed/armed, paired
  [[nodiscard]] double speedup() const { return median(rep_speedups); }
  /// Armed slowdown relative to disarmed, in percent (positive = slower).
  [[nodiscard]] double armed_overhead_pct() const {
    return (median(rep_armed_costs) - 1.0) * 100.0;
  }
};

/// The perf_transport protocol-realism cert, with the tracer optionally
/// armed: two warm runs of a NIC-backlogging burst and a credit-starved
/// burst must not grow a transport pool.
bool protocol_zero_alloc(int ranks, int steps, obs::Tracer* tracer) {
  Workload nic_wl = make_eager_storm(ranks, steps);
  nic_wl.config = mpi::TransportConfig::finite_nic(2);
  Workload credit_wl = make_unexpected_storm(ranks / 4, steps, 4);
  credit_wl.config = mpi::TransportConfig::credit_limited(2);
  bool clean = true;
  for (const Workload& wl : {nic_wl, credit_wl}) {
    FastLab lab(tracer);
    if (tracer != nullptr) tracer->clear();
    (void)lab.run(wl);  // warm: backlog rings and credit table size up
    const std::uint64_t warm = lab.pool_stats().allocations;
    if (tracer != nullptr) tracer->clear();
    (void)lab.run(wl);
    clean = clean && lab.pool_stats().allocations == warm;
  }
  return clean;
}

void write_json(const std::string& path, const std::string& mode,
                const std::vector<TraceComparison>& comparisons,
                const Baseline& baseline, double geomean, bool gate_applies,
                bool zero_alloc_disarmed, bool zero_alloc_armed, bool pass) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"bench\": \"perf_trace\",\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"workloads\": {\n";
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const TraceComparison& c = comparisons[i];
    out << "    \"" << c.name << "\": {\n"
        << "      \"messages\": " << c.disarmed.messages << ",\n"
        << "      \"naive_msgs_per_sec\": " << msgs_per_sec(c.naive) << ",\n"
        << "      \"disarmed_msgs_per_sec\": " << msgs_per_sec(c.disarmed)
        << ",\n"
        << "      \"armed_msgs_per_sec\": " << msgs_per_sec(c.armed) << ",\n"
        << "      \"speedup\": " << c.speedup() << ",\n"
        << "      \"armed_overhead_pct\": " << c.armed_overhead_pct() << "\n"
        << "    }" << (i + 1 < comparisons.size() ? "," : "") << "\n";
  }
  out << "  },\n"
      << "  \"summary\": {\n"
      << "    \"geomean_speedup\": " << geomean << ",\n"
      << "    \"baseline_mode\": \"" << baseline.mode << "\",\n"
      << "    \"baseline_geomean_speedup\": " << baseline.geomean_speedup
      << ",\n"
      << "    \"disarmed_overhead_pct\": "
      << (1.0 - geomean / baseline.geomean_speedup) * 100.0 << ",\n"
      << "    \"max_allowed_overhead_pct\": 2.0,\n"
      << "    \"overhead_gate_applied\": " << (gate_applies ? "true" : "false")
      << ",\n"
      << "    \"protocol_zero_alloc_disarmed\": "
      << (zero_alloc_disarmed ? "true" : "false") << ",\n"
      << "    \"protocol_zero_alloc_armed\": "
      << (zero_alloc_armed ? "true" : "false") << ",\n"
      << "    \"pass\": " << (pass ? "true" : "false") << "\n  }\n}\n";
}

int bench_main(int argc, char** argv) {
  if (const int rc = bench::refuse_if_instrumented("perf_trace")) return rc;
  const Cli cli(argc, argv);
  cli.allow_only({"json", "out", "quick", "reps", "ranks", "steps",
                  "baseline"});
  const bool quick = cli.has("quick");
  const int reps =
      static_cast<int>(cli.get_or("reps", std::int64_t{quick ? 3 : 9}));
  const int ranks =
      static_cast<int>(cli.get_or("ranks", std::int64_t{quick ? 32 : 64}));
  const int steps =
      static_cast<int>(cli.get_or("steps", std::int64_t{quick ? 60 : 300}));
  const std::string out_path =
      cli.get("json").value_or(cli.get_or("out", "BENCH_trace.json"));
  const std::string baseline_path = cli.get_or(
      "baseline",
      std::string{IW_BENCH_BASELINE_DIR "/BENCH_trace_baseline.json"});

  bench::print_header(
      "perf_trace",
      "flight-recorder overhead: fast/naive speedup with the tracer "
      "compiled in (disarmed and armed) vs the pre-tracer baseline");

  const Baseline baseline = load_baseline(baseline_path);
  const std::string mode = quick ? "quick" : "full";
  // A quick run measures different workload sizes than the (full) baseline,
  // so the 2% gate only binds when the modes match.
  const bool gate_applies = mode == baseline.mode;
  if (!gate_applies)
    std::cout << "note: run mode '" << mode << "' != baseline mode '"
              << baseline.mode
              << "'; reporting the overhead ratio without gating it\n\n";

  const net::FabricProfile fabric = net::FabricProfile::infiniband_qdr();
  std::vector<Workload> workloads;
  workloads.push_back(make_eager_storm(ranks, steps * 2));
  workloads.push_back(make_rendezvous_pipeline(ranks / 2, steps));
  workloads.push_back(make_unexpected_storm(ranks / 4, steps, 4));

  obs::Tracer tracer;
  std::vector<TraceComparison> comparisons;
  for (const Workload& wl : workloads) {
    TraceComparison c;
    c.name = wl.name;
    // Interleave naive / disarmed / armed within each rep so each rep's
    // ratios are paired under the same machine conditions; keep the best
    // rep of each for throughput reporting.
    FastLab disarmed_lab;
    FastLab armed_lab(&tracer);
    for (int r = 0; r < reps; ++r) {
      const Measurement naive_m = measure([&] {
        return naive::run(wl.topo, fabric, naive::options_from(wl.config),
                          wl.programs);
      });
      const Measurement disarmed_m = measure([&] { return disarmed_lab.run(wl); });
      tracer.clear();
      const Measurement armed_m = measure([&] { return armed_lab.run(wl); });
      if (naive_m.seconds < c.naive.seconds) c.naive = naive_m;
      if (disarmed_m.seconds < c.disarmed.seconds) c.disarmed = disarmed_m;
      if (armed_m.seconds < c.armed.seconds) c.armed = armed_m;
      c.rep_speedups.push_back(msgs_per_sec(disarmed_m) /
                               msgs_per_sec(naive_m));
      c.rep_armed_costs.push_back(msgs_per_sec(disarmed_m) /
                                  msgs_per_sec(armed_m));
    }
    if (c.disarmed.messages != c.naive.messages ||
        c.armed.messages != c.naive.messages)
      throw std::logic_error("A/B message counts diverged on " + wl.name);
    comparisons.push_back(std::move(c));
    const TraceComparison& done = comparisons.back();
    std::cout << done.name << ": naive " << msgs_per_sec(done.naive) / 1e6
              << " Mmsg/s, disarmed " << msgs_per_sec(done.disarmed) / 1e6
              << " Mmsg/s (speedup " << done.speedup() << "x), armed "
              << msgs_per_sec(done.armed) / 1e6 << " Mmsg/s (+"
              << done.armed_overhead_pct() << "% overhead)\n";
  }

  double log_sum = 0.0;
  double min_speedup = std::numeric_limits<double>::infinity();
  for (const TraceComparison& c : comparisons) {
    log_sum += std::log(c.speedup());
    min_speedup = std::min(min_speedup, c.speedup());
  }
  const double geomean =
      std::exp(log_sum / static_cast<double>(comparisons.size()));
  const double overhead_pct =
      (1.0 - geomean / baseline.geomean_speedup) * 100.0;

  const bool zero_alloc_disarmed = protocol_zero_alloc(ranks, steps, nullptr);
  const bool zero_alloc_armed = protocol_zero_alloc(ranks, steps, &tracer);

  std::cout << "\ngeomean disarmed speedup: " << geomean << "x (baseline "
            << baseline.geomean_speedup << "x, disarmed overhead "
            << overhead_pct << "%, limit 2%"
            << (gate_applies ? ")" : ", not gated: mode mismatch)") << "\n"
            << "protocol zero-alloc, tracer disarmed: "
            << (zero_alloc_disarmed ? "yes" : "NO") << "\n"
            << "protocol zero-alloc, tracer armed:    "
            << (zero_alloc_armed ? "yes" : "NO") << "\n";

  const bool overhead_ok =
      !gate_applies || geomean >= 0.98 * baseline.geomean_speedup;
  const bool pass = overhead_ok && min_speedup >= 1.0 && zero_alloc_disarmed &&
                    zero_alloc_armed;

  write_json(out_path, mode, comparisons, baseline, geomean, gate_applies,
             zero_alloc_disarmed, zero_alloc_armed, pass);
  std::cout << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
