// Machine-scale benchmark: events/sec and memory-per-rank across a rank
// ladder, A/B-ing the analytic fast-forward engine against full event
// simulation, with a BENCH_scale.json artifact tracking both from PR to PR.
//
// Each ladder point runs the scale_wave experiment shape twice — ffwd=off
// (every rank event-simulated) and ffwd=force (silent regions synthesized
// analytically) — and records wall-clock, engine events, events/sec, the
// simulated-time-skipped counter and the footprint gauge. At the smallest
// np the two traces are compared segment-for-segment: the speedup is only
// worth recording if the fast path is byte-identical where it overlaps.
//
// Flags: --json=<path> (default BENCH_scale.json), --quick (CI ladder,
//        tops out at 10240 ranks), --reps=N,
//        --baseline=<path> (regression gate: the top-rung speedup may lose
//        at most a third of the stored artifact's gain, and bytes/rank may
//        not grow past 1.25x).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "support/cli.hpp"
#include "sweep/scenario.hpp"
#include "sweep/spec.hpp"

namespace {

using namespace iw;

/// Hard per-rank footprint budget for the fast-forward path at the top
/// rung: silent ranks must cost row descriptors and table slots, never
/// trace slabs. Violating this means rank state regressed to O(active)
/// per *silent* rank — exactly the scaling bug this bench exists to catch.
constexpr double kFfwdBudgetBytesPerRank = 1024.0;

struct Side {
  double seconds = std::numeric_limits<double>::infinity();
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  std::uint64_t ffwd_skips = 0;
  std::uint64_t ffwd_time_skipped_us = 0;
  double bytes_per_rank = 0.0;
};

struct Rung {
  int np = 0;
  Side full;
  Side ffwd;
  double speedup = 0.0;  ///< full.seconds / ffwd.seconds
  bool identity_checked = false;
  bool identical = true;
};

/// The scale_wave catalog scenario at one np — the bench measures exactly
/// the shape the golden corpus certifies.
core::WaveExperiment experiment_at(int np, core::FfwdMode mode) {
  const sweep::Scenario* scenario = sweep::find_scenario("scale_wave");
  if (scenario == nullptr)
    throw std::runtime_error("scale_wave scenario missing from the catalog");
  sweep::SweepSpec spec = scenario->spec;
  spec.np = {np};
  spec.ffwd = "off";  // mode is applied below, per side
  const auto points = sweep::expand(spec);
  core::WaveExperiment exp = points.front().exp;
  exp.ffwd = mode;
  return exp;
}

Side measure(int np, core::FfwdMode mode, int reps, mpi::Trace* keep_trace) {
  Side side;
  for (int r = 0; r < reps; ++r) {
    core::WaveExperiment exp = experiment_at(np, mode);
    obs::MetricsRegistry metrics;
    exp.cluster.metrics = &metrics;
    const auto begin = std::chrono::steady_clock::now();
    core::WaveResult result = core::run_wave_experiment(exp);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    side.events = result.events_processed;
    side.ffwd_skips = result.ffwd_skips;
    side.ffwd_time_skipped_us =
        static_cast<std::uint64_t>(result.ffwd_time_skipped.ns() / 1000);
    side.bytes_per_rank =
        metrics.gauge(obs::MetricId::mem_peak_bytes_per_rank);
    if (seconds < side.seconds) {
      side.seconds = seconds;
      side.events_per_sec =
          seconds > 0 ? static_cast<double>(side.events) / seconds : 0.0;
    }
    if (keep_trace != nullptr && r == reps - 1)
      *keep_trace = std::move(result.trace);
  }
  return side;
}

/// Content identity (segments, step marks, finish), not slab identity:
/// the fast path aliases silent rows into shared storage by design.
bool traces_identical(const mpi::Trace& a, const mpi::Trace& b) {
  if (a.ranks() != b.ranks()) return false;
  for (int r = 0; r < a.ranks(); ++r) {
    const auto sa = a.segments(r);
    const auto sb = b.segments(r);
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i)
      if (sa[i].kind != sb[i].kind || sa[i].begin != sb[i].begin ||
          sa[i].end != sb[i].end || sa[i].step != sb[i].step)
        return false;
    const auto ta = a.step_begin(r);
    const auto tb = b.step_begin(r);
    if (!std::equal(ta.begin(), ta.end(), tb.begin(), tb.end())) return false;
    if (a.finish(r) != b.finish(r)) return false;
  }
  return true;
}

/// Minimal field extraction from our own artifact, as in perf_sweep.
struct Baseline {
  int top_np = 0;
  double top_speedup = 0.0;
  double top_ffwd_bytes_per_rank = 0.0;
};

Baseline load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read baseline " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const auto field = [&text, &path](const std::string& key) {
    const auto pos = text.find("\"" + key + "\"");
    if (pos == std::string::npos)
      throw std::runtime_error("baseline " + path + " lacks field " + key);
    const auto colon = text.find(':', pos);
    return text.substr(colon + 1,
                       text.find_first_of(",\n}", colon) - colon - 1);
  };
  Baseline b;
  b.top_np = std::stoi(field("top_np"));
  b.top_speedup = std::stod(field("top_speedup"));
  b.top_ffwd_bytes_per_rank = std::stod(field("top_ffwd_bytes_per_rank"));
  return b;
}

int bench_main(int argc, char** argv) {
  if (const int rc = bench::refuse_if_instrumented("perf_scale")) return rc;
  const Cli cli(argc, argv);
  cli.allow_only({"json", "quick", "reps", "baseline"});
  const bool quick = cli.has("quick");
  const std::string json_path = cli.get_or("json", "BENCH_scale.json");
  const int reps =
      static_cast<int>(cli.get_or("reps", std::int64_t{quick ? 1 : 3}));

  // The quick ladder stays CI-sized; the full ladder ends on the paper's
  // machine-scale regime (a 100k-rank sweep point).
  const std::vector<int> ladder = quick ? std::vector<int>{1024, 10240}
                                        : std::vector<int>{1024, 10240, 102400};

  bench::print_header("perf_scale",
                      "machine-scale ladder: full event simulation vs "
                      "analytic fast-forward, events/sec and bytes/rank");

  std::vector<Rung> rungs;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    Rung rung;
    rung.np = ladder[i];
    // Identity is certified on the smallest rung, where the full trace is
    // cheap to hold twice; the larger rungs inherit the certification
    // (same code path, more silent ranks).
    const bool check_identity = i == 0;
    mpi::Trace full_trace(1), ffwd_trace(1);
    rung.full = measure(rung.np, core::FfwdMode::off, reps,
                        check_identity ? &full_trace : nullptr);
    rung.ffwd = measure(rung.np, core::FfwdMode::force, reps,
                        check_identity ? &ffwd_trace : nullptr);
    rung.speedup =
        rung.ffwd.seconds > 0 ? rung.full.seconds / rung.ffwd.seconds : 0.0;
    if (check_identity) {
      rung.identity_checked = true;
      rung.identical = traces_identical(full_trace, ffwd_trace);
    }
    std::cout << "np=" << rung.np << ": full " << rung.full.events_per_sec
              << " ev/s (" << rung.full.seconds << " s, "
              << rung.full.bytes_per_rank << " B/rank), ffwd "
              << rung.ffwd.events_per_sec << " ev/s (" << rung.ffwd.seconds
              << " s, " << rung.ffwd.bytes_per_rank << " B/rank), speedup "
              << rung.speedup << "x"
              << (rung.identity_checked
                      ? (rung.identical ? ", traces identical"
                                        : ", traces DIVERGE")
                      : "")
              << "\n";
    rungs.push_back(rung);
  }

  const Rung& top = rungs.back();
  const bool identical = std::all_of(
      rungs.begin(), rungs.end(), [](const Rung& r) { return r.identical; });
  const bool budget_ok = top.ffwd.bytes_per_rank <= kFfwdBudgetBytesPerRank;
  // The >= 10x acceptance floor only binds at machine scale: the full
  // ladder's top rung is silent-dominated enough that anything less means
  // the fast path stopped skipping.
  const bool speedup_floor_ok = quick || top.speedup >= 10.0;
  std::cout << "\ntop rung np=" << top.np << ": speedup " << top.speedup
            << "x, ffwd footprint " << top.ffwd.bytes_per_rank
            << " B/rank (budget " << kFfwdBudgetBytesPerRank << ")\n";
  if (!budget_ok)
    std::cout << "*** ffwd bytes/rank BLEW THE BUDGET\n";
  if (!speedup_floor_ok)
    std::cout << "*** speedup below the 10x machine-scale floor\n";

  std::ofstream out(json_path);
  if (!out) throw std::runtime_error("cannot write " + json_path);
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"bench\": \"perf_scale\",\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"rungs\": [\n";
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const Rung& r = rungs[i];
    out << "    {\"np\": " << r.np
        << ", \"full_seconds\": " << r.full.seconds
        << ", \"full_events\": " << r.full.events
        << ", \"full_events_per_sec\": " << r.full.events_per_sec
        << ", \"full_bytes_per_rank\": " << r.full.bytes_per_rank
        << ", \"ffwd_seconds\": " << r.ffwd.seconds
        << ", \"ffwd_events\": " << r.ffwd.events
        << ", \"ffwd_events_per_sec\": " << r.ffwd.events_per_sec
        << ", \"ffwd_bytes_per_rank\": " << r.ffwd.bytes_per_rank
        << ", \"ffwd_skips\": " << r.ffwd.ffwd_skips
        << ", \"ffwd_time_skipped_us\": " << r.ffwd.ffwd_time_skipped_us
        << ", \"speedup\": " << r.speedup
        << ", \"identity_checked\": " << (r.identity_checked ? "true" : "false")
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rungs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"summary\": {\n"
      << "    \"top_np\": " << top.np << ",\n"
      << "    \"top_speedup\": " << top.speedup << ",\n"
      << "    \"top_ffwd_bytes_per_rank\": " << top.ffwd.bytes_per_rank
      << ",\n"
      << "    \"identical\": " << (identical ? "true" : "false") << "\n"
      << "  }\n}\n";
  std::cout << "\nwrote " << json_path << "\n";

  // Regression gate against a stored artifact. Speedups are wall-clock
  // ratios on the same box, so a third of the stored gain absorbs noise;
  // the footprint gate is tighter because bytes/rank is deterministic.
  bool baseline_ok = true;
  if (const auto baseline_path = cli.get("baseline")) {
    const Baseline baseline = load_baseline(*baseline_path);
    // Gate only between runs of the same scale: a quick ladder tops out
    // far below the baseline's 100k-rank rung, where both the speedup and
    // the amortized footprint are structurally smaller — comparing across
    // rungs would flag phantom regressions. CI's quick run therefore
    // skips loudly against the checked-in full-mode baseline while still
    // enforcing identity and the absolute footprint budget above.
    if (baseline.top_np != top.np) {
      std::cout << "baseline gate vs " << *baseline_path
                << ": SKIPPED (baseline top rung np=" << baseline.top_np
                << ", this run np=" << top.np
                << " — regenerate the baseline at this ladder to arm)\n";
    } else {
      const double floor = 1.0 + (baseline.top_speedup - 1.0) * 2.0 / 3.0;
      const double mem_ceiling = baseline.top_ffwd_bytes_per_rank * 1.25;
      const bool speedup_ok = top.speedup >= floor;
      const bool mem_ok = top.ffwd.bytes_per_rank <= mem_ceiling;
      baseline_ok = speedup_ok && mem_ok;
      std::cout << "baseline gate vs " << *baseline_path << ": speedup "
                << top.speedup << "x vs floor " << floor << "x -> "
                << (speedup_ok ? "ok" : "REGRESSION") << "; bytes/rank "
                << top.ffwd.bytes_per_rank << " vs ceiling " << mem_ceiling
                << " -> " << (mem_ok ? "ok" : "REGRESSION") << "\n";
    }
  }

  return identical && budget_ok && speedup_floor_ok && baseline_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
