// Fig. 7 reproduction: delay propagation with next-to-next neighbor
// communication (d = 2) under the rendezvous protocol, unidirectional vs
// bidirectional. Bidirectional communication doubles the propagation speed
// (sigma = 2); no such effect exists in eager mode.
#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/speed_model.hpp"
#include "core/timeline.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "timelines", "seed", "distance"});
  auto csv = bench::csv_from_cli(cli);
  const bool timelines = cli.get_or("timelines", std::int64_t{1}) != 0;
  const int d = static_cast<int>(cli.get_or("distance", std::int64_t{2}));

  bench::print_header(
      "Fig. 7 — wave speed with distance-" + std::to_string(d) +
          " neighbor communication",
      "rendezvous protocol, open boundary, 1 ppn, Texec = 3 ms; eager rows "
      "added for contrast");

  TextTable table;
  table.columns({"mode", "sigma*d", "v_up [ranks/s]", "v_down [ranks/s]",
                 "v_eq2 [ranks/s]", "ratio to uni-rdv"});
  csv.header({"mode", "sigma_d", "v_up", "v_down", "v_eq2"});

  double v_uni_rdv = 0.0;
  struct Case {
    const char* label;
    workload::Direction direction;
    std::int64_t msg;
  };
  const Case cases[] = {
      {"(a) rendezvous unidirectional", workload::Direction::unidirectional,
       174080},
      {"(b) rendezvous bidirectional", workload::Direction::bidirectional,
       174080},
      {"(-) eager unidirectional", workload::Direction::unidirectional, 16384},
      {"(-) eager bidirectional", workload::Direction::bidirectional, 16384},
  };

  for (const auto& c : cases) {
    workload::RingSpec ring;
    ring.ranks = 24;
    ring.direction = c.direction;
    ring.boundary = workload::Boundary::open;
    ring.distance = d;
    ring.msg_bytes = c.msg;
    ring.steps = 20;
    ring.texec = milliseconds(3.0);

    core::WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring);
    exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
    exp.cluster.seed =
        static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{11}));
    exp.delays = workload::single_delay(10, 0, milliseconds(18.0));

    const auto result = core::run_wave_experiment(exp);
    const int sigma = core::sigma_factor(c.direction, result.protocol);

    if (v_uni_rdv == 0.0 && result.protocol == mpi::WireProtocol::rendezvous)
      v_uni_rdv = result.up.speed_ranks_per_sec;

    if (timelines && result.protocol == mpi::WireProtocol::rendezvous) {
      std::cout << "--- " << c.label << " ---\n";
      core::TimelineOptions opts;
      opts.columns = 100;
      std::cout << core::render_timeline(result.trace, opts) << "\n";
    }

    table.add_row(
        {c.label, std::to_string(sigma) + "*" + std::to_string(d),
         fmt_fixed(result.up.speed_ranks_per_sec, 1),
         fmt_fixed(result.down.speed_ranks_per_sec, 1),
         fmt_fixed(result.predicted_speed, 1),
         v_uni_rdv > 0
             ? fmt_fixed(result.up.speed_ranks_per_sec / v_uni_rdv, 2)
             : "-"});
    csv.row({c.label, std::to_string(sigma * d),
             csv_num(result.up.speed_ranks_per_sec),
             csv_num(result.down.speed_ranks_per_sec),
             csv_num(result.predicted_speed)});
  }

  std::cout << table.render() << "\n";
  std::cout << "Expected: bidirectional rendezvous doubles the speed of\n"
               "unidirectional rendezvous (ratio 2.0); eager modes stay at\n"
               "sigma = 1 regardless of direction.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
