// Fig. 6 reproduction: interacting idle waves on a periodic chain of 100
// ranks (ten processes per socket on ten sockets), eager bidirectional
// communication. Delays are injected at local rank 5 of every socket:
//   (a) equal delays          -> full cancellation after five hops
//   (b) half-length on odd    -> partial cancellation, long waves survive
//   (c) random lengths        -> the longest wave survives to program end
//
// Cancellation proves the phenomenon is nonlinear: a linear wave equation
// would superpose amplitudes instead.
#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/timeline.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "timelines", "seed", "delay-ms"});
  auto csv = bench::csv_from_cli(cli);
  const bool timelines = cli.get_or("timelines", std::int64_t{1}) != 0;
  const double delay_ms = cli.get_or("delay-ms", 9.0);

  bench::print_header(
      "Fig. 6 — interaction of propagating delays",
      "100 ranks, 10 ranks/socket, eager bidirectional periodic, 16384 B, "
      "delay at local rank 5 of every socket");

  csv.header({"mode", "rank", "total_wait_ms"});
  TextTable summary;
  summary.columns({"mode", "longest delay [ms]", "makespan [ms]",
                   "excess vs ideal [ms]", "max rank wait [ms]"});

  for (const auto mode :
       {workload::MultiDelayMode::equal, workload::MultiDelayMode::half_odd,
        workload::MultiDelayMode::random}) {
    workload::RingSpec ring;
    ring.ranks = 100;
    ring.direction = workload::Direction::bidirectional;
    ring.boundary = workload::Boundary::periodic;
    ring.msg_bytes = 16384;
    ring.steps = 20;
    ring.texec = milliseconds(3.0);

    core::WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring, /*ppn1=*/false, 10);
    exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
    exp.cluster.seed =
        static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{7}));
    Rng delay_rng(exp.cluster.seed + 1);
    exp.delays = workload::per_socket_delays(10, 10, 5, 0,
                                             milliseconds(delay_ms), mode,
                                             delay_rng);

    const auto result = core::run_wave_experiment(exp);

    Duration longest = Duration::zero();
    for (const auto& d : exp.delays) longest = std::max(longest, d.duration);
    const Duration makespan = result.trace.makespan() - SimTime::zero();
    const Duration ideal = ring.texec * ring.steps + longest;

    Duration max_wait = Duration::zero();
    for (int r = 0; r < ring.ranks; ++r) {
      const Duration w = result.trace.total(r, mpi::SegKind::wait);
      max_wait = std::max(max_wait, w);
      csv.row({to_string(mode), std::to_string(r), csv_num(w.ms())});
    }

    if (timelines) {
      std::cout << "--- " << to_string(mode) << " delays ---\n";
      core::TimelineOptions opts;
      opts.columns = 100;
      opts.socket_separators = true;
      opts.ranks_per_socket = 10;
      std::cout << core::render_timeline(result.trace, opts) << "\n";
    }

    summary.add_row({to_string(mode), fmt_fixed(longest.ms(), 2),
                     fmt_fixed(makespan.ms(), 2),
                     fmt_fixed((makespan - ideal).ms(), 2),
                     fmt_fixed(max_wait.ms(), 2)});
  }

  std::cout << summary.render() << "\n";
  std::cout
      << "Expected per the paper: in every mode the total excess equals the\n"
         "longest single delay (waves cancel rather than superpose); equal\n"
         "delays annihilate at the socket midpoints, half-length delays\n"
         "partially cancel and the residual travels on, random delays leave\n"
         "the longest wave to survive until program end.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
