// Campaign-throughput benchmark: points/sec of the sweep runner vs worker
// count, with a machine-readable BENCH_sweep.json artifact tracking the
// scaling from PR to PR.
//
// Each measured campaign is a full scenario expansion run through the
// production worker pool; the per-thread-count records are checksummed
// against the single-threaded run, so the artifact also certifies that
// parallel campaigns stay byte-deterministic. points/sec is the paper-level
// figure of merit: a Fig. 8-style scan is ~3000 simulations, and the sweep
// subsystem is what turns those from a shell loop into one process.
//
// Flags: --json=<path> (default BENCH_sweep.json), --scenario=<name>,
//        --threads=1,2,4,8, --reps=N, --steps=N, --smoke (CI-sized run),
//        --baseline=<path> (regression-check max_speedup against a stored
//        artifact — only enforced when both artifacts are valid parallel
//        baselines, so a single-core box cannot fail on speedup noise).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "support/cli.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"

namespace {

using namespace iw;

/// FNV-1a over the serialized record fields: campaign output fingerprint.
std::uint64_t fingerprint(const std::vector<sweep::SweepRecord>& records) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0x1f;
    h *= 0x100000001b3ull;
  };
  for (const sweep::SweepRecord& rec : records)
    for (const sweep::RecordField& f : sweep::record_fields(rec)) mix(f.value);
  return h;
}

struct Run {
  int threads = 1;
  double seconds = std::numeric_limits<double>::infinity();
  double points_per_sec = 0.0;
  std::uint64_t checksum = 0;
};

/// Minimal field extraction from our own generated artifact (flat keys,
/// no nesting ambiguity) — not a general JSON parser.
struct Baseline {
  bool valid_parallel_baseline = false;
  double max_speedup = 0.0;
};

Baseline load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read baseline " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const auto field = [&text, &path](const std::string& key) {
    const auto pos = text.find("\"" + key + "\"");
    if (pos == std::string::npos)
      throw std::runtime_error("baseline " + path + " lacks field " + key);
    const auto colon = text.find(':', pos);
    return text.substr(colon + 1, text.find_first_of(",\n}", colon) - colon - 1);
  };
  Baseline b;
  b.valid_parallel_baseline =
      field("valid_parallel_baseline").find("true") != std::string::npos;
  b.max_speedup = std::stod(field("max_speedup"));
  return b;
}

int bench_main(int argc, char** argv) {
  if (const int rc = bench::refuse_if_instrumented("perf_sweep")) return rc;
  const Cli cli(argc, argv);
  cli.allow_only(
      {"json", "scenario", "threads", "reps", "steps", "smoke", "baseline"});
  const bool smoke = cli.has("smoke");
  const std::string json_path = cli.get_or("json", "BENCH_sweep.json");
  const std::string scenario_name =
      cli.get_or("scenario", std::string{"speed_vs_delay"});
  const int reps =
      static_cast<int>(cli.get_or("reps", std::int64_t{smoke ? 1 : 3}));
  std::vector<std::int64_t> thread_counts =
      cli.get_list_or("threads", smoke ? std::vector<std::int64_t>{1, 2}
                                       : std::vector<std::int64_t>{1, 2, 4, 8});

  const sweep::Scenario* scenario = sweep::find_scenario(scenario_name);
  if (!scenario)
    throw std::invalid_argument("unknown scenario: " + scenario_name);
  sweep::SweepSpec spec = scenario->spec;
  // Heavier points give stable per-campaign timings; the smoke run keeps
  // the scenario's own size.
  spec.steps = static_cast<int>(cli.get_or(
      "steps", std::int64_t{smoke ? spec.steps : 2 * spec.steps}));

  const auto points = sweep::expand(spec);
  bench::print_header(
      "perf_sweep",
      "campaign throughput: " + scenario->name + ", " +
          std::to_string(points.size()) + " points, worker-pool scaling");

  std::vector<Run> runs;
  bool reps_deterministic = true;
  for (const std::int64_t threads : thread_counts) {
    Run best;
    best.threads = static_cast<int>(threads);
    for (int r = 0; r < reps; ++r) {
      sweep::RunnerOptions options;
      options.threads = best.threads;
      const sweep::CampaignResult result =
          sweep::run_campaign(points, options);
      // Every rep gets fingerprinted — a single divergent rep must fail
      // the certification even if a correct rep happens to be fastest.
      const std::uint64_t sum = fingerprint(result.records);
      if (r == 0)
        best.checksum = sum;
      else
        reps_deterministic = reps_deterministic && sum == best.checksum;
      if (result.seconds < best.seconds) {
        best.seconds = result.seconds;
        best.points_per_sec = result.points_per_sec();
      }
    }
    runs.push_back(best);
    std::cout << best.threads << " thread(s): " << best.points_per_sec
              << " points/s (" << best.seconds << " s)\n";
  }

  // Baseline: the run with the fewest workers (threads=1 in any default
  // invocation), wherever it appears in the --threads list.
  const Run* base_run = &runs.front();
  for (const Run& r : runs)
    if (r.threads < base_run->threads) base_run = &r;
  const double base = base_run->points_per_sec;
  bool deterministic = reps_deterministic;
  double max_speedup = 0.0;
  std::int64_t max_threads = 1;
  for (const Run& r : runs) {
    deterministic = deterministic && r.checksum == base_run->checksum;
    if (base > 0) max_speedup = std::max(max_speedup, r.points_per_sec / base);
    max_threads = std::max<std::int64_t>(max_threads, r.threads);
  }
  std::cout << "\nmax speedup vs " << base_run->threads
            << " thread(s): " << max_speedup
            << "x, deterministic across thread counts: "
            << (deterministic ? "yes" : "NO") << "\n";

  // A box with fewer cores than the widest run cannot measure parallel
  // scaling — the speedup column is then noise around 1.0 and must not be
  // checked in as a baseline. The flag makes such artifacts self-describing.
  const unsigned hc = std::thread::hardware_concurrency();
  const bool valid_parallel_baseline =
      hc >= static_cast<unsigned>(max_threads);
  if (!valid_parallel_baseline) {
    std::cout << "\n*** WARNING: this machine has " << hc
              << " hardware thread(s) but the widest run used " << max_threads
              << " workers.\n*** The speedup column is MEANINGLESS here; do "
                 "not use this artifact as a scaling baseline\n*** "
                 "(summary.valid_parallel_baseline = false). Regenerate on a "
                 "machine with >= " << max_threads << " cores (e.g. the CI "
                 "runner artifact).\n";
  }

  std::ofstream out(json_path);
  if (!out) throw std::runtime_error("cannot write " + json_path);
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"bench\": \"perf_sweep\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"scenario\": \"" << scenario->name << "\",\n"
      << "  \"points\": " << points.size() << ",\n"
      << "  \"steps\": " << spec.steps << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    out << "    {\"threads\": " << r.threads << ", \"seconds\": " << r.seconds
        << ", \"points_per_sec\": " << r.points_per_sec
        << ", \"speedup_vs_base\": "
        << (base > 0 ? r.points_per_sec / base : 0.0) << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"summary\": {\n"
      << "    \"base_threads\": " << base_run->threads << ",\n"
      << "    \"max_speedup\": " << max_speedup << ",\n"
      << "    \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n"
      << "    \"valid_parallel_baseline\": "
      << (valid_parallel_baseline ? "true" : "false") << "\n  }\n}\n";
  std::cout << "\nwrote " << json_path << "\n";

  // Speedup regression gate: only meaningful when the stored baseline was
  // measured on enough cores AND this run is too. A single-core box (the
  // valid_parallel_baseline=false debt) skips the check loudly instead of
  // failing on noise around 1.0 — refresh the stored artifact from the CI
  // runner's bench-and-sweep upload to arm it.
  bool speedup_ok = true;
  if (const auto baseline_path = cli.get("baseline")) {
    const Baseline baseline = load_baseline(*baseline_path);
    if (!baseline.valid_parallel_baseline || !valid_parallel_baseline) {
      std::cout << "speedup gate SKIPPED: "
                << (baseline.valid_parallel_baseline
                        ? "this box cannot measure parallel scaling"
                        : "stored baseline was not a valid parallel baseline")
                << " (deterministic-output gate still enforced)\n";
    } else {
      // Allow a third of the baseline's parallel gain as run-to-run noise.
      const double floor = 1.0 + (baseline.max_speedup - 1.0) * 2.0 / 3.0;
      speedup_ok = max_speedup >= floor;
      std::cout << "speedup gate vs " << *baseline_path << ": " << max_speedup
                << "x measured, floor " << floor << "x -> "
                << (speedup_ok ? "ok" : "REGRESSION") << "\n";
    }
  }

  return deterministic && speedup_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
