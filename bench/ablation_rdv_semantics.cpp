// Ablation: rendezvous wire semantics and sigma (DESIGN.md Sec. 1.1).
//
// The paper observes sigma = 2 for bidirectional rendezvous communication.
// Under a fully asynchronous ("independent") progress semantic every mode
// propagates at sigma = 1; the deferred-push rule — data pushes stall while
// any of the sender's rendezvous handshakes is outstanding — is exactly
// what recovers the paper's observation. The one-sided wire flavors
// (rdma_put, rdma_get) move the payload without a sender-side push
// pipeline, so they must stay at sigma ~1 even bidirectionally — the
// doubling is a property of the two-sided coupled pipeline, not of the
// handshake. This bench runs the Fig. 5(g) setup across all semantics.
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "seed"});
  auto csv = bench::csv_from_cli(cli);

  bench::print_header(
      "Ablation — rendezvous wire semantics and sigma",
      "Fig. 5(g) setup: bidirectional rendezvous, open boundary, 18 ranks; "
      "unidirectional rendezvous as control; RDMA flavors as decoupled "
      "counterpoints");

  TextTable table;
  table.columns({"mode", "direction", "v_meas [r/s]",
                 "v / v_uni-independent", "sigma observed"});
  csv.header({"mode", "direction", "v_meas", "sigma"});

  struct Mode {
    const char* label;
    mpi::RendezvousFlavor flavor;
    mpi::RendezvousPipelining pipelining;
  };
  const Mode modes[] = {
      {"two_sided/independent", mpi::RendezvousFlavor::two_sided,
       mpi::RendezvousPipelining::independent},
      {"two_sided/deferred_push", mpi::RendezvousFlavor::two_sided,
       mpi::RendezvousPipelining::deferred_push},
      {"rdma_put", mpi::RendezvousFlavor::rdma_put,
       mpi::RendezvousPipelining::deferred_push},
      {"rdma_get", mpi::RendezvousFlavor::rdma_get,
       mpi::RendezvousPipelining::deferred_push},
  };

  double baseline = 0.0;
  for (const Mode& mode : modes) {
    for (const auto dir : {workload::Direction::unidirectional,
                           workload::Direction::bidirectional}) {
      workload::RingSpec ring;
      ring.ranks = 18;
      ring.direction = dir;
      ring.boundary = workload::Boundary::open;
      ring.msg_bytes = 174080;  // rendezvous
      ring.steps = 20;
      ring.texec = milliseconds(3.0);
      ring.noisy = false;

      core::WaveExperiment exp;
      exp.ring = ring;
      exp.cluster = core::cluster_for_ring(ring);
      exp.cluster.transport.rendezvous.flavor = mode.flavor;
      exp.cluster.transport.rendezvous.pipelining = mode.pipelining;
      exp.delays = workload::single_delay(5, 0, milliseconds(13.5));

      const auto result = core::run_wave_experiment(exp);
      const double v = result.up.speed_ranks_per_sec;
      if (baseline == 0.0) baseline = v;
      const double sigma_observed =
          v * result.measured_cycle.sec();  // hops per cycle, d = 1

      const char* dir_label =
          dir == workload::Direction::unidirectional ? "uni" : "bidi";
      table.add_row({mode.label, dir_label, fmt_fixed(v, 1),
                     fmt_fixed(v / baseline, 2),
                     fmt_fixed(sigma_observed, 2)});
      csv.row({mode.label, dir_label, csv_num(v), csv_num(sigma_observed)});
    }
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Expected: sigma ~1 everywhere under `two_sided/independent` and\n"
         "both RDMA flavors; only `two_sided/deferred_push` + bidirectional\n"
         "reaches sigma ~2 — the paper's observed doubling requires the\n"
         "sender-side pipeline coupling the one-sided flavors lack.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
