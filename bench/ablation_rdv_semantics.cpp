// Ablation: the deferred-push rendezvous rule (DESIGN.md Sec. 1.1).
//
// The paper observes sigma = 2 for bidirectional rendezvous communication.
// Under a fully asynchronous ("independent") progress semantic every mode
// propagates at sigma = 1; the deferred-push rule — data pushes stall while
// any of the sender's rendezvous handshakes is outstanding — is exactly
// what recovers the paper's observation. This bench runs the Fig. 5(g)
// setup under both semantics.
#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "seed"});
  auto csv = bench::csv_from_cli(cli);

  bench::print_header(
      "Ablation — rendezvous pipelining semantics and sigma",
      "Fig. 5(g) setup: bidirectional rendezvous, open boundary, 18 ranks; "
      "unidirectional rendezvous as control");

  TextTable table;
  table.columns({"pipelining", "direction", "v_meas [r/s]",
                 "v / v_uni-independent", "sigma observed"});
  csv.header({"pipelining", "direction", "v_meas", "sigma"});

  double baseline = 0.0;
  for (const auto pipelining : {mpi::RendezvousPipelining::independent,
                                mpi::RendezvousPipelining::deferred_push}) {
    for (const auto dir : {workload::Direction::unidirectional,
                           workload::Direction::bidirectional}) {
      workload::RingSpec ring;
      ring.ranks = 18;
      ring.direction = dir;
      ring.boundary = workload::Boundary::open;
      ring.msg_bytes = 174080;  // rendezvous
      ring.steps = 20;
      ring.texec = milliseconds(3.0);
      ring.noisy = false;

      core::WaveExperiment exp;
      exp.ring = ring;
      exp.cluster = core::cluster_for_ring(ring);
      exp.cluster.transport.pipelining = pipelining;
      exp.delays = workload::single_delay(5, 0, milliseconds(13.5));

      const auto result = core::run_wave_experiment(exp);
      const double v = result.up.speed_ranks_per_sec;
      if (baseline == 0.0) baseline = v;
      const double sigma_observed =
          v * result.measured_cycle.sec();  // hops per cycle, d = 1

      const char* pipe_label =
          pipelining == mpi::RendezvousPipelining::independent
              ? "independent"
              : "deferred_push";
      const char* dir_label =
          dir == workload::Direction::unidirectional ? "uni" : "bidi";
      table.add_row({pipe_label, dir_label, fmt_fixed(v, 1),
                     fmt_fixed(v / baseline, 2),
                     fmt_fixed(sigma_observed, 2)});
      csv.row({pipe_label, dir_label, csv_num(v), csv_num(sigma_observed)});
    }
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Expected: sigma ~1 everywhere under `independent`; only\n"
         "`deferred_push` + bidirectional reaches sigma ~2 — the paper's\n"
         "observed doubling requires the sender-side pipeline coupling.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
