// Ablation: does the *shape* of the injected noise distribution matter for
// idle-wave decay, or only its mean E?
//
// The paper injects exponential noise "to mimic the natural noise
// distribution". This bench repeats the Fig. 8 measurement at fixed mean
// with exponential, gamma (shape 4, less dispersed), and uniform (bounded)
// noise. Decay is driven by the fluctuations that accumulate on the wave's
// trailing edge, so at equal mean, burstier distributions damp harder.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

namespace {

double decay_for(const iw::noise::NoiseSpec& injected, std::uint64_t seed) {
  using namespace iw;
  workload::RingSpec ring;
  ring.ranks = 40;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 8192;
  ring.steps = 40;
  ring.texec = milliseconds(3.0);

  core::WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = core::cluster_for_ring(ring, false, 10);
  exp.cluster.seed = seed;
  exp.delays = workload::single_delay(5, 0, milliseconds(90.0));
  exp.injected_noise = injected;
  exp.min_idle = milliseconds(3.0);
  return core::run_wave_experiment(exp).up.decay_us_per_rank;
}

}  // namespace

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "runs", "E-percent"});
  auto csv = bench::csv_from_cli(cli);
  const int runs = static_cast<int>(cli.get_or("runs", std::int64_t{11}));
  const double E = cli.get_or("E-percent", 8.0);
  const Duration mean = milliseconds(3.0 * E / 100.0);

  bench::print_header(
      "Ablation — noise distribution shape vs idle-wave decay",
      "fixed mean E = " + fmt_fixed(E, 1) + "% of Texec = 3 ms; " +
          std::to_string(runs) + " runs per distribution");

  struct Shape {
    const char* label;
    noise::NoiseSpec spec;
    double cv;  // coefficient of variation
  };
  const Shape shapes[] = {
      {"exponential (paper)", noise::NoiseSpec::exponential(mean), 1.0},
      {"gamma shape=4", noise::NoiseSpec::gamma(4.0, mean), 0.5},
      {"gamma shape=0.5 (bursty)", noise::NoiseSpec::gamma(0.5, mean), 1.41},
      {"uniform [0, 2*mean]", noise::NoiseSpec::uniform(Duration::zero(),
                                                        mean * 2),
       0.58},
  };

  TextTable table;
  table.columns({"distribution", "CV", "decay median [us/rank]",
                 "decay min/max"});
  csv.header({"distribution", "cv", "decay_median", "decay_min", "decay_max"});

  for (const auto& shape : shapes) {
    std::vector<double> betas;
    for (int r = 0; r < runs; ++r)
      betas.push_back(decay_for(shape.spec, static_cast<std::uint64_t>(r) + 1));
    const Summary s = summarize(betas);
    table.add_row({shape.label, fmt_fixed(shape.cv, 2),
                   fmt_fixed(s.median, 0),
                   fmt_fixed(s.min, 0) + "/" + fmt_fixed(s.max, 0)});
    csv.row({shape.label, csv_num(shape.cv), csv_num(s.median),
             csv_num(s.min), csv_num(s.max)});
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Reading: decay correlates with the dispersion (CV), not just the\n"
         "mean — the damping is a fluctuation effect. This supports the\n"
         "paper's choice of exponential noise as the representative shape\n"
         "and extends Fig. 8 beyond what the paper measured.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
