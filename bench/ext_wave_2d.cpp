// Extension bench (paper Sec. II-C2b): idle waves on a 2-D process grid.
//
// With 4-neighbor halo exchange the idle wave expands as a diamond (L1
// ball): arrival time is linear in the Manhattan distance from the
// injection, with the Eq. 2 cycle per hop. The bench fits that line and
// renders arrival-time "contours" over the grid.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "core/idle_wave.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/grid2d.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "px", "py", "delay-ms", "periodic"});
  auto csv = bench::csv_from_cli(cli);

  workload::Grid2DSpec spec;
  spec.px = static_cast<int>(cli.get_or("px", std::int64_t{9}));
  spec.py = static_cast<int>(cli.get_or("py", std::int64_t{9}));
  spec.boundary = cli.has("periodic") ? workload::Boundary::periodic
                                      : workload::Boundary::open;
  spec.steps = spec.px + spec.py + 4;
  spec.texec = milliseconds(2.0);
  spec.noisy = false;
  const double delay_ms = cli.get_or("delay-ms", 14.0);

  bench::print_header(
      "Extension — idle-wave front on a 2-D process grid",
      std::to_string(spec.px) + "x" + std::to_string(spec.py) + " grid (" +
          to_string(spec.boundary) + "), Texec = 2 ms, " +
          fmt_fixed(delay_ms, 0) + " ms delay at the center");

  const int cx = spec.px / 2, cy = spec.py / 2;
  const int center = workload::grid_rank(spec, cx, cy);
  const std::vector<workload::DelaySpec> delays{
      {center, 0, milliseconds(delay_ms)}};

  core::ClusterConfig config;
  config.topo = net::TopologySpec::one_rank_per_node(spec.ranks());
  core::Cluster cluster(config);
  const auto trace = cluster.run(workload::build_grid2d(spec, delays));

  // Arrival map + distance/arrival fit.
  std::vector<double> dist, arrival;
  std::vector<std::vector<int>> hit_cycle(
      static_cast<std::size_t>(spec.py),
      std::vector<int>(static_cast<std::size_t>(spec.px), -1));
  csv.header({"x", "y", "manhattan", "arrival_ms"});
  for (int r = 0; r < spec.ranks(); ++r) {
    if (r == center) continue;
    const auto periods =
        core::idle_periods(trace, r, milliseconds(delay_ms / 3));
    if (periods.empty()) continue;
    const auto [x, y] = workload::grid_coords(spec, r);
    const double t = periods.front().begin.ms();
    dist.push_back(workload::grid_distance(spec, center, r));
    arrival.push_back(t);
    hit_cycle[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] =
        static_cast<int>(t / spec.texec.ms() + 0.5);
    csv.row({std::to_string(x), std::to_string(y),
             std::to_string(workload::grid_distance(spec, center, r)),
             csv_num(t)});
  }

  std::cout << "arrival cycle per grid position ('.' = injection, '-' = "
               "never reached):\n\n";
  for (int y = spec.py - 1; y >= 0; --y) {
    std::cout << "  ";
    for (int x = 0; x < spec.px; ++x) {
      if (x == cx && y == cy) {
        std::cout << "  .";
        continue;
      }
      const int c =
          hit_cycle[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
      if (c < 0)
        std::cout << "  -";
      else
        std::cout << (c < 10 ? "  " : " ") << c;
    }
    std::cout << '\n';
  }
  std::cout << '\n';

  const LineFit fit = fit_line(dist, arrival);
  TextTable table;
  table.columns({"quantity", "value"});
  table.add_row({"ranks reached", std::to_string(dist.size()) + " / " +
                                      std::to_string(spec.ranks() - 1)});
  table.add_row({"arrival vs Manhattan distance slope",
                 fmt_fixed(fit.slope, 3) + " ms/hop"});
  table.add_row({"expected (Texec + Tcomm)", "~2.0 ms/hop"});
  table.add_row({"fit r^2", fmt_fixed(fit.r2, 4)});
  std::cout << table.render() << "\n";

  std::cout
      << "The contours form a diamond: the wave expands one Manhattan hop\n"
         "per compute-communicate cycle, the straightforward 2-D\n"
         "generalization of the paper's Eq. 2. Run with --periodic to see\n"
         "the branches wrap and annihilate on a torus.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
