// Extension bench (paper Sec. VII future work): how collective operations
// change the idle-wave phenomenology.
//
// A collective is a global synchronization funnel: instead of rippling one
// rank per cycle, a delay reaching any participant stalls *everyone* at the
// next collective. This bench injects the same one-off delay into a ring
// with (a) no collective, (b) a barrier every step, (c) a barrier every 4
// steps, (d) a ring allreduce every 4 steps, and reports when each rank
// first feels the delay plus the total cost.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "core/idle_wave.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/collectives.hpp"

namespace {

struct Variant {
  const char* label;
  iw::workload::CollectiveKind kind;
  int every;
};

}  // namespace

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "ranks", "delay-ms"});
  auto csv = bench::csv_from_cli(cli);
  const int ranks = static_cast<int>(cli.get_or("ranks", std::int64_t{24}));
  const double delay_ms = cli.get_or("delay-ms", 8.0);

  bench::print_header(
      "Extension — idle waves vs collective operations",
      std::to_string(ranks) + " ranks, Texec = 2 ms, " +
          fmt_fixed(delay_ms, 0) + " ms delay at rank " +
          std::to_string(ranks / 6) + ", step 2");

  const Variant variants[] = {
      {"point-to-point only", workload::CollectiveKind::none, 1},
      {"barrier every step", workload::CollectiveKind::barrier, 1},
      {"barrier every 4 steps", workload::CollectiveKind::barrier, 4},
      {"allreduce every 4 steps", workload::CollectiveKind::allreduce, 4},
  };

  TextTable table;
  table.columns({"variant", "first-hit spread [ms]", "median first-hit [ms]",
                 "makespan [ms]", "excess [ms]"});
  csv.header({"variant", "hit_spread_ms", "hit_median_ms", "makespan_ms",
              "excess_ms"});

  for (const auto& variant : variants) {
    workload::RingSpec ring;
    ring.ranks = ranks;
    ring.direction = workload::Direction::bidirectional;
    ring.boundary = workload::Boundary::periodic;
    ring.steps = 12;
    ring.texec = milliseconds(2.0);
    ring.noisy = false;

    const std::vector<workload::DelaySpec> delays{
        {ranks / 6, 2, milliseconds(delay_ms)}};
    const auto programs = workload::build_ring_with_collective(
        ring, variant.kind, variant.every, 16 * 1024, delays);

    core::ClusterConfig config;
    config.topo = net::TopologySpec::one_rank_per_node(ranks);
    core::Cluster cluster(config);
    const auto trace = cluster.run(programs);

    // First time each rank idles >= half the delay.
    std::vector<double> first_hit;
    for (int r = 0; r < ranks; ++r) {
      if (r == ranks / 6) continue;
      const auto periods =
          core::idle_periods(trace, r, milliseconds(delay_ms / 2));
      if (!periods.empty()) first_hit.push_back(periods.front().begin.ms());
    }
    const Summary s = summarize(first_hit);
    const Duration makespan = trace.makespan() - SimTime::zero();
    const double ideal_ms =
        12 * 2.0;  // collectives add little in the silent case

    table.add_row({variant.label, fmt_fixed(s.max - s.min, 2),
                   fmt_fixed(s.median, 2), fmt_fixed(makespan.ms(), 2),
                   fmt_fixed(makespan.ms() - ideal_ms - delay_ms, 2)});
    csv.row({variant.label, csv_num(s.max - s.min), csv_num(s.median),
             csv_num(makespan.ms()),
             csv_num(makespan.ms() - ideal_ms - delay_ms)});
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Reading: with point-to-point communication the first-hit times\n"
         "spread over many cycles (the wave travels at Eq. 2 speed); with a\n"
         "barrier every step the spread collapses to ~0 — the delay is\n"
         "globalized instantly. Sparse collectives interpolate: waves\n"
         "ripple freely between synchronization points. In all cases the\n"
         "total cost stays ~one delay (collectives do not multiply it).\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
