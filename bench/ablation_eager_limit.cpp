// Ablation: the eager-limit tuning knob (paper Sec. II-C1).
//
// "MPI implementations often allow the user to choose the protocol by
// setting an 'eager limit' ... an upper bound on the size of messages sent
// or received using the eager protocol." For bidirectional communication
// this knob controls sigma: messages below the limit propagate waves at
// sigma = 1, messages above at sigma = 2. The bench sweeps the message size
// across the 131072 B limit and shows the speed step exactly at the
// protocol switch — a knob an operator could actually turn to change how
// fast disturbances travel through a production system.
#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out"});
  auto csv = bench::csv_from_cli(cli);

  bench::print_header(
      "Ablation — the eager-limit knob and wave speed",
      "bidirectional open ring, 18 ranks, Texec = 3 ms, eager limit "
      "131072 B; message size swept across the limit");

  TextTable table;
  table.columns({"message size", "protocol", "v_meas [ranks/s]",
                 "hops/cycle (sigma*d)"});
  csv.header({"msg_bytes", "protocol", "v_meas", "hops_per_cycle"});

  for (const std::int64_t msg :
       {std::int64_t{16384}, std::int64_t{65536}, std::int64_t{114688},
        std::int64_t{131072}, std::int64_t{131080}, std::int64_t{147456},
        std::int64_t{196608}, std::int64_t{262144}}) {
    workload::RingSpec ring;
    ring.ranks = 18;
    ring.direction = workload::Direction::bidirectional;
    ring.boundary = workload::Boundary::open;
    ring.msg_bytes = msg;
    ring.steps = 20;
    ring.texec = milliseconds(3.0);
    ring.noisy = false;

    core::WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring);
    exp.delays = workload::single_delay(5, 0, milliseconds(13.5));

    const auto result = core::run_wave_experiment(exp);
    const double hops_per_cycle =
        result.up.speed_ranks_per_sec * result.measured_cycle.sec();

    table.add_row({fmt_bytes(msg),
                   result.protocol == mpi::WireProtocol::eager
                       ? "eager"
                       : "rendezvous",
                   fmt_fixed(result.up.speed_ranks_per_sec, 1),
                   fmt_fixed(hops_per_cycle, 2)});
    csv.row({std::to_string(msg),
             result.protocol == mpi::WireProtocol::eager ? "eager" : "rndv",
             csv_num(result.up.speed_ranks_per_sec),
             csv_num(hops_per_cycle)});
  }

  std::cout << table.render() << "\n";
  std::cout
      << "hops/cycle steps from ~1 to ~2 exactly where the message size\n"
         "crosses the 131072 B eager limit: the protocol switch, not the\n"
         "size itself, sets the propagation speed. Retuning the eager limit\n"
         "therefore changes how quickly one-off delays spread through a\n"
         "bidirectionally-communicating application.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
