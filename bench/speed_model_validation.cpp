// Eq. 2 validation: v_silent = sigma * d / (Texec + Tcomm) across the full
// mode grid — both protocols, both directions, d in {1, 2, 3}, and three
// execution granularities. This is the quantitative core of the paper's
// Sec. IV-C; the paper's own model (unlike Markidis et al.'s) includes the
// "pivotal ingredients" sigma and d.
#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/speed_model.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "ranks"});
  auto csv = bench::csv_from_cli(cli);
  const int ranks = static_cast<int>(cli.get_or("ranks", std::int64_t{24}));

  bench::print_header(
      "Eq. 2 validation — v_silent = sigma*d/(Texec+Tcomm)",
      "silent system, open boundary, 1 ppn, " + std::to_string(ranks) +
          " ranks; measured front speed vs the analytic model");

  TextTable table;
  table.columns({"protocol", "direction", "d", "Texec", "cycle", "sigma",
                 "v_meas [r/s]", "v_eq2 [r/s]", "error [%]"});
  csv.header({"protocol", "direction", "d", "texec_ms", "cycle_ms", "sigma",
              "v_meas", "v_eq2", "err_percent"});

  double worst_err = 0.0;
  for (const std::int64_t msg : {std::int64_t{16384}, std::int64_t{174080}}) {
    for (const auto dir : {workload::Direction::unidirectional,
                           workload::Direction::bidirectional}) {
      for (const int d : {1, 2, 3}) {
        for (const double texec_ms : {1.5, 3.0, 6.0}) {
          workload::RingSpec ring;
          ring.ranks = ranks;
          ring.direction = dir;
          ring.boundary = workload::Boundary::open;
          ring.distance = d;
          ring.msg_bytes = msg;
          ring.steps = 24;
          ring.texec = milliseconds(texec_ms);
          ring.noisy = false;

          core::WaveExperiment exp;
          exp.ring = ring;
          exp.cluster = core::cluster_for_ring(ring);
          exp.delays = workload::single_delay(
              ranks / 3, 0, milliseconds(6.0 * texec_ms));
          exp.min_idle = milliseconds(texec_ms / 4.0);

          const auto result = core::run_wave_experiment(exp);
          const int sigma = core::sigma_factor(dir, result.protocol);
          const double err =
              (result.up.speed_ranks_per_sec / result.predicted_speed - 1.0) *
              100.0;
          worst_err = std::max(worst_err, std::abs(err));

          const char* proto =
              result.protocol == mpi::WireProtocol::eager ? "eager" : "rndv";
          table.add_row({proto,
                         dir == workload::Direction::unidirectional ? "uni"
                                                                    : "bidi",
                         std::to_string(d), fmt_duration(ring.texec),
                         fmt_duration(result.measured_cycle),
                         std::to_string(sigma),
                         fmt_fixed(result.up.speed_ranks_per_sec, 1),
                         fmt_fixed(result.predicted_speed, 1),
                         fmt_fixed(err, 2)});
          csv.row({proto,
                   dir == workload::Direction::unidirectional ? "uni" : "bidi",
                   std::to_string(d), csv_num(texec_ms),
                   csv_num(result.measured_cycle.ms()), std::to_string(sigma),
                   csv_num(result.up.speed_ranks_per_sec),
                   csv_num(result.predicted_speed), csv_num(err)});
        }
      }
    }
  }

  std::cout << table.render() << "\n";
  std::cout << "worst |error| across the grid: " << fmt_fixed(worst_err, 2)
            << " % (staircase-fit granularity grows with sigma*d)\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
