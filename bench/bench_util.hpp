// Shared helpers for the figure benches.
#pragma once

#include <iostream>
#include <string>

#include "support/cli.hpp"
#include "support/csv.hpp"

namespace iw::bench {

/// Opens the optional --out CSV sink.
inline CsvWriter csv_from_cli(const Cli& cli) {
  if (const auto path = cli.get("out")) return CsvWriter{*path};
  return CsvWriter{};
}

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "=====================================================\n"
            << title << "\n" << what << "\n"
            << "=====================================================\n\n";
}

/// Runs a bench entry point with clean error reporting (bad flags and
/// failed contracts print a one-line message instead of terminating).
inline int guarded_main(int (*fn)(int, char**), int argc, char** argv) {
  try {
    return fn(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "bench") << ": error: " << e.what()
              << "\n";
    return 1;
  }
}

}  // namespace iw::bench
