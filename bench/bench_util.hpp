// Shared helpers for the figure benches.
#pragma once

#include <iostream>
#include <string>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"

namespace iw::bench {

/// Non-null when this binary was built with instrumentation that poisons
/// timings: a sanitizer (the IW_SANITIZE CMake option, or raw -fsanitize
/// flags detected via compiler macros) or the IDLEWAVE_AUDIT invariant
/// layer. Returns a human-readable reason.
inline const char* instrumented_build_reason() {
#if defined(IW_SANITIZE_BUILD)
  return "sanitizer build (IW_SANITIZE=" IW_SANITIZE_BUILD ")";
#elif defined(__SANITIZE_ADDRESS__)
  return "AddressSanitizer build";
#elif defined(__SANITIZE_THREAD__)
  return "ThreadSanitizer build";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "AddressSanitizer build";
#elif __has_feature(thread_sanitizer)
  return "ThreadSanitizer build";
#elif __has_feature(memory_sanitizer)
  return "MemorySanitizer build";
#endif
#endif
  if (iw::check::kAuditEnabled) return "IDLEWAVE_AUDIT build";
  return nullptr;
}

/// Baseline-recording benches (perf_*) call this first: an instrumented
/// build must never write a BENCH_*.json — a 2-70x sanitizer/audit slowdown
/// recorded as a baseline would make every later A/B comparison lie.
/// Returns the exit code to propagate (0 = clean build, proceed).
inline int refuse_if_instrumented(const char* bench_name) {
  const char* why = instrumented_build_reason();
  if (why == nullptr) return 0;
  std::cerr << bench_name << ": refusing to run: this is a " << why
            << ", and its timings must not be recorded as a BENCH_*.json "
               "baseline.\nRe-build without instrumentation (preset "
               "'release') to measure; sanitizer/audit runs should drive "
               "the test suite and the verify/sweep runners instead.\n";
  return 2;
}

/// Opens the optional --out CSV sink.
inline CsvWriter csv_from_cli(const Cli& cli) {
  if (const auto path = cli.get("out")) return CsvWriter{*path};
  return CsvWriter{};
}

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "=====================================================\n"
            << title << "\n" << what << "\n"
            << "=====================================================\n\n";
}

/// Runs a bench entry point with clean error reporting (bad flags and
/// failed contracts print a one-line message instead of terminating).
inline int guarded_main(int (*fn)(int, char**), int argc, char** argv) {
  try {
    return fn(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "bench") << ": error: " << e.what()
              << "\n";
    return 1;
  }
}

}  // namespace iw::bench
