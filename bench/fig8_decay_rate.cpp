// Fig. 8 reproduction: average decay rate of an idle wave vs the injected
// exponential noise level E (mean relative delay per execution phase), on
// three systems: the InfiniBand profile, the Omni-Path profile, and the
// bare Hockney-model simulator. 15 runs per point; median/min/max reported,
// exactly like the paper's plot.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

namespace {

struct SystemUnderTest {
  const char* label;
  iw::net::FabricProfile fabric;
  iw::noise::NoiseSpec system_noise;
};

double decay_for(const SystemUnderTest& sut, double E_percent,
                 std::uint64_t seed, double delay_ms) {
  using namespace iw;
  workload::RingSpec ring;
  ring.ranks = 40;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 8192;
  ring.steps = 40;
  ring.texec = milliseconds(3.0);

  core::WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = core::cluster_for_ring(ring, /*ppn1=*/false, 10);
  exp.cluster.fabric = sut.fabric;
  exp.cluster.system_noise = sut.system_noise;
  exp.cluster.seed = seed;
  exp.delays = workload::single_delay(5, 0, milliseconds(delay_ms));
  if (E_percent > 0)
    exp.injected_noise =
        noise::NoiseSpec::exponential(milliseconds(3.0 * E_percent / 100.0));
  exp.min_idle = milliseconds(3.0);
  return core::run_wave_experiment(exp).up.decay_us_per_rank;
}

}  // namespace

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "runs", "delay-ms"});
  auto csv = bench::csv_from_cli(cli);
  const int runs = static_cast<int>(cli.get_or("runs", std::int64_t{15}));
  const double delay_ms = cli.get_or("delay-ms", 90.0);

  bench::print_header(
      "Fig. 8 — idle-wave decay rate vs injected noise level",
      "90 ms delay, Texec = 3 ms, bidirectional periodic, 40 ranks; " +
          std::to_string(runs) + " runs per point (median [min, max])");

  const SystemUnderTest systems[] = {
      {"InfiniBand system", net::FabricProfile::infiniband_qdr(),
       noise::NoiseSpec::system("emmy-smt-on")},
      {"Omni-Path system", net::FabricProfile::omnipath(),
       noise::NoiseSpec::system("meggie-smt-off")},
      {"Simulated system", net::FabricProfile::ideal(microseconds(1.5), 3e9),
       noise::NoiseSpec::none()},
  };

  const std::vector<double> levels{0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0};

  TextTable table;
  table.columns({"E [%]", "InfiniBand [us/rank]", "Omni-Path [us/rank]",
                 "Simulated [us/rank]"});
  csv.header({"E_percent", "system", "median_us_per_rank", "min", "max"});

  for (const double E : levels) {
    std::vector<std::string> row{fmt_fixed(E, 1)};
    for (const auto& sut : systems) {
      std::vector<double> betas;
      for (int r = 0; r < runs; ++r)
        betas.push_back(
            decay_for(sut, E, static_cast<std::uint64_t>(r) + 1, delay_ms));
      const Summary s = summarize(betas);
      row.push_back(fmt_fixed(s.median, 0) + " [" + fmt_fixed(s.min, 0) +
                    ", " + fmt_fixed(s.max, 0) + "]");
      csv.row({csv_num(E), sut.label, csv_num(s.median), csv_num(s.min),
               csv_num(s.max)});
    }
    table.add_row(row);
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Expected per the paper: decay ~0 at E = 0, a clear positive\n"
         "correlation between noise level and decay rate, and no\n"
         "qualitative difference between the three systems (the decay is\n"
         "driven by the injected noise, not the platform).\n"
         "Note on magnitude: the paper reports up to ~6000-8000 us/rank at\n"
         "E = 10%; the simulator's noisy background advances more slowly\n"
         "than the real clusters' (see EXPERIMENTS.md), so absolute decay\n"
         "rates here are smaller while the trend and system-independence\n"
         "hold.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
