// Fig. 3 reproduction: histograms of the natural per-phase execution delays
// on the two systems, with SMT on and off. The paper measures these with a
// throughput-exact vdivpd workload (3 ms phases, latency-bound neighbor
// exchange, 3.3e5 samples); we reproduce the procedure by running the same
// probe on the simulated cluster and histogramming the recorded per-phase
// noise, using the paper's bin widths (640 ns SMT-on, 7.2 us SMT-off).
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "support/histogram.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/ring.hpp"

namespace {

struct ProbeResult {
  iw::Summary stats;        // per-phase delay stats in us
  iw::Histogram histogram;  // paper-style bins
};

ProbeResult run_probe(const char* profile, double bin_us, double range_us,
                      int target_samples) {
  using namespace iw;
  // The divide-probe: compute-bound 3 ms phases alternating with
  // latency-bound next-neighbor communication on all cores of one node.
  workload::RingSpec ring;
  ring.ranks = 20;  // one full dual-socket node
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 64;  // latency-bound
  ring.steps = std::max(1, target_samples / ring.ranks);
  ring.texec = milliseconds(3.0);

  core::ClusterConfig config;
  config.topo = net::TopologySpec::packed(ring.ranks, 10);
  config.system_noise = noise::NoiseSpec::system(profile);
  core::Cluster cluster(config);
  const auto trace = cluster.run(workload::build_ring(ring));

  // Per-phase delay = recorded noise portion of each compute segment — the
  // deviation of the pure execution time from the ideal, exactly what the
  // paper's probe measures.
  Histogram hist(0.0, range_us, static_cast<std::size_t>(range_us / bin_us));
  std::vector<double> samples;
  for (int r = 0; r < ring.ranks; ++r)
    for (const auto& seg : trace.segments(r))
      if (seg.kind == mpi::SegKind::compute) {
        samples.push_back(seg.noise.us());
        hist.add(seg.noise.us());
      }
  return ProbeResult{summarize(samples), std::move(hist)};
}

}  // namespace

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "samples", "full-histograms"});
  auto csv = bench::csv_from_cli(cli);
  const int samples =
      static_cast<int>(cli.get_or("samples", std::int64_t{330000}));
  const bool full = cli.has("full-histograms");

  std::ostringstream what;
  what << "divide-probe, 3 ms phases, one node, " << samples
       << " samples; paper: Emmy 2.4 us / Meggie 2.8 us mean (SMT on), "
          "Meggie SMT-off bimodal with a ~660 us driver peak";
  bench::print_header("Fig. 3 — natural system-noise characterization",
                      what.str());

  struct Config {
    const char* label;
    const char* profile;
    double bin_us;
    double range_us;
    double paper_mean_us;  // negative: not reported
  };
  const Config configs[] = {
      {"Emmy (InfiniBand), SMT on", "emmy-smt-on", 0.64, 32.0, 2.4},
      {"Meggie (Omni-Path), SMT on", "meggie-smt-on", 0.64, 32.0, 2.8},
      {"Emmy (InfiniBand), SMT off", "emmy-smt-off", 7.2, 800.0, -1.0},
      {"Meggie (Omni-Path), SMT off", "meggie-smt-off", 7.2, 800.0, -1.0},
  };

  TextTable table;
  table.columns({"system", "mean [us]", "paper mean", "median [us]",
                 "max [us]", "mode bin [us]", "2nd mode [us]"});
  csv.header({"system", "mean_us", "median_us", "max_us"});

  for (const auto& config : configs) {
    const ProbeResult probe =
        run_probe(config.profile, config.bin_us, config.range_us, samples);

    // Locate a secondary mode above 400 us (the Omni-Path driver peak).
    std::string second_mode = "-";
    std::size_t best = 0;
    for (std::size_t b = 0; b < probe.histogram.bins(); ++b) {
      if (probe.histogram.bin_center(b) > 400.0 &&
          probe.histogram.count(b) > best) {
        best = probe.histogram.count(b);
        second_mode = fmt_fixed(probe.histogram.bin_center(b), 0);
      }
    }
    if (best < 50) second_mode = "-";  // no distinct secondary peak

    table.add_row(
        {config.label, fmt_fixed(probe.stats.mean, 2),
         config.paper_mean_us > 0 ? fmt_fixed(config.paper_mean_us, 1) : "-",
         fmt_fixed(probe.stats.median, 2), fmt_fixed(probe.stats.max, 1),
         fmt_fixed(
             probe.histogram.bin_center(probe.histogram.mode_bin()), 2),
         second_mode});
    csv.row({config.label, csv_num(probe.stats.mean),
             csv_num(probe.stats.median), csv_num(probe.stats.max)});

    if (full) {
      std::cout << "--- " << config.label << " (bin "
                << fmt_fixed(config.bin_us, 2) << " us) ---\n"
                << probe.histogram.render(60) << "\n";
    }
  }

  std::cout << table.render() << "\n";
  std::cout << "Expected: SMT-on means ~2.4/2.8 us with max < ~30 us on both\n"
               "systems; SMT off coarsens the noise, and Meggie develops the\n"
               "bimodal structure with the second peak near 660 us.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
