// Microbenchmarks of the simulator itself, with a machine-readable
// BENCH_engine.json artifact so the engine's perf trajectory is tracked
// from PR to PR. These guard the usability of the harness (a Fig. 8 sweep
// runs ~3000 simulations).
//
// Each micro workload is measured twice: once on the production engine
// (slab-backed 4-ary calendar + small-buffer EventFn) and once on an inline
// reference replica of the naive seed implementation (std::priority_queue
// of std::function events, pop-by-copy semantics via top()/pop()). The
// workloads schedule closures of the size the simulator actually uses
// (a context pointer plus ~3 words of captured state) — big enough that
// std::function heap-allocates, as it does for every compute-completion and
// protocol event in src/.
//
// Flags: --json=<path> (default BENCH_engine.json; --out is an accepted
//        alias, matching perf_sweep's flag names), --smoke (CI-sized run),
//        --reps=N, --churn=N, --pending=N, --batches=N, --prefill=N.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "sim/engine.hpp"
#include "support/cli.hpp"
#include "workload/delay.hpp"
#include "workload/ring.hpp"

namespace {

using namespace iw;

// ---------------------------------------------------------------------------
// Reference engine: the seed's calendar, verbatim semantics.

class NaiveEngine {
 public:
  using Fn = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  void at(SimTime when, Fn fn) {
    heap_.push(NEvent{when, next_seq_++, std::move(fn)});
    if (heap_.size() > peak_) peak_ = heap_.size();
  }
  void after(Duration delay, Fn fn) { at(now_ + delay, std::move(fn)); }

  void run() {
    while (!heap_.empty()) {
      // Matches the seed Calendar::pop(): move out of top(), then pop.
      NEvent ev = std::move(const_cast<NEvent&>(heap_.top()));
      heap_.pop();
      now_ = ev.when;
      ++processed_;
      ev.fn();
    }
  }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t peak_events_pending() const { return peak_; }

 private:
  struct NEvent {
    SimTime when;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const NEvent& a, const NEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<NEvent, std::vector<NEvent>, Later> heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t peak_ = 0;
};

// ---------------------------------------------------------------------------
// Workloads. Handlers are copyable PODs of the size the simulator's real
// closures have (context pointer + 3 captured words = 32 bytes), so both
// engines pay their true per-event storage cost.

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

struct Measurement {
  std::int64_t events = 0;
  double seconds = std::numeric_limits<double>::infinity();
  std::size_t peak = 0;
};

/// Hold-model churn: `pending` self-rescheduling handlers hop forward by a
/// pseudorandom delta until `total` events have fired. This is the
/// steady-state shape of a running simulation (constant event horizon).
template <typename E>
Measurement run_churn(int pending, std::int64_t total) {
  struct Ctx {
    E* eng;
    std::uint64_t rng;
    std::int64_t remaining;
  };
  struct Hop {
    Ctx* ctx;
    std::uint64_t pad[2];  // mimic captured scalars
    void operator()() const {
      Ctx& c = *ctx;
      if (c.remaining <= 0) return;
      --c.remaining;
      const std::int64_t delta =
          1 + static_cast<std::int64_t>(xorshift(c.rng) & 1023);
      c.eng->after(Duration{delta}, Hop{ctx, {pad[0] + 1, pad[1]}});
    }
  };

  E eng;
  Ctx ctx{&eng, 0x9E3779B97F4A7C15ull, total};
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < pending; ++i)
    eng.after(Duration{1 + static_cast<std::int64_t>(xorshift(ctx.rng) & 1023)},
              Hop{&ctx, {0, static_cast<std::uint64_t>(i)}});
  eng.run();
  const auto stop = std::chrono::steady_clock::now();

  Measurement m;
  m.events = static_cast<std::int64_t>(eng.events_processed());
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.peak = eng.peak_events_pending();
  return m;
}

/// Same-timestamp batches: `batches` timestamps, `width` events each —
/// the shape of bulk-synchronous steps where a whole rank population wakes
/// at once. Exercises the engine's batch-drain fast path.
template <typename E>
Measurement run_batches(int batches, int width) {
  struct Sink {
    std::uint64_t* acc;
    std::uint64_t pad[3];
    void operator()() const { *acc += pad[0]; }
  };

  E eng;
  std::uint64_t acc = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int b = 0; b < batches; ++b) {
    const SimTime t{static_cast<std::int64_t>(b) * 100};
    for (int w = 0; w < width; ++w)
      eng.at(t, Sink{&acc, {static_cast<std::uint64_t>(w), 0, 0}});
    // Drain between batches like a stepped simulation would.
    if ((b & 15) == 15) eng.run();
  }
  eng.run();
  const auto stop = std::chrono::steady_clock::now();
  if (acc == std::numeric_limits<std::uint64_t>::max())
    std::cerr << "";  // defeat dead-code elimination of the sink

  Measurement m;
  m.events = static_cast<std::int64_t>(eng.events_processed());
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.peak = eng.peak_events_pending();
  return m;
}

/// Prefill-drain: schedule `count` events at pseudorandom times, then run.
/// Worst-case heap pressure: the calendar holds everything at once.
template <typename E>
Measurement run_prefill(std::int64_t count) {
  struct Sink {
    std::uint64_t* acc;
    std::uint64_t pad[3];
    void operator()() const { *acc ^= pad[0]; }
  };

  E eng;
  std::uint64_t acc = 0;
  std::uint64_t rng = 0xD1B54A32D192ED03ull;
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < count; ++i)
    eng.at(SimTime{static_cast<std::int64_t>(xorshift(rng) >> 24)},
           Sink{&acc, {rng, 0, 0}});
  eng.run();
  const auto stop = std::chrono::steady_clock::now();
  if (acc == std::numeric_limits<std::uint64_t>::max()) std::cerr << "";

  Measurement m;
  m.events = static_cast<std::int64_t>(eng.events_processed());
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.peak = eng.peak_events_pending();
  return m;
}

/// End-to-end: one bulk-synchronous ring simulation on the production
/// engine (the reference engine cannot run the full stack).
Measurement run_ring(int ranks, int steps) {
  workload::RingSpec ring;
  ring.ranks = ranks;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.steps = steps;
  ring.texec = milliseconds(1.0);

  core::WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = core::cluster_for_ring(ring, false, 10);
  exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  exp.delays = workload::single_delay(ranks / 3, 0, milliseconds(5.0));

  const auto start = std::chrono::steady_clock::now();
  const auto result = core::run_wave_experiment(exp);
  const auto stop = std::chrono::steady_clock::now();

  Measurement m;
  m.events = static_cast<std::int64_t>(result.events_processed);
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.peak = result.peak_events_pending;
  return m;
}

template <typename WorkloadFn>
Measurement best_of(int reps, WorkloadFn wl) {
  Measurement best;
  for (int r = 0; r < reps; ++r) {
    const Measurement m = wl();
    if (m.seconds < best.seconds) best = m;
  }
  return best;
}

double events_per_sec(const Measurement& m) {
  return m.seconds > 0 ? static_cast<double>(m.events) / m.seconds : 0.0;
}

struct Comparison {
  std::string name;
  Measurement naive;
  Measurement fast;
  [[nodiscard]] double speedup() const {
    const double n = events_per_sec(naive);
    return n > 0 ? events_per_sec(fast) / n : 0.0;
  }
};

void write_json(const std::string& path, const std::string& mode,
                const std::vector<Comparison>& comparisons,
                const Measurement& ring, int ring_ranks, int ring_steps) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"bench\": \"perf_engine\",\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"workloads\": {\n";
  double log_sum = 0.0;
  double min_speedup = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const Comparison& c = comparisons[i];
    log_sum += std::log(c.speedup());
    min_speedup = std::min(min_speedup, c.speedup());
    out << "    \"" << c.name << "\": {\n"
        << "      \"events\": " << c.fast.events << ",\n"
        << "      \"naive_events_per_sec\": " << events_per_sec(c.naive)
        << ",\n"
        << "      \"fast_events_per_sec\": " << events_per_sec(c.fast) << ",\n"
        << "      \"speedup\": " << c.speedup() << ",\n"
        << "      \"naive_peak_calendar\": " << c.naive.peak << ",\n"
        << "      \"fast_peak_calendar\": " << c.fast.peak << "\n"
        << "    },\n";
  }
  out << "    \"ring_end_to_end\": {\n"
      << "      \"ranks\": " << ring_ranks << ",\n"
      << "      \"steps\": " << ring_steps << ",\n"
      << "      \"events\": " << ring.events << ",\n"
      << "      \"events_per_sec\": " << events_per_sec(ring) << ",\n"
      << "      \"peak_calendar\": " << ring.peak << "\n"
      << "    }\n"
      << "  },\n"
      << "  \"summary\": {\n"
      << "    \"geomean_speedup\": "
      << std::exp(log_sum / static_cast<double>(comparisons.size())) << ",\n"
      << "    \"min_speedup\": " << min_speedup << "\n"
      << "  }\n"
      << "}\n";
}

int bench_main(int argc, char** argv) {
  if (const int rc = bench::refuse_if_instrumented("perf_engine")) return rc;
  const Cli cli(argc, argv);
  cli.allow_only(
      {"json", "out", "smoke", "reps", "churn", "pending", "batches",
       "prefill"});
  const bool smoke = cli.has("smoke");
  const int reps =
      static_cast<int>(cli.get_or("reps", std::int64_t{smoke ? 2 : 5}));
  const std::int64_t churn_total =
      cli.get_or("churn", std::int64_t{smoke ? 100'000 : 2'000'000});
  const int pending =
      static_cast<int>(cli.get_or("pending", std::int64_t{4096}));
  const int batches = static_cast<int>(
      cli.get_or("batches", std::int64_t{smoke ? 1'000 : 20'000}));
  const std::int64_t prefill =
      cli.get_or("prefill", std::int64_t{smoke ? 100'000 : 1'000'000});
  const int ring_ranks = smoke ? 40 : 100;
  const int ring_steps = smoke ? 10 : 50;
  const std::string out_path =
      cli.get("json").value_or(cli.get_or("out", "BENCH_engine.json"));

  bench::print_header("perf_engine",
                      "event-engine throughput: slab-backed 4-ary calendar vs "
                      "naive priority_queue baseline");

  std::vector<Comparison> comparisons;
  comparisons.push_back(
      {"churn",
       best_of(reps, [&] { return run_churn<NaiveEngine>(pending, churn_total); }),
       best_of(reps, [&] { return run_churn<sim::Engine>(pending, churn_total); })});
  comparisons.push_back(
      {"same_time_batches",
       best_of(reps, [&] { return run_batches<NaiveEngine>(batches, 64); }),
       best_of(reps, [&] { return run_batches<sim::Engine>(batches, 64); })});
  comparisons.push_back(
      {"prefill_drain",
       best_of(reps, [&] { return run_prefill<NaiveEngine>(prefill); }),
       best_of(reps, [&] { return run_prefill<sim::Engine>(prefill); })});

  for (const Comparison& c : comparisons) {
    std::cout << c.name << ": naive " << events_per_sec(c.naive) / 1e6
              << " Mev/s, fast " << events_per_sec(c.fast) / 1e6
              << " Mev/s, speedup " << c.speedup() << "x (peak calendar "
              << c.fast.peak << ")\n";
  }

  const Measurement ring =
      best_of(smoke ? 1 : 3, [&] { return run_ring(ring_ranks, ring_steps); });
  std::cout << "ring_end_to_end: " << events_per_sec(ring) / 1e6
            << " Mev/s over " << ring.events << " events (peak calendar "
            << ring.peak << ")\n";

  write_json(out_path, smoke ? "smoke" : "full", comparisons, ring, ring_ranks,
             ring_steps);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
