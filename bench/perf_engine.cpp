// google-benchmark microbenchmarks of the simulator itself: event-engine
// throughput, transport message rate, and end-to-end ring-simulation cost.
// These guard the usability of the harness (a Fig. 8 sweep runs ~3000
// simulations).
#include <benchmark/benchmark.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "sim/engine.hpp"
#include "workload/delay.hpp"
#include "workload/ring.hpp"

namespace {

using namespace iw;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const auto events = static_cast<int>(state.range(0));
    for (int i = 0; i < events; ++i)
      engine.after(Duration{i}, [] {});
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

void BM_EngineSelfScheduling(benchmark::State& state) {
  // Chained events (each schedules the next): the pattern processes use.
  for (auto _ : state) {
    sim::Engine engine;
    const auto depth = static_cast<std::int64_t>(state.range(0));
    std::int64_t remaining = depth;
    std::function<void()> step = [&] {
      if (--remaining > 0) engine.after(Duration{1}, step);
    };
    engine.after(Duration{1}, step);
    engine.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineSelfScheduling)->Arg(100000);

void BM_RingSimulation(benchmark::State& state) {
  // End-to-end cost of one bulk-synchronous ring simulation.
  const int ranks = static_cast<int>(state.range(0));
  const int steps = static_cast<int>(state.range(1));
  for (auto _ : state) {
    workload::RingSpec ring;
    ring.ranks = ranks;
    ring.direction = workload::Direction::bidirectional;
    ring.boundary = workload::Boundary::periodic;
    ring.steps = steps;
    ring.texec = milliseconds(1.0);

    core::WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring, false, 10);
    exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
    exp.delays = workload::single_delay(ranks / 3, 0, milliseconds(5.0));
    const auto result = core::run_wave_experiment(exp);
    benchmark::DoNotOptimize(result.trace.makespan());
  }
  state.SetItemsProcessed(state.iterations() * ranks * steps);
  state.SetLabel("rank-steps/s");
}
BENCHMARK(BM_RingSimulation)
    ->Args({20, 20})
    ->Args({100, 20})
    ->Args({100, 100})
    ->Args({400, 50});

void BM_RendezvousRing(benchmark::State& state) {
  // Rendezvous is ~4x the protocol events of eager; track it separately.
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    workload::RingSpec ring;
    ring.ranks = ranks;
    ring.direction = workload::Direction::bidirectional;
    ring.boundary = workload::Boundary::periodic;
    ring.msg_bytes = 174080;
    ring.steps = 20;
    ring.texec = milliseconds(1.0);

    core::WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring, false, 10);
    exp.delays = workload::single_delay(ranks / 3, 0, milliseconds(5.0));
    const auto result = core::run_wave_experiment(exp);
    benchmark::DoNotOptimize(result.up.speed_ranks_per_sec);
  }
  state.SetItemsProcessed(state.iterations() * ranks * 20);
}
BENCHMARK(BM_RendezvousRing)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
