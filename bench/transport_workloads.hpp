// Shared A/B machinery of the transport perf benches (perf_transport,
// perf_trace): the preserved naive reference stack, the three message-path
// workloads, and the measurement helpers.
//
// The naive replica is the pre-flattening transport and process, verbatim
// (std::function callbacks, unordered_map rendezvous/backlog state,
// std::deque matching queues, shared_ptr programs, one fresh world per
// run). It predates both the protocol-realism features and the flight
// recorder, which is exactly what makes it a stable normalizer: dividing
// the production stack's throughput by the replica's cancels the machine,
// so speedup ratios can be compared against checked-in baselines.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cluster.hpp"
#include "mpi/program.hpp"
#include "mpi/trace.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"
#include "workload/ring.hpp"

namespace iw::bench_transport {

// ---------------------------------------------------------------------------
// Naive reference stack.

namespace naive {

inline std::int64_t pair_key(int src, int dst) {
  return (static_cast<std::int64_t>(src) << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(dst));
}

/// The pre-redesign flat options struct, preserved with the replica (the
/// production transport now takes the grouped mpi::TransportConfig).
struct Options {
  std::int64_t eager_limit_override = -1;
  std::int64_t eager_buffer_capacity =
      std::numeric_limits<std::int64_t>::max();
  mpi::RendezvousPipelining pipelining =
      mpi::RendezvousPipelining::deferred_push;
};

/// Projection of the production config onto the replica's option set; the
/// replica predates the NIC/credit features, so A/B workloads keep those
/// at their ideal defaults.
inline Options options_from(const mpi::TransportConfig& config) {
  Options opt;
  opt.eager_limit_override = config.eager.limit_override;
  opt.eager_buffer_capacity = config.eager.buffer_capacity;
  opt.pipelining = config.rendezvous.pipelining;
  return opt;
}

class Transport {
 public:
  using CompletionFn = std::function<void(int rank, mpi::RequestId request)>;

  Transport(sim::Engine& engine, const net::Topology& topo,
            const net::FabricProfile& fabric, Options options)
      : engine_(engine),
        fabric_(fabric),
        options_(options),
        eager_limit_(options.eager_limit_override >= 0
                         ? options.eager_limit_override
                         : fabric.eager_limit_bytes),
        nranks_(topo.ranks()),
        per_socket_(topo.ranks_per_socket()),
        sockets_per_node_(topo.ranks_per_node() / topo.ranks_per_socket()),
        ranks_(static_cast<std::size_t>(topo.ranks())) {}

  void set_completion_handler(CompletionFn fn) { on_complete_ = std::move(fn); }

  [[nodiscard]] std::uint64_t messages() const { return messages_; }

  void post_send(int src, int dst, int tag, std::int64_t bytes,
                 mpi::RequestId request) {
    if (protocol_for(src, dst, bytes) == mpi::WireProtocol::eager) {
      send_eager(src, dst, tag, bytes, request);
    } else {
      send_rendezvous(src, dst, tag, bytes, request);
    }
  }

  void post_recv(int dst, int src, int tag, std::int64_t bytes,
                 mpi::RequestId request) {
    RankState& s = ranks_[static_cast<std::size_t>(dst)];
    {
      auto it = std::find_if(
          s.unexpected_eager.begin(), s.unexpected_eager.end(),
          [&](const mpi::Envelope& e) { return e.matches(src, tag); });
      if (it != s.unexpected_eager.end()) {
        complete(dst, request, link(src, dst).overhead);
        eager_backlog_[pair_key(src, dst)] -= it->bytes;
        s.unexpected_eager.erase(it);
        return;
      }
    }
    {
      auto it = std::find_if(
          s.unexpected_rts.begin(), s.unexpected_rts.end(),
          [&](const RtsRecord& r) { return r.envelope.matches(src, tag); });
      if (it != s.unexpected_rts.end()) {
        const std::uint64_t uid = it->send_uid;
        s.unexpected_rts.erase(it);
        issue_cts(uid, request);
        return;
      }
    }
    s.posted_recvs.push_back(PostedRecv{src, tag, bytes, request});
  }

 private:
  struct PostedRecv {
    int src;
    int tag;
    std::int64_t bytes;
    mpi::RequestId request;
  };
  struct RtsRecord {
    std::uint64_t send_uid;
    mpi::Envelope envelope;
  };
  struct RdvSend {
    mpi::Envelope envelope;
    mpi::RequestId send_request = -1;
    mpi::RequestId recv_request = -1;
  };
  struct RankState {
    std::deque<PostedRecv> posted_recvs;
    std::deque<mpi::Envelope> unexpected_eager;
    std::deque<RtsRecord> unexpected_rts;
    SimTime nic_free = SimTime::zero();
    int outstanding_handshakes = 0;
    std::vector<std::uint64_t> deferred;
  };

  /// The pre-flattening link classification: integer divisions on every
  /// call (the production Topology now precomputes rank->socket/node
  /// tables; preserving the old arithmetic keeps the baseline honest).
  [[nodiscard]] net::LinkClass classify(int a, int b) const {
    if (a == b) return net::LinkClass::self;
    const int sa = a / per_socket_;
    const int sb = b / per_socket_;
    if (sa == sb) return net::LinkClass::intra_socket;
    if (sa / sockets_per_node_ == sb / sockets_per_node_)
      return net::LinkClass::inter_socket;
    return net::LinkClass::inter_node;
  }

  [[nodiscard]] const net::LinkParams& link(int a, int b) const {
    return fabric_.params(classify(a, b));
  }

  [[nodiscard]] std::int64_t eager_backlog(int src, int dst) const {
    const auto it = eager_backlog_.find(pair_key(src, dst));
    return it == eager_backlog_.end() ? 0 : it->second;
  }

  [[nodiscard]] mpi::WireProtocol protocol_for(int src, int dst,
                                               std::int64_t bytes) const {
    if (bytes > eager_limit_) return mpi::WireProtocol::rendezvous;
    if (eager_backlog(src, dst) + bytes > options_.eager_buffer_capacity)
      return mpi::WireProtocol::rendezvous;
    return mpi::WireProtocol::eager;
  }

  SimTime inject(int src, int dst, std::int64_t payload_bytes) {
    const auto& p = link(src, dst);
    RankState& s = ranks_[static_cast<std::size_t>(src)];
    const SimTime start = std::max(engine_.now(), s.nic_free);
    Duration busy = p.gap;
    if (payload_bytes > 0) busy += p.payload_time(payload_bytes);
    s.nic_free = start + busy;
    return s.nic_free + p.latency;
  }

  void transfer(int src, int dst, std::int64_t bytes, sim::EventFn on_injected,
                sim::EventFn on_arrival) {
    const SimTime arrival = inject(src, dst, bytes);
    const SimTime injected = arrival - link(src, dst).latency;
    engine_.at(injected, std::move(on_injected));
    engine_.at(arrival, std::move(on_arrival));
  }

  void complete(int rank, mpi::RequestId request, Duration delay) {
    engine_.after(delay,
                  [this, rank, request] { on_complete_(rank, request); });
  }

  void send_eager(int src, int dst, int tag, std::int64_t bytes,
                  mpi::RequestId request) {
    ++messages_;
    eager_backlog_[pair_key(src, dst)] += bytes;
    complete(src, request, link(src, dst).overhead);
    const mpi::Envelope envelope{src, dst, tag, bytes};
    transfer(src, dst, bytes, [] {},
             [this, envelope] { on_eager_arrival(envelope); });
  }

  void on_eager_arrival(const mpi::Envelope& envelope) {
    RankState& s = ranks_[static_cast<std::size_t>(envelope.dst)];
    auto it = std::find_if(s.posted_recvs.begin(), s.posted_recvs.end(),
                           [&](const PostedRecv& r) {
                             return envelope.matches(r.src, r.tag);
                           });
    if (it == s.posted_recvs.end()) {
      s.unexpected_eager.push_back(envelope);
      return;
    }
    complete(envelope.dst, it->request,
             link(envelope.src, envelope.dst).overhead);
    eager_backlog_[pair_key(envelope.src, envelope.dst)] -= envelope.bytes;
    s.posted_recvs.erase(it);
  }

  void send_rendezvous(int src, int dst, int tag, std::int64_t bytes,
                       mpi::RequestId request) {
    ++messages_;
    const std::uint64_t uid = next_uid_++;
    rdv_sends_.emplace(uid,
                       RdvSend{mpi::Envelope{src, dst, tag, bytes}, request,
                               -1});
    ++ranks_[static_cast<std::size_t>(src)].outstanding_handshakes;
    const SimTime rts_arrival = inject(src, dst, 0);
    engine_.at(rts_arrival, [this, uid] { on_rts_arrival(uid); });
  }

  void on_rts_arrival(std::uint64_t send_uid) {
    const RdvSend& send = rdv_sends_.at(send_uid);
    RankState& s = ranks_[static_cast<std::size_t>(send.envelope.dst)];
    auto it = std::find_if(s.posted_recvs.begin(), s.posted_recvs.end(),
                           [&](const PostedRecv& r) {
                             return send.envelope.matches(r.src, r.tag);
                           });
    if (it == s.posted_recvs.end()) {
      s.unexpected_rts.push_back(RtsRecord{send_uid, send.envelope});
      return;
    }
    const mpi::RequestId recv_request = it->request;
    s.posted_recvs.erase(it);
    issue_cts(send_uid, recv_request);
  }

  void issue_cts(std::uint64_t send_uid, mpi::RequestId recv_request) {
    RdvSend& send = rdv_sends_.at(send_uid);
    send.recv_request = recv_request;
    const SimTime cts_arrival =
        inject(send.envelope.dst, send.envelope.src, 0);
    engine_.at(cts_arrival, [this, send_uid] { on_cts_arrival(send_uid); });
  }

  void on_cts_arrival(std::uint64_t send_uid) {
    const RdvSend& send = rdv_sends_.at(send_uid);
    RankState& s = ranks_[static_cast<std::size_t>(send.envelope.src)];
    --s.outstanding_handshakes;
    const bool must_defer =
        options_.pipelining == mpi::RendezvousPipelining::deferred_push &&
        s.outstanding_handshakes > 0;
    if (must_defer) {
      s.deferred.push_back(send_uid);
      return;
    }
    if (s.outstanding_handshakes == 0 && !s.deferred.empty()) {
      std::vector<std::uint64_t> flush;
      flush.swap(s.deferred);
      for (const std::uint64_t uid : flush) push_data(uid);
    }
    push_data(send_uid);
  }

  void push_data(std::uint64_t send_uid) {
    const auto node = rdv_sends_.extract(send_uid);
    const RdvSend send = node.mapped();
    const int src = send.envelope.src;
    const int dst = send.envelope.dst;
    const mpi::RequestId send_request = send.send_request;
    const mpi::RequestId recv_request = send.recv_request;
    transfer(src, dst, send.envelope.bytes,
             [this, src, send_request] {
               complete(src, send_request, Duration::zero());
             },
             [this, dst, recv_request, src] {
               complete(dst, recv_request, link(src, dst).overhead);
             });
  }

  sim::Engine& engine_;
  net::FabricProfile fabric_;
  Options options_;
  std::int64_t eager_limit_;
  int nranks_;
  int per_socket_;
  int sockets_per_node_;
  CompletionFn on_complete_;
  std::vector<RankState> ranks_;
  std::unordered_map<std::uint64_t, RdvSend> rdv_sends_;
  std::unordered_map<std::int64_t, std::int64_t> eager_backlog_;
  std::uint64_t next_uid_ = 0;
  std::uint64_t messages_ = 0;
};

/// The pre-flattening process interpreter: refcounted program handle and a
/// type-erased completion seam, minus the noise/memory machinery the bench
/// workloads never touch.
class Process {
 public:
  Process(int rank, sim::Engine& engine, Transport& transport,
          mpi::Trace& trace)
      : rank_(rank), engine_(engine), transport_(transport), trace_(trace) {}

  void set_program(std::shared_ptr<const mpi::Program> program) {
    program_ = std::move(program);
  }

  void start() {
    engine_.at(engine_.now(), [this] { resume(); });
  }

  [[nodiscard]] bool done() const { return done_; }

  void on_request_complete(mpi::RequestId id) {
    mpi::Request& req = requests_[static_cast<std::size_t>(id)];
    req.complete = true;
    if (!blocked_) return;
    const bool all_done =
        std::all_of(requests_.begin(), requests_.end(),
                    [](const mpi::Request& r) { return r.complete; });
    if (!all_done) return;
    blocked_ = false;
    const SimTime now = engine_.now();
    if (now > wait_begin_) {
      trace_.add_segment(rank_,
                         mpi::Segment{mpi::SegKind::wait, wait_begin_, now,
                                      next_step_ - 1, Duration::zero()});
    }
    requests_.clear();
    ++pc_;
    resume();
  }

 private:
  void resume() {
    const auto& ops = program_->ops();
    while (pc_ < ops.size()) {
      const mpi::Op& op = ops[pc_];
      if (const auto* comp = std::get_if<mpi::OpCompute>(&op)) {
        const SimTime begin = engine_.now();
        const std::int32_t step = next_step_ - 1;
        engine_.after(comp->duration, [this, begin, step] {
          trace_.add_segment(rank_,
                             mpi::Segment{mpi::SegKind::compute, begin,
                                          engine_.now(), step,
                                          Duration::zero()});
          ++pc_;
          resume();
        });
        return;
      }
      if (const auto* send = std::get_if<mpi::OpIsend>(&op)) {
        const auto id = static_cast<mpi::RequestId>(requests_.size());
        requests_.push_back(mpi::Request{mpi::Request::Kind::send, send->peer,
                                         send->tag, send->bytes, false, false,
                                         SimTime{}});
        transport_.post_send(rank_, send->peer, send->tag, send->bytes, id);
        ++pc_;
        continue;
      }
      if (const auto* recv = std::get_if<mpi::OpIrecv>(&op)) {
        const auto id = static_cast<mpi::RequestId>(requests_.size());
        requests_.push_back(mpi::Request{mpi::Request::Kind::recv, recv->peer,
                                         recv->tag, recv->bytes, false, false,
                                         SimTime{}});
        transport_.post_recv(rank_, recv->peer, recv->tag, recv->bytes, id);
        ++pc_;
        continue;
      }
      if (std::holds_alternative<mpi::OpWaitAll>(op)) {
        const bool all_done =
            std::all_of(requests_.begin(), requests_.end(),
                        [](const mpi::Request& r) { return r.complete; });
        if (all_done) {
          requests_.clear();
          ++pc_;
          continue;
        }
        blocked_ = true;
        wait_begin_ = engine_.now();
        return;
      }
      if (const auto* mark = std::get_if<mpi::OpMark>(&op)) {
        (void)mark;
        trace_.mark_step(rank_, next_step_, engine_.now());
        ++next_step_;
        ++pc_;
        continue;
      }
      throw std::logic_error("naive bench replica: unsupported op kind");
    }
    if (!done_) {
      done_ = true;
      trace_.set_finish(rank_, engine_.now());
    }
  }

  int rank_;
  sim::Engine& engine_;
  Transport& transport_;
  mpi::Trace& trace_;
  std::shared_ptr<const mpi::Program> program_;
  std::size_t pc_ = 0;
  std::int32_t next_step_ = 0;
  std::vector<mpi::Request> requests_;
  bool blocked_ = false;
  SimTime wait_begin_;
  bool done_ = false;
};

/// One fresh world per run, like every pre-reuse call site did.
inline std::uint64_t run(const net::TopologySpec& topo_spec,
                         const net::FabricProfile& fabric,
                         const Options& options,
                         const std::vector<mpi::Program>& programs) {
  sim::Engine engine;
  net::Topology topo(topo_spec);
  Transport transport(engine, topo, fabric, options);
  mpi::Trace trace(topo.ranks());
  std::vector<std::unique_ptr<Process>> processes;
  processes.reserve(programs.size());
  for (int rank = 0; rank < topo.ranks(); ++rank) {
    auto proc = std::make_unique<Process>(rank, engine, transport, trace);
    proc->set_program(std::make_shared<const mpi::Program>(
        programs[static_cast<std::size_t>(rank)]));
    processes.push_back(std::move(proc));
  }
  transport.set_completion_handler(
      [&processes](int rank, mpi::RequestId request) {
        processes[static_cast<std::size_t>(rank)]->on_request_complete(
            request);
      });
  for (auto& proc : processes) proc->start();
  engine.run();
  for (const auto& proc : processes)
    if (!proc->done())
      throw std::logic_error("naive bench replica deadlocked");
  return transport.messages();
}

}  // namespace naive

// ---------------------------------------------------------------------------
// Workloads. Both sides interpret the same per-rank programs.

struct Workload {
  std::string name;
  net::TopologySpec topo;
  mpi::TransportConfig config;
  std::vector<mpi::Program> programs;
};

inline Workload make_eager_storm(int ranks, int steps) {
  workload::RingSpec ring;
  ring.ranks = ranks;
  ring.steps = steps;
  ring.distance = 8;      // d = 8 neighbor exchange (cf. the Fig. 7 distance scan):
                          // a burst of messages per step
  ring.msg_bytes = 1024;  // far below the eager limit
  ring.texec = microseconds(1.0);
  ring.direction = workload::Direction::unidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.noisy = false;
  return Workload{"eager_storm", net::TopologySpec::one_rank_per_node(ranks),
                  {}, workload::build_ring(ring)};
}

inline Workload make_rendezvous_pipeline(int ranks, int steps) {
  workload::RingSpec ring;
  ring.ranks = ranks;
  ring.steps = steps;
  ring.msg_bytes = 262144;  // above the 128 KiB limit -> RTS/CTS handshakes
  ring.texec = microseconds(1.0);
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.noisy = false;
  return Workload{"rendezvous_pipeline",
                  net::TopologySpec::one_rank_per_node(ranks), {},
                  workload::build_ring(ring)};
}

/// Paired ranks; the receiver computes before posting its receives, so the
/// sender's eager burst always lands unexpected and every post_recv scans
/// the unexpected queue.
inline Workload make_unexpected_storm(int pairs, int steps, int burst) {
  std::vector<mpi::Program> programs(static_cast<std::size_t>(2 * pairs));
  for (int p = 0; p < pairs; ++p) {
    mpi::Program& snd = programs[static_cast<std::size_t>(2 * p)];
    mpi::Program& rcv = programs[static_cast<std::size_t>(2 * p + 1)];
    for (int s = 0; s < steps; ++s) {
      snd.mark(s);
      for (int b = 0; b < burst; ++b) snd.isend(2 * p + 1, 2048, b);
      snd.waitall();
      rcv.mark(s);
      rcv.compute(microseconds(50.0), false);
      for (int b = 0; b < burst; ++b) rcv.irecv(2 * p, 2048, b);
      rcv.waitall();
    }
  }
  return Workload{"unexpected_storm",
                  net::TopologySpec::one_rank_per_node(2 * pairs), {},
                  std::move(programs)};
}

// ---------------------------------------------------------------------------
// Measurement.

struct Measurement {
  std::uint64_t messages = 0;
  double seconds = std::numeric_limits<double>::infinity();
};

inline double msgs_per_sec(const Measurement& m) {
  return m.seconds > 0 ? static_cast<double>(m.messages) / m.seconds : 0.0;
}

/// The production stack, run the way sweeps run it: one Cluster recycled
/// across runs via reset(). An optional tracer arms the flight recorder on
/// every run (perf_trace measures the armed-vs-disarmed contrast).
class FastLab {
 public:
  explicit FastLab(obs::Tracer* tracer = nullptr) : tracer_(tracer) {}

  std::uint64_t run(const Workload& wl) {
    core::ClusterConfig config;
    config.topo = wl.topo;
    config.transport = wl.config;
    config.tracer = tracer_;
    if (cluster_ == nullptr) {
      cluster_ = std::make_unique<core::Cluster>(config);
    } else {
      cluster_->reset(config);
    }
    (void)cluster_->run(wl.programs);
    const auto& stats = cluster_->transport_stats();
    return stats.eager_sends + stats.rendezvous_sends;
  }

  [[nodiscard]] mpi::Transport::PoolStats pool_stats() const {
    return cluster_->transport_pool_stats();
  }

 private:
  std::unique_ptr<core::Cluster> cluster_;
  obs::Tracer* tracer_;
};

template <typename RunFn>
Measurement measure(RunFn run_once) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t messages = run_once();
  const auto stop = std::chrono::steady_clock::now();
  return Measurement{messages,
                     std::chrono::duration<double>(stop - start).count()};
}

struct Comparison {
  std::string name;
  Measurement naive;
  Measurement fast;
  [[nodiscard]] double speedup() const {
    const double n = msgs_per_sec(naive);
    return n > 0 ? msgs_per_sec(fast) / n : 0.0;
  }
};

}  // namespace iw::bench_transport
