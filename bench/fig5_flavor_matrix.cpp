// Fig. 5 reproduction: delay propagation in all eight combinations of
// {eager, rendezvous} x {uni, bi}directional x {open, periodic} boundaries.
//
// 18 ranks, one process per node, next-neighbor nonblocking communication,
// Texec = 3 ms; small messages (16384 B) use the eager protocol, large
// messages (170 KiB, above the 131072 B eager limit) use rendezvous. A
// delay is injected at rank 5 in the first time step.
//
// For each combination the bench renders the timeline and reports the wave
// direction(s), measured speed, Eq. 2 prediction, and where the wave died.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/speed_model.hpp"
#include "core/timeline.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

namespace {

struct Combo {
  const char* label;
  std::int64_t msg_bytes;
  iw::workload::Direction direction;
  iw::workload::Boundary boundary;
};

}  // namespace

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "timelines", "steps", "seed"});
  auto csv = bench::csv_from_cli(cli);
  const bool timelines = cli.get_or("timelines", std::int64_t{1}) != 0;

  bench::print_header(
      "Fig. 5 — basic flavors of delay propagation",
      "18 ranks, 1 ppn, d=1, Texec=3 ms, delay 4.5 phases at rank 5; "
      "small=16384 B (eager), large=170 KiB (rendezvous)");

  const std::int64_t small_msg = 16384;
  const std::int64_t large_msg = 174080;  // > 131072 B eager limit

  const std::vector<Combo> combos = {
      {"(a) eager  unidirectional open", small_msg,
       workload::Direction::unidirectional, workload::Boundary::open},
      {"(b) eager  unidirectional periodic", small_msg,
       workload::Direction::unidirectional, workload::Boundary::periodic},
      {"(c) eager  bidirectional  open", small_msg,
       workload::Direction::bidirectional, workload::Boundary::open},
      {"(d) eager  bidirectional  periodic", small_msg,
       workload::Direction::bidirectional, workload::Boundary::periodic},
      {"(e) rndv   unidirectional open", large_msg,
       workload::Direction::unidirectional, workload::Boundary::open},
      {"(f) rndv   unidirectional periodic", large_msg,
       workload::Direction::unidirectional, workload::Boundary::periodic},
      {"(g) rndv   bidirectional  open", large_msg,
       workload::Direction::bidirectional, workload::Boundary::open},
      {"(h) rndv   bidirectional  periodic", large_msg,
       workload::Direction::bidirectional, workload::Boundary::periodic},
  };

  TextTable table;
  table.columns({"combination", "protocol", "sigma*d", "v_meas_up", "v_meas_dn",
                 "v_eq2", "hops_up", "hops_dn"});
  csv.header({"combo", "protocol", "sigma", "v_up", "v_down", "v_eq2",
              "hops_up", "hops_down"});

  for (const auto& combo : combos) {
    workload::RingSpec ring;
    ring.ranks = 18;
    ring.direction = combo.direction;
    ring.boundary = combo.boundary;
    ring.msg_bytes = combo.msg_bytes;
    ring.steps = 20;
    ring.texec = milliseconds(3.0);

    core::WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring, /*ppn1=*/true);
    exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
    exp.cluster.seed = static_cast<std::uint64_t>(
        cli.get_or("seed", std::int64_t{42}));
    exp.delays = workload::single_delay(5, 0, milliseconds(13.5));

    const auto result = core::run_wave_experiment(exp);
    const int sigma =
        core::sigma_factor(combo.direction, result.protocol);

    if (timelines) {
      std::cout << "--- " << combo.label << " ---\n";
      core::TimelineOptions opts;
      opts.columns = 96;
      std::cout << core::render_timeline(result.trace, opts) << "\n";
    }

    table.add_row({combo.label,
                   result.protocol == mpi::WireProtocol::eager ? "eager"
                                                               : "rendezvous",
                   std::to_string(sigma) + "*1",
                   fmt_fixed(result.up.speed_ranks_per_sec, 1),
                   fmt_fixed(result.down.speed_ranks_per_sec, 1),
                   fmt_fixed(result.predicted_speed, 1),
                   std::to_string(result.up.survival_hops),
                   std::to_string(result.down.survival_hops)});
    csv.row({combo.label,
             result.protocol == mpi::WireProtocol::eager ? "eager" : "rndv",
             std::to_string(sigma),
             csv_num(result.up.speed_ranks_per_sec),
             csv_num(result.down.speed_ranks_per_sec),
             csv_num(result.predicted_speed),
             std::to_string(result.up.survival_hops),
             std::to_string(result.down.survival_hops)});
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Expected per the paper: eager unidirectional waves travel only\n"
         "upward; rendezvous or bidirectional waves travel both ways;\n"
         "bidirectional rendezvous runs at twice the speed (sigma = 2);\n"
         "periodic waves wrap around and cancel, open waves die at the\n"
         "chain ends.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
