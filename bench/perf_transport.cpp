// Message-path throughput benchmark with a machine-readable
// BENCH_transport.json artifact: messages/sec of the flattened transport
// hot path (rank-indexed wiring, pooled rendezvous slab, ring-buffer
// matching queues, backlog-free eager fast path, cluster reuse) against a
// preserved replica of the naive implementation it replaced. The replica,
// the three workloads, and the A/B measurement helpers live in
// transport_workloads.hpp, shared with perf_trace (which reuses the same
// contrast to bound the compiled-in flight-recorder overhead).
//
// Workloads:
//   * eager_storm          — unidirectional d = 8 ring of small messages
//                            with receives pre-posted by the step
//                            structure: a burst of eager traffic per step,
//                            the steady-state fast path.
//   * rendezvous_pipeline  — bidirectional ring above the eager limit:
//                            RTS/CTS handshakes, deferred-push rule,
//                            rendezvous-record slab churn.
//   * unexpected_storm     — senders race ahead of delayed receivers, so
//                            every arrival queues unexpected and every
//                            receive scans the unexpected queue.
//
// Both sides run the identical programs on the production engine and must
// report the identical message count; the JSON carries a speedup per
// workload plus a steady-state zero-allocation certification of the fast
// path. Exit status is 1 if any workload's speedup drops below 1.0 — a
// correctness guard for CI, not a perf gate.
//
// Flags: --json=<path> (default BENCH_transport.json; --out is an alias),
//        --quick (CI-sized run), --reps=N, --ranks=N, --steps=N.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "support/cli.hpp"
#include "transport_workloads.hpp"

namespace {

using namespace iw;
using namespace iw::bench_transport;

void write_json(const std::string& path, const std::string& mode,
                const std::vector<Comparison>& comparisons, bool zero_alloc,
                bool protocol_zero_alloc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"bench\": \"perf_transport\",\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"workloads\": {\n";
  double log_sum = 0.0;
  double min_speedup = std::numeric_limits<double>::infinity();
  double eager_speedup = 0.0;
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const Comparison& c = comparisons[i];
    log_sum += std::log(c.speedup());
    min_speedup = std::min(min_speedup, c.speedup());
    if (c.name == "eager_storm") eager_speedup = c.speedup();
    out << "    \"" << c.name << "\": {\n"
        << "      \"messages\": " << c.fast.messages << ",\n"
        << "      \"naive_msgs_per_sec\": " << msgs_per_sec(c.naive) << ",\n"
        << "      \"fast_msgs_per_sec\": " << msgs_per_sec(c.fast) << ",\n"
        << "      \"speedup\": " << c.speedup() << "\n"
        << "    }" << (i + 1 < comparisons.size() ? "," : "") << "\n";
  }
  out << "  },\n"
      << "  \"summary\": {\n"
      << "    \"geomean_speedup\": "
      << std::exp(log_sum / static_cast<double>(comparisons.size())) << ",\n"
      << "    \"min_speedup\": " << min_speedup << ",\n"
      << "    \"eager_storm_speedup\": " << eager_speedup << ",\n"
      << "    \"steady_state_zero_alloc\": " << (zero_alloc ? "true" : "false")
      << ",\n"
      << "    \"protocol_zero_alloc\": "
      << (protocol_zero_alloc ? "true" : "false") << "\n  }\n}\n";
}

int bench_main(int argc, char** argv) {
  if (const int rc = bench::refuse_if_instrumented("perf_transport")) return rc;
  const Cli cli(argc, argv);
  cli.allow_only({"json", "out", "quick", "reps", "ranks", "steps"});
  const bool quick = cli.has("quick");
  const int reps =
      static_cast<int>(cli.get_or("reps", std::int64_t{quick ? 2 : 5}));
  const int ranks =
      static_cast<int>(cli.get_or("ranks", std::int64_t{quick ? 32 : 64}));
  const int steps =
      static_cast<int>(cli.get_or("steps", std::int64_t{quick ? 60 : 300}));
  const std::string out_path =
      cli.get("json").value_or(cli.get_or("out", "BENCH_transport.json"));

  bench::print_header(
      "perf_transport",
      "message-path throughput: flattened transport (rank-indexed wiring, "
      "pooled slab/ring queues) vs naive replica");

  const net::FabricProfile fabric = net::FabricProfile::infiniband_qdr();
  std::vector<Workload> workloads;
  workloads.push_back(make_eager_storm(ranks, steps * 2));
  workloads.push_back(make_rendezvous_pipeline(ranks / 2, steps));
  workloads.push_back(make_unexpected_storm(ranks / 4, steps, 4));

  std::vector<Comparison> comparisons;
  bool zero_alloc = true;
  for (const Workload& wl : workloads) {
    Comparison c;
    c.name = wl.name;
    // Interleave the A/B reps so clock-frequency drift hits both sides
    // alike; keep the best rep of each.
    FastLab lab;
    for (int r = 0; r < reps; ++r) {
      const Measurement naive_m = measure([&] {
        return naive::run(wl.topo, fabric, naive::options_from(wl.config),
                          wl.programs);
      });
      const Measurement fast_m = measure([&] { return lab.run(wl); });
      if (naive_m.seconds < c.naive.seconds) c.naive = naive_m;
      if (fast_m.seconds < c.fast.seconds) c.fast = fast_m;
    }
    if (c.fast.messages != c.naive.messages)
      throw std::logic_error("A/B message counts diverged on " + wl.name);

    // Zero-allocation certification: with the pools warm from the timed
    // reps, two more runs must not grow any transport pool.
    (void)lab.run(wl);
    const std::uint64_t warm = lab.pool_stats().allocations;
    (void)lab.run(wl);
    zero_alloc = zero_alloc && lab.pool_stats().allocations == warm;

    comparisons.push_back(std::move(c));
    const Comparison& done = comparisons.back();
    std::cout << done.name << ": naive " << msgs_per_sec(done.naive) / 1e6
              << " Mmsg/s, fast " << msgs_per_sec(done.fast) / 1e6
              << " Mmsg/s, speedup " << done.speedup() << "x ("
              << done.fast.messages << " msgs)\n";
  }

  // Protocol-realism certification: the finite-injection NIC retry backlog
  // and the credit window must keep the steady state allocation-free too.
  // No A/B here — the naive replica predates both features — so the fast
  // stack alone runs a backlogging burst and a credit-starved burst and
  // must not grow a pool after warm-up.
  bool protocol_zero_alloc = true;
  {
    Workload nic_wl = make_eager_storm(ranks, steps);
    nic_wl.name = "eager_storm+finite_nic";
    nic_wl.config = mpi::TransportConfig::finite_nic(2);
    Workload credit_wl = make_unexpected_storm(ranks / 4, steps, 4);
    credit_wl.name = "unexpected_storm+credits";
    credit_wl.config = mpi::TransportConfig::credit_limited(2);
    for (const Workload& wl : {nic_wl, credit_wl}) {
      FastLab lab;
      (void)lab.run(wl);  // warm: backlog rings and credit table size up
      const std::uint64_t warm = lab.pool_stats().allocations;
      (void)lab.run(wl);
      const bool clean = lab.pool_stats().allocations == warm;
      protocol_zero_alloc = protocol_zero_alloc && clean;
      std::cout << wl.name << ": steady-state zero allocation: "
                << (clean ? "yes" : "NO") << "\n";
    }
  }

  double min_speedup = std::numeric_limits<double>::infinity();
  for (const Comparison& c : comparisons)
    min_speedup = std::min(min_speedup, c.speedup());
  std::cout << "\nsteady-state zero allocation: "
            << (zero_alloc ? "yes" : "NO") << "\n";

  write_json(out_path, quick ? "quick" : "full", comparisons, zero_alloc,
             protocol_zero_alloc);
  std::cout << "wrote " << out_path << "\n";

  // Correctness guard for CI: the flattened path regressing below the naive
  // replica (or leaking steady-state allocations, with or without the
  // protocol features enabled) fails the run.
  return (min_speedup >= 1.0 && zero_alloc && protocol_zero_alloc) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
