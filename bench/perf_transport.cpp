// Message-path throughput benchmark with a machine-readable
// BENCH_transport.json artifact: messages/sec of the flattened transport
// hot path (rank-indexed wiring, pooled rendezvous slab, ring-buffer
// matching queues, backlog-free eager fast path, cluster reuse) against a
// preserved replica of the naive implementation it replaced
// (std::function callbacks, unordered_map rendezvous/backlog state,
// std::deque matching queues, shared_ptr programs, world reconstruction
// per run). Same pattern as perf_engine: the replica lives here, verbatim
// semantics, so the A/B keeps measuring the same contrast from PR to PR.
//
// Workloads:
//   * eager_storm          — unidirectional d = 8 ring of small messages
//                            with receives pre-posted by the step
//                            structure: a burst of eager traffic per step,
//                            the steady-state fast path.
//   * rendezvous_pipeline  — bidirectional ring above the eager limit:
//                            RTS/CTS handshakes, deferred-push rule,
//                            rendezvous-record slab churn.
//   * unexpected_storm     — senders race ahead of delayed receivers, so
//                            every arrival queues unexpected and every
//                            receive scans the unexpected queue.
//
// Both sides run the identical programs on the production engine and must
// report the identical message count; the JSON carries a speedup per
// workload plus a steady-state zero-allocation certification of the fast
// path. Exit status is 1 if any workload's speedup drops below 1.0 — a
// correctness guard for CI, not a perf gate.
//
// Flags: --json=<path> (default BENCH_transport.json; --out is an alias),
//        --quick (CI-sized run), --reps=N, --ranks=N, --steps=N.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "mpi/program.hpp"
#include "mpi/trace.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "support/cli.hpp"
#include "workload/ring.hpp"

namespace {

using namespace iw;

// ---------------------------------------------------------------------------
// Naive reference stack: the pre-flattening transport and process,
// preserved verbatim (hash-map rendezvous records and eager backlog,
// deque matching queues, std::function completion routing, shared_ptr
// programs, one fresh world per run).

namespace naive {

std::int64_t pair_key(int src, int dst) {
  return (static_cast<std::int64_t>(src) << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(dst));
}

/// The pre-redesign flat options struct, preserved with the replica (the
/// production transport now takes the grouped mpi::TransportConfig).
struct Options {
  std::int64_t eager_limit_override = -1;
  std::int64_t eager_buffer_capacity =
      std::numeric_limits<std::int64_t>::max();
  mpi::RendezvousPipelining pipelining =
      mpi::RendezvousPipelining::deferred_push;
};

/// Projection of the production config onto the replica's option set; the
/// replica predates the NIC/credit features, so A/B workloads keep those
/// at their ideal defaults.
Options options_from(const mpi::TransportConfig& config) {
  Options opt;
  opt.eager_limit_override = config.eager.limit_override;
  opt.eager_buffer_capacity = config.eager.buffer_capacity;
  opt.pipelining = config.rendezvous.pipelining;
  return opt;
}

class Transport {
 public:
  using CompletionFn = std::function<void(int rank, mpi::RequestId request)>;

  Transport(sim::Engine& engine, const net::Topology& topo,
            const net::FabricProfile& fabric, Options options)
      : engine_(engine),
        fabric_(fabric),
        options_(options),
        eager_limit_(options.eager_limit_override >= 0
                         ? options.eager_limit_override
                         : fabric.eager_limit_bytes),
        nranks_(topo.ranks()),
        per_socket_(topo.ranks_per_socket()),
        sockets_per_node_(topo.ranks_per_node() / topo.ranks_per_socket()),
        ranks_(static_cast<std::size_t>(topo.ranks())) {}

  void set_completion_handler(CompletionFn fn) { on_complete_ = std::move(fn); }

  [[nodiscard]] std::uint64_t messages() const { return messages_; }

  void post_send(int src, int dst, int tag, std::int64_t bytes,
                 mpi::RequestId request) {
    if (protocol_for(src, dst, bytes) == mpi::WireProtocol::eager) {
      send_eager(src, dst, tag, bytes, request);
    } else {
      send_rendezvous(src, dst, tag, bytes, request);
    }
  }

  void post_recv(int dst, int src, int tag, std::int64_t bytes,
                 mpi::RequestId request) {
    RankState& s = ranks_[static_cast<std::size_t>(dst)];
    {
      auto it = std::find_if(
          s.unexpected_eager.begin(), s.unexpected_eager.end(),
          [&](const mpi::Envelope& e) { return e.matches(src, tag); });
      if (it != s.unexpected_eager.end()) {
        complete(dst, request, link(src, dst).overhead);
        eager_backlog_[pair_key(src, dst)] -= it->bytes;
        s.unexpected_eager.erase(it);
        return;
      }
    }
    {
      auto it = std::find_if(
          s.unexpected_rts.begin(), s.unexpected_rts.end(),
          [&](const RtsRecord& r) { return r.envelope.matches(src, tag); });
      if (it != s.unexpected_rts.end()) {
        const std::uint64_t uid = it->send_uid;
        s.unexpected_rts.erase(it);
        issue_cts(uid, request);
        return;
      }
    }
    s.posted_recvs.push_back(PostedRecv{src, tag, bytes, request});
  }

 private:
  struct PostedRecv {
    int src;
    int tag;
    std::int64_t bytes;
    mpi::RequestId request;
  };
  struct RtsRecord {
    std::uint64_t send_uid;
    mpi::Envelope envelope;
  };
  struct RdvSend {
    mpi::Envelope envelope;
    mpi::RequestId send_request = -1;
    mpi::RequestId recv_request = -1;
  };
  struct RankState {
    std::deque<PostedRecv> posted_recvs;
    std::deque<mpi::Envelope> unexpected_eager;
    std::deque<RtsRecord> unexpected_rts;
    SimTime nic_free = SimTime::zero();
    int outstanding_handshakes = 0;
    std::vector<std::uint64_t> deferred;
  };

  /// The pre-flattening link classification: integer divisions on every
  /// call (the production Topology now precomputes rank->socket/node
  /// tables; preserving the old arithmetic keeps the baseline honest).
  [[nodiscard]] net::LinkClass classify(int a, int b) const {
    if (a == b) return net::LinkClass::self;
    const int sa = a / per_socket_;
    const int sb = b / per_socket_;
    if (sa == sb) return net::LinkClass::intra_socket;
    if (sa / sockets_per_node_ == sb / sockets_per_node_)
      return net::LinkClass::inter_socket;
    return net::LinkClass::inter_node;
  }

  [[nodiscard]] const net::LinkParams& link(int a, int b) const {
    return fabric_.params(classify(a, b));
  }

  [[nodiscard]] std::int64_t eager_backlog(int src, int dst) const {
    const auto it = eager_backlog_.find(pair_key(src, dst));
    return it == eager_backlog_.end() ? 0 : it->second;
  }

  [[nodiscard]] mpi::WireProtocol protocol_for(int src, int dst,
                                               std::int64_t bytes) const {
    if (bytes > eager_limit_) return mpi::WireProtocol::rendezvous;
    if (eager_backlog(src, dst) + bytes > options_.eager_buffer_capacity)
      return mpi::WireProtocol::rendezvous;
    return mpi::WireProtocol::eager;
  }

  SimTime inject(int src, int dst, std::int64_t payload_bytes) {
    const auto& p = link(src, dst);
    RankState& s = ranks_[static_cast<std::size_t>(src)];
    const SimTime start = std::max(engine_.now(), s.nic_free);
    Duration busy = p.gap;
    if (payload_bytes > 0) busy += p.payload_time(payload_bytes);
    s.nic_free = start + busy;
    return s.nic_free + p.latency;
  }

  void transfer(int src, int dst, std::int64_t bytes, sim::EventFn on_injected,
                sim::EventFn on_arrival) {
    const SimTime arrival = inject(src, dst, bytes);
    const SimTime injected = arrival - link(src, dst).latency;
    engine_.at(injected, std::move(on_injected));
    engine_.at(arrival, std::move(on_arrival));
  }

  void complete(int rank, mpi::RequestId request, Duration delay) {
    engine_.after(delay,
                  [this, rank, request] { on_complete_(rank, request); });
  }

  void send_eager(int src, int dst, int tag, std::int64_t bytes,
                  mpi::RequestId request) {
    ++messages_;
    eager_backlog_[pair_key(src, dst)] += bytes;
    complete(src, request, link(src, dst).overhead);
    const mpi::Envelope envelope{src, dst, tag, bytes};
    transfer(src, dst, bytes, [] {},
             [this, envelope] { on_eager_arrival(envelope); });
  }

  void on_eager_arrival(const mpi::Envelope& envelope) {
    RankState& s = ranks_[static_cast<std::size_t>(envelope.dst)];
    auto it = std::find_if(s.posted_recvs.begin(), s.posted_recvs.end(),
                           [&](const PostedRecv& r) {
                             return envelope.matches(r.src, r.tag);
                           });
    if (it == s.posted_recvs.end()) {
      s.unexpected_eager.push_back(envelope);
      return;
    }
    complete(envelope.dst, it->request,
             link(envelope.src, envelope.dst).overhead);
    eager_backlog_[pair_key(envelope.src, envelope.dst)] -= envelope.bytes;
    s.posted_recvs.erase(it);
  }

  void send_rendezvous(int src, int dst, int tag, std::int64_t bytes,
                       mpi::RequestId request) {
    ++messages_;
    const std::uint64_t uid = next_uid_++;
    rdv_sends_.emplace(uid,
                       RdvSend{mpi::Envelope{src, dst, tag, bytes}, request,
                               -1});
    ++ranks_[static_cast<std::size_t>(src)].outstanding_handshakes;
    const SimTime rts_arrival = inject(src, dst, 0);
    engine_.at(rts_arrival, [this, uid] { on_rts_arrival(uid); });
  }

  void on_rts_arrival(std::uint64_t send_uid) {
    const RdvSend& send = rdv_sends_.at(send_uid);
    RankState& s = ranks_[static_cast<std::size_t>(send.envelope.dst)];
    auto it = std::find_if(s.posted_recvs.begin(), s.posted_recvs.end(),
                           [&](const PostedRecv& r) {
                             return send.envelope.matches(r.src, r.tag);
                           });
    if (it == s.posted_recvs.end()) {
      s.unexpected_rts.push_back(RtsRecord{send_uid, send.envelope});
      return;
    }
    const mpi::RequestId recv_request = it->request;
    s.posted_recvs.erase(it);
    issue_cts(send_uid, recv_request);
  }

  void issue_cts(std::uint64_t send_uid, mpi::RequestId recv_request) {
    RdvSend& send = rdv_sends_.at(send_uid);
    send.recv_request = recv_request;
    const SimTime cts_arrival =
        inject(send.envelope.dst, send.envelope.src, 0);
    engine_.at(cts_arrival, [this, send_uid] { on_cts_arrival(send_uid); });
  }

  void on_cts_arrival(std::uint64_t send_uid) {
    const RdvSend& send = rdv_sends_.at(send_uid);
    RankState& s = ranks_[static_cast<std::size_t>(send.envelope.src)];
    --s.outstanding_handshakes;
    const bool must_defer =
        options_.pipelining == mpi::RendezvousPipelining::deferred_push &&
        s.outstanding_handshakes > 0;
    if (must_defer) {
      s.deferred.push_back(send_uid);
      return;
    }
    if (s.outstanding_handshakes == 0 && !s.deferred.empty()) {
      std::vector<std::uint64_t> flush;
      flush.swap(s.deferred);
      for (const std::uint64_t uid : flush) push_data(uid);
    }
    push_data(send_uid);
  }

  void push_data(std::uint64_t send_uid) {
    const auto node = rdv_sends_.extract(send_uid);
    const RdvSend send = node.mapped();
    const int src = send.envelope.src;
    const int dst = send.envelope.dst;
    const mpi::RequestId send_request = send.send_request;
    const mpi::RequestId recv_request = send.recv_request;
    transfer(src, dst, send.envelope.bytes,
             [this, src, send_request] {
               complete(src, send_request, Duration::zero());
             },
             [this, dst, recv_request, src] {
               complete(dst, recv_request, link(src, dst).overhead);
             });
  }

  sim::Engine& engine_;
  net::FabricProfile fabric_;
  Options options_;
  std::int64_t eager_limit_;
  int nranks_;
  int per_socket_;
  int sockets_per_node_;
  CompletionFn on_complete_;
  std::vector<RankState> ranks_;
  std::unordered_map<std::uint64_t, RdvSend> rdv_sends_;
  std::unordered_map<std::int64_t, std::int64_t> eager_backlog_;
  std::uint64_t next_uid_ = 0;
  std::uint64_t messages_ = 0;
};

/// The pre-flattening process interpreter: refcounted program handle and a
/// type-erased completion seam, minus the noise/memory machinery the bench
/// workloads never touch.
class Process {
 public:
  Process(int rank, sim::Engine& engine, Transport& transport,
          mpi::Trace& trace)
      : rank_(rank), engine_(engine), transport_(transport), trace_(trace) {}

  void set_program(std::shared_ptr<const mpi::Program> program) {
    program_ = std::move(program);
  }

  void start() {
    engine_.at(engine_.now(), [this] { resume(); });
  }

  [[nodiscard]] bool done() const { return done_; }

  void on_request_complete(mpi::RequestId id) {
    mpi::Request& req = requests_[static_cast<std::size_t>(id)];
    req.complete = true;
    if (!blocked_) return;
    const bool all_done =
        std::all_of(requests_.begin(), requests_.end(),
                    [](const mpi::Request& r) { return r.complete; });
    if (!all_done) return;
    blocked_ = false;
    const SimTime now = engine_.now();
    if (now > wait_begin_) {
      trace_.add_segment(rank_,
                         mpi::Segment{mpi::SegKind::wait, wait_begin_, now,
                                      next_step_ - 1, Duration::zero()});
    }
    requests_.clear();
    ++pc_;
    resume();
  }

 private:
  void resume() {
    const auto& ops = program_->ops();
    while (pc_ < ops.size()) {
      const mpi::Op& op = ops[pc_];
      if (const auto* comp = std::get_if<mpi::OpCompute>(&op)) {
        const SimTime begin = engine_.now();
        const std::int32_t step = next_step_ - 1;
        engine_.after(comp->duration, [this, begin, step] {
          trace_.add_segment(rank_,
                             mpi::Segment{mpi::SegKind::compute, begin,
                                          engine_.now(), step,
                                          Duration::zero()});
          ++pc_;
          resume();
        });
        return;
      }
      if (const auto* send = std::get_if<mpi::OpIsend>(&op)) {
        const auto id = static_cast<mpi::RequestId>(requests_.size());
        requests_.push_back(mpi::Request{mpi::Request::Kind::send, send->peer,
                                         send->tag, send->bytes, false, false,
                                         SimTime{}});
        transport_.post_send(rank_, send->peer, send->tag, send->bytes, id);
        ++pc_;
        continue;
      }
      if (const auto* recv = std::get_if<mpi::OpIrecv>(&op)) {
        const auto id = static_cast<mpi::RequestId>(requests_.size());
        requests_.push_back(mpi::Request{mpi::Request::Kind::recv, recv->peer,
                                         recv->tag, recv->bytes, false, false,
                                         SimTime{}});
        transport_.post_recv(rank_, recv->peer, recv->tag, recv->bytes, id);
        ++pc_;
        continue;
      }
      if (std::holds_alternative<mpi::OpWaitAll>(op)) {
        const bool all_done =
            std::all_of(requests_.begin(), requests_.end(),
                        [](const mpi::Request& r) { return r.complete; });
        if (all_done) {
          requests_.clear();
          ++pc_;
          continue;
        }
        blocked_ = true;
        wait_begin_ = engine_.now();
        return;
      }
      if (const auto* mark = std::get_if<mpi::OpMark>(&op)) {
        (void)mark;
        trace_.mark_step(rank_, next_step_, engine_.now());
        ++next_step_;
        ++pc_;
        continue;
      }
      throw std::logic_error("naive bench replica: unsupported op kind");
    }
    if (!done_) {
      done_ = true;
      trace_.set_finish(rank_, engine_.now());
    }
  }

  int rank_;
  sim::Engine& engine_;
  Transport& transport_;
  mpi::Trace& trace_;
  std::shared_ptr<const mpi::Program> program_;
  std::size_t pc_ = 0;
  std::int32_t next_step_ = 0;
  std::vector<mpi::Request> requests_;
  bool blocked_ = false;
  SimTime wait_begin_;
  bool done_ = false;
};

/// One fresh world per run, like every pre-reuse call site did.
std::uint64_t run(const net::TopologySpec& topo_spec,
                  const net::FabricProfile& fabric, const Options& options,
                  const std::vector<mpi::Program>& programs) {
  sim::Engine engine;
  net::Topology topo(topo_spec);
  Transport transport(engine, topo, fabric, options);
  mpi::Trace trace(topo.ranks());
  std::vector<std::unique_ptr<Process>> processes;
  processes.reserve(programs.size());
  for (int rank = 0; rank < topo.ranks(); ++rank) {
    auto proc = std::make_unique<Process>(rank, engine, transport, trace);
    proc->set_program(std::make_shared<const mpi::Program>(
        programs[static_cast<std::size_t>(rank)]));
    processes.push_back(std::move(proc));
  }
  transport.set_completion_handler(
      [&processes](int rank, mpi::RequestId request) {
        processes[static_cast<std::size_t>(rank)]->on_request_complete(
            request);
      });
  for (auto& proc : processes) proc->start();
  engine.run();
  for (const auto& proc : processes)
    if (!proc->done())
      throw std::logic_error("naive bench replica deadlocked");
  return transport.messages();
}

}  // namespace naive

// ---------------------------------------------------------------------------
// Workloads. Both sides interpret the same per-rank programs.

struct Workload {
  std::string name;
  net::TopologySpec topo;
  mpi::TransportConfig config;
  std::vector<mpi::Program> programs;
};

Workload make_eager_storm(int ranks, int steps) {
  workload::RingSpec ring;
  ring.ranks = ranks;
  ring.steps = steps;
  ring.distance = 8;      // d = 8 neighbor exchange (cf. the Fig. 7 distance scan):
                          // a burst of messages per step
  ring.msg_bytes = 1024;  // far below the eager limit
  ring.texec = microseconds(1.0);
  ring.direction = workload::Direction::unidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.noisy = false;
  return Workload{"eager_storm", net::TopologySpec::one_rank_per_node(ranks),
                  {}, workload::build_ring(ring)};
}

Workload make_rendezvous_pipeline(int ranks, int steps) {
  workload::RingSpec ring;
  ring.ranks = ranks;
  ring.steps = steps;
  ring.msg_bytes = 262144;  // above the 128 KiB limit -> RTS/CTS handshakes
  ring.texec = microseconds(1.0);
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.noisy = false;
  return Workload{"rendezvous_pipeline",
                  net::TopologySpec::one_rank_per_node(ranks), {},
                  workload::build_ring(ring)};
}

/// Paired ranks; the receiver computes before posting its receives, so the
/// sender's eager burst always lands unexpected and every post_recv scans
/// the unexpected queue.
Workload make_unexpected_storm(int pairs, int steps, int burst) {
  std::vector<mpi::Program> programs(static_cast<std::size_t>(2 * pairs));
  for (int p = 0; p < pairs; ++p) {
    mpi::Program& snd = programs[static_cast<std::size_t>(2 * p)];
    mpi::Program& rcv = programs[static_cast<std::size_t>(2 * p + 1)];
    for (int s = 0; s < steps; ++s) {
      snd.mark(s);
      for (int b = 0; b < burst; ++b) snd.isend(2 * p + 1, 2048, b);
      snd.waitall();
      rcv.mark(s);
      rcv.compute(microseconds(50.0), false);
      for (int b = 0; b < burst; ++b) rcv.irecv(2 * p, 2048, b);
      rcv.waitall();
    }
  }
  return Workload{"unexpected_storm",
                  net::TopologySpec::one_rank_per_node(2 * pairs), {},
                  std::move(programs)};
}

// ---------------------------------------------------------------------------
// Measurement.

struct Measurement {
  std::uint64_t messages = 0;
  double seconds = std::numeric_limits<double>::infinity();
};

double msgs_per_sec(const Measurement& m) {
  return m.seconds > 0 ? static_cast<double>(m.messages) / m.seconds : 0.0;
}

/// The production stack, run the way sweeps run it: one Cluster recycled
/// across runs via reset().
class FastLab {
 public:
  std::uint64_t run(const Workload& wl) {
    core::ClusterConfig config;
    config.topo = wl.topo;
    config.transport = wl.config;
    if (cluster_ == nullptr) {
      cluster_ = std::make_unique<core::Cluster>(config);
    } else {
      cluster_->reset(config);
    }
    (void)cluster_->run(wl.programs);
    const auto& stats = cluster_->transport_stats();
    return stats.eager_sends + stats.rendezvous_sends;
  }

  [[nodiscard]] mpi::Transport::PoolStats pool_stats() const {
    return cluster_->transport_pool_stats();
  }

 private:
  std::unique_ptr<core::Cluster> cluster_;
};

template <typename RunFn>
Measurement measure(RunFn run_once) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t messages = run_once();
  const auto stop = std::chrono::steady_clock::now();
  return Measurement{messages,
                     std::chrono::duration<double>(stop - start).count()};
}

struct Comparison {
  std::string name;
  Measurement naive;
  Measurement fast;
  [[nodiscard]] double speedup() const {
    const double n = msgs_per_sec(naive);
    return n > 0 ? msgs_per_sec(fast) / n : 0.0;
  }
};

void write_json(const std::string& path, const std::string& mode,
                const std::vector<Comparison>& comparisons, bool zero_alloc,
                bool protocol_zero_alloc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"bench\": \"perf_transport\",\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"workloads\": {\n";
  double log_sum = 0.0;
  double min_speedup = std::numeric_limits<double>::infinity();
  double eager_speedup = 0.0;
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const Comparison& c = comparisons[i];
    log_sum += std::log(c.speedup());
    min_speedup = std::min(min_speedup, c.speedup());
    if (c.name == "eager_storm") eager_speedup = c.speedup();
    out << "    \"" << c.name << "\": {\n"
        << "      \"messages\": " << c.fast.messages << ",\n"
        << "      \"naive_msgs_per_sec\": " << msgs_per_sec(c.naive) << ",\n"
        << "      \"fast_msgs_per_sec\": " << msgs_per_sec(c.fast) << ",\n"
        << "      \"speedup\": " << c.speedup() << "\n"
        << "    }" << (i + 1 < comparisons.size() ? "," : "") << "\n";
  }
  out << "  },\n"
      << "  \"summary\": {\n"
      << "    \"geomean_speedup\": "
      << std::exp(log_sum / static_cast<double>(comparisons.size())) << ",\n"
      << "    \"min_speedup\": " << min_speedup << ",\n"
      << "    \"eager_storm_speedup\": " << eager_speedup << ",\n"
      << "    \"steady_state_zero_alloc\": " << (zero_alloc ? "true" : "false")
      << ",\n"
      << "    \"protocol_zero_alloc\": "
      << (protocol_zero_alloc ? "true" : "false") << "\n  }\n}\n";
}

int bench_main(int argc, char** argv) {
  if (const int rc = bench::refuse_if_instrumented("perf_transport")) return rc;
  const Cli cli(argc, argv);
  cli.allow_only({"json", "out", "quick", "reps", "ranks", "steps"});
  const bool quick = cli.has("quick");
  const int reps =
      static_cast<int>(cli.get_or("reps", std::int64_t{quick ? 2 : 5}));
  const int ranks =
      static_cast<int>(cli.get_or("ranks", std::int64_t{quick ? 32 : 64}));
  const int steps =
      static_cast<int>(cli.get_or("steps", std::int64_t{quick ? 60 : 300}));
  const std::string out_path =
      cli.get("json").value_or(cli.get_or("out", "BENCH_transport.json"));

  bench::print_header(
      "perf_transport",
      "message-path throughput: flattened transport (rank-indexed wiring, "
      "pooled slab/ring queues) vs naive replica");

  const net::FabricProfile fabric = net::FabricProfile::infiniband_qdr();
  std::vector<Workload> workloads;
  workloads.push_back(make_eager_storm(ranks, steps * 2));
  workloads.push_back(make_rendezvous_pipeline(ranks / 2, steps));
  workloads.push_back(make_unexpected_storm(ranks / 4, steps, 4));

  std::vector<Comparison> comparisons;
  bool zero_alloc = true;
  for (const Workload& wl : workloads) {
    Comparison c;
    c.name = wl.name;
    // Interleave the A/B reps so clock-frequency drift hits both sides
    // alike; keep the best rep of each.
    FastLab lab;
    for (int r = 0; r < reps; ++r) {
      const Measurement naive_m = measure([&] {
        return naive::run(wl.topo, fabric, naive::options_from(wl.config),
                          wl.programs);
      });
      const Measurement fast_m = measure([&] { return lab.run(wl); });
      if (naive_m.seconds < c.naive.seconds) c.naive = naive_m;
      if (fast_m.seconds < c.fast.seconds) c.fast = fast_m;
    }
    if (c.fast.messages != c.naive.messages)
      throw std::logic_error("A/B message counts diverged on " + wl.name);

    // Zero-allocation certification: with the pools warm from the timed
    // reps, two more runs must not grow any transport pool.
    (void)lab.run(wl);
    const std::uint64_t warm = lab.pool_stats().allocations;
    (void)lab.run(wl);
    zero_alloc = zero_alloc && lab.pool_stats().allocations == warm;

    comparisons.push_back(std::move(c));
    const Comparison& done = comparisons.back();
    std::cout << done.name << ": naive " << msgs_per_sec(done.naive) / 1e6
              << " Mmsg/s, fast " << msgs_per_sec(done.fast) / 1e6
              << " Mmsg/s, speedup " << done.speedup() << "x ("
              << done.fast.messages << " msgs)\n";
  }

  // Protocol-realism certification: the finite-injection NIC retry backlog
  // and the credit window must keep the steady state allocation-free too.
  // No A/B here — the naive replica predates both features — so the fast
  // stack alone runs a backlogging burst and a credit-starved burst and
  // must not grow a pool after warm-up.
  bool protocol_zero_alloc = true;
  {
    Workload nic_wl = make_eager_storm(ranks, steps);
    nic_wl.name = "eager_storm+finite_nic";
    nic_wl.config = mpi::TransportConfig::finite_nic(2);
    Workload credit_wl = make_unexpected_storm(ranks / 4, steps, 4);
    credit_wl.name = "unexpected_storm+credits";
    credit_wl.config = mpi::TransportConfig::credit_limited(2);
    for (const Workload& wl : {nic_wl, credit_wl}) {
      FastLab lab;
      (void)lab.run(wl);  // warm: backlog rings and credit table size up
      const std::uint64_t warm = lab.pool_stats().allocations;
      (void)lab.run(wl);
      const bool clean = lab.pool_stats().allocations == warm;
      protocol_zero_alloc = protocol_zero_alloc && clean;
      std::cout << wl.name << ": steady-state zero allocation: "
                << (clean ? "yes" : "NO") << "\n";
    }
  }

  double min_speedup = std::numeric_limits<double>::infinity();
  for (const Comparison& c : comparisons)
    min_speedup = std::min(min_speedup, c.speedup());
  std::cout << "\nsteady-state zero allocation: "
            << (zero_alloc ? "yes" : "NO") << "\n";

  write_json(out_path, quick ? "quick" : "full", comparisons, zero_alloc,
             protocol_zero_alloc);
  std::cout << "wrote " << out_path << "\n";

  // Correctness guard for CI: the flattened path regressing below the naive
  // replica (or leaking steady-state allocations, with or without the
  // protocol features enabled) fails the run.
  return (min_speedup >= 1.0 && zero_alloc && protocol_zero_alloc) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
