// Fig. 2 reproduction: emergent irregular structure in an MPI-parallel LBM
// D3Q19 proxy (302^3 cells, 100 ranks on 5 nodes, 1-D decomposition,
// periodic boundaries) compared with the regular nonoverlapping model.
//
// For each snapshot timestep t the bench prints where every rank's step t
// sits on the wall-clock axis (paper: red markers) next to the model
// position, plus the cross-rank spread ("amplitude") and the deviation of
// the actual runtime from the model (the paper observes the real run ~2.5%
// FASTER by t = 10000 thanks to desynchronization-driven overlap).
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/lbm.hpp"

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "steps", "ranks", "cells", "seed", "positions", "halo-pops"});
  auto csv = bench::csv_from_cli(cli);
  // Full paper scale: 10000 steps. Default trimmed for bench-suite runtime;
  // pass --steps 10000 for the complete figure.
  const int steps = static_cast<int>(cli.get_or("steps", std::int64_t{2000}));
  const int ranks = static_cast<int>(cli.get_or("ranks", std::int64_t{100}));
  const int cells = static_cast<int>(cli.get_or("cells", std::int64_t{302}));
  const bool positions = cli.has("positions");

  workload::LbmSpec spec;
  spec.nx = cells;
  spec.ny = cells;
  spec.nz = cells;
  spec.ranks = ranks;
  spec.steps = steps;
  // Default to exchanging the full population set per face (as simple LBM
  // implementations do); this reproduces the paper's >= 30 % communication
  // share. --halo-pops 5 gives the minimal-PDF exchange instead.
  spec.halo_populations =
      static_cast<int>(cli.get_or("halo-pops", std::int64_t{19}));

  bench::print_header(
      "Fig. 2 — LBM D3Q19 proxy: emergent structure vs model regularity",
      std::to_string(cells) + "^3 cells (" +
          fmt_bytes(workload::lbm_working_set(spec)) + " working set), " +
          std::to_string(ranks) + " ranks on " + std::to_string(ranks / 20) +
          " nodes, " + std::to_string(steps) + " steps");

  core::ClusterConfig config;
  config.topo = net::TopologySpec::packed(ranks, 10);
  config.memory = core::MemorySystem{};
  config.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  config.seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{5}));

  core::Cluster cluster(config);
  const auto trace = cluster.run(workload::build_lbm(spec));

  // The nonoverlapping model: per-step exec (socket-shared bandwidth) plus
  // halo exchange at the internode bandwidth.
  const double exec_s = static_cast<double>(workload::lbm_bytes_per_rank(spec)) /
                        (40e9 / 10.0);
  const double comm_s =
      2.0 * static_cast<double>(workload::lbm_halo_bytes(spec)) / 3e9;
  const double model_step_s = exec_s + comm_s;

  const std::vector<int> snapshots{1,    20,   60,   100,
                                   500,  1000, 2000, 5000, 10000};
  TextTable table;
  table.columns({"t", "model pos [s]", "actual median [s]", "spread [ms]",
                 "deviation [%]"});
  csv.header({"t", "model_s", "median_s", "min_s", "max_s", "spread_ms"});

  for (const int t : snapshots) {
    if (t >= steps) break;
    std::vector<double> pos;
    pos.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r)
      pos.push_back(
          trace.step_begin(r)[static_cast<std::size_t>(t)].sec());
    const Summary s = summarize(pos);
    const double model_pos = model_step_s * t;
    table.add_row({std::to_string(t), fmt_fixed(model_pos, 3),
                   fmt_fixed(s.median, 3),
                   fmt_fixed((s.max - s.min) * 1e3, 1),
                   fmt_fixed((s.median / model_pos - 1.0) * 100.0, 2)});
    csv.row({std::to_string(t), csv_num(model_pos), csv_num(s.median),
             csv_num(s.min), csv_num(s.max),
             csv_num((s.max - s.min) * 1e3)});

    if (positions) {
      std::cout << "t = " << t << " per-rank positions [s]:";
      for (int r = 0; r < ranks; r += 10)
        std::cout << ' ' << fmt_fixed(pos[static_cast<std::size_t>(r)], 4);
      std::cout << '\n';
    }
  }
  std::cout << table.render() << "\n";

  // Communication share, as a sanity anchor against the paper's >= 30%.
  double wait_ns = 0, total_ns = 0;
  for (int r = 0; r < ranks; ++r) {
    wait_ns += static_cast<double>(trace.total(r, mpi::SegKind::wait).ns());
    total_ns += static_cast<double>((trace.finish(r) - SimTime::zero()).ns());
  }
  std::cout << "communication share of runtime: "
            << fmt_fixed(wait_ns / total_ns * 100.0, 1) << " %\n";
  std::cout
      << "Paper: near-model regularity for t <= 100, then an emergent\n"
         "long-wavelength structure with ~0.3 s amplitude by t = 500, and a\n"
         "final runtime ~2.5 % FASTER than the model. The simulator\n"
         "reproduces the >= 30 % communication share and a monotonically\n"
         "growing spread, but the processor-sharing bus model lacks the\n"
         "self-amplifying desynchronization of the real machine, so the\n"
         "spread stays small and the deviation is positive (the model\n"
         "ignores the intra-node copies we charge to the bus). See\n"
         "EXPERIMENTS.md for the full discussion.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
