// Fig. 1 reproduction: strong scaling of the MPI-parallel STREAM triad vs
// the nonoverlapping execution/communication model (Eq. 1).
//
//   (a) total and execution-only performance on 1..9 full sockets (PPN=20
//       per node), model vs measurement; execution-only measurement lands
//       ABOVE the linear-scaling model (desync-driven automatic overlap),
//       total lands BELOW it (intra-node communication the model ignores).
//   (b) closeup at the node level: 1..20 processes on one node.
//   (c) one process per node on 1..15 nodes: the model matches closely.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "core/runtime_model.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/stream_triad.hpp"

namespace {

struct Measurement {
  double total_gflops;      // from the median cycle time
  double exec_gflops_med;   // execution-only, median across ranks
  double exec_gflops_min;
  double exec_gflops_max;
};

Measurement run_stream(int ranks, bool ppn1, int steps, std::uint64_t seed) {
  using namespace iw;
  workload::StreamTriadSpec spec;
  spec.ranks = ranks;
  spec.steps = steps;

  core::ClusterConfig config;
  config.topo = ppn1 ? net::TopologySpec::one_rank_per_node(ranks)
                     : net::TopologySpec::packed(ranks, 10);
  config.memory = core::MemorySystem{};
  config.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  config.seed = seed;

  core::Cluster cluster(config);
  const auto trace = cluster.run(workload::build_stream_triad(spec));

  const int settle = steps / 2;
  const Duration cycle = core::measured_cycle(trace, 0, settle, steps - 1);
  const auto flops = workload::triad_flops_per_step(spec);

  // Execution-only performance per rank: flops share / mean compute time.
  std::vector<double> exec_gflops;
  for (int r = 0; r < ranks; ++r) {
    double ns = 0;
    int count = 0;
    for (const auto& seg : trace.segments(r))
      if (seg.kind == mpi::SegKind::compute && seg.step >= settle) {
        ns += static_cast<double>(seg.duration().ns());
        ++count;
      }
    const double mean_exec_s = ns / count * 1e-9;
    exec_gflops.push_back(static_cast<double>(flops) / ranks / mean_exec_s /
                          1e9 * ranks);  // scaled to aggregate
  }
  const Summary s = summarize(exec_gflops);
  return Measurement{
      core::performance_from_time(flops, cycle) / 1e9,
      s.median, s.min, s.max};
}

}  // namespace

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "steps", "seed", "max-sockets", "max-nodes"});
  auto csv = bench::csv_from_cli(cli);
  const int steps = static_cast<int>(cli.get_or("steps", std::int64_t{200}));
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{3}));
  const int max_sockets =
      static_cast<int>(cli.get_or("max-sockets", std::int64_t{9}));
  const int max_nodes =
      static_cast<int>(cli.get_or("max-nodes", std::int64_t{15}));

  bench::print_header(
      "Fig. 1 — STREAM triad strong scaling vs the Eq. 1 model",
      "Vmem = 1.2 GB, Vnet = 2 MB per neighbor, bmem = 40 GB/s, bnet = 3 "
      "GB/s; " + std::to_string(steps) + " timesteps");

  const core::StreamModelParams model;
  csv.header({"panel", "x", "measured_total_gflops", "model_total_gflops",
              "measured_exec_gflops", "model_exec_gflops"});

  // ---- Panel (a): full sockets, PPN = 20 per node ----
  std::cout << "(a) scaling over full sockets (10 ranks per socket)\n";
  TextTable ta;
  ta.columns({"sockets", "total meas [GF/s]", "total model [GF/s]",
              "exec meas med [GF/s]", "exec meas min/max",
              "exec model [GF/s]"});
  for (int sockets = 1; sockets <= max_sockets; ++sockets) {
    const Measurement m = run_stream(sockets * 10, false, steps, seed);
    const double model_total = core::stream_performance(model, sockets) / 1e9;
    const double model_exec =
        core::stream_exec_performance(model, sockets) / 1e9;
    ta.add_row({std::to_string(sockets), fmt_fixed(m.total_gflops, 2),
                fmt_fixed(model_total, 2), fmt_fixed(m.exec_gflops_med, 2),
                fmt_fixed(m.exec_gflops_min, 1) + "/" +
                    fmt_fixed(m.exec_gflops_max, 1),
                fmt_fixed(model_exec, 2)});
    csv.row({"a", std::to_string(sockets), csv_num(m.total_gflops),
             csv_num(model_total), csv_num(m.exec_gflops_med),
             csv_num(model_exec)});
  }
  std::cout << ta.render() << "\n";

  // ---- Panel (b): node-level closeup ----
  std::cout << "(b) closeup at the node level (1..20 processes, one node)\n";
  TextTable tb;
  tb.columns({"processes", "total meas [GF/s]", "total model [GF/s]"});
  for (int p = 2; p <= 20; p += 2) {
    const Measurement m = run_stream(p, false, steps, seed);
    // Model: performance limited by the occupied sockets' bandwidth share.
    const int sockets = (p + 9) / 10;
    const double model_total = core::stream_performance(model, sockets) / 1e9;
    tb.add_row({std::to_string(p), fmt_fixed(m.total_gflops, 2),
                fmt_fixed(model_total, 2)});
    csv.row({"b", std::to_string(p), csv_num(m.total_gflops),
             csv_num(model_total), "", ""});
  }
  std::cout << tb.render() << "\n";

  // ---- Panel (c): PPN = 1 ----
  std::cout << "(c) one process per node (no intra-node contention)\n";
  TextTable tc;
  tc.columns({"nodes", "total meas [GF/s]", "total model (PPN=1) [GF/s]"});
  for (int nodes = 1; nodes <= max_nodes; nodes += 2) {
    const Measurement m = run_stream(nodes, true, steps, seed);
    // PPN=1 model: each rank limited by the core bandwidth, comm unchanged.
    const double exec_s = model.vmem_bytes / (nodes * 6.7e9);
    const double comm_s = nodes > 1 ? 2.0 * model.vnet_bytes / model.bnet_Bps
                                    : 0.0;
    const double model_total =
        static_cast<double>(model.flops) / (exec_s + comm_s) / 1e9;
    tc.add_row({std::to_string(nodes), fmt_fixed(m.total_gflops, 2),
                fmt_fixed(model_total, 2)});
    csv.row({"c", std::to_string(nodes), csv_num(m.total_gflops),
             csv_num(model_total), "", ""});
  }
  std::cout << tc.render() << "\n";

  std::cout
      << "Expected per the paper: (a) execution-only measurement above the\n"
         "linear model (automatic overlap from desynchronization), total\n"
         "measurement below the optimistic model (intra-node communication\n"
         "it ignores); (b) the model works on up to one socket; (c) with\n"
         "PPN=1 the model predicts the average performance well.\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
