// Fig. 9 reproduction: damping of an idle wave by exponential noise of
// different average duration on 36 ranks (six processes per socket on six
// sockets). A 6 ms idle wave (four 1.5 ms phases) is injected at rank 1,
// step 1; the run lasts 30 time steps.
//
// Paper: ttotal = 51.1 ms (E=0), 82.7 ms (E=20%), 84.6 ms (E=25%); at 25%
// the excess runtime vanishes — the wave is absorbed by the noise.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/timeline.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

namespace {

iw::core::WaveResult run_fig9(double E_percent, bool with_delay,
                              std::uint64_t seed) {
  using namespace iw;
  workload::RingSpec ring;
  ring.ranks = 36;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 8192;
  ring.steps = 30;
  ring.texec = milliseconds(1.5);

  core::WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = core::cluster_for_ring(ring, /*ppn1=*/false, 6);
  exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  exp.cluster.seed = seed;
  if (with_delay)
    exp.delays = workload::single_delay(1, 1, milliseconds(6.0));
  if (E_percent > 0)
    exp.injected_noise =
        noise::NoiseSpec::exponential(milliseconds(1.5 * E_percent / 100.0));
  return core::run_wave_experiment(exp);
}

}  // namespace

int bench_main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"out", "timelines", "runs"});
  auto csv = bench::csv_from_cli(cli);
  const bool timelines = cli.get_or("timelines", std::int64_t{1}) != 0;
  const int runs = static_cast<int>(cli.get_or("runs", std::int64_t{9}));

  bench::print_header(
      "Fig. 9 — idle-period elimination by fine-grained noise",
      "36 ranks (6/socket), 30 steps, Texec = 1.5 ms, 6 ms wave at rank 1; "
      "paper: ttotal = 51.1 / 82.7 / 84.6 ms at E = 0 / 20 / 25 %");

  TextTable table;
  table.columns({"E [%]", "ttotal [ms] (median)", "paper ttotal [ms]",
                 "excess vs no-delay [ms]", "wave absorbed?"});
  csv.header({"E_percent", "ttotal_ms", "excess_ms"});

  struct Level {
    double E;
    const char* paper;
  };
  // E = 40/50 % extend the paper's sweep: our simulated background absorbs
  // more slowly, so full elimination appears at a higher noise level.
  const Level levels[] = {
      {0.0, "51.1"}, {20.0, "82.7"}, {25.0, "84.6"}, {40.0, "-"}, {50.0, "-"}};

  for (const auto& level : levels) {
    std::vector<double> totals, excesses;
    for (int r = 0; r < runs; ++r) {
      const auto seed = static_cast<std::uint64_t>(r) + 1;
      const auto with = run_fig9(level.E, true, seed);
      const auto without = run_fig9(level.E, false, seed);
      totals.push_back(with.trace.makespan().ms());
      excesses.push_back(with.trace.makespan().ms() -
                         without.trace.makespan().ms());
    }
    const double total_med = median(totals);
    const double excess_med = median(excesses);
    table.add_row({fmt_fixed(level.E, 0), fmt_fixed(total_med, 1),
                   level.paper, fmt_fixed(excess_med, 2),
                   excess_med < 2.0   ? "yes"
                   : excess_med < 4.0 ? "partially"
                                      : "no"});
    csv.row({csv_num(level.E), csv_num(total_med), csv_num(excess_med)});

    if (timelines && (level.E == 0.0 || level.E == 25.0 || level.E == 50.0)) {
      const auto show = run_fig9(level.E, true, 1);
      std::cout << "--- E = " << level.E << "% ---\n";
      core::TimelineOptions opts;
      opts.columns = 100;
      opts.socket_separators = true;
      opts.ranks_per_socket = 6;
      std::cout << core::render_timeline(show.trace, opts) << "\n";
    }
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Expected: at E = 0 the excess equals the injected 6 ms; the\n"
         "excess shrinks monotonically with E until the wave is fully\n"
         "absorbed. The paper reaches full absorption at E = 25%; this\n"
         "simulator reaches it near E = 50% because its noisy background\n"
         "advances at ~2x the injected mean per step instead of the real\n"
         "clusters' faster coupled pace (see EXPERIMENTS.md).\n";
  return 0;
}

int main(int argc, char** argv) {
  return iw::bench::guarded_main(bench_main, argc, argv);
}
