// Flight-recorder walkthrough: run one delay-injection experiment with the
// protocol tracer armed and export everything the observability layer
// offers — a Chrome-trace JSON (load it in chrome://tracing or
// https://ui.perfetto.dev), the segment CSV, and the unified metrics
// snapshot.
//
//   ./build/examples/trace_runner --ranks=8 --msg-bytes=1048576
//       --out=wave.trace.json --segments=wave_segments.csv
//       --metrics-json=wave_metrics.json
//
// Rendezvous-sized messages (--msg-bytes above the eager limit) make the
// richest traces: every message becomes an RTS/CTS/push chain with flow
// arrows between the sender and receiver tracks.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "core/trace_io.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "support/cli.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int main(int argc, char** argv) {
  using namespace iw;
  try {
    const Cli cli(argc, argv);
    cli.allow_only({"ranks", "msg-bytes", "steps", "delay-ms", "out",
                    "segments", "metrics-json"});

    workload::RingSpec ring;
    ring.ranks = static_cast<int>(cli.get_or("ranks", std::int64_t{8}));
    ring.direction = workload::Direction::unidirectional;
    ring.boundary = workload::Boundary::open;
    ring.msg_bytes = cli.get_or("msg-bytes", std::int64_t{8192});
    ring.steps = static_cast<int>(cli.get_or("steps", std::int64_t{10}));
    ring.texec = milliseconds(3.0);

    core::WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring, /*ppn1=*/true);
    exp.delays = workload::single_delay(
        /*rank=*/ring.ranks / 2, /*step=*/0,
        milliseconds(cli.get_or("delay-ms", 9.0)));

    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    exp.cluster.tracer = &tracer;
    exp.cluster.metrics = &metrics;

    const core::WaveResult result = core::run_wave_experiment(exp);

    const std::string out = cli.get_or("out", std::string{"trace.json"});
    core::write_chrome_trace(result.trace, tracer.drain_ordered(), out);
    std::cout << "ran " << ring.ranks << " ranks x " << ring.steps
              << " steps (" << ring.msg_bytes << " B messages, protocol "
              << (result.protocol == mpi::WireProtocol::rendezvous
                      ? "rendezvous"
                      : "eager")
              << ")\nrecorded " << tracer.size() << " protocol events ("
              << tracer.dropped() << " dropped)\nwrote Chrome trace: " << out
              << '\n';

    if (const auto seg_path = cli.get("segments")) {
      core::write_segments_csv(result.trace, *seg_path);
      std::cout << "wrote segments CSV: " << *seg_path << '\n';
    }
    if (const auto metrics_path = cli.get("metrics-json")) {
      std::ofstream mout(*metrics_path);
      if (!mout)
        throw std::runtime_error("cannot open metrics output: " +
                                 *metrics_path);
      mout << metrics.snapshot().to_json() << '\n';
      std::cout << "wrote metrics: " << *metrics_path << '\n';
    } else {
      std::cout << "metrics: " << metrics.snapshot().to_json() << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "trace_runner") << ": error: "
              << e.what() << '\n';
    return 1;
  }
}
