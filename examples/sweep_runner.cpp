// Campaign CLI: run a named sweep scenario across a worker pool and stream
// structured results to CSV / JSON-Lines files.
//
//   ./build/examples/sweep_runner --list
//   ./build/examples/sweep_runner --scenario=speed_vs_delay --threads=8
//       --csv=speed.csv --jsonl=speed.jsonl
//   ./build/examples/sweep_runner --scenario=decay_vs_size
//       --msg-bytes=8192,65536,1048576 --noise=5,25 --seed=7
//   ./build/examples/sweep_runner --scenario=nic_injection_sweep
//       --nic-depth=0,4,1 --rdv-flavor=two_sided,rdma_put
//
// Every axis of the IW_SWEEP_AXES registry is overridable as a
// comma-separated list under its declared flag (--delay-ms, --msg-bytes,
// --np, --ppn, --noise, --direction, --boundary, --nic-depth,
// --eager-credits, --rdv-flavor); scalar overrides (--steps, --seed) apply
// to the whole campaign. An N-thread run writes byte-identical output to
// the single-threaded run: point seeds are fixed at expansion and records
// are delivered to the sinks in point order.
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/table.hpp"
#include "sweep/axes.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"

namespace {

using namespace iw;

void print_catalog() {
  TextTable table;
  table.columns({"scenario", "points", "paper", "what it shows"});
  for (const sweep::Scenario& s : sweep::scenario_catalog())
    table.add_row({s.name, std::to_string(s.spec.points()), s.paper_ref,
                   s.summary});
  std::cout << table.render()
            << "\nrun one with: sweep_runner --scenario=<name> [--threads=N] "
               "[--csv=out.csv] [--jsonl=out.jsonl]\n";
}

int sweep_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  std::vector<std::string> known_flags = {"scenario", "list", "threads",
                                          "csv",      "jsonl", "steps",
                                          "seed",     "quiet"};
  for (std::string& flag : sweep::axis_cli_flags())
    known_flags.push_back(std::move(flag));
  cli.allow_only(known_flags);

  if (cli.has("list") || !cli.has("scenario")) {
    print_catalog();
    return cli.has("list") ? 0 : 2;
  }

  const std::string name = cli.get_or("scenario", std::string{});
  const sweep::Scenario* scenario = sweep::find_scenario(name);
  if (!scenario) {
    std::cerr << "unknown scenario: " << name << "\nknown:";
    for (const auto& known : sweep::scenario_names()) std::cerr << ' ' << known;
    std::cerr << '\n';
    return 2;
  }

  sweep::SweepSpec spec = scenario->spec;
  sweep::apply_axis_overrides(spec, cli);
  spec.steps = static_cast<int>(
      cli.get_or("steps", static_cast<std::int64_t>(spec.steps)));
  spec.campaign_seed = static_cast<std::uint64_t>(cli.get_or(
      "seed", static_cast<std::int64_t>(spec.campaign_seed)));

  const int threads = static_cast<int>(cli.get_or("threads", std::int64_t{1}));
  const bool quiet = cli.has("quiet");

  const auto points = sweep::expand(spec);
  std::cout << "campaign '" << scenario->name << "' (" << scenario->paper_ref
            << "): " << points.size() << " points, " << threads
            << (threads == 1 ? " thread\n" : " threads\n");

  const auto csv_path = cli.get("csv");
  const auto jsonl_path = cli.get("jsonl");
  std::unique_ptr<sweep::CsvSink> csv;
  std::unique_ptr<sweep::JsonlSink> jsonl;
  if (csv_path) csv = std::make_unique<sweep::CsvSink>(*csv_path);
  if (jsonl_path) jsonl = std::make_unique<sweep::JsonlSink>(*jsonl_path);

  sweep::RunnerOptions options;
  options.threads = threads;
  if (csv) options.sinks.push_back(csv.get());
  if (jsonl) options.sinks.push_back(jsonl.get());
  if (!quiet)
    options.on_progress = [](std::size_t done, std::size_t total) {
      if (done == total || done % 10 == 0)
        std::cerr << "\r  " << done << "/" << total << " points" << std::flush;
    };

  const sweep::CampaignResult result = sweep::run_campaign(points, options);
  if (!quiet) std::cerr << '\n';

  std::cout << '\n'
            << sweep::render_summary(result.records) << '\n'
            << result.records.size() << "/" << result.total_points
            << " points in " << fmt_fixed(result.seconds, 2) << " s ("
            << fmt_fixed(result.points_per_sec(), 1) << " points/s)\n";
  if (csv_path) std::cout << "wrote CSV:   " << *csv_path << '\n';
  if (jsonl_path) std::cout << "wrote JSONL: " << *jsonl_path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return sweep_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "sweep_runner") << ": error: "
              << e.what() << '\n';
    return 1;
  }
}
