// Campaign CLI: run a named sweep scenario across a worker pool and stream
// structured results to CSV / JSON-Lines files.
//
//   ./build/examples/sweep_runner --list
//   ./build/examples/sweep_runner --scenario=speed_vs_delay --threads=8
//       --csv=speed.csv --jsonl=speed.jsonl
//   ./build/examples/sweep_runner --scenario=decay_vs_size
//       --msg-bytes=8192,65536,1048576 --noise=5,25 --seed=7
//   ./build/examples/sweep_runner --scenario=nic_injection_sweep
//       --nic-depth=0,4,1 --rdv-flavor=two_sided,rdma_put
//
// Every axis of the IW_SWEEP_AXES registry is overridable as a
// comma-separated list under its declared flag (--delay-ms, --msg-bytes,
// --np, --ppn, --noise, --direction, --boundary, --nic-depth,
// --eager-credits, --rdv-flavor); scalar overrides (--steps, --seed) apply
// to the whole campaign. An N-thread run writes byte-identical output to
// the single-threaded run: point seeds are fixed at expansion and records
// are delivered to the sinks in point order.
//
// Observability:
//   --progress             live status line (done/total, elapsed, ETA,
//                          points/s); silent when stdout is not a TTY or
//                          under --quiet
//   --metrics-json=m.json  unified metrics snapshot of the campaign
//   --trace=<scenario:point>   replay one expanded point with the protocol
//                          flight recorder armed and write a Chrome-trace
//                          JSON (chrome://tracing, Perfetto); --trace-out
//                          overrides the output path
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/trace_io.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "sweep/axes.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"

namespace {

using namespace iw;

void print_catalog() {
  TextTable table;
  table.columns({"scenario", "points", "paper", "what it shows"});
  for (const sweep::Scenario& s : sweep::scenario_catalog())
    table.add_row({s.name, std::to_string(s.spec.points()), s.paper_ref,
                   s.summary});
  std::cout << table.render()
            << "\nrun one with: sweep_runner --scenario=<name> [--threads=N] "
               "[--csv=out.csv] [--jsonl=out.jsonl]\n";
}

/// The scenario's spec with every CLI override applied (shared between the
/// campaign path and --trace single-point replay, so a traced point sees
/// exactly the campaign's expansion).
sweep::SweepSpec scenario_spec(const sweep::Scenario& scenario,
                               const Cli& cli) {
  sweep::SweepSpec spec = scenario.spec;
  sweep::apply_axis_overrides(spec, cli);
  spec.steps = static_cast<int>(
      cli.get_or("steps", static_cast<std::int64_t>(spec.steps)));
  spec.campaign_seed = static_cast<std::uint64_t>(cli.get_or(
      "seed", static_cast<std::int64_t>(spec.campaign_seed)));
  return spec;
}

/// --trace=<scenario:point>: replays one expanded point with the flight
/// recorder armed and writes a Chrome-trace JSON.
int run_traced_point(const std::string& arg, const Cli& cli) {
  const auto colon = arg.find(':');
  if (colon == std::string::npos || colon + 1 == arg.size())
    throw std::runtime_error("--trace wants <scenario>:<point-index>");
  const std::string name = arg.substr(0, colon);
  const sweep::Scenario* scenario = sweep::find_scenario(name);
  if (scenario == nullptr)
    throw std::runtime_error("--trace: unknown scenario '" + name + "'");
  std::size_t index = 0;
  try {
    index = std::stoul(arg.substr(colon + 1));
  } catch (const std::logic_error&) {
    throw std::runtime_error("--trace: bad point index in '" + arg + "'");
  }
  const auto points = sweep::expand(scenario_spec(*scenario, cli));
  if (index >= points.size())
    throw std::runtime_error(
        "--trace: point " + std::to_string(index) + " out of range ('" +
        name + "' expands to " + std::to_string(points.size()) + " points)");

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  core::WaveExperiment exp = points[index].exp;
  exp.cluster.tracer = &tracer;
  exp.cluster.metrics = &metrics;
  const core::WaveResult result = core::run_wave_experiment(exp);

  const std::string out = cli.get_or(
      "trace-out", name + "_point" + std::to_string(index) + ".trace.json");
  core::write_chrome_trace(result.trace, tracer.drain_ordered(), out);
  std::cout << "traced '" << name << "' point " << index << ": "
            << tracer.size() << " protocol records (" << tracer.dropped()
            << " dropped)\nwrote Chrome trace: " << out << '\n'
            << "metrics: " << metrics.snapshot().to_json() << '\n';
  return 0;
}

int sweep_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  std::vector<std::string> known_flags = {
      "scenario", "list",  "threads",  "csv",          "jsonl",
      "steps",    "seed",  "quiet",    "progress",     "metrics-json",
      "trace",    "trace-out"};
  for (std::string& flag : sweep::axis_cli_flags())
    known_flags.push_back(std::move(flag));
  cli.allow_only(known_flags);

  if (cli.has("list")) {
    print_catalog();
    return 0;
  }
  if (const auto traced = cli.get("trace")) return run_traced_point(*traced, cli);
  if (!cli.has("scenario")) {
    print_catalog();
    return 2;
  }

  const std::string name = cli.get_or("scenario", std::string{});
  const sweep::Scenario* scenario = sweep::find_scenario(name);
  if (!scenario) {
    std::cerr << "unknown scenario: " << name << "\nknown:";
    for (const auto& known : sweep::scenario_names()) std::cerr << ' ' << known;
    std::cerr << '\n';
    return 2;
  }

  const sweep::SweepSpec spec = scenario_spec(*scenario, cli);

  const int threads = static_cast<int>(cli.get_or("threads", std::int64_t{1}));
  const bool quiet = cli.has("quiet");

  const auto points = sweep::expand(spec);
  std::cout << "campaign '" << scenario->name << "' (" << scenario->paper_ref
            << "): " << points.size() << " points, " << threads
            << (threads == 1 ? " thread\n" : " threads\n");

  const auto csv_path = cli.get("csv");
  const auto jsonl_path = cli.get("jsonl");
  std::unique_ptr<sweep::CsvSink> csv;
  std::unique_ptr<sweep::JsonlSink> jsonl;
  if (csv_path) csv = std::make_unique<sweep::CsvSink>(*csv_path);
  if (jsonl_path) jsonl = std::make_unique<sweep::JsonlSink>(*jsonl_path);

  sweep::RunnerOptions options;
  options.threads = threads;
  if (csv) options.sinks.push_back(csv.get());
  if (jsonl) options.sinks.push_back(jsonl.get());
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  // --progress upgrades the every-10-points stderr counter to a live status
  // line; it stays silent when stdout is not a TTY (piped/redirected runs)
  // or under --quiet, so machine-read output never sees control characters.
  const bool live_progress =
      cli.has("progress") && !quiet && ::isatty(STDOUT_FILENO) != 0;
  if (live_progress) {
    const auto begin = std::chrono::steady_clock::now();
    options.on_progress = [begin](std::size_t done, std::size_t total) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - begin)
                                 .count();
      const double rate =
          elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
      const double eta =
          rate > 0.0 ? static_cast<double>(total - done) / rate : 0.0;
      std::cout << "\r  " << done << '/' << total << " points | elapsed "
                << fmt_fixed(elapsed, 1) << " s | eta " << fmt_fixed(eta, 1)
                << " s | " << fmt_fixed(rate, 1) << " points/s   ";
      if (done == total) std::cout << '\n';
      std::cout << std::flush;
    };
  } else if (!quiet) {
    options.on_progress = [](std::size_t done, std::size_t total) {
      if (done == total || done % 10 == 0)
        std::cerr << "\r  " << done << "/" << total << " points" << std::flush;
    };
  }

  const sweep::CampaignResult result = sweep::run_campaign(points, options);
  if (!quiet && !live_progress) std::cerr << '\n';

  std::cout << '\n'
            << sweep::render_summary(result.records) << '\n'
            << result.records.size() << "/" << result.total_points
            << " points in " << fmt_fixed(result.seconds, 2) << " s ("
            << fmt_fixed(result.points_per_sec(), 1) << " points/s)\n";
  if (csv_path) std::cout << "wrote CSV:   " << *csv_path << '\n';
  if (jsonl_path) std::cout << "wrote JSONL: " << *jsonl_path << '\n';
  if (const auto metrics_path = cli.get("metrics-json")) {
    std::ofstream out(*metrics_path);
    if (!out)
      throw std::runtime_error("cannot open metrics output: " + *metrics_path);
    out << metrics.snapshot().to_json() << '\n';
    std::cout << "wrote metrics: " << *metrics_path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return sweep_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "sweep_runner") << ": error: "
              << e.what() << '\n';
    return 1;
  }
}
