// Golden-corpus verification CLI: replay catalog scenarios and certify them
// against checked-in reference results and the analytic oracles.
//
//   ./build/examples/verify_runner --all                  # full certification
//   ./build/examples/verify_runner --all --quick          # CI subset
//   ./build/examples/verify_runner --scenario=decay_vs_size --json=verdict.json
//   ./build/examples/verify_runner --all --quick --self-check
//   ./build/examples/verify_runner --all --update-goldens # refresh corpus
//
// Exit codes: 0 = every selected scenario passed (zero field diffs, zero
// oracle violations, every mutation probe caught); 1 = verification failed;
// 2 = usage error. --json writes the machine-readable verdict with every
// offending scenario/record/field named.
//
// --update-goldens reruns the *full* campaigns and rewrites tests/golden/.
// Only legitimate after a change that intentionally alters simulation
// physics or the record schema — never to quiet a failing perf PR.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/table.hpp"
#include "sweep/scenario.hpp"
#include "verify/verify.hpp"

// Default corpus location, baked at configure time so a fresh checkout
// verifies without flags; overridable with --goldens for tests/tooling.
#ifndef IW_GOLDEN_DIR
#define IW_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace iw;

std::vector<const sweep::Scenario*> select_scenarios(const Cli& cli) {
  std::vector<const sweep::Scenario*> selected;
  if (cli.has("all")) {
    for (const sweep::Scenario& s : sweep::scenario_catalog())
      selected.push_back(&s);
    return selected;
  }
  const std::string name = cli.get_or("scenario", std::string{});
  if (const sweep::Scenario* s = sweep::find_scenario(name)) {
    selected.push_back(s);
    return selected;
  }
  std::cerr << (name.empty() ? "pick --scenario=<name> or --all"
                             : "unknown scenario: " + name)
            << "\nknown:";
  for (const auto& known : sweep::scenario_names()) std::cerr << ' ' << known;
  std::cerr << '\n';
  return {};
}

int verify_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.allow_only({"scenario", "all", "quick", "update-goldens", "self-check",
                  "goldens", "json", "threads", "quiet"});

  verify::VerifyOptions options;
  options.golden_dir = cli.get_or("goldens", std::string{IW_GOLDEN_DIR});
  options.quick = cli.has("quick");
  options.threads = static_cast<int>(cli.get_or("threads", std::int64_t{1}));
  options.self_check = cli.has("self-check");
  const bool quiet = cli.has("quiet");

  const auto selected = select_scenarios(cli);
  if (selected.empty()) return 2;

  if (cli.has("update-goldens")) {
    for (const sweep::Scenario* s : selected) {
      const std::string path = verify::update_golden(*s, options);
      if (!quiet) std::cout << "wrote golden: " << path << '\n';
    }
    return 0;
  }

  std::vector<verify::ScenarioVerdict> verdicts;
  for (const sweep::Scenario* s : selected) {
    verdicts.push_back(verify::verify_scenario(*s, options));
    const verify::ScenarioVerdict& v = verdicts.back();
    if (quiet) continue;
    std::cerr << "  " << v.scenario << ": " << (v.pass() ? "pass" : "FAIL")
              << " (" << v.records_run << " points, "
              << fmt_fixed(v.seconds, 2) << " s)\n";
  }

  if (!quiet) {
    TextTable table;
    table.columns({"scenario", "points", "field diffs", "structural",
                   "oracle violations", "mutations caught", "verdict"});
    for (const verify::ScenarioVerdict& v : verdicts) {
      std::size_t caught = 0;
      for (const auto& m : v.mutations) caught += m.caught ? 1 : 0;
      table.add_row(
          {v.scenario, std::to_string(v.records_run),
           std::to_string(v.diff.field_diffs.size()),
           std::to_string(v.diff.structural.size()),
           std::to_string(v.oracle.violations.size()),
           v.mutations.empty() ? "-"
                               : std::to_string(caught) + "/" +
                                     std::to_string(v.mutations.size()),
           !v.error.empty() ? "ERROR" : (v.pass() ? "pass" : "FAIL")});
    }
    std::cout << table.render();
    for (const verify::ScenarioVerdict& v : verdicts) {
      if (!v.error.empty())
        std::cout << v.scenario << ": error: " << v.error << '\n';
      for (const auto& d : v.diff.field_diffs)
        std::cout << v.scenario << ": record " << d.record_index << " field "
                  << d.column << ": golden=" << d.expected
                  << " fresh=" << d.actual << " (rel_err=" << d.rel_err
                  << ")\n";
      for (const auto& s : v.diff.structural)
        std::cout << v.scenario << ": structural: " << s << '\n';
      for (const auto& o : v.oracle.violations)
        std::cout << v.scenario << ": oracle " << o.check << ": record "
                  << o.record_index << " field " << o.column << ": "
                  << o.detail << " (value=" << o.value << " bound=" << o.bound
                  << ")\n";
      for (const auto& m : v.mutations)
        if (!m.caught)
          std::cout << v.scenario << ": self-check: " << m.detail << '\n';
    }
  }

  if (const auto json_path = cli.get("json")) {
    std::ofstream out(*json_path);
    out << verify::verdict_json(verdicts) << '\n';
    if (!out) {
      std::cerr << "cannot write verdict: " << *json_path << '\n';
      return 2;
    }
    if (!quiet) std::cout << "wrote verdict: " << *json_path << '\n';
  }

  const bool pass = verify::all_pass(verdicts);
  if (!quiet)
    std::cout << (pass ? "VERIFY PASS" : "VERIFY FAIL") << " ("
              << verdicts.size() << " scenario"
              << (verdicts.size() == 1 ? "" : "s")
              << (options.quick ? ", quick subsets" : ", full campaigns")
              << ")\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return verify_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "verify_runner")
              << ": error: " << e.what() << '\n';
    return 2;
  }
}
