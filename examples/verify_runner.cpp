// Golden-corpus verification CLI: replay catalog scenarios and certify them
// against checked-in reference results and the analytic oracles.
//
//   ./build/examples/verify_runner --all                  # full certification
//   ./build/examples/verify_runner --all --quick          # CI subset
//   ./build/examples/verify_runner --scenario=decay_vs_size --json=verdict.json
//   ./build/examples/verify_runner --all --quick --self-check
//   ./build/examples/verify_runner --all --update-goldens # refresh corpus
//
// Baseline mode compares verdict JSON documents across revisions and exits
// nonzero on a regression-class transition (pass -> fail, coverage lost,
// still-failing-but-worse):
//
//   # pure diff of two archived verdicts, no simulation:
//   ./build/examples/verify_runner --baseline=old.json --candidate=new.json
//   # run the selected scenarios fresh and gate against the archive:
//   ./build/examples/verify_runner --all --quick --baseline=old.json
//
// Exit codes: 0 = every selected scenario passed (zero field diffs, zero
// oracle violations, every mutation probe caught) and no baseline
// regression; 1 = verification failed; 2 = usage error. --json writes the
// machine-readable verdict with every offending scenario/record/field named.
//
// --update-goldens reruns the *full* campaigns and rewrites tests/golden/.
// Only legitimate after a change that intentionally alters simulation
// physics or the record schema — never to quiet a failing perf PR.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/table.hpp"
#include "sweep/scenario.hpp"
#include "verify/baseline.hpp"
#include "verify/verify.hpp"

// Default corpus location, baked at configure time so a fresh checkout
// verifies without flags; overridable with --goldens for tests/tooling.
#ifndef IW_GOLDEN_DIR
#define IW_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace iw;

std::vector<const sweep::Scenario*> select_scenarios(const Cli& cli) {
  std::vector<const sweep::Scenario*> selected;
  if (cli.has("all")) {
    for (const sweep::Scenario& s : sweep::scenario_catalog())
      selected.push_back(&s);
    return selected;
  }
  const std::string name = cli.get_or("scenario", std::string{});
  if (const sweep::Scenario* s = sweep::find_scenario(name)) {
    selected.push_back(s);
    return selected;
  }
  std::cerr << (name.empty() ? "pick --scenario=<name> or --all"
                             : "unknown scenario: " + name)
            << "\nknown:";
  for (const auto& known : sweep::scenario_names()) std::cerr << ' ' << known;
  std::cerr << '\n';
  return {};
}

/// Renders the baseline comparison and returns whether it gates the run.
bool baseline_regressed(const verify::VerdictDocument& baseline,
                        const verify::VerdictDocument& candidate, bool quiet) {
  const verify::BaselineReport report =
      verify::diff_verdicts(baseline, candidate);
  if (!quiet) {
    std::cout << report.render();
    std::cout << (report.regression() ? "BASELINE REGRESSION"
                                      : "BASELINE CLEAN")
              << " (" << report.deltas.size() << " scenario"
              << (report.deltas.size() == 1 ? "" : "s") << " compared)\n";
  }
  return report.regression();
}

int verify_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.allow_only({"scenario", "all", "quick", "update-goldens", "self-check",
                  "goldens", "json", "threads", "quiet", "baseline",
                  "candidate"});

  const bool quiet_flag = cli.has("quiet");
  // Pure verdict-diff mode: both documents come from files, nothing is
  // simulated. The usual scenario selection does not apply.
  if (const auto candidate_path = cli.get("candidate")) {
    const auto baseline_path = cli.get("baseline");
    if (!baseline_path) {
      std::cerr << "--candidate needs --baseline=<verdict.json>\n";
      return 2;
    }
    return baseline_regressed(verify::load_verdict(*baseline_path),
                              verify::load_verdict(*candidate_path),
                              quiet_flag)
               ? 1
               : 0;
  }

  verify::VerifyOptions options;
  options.golden_dir = cli.get_or("goldens", std::string{IW_GOLDEN_DIR});
  options.quick = cli.has("quick");
  options.threads = static_cast<int>(cli.get_or("threads", std::int64_t{1}));
  options.self_check = cli.has("self-check");
  const bool quiet = cli.has("quiet");

  const auto selected = select_scenarios(cli);
  if (selected.empty()) return 2;

  if (cli.has("update-goldens")) {
    for (const sweep::Scenario* s : selected) {
      const std::string path = verify::update_golden(*s, options);
      if (!quiet) std::cout << "wrote golden: " << path << '\n';
    }
    return 0;
  }

  std::vector<verify::ScenarioVerdict> verdicts;
  for (const sweep::Scenario* s : selected) {
    verdicts.push_back(verify::verify_scenario(*s, options));
    const verify::ScenarioVerdict& v = verdicts.back();
    if (quiet) continue;
    std::cerr << "  " << v.scenario << ": " << (v.pass() ? "pass" : "FAIL")
              << " (" << v.records_run << " points, "
              << fmt_fixed(v.seconds, 2) << " s)\n";
  }

  if (!quiet) {
    TextTable table;
    table.columns({"scenario", "points", "field diffs", "structural",
                   "oracle violations", "mutations caught", "verdict"});
    for (const verify::ScenarioVerdict& v : verdicts) {
      std::size_t caught = 0;
      for (const auto& m : v.mutations) caught += m.caught ? 1 : 0;
      table.add_row(
          {v.scenario, std::to_string(v.records_run),
           std::to_string(v.diff.field_diffs.size()),
           std::to_string(v.diff.structural.size()),
           std::to_string(v.oracle.violations.size()),
           v.mutations.empty() ? "-"
                               : std::to_string(caught) + "/" +
                                     std::to_string(v.mutations.size()),
           !v.error.empty() ? "ERROR" : (v.pass() ? "pass" : "FAIL")});
    }
    std::cout << table.render();
    for (const verify::ScenarioVerdict& v : verdicts) {
      if (!v.error.empty())
        std::cout << v.scenario << ": error: " << v.error << '\n';
      for (const auto& d : v.diff.field_diffs)
        std::cout << v.scenario << ": record " << d.record_index << " field "
                  << d.column << ": golden=" << d.expected
                  << " fresh=" << d.actual << " (rel_err=" << d.rel_err
                  << ")\n";
      for (const auto& s : v.diff.structural)
        std::cout << v.scenario << ": structural: " << s << '\n';
      for (const auto& o : v.oracle.violations)
        std::cout << v.scenario << ": oracle " << o.check << ": record "
                  << o.record_index << " field " << o.column << ": "
                  << o.detail << " (value=" << o.value << " bound=" << o.bound
                  << ")\n";
      for (const auto& m : v.mutations)
        if (!m.caught)
          std::cout << v.scenario << ": self-check: " << m.detail << '\n';
    }
  }

  if (const auto json_path = cli.get("json")) {
    std::ofstream out(*json_path);
    out << verify::verdict_json(verdicts) << '\n';
    if (!out) {
      std::cerr << "cannot write verdict: " << *json_path << '\n';
      return 2;
    }
    if (!quiet) std::cout << "wrote verdict: " << *json_path << '\n';
  }

  bool pass = verify::all_pass(verdicts);
  // Fresh-run baseline gate: round-trip the fresh verdicts through the
  // JSON serializer so the comparison sees exactly what an archived
  // candidate file would contain.
  if (const auto baseline_path = cli.get("baseline")) {
    const auto fresh =
        verify::parse_verdict_json(verify::verdict_json(verdicts));
    if (baseline_regressed(verify::load_verdict(*baseline_path), fresh,
                           quiet))
      pass = false;
  }
  if (!quiet)
    std::cout << (pass ? "VERIFY PASS" : "VERIFY FAIL") << " ("
              << verdicts.size() << " scenario"
              << (verdicts.size() == 1 ? "" : "s")
              << (options.quick ? ", quick subsets" : ", full campaigns")
              << ")\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return verify_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "verify_runner")
              << ": error: " << e.what() << '\n';
    return 2;
  }
}
