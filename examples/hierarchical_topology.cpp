// Example: idle waves crossing topology domain boundaries — the paper's
// "future work" direction (Sec. VII): "the propagation speed changes
// whenever a domain boundary is crossed".
//
// Runs one ring with several processes per socket so consecutive ranks
// alternate between intra-socket, inter-socket, and inter-node links, and
// reports the per-hop front arrival intervals grouped by the link class
// the front crossed. Because Tcomm differs per class, the wave advances at
// slightly different speed across each boundary — and with per-class
// Hockney parameters the effect is directly measurable.
//
//   ./build/examples/hierarchical_topology [--per-socket 4] [--msg-kib 512]
#include <iostream>
#include <map>
#include <vector>

#include "core/experiment.hpp"
#include "core/idle_wave.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"per-socket", "msg-kib", "ranks"});
  const int per_socket =
      static_cast<int>(cli.get_or("per-socket", std::int64_t{4}));
  const std::int64_t msg =
      cli.get_or("msg-kib", std::int64_t{512}) * 1024;  // rendezvous-sized
  const int ranks = static_cast<int>(cli.get_or("ranks", std::int64_t{32}));

  workload::RingSpec ring;
  ring.ranks = ranks;
  ring.direction = workload::Direction::unidirectional;
  ring.boundary = workload::Boundary::open;
  ring.msg_bytes = msg;
  ring.steps = static_cast<int>(ranks + 6);
  ring.texec = milliseconds(1.0);
  ring.noisy = false;

  core::WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = core::cluster_for_ring(ring, /*ppn1=*/false, per_socket);
  exp.delays = workload::single_delay(1, 0, milliseconds(8.0));
  exp.min_idle = milliseconds(0.25);

  const auto result = core::run_wave_experiment(exp);
  const net::Topology topo(exp.cluster.topo);

  std::cout << "=== idle-wave speed across topology domains ===\n"
            << ranks << " ranks, " << per_socket
            << " per socket, message " << fmt_bytes(msg)
            << " (rendezvous), Texec = 1 ms\n\n";

  // Group per-hop front intervals by the link class the front crossed.
  std::map<net::LinkClass, std::vector<double>> hop_intervals;
  const auto& obs = result.up.observations;
  TextTable detail;
  detail.columns({"hop", "rank", "link crossed", "front interval [ms]"});
  for (std::size_t i = 1; i < obs.size(); ++i) {
    if (!obs[i].reached || !obs[i - 1].reached) break;
    const double dt = (obs[i].arrival - obs[i - 1].arrival).ms();
    const net::LinkClass cls = topo.classify(obs[i - 1].rank, obs[i].rank);
    hop_intervals[cls].push_back(dt);
    detail.add_row({std::to_string(obs[i].hops), std::to_string(obs[i].rank),
                    net::to_string(cls), fmt_fixed(dt, 4)});
  }
  std::cout << detail.render() << "\n";

  TextTable summary;
  summary.columns({"link class", "hops", "mean interval [ms]",
                   "local speed [ranks/s]"});
  for (const auto& [cls, intervals] : hop_intervals) {
    const double m = mean(intervals);
    summary.add_row({net::to_string(cls),
                     std::to_string(intervals.size()), fmt_fixed(m, 4),
                     fmt_fixed(1000.0 / m, 0)});
  }
  std::cout << summary.render() << "\n";

  std::cout
      << "Per Eq. 2 the local speed is 1/(Texec + Tcomm(link)): hops that\n"
         "cross a node boundary take longer than hops inside a socket, so\n"
         "the wave decelerates at every domain boundary and re-accelerates\n"
         "inside the next socket — the hierarchy is visible in the wave.\n";
  return 0;
}
