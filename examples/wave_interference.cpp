// Example: two idle waves colliding — the nonlinearity of delay propagation.
//
// Injects two one-off delays of different length on a periodic ring and
// renders the timeline. The waves travel toward each other, partially
// cancel where they meet, and only the residual of the longer one survives
// — the behaviour that rules out a linear wave-equation description
// (paper Sec. IV-B).
//
//   ./build/examples/wave_interference [--delay-a-ms 9] [--delay-b-ms 4.5]
#include <iostream>

#include "core/experiment.hpp"
#include "core/timeline.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"delay-a-ms", "delay-b-ms", "ranks"});
  const double delay_a = cli.get_or("delay-a-ms", 9.0);
  const double delay_b = cli.get_or("delay-b-ms", 4.5);
  const int ranks = static_cast<int>(cli.get_or("ranks", std::int64_t{30}));

  workload::RingSpec ring;
  ring.ranks = ranks;
  ring.direction = workload::Direction::bidirectional;
  ring.boundary = workload::Boundary::periodic;
  ring.msg_bytes = 16384;
  ring.steps = 18;
  ring.texec = milliseconds(3.0);
  ring.noisy = false;  // keep the picture clean

  core::WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = core::cluster_for_ring(ring);
  exp.delays = {
      workload::DelaySpec{ranks / 5, 0, milliseconds(delay_a)},
      workload::DelaySpec{ranks * 7 / 10, 0, milliseconds(delay_b)},
  };

  const auto result = core::run_wave_experiment(exp);

  std::cout << "=== wave interference: " << fmt_fixed(delay_a, 1)
            << " ms at rank " << ranks / 5 << " vs " << fmt_fixed(delay_b, 1)
            << " ms at rank " << ranks * 7 / 10 << " ===\n\n";
  core::TimelineOptions opts;
  opts.columns = 110;
  std::cout << core::render_timeline(result.trace, opts) << "\n";

  const Duration makespan = result.trace.makespan() - SimTime::zero();
  const Duration ideal = ring.texec * ring.steps;
  const double longest = std::max(delay_a, delay_b);
  const double sum = delay_a + delay_b;

  TextTable table;
  table.columns({"quantity", "value [ms]"});
  table.add_row({"ideal runtime (no delays)", fmt_fixed(ideal.ms(), 2)});
  table.add_row({"actual makespan", fmt_fixed(makespan.ms(), 2)});
  table.add_row({"excess", fmt_fixed((makespan - ideal).ms(), 2)});
  table.add_row({"longest single delay", fmt_fixed(longest, 2)});
  table.add_row({"sum of delays (linear superposition)", fmt_fixed(sum, 2)});
  std::cout << table.render() << "\n";

  std::cout << "The excess matches the LONGEST delay, not the SUM: where the\n"
               "waves meet, the shorter one is annihilated and only the\n"
               "difference keeps propagating. Idle waves are nonlinear.\n";
  return 0;
}
