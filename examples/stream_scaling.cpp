// Example: why simple performance models fail — strong scaling of a
// memory-bound kernel with automatic overlap (paper Sec. I-B, Fig. 1).
//
// Runs the MPI-parallel STREAM triad on a growing number of sockets and
// compares three numbers per point: the optimistic nonoverlapping model
// (Eq. 1), the simulated "measurement", and the execution-only view. The
// point of the exercise: the measurement disagrees with the model in BOTH
// directions at once — total performance falls short (intra-node traffic),
// while per-rank execution performance beats the model (desync overlap).
//
//   ./build/examples/stream_scaling [--max-sockets 6] [--steps 80]
#include <iostream>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "core/runtime_model.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/stream_triad.hpp"

int main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"max-sockets", "steps"});
  const int max_sockets =
      static_cast<int>(cli.get_or("max-sockets", std::int64_t{6}));
  const int steps = static_cast<int>(cli.get_or("steps", std::int64_t{80}));

  std::cout << "=== STREAM triad strong scaling: model vs simulation ===\n"
            << "A(:) = B(:) + s*C(:), 5e7 elements (1.2 GB), 2 MB ring "
               "halos, 10 ranks/socket\n\n";

  const core::StreamModelParams model;
  TextTable table;
  table.columns({"sockets", "model [GF/s]", "simulated [GF/s]",
                 "sim/model", "exec-only sim [GF/s]", "exec-only model"});

  for (int sockets = 1; sockets <= max_sockets; ++sockets) {
    workload::StreamTriadSpec spec;
    spec.ranks = sockets * 10;
    spec.steps = steps;

    core::ClusterConfig config;
    config.topo = net::TopologySpec::packed(spec.ranks, 10);
    config.memory = core::MemorySystem{};
    config.system_noise = noise::NoiseSpec::system("emmy-smt-on");

    core::Cluster cluster(config);
    const auto trace = cluster.run(workload::build_stream_triad(spec));
    const Duration cycle =
        core::measured_cycle(trace, 0, steps / 2, steps - 1);
    const double sim =
        core::performance_from_time(workload::triad_flops_per_step(spec),
                                    cycle) / 1e9;

    // Execution-only: flops over the mean pure-compute time per step.
    double ns = 0;
    int count = 0;
    for (int r = 0; r < spec.ranks; ++r)
      for (const auto& seg : trace.segments(r))
        if (seg.kind == mpi::SegKind::compute && seg.step >= steps / 2) {
          ns += static_cast<double>(seg.duration().ns());
          ++count;
        }
    const double exec_sim =
        static_cast<double>(workload::triad_flops_per_step(spec)) /
        (ns / count * 1e-9) / 1e9 / spec.ranks;

    const double model_total = core::stream_performance(model, sockets) / 1e9;
    const double model_exec =
        core::stream_exec_performance(model, sockets) / 1e9;
    table.add_row({std::to_string(sockets), fmt_fixed(model_total, 2),
                   fmt_fixed(sim, 2), fmt_fixed(sim / model_total, 2),
                   fmt_fixed(exec_sim, 2), fmt_fixed(model_exec, 2)});
  }

  std::cout << table.render() << "\n";
  std::cout
      << "sim/model < 1 at scale: the Eq. 1 model is optimistic because it\n"
         "ignores intra-node message traffic, which shares the memory bus\n"
         "with the triad itself. Meanwhile exec-only sim > exec-only model:\n"
         "desynchronized ranks overlap their communication with other\n"
         "ranks' computation and see less bandwidth contention. Both\n"
         "deviations are emergent — the workload is perfectly balanced.\n";
  return 0;
}
