// Example: deliberately injecting fine-grained noise to protect an
// application from idle waves (paper Sec. V).
//
// Sweeps the injected exponential noise level E and reports, for a fixed
// one-off delay, how far the wave survives, its decay rate, and what the
// delay ends up costing in wall-clock time. The counterintuitive headline
// of the paper: a *noisier* system can be immune to the adverse effect of
// a long delay.
//
//   ./build/examples/noise_damping [--delay-ms 12] [--runs 5]
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

namespace {

struct Outcome {
  double survival_hops;
  double decay_us_per_rank;
  double excess_ms;   // wall-clock cost of the delay
  double runtime_ms;  // total runtime
};

Outcome measure(double E_percent, double delay_ms, int runs) {
  using namespace iw;
  std::vector<double> survival, decay, excess, runtime;
  for (int r = 0; r < runs; ++r) {
    workload::RingSpec ring;
    ring.ranks = 40;
    ring.direction = workload::Direction::bidirectional;
    ring.boundary = workload::Boundary::periodic;
    ring.msg_bytes = 8192;
    ring.steps = 36;
    ring.texec = milliseconds(3.0);

    core::WaveExperiment exp;
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring, /*ppn1=*/false, 10);
    exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
    exp.cluster.seed = static_cast<std::uint64_t>(r) + 1;
    exp.min_idle = milliseconds(3.0);
    if (E_percent > 0)
      exp.injected_noise = noise::NoiseSpec::exponential(
          milliseconds(3.0 * E_percent / 100.0));

    // Paired runs: with and without the delay, same seed.
    core::WaveExperiment baseline = exp;
    exp.delays = workload::single_delay(7, 0, milliseconds(delay_ms));
    const auto with_delay = core::run_wave_experiment(exp);
    const auto without_delay = core::run_wave_experiment(baseline);

    survival.push_back(with_delay.up.survival_hops);
    decay.push_back(with_delay.up.decay_us_per_rank);
    excess.push_back(with_delay.trace.makespan().ms() -
                     without_delay.trace.makespan().ms());
    runtime.push_back(with_delay.trace.makespan().ms());
  }
  return Outcome{median(survival), median(decay), median(excess),
                 median(runtime)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iw;
  const Cli cli(argc, argv);
  cli.allow_only({"delay-ms", "runs"});
  const double delay_ms = cli.get_or("delay-ms", 12.0);
  const int runs = static_cast<int>(cli.get_or("runs", std::int64_t{5}));

  std::cout << "=== damping a " << fmt_fixed(delay_ms, 0)
            << " ms one-off delay with injected noise ===\n"
            << "40 ranks, bidirectional periodic ring, Texec = 3 ms, "
            << runs << " runs per level (medians)\n\n";

  TextTable table;
  table.columns({"E [%]", "wave survival [hops]", "decay [us/rank]",
                 "delay cost [ms]", "total runtime [ms]"});
  for (const double E : {0.0, 5.0, 10.0, 20.0, 30.0, 50.0}) {
    const Outcome o = measure(E, delay_ms, runs);
    table.add_row({fmt_fixed(E, 0), fmt_fixed(o.survival_hops, 0),
                   fmt_fixed(o.decay_us_per_rank, 0),
                   fmt_fixed(o.excess_ms, 2), fmt_fixed(o.runtime_ms, 1)});
  }
  std::cout << table.render() << "\n";

  std::cout
      << "Reading the table: the decay rate grows with E and the wall-clock\n"
         "cost attributable to the delay shrinks — the noise absorbs the\n"
         "idle wave. The total runtime still grows with E: noise is not\n"
         "free, it only makes the system immune to one-off delays.\n";
  return 0;
}
