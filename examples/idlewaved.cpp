// idlewaved: the persistent campaign daemon.
//
//   ./build/examples/idlewaved --socket=/tmp/idlewave.sock --threads=4
//
// Accepts campaign submissions over a Unix-domain socket (line-delimited
// JSON: submit | status | cancel | results | shutdown — see
// src/service/protocol.hpp), schedules queued points fair-share across
// clients onto the sweep worker pool, streams SweepRecord JSONL back
// incrementally, and never recomputes a point two campaigns share: completed
// points live in a content-addressed cache keyed by the canonical hash of
// (expanded point, seed, record-schema version). A cache hit replays the
// exact bytes a fresh run would produce.
//
// Flags:
//   --socket=PATH        socket path (required; one daemon per path)
//   --threads=N          worker threads per scheduled batch (default 1)
//   --batch-points=N     max points per scheduling decision (default 8)
//   --max-points=N       admission: max queued points per client
//   --max-jobs=N         admission: max open jobs per client
//   --metrics-json=PATH  write a unified metrics snapshot at shutdown
//
// The daemon runs in the foreground and logs to stdout; stop it with the
// protocol's "shutdown" verb (idlewave_client --shutdown) or SIGINT/SIGTERM.
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "service/server.hpp"
#include "support/cli.hpp"

namespace {

using namespace iw;

service::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

int daemon_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.allow_only({"socket", "threads", "batch-points", "max-points",
                  "max-jobs", "metrics-json"});
  const std::string socket_path = cli.get_or("socket", std::string{});
  if (socket_path.empty())
    throw std::runtime_error("--socket=PATH is required");

  obs::MetricsRegistry metrics;
  service::ServerOptions options;
  options.socket_path = socket_path;
  options.service.threads =
      static_cast<int>(cli.get_or("threads", std::int64_t{1}));
  options.service.batch_points = static_cast<std::size_t>(
      cli.get_or("batch-points", std::int64_t{8}));
  options.service.limits.max_points_per_client = static_cast<std::size_t>(
      cli.get_or("max-points", static_cast<std::int64_t>(
                                   service::QueueLimits{}.max_points_per_client)));
  options.service.limits.max_jobs_per_client = static_cast<std::size_t>(
      cli.get_or("max-jobs", static_cast<std::int64_t>(
                                 service::QueueLimits{}.max_jobs_per_client)));
  options.service.metrics = &metrics;

  service::Server server(options);
  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  server.start();
  std::cout << "idlewaved: listening on " << socket_path << " ("
            << options.service.threads << " worker thread"
            << (options.service.threads == 1 ? "" : "s") << ", batches of "
            << options.service.batch_points << " points)" << std::endl;
  server.wait();
  g_server = nullptr;
  std::cout << "idlewaved: shut down\n" << server.service().status_json()
            << '\n';

  if (const auto metrics_path = cli.get("metrics-json")) {
    std::ofstream out(*metrics_path);
    if (!out)
      throw std::runtime_error("cannot open metrics output: " + *metrics_path);
    out << metrics.snapshot().to_json() << '\n';
    std::cout << "wrote metrics: " << *metrics_path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return daemon_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "idlewaved: error: " << e.what() << '\n';
    return 1;
  }
}
