// idlewave_client: CLI for a running idlewaved.
//
//   ./build/examples/idlewave_client --socket=/tmp/idlewave.sock --submit
//       --scenario=speed_vs_delay --delay-ms=6,12 --np=8 --steps=10
//       --jsonl=out.jsonl
//   ./build/examples/idlewave_client --socket=... --status
//   ./build/examples/idlewave_client --socket=... --cancel=3
//   ./build/examples/idlewave_client --socket=... --results=3 --jsonl=replay.jsonl
//   ./build/examples/idlewave_client --socket=... --shutdown
//
// --submit resolves a scenario exactly like sweep_runner (every IW_SWEEP_AXES
// flag overrides its axis; --steps/--seed override campaign scalars), ships
// it to the daemon, and streams the job: record lines are appended to the
// --jsonl file VERBATIM — the daemon sends the exact bytes JsonlSink would
// write, so the client-side file is byte-identical to a local sweep_runner
// run of the same campaign, whether the daemon computed the points or
// replayed them from its cache.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "service/protocol.hpp"
#include "support/cli.hpp"
#include "support/framing.hpp"
#include "support/json.hpp"
#include "sweep/axes.hpp"
#include "sweep/scenario.hpp"

namespace {

using namespace iw;

/// Blocking line reader over the client socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF (daemon closed the connection).
  bool next(std::string& line) {
    while (!buf_.next_line(line)) {
      char chunk[16384];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buf_.feed(chunk, static_cast<std::size_t>(n));
    }
    return true;
  }

 private:
  int fd_;
  LineBuffer buf_;
};

std::uint64_t field_u64(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->is(json::Value::Kind::number)
             ? static_cast<std::uint64_t>(f->number)
             : 0;
}

std::string field_text(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  return f != nullptr ? f->text : std::string{};
}

int do_submit(const Cli& cli, int fd) {
  const std::string name = cli.get_or("scenario", std::string{});
  const sweep::Scenario* scenario = sweep::find_scenario(name);
  if (scenario == nullptr) {
    std::cerr << "unknown scenario: " << name << "\nknown:";
    for (const auto& known : sweep::scenario_names()) std::cerr << ' ' << known;
    std::cerr << '\n';
    return 2;
  }
  sweep::SweepSpec spec = scenario->spec;
  sweep::apply_axis_overrides(spec, cli);
  spec.steps = static_cast<int>(
      cli.get_or("steps", static_cast<std::int64_t>(spec.steps)));
  spec.campaign_seed = static_cast<std::uint64_t>(
      cli.get_or("seed", static_cast<std::int64_t>(spec.campaign_seed)));

  const std::string client = cli.get_or("client", std::string{"cli"});
  const int priority =
      static_cast<int>(cli.get_or("priority", std::int64_t{0}));
  if (!send_line(fd, service::submit_line(client, priority, spec)))
    throw std::runtime_error("daemon closed the connection on submit");

  std::ofstream jsonl;
  const auto jsonl_path = cli.get("jsonl");
  if (jsonl_path) {
    jsonl.open(*jsonl_path, std::ios::binary);
    if (!jsonl)
      throw std::runtime_error("cannot open JSONL output: " + *jsonl_path);
  }
  const bool quiet = cli.has("quiet");

  LineReader reader(fd);
  std::string line;
  std::size_t records = 0;
  while (reader.next(line)) {
    if (service::is_record_line(line)) {
      if (jsonl) jsonl << line << '\n';
      records += 1;
      continue;
    }
    const json::Value msg = json::parse(line, "response");
    const std::string type = field_text(msg, "type");
    if (type == "accepted") {
      if (!quiet)
        std::cout << "job " << field_u64(msg, "job") << " accepted: "
                  << field_u64(msg, "points") << " points, "
                  << field_u64(msg, "cached") << " cached\n";
    } else if (type == "done") {
      std::cout << "job " << field_u64(msg, "job") << " done: "
                << field_u64(msg, "records") << " records ("
                << field_u64(msg, "cache_hits") << " cache hits, "
                << field_u64(msg, "computed") << " computed)\n";
      if (jsonl_path)
        std::cout << "wrote JSONL: " << *jsonl_path << " (" << records
                  << " records)\n";
      return 0;
    } else if (type == "cancelled") {
      std::cout << "job " << field_u64(msg, "job") << " cancelled after "
                << field_u64(msg, "records") << " records\n";
      return 3;
    } else if (type == "error") {
      std::cerr << "rejected [" << field_text(msg, "code")
                << "]: " << field_text(msg, "message") << '\n';
      return 1;
    } else {
      std::cerr << "unexpected response: " << line << '\n';
      return 1;
    }
  }
  std::cerr << "daemon closed the connection mid-stream\n";
  return 1;
}

int do_results(const Cli& cli, int fd, std::uint64_t job) {
  if (!send_line(fd, service::results_line(job)))
    throw std::runtime_error("daemon closed the connection");
  std::ofstream jsonl;
  const auto jsonl_path = cli.get("jsonl");
  if (jsonl_path) {
    jsonl.open(*jsonl_path, std::ios::binary);
    if (!jsonl)
      throw std::runtime_error("cannot open JSONL output: " + *jsonl_path);
  }
  LineReader reader(fd);
  std::string line;
  while (reader.next(line)) {
    if (service::is_record_line(line)) {
      if (jsonl) jsonl << line << '\n';
      continue;
    }
    std::cout << line << '\n';
    return 0;
  }
  std::cerr << "daemon closed the connection mid-replay\n";
  return 1;
}

int client_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  std::vector<std::string> known_flags = {
      "socket", "submit",  "status", "cancel",   "results", "shutdown",
      "client", "priority", "scenario", "steps", "seed",    "jsonl",
      "quiet"};
  for (std::string& flag : sweep::axis_cli_flags())
    known_flags.push_back(std::move(flag));
  cli.allow_only(known_flags);

  const std::string socket_path = cli.get_or("socket", std::string{});
  if (socket_path.empty())
    throw std::runtime_error("--socket=PATH is required");
  ScopedFd fd = unix_connect(socket_path);

  if (cli.has("submit")) return do_submit(cli, fd.get());
  if (cli.has("results"))
    return do_results(
        cli, fd.get(),
        static_cast<std::uint64_t>(cli.get_or("results", std::int64_t{0})));

  // Single-exchange verbs: one request line, one response line.
  std::string request;
  if (cli.has("status")) {
    request = service::status_line();
  } else if (cli.has("cancel")) {
    request = service::cancel_line(
        static_cast<std::uint64_t>(cli.get_or("cancel", std::int64_t{0})));
  } else if (cli.has("shutdown")) {
    request = service::shutdown_line();
  } else {
    std::cerr << "one of --submit | --status | --cancel=JOB | --results=JOB"
                 " | --shutdown is required\n";
    return 2;
  }
  if (!send_line(fd.get(), request))
    throw std::runtime_error("daemon closed the connection");
  LineReader reader(fd.get());
  std::string line;
  if (!reader.next(line))
    throw std::runtime_error("daemon closed the connection without replying");
  std::cout << line << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return client_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "idlewave_client: error: " << e.what() << '\n';
    return 1;
  }
}
