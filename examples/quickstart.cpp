// Quickstart: inject a one-off delay into a bulk-synchronous ring and watch
// the idle wave ripple through the cluster (paper Fig. 4).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/speed_model.hpp"
#include "core/timeline.hpp"
#include "support/units.hpp"
#include "workload/delay.hpp"

int main() {
  using namespace iw;

  // The paper's simplest setting: 18 ranks, one process per node, eager
  // unidirectional next-neighbor communication, open boundaries, 3 ms
  // compute phases, 8192 B messages. A delay of 4.5 execution phases is
  // injected at rank 5 in the first time step.
  workload::RingSpec ring;
  ring.ranks = 18;
  ring.direction = workload::Direction::unidirectional;
  ring.boundary = workload::Boundary::open;
  ring.msg_bytes = 8192;
  ring.steps = 20;
  ring.texec = milliseconds(3.0);

  core::WaveExperiment exp;
  exp.ring = ring;
  exp.cluster = core::cluster_for_ring(ring, /*ppn1=*/true);
  exp.cluster.system_noise = noise::NoiseSpec::system("emmy-smt-on");
  exp.delays = workload::single_delay(/*rank=*/5, /*step=*/0,
                                      milliseconds(13.5));  // 4.5 phases

  const core::WaveResult result = core::run_wave_experiment(exp);

  std::cout << "=== idlewave quickstart: one-off delay on a ring ===\n\n";
  core::TimelineOptions opts;
  opts.columns = 96;
  std::cout << core::render_timeline(result.trace, opts) << "\n";

  std::cout << "injected delay : 13.50 ms at rank 5, step 0\n";
  std::cout << "cycle (Texec+Tcomm) : " << fmt_duration(result.measured_cycle)
            << "\n";
  std::cout << "wave speed (measured) : " << result.up.speed_ranks_per_sec
            << " ranks/s toward higher ranks\n";
  std::cout << "wave speed (Eq. 2)    : " << result.predicted_speed
            << " ranks/s\n";
  std::cout << "survival: " << result.up.survival_hops
            << " hops up, " << result.down.survival_hops << " hops down "
            << "(eager unidirectional: the wave only travels upward)\n";
  return 0;
}
