// Link classification and per-link cost parameters.
//
// Clusters are hierarchical (paper Sec. II-B): cores share a socket, sockets
// share a node, nodes share the fabric. Communication cost differs per level,
// so every (src, dst) rank pair maps to a LinkClass and every LinkClass to a
// parameter set.
#pragma once

#include <cstdint>

#include "support/error.hpp"
#include "support/time.hpp"

namespace iw::net {

enum class LinkClass : std::uint8_t {
  self = 0,          ///< a rank messaging itself (loopback, essentially free)
  intra_socket = 1,  ///< both ranks on the same socket (shared cache/memory)
  inter_socket = 2,  ///< same node, different sockets (QPI/UPI hop)
  inter_node = 3,    ///< different nodes, same leaf switch group
  inter_switch = 4,  ///< different switch groups, same island (spine hop)
  inter_island = 5,  ///< different islands (dragonfly-ish global links)
};

inline constexpr int kLinkClassCount = 6;

[[nodiscard]] constexpr const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::self: return "self";
    case LinkClass::intra_socket: return "intra-socket";
    case LinkClass::inter_socket: return "inter-socket";
    case LinkClass::inter_node: return "inter-node";
    case LinkClass::inter_switch: return "inter-switch";
    case LinkClass::inter_island: return "inter-island";
  }
  return "?";
}

/// Hockney-style cost parameters for one link class, extended with the
/// LogGOPS-style per-message CPU overhead `o` and injection gap `g`.
struct LinkParams {
  Duration latency;           ///< alpha: end-to-end latency per message
  double bandwidth_Bps = 0;   ///< 1/beta: asymptotic bandwidth in bytes/s
  Duration overhead;          ///< o: CPU time consumed per message at an endpoint
  Duration gap;               ///< g: minimum NIC spacing between injections

  /// Serialization time of `bytes` on the link (no latency, overhead, or
  /// gap): bytes/bandwidth. This is the duration a NIC stays busy injecting
  /// the payload.
  [[nodiscard]] Duration payload_time(std::int64_t bytes) const {
    IW_REQUIRE(bytes >= 0, "message size must be non-negative");
    IW_REQUIRE(bandwidth_Bps > 0, "link bandwidth must be positive");
    const double tx_ns = static_cast<double>(bytes) / bandwidth_Bps * 1e9;
    return Duration{static_cast<std::int64_t>(tx_ns + 0.5)};
  }

  /// Pure transfer time of `bytes` payload over this link (no overhead/gap):
  /// the Hockney model T = latency + bytes/bandwidth.
  [[nodiscard]] Duration transfer_time(std::int64_t bytes) const {
    return latency + payload_time(bytes);
  }

  /// Time for a zero-payload control message (RTS/CTS handshakes).
  [[nodiscard]] Duration control_time() const { return latency; }
};

}  // namespace iw::net
