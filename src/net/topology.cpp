#include "net/topology.hpp"

#include "support/error.hpp"

namespace iw::net {

TopologySpec TopologySpec::one_rank_per_node(int nodes) {
  TopologySpec spec;
  spec.ranks = nodes;
  spec.ranks_per_socket = 1;
  spec.sockets_per_node = 1;  // only the first socket is ever occupied
  return spec;
}

TopologySpec TopologySpec::packed(int ranks, int per_socket) {
  TopologySpec spec;
  spec.ranks = ranks;
  spec.ranks_per_socket = per_socket;
  return spec;
}

Topology::Topology(const TopologySpec& spec)
    : spec_(spec),
      per_socket_(spec.ranks_per_socket > 0 ? spec.ranks_per_socket
                                            : spec.cores_per_socket) {
  IW_REQUIRE(spec_.ranks > 0, "topology needs at least one rank");
  IW_REQUIRE(spec_.cores_per_socket > 0, "cores_per_socket must be positive");
  IW_REQUIRE(spec_.sockets_per_node > 0, "sockets_per_node must be positive");
  IW_REQUIRE(per_socket_ <= spec_.cores_per_socket,
             "cannot place more ranks on a socket than it has cores");
  socket_by_rank_.reserve(static_cast<std::size_t>(spec_.ranks));
  node_by_rank_.reserve(static_cast<std::size_t>(spec_.ranks));
  for (int rank = 0; rank < spec_.ranks; ++rank) {
    const int socket = rank / per_socket_;
    socket_by_rank_.push_back(socket);
    node_by_rank_.push_back(socket / spec_.sockets_per_node);
  }
}

int Topology::socket_of(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < spec_.ranks, "rank out of range");
  return socket_by_rank_[static_cast<std::size_t>(rank)];
}

int Topology::node_of(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < spec_.ranks, "rank out of range");
  return node_by_rank_[static_cast<std::size_t>(rank)];
}

int Topology::sockets() const {
  return (spec_.ranks + per_socket_ - 1) / per_socket_;
}

int Topology::nodes() const {
  return (sockets() + spec_.sockets_per_node - 1) / spec_.sockets_per_node;
}

}  // namespace iw::net
