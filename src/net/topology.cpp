#include "net/topology.hpp"

#include "support/error.hpp"

namespace iw::net {

TopologySpec TopologySpec::one_rank_per_node(int nodes) {
  TopologySpec spec;
  spec.ranks = nodes;
  spec.ranks_per_socket = 1;
  spec.sockets_per_node = 1;  // only the first socket is ever occupied
  return spec;
}

TopologySpec TopologySpec::packed(int ranks, int per_socket) {
  TopologySpec spec;
  spec.ranks = ranks;
  spec.ranks_per_socket = per_socket;
  return spec;
}

Topology::Topology(const TopologySpec& spec)
    : spec_(spec),
      per_socket_(spec.ranks_per_socket > 0 ? spec.ranks_per_socket
                                            : spec.cores_per_socket) {
  IW_REQUIRE(spec_.ranks > 0, "topology needs at least one rank");
  IW_REQUIRE(spec_.cores_per_socket > 0, "cores_per_socket must be positive");
  IW_REQUIRE(spec_.sockets_per_node > 0, "sockets_per_node must be positive");
  IW_REQUIRE(per_socket_ <= spec_.cores_per_socket,
             "cannot place more ranks on a socket than it has cores");
  IW_REQUIRE(spec_.nodes_per_switch >= 0,
             "nodes_per_switch must be non-negative (0 = flat fabric)");
  IW_REQUIRE(spec_.switches_per_island >= 0,
             "switches_per_island must be non-negative (0 = no islands)");
  IW_REQUIRE(spec_.switches_per_island == 0 || spec_.nodes_per_switch > 0,
             "an island tier requires a switch tier (set nodes_per_switch)");

  socket_by_rank_.reserve(static_cast<std::size_t>(spec_.ranks));
  node_by_rank_.reserve(static_cast<std::size_t>(spec_.ranks));
  if (has_switch_tier())
    switch_by_rank_.reserve(static_cast<std::size_t>(spec_.ranks));
  if (has_island_tier())
    island_by_rank_.reserve(static_cast<std::size_t>(spec_.ranks));

  // One pass of running tier counters instead of per-rank divisions: each
  // table entry increments when the rank index crosses its tier boundary.
  int socket = 0, in_socket = 0;
  int node = 0, in_node_sockets = 0;
  int sw = 0, in_switch_nodes = 0;
  int island = 0, in_island_switches = 0;
  for (int rank = 0; rank < spec_.ranks; ++rank) {
    socket_by_rank_.push_back(socket);
    node_by_rank_.push_back(node);
    if (has_switch_tier()) switch_by_rank_.push_back(sw);
    if (has_island_tier()) island_by_rank_.push_back(island);
    if (++in_socket == per_socket_) {
      in_socket = 0;
      ++socket;
      if (++in_node_sockets == spec_.sockets_per_node) {
        in_node_sockets = 0;
        ++node;
        if (has_switch_tier() &&
            ++in_switch_nodes == spec_.nodes_per_switch) {
          in_switch_nodes = 0;
          ++sw;
          if (has_island_tier() &&
              ++in_island_switches == spec_.switches_per_island) {
            in_island_switches = 0;
            ++island;
          }
        }
      }
    }
  }

  // classify(0, r) covers every producible class under compact placement:
  // any pair (a, b) crossing a tier boundary implies that boundary lies
  // below rank b, so the pair (0, b) crosses it too.
  produces_[static_cast<std::size_t>(LinkClass::self)] = true;
  for (int rank = 1; rank < spec_.ranks; ++rank)
    produces_[static_cast<std::size_t>(classify(0, rank))] = true;
}

int Topology::socket_of(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < spec_.ranks, "rank out of range");
  return socket_by_rank_[static_cast<std::size_t>(rank)];
}

int Topology::node_of(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < spec_.ranks, "rank out of range");
  return node_by_rank_[static_cast<std::size_t>(rank)];
}

int Topology::switch_of(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < spec_.ranks, "rank out of range");
  IW_REQUIRE(has_switch_tier(), "topology has no switch tier");
  return switch_by_rank_[static_cast<std::size_t>(rank)];
}

int Topology::island_of(int rank) const {
  IW_REQUIRE(rank >= 0 && rank < spec_.ranks, "rank out of range");
  IW_REQUIRE(has_island_tier(), "topology has no island tier");
  return island_by_rank_[static_cast<std::size_t>(rank)];
}

int Topology::sockets() const {
  return (spec_.ranks + per_socket_ - 1) / per_socket_;
}

int Topology::nodes() const {
  return (sockets() + spec_.sockets_per_node - 1) / spec_.sockets_per_node;
}

int Topology::switches() const {
  IW_REQUIRE(has_switch_tier(), "topology has no switch tier");
  return (nodes() + spec_.nodes_per_switch - 1) / spec_.nodes_per_switch;
}

int Topology::islands() const {
  IW_REQUIRE(has_island_tier(), "topology has no island tier");
  return (switches() + spec_.switches_per_island - 1) /
         spec_.switches_per_island;
}

}  // namespace iw::net
