// Fabric profiles: the full set of communication parameters for a cluster.
//
// A FabricProfile bundles LinkParams for every LinkClass plus the eager/
// rendezvous switch-over point. The presets are calibrated to the two RRZE
// systems the paper measures on:
//
//  * "Emmy"   — QDR InfiniBand, 40 Gbit/s/link/direction, asymptotic
//               node-to-node bandwidth ~3 GB/s (the value the paper's Eq. 1
//               model uses), MPI latency ~1.7 us.
//  * "Meggie" — Omni-Path, 100 Gbit/s/link/direction, ~10 GB/s asymptotic,
//               MPI latency ~1.1 us.
//
// Intra-node parameters use typical shared-memory MPI figures for the
// respective generations (latency well under a microsecond, bandwidths of
// several GB/s); the paper notes intra-node characteristics differ but "this
// is of no significance" for the wave phenomenology.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/link.hpp"

namespace iw::net {

struct FabricProfile {
  std::string name;
  std::array<LinkParams, kLinkClassCount> link;
  std::int64_t eager_limit_bytes = 131072;  ///< paper: 16384 doubles = 131072 B

  [[nodiscard]] const LinkParams& params(LinkClass c) const {
    return link[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] LinkParams& params(LinkClass c) {
    return link[static_cast<std::size_t>(c)];
  }

  /// QDR-InfiniBand cluster ("Emmy").
  [[nodiscard]] static FabricProfile infiniband_qdr();
  /// Omni-Path cluster ("Meggie").
  [[nodiscard]] static FabricProfile omnipath();
  /// A homogeneous ideal fabric: identical parameters on every link class.
  /// This is the "Simulated system (Hockney model)" reference of Fig. 8.
  [[nodiscard]] static FabricProfile ideal(Duration latency,
                                           double bandwidth_Bps);
};

}  // namespace iw::net
