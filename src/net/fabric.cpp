#include "net/fabric.hpp"

#include "support/error.hpp"

namespace iw::net {
namespace {

LinkParams make_link(Duration latency, double bandwidth_Bps,
                     Duration overhead, Duration gap) {
  IW_REQUIRE(bandwidth_Bps > 0.0, "link bandwidth must be positive");
  IW_REQUIRE(latency.ns() >= 0 && overhead.ns() >= 0 && gap.ns() >= 0,
             "link time parameters must be non-negative");
  LinkParams p;
  p.latency = latency;
  p.bandwidth_Bps = bandwidth_Bps;
  p.overhead = overhead;
  p.gap = gap;
  return p;
}

}  // namespace

FabricProfile FabricProfile::infiniband_qdr() {
  FabricProfile f;
  f.name = "InfiniBand (Emmy)";
  f.params(LinkClass::self) =
      make_link(microseconds(0.05), 50e9, microseconds(0.05), microseconds(0.02));
  f.params(LinkClass::intra_socket) =
      make_link(microseconds(0.35), 8e9, microseconds(0.25), microseconds(0.10));
  f.params(LinkClass::inter_socket) =
      make_link(microseconds(0.55), 6e9, microseconds(0.30), microseconds(0.12));
  f.params(LinkClass::inter_node) =
      make_link(microseconds(1.70), 3.0e9, microseconds(0.40), microseconds(0.30));
  // Fabric tiers above the leaf switch (synthetic extensions — the paper
  // measures within one island): each spine/global hop adds latency while
  // per-flow bandwidth degrades slightly under tapering.
  f.params(LinkClass::inter_switch) =
      make_link(microseconds(2.30), 2.8e9, microseconds(0.40), microseconds(0.30));
  f.params(LinkClass::inter_island) =
      make_link(microseconds(3.10), 2.5e9, microseconds(0.40), microseconds(0.30));
  f.eager_limit_bytes = 131072;
  return f;
}

FabricProfile FabricProfile::omnipath() {
  FabricProfile f;
  f.name = "Omni-Path (Meggie)";
  f.params(LinkClass::self) =
      make_link(microseconds(0.05), 60e9, microseconds(0.05), microseconds(0.02));
  f.params(LinkClass::intra_socket) =
      make_link(microseconds(0.30), 10e9, microseconds(0.22), microseconds(0.08));
  f.params(LinkClass::inter_socket) =
      make_link(microseconds(0.50), 8e9, microseconds(0.28), microseconds(0.10));
  // Omni-Path: higher link rate but a more CPU-intensive driver (the paper
  // attributes Meggie's SMT-off noise peak to it) -> larger per-message o.
  f.params(LinkClass::inter_node) =
      make_link(microseconds(1.10), 10.0e9, microseconds(0.90), microseconds(0.25));
  // Synthetic upper tiers, same tapering rationale as the InfiniBand preset.
  f.params(LinkClass::inter_switch) =
      make_link(microseconds(1.60), 9.0e9, microseconds(0.90), microseconds(0.25));
  f.params(LinkClass::inter_island) =
      make_link(microseconds(2.20), 8.0e9, microseconds(0.90), microseconds(0.25));
  f.eager_limit_bytes = 131072;
  return f;
}

FabricProfile FabricProfile::ideal(Duration latency, double bandwidth_Bps) {
  FabricProfile f;
  f.name = "Simulated (Hockney)";
  const LinkParams p =
      make_link(latency, bandwidth_Bps, Duration::zero(), Duration::zero());
  for (auto& lp : f.link) lp = p;
  f.eager_limit_bytes = 131072;
  return f;
}

}  // namespace iw::net
