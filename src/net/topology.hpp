// Hierarchical cluster topology: ranks -> cores -> sockets -> nodes ->
// switch groups -> islands.
//
// Ranks are mapped onto cores in compact order (fill socket 0 of node 0,
// then socket 1 of node 0, ...), matching the process-core affinity the
// paper enforces ("process-core affinity was enforced using the available
// facilities in the MPI implementation").
//
// Above the node, two optional fabric tiers model machine-scale layouts in
// the style of Slurm's switch-topology plugin: leaf switch groups
// (`nodes_per_switch` nodes behind one leaf switch) and islands
// (`switches_per_island` switch groups behind one spine/global tier). Both
// default to 0 = disabled, which reproduces the flat fabric exactly:
// a flat topology never produces inter_switch/inter_island links, so every
// pre-hierarchy configuration is bit-for-bit unchanged. Classification
// stays division-free: all tiers are precomputed rank-indexed tables built
// once at construction.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/link.hpp"

namespace iw::net {

/// Shape of the machine an experiment runs on.
struct TopologySpec {
  int ranks = 1;             ///< number of MPI ranks (== processes)
  int cores_per_socket = 10; ///< paper: ten-core Ivy Bridge / Broadwell CPUs
  int sockets_per_node = 2;  ///< paper: dual-socket nodes
  int ranks_per_socket = 0;  ///< ranks placed per socket; 0 = fill all cores
  int nodes_per_switch = 0;  ///< nodes behind one leaf switch; 0 = flat fabric
  int switches_per_island = 0;  ///< switch groups per island; 0 = no islands
                                ///< (requires nodes_per_switch > 0 when set)

  /// One rank per node (paper's "PPN=1" runs).
  [[nodiscard]] static TopologySpec one_rank_per_node(int nodes);
  /// `per_socket` ranks on each socket of dual-socket 10-core nodes.
  [[nodiscard]] static TopologySpec packed(int ranks, int per_socket = 10);
};

class Topology {
 public:
  explicit Topology(const TopologySpec& spec);

  [[nodiscard]] int ranks() const { return spec_.ranks; }
  [[nodiscard]] int ranks_per_socket() const { return per_socket_; }
  [[nodiscard]] int ranks_per_node() const {
    return per_socket_ * spec_.sockets_per_node;
  }
  /// Ranks behind one leaf switch (0 when the switch tier is disabled).
  [[nodiscard]] int ranks_per_switch() const {
    return ranks_per_node() * spec_.nodes_per_switch;
  }
  /// Ranks per island (0 when the island tier is disabled).
  [[nodiscard]] int ranks_per_island() const {
    return ranks_per_switch() * spec_.switches_per_island;
  }

  [[nodiscard]] int socket_of(int rank) const;  ///< global socket index
  [[nodiscard]] int node_of(int rank) const;
  [[nodiscard]] int switch_of(int rank) const;  ///< leaf switch group index
  [[nodiscard]] int island_of(int rank) const;
  [[nodiscard]] int sockets() const;  ///< number of (partially) occupied sockets
  [[nodiscard]] int nodes() const;    ///< number of (partially) occupied nodes
  [[nodiscard]] int switches() const;
  [[nodiscard]] int islands() const;

  [[nodiscard]] bool has_switch_tier() const {
    return spec_.nodes_per_switch > 0;
  }
  [[nodiscard]] bool has_island_tier() const {
    return spec_.switches_per_island > 0;
  }

  /// The translational period of link classification: classify(a, b) ==
  /// classify(a + P, b + P) for every pair shifted by a multiple of P
  /// (all tier sizes divide the topmost tier's rank count). The analytic
  /// fast-forward path keys its reference-ring synthesis on this.
  [[nodiscard]] int pattern_period() const {
    if (has_island_tier()) return ranks_per_island();
    if (has_switch_tier()) return ranks_per_switch();
    return ranks_per_node();
  }

  /// Whether any rank pair of this topology maps to `cls`. Transport
  /// construction checks that the fabric prices every producible class.
  [[nodiscard]] bool produces(LinkClass cls) const {
    return produces_[static_cast<std::size_t>(cls)];
  }

  /// Classifies the link between two ranks. O(1): rank -> tier indices are
  /// precomputed at construction, so the per-message hot path never
  /// divides (the transport classifies every send, arrival, and handshake
  /// leg against this).
  [[nodiscard]] LinkClass classify(int a, int b) const {
    IW_REQUIRE(a >= 0 && a < spec_.ranks && b >= 0 && b < spec_.ranks,
               "rank out of range");
    const auto ia = static_cast<std::size_t>(a);
    const auto ib = static_cast<std::size_t>(b);
    if (a == b) return LinkClass::self;
    if (socket_by_rank_[ia] == socket_by_rank_[ib])
      return LinkClass::intra_socket;
    if (node_by_rank_[ia] == node_by_rank_[ib]) return LinkClass::inter_socket;
    if (!has_switch_tier() ||
        switch_by_rank_[ia] == switch_by_rank_[ib])
      return LinkClass::inter_node;
    if (!has_island_tier() ||
        island_by_rank_[ia] == island_by_rank_[ib])
      return LinkClass::inter_switch;
    return LinkClass::inter_island;
  }

 private:
  TopologySpec spec_;
  int per_socket_;
  std::vector<std::int32_t> socket_by_rank_;
  std::vector<std::int32_t> node_by_rank_;
  std::vector<std::int32_t> switch_by_rank_;  ///< empty when tier disabled
  std::vector<std::int32_t> island_by_rank_;  ///< empty when tier disabled
  std::array<bool, static_cast<std::size_t>(kLinkClassCount)> produces_{};
};

}  // namespace iw::net
