// Hierarchical cluster topology: ranks -> cores -> sockets -> nodes.
//
// Ranks are mapped onto cores in compact order (fill socket 0 of node 0,
// then socket 1 of node 0, ...), matching the process-core affinity the
// paper enforces ("process-core affinity was enforced using the available
// facilities in the MPI implementation").
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.hpp"

namespace iw::net {

/// Shape of the machine an experiment runs on.
struct TopologySpec {
  int ranks = 1;             ///< number of MPI ranks (== processes)
  int cores_per_socket = 10; ///< paper: ten-core Ivy Bridge / Broadwell CPUs
  int sockets_per_node = 2;  ///< paper: dual-socket nodes
  int ranks_per_socket = 0;  ///< ranks placed per socket; 0 = fill all cores

  /// One rank per node (paper's "PPN=1" runs).
  [[nodiscard]] static TopologySpec one_rank_per_node(int nodes);
  /// `per_socket` ranks on each socket of dual-socket 10-core nodes.
  [[nodiscard]] static TopologySpec packed(int ranks, int per_socket = 10);
};

class Topology {
 public:
  explicit Topology(const TopologySpec& spec);

  [[nodiscard]] int ranks() const { return spec_.ranks; }
  [[nodiscard]] int ranks_per_socket() const { return per_socket_; }
  [[nodiscard]] int ranks_per_node() const {
    return per_socket_ * spec_.sockets_per_node;
  }

  [[nodiscard]] int socket_of(int rank) const;  ///< global socket index
  [[nodiscard]] int node_of(int rank) const;
  [[nodiscard]] int sockets() const;  ///< number of (partially) occupied sockets
  [[nodiscard]] int nodes() const;    ///< number of (partially) occupied nodes

  /// Classifies the link between two ranks. O(1): rank -> socket/node is
  /// precomputed at construction, so the per-message hot path never
  /// divides (the transport classifies every send, arrival, and handshake
  /// leg against this).
  [[nodiscard]] LinkClass classify(int a, int b) const {
    IW_REQUIRE(a >= 0 && a < spec_.ranks && b >= 0 && b < spec_.ranks,
               "rank out of range");
    const auto ia = static_cast<std::size_t>(a);
    const auto ib = static_cast<std::size_t>(b);
    if (a == b) return LinkClass::self;
    if (socket_by_rank_[ia] == socket_by_rank_[ib])
      return LinkClass::intra_socket;
    if (node_by_rank_[ia] == node_by_rank_[ib]) return LinkClass::inter_socket;
    return LinkClass::inter_node;
  }

 private:
  TopologySpec spec_;
  int per_socket_;
  std::vector<std::int32_t> socket_by_rank_;
  std::vector<std::int32_t> node_by_rank_;
};

}  // namespace iw::net
