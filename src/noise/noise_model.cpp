#include "noise/noise_model.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/error.hpp"
#include "support/units.hpp"

namespace iw::noise {

std::unique_ptr<NoiseModel> ZeroNoise::clone() const {
  return std::make_unique<ZeroNoise>();
}

ExponentialNoise::ExponentialNoise(Duration mean_delay) : mean_(mean_delay) {
  IW_REQUIRE(mean_delay.ns() >= 0, "noise mean must be non-negative");
}

Duration ExponentialNoise::sample(Rng& rng) const {
  return rng.exponential_duration(mean_);
}

std::unique_ptr<NoiseModel> ExponentialNoise::clone() const {
  return std::make_unique<ExponentialNoise>(mean_);
}

std::string ExponentialNoise::describe() const {
  return "exponential(mean=" + fmt_duration(mean_) + ")";
}

GammaNoise::GammaNoise(double shape, Duration mean_delay)
    : shape_(shape), mean_(mean_delay) {
  IW_REQUIRE(shape > 0.0, "gamma shape must be positive");
  IW_REQUIRE(mean_delay.ns() >= 0, "noise mean must be non-negative");
}

Duration GammaNoise::sample(Rng& rng) const {
  const double ns = rng.gamma(shape_, static_cast<double>(mean_.ns()));
  return Duration{static_cast<std::int64_t>(ns + 0.5)};
}

std::unique_ptr<NoiseModel> GammaNoise::clone() const {
  return std::make_unique<GammaNoise>(shape_, mean_);
}

std::string GammaNoise::describe() const {
  std::ostringstream os;
  os << "gamma(shape=" << shape_ << ", mean=" << fmt_duration(mean_) << ")";
  return os.str();
}

UniformNoise::UniformNoise(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
  IW_REQUIRE(Duration::zero() <= lo && lo <= hi,
             "uniform noise range must be ordered and non-negative");
}

Duration UniformNoise::sample(Rng& rng) const {
  return Duration{static_cast<std::int64_t>(
      rng.uniform(static_cast<double>(lo_.ns()),
                  static_cast<double>(hi_.ns())))};
}

std::unique_ptr<NoiseModel> UniformNoise::clone() const {
  return std::make_unique<UniformNoise>(lo_, hi_);
}

std::string UniformNoise::describe() const {
  return "uniform[" + fmt_duration(lo_) + ", " + fmt_duration(hi_) + "]";
}

NormalNoise::NormalNoise(Duration mean_delay, Duration stddev)
    : mean_(mean_delay), stddev_(stddev) {
  IW_REQUIRE(mean_delay.ns() >= 0, "noise mean must be non-negative");
  IW_REQUIRE(stddev.ns() >= 0, "noise stddev must be non-negative");
}

Duration NormalNoise::sample(Rng& rng) const {
  const double ns = static_cast<double>(mean_.ns()) +
                    rng.normal() * static_cast<double>(stddev_.ns());
  return Duration{std::max<std::int64_t>(0, static_cast<std::int64_t>(ns))};
}

std::unique_ptr<NoiseModel> NormalNoise::clone() const {
  return std::make_unique<NormalNoise>(mean_, stddev_);
}

std::string NormalNoise::describe() const {
  return "normal(mean=" + fmt_duration(mean_) +
         ", sd=" + fmt_duration(stddev_) + ")";
}

MixtureNoise::MixtureNoise(std::vector<Component> components)
    : components_(std::move(components)), total_weight_(0.0) {
  IW_REQUIRE(!components_.empty(), "mixture needs at least one component");
  for (const auto& c : components_) {
    IW_REQUIRE(c.weight > 0.0, "mixture weights must be positive");
    IW_REQUIRE(c.model != nullptr, "mixture component model missing");
    total_weight_ += c.weight;
  }
}

Duration MixtureNoise::sample(Rng& rng) const {
  double pick = rng.uniform(0.0, total_weight_);
  for (const auto& c : components_) {
    if (pick < c.weight) return c.model->sample(rng);
    pick -= c.weight;
  }
  return components_.back().model->sample(rng);
}

std::unique_ptr<NoiseModel> MixtureNoise::clone() const {
  std::vector<Component> copy;
  copy.reserve(components_.size());
  for (const auto& c : components_)
    copy.push_back(Component{c.weight, c.model->clone()});
  return std::make_unique<MixtureNoise>(std::move(copy));
}

std::string MixtureNoise::describe() const {
  std::ostringstream os;
  os << "mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) os << " + ";
    os << components_[i].weight / total_weight_ << "*"
       << components_[i].model->describe();
  }
  os << ")";
  return os.str();
}

Duration MixtureNoise::mean() const {
  double ns = 0.0;
  for (const auto& c : components_)
    ns += c.weight / total_weight_ * static_cast<double>(c.model->mean().ns());
  return Duration{static_cast<std::int64_t>(ns + 0.5)};
}

}  // namespace iw::noise
