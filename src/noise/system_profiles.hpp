// Calibrated system-noise profiles for the paper's two clusters (Fig. 3).
//
// The paper measures natural per-3ms-phase execution delays with a
// throughput-exact vdivpd workload:
//   * Emmy (InfiniBand), SMT on:   mean 2.4 us, max < 30 us
//   * Meggie (Omni-Path), SMT on:  mean 2.8 us, max < 30 us
//   * Meggie, SMT off: bimodal — a fine-grained peak plus a distinct second
//     peak at ~660 us attributed to the CPU-hungry Omni-Path driver
//   * Emmy, SMT off: unimodal but coarser than SMT-on
//
// An exponential body reproduces the observed mean and, at the paper's
// 3.3e5-sample count, an expected maximum of mean*ln(3.3e5) ~ 12.7*mean —
// ~30 us for Emmy, matching the reported bound.
#pragma once

#include <memory>
#include <string>

#include "noise/noise_model.hpp"

namespace iw::noise {

/// Value-type description of a noise configuration; buildable into a model.
/// Keeping specs as values lets experiment configs be copied and swept.
struct NoiseSpec {
  enum class Kind {
    none,
    exponential,
    gamma,
    uniform,
    emmy_smt_on,
    emmy_smt_off,
    meggie_smt_on,
    meggie_smt_off,
  };

  Kind kind = Kind::none;
  Duration mean;       ///< for exponential/gamma
  double shape = 1.0;  ///< for gamma
  Duration lo, hi;     ///< for uniform

  [[nodiscard]] static NoiseSpec none();
  [[nodiscard]] static NoiseSpec exponential(Duration mean);
  [[nodiscard]] static NoiseSpec gamma(double shape, Duration mean);
  [[nodiscard]] static NoiseSpec uniform(Duration lo, Duration hi);
  [[nodiscard]] static NoiseSpec system(const std::string& name);

  /// Instantiates the model. The returned model is stateless; randomness
  /// comes from the Rng passed to sample().
  [[nodiscard]] std::unique_ptr<NoiseModel> build() const;
};

/// Natural noise of Emmy (InfiniBand) with SMT enabled — the configuration
/// used for all Emmy experiments in the paper.
[[nodiscard]] std::unique_ptr<NoiseModel> emmy_smt_on();

/// Emmy with SMT disabled (coarser unimodal noise).
[[nodiscard]] std::unique_ptr<NoiseModel> emmy_smt_off();

/// Meggie (Omni-Path) with SMT enabled.
[[nodiscard]] std::unique_ptr<NoiseModel> meggie_smt_on();

/// Meggie with SMT disabled — bimodal with the ~660 us driver peak; the
/// configuration used for all Meggie experiments in the paper.
[[nodiscard]] std::unique_ptr<NoiseModel> meggie_smt_off();

}  // namespace iw::noise
