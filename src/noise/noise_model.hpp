// Noise models: per-execution-phase random extra delays.
//
// The paper distinguishes fine-grained *noise* (microsecond-scale, OS
// interference, drivers; Sec. I-A) from long one-off *delays* (which create
// idle waves). Noise models produce the former; they are sampled once per
// execution phase and added to the pure compute time.
//
// The quantitative decay experiments (Sec. V-A) inject exponential noise
// with probability density f(t/Texec; lambda) = lambda*exp(-lambda*t/Texec),
// characterized by E = 1/lambda, the mean relative delay per phase.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/time.hpp"

namespace iw::noise {

/// Interface: one sample = extra delay for one execution phase.
class NoiseModel {
 public:
  virtual ~NoiseModel() = default;
  [[nodiscard]] virtual Duration sample(Rng& rng) const = 0;
  [[nodiscard]] virtual std::unique_ptr<NoiseModel> clone() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
  /// Expected value of a sample, for calibration checks.
  [[nodiscard]] virtual Duration mean() const = 0;
};

/// No noise at all (the "silent system" of Sec. IV-C).
class ZeroNoise final : public NoiseModel {
 public:
  [[nodiscard]] Duration sample(Rng&) const override { return Duration::zero(); }
  [[nodiscard]] std::unique_ptr<NoiseModel> clone() const override;
  [[nodiscard]] std::string describe() const override { return "none"; }
  [[nodiscard]] Duration mean() const override { return Duration::zero(); }
};

/// Exponentially distributed noise (paper Eq. 3).
class ExponentialNoise final : public NoiseModel {
 public:
  explicit ExponentialNoise(Duration mean_delay);
  [[nodiscard]] Duration sample(Rng& rng) const override;
  [[nodiscard]] std::unique_ptr<NoiseModel> clone() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Duration mean() const override { return mean_; }

 private:
  Duration mean_;
};

/// Gamma-distributed noise with configurable shape (shape=1 degenerates to
/// exponential). Used by the noise-shape ablation.
class GammaNoise final : public NoiseModel {
 public:
  GammaNoise(double shape, Duration mean_delay);
  [[nodiscard]] Duration sample(Rng& rng) const override;
  [[nodiscard]] std::unique_ptr<NoiseModel> clone() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Duration mean() const override { return mean_; }

 private:
  double shape_;
  Duration mean_;
};

/// Uniform noise on [lo, hi].
class UniformNoise final : public NoiseModel {
 public:
  UniformNoise(Duration lo, Duration hi);
  [[nodiscard]] Duration sample(Rng& rng) const override;
  [[nodiscard]] std::unique_ptr<NoiseModel> clone() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Duration mean() const override { return (lo_ + hi_) / 2; }

 private:
  Duration lo_;
  Duration hi_;
};

/// Truncated-at-zero normal noise; building block for bimodal mixtures
/// (Meggie's SMT-off histogram has a distinct second peak near 660 us).
class NormalNoise final : public NoiseModel {
 public:
  NormalNoise(Duration mean_delay, Duration stddev);
  [[nodiscard]] Duration sample(Rng& rng) const override;
  [[nodiscard]] std::unique_ptr<NoiseModel> clone() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Duration mean() const override { return mean_; }

 private:
  Duration mean_;
  Duration stddev_;
};

/// Weighted mixture of component models.
class MixtureNoise final : public NoiseModel {
 public:
  struct Component {
    double weight;
    std::unique_ptr<NoiseModel> model;
  };

  explicit MixtureNoise(std::vector<Component> components);
  [[nodiscard]] Duration sample(Rng& rng) const override;
  [[nodiscard]] std::unique_ptr<NoiseModel> clone() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Duration mean() const override;

 private:
  std::vector<Component> components_;
  double total_weight_;
};

}  // namespace iw::noise
