#include "noise/system_profiles.hpp"

#include <utility>
#include <vector>

#include "support/error.hpp"

namespace iw::noise {

NoiseSpec NoiseSpec::none() { return NoiseSpec{}; }

NoiseSpec NoiseSpec::exponential(Duration mean) {
  NoiseSpec s;
  s.kind = Kind::exponential;
  s.mean = mean;
  return s;
}

NoiseSpec NoiseSpec::gamma(double shape, Duration mean) {
  NoiseSpec s;
  s.kind = Kind::gamma;
  s.shape = shape;
  s.mean = mean;
  return s;
}

NoiseSpec NoiseSpec::uniform(Duration lo, Duration hi) {
  NoiseSpec s;
  s.kind = Kind::uniform;
  s.lo = lo;
  s.hi = hi;
  return s;
}

NoiseSpec NoiseSpec::system(const std::string& name) {
  NoiseSpec s;
  if (name == "emmy-smt-on") s.kind = Kind::emmy_smt_on;
  else if (name == "emmy-smt-off") s.kind = Kind::emmy_smt_off;
  else if (name == "meggie-smt-on") s.kind = Kind::meggie_smt_on;
  else if (name == "meggie-smt-off") s.kind = Kind::meggie_smt_off;
  else IW_REQUIRE(false, "unknown system noise profile: " + name);
  return s;
}

std::unique_ptr<NoiseModel> NoiseSpec::build() const {
  switch (kind) {
    case Kind::none: return std::make_unique<ZeroNoise>();
    case Kind::exponential: return std::make_unique<ExponentialNoise>(mean);
    case Kind::gamma: return std::make_unique<GammaNoise>(shape, mean);
    case Kind::uniform: return std::make_unique<UniformNoise>(lo, hi);
    case Kind::emmy_smt_on: return emmy_smt_on();
    case Kind::emmy_smt_off: return emmy_smt_off();
    case Kind::meggie_smt_on: return meggie_smt_on();
    case Kind::meggie_smt_off: return meggie_smt_off();
  }
  return std::make_unique<ZeroNoise>();
}

std::unique_ptr<NoiseModel> emmy_smt_on() {
  // Mean 2.4 us; exponential body reproduces the <30 us max at the paper's
  // sample count.
  return std::make_unique<ExponentialNoise>(microseconds(2.4));
}

std::unique_ptr<NoiseModel> emmy_smt_off() {
  // SMT-off: the OS has no spare hardware thread to absorb housekeeping, so
  // delays are coarser; still unimodal on InfiniBand.
  return std::make_unique<ExponentialNoise>(microseconds(8.0));
}

std::unique_ptr<NoiseModel> meggie_smt_on() {
  return std::make_unique<ExponentialNoise>(microseconds(2.8));
}

std::unique_ptr<NoiseModel> meggie_smt_off() {
  // Bimodal: fine-grained exponential body plus the Omni-Path driver peak at
  // ~660 us (paper Fig. 3(b)). The 2% weight keeps the overall mean modest
  // while producing a clearly visible second mode in a 3.3e5-sample
  // histogram.
  std::vector<MixtureNoise::Component> parts;
  parts.push_back({0.98, std::make_unique<ExponentialNoise>(microseconds(9.0))});
  parts.push_back(
      {0.02, std::make_unique<NormalNoise>(microseconds(660.0), microseconds(25.0))});
  return std::make_unique<MixtureNoise>(std::move(parts));
}

}  // namespace iw::noise
