// CampaignService: the controller behind idlewaved.
//
// Transport-free heart of the daemon, modeled on the slurmctld controller /
// queue split: the server (service/server.hpp) owns sockets and framing,
// this class owns everything else — admission, the fair-share JobQueue,
// sharding claimed batches onto the existing run_campaign worker pool, the
// content-addressed PointCache, and per-job output streams of ready-to-send
// protocol lines. Tests drive it in-process (no fork/exec, no sockets) and
// get the exact bytes a socket client would.
//
// Threading: every public method locks the one service mutex. Batches run
// on whichever thread calls pump()/run_loop() — the daemon dedicates one
// worker thread to run_loop() — and the physics itself runs UNLOCKED, so
// submit/cancel/status stay responsive during compute; a running batch is
// stopped at the next point boundary via the job's cancellation flag. The
// metrics registry (not thread-safe) is only ever touched under the
// service mutex, never handed to run_campaign's workers.
//
// Dedup has three tiers per submitted point:
//   cache hit  — a completed record exists; replayed instantly (the record
//                is byte-identical to a fresh run; only `index` is patched
//                to the requesting campaign's point index).
//   in-flight  — another job owns the same key but hasn't finished it; the
//                point parks as a "reserved" slot and is filled when the
//                owner's batch lands. If the owner cancels first, the
//                oldest waiter is promoted to owner and computes it.
//   compute    — this job becomes the key's owner; the point enters the
//                fair-share queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/cache.hpp"
#include "service/queue.hpp"
#include "sweep/spec.hpp"

namespace iw::service {

struct ServiceOptions {
  /// Worker threads run_campaign shards each claimed batch across.
  int threads = 1;
  /// Max points per scheduling decision (one run_campaign call). Small
  /// batches interleave clients finely; large ones amortize pool spin-up.
  std::size_t batch_points = 8;
  QueueLimits limits;
  /// Optional unified metrics registry; written only under the service
  /// mutex (the registry is not thread-safe). Non-owning.
  obs::MetricsRegistry* metrics = nullptr;
  /// Called (unlocked) whenever some job gained ready output lines — the
  /// daemon writes a wakeup byte so its poll loop drains. Plain function
  /// pointer: src/service is a lint hot tree (no std::function).
  void (*on_output)(void* ctx) = nullptr;
  void* on_output_ctx = nullptr;
  /// Test hook: called after each completed point of a running batch, from
  /// run_campaign's progress callback, OUTSIDE the service lock — a test
  /// can cancel() the job at an exact point boundary from inside it.
  void (*on_batch_point)(void* ctx, std::uint64_t job,
                         std::size_t done_in_batch) = nullptr;
  void* on_batch_ctx = nullptr;
};

struct SubmitResult {
  bool accepted = false;
  std::uint64_t job = 0;
  std::size_t points = 0;  ///< full expansion size
  std::size_t cached = 0;  ///< served from cache at submission
  std::string error_code;  ///< on rejection: admission-* | bad-spec
  std::string message;
};

class CampaignService {
 public:
  explicit CampaignService(ServiceOptions options = {});
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Admits (or rejects — structured error, never a hang) one campaign.
  /// On acceptance the job's output stream starts filling immediately:
  /// cache-hit prefixes are emitted before submit() even returns.
  SubmitResult submit(const std::string& client, int priority,
                      const sweep::SweepSpec& spec);

  /// Cancels a job: unclaimed and reserved work is reclaimed instantly, a
  /// running batch stops at its next point boundary, and every record
  /// completed before the stop is still delivered ahead of the terminal
  /// "cancelled" line. False if the job is unknown or already finished.
  bool cancel(std::uint64_t job);

  /// Moves the job's ready output lines (record lines in ascending point
  /// order, then one terminal control line) into `lines`. False if the job
  /// is unknown.
  bool drain(std::uint64_t job, std::vector<std::string>& lines);

  /// True once the job's terminal line has been emitted.
  [[nodiscard]] bool finished(std::uint64_t job) const;

  /// Record lines of every point completed so far (the "results" verb's
  /// replay), ascending point order. False if the job is unknown.
  bool results_so_far(std::uint64_t job, std::vector<std::string>& lines) const;

  /// One status control line (queue depth, clients, cache, per-client
  /// points/sec).
  [[nodiscard]] std::string status_json() const;

  /// The client's connection went away: cancel its unfinished jobs and
  /// discard their output streams. Queue slots free immediately; completed
  /// physics stays in the cache.
  void client_gone(const std::string& client);

  /// Per-job form of client_gone — the daemon calls this for each job a
  /// disconnecting connection owned (the fair-share client name may be
  /// shared by other live connections).
  void abandon(std::uint64_t job);

  /// Runs one scheduling decision and its batch to completion. False when
  /// nothing is runnable. Tests call this directly for determinism.
  bool pump();

  /// pump() until stop(), sleeping while idle. The daemon runs this on a
  /// dedicated worker thread.
  void run_loop();
  void stop();

  [[nodiscard]] std::size_t cache_size() const;
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string client;
    int priority = 0;
    sweep::SweepSpec spec;
    std::vector<sweep::SweepPoint> points;
    std::vector<std::string> keys;  ///< canonical cache key per point
    /// Per-point slot state. done/pending/claimed/reserved as in the
    /// class comment; reclaimed = cancelled before a record existed.
    enum class Slot : std::uint8_t {
      done,
      pending,
      claimed,
      reserved,
      reclaimed
    };
    std::vector<Slot> slots;
    std::vector<sweep::SweepRecord> recs;  ///< valid where has_rec
    std::vector<bool> has_rec;
    /// Point indices needing compute, in point order; the JobQueue's slot
    /// offsets index this array (promotions append, claims walk forward).
    std::vector<std::size_t> compute_order;
    std::size_t next_emit = 0;  ///< first point index not yet emitted
    std::size_t emitted = 0;
    std::size_t done_count = 0;
    std::size_t cache_hits = 0;  ///< submit-time hits + waiter fills
    std::size_t computed = 0;
    std::vector<std::string> out;  ///< ready-to-send protocol lines
    std::atomic<bool> cancel_flag{false};
    bool cancelled = false;
    bool finished = false;
    bool abandoned = false;  ///< client disconnected; output is discarded
    /// Non-empty when a batch threw: the terminal line becomes an error
    /// response instead of "cancelled".
    std::string terminal_error;
  };
  struct ClientStats {
    std::uint64_t computed = 0;
    double batch_seconds = 0.0;
  };
  /// Who will compute a key that is not yet cached.
  struct Owner {
    std::uint64_t job = 0;
    std::size_t point = 0;
  };

  Job* find_job(std::uint64_t id);
  const Job* find_job(std::uint64_t id) const;
  /// Marks the job cancelled and reclaims its unclaimed pending and
  /// reserved slots (ownerships released / waiter registrations removed).
  void reclaim_unfinished(Job& j);
  void fill_record(Job& j, std::size_t pi, const sweep::SweepRecord& rec);
  void advance_emission(Job& j);
  void release_ownership(const std::string& key);
  void check_finalize(Job& j);
  void publish_gauges();
  [[nodiscard]] bool runnable_locked() const;

  ServiceOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  JobQueue queue_;
  PointCache cache_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::map<std::string, Owner> owners_;  ///< key -> computing (job, point)
  std::map<std::string, std::vector<Owner>> waiters_;  ///< key -> reserved
  std::map<std::string, ClientStats> stats_;
  std::uint64_t next_job_ = 1;
  std::uint64_t total_computed_ = 0;
  double total_batch_seconds_ = 0.0;
  bool stop_ = false;
  bool batch_in_flight_ = false;  ///< one batch at a time (single run_loop)
};

}  // namespace iw::service
