#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <exception>
#include <stdexcept>

#include "service/protocol.hpp"

namespace iw::service {

ServiceOptions Server::patch_options(ServerOptions& options, Server* self) {
  options.service.on_output = &Server::wake_cb;
  options.service.on_output_ctx = self;
  return options.service;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(patch_options(options_, this)) {}

Server::~Server() {
  stop();
  wait();
}

void Server::wake_cb(void* ctx) {
  Server* self = static_cast<Server*>(ctx);
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n =
      ::write(self->wake_write_.get(), &byte, 1);
}

void Server::start() {
  if (started_) return;
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0)
    throw std::runtime_error("pipe failed for service wakeup");
  wake_read_.reset(pipe_fds[0]);
  wake_write_.reset(pipe_fds[1]);
  listen_fd_ = unix_listen(options_.socket_path);
  started_ = true;
  sched_thread_ = std::thread([this] { service_.run_loop(); });
  io_thread_ = std::thread([this] { io_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  service_.stop();
  if (wake_write_.valid()) wake_cb(this);
}

void Server::wait() {
  if (io_thread_.joinable()) io_thread_.join();
  if (sched_thread_.joinable()) sched_thread_.join();
}

void Server::io_loop() {
  std::vector<pollfd> fds;
  std::vector<char> buf(64 * 1024);
  while (!stopping_.load()) {
    fds.clear();
    fds.push_back(pollfd{listen_fd_.get(), POLLIN, 0});
    fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    for (const Conn& c : conns_) fds.push_back(pollfd{c.fd.get(), POLLIN, 0});
    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    if ((fds[1].revents & POLLIN) != 0) {
      // One read per wakeup; leftover bytes just re-trigger the next poll.
      char scratch[256];
      [[maybe_unused]] const ssize_t n =
          ::read(wake_read_.get(), scratch, sizeof scratch);
    }
    // New service output may belong to any connection's streams.
    for (Conn& c : conns_)
      if (!c.dead) drain_streams(c);
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = conns_[i];
      if (c.dead || (fds[2 + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
        continue;
      const ssize_t n = ::read(c.fd.get(), buf.data(), buf.size());
      if (n <= 0) {
        c.dead = true;
        continue;
      }
      c.in.feed(buf.data(), static_cast<std::size_t>(n));
      std::string line;
      while (!c.dead && !stopping_.load() && c.in.next_line(line))
        handle_line(c, line);
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (fd >= 0) {
        conns_.emplace_back();
        conns_.back().fd.reset(fd);
      }
    }
    for (std::size_t i = 0; i < conns_.size();) {
      if (conns_[i].dead) {
        disconnect(conns_[i]);
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (Conn& c : conns_) disconnect(c);
  conns_.clear();
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

void Server::handle_line(Conn& conn, const std::string& line) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    if (!send_line(conn.fd.get(), error_response("bad-request", e.what())))
      conn.dead = true;
    return;
  }
  switch (req.type) {
    case RequestType::submit: {
      const SubmitResult r =
          service_.submit(req.client, req.priority, req.spec);
      if (!r.accepted) {
        if (!send_line(conn.fd.get(),
                       error_response(r.error_code, r.message)))
          conn.dead = true;
        return;
      }
      if (!send_line(conn.fd.get(),
                     accepted_response(r.job, r.points, r.cached))) {
        conn.dead = true;
        service_.abandon(r.job);
        return;
      }
      conn.jobs.push_back(r.job);
      conn.streaming.push_back(r.job);
      drain_streams(conn);
      return;
    }
    case RequestType::status: {
      if (!send_line(conn.fd.get(), service_.status_json())) conn.dead = true;
      return;
    }
    case RequestType::cancel: {
      // Any connection may cancel (the socket is a local trust boundary);
      // the submitting connection's stream receives every record the batch
      // completed, then the terminal "cancelled" line.
      const bool ok = service_.cancel(req.job);
      if (!send_line(conn.fd.get(), cancel_ack_response(req.job, ok)))
        conn.dead = true;
      else
        drain_streams(conn);
      return;
    }
    case RequestType::results: {
      std::vector<std::string> lines;
      service_.results_so_far(req.job, lines);
      for (const std::string& l : lines)
        if (!send_line(conn.fd.get(), l)) {
          conn.dead = true;
          return;
        }
      if (!send_line(conn.fd.get(), results_response(req.job, lines.size())))
        conn.dead = true;
      return;
    }
    case RequestType::shutdown: {
      if (!send_line(conn.fd.get(), bye_response())) conn.dead = true;
      stopping_.store(true);
      service_.stop();
      return;
    }
  }
}

void Server::drain_streams(Conn& conn) {
  for (std::size_t i = 0; i < conn.streaming.size();) {
    const std::uint64_t job = conn.streaming[i];
    // Order matters: checking finished() before draining guarantees the
    // terminal line (pushed before finished() flips) is in this drain.
    const bool fin = service_.finished(job);
    std::vector<std::string> lines;
    service_.drain(job, lines);
    for (const std::string& l : lines)
      if (!send_line(conn.fd.get(), l)) {
        conn.dead = true;
        return;
      }
    if (fin)
      conn.streaming.erase(conn.streaming.begin() +
                           static_cast<std::ptrdiff_t>(i));
    else
      ++i;
  }
}

void Server::disconnect(Conn& conn) {
  for (const std::uint64_t job : conn.jobs) service_.abandon(job);
  conn.fd.reset();
  conn.jobs.clear();
  conn.streaming.clear();
}

}  // namespace iw::service
