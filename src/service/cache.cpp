#include "service/cache.hpp"

#include <cstdio>

#include "support/hash.hpp"
#include "verify/golden.hpp"

namespace iw::service {
namespace {

// Exact, locale-free double serialization: hexfloats round-trip every bit,
// so two submissions whose parsed values are binary-equal produce the same
// key and *only* those. (csv_num's 12 significant digits would alias
// distinct doubles; the protocol's 17-digit decimal form would work but is
// longer and subtler to reason about.)
std::string canon(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}
std::string canon(std::int64_t v) { return std::to_string(v); }
std::string canon(int v) { return std::to_string(v); }
std::string canon(std::uint64_t v) { return std::to_string(v); }
std::string canon(const std::string& v) { return v; }

/// Axis value in canonical form: enum axes via their to_string name (the
/// AxisValue record form), arithmetic axes via the exact serializers above.
template <typename T>
std::string canon_axis(T v) {
  return canon(sweep::AxisValue<T>::to_record(v));
}

}  // namespace

std::string canonical_point_key(const sweep::SweepSpec& spec,
                                const sweep::SweepPoint& pt) {
  return canonical_point_key(spec, pt, verify::kGoldenSchemaVersion);
}

std::string canonical_point_key(const sweep::SweepSpec& spec,
                                const sweep::SweepPoint& pt,
                                int schema_version) {
  std::string key = "iw-point;schema=";
  key += canon(schema_version);
  // Campaign scalars that build_experiment() folds into every point. The
  // injection fraction matters for ring sweeps only, but including it
  // unconditionally costs nothing and can only split entries that would
  // have been equal anyway.
  key += ";workload=";
  key += sweep::to_string(pt.workload);
  key += ";steps=";
  key += canon(spec.steps);
  key += ";texec_ns=";
  key += canon(spec.texec.ns());
  key += ";distance=";
  key += canon(spec.distance);
  key += ";injection_step=";
  key += canon(spec.injection_step);
  key += ";injection_at=";
  key += canon(spec.injection_at);
  key += ";min_idle_ns=";
  key += canon(spec.min_idle.ns());
  key += ";system_noise=";
  key += spec.system_noise;
  key += ";ffwd=";
  key += spec.ffwd;
  // Every axis of the registry, in declaration order — the submission's
  // own declaration order never reaches this function.
#define IW_AXIS_CANON(field, Type, flag, column, default_) \
  key += ";" column "=";                                   \
  key += canon_axis<Type>(pt.field);
  IW_SWEEP_AXES(IW_AXIS_CANON)
#undef IW_AXIS_CANON
  key += ";seed=";
  key += canon(pt.exp.cluster.seed);
  return key;
}

std::string key_address(const std::string& canonical_key) {
  return hash_hex(fnv1a64(canonical_key));
}

const sweep::SweepRecord* PointCache::find(const std::string& key) const {
  const auto it = store_.find(key);
  return it == store_.end() ? nullptr : &it->second;
}

void PointCache::insert(const std::string& key, const sweep::SweepRecord& rec) {
  if (store_.emplace(key, rec).second) key_bytes_ += key.size();
}

}  // namespace iw::service
