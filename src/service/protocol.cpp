#include "service/protocol.hpp"

#include <cstdio>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/csv.hpp"

namespace iw::service {
namespace {

/// 17 significant digits round-trip every IEEE-754 double exactly; unlike
/// the cache key's hexfloats, the wire favors a form humans and other
/// tools can read.
std::string num17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("request: " + message);
}

const json::Value& require(const json::Value& obj, const char* key,
                           json::Value::Kind kind, const char* kind_name) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) fail(std::string("missing \"") + key + "\"");
  if (!v->is(kind))
    fail(std::string("\"") + key + "\" must be a " + kind_name);
  return *v;
}

std::int64_t as_int(const json::Value& v, const char* key) {
  if (!v.is(json::Value::Kind::number))
    fail(std::string("\"") + key + "\" must be a number");
  const auto n = static_cast<std::int64_t>(v.number);
  if (static_cast<double>(n) != v.number)
    fail(std::string("\"") + key + "\" must be an integer");
  return n;
}

std::uint64_t parse_u64(const std::string& text, const char* key) {
  if (text.empty()) fail(std::string("\"") + key + "\" is empty");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9')
      fail(std::string("\"") + key + "\" must be a decimal string");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      fail(std::string("\"") + key + "\" overflows u64");
    value = value * 10 + digit;
  }
  return value;
}

/// One axis array on the wire: arithmetic axes as JSON numbers, enum axes
/// as their to_string names (matching the record schema's column form).
template <typename T>
std::string axis_to_json(const std::vector<T>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    if constexpr (std::is_same_v<T, double>) {
      out += num17(values[i]);
    } else if constexpr (std::is_arithmetic_v<T>) {
      out += std::to_string(values[i]);
    } else {
      out += json_str(sweep::AxisValue<T>::to_record(values[i]));
    }
  }
  out += ']';
  return out;
}

template <typename T>
std::vector<T> axis_from_json(const json::Value& arr, const char* column) {
  if (!arr.is(json::Value::Kind::array))
    fail(std::string("axis \"") + column + "\" must be an array");
  if (arr.items.empty())
    fail(std::string("axis \"") + column + "\" must be non-empty");
  std::vector<T> out;
  out.reserve(arr.items.size());
  for (const json::Value& item : arr.items) {
    if constexpr (std::is_same_v<T, double>) {
      if (!item.is(json::Value::Kind::number))
        fail(std::string("axis \"") + column + "\" values must be numbers");
      out.push_back(item.number);
    } else if constexpr (std::is_arithmetic_v<T>) {
      out.push_back(static_cast<T>(as_int(item, column)));
    } else {
      if (!item.is(json::Value::Kind::string))
        fail(std::string("axis \"") + column + "\" values must be strings");
      out.push_back(sweep::AxisValue<T>::parse(item.text));
    }
  }
  return out;
}

}  // namespace

std::string spec_to_json(const sweep::SweepSpec& spec) {
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("workload", json_str(sweep::to_string(spec.workload)));
  fields.emplace_back("steps", std::to_string(spec.steps));
  fields.emplace_back("texec_ns", std::to_string(spec.texec.ns()));
  fields.emplace_back("distance", std::to_string(spec.distance));
  fields.emplace_back("injection_step", std::to_string(spec.injection_step));
  fields.emplace_back("injection_at", num17(spec.injection_at));
  fields.emplace_back("min_idle_ns", std::to_string(spec.min_idle.ns()));
  fields.emplace_back("system_noise", json_str(spec.system_noise));
  fields.emplace_back("ffwd", json_str(spec.ffwd));
  fields.emplace_back("seed", json_str(std::to_string(spec.campaign_seed)));
  std::string axes = "{";
  bool first = true;
#define IW_AXIS_JSON(field, Type, flag, column, default_)  \
  if (!first) axes += ',';                                 \
  first = false;                                           \
  axes += "\"" column "\":";                               \
  axes += axis_to_json<Type>(spec.field);
  IW_SWEEP_AXES(IW_AXIS_JSON)
#undef IW_AXIS_JSON
  axes += '}';
  fields.emplace_back("axes", axes);
  return json_object(fields);
}

sweep::SweepSpec spec_from_json(const json::Value& v) {
  if (!v.is(json::Value::Kind::object)) fail("\"spec\" must be an object");
  sweep::SweepSpec spec;
  for (const auto& [key, value] : v.members) {
    if (key == "workload") {
      if (!value.is(json::Value::Kind::string))
        fail("\"workload\" must be a string");
      if (value.text == "ring")
        spec.workload = sweep::Workload::ring;
      else if (value.text == "grid2d")
        spec.workload = sweep::Workload::grid2d;
      else
        fail("unknown workload \"" + value.text + "\" (ring|grid2d)");
    } else if (key == "steps") {
      spec.steps = static_cast<int>(as_int(value, "steps"));
    } else if (key == "texec_ns") {
      spec.texec = Duration(as_int(value, "texec_ns"));
    } else if (key == "distance") {
      spec.distance = static_cast<int>(as_int(value, "distance"));
    } else if (key == "injection_step") {
      spec.injection_step = static_cast<int>(as_int(value, "injection_step"));
    } else if (key == "injection_at") {
      if (!value.is(json::Value::Kind::number))
        fail("\"injection_at\" must be a number");
      spec.injection_at = value.number;
    } else if (key == "min_idle_ns") {
      spec.min_idle = Duration(as_int(value, "min_idle_ns"));
    } else if (key == "system_noise") {
      if (!value.is(json::Value::Kind::string))
        fail("\"system_noise\" must be a string");
      spec.system_noise = value.text;
    } else if (key == "ffwd") {
      if (!value.is(json::Value::Kind::string))
        fail("\"ffwd\" must be a string");
      spec.ffwd = value.text;
    } else if (key == "seed") {
      if (!value.is(json::Value::Kind::string))
        fail("\"seed\" must be a quoted decimal string");
      spec.campaign_seed = parse_u64(value.text, "seed");
    } else if (key == "axes") {
      if (!value.is(json::Value::Kind::object))
        fail("\"axes\" must be an object");
      for (const auto& [column, arr] : value.members) {
        bool known = false;
#define IW_AXIS_PARSE(field, Type, flag, column_, default_) \
  if (!known && column == column_) {                        \
    spec.field = axis_from_json<Type>(arr, column_);        \
    known = true;                                           \
  }
        IW_SWEEP_AXES(IW_AXIS_PARSE)
#undef IW_AXIS_PARSE
        if (!known) fail("unknown axis \"" + column + "\"");
      }
    } else {
      fail("unknown spec key \"" + key + "\"");
    }
  }
  return spec;
}

Request parse_request(const std::string& line) {
  const json::Value doc = json::parse(line, "request");
  if (!doc.is(json::Value::Kind::object)) fail("must be a JSON object");
  const json::Value& type = require(doc, "type", json::Value::Kind::string,
                                    "string");
  Request req;
  if (type.text == "submit") {
    req.type = RequestType::submit;
    req.client =
        require(doc, "client", json::Value::Kind::string, "string").text;
    if (req.client.empty()) fail("\"client\" must be non-empty");
    if (const json::Value* prio = doc.find("priority"))
      req.priority = static_cast<int>(as_int(*prio, "priority"));
    req.spec = spec_from_json(
        require(doc, "spec", json::Value::Kind::object, "object"));
  } else if (type.text == "status") {
    req.type = RequestType::status;
  } else if (type.text == "cancel" || type.text == "results") {
    req.type = type.text == "cancel" ? RequestType::cancel
                                     : RequestType::results;
    const json::Value& job =
        require(doc, "job", json::Value::Kind::number, "number");
    const std::int64_t id = as_int(job, "job");
    if (id < 0) fail("\"job\" must be non-negative");
    req.job = static_cast<std::uint64_t>(id);
  } else if (type.text == "shutdown") {
    req.type = RequestType::shutdown;
  } else {
    fail("unknown type \"" + type.text +
         "\" (submit|status|cancel|results|shutdown)");
  }
  return req;
}

std::string submit_line(const std::string& client, int priority,
                        const sweep::SweepSpec& spec) {
  return json_object({{"type", json_str("submit")},
                      {"client", json_str(client)},
                      {"priority", std::to_string(priority)},
                      {"spec", spec_to_json(spec)}});
}

std::string status_line() { return json_object({{"type", json_str("status")}}); }

std::string cancel_line(std::uint64_t job) {
  return json_object(
      {{"type", json_str("cancel")}, {"job", std::to_string(job)}});
}

std::string results_line(std::uint64_t job) {
  return json_object(
      {{"type", json_str("results")}, {"job", std::to_string(job)}});
}

std::string shutdown_line() {
  return json_object({{"type", json_str("shutdown")}});
}

std::string error_response(const std::string& code,
                           const std::string& message) {
  return json_object({{"type", json_str("error")},
                      {"code", json_str(code)},
                      {"message", json_str(message)}});
}

std::string accepted_response(std::uint64_t job, std::size_t points,
                              std::size_t cached) {
  return json_object({{"type", json_str("accepted")},
                      {"job", std::to_string(job)},
                      {"points", std::to_string(points)},
                      {"cached", std::to_string(cached)}});
}

std::string done_response(std::uint64_t job, std::size_t records,
                          std::size_t cache_hits, std::size_t computed) {
  return json_object({{"type", json_str("done")},
                      {"job", std::to_string(job)},
                      {"records", std::to_string(records)},
                      {"cache_hits", std::to_string(cache_hits)},
                      {"computed", std::to_string(computed)}});
}

std::string cancelled_response(std::uint64_t job, std::size_t records) {
  return json_object({{"type", json_str("cancelled")},
                      {"job", std::to_string(job)},
                      {"records", std::to_string(records)}});
}

std::string cancel_ack_response(std::uint64_t job, bool accepted) {
  return json_object({{"type", json_str("cancel-ack")},
                      {"job", std::to_string(job)},
                      {"accepted", accepted ? "true" : "false"}});
}

std::string results_response(std::uint64_t job, std::size_t records) {
  return json_object({{"type", json_str("results")},
                      {"job", std::to_string(job)},
                      {"records", std::to_string(records)}});
}

std::string bye_response() { return json_object({{"type", json_str("bye")}}); }

bool is_record_line(const std::string& line) {
  return line.rfind("{\"index\":", 0) == 0;
}

}  // namespace iw::service
