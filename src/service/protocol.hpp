// Wire protocol of the campaign service: line-delimited JSON requests and
// responses over a Unix-domain stream socket.
//
// Every request is one JSON object per line with a leading "type" —
// submit | status | cancel | results | shutdown. Responses are control
// lines (objects whose FIRST key is "type") interleaved with record lines:
// a record line is the exact record_json_line() serialization of one
// SweepRecord, verbatim — it starts with {"index": and carries no "type",
// so clients split the stream on the first key without parsing records.
// That verbatim framing is the byte-identity contract: a client appending
// record lines to a file reproduces JsonlSink output exactly.
//
// Campaign specs travel as a nested object under "spec": scalars by name
// (doubles as 17-significant-digit decimals, durations as integer
// nanoseconds, the campaign seed as a *quoted* decimal string — u64 doesn't
// survive a double round-trip), axes as an "axes" object keyed by record
// column name with one array per axis. Unknown keys are errors, missing
// keys keep SweepSpec defaults — the request format inherits the CLI's
// override semantics.
#pragma once

#include <cstdint>
#include <string>

#include "support/json.hpp"
#include "sweep/spec.hpp"

namespace iw::service {

enum class RequestType : std::uint8_t {
  submit,
  status,
  cancel,
  results,
  shutdown,
};

/// One parsed request line. Fields beyond `type` are meaningful only for
/// the request types that carry them.
struct Request {
  RequestType type = RequestType::status;
  std::string client;          ///< submit: requesting client name
  int priority = 0;            ///< submit: within-client priority (desc)
  sweep::SweepSpec spec;       ///< submit: the campaign
  std::uint64_t job = 0;       ///< cancel / results: target job id
};

/// Parses one request line. Throws std::runtime_error with a
/// protocol-shaped message on malformed JSON, unknown type, unknown keys,
/// or out-of-domain values.
[[nodiscard]] Request parse_request(const std::string& line);

/// Serializes `spec` into the protocol's "spec" object (no newline). The
/// client CLI uses this; parse of the result reproduces `spec` exactly.
[[nodiscard]] std::string spec_to_json(const sweep::SweepSpec& spec);

/// Parses a protocol "spec" object back into a SweepSpec.
[[nodiscard]] sweep::SweepSpec spec_from_json(const json::Value& v);

// --- request lines (client side) -------------------------------------------
[[nodiscard]] std::string submit_line(const std::string& client, int priority,
                                      const sweep::SweepSpec& spec);
[[nodiscard]] std::string status_line();
[[nodiscard]] std::string cancel_line(std::uint64_t job);
[[nodiscard]] std::string results_line(std::uint64_t job);
[[nodiscard]] std::string shutdown_line();

// --- response lines (server side) ------------------------------------------
[[nodiscard]] std::string error_response(const std::string& code,
                                         const std::string& message);
[[nodiscard]] std::string accepted_response(std::uint64_t job,
                                            std::size_t points,
                                            std::size_t cached);
[[nodiscard]] std::string done_response(std::uint64_t job, std::size_t records,
                                        std::size_t cache_hits,
                                        std::size_t computed);
[[nodiscard]] std::string cancelled_response(std::uint64_t job,
                                             std::size_t records);
/// Terminator of a "results" replay: the record lines streamed before it
/// are the `records` points completed so far.
[[nodiscard]] std::string results_response(std::uint64_t job,
                                           std::size_t records);
/// Immediate answer to a "cancel" request (any connection may cancel; the
/// submitting connection's stream still receives every completed record
/// followed by the terminal "cancelled" line). `accepted` is false when
/// the job is unknown or already finished.
[[nodiscard]] std::string cancel_ack_response(std::uint64_t job,
                                              bool accepted);
[[nodiscard]] std::string bye_response();

/// True if `line` is a record line (starts with `{"index":`) rather than a
/// control line. The dichotomy is structural: record_json_line() always
/// emits index first, and every control builder above emits "type" first.
[[nodiscard]] bool is_record_line(const std::string& line);

}  // namespace iw::service
