#include "service/queue.hpp"

#include <cassert>
#include <limits>

namespace iw::service {

Admission JobQueue::check(const std::string& client,
                          std::size_t total_points) const {
  Admission adm;
  const auto it = clients_.find(client);
  const std::size_t open_jobs = it == clients_.end() ? 0 : it->second.open_jobs;
  const std::size_t load = it == clients_.end() ? 0 : it->second.load;
  if (open_jobs >= limits_.max_jobs_per_client) {
    adm.error_code = "admission-jobs";
    adm.message = "client '" + client + "' already has " +
                  std::to_string(open_jobs) + " open jobs (limit " +
                  std::to_string(limits_.max_jobs_per_client) + ")";
    return adm;
  }
  if (total_points > limits_.max_points_per_client ||
      load > limits_.max_points_per_client - total_points) {
    adm.error_code = "admission-points";
    adm.message = "campaign of " + std::to_string(total_points) +
                  " points would put client '" + client + "' at " +
                  std::to_string(load + total_points) +
                  " queued points (limit " +
                  std::to_string(limits_.max_points_per_client) + ")";
    return adm;
  }
  adm.accepted = true;
  return adm;
}

void JobQueue::open(const std::string& client, std::uint64_t job, int priority,
                    std::size_t pending, std::size_t reserved) {
  assert(jobs_.find(job) == jobs_.end() && "job ids are unique");
  JobEntry& e = jobs_[job];
  e.client = client;
  e.priority = priority;
  e.seq = seq_++;
  e.pending = pending;
  e.reserved = reserved;
  ClientEntry& c = client_entry(client);
  c.open_jobs += 1;
  c.load += pending + reserved;
}

bool JobQueue::decide(std::size_t max_points, Claim& out) {
  if (max_points == 0) return false;
  // Pass 1: the runnable client with the smallest lifetime charge (ties by
  // name — clients_ is an ordered map, so the scan order is the tiebreak).
  const ClientEntry* best_client = nullptr;
  const std::string* best_name = nullptr;
  for (const auto& [name, c] : clients_) {
    bool runnable = false;
    for (const auto& [id, e] : jobs_)
      if (e.client == name && e.pending > 0) {
        runnable = true;
        break;
      }
    if (!runnable) continue;
    if (best_client == nullptr || c.charged < best_client->charged) {
      best_client = &c;
      best_name = &name;
    }
  }
  if (best_client == nullptr) return false;
  // Pass 2: within the client, highest priority first, then admission order.
  JobEntry* best = nullptr;
  std::uint64_t best_id = 0;
  for (auto& [id, e] : jobs_) {
    if (e.client != *best_name || e.pending == 0) continue;
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority && e.seq < best->seq)) {
      best = &e;
      best_id = id;
    }
  }
  assert(best != nullptr);
  const std::size_t n = best->pending < max_points ? best->pending : max_points;
  out.job = best_id;
  out.first = best->cursor;
  out.count = n;
  best->cursor += n;
  best->pending -= n;
  best->claimed += n;
  client_entry(best->client).charged += n;
  decisions_ += 1;
  return true;
}

void JobQueue::complete_claimed(std::uint64_t job, std::size_t count) {
  JobEntry& e = entry(job);
  assert(count <= e.claimed);
  e.claimed -= count;
  ClientEntry& c = client_entry(e.client);
  assert(count <= c.load);
  c.load -= count;
}

void JobQueue::complete_reserved(std::uint64_t job, std::size_t count) {
  JobEntry& e = entry(job);
  assert(count <= e.reserved);
  e.reserved -= count;
  ClientEntry& c = client_entry(e.client);
  assert(count <= c.load);
  c.load -= count;
}

void JobQueue::promote_reserved(std::uint64_t job, std::size_t count) {
  JobEntry& e = entry(job);
  assert(count <= e.reserved);
  e.reserved -= count;
  e.pending += count;
}

std::size_t JobQueue::cancel(std::uint64_t job) {
  JobEntry& e = entry(job);
  const std::size_t reclaimed = e.pending + e.reserved;
  ClientEntry& c = client_entry(e.client);
  assert(reclaimed <= c.load);
  c.load -= reclaimed;
  e.pending = 0;
  e.reserved = 0;
  e.cancelled = true;
  return reclaimed;
}

std::size_t JobQueue::claimed(std::uint64_t job) const {
  const auto it = jobs_.find(job);
  return it == jobs_.end() ? 0 : it->second.claimed;
}

void JobQueue::close(std::uint64_t job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  assert(it->second.pending == 0 && it->second.claimed == 0 &&
         it->second.reserved == 0 && "close requires a drained job");
  ClientEntry& c = client_entry(it->second.client);
  assert(c.open_jobs > 0);
  c.open_jobs -= 1;
  jobs_.erase(it);
}

std::size_t JobQueue::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& [id, e] : jobs_) depth += e.pending;
  return depth;
}

std::size_t JobQueue::clients_active() const {
  std::size_t n = 0;
  for (const auto& [name, c] : clients_)
    if (c.open_jobs > 0) n += 1;
  return n;
}

std::size_t JobQueue::client_load(const std::string& client) const {
  const auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.load;
}

JobQueue::JobEntry& JobQueue::entry(std::uint64_t job) {
  const auto it = jobs_.find(job);
  assert(it != jobs_.end() && "unknown job id");
  return it->second;
}

JobQueue::ClientEntry& JobQueue::client_entry(const std::string& name) {
  return clients_[name];
}

}  // namespace iw::service
