// idlewaved's socket front-end.
//
// One poll()-driven IO thread owns the AF_UNIX listener, every client
// connection, and a self-pipe the CampaignService tickles (via its
// on_output hook) whenever a job gained ready lines; one worker thread
// runs the service's scheduling loop. All campaign logic lives in the
// service — this class only frames lines, checks job ownership per
// connection, and relays the service's ready output verbatim (which is
// what keeps the stream byte-identical to an in-process drain()).
//
// A connection that drops mid-stream has each of its jobs abandoned:
// queue slots free at once, the running batch stops at its next point
// boundary, and completed physics stays in the shared cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "support/framing.hpp"

namespace iw::service {

struct ServerOptions {
  std::string socket_path;
  ServiceOptions service;  ///< on_output/on_output_ctx are taken by the server
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the IO and scheduler threads. Throws on
  /// bind/listen failure.
  void start();

  /// Requests shutdown (idempotent; also triggered by the protocol's
  /// "shutdown" verb). Running batches stop at their next point boundary.
  void stop();

  /// Blocks until the server has shut down and both threads joined.
  void wait();

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }
  [[nodiscard]] CampaignService& service() { return service_; }

 private:
  struct Conn {
    ScopedFd fd;
    LineBuffer in;
    std::vector<std::uint64_t> jobs;       ///< submitted on this connection
    std::vector<std::uint64_t> streaming;  ///< jobs with lines still coming
    bool dead = false;
  };

  void io_loop();
  void handle_line(Conn& conn, const std::string& line);
  void drain_streams(Conn& conn);
  void disconnect(Conn& conn);
  static void wake_cb(void* ctx);
  /// Wires the service's on_output hook to this server's wakeup pipe
  /// (member-init helper: options_ is declared — and thus built — first).
  static ServiceOptions patch_options(ServerOptions& options, Server* self);

  ServerOptions options_;
  CampaignService service_;
  ScopedFd listen_fd_;
  ScopedFd wake_read_;
  ScopedFd wake_write_;
  std::vector<Conn> conns_;
  std::thread io_thread_;
  std::thread sched_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace iw::service
