// Content-addressed store of completed sweep points.
//
// The campaign service never recomputes physics two clients already paid
// for: a completed point's SweepRecord is cached under a canonical
// serialization of everything that determines it — the expanded point's
// axis values and campaign scalars, the point's RNG seed, and the record
// schema version. The canonical string is the store key (exact-match, so
// hash collisions are impossible by construction); the FNV-1a digest of it
// is the short content address used in logs and status output.
//
// The key is built from the *expanded, typed* point, never from client
// input text: axis values land in IW_SWEEP_AXES registry order regardless
// of the order a submission declared them in, and numeric values are
// serialized from their parsed binary form (doubles as exact hexfloats),
// so "12", "12.0" and "1.2e1" address the same entry. Byte-identity of a
// cache hit with a fresh run follows from determinism: every record column
// except `index` is a pure function of the key's inputs, and the service
// rewrites `index` to the requesting campaign's point index on every hit.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sweep/record.hpp"
#include "sweep/spec.hpp"

namespace iw::service {

/// Canonical cache key of one expanded point. `schema_version` defaults to
/// the live record-schema version (verify::kGoldenSchemaVersion) — a schema
/// bump invalidates every cached record, which is exactly right: the cached
/// bytes could no longer match a fresh run's serialization.
[[nodiscard]] std::string canonical_point_key(const sweep::SweepSpec& spec,
                                              const sweep::SweepPoint& pt);
[[nodiscard]] std::string canonical_point_key(const sweep::SweepSpec& spec,
                                              const sweep::SweepPoint& pt,
                                              int schema_version);

/// Short content address (FNV-1a 64, hex) of a canonical key.
[[nodiscard]] std::string key_address(const std::string& canonical_key);

class PointCache {
 public:
  /// The cached record for `key`, or nullptr. The returned pointer stays
  /// valid until the entry is evicted (the store only grows today).
  [[nodiscard]] const sweep::SweepRecord* find(const std::string& key) const;

  /// Stores `rec` under `key`. Re-inserting an existing key keeps the first
  /// record (determinism makes them equal; keeping the first makes that
  /// checkable by tests instead of silently overwriting).
  void insert(const std::string& key, const sweep::SweepRecord& rec);

  [[nodiscard]] std::size_t size() const { return store_.size(); }

  /// Total bytes of canonical keys held (a coarse footprint gauge).
  [[nodiscard]] std::size_t key_bytes() const { return key_bytes_; }

 private:
  std::map<std::string, sweep::SweepRecord> store_;
  std::size_t key_bytes_ = 0;
};

}  // namespace iw::service
