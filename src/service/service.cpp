#include "service/service.hpp"

#include <cassert>
#include <cstdio>
#include <exception>
#include <utility>

#include "service/protocol.hpp"
#include "support/csv.hpp"
#include "sweep/record.hpp"
#include "sweep/runner.hpp"

namespace iw::service {
namespace {

std::string num17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

CampaignService::CampaignService(ServiceOptions options)
    : options_(options), queue_(options.limits) {}

CampaignService::~CampaignService() { stop(); }

SubmitResult CampaignService::submit(const std::string& client, int priority,
                                     const sweep::SweepSpec& spec) {
  SubmitResult r;
  obs::MetricsRegistry* m = options_.metrics;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Admission first, against the campaign's full expansion size — an O(1)
    // product, so a quota-busting submission is rejected before any
    // expansion or cache probing happens (structured error, never a hang).
    const Admission adm = queue_.check(client, spec.points());
    if (!adm.accepted) {
      if (m) m->add(obs::MetricId::service_jobs_rejected, 1);
      r.error_code = adm.error_code;
      r.message = adm.message;
      return r;
    }
    std::vector<sweep::SweepPoint> pts;
    try {
      pts = sweep::expand(spec);
    } catch (const std::exception& e) {
      if (m) m->add(obs::MetricId::service_jobs_rejected, 1);
      r.error_code = "bad-spec";
      r.message = e.what();
      return r;
    }
    auto owned = std::make_unique<Job>();
    Job& j = *owned;
    j.id = next_job_++;
    j.client = client;
    j.priority = priority;
    j.spec = spec;
    j.points = std::move(pts);
    const std::size_t n = j.points.size();
    j.keys.resize(n);
    j.slots.assign(n, Job::Slot::pending);
    j.recs.resize(n);
    j.has_rec.assign(n, false);
    std::size_t reserved = 0;
    std::size_t submit_hits = 0;
    for (std::size_t pi = 0; pi < n; ++pi) {
      j.keys[pi] = canonical_point_key(spec, j.points[pi]);
      const std::string& key = j.keys[pi];
      if (const sweep::SweepRecord* hit = cache_.find(key)) {
        fill_record(j, pi, *hit);
        j.cache_hits += 1;
        submit_hits += 1;
        if (m) m->add(obs::MetricId::service_cache_hits, 1);
      } else if (owners_.find(key) != owners_.end()) {
        j.slots[pi] = Job::Slot::reserved;
        waiters_[key].push_back(Owner{j.id, pi});
        reserved += 1;
        if (m) m->add(obs::MetricId::service_cache_misses, 1);
      } else {
        owners_[key] = Owner{j.id, pi};
        j.compute_order.push_back(pi);
        if (m) m->add(obs::MetricId::service_cache_misses, 1);
      }
    }
    queue_.open(client, j.id, priority, j.compute_order.size(), reserved);
    Job& placed = *jobs_.emplace(j.id, std::move(owned)).first->second;
    if (m) m->add(obs::MetricId::service_jobs_submitted, 1);
    check_finalize(placed);
    publish_gauges();
    r.accepted = true;
    r.job = placed.id;
    r.points = n;
    r.cached = submit_hits;
  }
  cv_.notify_all();
  if (options_.on_output) options_.on_output(options_.on_output_ctx);
  return r;
}

bool CampaignService::cancel(std::uint64_t job) {
  bool cancelled = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Job* j = find_job(job);
    if (j == nullptr || j->finished || j->cancelled) return false;
    reclaim_unfinished(*j);
    if (options_.metrics)
      options_.metrics->add(obs::MetricId::service_jobs_cancelled, 1);
    check_finalize(*j);
    publish_gauges();
    cancelled = true;
  }
  cv_.notify_all();
  if (options_.on_output) options_.on_output(options_.on_output_ctx);
  return cancelled;
}

bool CampaignService::drain(std::uint64_t job, std::vector<std::string>& lines) {
  std::lock_guard<std::mutex> lk(mu_);
  Job* j = find_job(job);
  if (j == nullptr) return false;
  for (std::string& line : j->out) lines.push_back(std::move(line));
  j->out.clear();
  return true;
}

bool CampaignService::finished(std::uint64_t job) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Job* j = find_job(job);
  return j == nullptr || j->finished;
}

bool CampaignService::results_so_far(std::uint64_t job,
                                     std::vector<std::string>& lines) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Job* j = find_job(job);
  if (j == nullptr) return false;
  for (std::size_t pi = 0; pi < j->points.size(); ++pi)
    if (j->has_rec[pi]) lines.push_back(sweep::record_json_line(j->recs[pi]));
  return true;
}

std::string CampaignService::status_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t open = 0;
  for (const auto& [id, j] : jobs_)
    if (!j->finished) open += 1;
  std::string clients = "{";
  bool first = true;
  for (const auto& [name, s] : stats_) {
    if (!first) clients += ',';
    first = false;
    const double rate =
        s.batch_seconds > 0.0
            ? static_cast<double>(s.computed) / s.batch_seconds
            : 0.0;
    clients += json_str(name);
    clients += ':';
    clients += json_object(
        {{"load", std::to_string(queue_.client_load(name))},
         {"computed", std::to_string(s.computed)},
         {"points_per_sec", num17(rate)}});
  }
  clients += '}';
  return json_object(
      {{"type", json_str("status")},
       {"queue_depth", std::to_string(queue_.queue_depth())},
       {"clients_active", std::to_string(queue_.clients_active())},
       {"jobs_open", std::to_string(open)},
       {"cache_entries", std::to_string(cache_.size())},
       {"decisions", std::to_string(queue_.decisions())},
       {"points_computed", std::to_string(total_computed_)},
       {"clients", clients}});
}

void CampaignService::client_gone(const std::string& client) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, j] : jobs_) {
      if (j->client != client || j->abandoned) continue;
      j->abandoned = true;
      j->out.clear();
      if (j->finished || j->cancelled) continue;
      reclaim_unfinished(*j);
      if (options_.metrics)
        options_.metrics->add(obs::MetricId::service_jobs_cancelled, 1);
      check_finalize(*j);
    }
    publish_gauges();
  }
  cv_.notify_all();
}

void CampaignService::abandon(std::uint64_t job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    Job* j = find_job(job);
    if (j == nullptr || j->abandoned) return;
    j->abandoned = true;
    j->out.clear();
    if (!j->finished && !j->cancelled) {
      reclaim_unfinished(*j);
      if (options_.metrics)
        options_.metrics->add(obs::MetricId::service_jobs_cancelled, 1);
      check_finalize(*j);
    }
    publish_gauges();
  }
  cv_.notify_all();
}

bool CampaignService::pump() {
  std::vector<sweep::SweepPoint> batch;
  std::vector<std::size_t> point_idx;
  std::uint64_t jid = 0;
  const std::atomic<bool>* cancel = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (batch_in_flight_) return false;
    Claim c;
    if (!queue_.decide(options_.batch_points, c)) return false;
    if (options_.metrics)
      options_.metrics->add(obs::MetricId::service_sched_decisions, 1);
    Job& j = *jobs_.at(c.job);
    jid = j.id;
    cancel = &j.cancel_flag;
    batch.reserve(c.count);
    for (std::size_t off = c.first; off < c.first + c.count; ++off) {
      const std::size_t pi = j.compute_order[off];
      j.slots[pi] = Job::Slot::claimed;
      batch.push_back(j.points[pi]);
      point_idx.push_back(pi);
    }
    batch_in_flight_ = true;
    publish_gauges();
  }
  // The physics runs unlocked: submit/cancel/status stay responsive, and
  // the test hook below may legally call back into the service.
  sweep::RunnerOptions ro;
  ro.threads = options_.threads;
  ro.cancel = cancel;
  if (options_.on_batch_point != nullptr) {
    auto hook = options_.on_batch_point;
    void* ctx = options_.on_batch_ctx;
    const std::uint64_t hook_job = jid;
    ro.on_progress = [hook, ctx, hook_job](std::size_t done, std::size_t) {
      hook(ctx, hook_job, done);
    };
  }
  bool failed = false;
  std::string fail_message;
  sweep::CampaignResult res;
  try {
    res = sweep::run_campaign(batch, ro);
  } catch (const std::exception& e) {
    failed = true;
    fail_message = e.what();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_in_flight_ = false;
    Job& j = *jobs_.at(jid);
    obs::MetricsRegistry* m = options_.metrics;
    std::map<std::uint64_t, std::size_t> by_index;
    for (const std::size_t pi : point_idx) by_index[j.points[pi].index] = pi;
    for (const sweep::SweepRecord& rec : res.records) {
      const std::size_t pi = by_index.at(rec.index);
      const std::string& key = j.keys[pi];
      cache_.insert(key, rec);
      fill_record(j, pi, rec);
      j.computed += 1;
      total_computed_ += 1;
      stats_[j.client].computed += 1;
      if (m) m->add(obs::MetricId::service_points_computed, 1);
      const auto w = waiters_.find(key);
      if (w != waiters_.end()) {
        for (const Owner& o : w->second) {
          Job& wj = *jobs_.at(o.job);
          fill_record(wj, o.point, rec);
          wj.cache_hits += 1;
          queue_.complete_reserved(o.job, 1);
          if (m) m->add(obs::MetricId::service_cache_hits, 1);
          check_finalize(wj);
        }
        waiters_.erase(w);
      }
      owners_.erase(key);
    }
    queue_.complete_claimed(jid, point_idx.size());
    // Slots the batch never finished (cancelled or failed mid-run): reclaim
    // them and hand their keys to the oldest waiter, if any.
    for (const std::size_t pi : point_idx) {
      if (j.slots[pi] != Job::Slot::claimed) continue;
      j.slots[pi] = Job::Slot::reclaimed;
      release_ownership(j.keys[pi]);
    }
    if (failed && !j.finished) {
      j.terminal_error = fail_message;
      if (!j.cancelled) reclaim_unfinished(j);
    }
    stats_[j.client].batch_seconds += res.seconds;
    total_batch_seconds_ += res.seconds;
    check_finalize(j);
    publish_gauges();
  }
  cv_.notify_all();
  if (options_.on_output) options_.on_output(options_.on_output_ctx);
  return true;
}

void CampaignService::run_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || runnable_locked(); });
      if (stop_) return;
    }
    pump();
  }
}

void CampaignService::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

std::size_t CampaignService::cache_size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.size();
}

void CampaignService::reclaim_unfinished(Job& j) {
  j.cancelled = true;
  // Seen by run_campaign's workers: a running batch stops claiming points
  // at the next boundary; everything it completed is still delivered.
  j.cancel_flag.store(true, std::memory_order_relaxed);
  for (std::size_t pi = 0; pi < j.points.size(); ++pi) {
    if (j.slots[pi] == Job::Slot::pending) {
      j.slots[pi] = Job::Slot::reclaimed;
      release_ownership(j.keys[pi]);
    } else if (j.slots[pi] == Job::Slot::reserved) {
      j.slots[pi] = Job::Slot::reclaimed;
      const auto w = waiters_.find(j.keys[pi]);
      if (w != waiters_.end()) {
        auto& list = w->second;
        for (std::size_t k = 0; k < list.size(); ++k)
          if (list[k].job == j.id && list[k].point == pi) {
            list.erase(list.begin() + static_cast<std::ptrdiff_t>(k));
            break;
          }
        if (list.empty()) waiters_.erase(w);
      }
    }
  }
  queue_.cancel(j.id);
}

CampaignService::Job* CampaignService::find_job(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

const CampaignService::Job* CampaignService::find_job(std::uint64_t id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

void CampaignService::fill_record(Job& j, std::size_t pi,
                                  const sweep::SweepRecord& rec) {
  assert(!j.has_rec[pi]);
  j.recs[pi] = rec;
  // The one column that is campaign-relative rather than a pure function of
  // the cache key: a shared point keeps its bytes but takes the requesting
  // campaign's point index.
  j.recs[pi].index = j.points[pi].index;
  j.has_rec[pi] = true;
  j.slots[pi] = Job::Slot::done;
  j.done_count += 1;
  advance_emission(j);
}

void CampaignService::advance_emission(Job& j) {
  while (j.next_emit < j.points.size() && j.has_rec[j.next_emit]) {
    if (!j.abandoned)
      j.out.push_back(sweep::record_json_line(j.recs[j.next_emit]));
    j.emitted += 1;
    j.next_emit += 1;
  }
}

void CampaignService::release_ownership(const std::string& key) {
  owners_.erase(key);
  const auto w = waiters_.find(key);
  if (w == waiters_.end()) return;
  // Promote the oldest waiter to owner: its reserved slot becomes a fresh
  // pending slot at the back of its compute order.
  const Owner next = w->second.front();
  w->second.erase(w->second.begin());
  if (w->second.empty()) waiters_.erase(w);
  Job& wj = *jobs_.at(next.job);
  assert(wj.slots[next.point] == Job::Slot::reserved);
  wj.slots[next.point] = Job::Slot::pending;
  wj.compute_order.push_back(next.point);
  owners_[key] = next;
  queue_.promote_reserved(next.job, 1);
}

void CampaignService::check_finalize(Job& j) {
  if (j.finished) return;
  const std::size_t n = j.points.size();
  if (j.cancelled) {
    if (queue_.claimed(j.id) != 0) return;  // a batch is still draining
    // Records a cancellation left beyond the contiguous streamed prefix —
    // same flush the runner does for its sinks; no completed record is lost.
    for (std::size_t pi = j.next_emit; pi < n; ++pi) {
      if (!j.has_rec[pi]) continue;
      if (!j.abandoned) j.out.push_back(sweep::record_json_line(j.recs[pi]));
      j.emitted += 1;
    }
    j.next_emit = n;
    if (!j.abandoned)
      j.out.push_back(j.terminal_error.empty()
                          ? cancelled_response(j.id, j.emitted)
                          : error_response("compute-failed", j.terminal_error));
    j.finished = true;
    queue_.close(j.id);
  } else if (j.done_count == n) {
    if (!j.abandoned)
      j.out.push_back(
          done_response(j.id, j.emitted, j.cache_hits, j.computed));
    j.finished = true;
    queue_.close(j.id);
  }
}

void CampaignService::publish_gauges() {
  obs::MetricsRegistry* m = options_.metrics;
  if (m == nullptr) return;
  m->set(obs::MetricId::service_queue_depth,
         static_cast<double>(queue_.queue_depth()));
  m->set(obs::MetricId::service_clients_active,
         static_cast<double>(queue_.clients_active()));
  m->set(obs::MetricId::service_points_per_sec,
         total_batch_seconds_ > 0.0
             ? static_cast<double>(total_computed_) / total_batch_seconds_
             : 0.0);
}

bool CampaignService::runnable_locked() const {
  return !batch_in_flight_ && queue_.queue_depth() > 0;
}

}  // namespace iw::service
