// Fair-share job queue of the campaign service.
//
// The controller/queue split follows slurmctld's shape: this class is the
// pure scheduling core — admission quotas, per-client fair share, claim /
// complete / cancel bookkeeping — and knows nothing about sweep points,
// sockets or caches. The service maps each job's "pending slots" onto its
// actual point list; the queue only counts them. Everything here is
// deterministic and synchronous, which is what makes the starvation bound a
// unit-testable invariant (count scheduling decisions, not seconds).
//
// Fair share: every claim charges its client `count` points; decide() always
// serves the active client with the smallest lifetime charge (ties broken by
// client name, so the order is total). A client that queues 10k points
// cannot starve a late 100-point client: the late client's charge starts at
// the minimum, so it is served at least every other decision until it
// catches up — its campaign completes within (active_clients x its_points)
// decisions of its arrival.
//
// Admission: a submission is rejected when the client's uncompleted points
// plus the new campaign's full expansion would exceed the per-client point
// quota, or when its open-job count is at the job quota. The check is
// conservative — it runs before cache credit — so "reject" is decidable
// without expanding or probing anything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace iw::service {

struct QueueLimits {
  /// Max uncompleted points per client across all open jobs (admission).
  std::size_t max_points_per_client = 100000;
  /// Max simultaneously open jobs per client.
  std::size_t max_jobs_per_client = 64;
};

struct Admission {
  bool accepted = false;
  std::string error_code;  ///< "admission-points" | "admission-jobs"
  std::string message;
};

/// One scheduling decision's claim: `count` pending slots of job `job`
/// starting at slot offset `first`.
struct Claim {
  std::uint64_t job = 0;
  std::size_t first = 0;
  std::size_t count = 0;
};

class JobQueue {
 public:
  explicit JobQueue(QueueLimits limits = {}) : limits_(limits) {}

  /// Admission check only — mutates nothing. `total_points` is the
  /// campaign's full expansion size.
  [[nodiscard]] Admission check(const std::string& client,
                                std::size_t total_points) const;

  /// Opens an admitted job: `pending` compute slots to schedule plus
  /// `reserved` slots parked on another job's in-flight cache key. Points
  /// served from cache at admission are already complete and never charged.
  void open(const std::string& client, std::uint64_t job, int priority,
            std::size_t pending, std::size_t reserved);

  /// One fair-share scheduling decision; claims up to `max_points`
  /// contiguous pending slots of the chosen job. False when nothing is
  /// runnable. Every call that returns true counts as one decision.
  [[nodiscard]] bool decide(std::size_t max_points, Claim& out);

  /// `count` claimed slots of `job` finished computing (or were abandoned
  /// by a cancelled batch); releases their quota.
  void complete_claimed(std::uint64_t job, std::size_t count);

  /// `count` reserved slots of `job` were filled from the cache.
  void complete_reserved(std::uint64_t job, std::size_t count);

  /// `count` reserved slots of `job` lost their in-flight provider and
  /// re-enter the compute queue as fresh pending slots.
  void promote_reserved(std::uint64_t job, std::size_t count);

  /// Cancels the unclaimed work of `job`. Returns how many pending +
  /// reserved slots were reclaimed; slots already claimed by a running
  /// batch drain through complete_claimed() when the batch returns.
  std::size_t cancel(std::uint64_t job);

  /// Claimed slots of `job` still owned by a running batch.
  [[nodiscard]] std::size_t claimed(std::uint64_t job) const;

  /// Drops a fully-drained job (all slots completed or reclaimed).
  void close(std::uint64_t job);

  [[nodiscard]] std::size_t queue_depth() const;     ///< unclaimed pending slots
  [[nodiscard]] std::size_t clients_active() const;  ///< clients with open jobs
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  /// Uncompleted points currently charged to `client` (admission quota use).
  [[nodiscard]] std::size_t client_load(const std::string& client) const;
  [[nodiscard]] const QueueLimits& limits() const { return limits_; }

 private:
  struct JobEntry {
    std::string client;
    int priority = 0;
    std::uint64_t seq = 0;    ///< admission order (within-priority FIFO)
    std::size_t cursor = 0;   ///< next unclaimed pending-slot offset
    std::size_t pending = 0;  ///< unclaimed slots
    std::size_t claimed = 0;  ///< slots owned by a running batch
    std::size_t reserved = 0; ///< slots parked on in-flight cache keys
    bool cancelled = false;
  };
  struct ClientEntry {
    std::size_t open_jobs = 0;
    std::size_t load = 0;       ///< uncompleted points (quota)
    std::uint64_t charged = 0;  ///< lifetime fair-share charge
  };

  JobEntry& entry(std::uint64_t job);
  ClientEntry& client_entry(const std::string& name);

  QueueLimits limits_;
  std::map<std::uint64_t, JobEntry> jobs_;
  std::map<std::string, ClientEntry> clients_;
  std::uint64_t seq_ = 0;
  std::uint64_t decisions_ = 0;
};

}  // namespace iw::service
