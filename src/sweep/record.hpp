// Structured result sinks: one flat record per sweep point.
//
// A WaveResult is a heavyweight object (it owns the full trace); campaigns
// reduce it immediately to the paper's observables plus engine cost
// counters, and stream the flat records to CSV / JSON-Lines files. Records
// carry their point index, so partial campaigns (cancelled mid-run) remain
// self-describing.
//
// The column set is a *typed schema*, not a stringly field list: every
// column declares its value type and its verification tolerance class, and
// the schema is the single source of truth for serialization (sinks),
// parsing (golden-corpus loading) and field-by-field diffing (src/verify).
// Adding a SweepRecord member without a schema entry cannot ship
// half-serialized: the drift-guard test pins schema size against
// record_fields()/record_columns(), and the round-trip test pins get/set
// symmetry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "support/csv.hpp"
#include "sweep/spec.hpp"

namespace iw::sweep {

/// The flat per-point record: axis values, wave observables, run costs.
struct SweepRecord {
  // Identity and axes. Axis members are generated from the IW_SWEEP_AXES
  // registry (sweep/axes.hpp); enum axes store their to_string name.
  std::uint64_t index = 0;
#define IW_AXIS_RECORD_MEMBER(field, Type, flag, column, default_) \
  axis_record_t<Type> field{};
  IW_SWEEP_AXES(IW_AXIS_RECORD_MEMBER)
#undef IW_AXIS_RECORD_MEMBER
  std::string workload;
  std::uint64_t seed = 0;
  // Observables.
  std::string protocol;
  double v_up_ranks_per_sec = 0.0;
  double v_down_ranks_per_sec = 0.0;
  double v_eq2_ranks_per_sec = 0.0;   ///< Eq. 2 prediction
  double decay_up_us_per_rank = 0.0;  ///< beta toward higher ranks
  int survival_up_hops = 0;
  int survival_down_hops = 0;
  double front_r2_up = 0.0;       ///< r^2 of the upward front fit
  double front_rmse_up_us = 0.0;  ///< RMS front-fit residual [us]
  double cycle_us = 0.0;              ///< measured steady-state cycle
  double makespan_ms = 0.0;
  /// Eager-sized sends the transport demoted to rendezvous (finite-buffer
  /// fallbacks + credit stalls); an observable for the flow-control axes.
  std::uint64_t eager_demotions = 0;
  // Per-point transport protocol counters, generated from the
  // IW_METRIC_COLUMNS registry (sweep/axes.hpp).
#define IW_METRIC_RECORD_MEMBER(field) std::uint64_t field = 0;
  IW_METRIC_COLUMNS(IW_METRIC_RECORD_MEMBER)
#undef IW_METRIC_RECORD_MEMBER
  // Simulation cost (engine counters).
  std::uint64_t events_processed = 0;
  std::uint64_t peak_events_pending = 0;
  // Fast-forward accounting: rank-steps skipped and simulated time never
  // event-walked (microseconds, exact). Zero when ffwd is off/ineligible.
  std::uint64_t ffwd_skips = 0;
  std::uint64_t ffwd_time_skipped_us = 0;
};

/// Value type of one schema column.
enum class ColumnType : std::uint8_t { u64, i64, i32, f64, text };

/// Verification tolerance class of one column. `exact` columns (identity,
/// axes, protocol, engine counters) must match goldens bit-for-bit;
/// `approx` columns (fitted velocities, decay, cycle, makespan) are
/// compared under a relative-epsilon policy.
enum class ColumnTolerance : std::uint8_t { exact, approx };

/// Static description of one SweepRecord column.
struct ColumnMeta {
  const char* name;
  ColumnType type;
  ColumnTolerance tolerance;
  /// JSON quoting. Strings, plus u64 seeds: they exceed the 2^53 range
  /// double-backed JSON readers preserve, and a rounded seed cannot
  /// reproduce its point.
  bool json_quoted;
};

/// The record schema, in sink column order.
[[nodiscard]] const std::vector<ColumnMeta>& record_schema();

/// Index of `name` in the schema; nullopt for unknown columns.
[[nodiscard]] std::optional<std::size_t> column_index(const std::string& name);

/// Serialized value of column `col` of `rec` (same text CSV sinks emit).
[[nodiscard]] std::string column_value(const SweepRecord& rec,
                                       std::size_t col);

/// Parses `text` into column `col` of `rec`. Throws std::invalid_argument
/// on malformed input (partial consumption, overflow, empty numerics).
void set_column(SweepRecord& rec, std::size_t col, const std::string& text);

/// Rebuilds a record from one serialized row in schema column order.
/// Throws std::invalid_argument on a size mismatch or malformed value.
[[nodiscard]] SweepRecord record_from_row(
    const std::vector<std::string>& row);

/// One field of a serialized record. `is_string` selects JSON quoting; CSV
/// always writes the value verbatim.
struct RecordField {
  std::string name;
  std::string value;
  bool is_string = false;
};

/// Serializes a record; the field order is the sink column order.
[[nodiscard]] std::vector<RecordField> record_fields(const SweepRecord& rec);

/// The sink column names (names of record_fields, in order).
[[nodiscard]] std::vector<std::string> record_columns();

/// Reduces one finished experiment to its flat record.
[[nodiscard]] SweepRecord reduce(const SweepPoint& point,
                                 const core::WaveResult& result);

/// One serialized JSON-Lines object for `rec` (no trailing newline) — the
/// exact bytes JsonlSink writes. The campaign service streams these lines
/// over its socket, so a client-side JSONL file is byte-identical to a
/// sink-written one by construction.
[[nodiscard]] std::string record_json_line(const SweepRecord& rec);

/// Destination for a stream of records. The campaign runner guarantees
/// write() is called from one thread at a time, in ascending index order
/// for the records it delivers.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void write(const SweepRecord& rec) = 0;
};

/// CSV sink: header row on construction, one row per record.
class CsvSink final : public RecordSink {
 public:
  explicit CsvSink(const std::string& path);
  void write(const SweepRecord& rec) override;

 private:
  CsvWriter writer_;
};

/// JSON-Lines sink: one object per record.
class JsonlSink final : public RecordSink {
 public:
  explicit JsonlSink(const std::string& path);
  void write(const SweepRecord& rec) override;

 private:
  JsonlWriter writer_;
};

/// Collects records in memory (tests, summaries).
class VectorSink final : public RecordSink {
 public:
  void write(const SweepRecord& rec) override { records_.push_back(rec); }
  [[nodiscard]] const std::vector<SweepRecord>& records() const {
    return records_;
  }

 private:
  std::vector<SweepRecord> records_;
};

/// Campaign-level summary table: per-protocol medians of speed, decay and
/// survival, plus total simulation cost. Rendered via TextTable.
[[nodiscard]] std::string render_summary(
    const std::vector<SweepRecord>& records);

}  // namespace iw::sweep
