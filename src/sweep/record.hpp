// Structured result sinks: one flat record per sweep point.
//
// A WaveResult is a heavyweight object (it owns the full trace); campaigns
// reduce it immediately to the paper's observables plus engine cost
// counters, and stream the flat records to CSV / JSON-Lines files. Records
// carry their point index, so partial campaigns (cancelled mid-run) remain
// self-describing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "support/csv.hpp"
#include "sweep/spec.hpp"

namespace iw::sweep {

/// The flat per-point record: axis values, wave observables, run costs.
struct SweepRecord {
  // Identity and axes.
  std::uint64_t index = 0;
  double delay_ms = 0.0;
  std::int64_t msg_bytes = 0;
  int np = 0;
  int ppn = 1;
  double noise_E_percent = 0.0;
  std::string workload;
  std::string direction;
  std::string boundary;
  std::uint64_t seed = 0;
  // Observables.
  std::string protocol;
  double v_up_ranks_per_sec = 0.0;
  double v_down_ranks_per_sec = 0.0;
  double v_eq2_ranks_per_sec = 0.0;   ///< Eq. 2 prediction
  double decay_up_us_per_rank = 0.0;  ///< beta toward higher ranks
  int survival_up_hops = 0;
  int survival_down_hops = 0;
  double cycle_us = 0.0;              ///< measured steady-state cycle
  double makespan_ms = 0.0;
  // Simulation cost (engine counters).
  std::uint64_t events_processed = 0;
  std::uint64_t peak_events_pending = 0;
};

/// One field of a serialized record. `is_string` selects JSON quoting; CSV
/// always writes the value verbatim.
struct RecordField {
  std::string name;
  std::string value;
  bool is_string = false;
};

/// Serializes a record; the field order is the sink column order.
[[nodiscard]] std::vector<RecordField> record_fields(const SweepRecord& rec);

/// The sink column names (names of record_fields, in order).
[[nodiscard]] std::vector<std::string> record_columns();

/// Reduces one finished experiment to its flat record.
[[nodiscard]] SweepRecord reduce(const SweepPoint& point,
                                 const core::WaveResult& result);

/// Destination for a stream of records. The campaign runner guarantees
/// write() is called from one thread at a time, in ascending index order
/// for the records it delivers.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void write(const SweepRecord& rec) = 0;
};

/// CSV sink: header row on construction, one row per record.
class CsvSink final : public RecordSink {
 public:
  explicit CsvSink(const std::string& path);
  void write(const SweepRecord& rec) override;

 private:
  CsvWriter writer_;
};

/// JSON-Lines sink: one object per record.
class JsonlSink final : public RecordSink {
 public:
  explicit JsonlSink(const std::string& path);
  void write(const SweepRecord& rec) override;

 private:
  JsonlWriter writer_;
};

/// Collects records in memory (tests, summaries).
class VectorSink final : public RecordSink {
 public:
  void write(const SweepRecord& rec) override { records_.push_back(rec); }
  [[nodiscard]] const std::vector<SweepRecord>& records() const {
    return records_;
  }

 private:
  std::vector<SweepRecord> records_;
};

/// Campaign-level summary table: per-protocol medians of speed, decay and
/// survival, plus total simulation cost. Rendered via TextTable.
[[nodiscard]] std::string render_summary(
    const std::vector<SweepRecord>& records);

}  // namespace iw::sweep
