// The sweep-axis registry: every campaign axis is declared exactly once.
//
// Adding an axis used to be a three-place edit (SweepSpec + expand() loop
// nest, the record schema, the CLI override block) that could silently
// drift. Now the IW_SWEEP_AXES X-macro below is the single declaration —
// SweepSpec/SweepPoint members, points()/expand() enumeration, the
// record-schema axis columns, reduce(), the verify oracle's re-expansion
// check, and sweep_runner's `--flag=v1,v2,...` overrides are all generated
// from it. To add an axis: add one X(...) line, consume the new SweepPoint
// field in build_experiment() (sweep/spec.cpp), and regenerate the goldens
// (the schema gains a column, so kGoldenSchemaVersion must bump).
//
// Axis enumeration order is declaration order, first axis slowest /
// last axis fastest — append new axes at the END so existing sweeps keep
// their point indices while the new axis stays single-valued.
//
// Each entry is X(field, Type, cli_flag, column, default):
//   field    — member name in SweepSpec (vector) and SweepPoint (scalar)
//   Type     — value type; arithmetic or an enum with an AxisValue
//              specialization below
//   cli_flag — sweep_runner override flag (`--<flag>=v1,v2,...`)
//   column   — record-schema column name
//   default  — the single value an unset axis holds
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "mpi/transport_config.hpp"
#include "workload/ring.hpp"

namespace iw {
class Cli;
}

#define IW_SWEEP_AXES(X)                                                     \
  X(delay_ms, double, "delay-ms", "delay_ms", 12.0)                          \
  X(msg_bytes, std::int64_t, "msg-bytes", "msg_bytes", 8192)                 \
  X(np, int, "np", "np", 18)                                                 \
  X(ppn, int, "ppn", "ppn", 1)                                               \
  X(noise_E_percent, double, "noise", "noise_E_percent", 0.0)                \
  X(direction, iw::workload::Direction, "direction", "direction",            \
    iw::workload::Direction::unidirectional)                                 \
  X(boundary, iw::workload::Boundary, "boundary", "boundary",                \
    iw::workload::Boundary::open)                                            \
  X(nic_depth, int, "nic-depth", "nic_depth", 0)                             \
  X(eager_credits, int, "eager-credits", "eager_credits", 0)                 \
  X(rdv_flavor, iw::mpi::RendezvousFlavor, "rdv-flavor", "rdv_flavor",       \
    iw::mpi::RendezvousFlavor::two_sided)                                    \
  X(switch_nodes, int, "switch-nodes", "switch_nodes", 0)

// Per-point protocol-counter columns, surfaced from the transport's run
// statistics through the metrics registry. Declared once here, like the
// axes: each entry generates the WaveResult/SweepRecord member, the
// record-schema column, and the reduce() copy. Only deterministic per-run
// counters belong in this list (PoolStats watermarks accumulate across a
// worker's lifetime and would make records depend on point order). Each
// entry is X(field) — the member name doubles as the column name; all are
// exact-match uint64 counters. Appending an entry adds a schema column, so
// kGoldenSchemaVersion must bump and the goldens regenerate.
#define IW_METRIC_COLUMNS(X) \
  X(nic_backlogged)          \
  X(deferred_pushes)         \
  X(unexpected_eager)        \
  X(unexpected_rts)

namespace iw::sweep {

#define IW_SWEEP_AXIS_PLUS1(field, Type, flag, column, default_) +1
inline constexpr std::size_t kSweepAxisCount =
    0 IW_SWEEP_AXES(IW_SWEEP_AXIS_PLUS1);
#undef IW_SWEEP_AXIS_PLUS1

/// Per-type axis behaviour: how an axis value lands in a SweepRecord and
/// how a CLI list override parses. Arithmetic axes store themselves and
/// parse through the Cli numeric-list parsers; enum axes store their
/// to_string name and parse it back.
template <typename T>
struct AxisValue {
  static_assert(std::is_arithmetic_v<T>,
                "non-arithmetic axes need an AxisValue specialization");
  using record_type = T;
  static record_type to_record(T v) { return v; }
  static std::vector<T> override_from_cli(const Cli& cli, const char* flag,
                                          std::vector<T> fallback);
};

template <>
struct AxisValue<workload::Direction> {
  using record_type = std::string;
  static record_type to_record(workload::Direction v) {
    return workload::to_string(v);
  }
  static workload::Direction parse(const std::string& name);
  static std::vector<workload::Direction> override_from_cli(
      const Cli& cli, const char* flag,
      std::vector<workload::Direction> fallback);
};

template <>
struct AxisValue<workload::Boundary> {
  using record_type = std::string;
  static record_type to_record(workload::Boundary v) {
    return workload::to_string(v);
  }
  static workload::Boundary parse(const std::string& name);
  static std::vector<workload::Boundary> override_from_cli(
      const Cli& cli, const char* flag,
      std::vector<workload::Boundary> fallback);
};

template <>
struct AxisValue<mpi::RendezvousFlavor> {
  using record_type = std::string;
  static record_type to_record(mpi::RendezvousFlavor v) {
    return mpi::to_string(v);
  }
  static mpi::RendezvousFlavor parse(const std::string& name) {
    return mpi::rendezvous_flavor_from_string(name);
  }
  static std::vector<mpi::RendezvousFlavor> override_from_cli(
      const Cli& cli, const char* flag,
      std::vector<mpi::RendezvousFlavor> fallback);
};

/// The type an axis value takes inside a SweepRecord (enum axes serialize
/// as their to_string name).
template <typename T>
using axis_record_t = typename AxisValue<T>::record_type;

struct SweepSpec;

/// Applies every axis's `--<flag>=v1,v2,...` override onto `spec`. Numeric
/// lists go through the Cli list parsers (malformed input throws, never
/// truncates); enum lists parse their to_string names, throwing on unknown
/// ones with the valid set in the message.
void apply_axis_overrides(SweepSpec& spec, const Cli& cli);

/// CLI flag names of all axes, in declaration order (for Cli::allow_only).
[[nodiscard]] std::vector<std::string> axis_cli_flags();

}  // namespace iw::sweep
