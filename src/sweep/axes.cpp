#include "sweep/axes.hpp"

#include <stdexcept>
#include <utility>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "sweep/spec.hpp"

namespace iw::sweep {

namespace {

/// Comma-splits an enum-axis override; empty elements are malformed, same
/// as the Cli numeric-list parsers.
std::vector<std::string> split_list(const std::string& flag,
                                    const std::string& value) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t comma = value.find(',', begin);
    const std::string item = value.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    IW_REQUIRE(!item.empty(),
               "--" + flag + ": empty element in list '" + value + "'");
    out.push_back(item);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

template <typename T>
std::vector<T> parse_enum_list(const Cli& cli, const char* flag,
                               std::vector<T> fallback) {
  const auto raw = cli.get(flag);
  if (!raw) return fallback;
  std::vector<T> out;
  for (const std::string& item : split_list(flag, *raw))
    out.push_back(AxisValue<T>::parse(item));
  return out;
}

}  // namespace

template <>
std::vector<double> AxisValue<double>::override_from_cli(
    const Cli& cli, const char* flag, std::vector<double> fallback) {
  return cli.get_list_or(flag, std::move(fallback));
}

template <>
std::vector<std::int64_t> AxisValue<std::int64_t>::override_from_cli(
    const Cli& cli, const char* flag, std::vector<std::int64_t> fallback) {
  return cli.get_list_or(flag, std::move(fallback));
}

template <>
std::vector<int> AxisValue<int>::override_from_cli(const Cli& cli,
                                                   const char* flag,
                                                   std::vector<int> fallback) {
  return cli.get_int_list_or(flag, std::move(fallback));
}

workload::Direction AxisValue<workload::Direction>::parse(
    const std::string& name) {
  if (name == "unidirectional") return workload::Direction::unidirectional;
  if (name == "bidirectional") return workload::Direction::bidirectional;
  throw std::invalid_argument(
      "unknown direction '" + name +
      "' (valid: unidirectional, bidirectional)");
}

std::vector<workload::Direction>
AxisValue<workload::Direction>::override_from_cli(
    const Cli& cli, const char* flag,
    std::vector<workload::Direction> fallback) {
  return parse_enum_list<workload::Direction>(cli, flag, std::move(fallback));
}

workload::Boundary AxisValue<workload::Boundary>::parse(
    const std::string& name) {
  if (name == "open") return workload::Boundary::open;
  if (name == "periodic") return workload::Boundary::periodic;
  throw std::invalid_argument("unknown boundary '" + name +
                              "' (valid: open, periodic)");
}

std::vector<workload::Boundary>
AxisValue<workload::Boundary>::override_from_cli(
    const Cli& cli, const char* flag,
    std::vector<workload::Boundary> fallback) {
  return parse_enum_list<workload::Boundary>(cli, flag, std::move(fallback));
}

std::vector<mpi::RendezvousFlavor>
AxisValue<mpi::RendezvousFlavor>::override_from_cli(
    const Cli& cli, const char* flag,
    std::vector<mpi::RendezvousFlavor> fallback) {
  return parse_enum_list<mpi::RendezvousFlavor>(cli, flag,
                                                std::move(fallback));
}

void apply_axis_overrides(SweepSpec& spec, const Cli& cli) {
#define IW_AXIS_OVERRIDE(field, Type, flag, column, default_)               \
  spec.field =                                                              \
      AxisValue<Type>::override_from_cli(cli, flag, std::move(spec.field));
  IW_SWEEP_AXES(IW_AXIS_OVERRIDE)
#undef IW_AXIS_OVERRIDE
}

std::vector<std::string> axis_cli_flags() {
  return {
#define IW_AXIS_FLAG(field, Type, flag, column, default_) flag,
      IW_SWEEP_AXES(IW_AXIS_FLAG)
#undef IW_AXIS_FLAG
  };
}

}  // namespace iw::sweep
