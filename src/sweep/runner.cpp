#include "sweep/runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace iw::sweep {
namespace {

/// Shared state of one campaign execution. Workers claim point indices from
/// an atomic cursor; completion flags and the emit cursor live behind one
/// mutex (the per-point simulation dwarfs the critical section).
struct Collector {
  const std::vector<SweepPoint>& points;
  const RunnerOptions& options;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};  ///< set with `error`; stops the pool
  std::mutex mutex;
  std::vector<SweepRecord> records;
  std::vector<char> done;
  std::size_t emitted = 0;    ///< sinks received records [0, emitted)
  std::size_t completed = 0;  ///< total finished points
  std::exception_ptr error;

  explicit Collector(const std::vector<SweepPoint>& pts,
                     const RunnerOptions& opt)
      : points(pts), options(opt), records(pts.size()), done(pts.size(), 0) {}

  [[nodiscard]] bool cancelled() const {
    return options.cancel && options.cancel->load(std::memory_order_relaxed);
  }

  // Must hold `mutex`. Streams the contiguous completed prefix to the sinks.
  void flush_prefix() {
    while (emitted < done.size() && done[emitted]) {
      for (RecordSink* sink : options.sinks) sink->write(records[emitted]);
      ++emitted;
    }
  }

  // Must hold `mutex`. Folds one completed record's run counters into the
  // campaign's registry; the per-point members mirror the registry's
  // engine/transport metric ids, so the accumulation is table-driven.
  void publish_record(const SweepRecord& rec) {
    obs::MetricsRegistry& m = *options.metrics;
    m.add(obs::MetricId::engine_events_processed, rec.events_processed);
    m.set_max(obs::MetricId::engine_calendar_peak,
              static_cast<double>(rec.peak_events_pending));
#define IW_METRIC_PUBLISH(field) \
  m.add(obs::MetricId::transport_##field, rec.field);
    IW_METRIC_COLUMNS(IW_METRIC_PUBLISH)
#undef IW_METRIC_PUBLISH
    m.add(obs::MetricId::sweep_points_done, 1);
  }

  void worker() {
    // Each worker recycles one Cluster across the points it claims
    // (calendar slab, transport pools, process objects); reused clusters
    // are byte-identical to fresh ones, so claim order stays irrelevant.
    core::WaveRunner lab;
    double busy_seconds = 0.0;
    for (;;) {
      // A failed point poisons the campaign; don't burn wall-clock
      // simulating points whose records can never be delivered.
      if (cancelled() || failed.load(std::memory_order_relaxed)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) break;
      try {
        const auto begin = std::chrono::steady_clock::now();
        SweepRecord rec = reduce(points[i], lab.run(points[i].exp));
        busy_seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - begin)
                            .count();
        std::lock_guard<std::mutex> lock(mutex);
        records[i] = std::move(rec);
        done[i] = 1;
        ++completed;
        if (options.metrics) publish_record(records[i]);
        flush_prefix();
        if (options.on_progress) options.on_progress(completed, points.size());
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (options.metrics) {
      std::lock_guard<std::mutex> lock(mutex);
      options.metrics->set_max(obs::MetricId::sweep_worker_busy_seconds,
                               busy_seconds);
    }
  }
};

}  // namespace

CampaignResult run_campaign(const std::vector<SweepPoint>& points,
                            const RunnerOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  Collector collector(points, options);

  const int threads = std::clamp<int>(
      options.threads, 1,
      std::max<int>(1, static_cast<int>(points.size())));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  try {
    for (int t = 0; t < threads; ++t)
      pool.emplace_back([&collector] { collector.worker(); });
  } catch (...) {
    // Thread creation failed (e.g. OS thread limit). Stop the workers that
    // did start and join them before propagating — destroying a joinable
    // std::thread would std::terminate.
    collector.failed.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) t.join();
    throw;
  }
  for (std::thread& t : pool) t.join();

  if (collector.error) std::rethrow_exception(collector.error);

  // A cancelled campaign may have completed points beyond an unfinished
  // one; deliver them too (still in index order) so no finished work is
  // lost. Normal completion has already flushed everything.
  CampaignResult result;
  result.total_points = points.size();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!collector.done[i]) continue;
    if (i >= collector.emitted)
      for (RecordSink* sink : options.sinks) sink->write(collector.records[i]);
    result.records.push_back(std::move(collector.records[i]));
  }
  result.cancelled = result.records.size() < points.size();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& m = *options.metrics;
    m.set(obs::MetricId::sweep_points_total,
          static_cast<double>(points.size()));
    m.set(obs::MetricId::sweep_elapsed_seconds, result.seconds);
    m.set(obs::MetricId::sweep_points_per_sec, result.points_per_sec());
    m.set(obs::MetricId::sweep_workers, static_cast<double>(threads));
  }
  return result;
}

CampaignResult run_campaign(const SweepSpec& spec,
                            const RunnerOptions& options) {
  return run_campaign(expand(spec), options);
}

}  // namespace iw::sweep
