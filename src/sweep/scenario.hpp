// Scenario registry: the paper's figures as named, self-describing sweeps.
//
// A scenario is a SweepSpec with a name, a one-line summary, and the paper
// reference it reproduces. The catalog is the single source of truth for
// the sweep_runner CLI, the perf_sweep bench, and the CI smoke campaign;
// axis values can still be overridden per invocation before expansion.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/spec.hpp"

namespace iw::sweep {

/// Per-scenario bounds for the analytic oracle layer (src/verify/oracle):
/// how far simulated observables may deviate from the closed-form
/// expectations of the analytic model (arXiv:2103.03175) before a record is
/// flagged. Scenarios with injected noise or staircase fronts declare wider
/// bounds; the noise-free speed scans sit within a few percent of Eq. 2.
struct OracleBounds {
  /// Max |v_fit - v_eq2| / v_eq2 for records whose front fit qualifies.
  double max_speed_rel_err = 0.25;
  /// Front fits below this r^2 are too scattered for a speed comparison
  /// (heavy injected noise); such records skip the speed oracle.
  double min_front_r2 = 0.9;
  /// Minimum consecutive survival hops before the fitted speed is compared
  /// (a two-point front is too short to trust its slope).
  int min_reached_for_speed = 3;
  /// Eq. 1 structure: a nonoverlapping compute-communicate cycle satisfies
  /// cycle >= Texec, and Tcomm is bounded by the slowest link the sweep
  /// touches. cycle_us must lie in [min, max] * texec_us.
  double min_cycle_over_texec = 1.0;
  double max_cycle_over_texec = 8.0;
  /// When true, the paper's Sec. V damping trends are enforced per group of
  /// fixed non-noise axes: the measured cycle must grow monotonically with
  /// injected noise E (noise lengthens every compute phase), and survival
  /// at the highest E must not exceed survival at the lowest E by more than
  /// `survival_slack_hops`. Survival is compared endpoint-to-endpoint, not
  /// consecutively: at high E, noise-induced waits above min_idle are
  /// (mis)attributed to the wave, making the intermediate proxy jumpy.
  bool damping_trend_in_noise = false;
  int survival_slack_hops = 2;
  /// Relative slack for the cycle-vs-E monotonicity (median-of-steps jitter).
  double cycle_noise_slack_rel = 0.02;
  /// When set to a numeric axis column name ("nic_depth", "eager_credits"),
  /// the protocol-constraint trend is enforced per group of fixed other
  /// axes. The axis is a resource constraint with 0 = unlimited; tightening
  /// it (0, then descending positive values) must never *speed the run up*:
  /// cycle_us is non-decreasing within `constraint_cycle_slack_rel`.
  std::string constraint_axis;
  double constraint_cycle_slack_rel = 0.02;
  /// The crossover-shift direction for `constraint_axis` scenarios: between
  /// the unconstrained baseline and the tightest setting, the relative
  /// slowdown of eager-protocol records must be at least the rendezvous
  /// slowdown minus this slack. Finite injection budgets and credit windows
  /// defer the eager sender's local completion to NIC drain, while a
  /// rendezvous sender already waits out its handshake — so the constraint
  /// must hit eager at least as hard, shifting the protocol crossover
  /// toward smaller messages.
  double crossover_shift_slack = 0.05;
};

struct Scenario {
  std::string name;
  std::string summary;    ///< what the sweep demonstrates
  std::string paper_ref;  ///< figure / section it reproduces
  SweepSpec spec;
  OracleBounds oracle;
  /// Point indices (into expand(spec)) verified under --quick: a handful of
  /// representative points per scenario so CI touches every scenario
  /// without the full campaign cost. Empty = quick mode runs everything.
  std::vector<std::size_t> quick_subset;
};

/// All registered scenarios, in catalog order. Names are unique.
[[nodiscard]] const std::vector<Scenario>& scenario_catalog();

/// Looks a scenario up by name; nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(const std::string& name);

/// The catalog's names, in order (CLI help, error messages).
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace iw::sweep
