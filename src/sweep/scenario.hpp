// Scenario registry: the paper's figures as named, self-describing sweeps.
//
// A scenario is a SweepSpec with a name, a one-line summary, and the paper
// reference it reproduces. The catalog is the single source of truth for
// the sweep_runner CLI, the perf_sweep bench, and the CI smoke campaign;
// axis values can still be overridden per invocation before expansion.
#pragma once

#include <string>
#include <vector>

#include "sweep/spec.hpp"

namespace iw::sweep {

struct Scenario {
  std::string name;
  std::string summary;    ///< what the sweep demonstrates
  std::string paper_ref;  ///< figure / section it reproduces
  SweepSpec spec;
};

/// All registered scenarios, in catalog order. Names are unique.
[[nodiscard]] const std::vector<Scenario>& scenario_catalog();

/// Looks a scenario up by name; nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(const std::string& name);

/// The catalog's names, in order (CLI help, error messages).
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace iw::sweep
