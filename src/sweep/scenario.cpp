#include "sweep/scenario.hpp"

namespace iw::sweep {
namespace {

Scenario speed_vs_delay() {
  Scenario s;
  s.name = "speed_vs_delay";
  s.summary =
      "wave speed is independent of delay magnitude, for both protocols "
      "and directions";
  s.paper_ref = "Fig. 7 / Sec. IV-A";
  s.spec.delay_ms = {4,  6,  8,  10, 12, 14, 16,
                     18, 20, 22, 24, 26, 28};
  s.spec.msg_bytes = {16384, 174080};  // eager vs rendezvous
  s.spec.direction = {workload::Direction::unidirectional,
                      workload::Direction::bidirectional};
  s.spec.np = {18};
  s.spec.steps = 18;
  // Axis order: delay (13) x msg (2) x direction (2). Cover both protocols
  // and both directions at the extreme delays.
  s.quick_subset = {0, 3, 25, 51};
  return s;  // 13 * 2 * 2 = 52 points
}

Scenario decay_vs_size() {
  Scenario s;
  s.name = "decay_vs_size";
  s.summary =
      "decay rate beta grows with noise level and shrinks with message size";
  s.paper_ref = "Fig. 8 / Sec. V-A";
  s.spec.delay_ms = {12};
  s.spec.msg_bytes = {4096, 16384, 65536, 262144, 1048576};
  s.spec.noise_E_percent = {5, 10, 20};
  s.spec.np = {24};
  s.spec.steps = 24;
  // Noise-driven fronts scatter; only clean fits face the speed oracle.
  s.oracle.min_front_r2 = 0.95;
  s.oracle.max_speed_rel_err = 0.5;
  s.quick_subset = {0, 7, 14};  // smallest/middle/largest msg x noise
  return s;  // 15 points
}

Scenario eager_rendezvous_crossover() {
  Scenario s;
  s.name = "eager_rendezvous_crossover";
  s.summary =
      "protocol flip at the 128 KiB eager limit changes wave speed and "
      "back-propagation";
  s.paper_ref = "Fig. 5 / Sec. IV-C";
  s.spec.delay_ms = {15};
  // Straddles the InfiniBand eager_limit_bytes = 131072.
  s.spec.msg_bytes = {32768, 65536, 98304, 131072, 163840, 262144};
  s.spec.direction = {workload::Direction::unidirectional,
                      workload::Direction::bidirectional};
  s.spec.boundary = {workload::Boundary::open, workload::Boundary::periodic};
  s.spec.rdv_flavor = {mpi::RendezvousFlavor::two_sided,
                       mpi::RendezvousFlavor::rdma_put,
                       mpi::RendezvousFlavor::rdma_get};
  s.spec.np = {16};
  s.spec.steps = 16;
  // msg (6) x direction (2) x boundary (2) x flavor (3): both protocol
  // sides of the 128 KiB limit, both directions, both boundaries, every
  // rendezvous wire flavor (flavor is the fastest axis). Quick: all three
  // flavors on the eager side (where they must be no-ops), the two-sided
  // point at the limit, and all three flavors at 256 KiB bidirectional —
  // where the flavor changes sigma and the handshake timeline.
  s.quick_subset = {0, 1, 2, 39, 66, 67, 68};
  return s;  // 72 points
}

Scenario nic_injection_sweep() {
  Scenario s;
  s.name = "nic_injection_sweep";
  s.summary =
      "finite NIC injection budgets slow eager bursts more than rendezvous, "
      "shifting the protocol crossover toward smaller messages";
  s.paper_ref = "Sec. III (communication model) extension";
  s.spec.delay_ms = {15};
  // One eager and one rendezvous size, under a burst of distance-8 sends
  // per step — deep enough to saturate every finite budget below.
  s.spec.msg_bytes = {16384, 262144};
  s.spec.nic_depth = {0, 8, 2, 1};  // loosest (unlimited) to tightest
  s.spec.np = {16};
  s.spec.steps = 16;
  s.spec.distance = 8;
  // Seeds differ per point, so system noise would put ~2% of random spread
  // between ladder rungs — more than the monotone slack. The constraint
  // trend is only meaningful against a deterministic baseline.
  s.spec.system_noise = "none";
  // Backlogged bursts decouple the fitted front from the silent-system
  // Eq. 2 speed; the constraint trend is the scenario's oracle instead.
  s.oracle.max_speed_rel_err = 0.6;
  s.oracle.max_cycle_over_texec = 16.0;
  s.oracle.constraint_axis = "nic_depth";
  // Small enough that quick mode keeps every point: the constraint-trend
  // oracle needs the whole budget ladder for both message sizes.
  s.quick_subset = {0, 1, 2, 3, 4, 5, 6, 7};
  return s;  // 8 points (quick = full)
}

Scenario credit_flow_control() {
  Scenario s;
  s.name = "credit_flow_control";
  s.summary =
      "exhausted eager credit windows demote bursts to rendezvous; "
      "rendezvous traffic is untouched";
  s.paper_ref = "Sec. III (communication model) extension";
  s.spec.delay_ms = {15};
  s.spec.msg_bytes = {16384, 262144};
  s.spec.eager_credits = {0, 8, 2, 1};  // loosest (unlimited) to tightest
  s.spec.np = {16};
  s.spec.steps = 16;
  s.spec.distance = 8;
  s.spec.system_noise = "none";  // deterministic rungs, as above
  s.oracle.max_speed_rel_err = 0.6;
  s.oracle.max_cycle_over_texec = 16.0;
  s.oracle.constraint_axis = "eager_credits";
  // Quick keeps the full ladder, same reasoning as nic_injection_sweep.
  s.quick_subset = {0, 1, 2, 3, 4, 5, 6, 7};
  return s;  // 8 points (quick = full)
}

Scenario ppn_contrast() {
  Scenario s;
  s.name = "ppn_contrast";
  s.summary =
      "one rank per node vs packed sockets: placement changes cycle time "
      "and wave speed";
  s.paper_ref = "Sec. IV (PPN=1 vs PPN=10)";
  s.spec.delay_ms = {6, 12, 18, 24};
  s.spec.ppn = {1, 10};
  s.spec.np = {20};
  s.spec.steps = 20;
  // Packed placement shortens the communication term and the intra-node
  // links congest; allow a wider Eq. 2 band than the PPN=1 baseline.
  s.oracle.max_speed_rel_err = 0.35;
  s.quick_subset = {0, 1, 6, 7};  // both placements at extreme delays
  return s;  // 8 points
}

Scenario noise_damping() {
  Scenario s;
  s.name = "noise_damping";
  s.summary =
      "injected fine-grained noise damps idle waves: survival shrinks as E "
      "grows";
  s.paper_ref = "Sec. V / Fig. 9";
  s.spec.delay_ms = {6, 12, 24};
  s.spec.noise_E_percent = {0, 5, 10, 20, 30, 50};
  s.spec.np = {20};
  s.spec.direction = {workload::Direction::bidirectional};
  s.spec.boundary = {workload::Boundary::periodic};
  s.spec.steps = 24;
  s.spec.min_idle = milliseconds(3.0);
  // The scenario's whole point is damping: noise must slow every cycle and
  // must not extend the wave's reach.
  s.oracle.damping_trend_in_noise = true;
  // At E = 50% the front barely exists; exempt scattered fits from the
  // speed check entirely and keep the sanity/monotonicity oracles.
  s.oracle.min_front_r2 = 0.97;
  s.oracle.max_speed_rel_err = 0.6;
  // One full noise ladder (delay = 6 ms, E = 0..50) so the monotone check
  // still sees a 3-level group under --quick.
  s.quick_subset = {0, 2, 5};
  return s;  // 18 points
}

Scenario grid2d_wave() {
  Scenario s;
  s.name = "grid2d_wave";
  s.summary =
      "2-D halo exchange: the wave front expands one Manhattan hop per "
      "cycle (diamond contours)";
  s.paper_ref = "Sec. II-C2b extension";
  s.spec.workload = Workload::grid2d;
  s.spec.delay_ms = {10, 14};
  s.spec.np = {25, 49, 81};  // 5x5, 7x7, 9x9 grids
  s.spec.steps = 22;
  s.spec.texec = milliseconds(2.0);
  // Halo-exchange fronts are staircases along the probed row; the
  // least-squares slope carries a granularity error on top of Eq. 2.
  s.oracle.max_speed_rel_err = 0.4;
  s.oracle.min_reached_for_speed = 2;
  s.quick_subset = {0, 3};  // both delays on the 5x5 grid
  return s;  // 6 points
}

Scenario scale_wave() {
  Scenario s;
  s.name = "scale_wave";
  s.summary =
      "machine-scale rank counts: the wave's local observables are "
      "np-invariant, and fast-forward makes the 100k-rank point tractable";
  s.paper_ref = "Sec. VI (cluster-scale outlook) extension";
  s.spec.delay_ms = {12};
  s.spec.msg_bytes = {8192};
  // The one scenario where np is the real axis. The delay touches ~d*steps
  // ranks regardless of np; everything beyond the light cone is silent and
  // fast-forward synthesizes it analytically (ffwd = auto below).
  s.spec.np = {256, 2048, 102400};
  // Packed sockets under a leaf-switch tier: pattern period
  // 2 ranks/socket x 2 sockets x 8 nodes = 32 ranks/switch, so silent
  // bulk ranks repeat with period 32 and the residue synthesis applies.
  s.spec.ppn = {2};
  s.spec.switch_nodes = {8};
  s.spec.steps = 20;
  s.spec.system_noise = "none";  // ffwd eligibility: no stochastic ranks
  s.spec.ffwd = "auto";
  // Packed placement + the switch tier congest intra-node links; same
  // Eq. 2 slack as ppn_contrast.
  s.oracle.max_speed_rel_err = 0.35;
  s.quick_subset = {0, 1};  // small-np points; the 100k point is full-only
  return s;  // 3 points
}

}  // namespace

const std::vector<Scenario>& scenario_catalog() {
  static const std::vector<Scenario> catalog = {
      speed_vs_delay(),     decay_vs_size(),
      eager_rendezvous_crossover(), ppn_contrast(),
      noise_damping(),      grid2d_wave(),
      nic_injection_sweep(), credit_flow_control(),
      scale_wave(),
  };
  return catalog;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : scenario_catalog())
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const Scenario& s : scenario_catalog()) names.push_back(s.name);
  return names;
}

}  // namespace iw::sweep
