// Sharded campaign runner: a worker pool over expanded sweep points.
//
// Each point is an independent single-shot simulation whose RNG seed was
// fixed at expansion time, so workers can claim points in any order without
// perturbing results. Completed records are delivered to the sinks in
// ascending point order (a contiguous-prefix cursor advances as workers
// finish), which makes an N-thread campaign byte-identical to the
// single-threaded one. Cancellation stops workers at the next point
// boundary; every record completed before the stop is still delivered.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "sweep/record.hpp"
#include "sweep/spec.hpp"

namespace iw::obs {
class MetricsRegistry;
}

namespace iw::sweep {

struct RunnerOptions {
  /// Worker threads; clamped to [1, points]. The worker pool is used even
  /// for threads = 1 so both configurations run the same code path.
  int threads = 1;
  /// Called after each completed point with (completed, total), serialized
  /// under the collector lock. Cheap callbacks only.
  std::function<void(std::size_t, std::size_t)> on_progress;
  /// Optional cancellation flag. Workers stop claiming points once it reads
  /// true; in-flight points run to completion and are delivered.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional unified metrics registry. The campaign accumulates each
  /// record's engine/transport counters as it completes (under the
  /// collector lock) and publishes the sweep.* throughput metrics —
  /// points done/total, elapsed, points/sec, worker count and peak
  /// per-worker busy time — when the pool drains. Non-owning.
  obs::MetricsRegistry* metrics = nullptr;
  /// Record destinations. write() is invoked in ascending index order, one
  /// record at a time — from worker threads under the collector lock while
  /// the campaign runs, and from the calling thread (after all workers have
  /// joined) for records a cancellation left beyond the streamed prefix.
  std::vector<RecordSink*> sinks;
};

struct CampaignResult {
  /// Records of all completed points, in point order. A full run has
  /// exactly total_points entries; a cancelled run may have gaps (records
  /// carry their index).
  std::vector<SweepRecord> records;
  std::size_t total_points = 0;
  bool cancelled = false;
  double seconds = 0.0;  ///< wall-clock time of the campaign

  [[nodiscard]] double points_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(records.size()) / seconds : 0.0;
  }
};

/// Runs all `points` through the pool described by `options`.
/// Rethrows the first worker exception (after joining every thread).
[[nodiscard]] CampaignResult run_campaign(const std::vector<SweepPoint>& points,
                                          const RunnerOptions& options = {});

/// Convenience: expand + run.
[[nodiscard]] CampaignResult run_campaign(const SweepSpec& spec,
                                          const RunnerOptions& options = {});

}  // namespace iw::sweep
