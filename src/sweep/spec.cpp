#include "sweep/spec.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "workload/delay.hpp"

namespace iw::sweep {
namespace {

/// Exact integer square root of np for grid2d sweeps.
int grid_side(int np) {
  const int side = static_cast<int>(std::lround(std::sqrt(np)));
  IW_REQUIRE(side > 0 && side * side == np,
             "grid2d sweep needs a square rank count");
  return side;
}

core::WaveExperiment build_experiment(const SweepSpec& spec,
                                      const SweepPoint& pt) {
  core::WaveExperiment exp;
  int inj_rank = 0;
  if (spec.workload == Workload::grid2d) {
    workload::Grid2DSpec grid;
    grid.px = grid.py = grid_side(pt.np);
    grid.boundary = pt.boundary;
    grid.msg_bytes = pt.msg_bytes;
    grid.steps = spec.steps;
    grid.texec = spec.texec;
    inj_rank = workload::grid_rank(grid, grid.px / 2, grid.py / 2);
    exp.cluster.topo = pt.ppn <= 1
                           ? net::TopologySpec::one_rank_per_node(pt.np)
                           : net::TopologySpec::packed(pt.np, pt.ppn);
    exp.grid = grid;
  } else {
    workload::RingSpec ring;
    ring.ranks = pt.np;
    ring.direction = pt.direction;
    ring.boundary = pt.boundary;
    ring.distance = spec.distance;
    ring.msg_bytes = pt.msg_bytes;
    ring.steps = spec.steps;
    ring.texec = spec.texec;
    inj_rank = static_cast<int>(spec.injection_at *
                                static_cast<double>(pt.np));
    inj_rank = std::clamp(inj_rank, 0, pt.np - 1);
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring, pt.ppn <= 1, pt.ppn);
  }

  if (spec.system_noise != "none")
    exp.cluster.system_noise = noise::NoiseSpec::system(spec.system_noise);
  if (pt.delay_ms > 0.0)
    exp.delays = workload::single_delay(inj_rank, spec.injection_step,
                                        milliseconds(pt.delay_ms));
  if (pt.noise_E_percent > 0.0)
    exp.injected_noise = noise::NoiseSpec::exponential(
        Duration{static_cast<std::int64_t>(
            static_cast<double>(spec.texec.ns()) * pt.noise_E_percent /
                100.0 +
            0.5)});
  exp.min_idle = spec.min_idle;
  return exp;
}

}  // namespace

std::size_t SweepSpec::points() const {
  return delay_ms.size() * msg_bytes.size() * np.size() * ppn.size() *
         noise_E_percent.size() * direction.size() * boundary.size();
}

std::vector<SweepPoint> expand(const SweepSpec& spec) {
  IW_REQUIRE(!spec.delay_ms.empty() && !spec.msg_bytes.empty() &&
                 !spec.np.empty() && !spec.ppn.empty() &&
                 !spec.noise_E_percent.empty() && !spec.direction.empty() &&
                 !spec.boundary.empty(),
             "every sweep axis needs at least one value");
  IW_REQUIRE(spec.steps > 0, "sweep steps must be positive");
  // 4-neighbor halo exchange has no uni/bidirectional flavor; a multi-valued
  // direction axis would silently duplicate grid points under distinct
  // labels.
  IW_REQUIRE(spec.workload == Workload::ring || spec.direction.size() == 1,
             "grid2d sweeps take no direction axis");
  for (const int n : spec.np) IW_REQUIRE(n > 1, "sweep np must exceed 1");
  for (const int k : spec.ppn) IW_REQUIRE(k > 0, "sweep ppn must be positive");

  const Rng campaign(spec.campaign_seed);
  std::vector<SweepPoint> points;
  points.reserve(spec.points());
  for (const double delay : spec.delay_ms)
    for (const std::int64_t bytes : spec.msg_bytes)
      for (const int n : spec.np)
        for (const int k : spec.ppn)
          for (const double noise_E : spec.noise_E_percent)
            for (const auto dir : spec.direction)
              for (const auto bound : spec.boundary) {
                SweepPoint pt;
                pt.index = points.size();
                pt.delay_ms = delay;
                pt.msg_bytes = bytes;
                pt.np = n;
                pt.ppn = k;
                pt.noise_E_percent = noise_E;
                pt.direction = dir;
                pt.boundary = bound;
                pt.workload = spec.workload;
                pt.exp = build_experiment(spec, pt);
                // fork() is order-independent, so the seed of point i is a
                // pure function of (campaign_seed, i) — the key to
                // thread-count-invariant campaigns.
                pt.exp.cluster.seed =
                    campaign.fork(static_cast<std::uint64_t>(pt.index))
                        .next_u64();
                points.push_back(std::move(pt));
              }
  return points;
}

}  // namespace iw::sweep
