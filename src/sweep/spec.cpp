#include "sweep/spec.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "workload/delay.hpp"

namespace iw::sweep {
namespace {

/// Exact integer square root of np for grid2d sweeps.
int grid_side(int np) {
  const int side = static_cast<int>(std::lround(std::sqrt(np)));
  IW_REQUIRE(side > 0 && side * side == np,
             "grid2d sweep needs a square rank count");
  return side;
}

core::WaveExperiment build_experiment(const SweepSpec& spec,
                                      const SweepPoint& pt) {
  core::WaveExperiment exp;
  int inj_rank = 0;
  if (spec.workload == Workload::grid2d) {
    workload::Grid2DSpec grid;
    grid.px = grid.py = grid_side(pt.np);
    grid.boundary = pt.boundary;
    grid.msg_bytes = pt.msg_bytes;
    grid.steps = spec.steps;
    grid.texec = spec.texec;
    inj_rank = workload::grid_rank(grid, grid.px / 2, grid.py / 2);
    exp.cluster.topo = pt.ppn <= 1
                           ? net::TopologySpec::one_rank_per_node(pt.np)
                           : net::TopologySpec::packed(pt.np, pt.ppn);
    exp.grid = grid;
  } else {
    workload::RingSpec ring;
    ring.ranks = pt.np;
    ring.direction = pt.direction;
    ring.boundary = pt.boundary;
    ring.distance = spec.distance;
    ring.msg_bytes = pt.msg_bytes;
    ring.steps = spec.steps;
    ring.texec = spec.texec;
    inj_rank = static_cast<int>(spec.injection_at *
                                static_cast<double>(pt.np));
    inj_rank = std::clamp(inj_rank, 0, pt.np - 1);
    exp.ring = ring;
    exp.cluster = core::cluster_for_ring(ring, pt.ppn <= 1, pt.ppn);
  }

  // Protocol axes land in the transport configuration; Transport::validate
  // re-checks the combination at construction.
  exp.cluster.transport.nic.injection_depth = pt.nic_depth;
  exp.cluster.transport.eager.credit_window = pt.eager_credits;
  exp.cluster.transport.rendezvous.flavor = pt.rdv_flavor;
  // The switch tier rides on whatever node shape the ppn axis produced.
  exp.cluster.topo.nodes_per_switch = pt.switch_nodes;
  exp.ffwd = core::ffwd_mode_from_string(spec.ffwd);

  if (spec.system_noise != "none")
    exp.cluster.system_noise = noise::NoiseSpec::system(spec.system_noise);
  if (pt.delay_ms > 0.0)
    exp.delays = workload::single_delay(inj_rank, spec.injection_step,
                                        milliseconds(pt.delay_ms));
  if (pt.noise_E_percent > 0.0)
    exp.injected_noise = noise::NoiseSpec::exponential(
        Duration{static_cast<std::int64_t>(
            static_cast<double>(spec.texec.ns()) * pt.noise_E_percent /
                100.0 +
            0.5)});
  exp.min_idle = spec.min_idle;
  return exp;
}

}  // namespace

std::size_t SweepSpec::points() const {
  std::size_t n = 1;
#define IW_AXIS_MUL(field, Type, flag, column, default_) n *= field.size();
  IW_SWEEP_AXES(IW_AXIS_MUL)
#undef IW_AXIS_MUL
  return n;
}

std::vector<SweepPoint> expand(const SweepSpec& spec) {
#define IW_AXIS_NONEMPTY(field, Type, flag, column, default_)            \
  IW_REQUIRE(!spec.field.empty(),                                        \
             "sweep axis '" column "' needs at least one value");
  IW_SWEEP_AXES(IW_AXIS_NONEMPTY)
#undef IW_AXIS_NONEMPTY
  IW_REQUIRE(spec.steps > 0, "sweep steps must be positive");
  // 4-neighbor halo exchange has no uni/bidirectional flavor; a multi-valued
  // direction axis would silently duplicate grid points under distinct
  // labels.
  IW_REQUIRE(spec.workload == Workload::ring || spec.direction.size() == 1,
             "grid2d sweeps take no direction axis");
  for (const int n : spec.np) IW_REQUIRE(n > 1, "sweep np must exceed 1");
  for (const int k : spec.ppn) IW_REQUIRE(k > 0, "sweep ppn must be positive");
  for (const int d : spec.nic_depth)
    IW_REQUIRE(d >= 0, "sweep nic_depth must be >= 0 (0 = unlimited)");
  for (const int c : spec.eager_credits)
    IW_REQUIRE(c >= 0, "sweep eager_credits must be >= 0 (0 = unlimited)");
  for (const int s : spec.switch_nodes)
    IW_REQUIRE(s >= 0, "sweep switch_nodes must be >= 0 (0 = flat fabric)");

  // Odometer over the axis registry: sizes in declaration order, strides
  // built back-to-front so the first axis is slowest and the last fastest
  // (the historical nested-loop order, now derived instead of spelled out).
  std::array<std::size_t, kSweepAxisCount> sizes{};
  {
    std::size_t a = 0;
#define IW_AXIS_SIZE(field, Type, flag, column, default_) \
  sizes[a++] = spec.field.size();
    IW_SWEEP_AXES(IW_AXIS_SIZE)
#undef IW_AXIS_SIZE
  }
  std::array<std::size_t, kSweepAxisCount> strides{};
  std::size_t stride = 1;
  for (std::size_t a = kSweepAxisCount; a-- > 0;) {
    strides[a] = stride;
    stride *= sizes[a];
  }
  const std::size_t total = stride;

  const Rng campaign(spec.campaign_seed);
  std::vector<SweepPoint> points;
  points.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    SweepPoint pt;
    pt.index = i;
    {
      std::size_t a = 0;
#define IW_AXIS_ASSIGN(field, Type, flag, column, default_) \
  pt.field = spec.field[(i / strides[a]) % sizes[a]];       \
  ++a;
      IW_SWEEP_AXES(IW_AXIS_ASSIGN)
#undef IW_AXIS_ASSIGN
    }
    pt.workload = spec.workload;
    pt.exp = build_experiment(spec, pt);
    // fork() is order-independent, so the seed of point i is a pure
    // function of (campaign_seed, i) — the key to thread-count-invariant
    // campaigns.
    pt.exp.cluster.seed =
        campaign.fork(static_cast<std::uint64_t>(pt.index)).next_u64();
    points.push_back(std::move(pt));
  }
  return points;
}

}  // namespace iw::sweep
