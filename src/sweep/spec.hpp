// Declarative sweep specifications: the paper's parameter scans as data.
//
// Every quantitative result in the paper is a scan — delay magnitude,
// message size, rank count, ranks-per-node, noise level, and the protocol
// axes (NIC injection depth, eager credit window, rendezvous flavor) —
// over dozens of configurations. A SweepSpec names the axes once; expand()
// takes their Cartesian product and materializes one fully-seeded
// WaveExperiment per grid point. Expansion is deterministic: point `i`
// always receives the same experiment (including its RNG seed, split off
// the campaign seed via Rng::fork(i)), so any execution order — one thread
// or many — reproduces the same campaign.
//
// The axis set itself lives in sweep/axes.hpp (IW_SWEEP_AXES); both structs
// below generate their axis members from it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "support/time.hpp"
#include "sweep/axes.hpp"
#include "workload/ring.hpp"

namespace iw::sweep {

/// Which workload builder the sweep points use.
enum class Workload : std::uint8_t { ring, grid2d };

[[nodiscard]] constexpr const char* to_string(Workload w) {
  return w == Workload::ring ? "ring" : "grid2d";
}

/// Axes (vectors, each must stay non-empty) and shared scalars of one
/// campaign. The Cartesian product is enumerated in IW_SWEEP_AXES
/// declaration order, first axis slowest / last axis fastest.
///
/// Axis semantics (see axes.hpp for the registry itself):
///   delay_ms         — one-off delay magnitude
///   msg_bytes        — point-to-point message size
///   np               — total ranks
///   ppn              — 1 = one rank per node (paper's PPN=1 baseline),
///                      k > 1 = packed placement with k ranks per socket
///   noise_E_percent  — injected fine-grained exponential noise, mean as
///                      percent of texec (the paper's E); 0 = none
///   direction        — ring-only (halo exchange has no uni/bi flavor);
///                      grid2d sweeps must leave it single-valued
///   boundary         — open chain vs periodic ring/torus
///   nic_depth        — NIC injection budget; 0 = unlimited (ideal NIC)
///   eager_credits    — per-destination eager credit window; 0 = unlimited
///   rdv_flavor       — rendezvous wire flavor (two_sided/rdma_put/rdma_get)
///   switch_nodes     — nodes behind one leaf switch; 0 = flat fabric
///                      (enables the hierarchical inter_switch link tier)
struct SweepSpec {
  // --- axes (generated from IW_SWEEP_AXES) --------------------------------
#define IW_AXIS_VECTOR(field, Type, flag, column, default_) \
  std::vector<Type> field = {default_};
  IW_SWEEP_AXES(IW_AXIS_VECTOR)
#undef IW_AXIS_VECTOR

  // --- scalars ------------------------------------------------------------
  Workload workload = Workload::ring;
  int steps = 20;
  Duration texec = milliseconds(3.0);
  int distance = 1;                   ///< ring neighbor distance d
  int injection_step = 0;
  /// Injection rank as a fraction of np (ring) — np/3 keeps both wave
  /// branches visible on open chains. Grid points always inject at the
  /// grid center instead.
  double injection_at = 1.0 / 3.0;
  Duration min_idle = milliseconds(0.5);
  /// Natural system noise profile ("none", "emmy-smt-on", ...).
  std::string system_noise = "emmy-smt-on";
  /// Fast-forward mode for every point: "off" (default — exact engine
  /// counters), "auto" (skip silent regions when eligible), or "force"
  /// (fail loudly if any point is ineligible). See core/fast_forward.hpp.
  std::string ffwd = "off";
  std::uint64_t campaign_seed = 0x5EEDCA3Bull;

  /// Number of grid points (product of axis lengths).
  [[nodiscard]] std::size_t points() const;
};

/// One expanded point: the axis values it was built from plus the
/// ready-to-run experiment.
struct SweepPoint {
  std::size_t index = 0;
#define IW_AXIS_MEMBER(field, Type, flag, column, default_) \
  Type field = default_;
  IW_SWEEP_AXES(IW_AXIS_MEMBER)
#undef IW_AXIS_MEMBER
  Workload workload = Workload::ring;
  core::WaveExperiment exp;
};

/// Expands the Cartesian product of the axes. Throws std::invalid_argument
/// on empty axes, non-positive np/steps, negative protocol-axis values, or
/// (for grid2d sweeps) np values without an exact square root.
[[nodiscard]] std::vector<SweepPoint> expand(const SweepSpec& spec);

}  // namespace iw::sweep
