// Declarative sweep specifications: the paper's parameter scans as data.
//
// Every quantitative result in the paper is a scan — delay magnitude,
// message size, rank count, ranks-per-node, noise level — over dozens of
// configurations. A SweepSpec names the axes once; expand() takes their
// Cartesian product and materializes one fully-seeded WaveExperiment per
// grid point. Expansion is deterministic: point `i` always receives the
// same experiment (including its RNG seed, split off the campaign seed via
// Rng::fork(i)), so any execution order — one thread or many — reproduces
// the same campaign.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "support/time.hpp"
#include "workload/ring.hpp"

namespace iw::sweep {

/// Which workload builder the sweep points use.
enum class Workload : std::uint8_t { ring, grid2d };

[[nodiscard]] constexpr const char* to_string(Workload w) {
  return w == Workload::ring ? "ring" : "grid2d";
}

/// Axes (vectors, each must stay non-empty) and shared scalars of one
/// campaign. The Cartesian product is enumerated with the delay axis
/// slowest and the boundary axis fastest, in declaration order.
struct SweepSpec {
  // --- axes ---------------------------------------------------------------
  std::vector<double> delay_ms = {12.0};        ///< one-off delay magnitude
  std::vector<std::int64_t> msg_bytes = {8192};  ///< point-to-point size
  std::vector<int> np = {18};                   ///< total ranks
  /// Ranks per node: 1 = one rank per node (paper's PPN=1 baseline),
  /// k > 1 = packed placement with k ranks per socket.
  std::vector<int> ppn = {1};
  /// Injected fine-grained exponential noise, mean as percent of texec
  /// (the paper's E parameter); 0 = no injected noise.
  std::vector<double> noise_E_percent = {0.0};
  /// Ring-only axis (halo exchange has no uni/bi flavor); grid2d sweeps
  /// must leave it single-valued.
  std::vector<workload::Direction> direction = {
      workload::Direction::unidirectional};
  std::vector<workload::Boundary> boundary = {workload::Boundary::open};

  // --- scalars ------------------------------------------------------------
  Workload workload = Workload::ring;
  int steps = 20;
  Duration texec = milliseconds(3.0);
  int distance = 1;                   ///< ring neighbor distance d
  int injection_step = 0;
  /// Injection rank as a fraction of np (ring) — np/3 keeps both wave
  /// branches visible on open chains. Grid points always inject at the
  /// grid center instead.
  double injection_at = 1.0 / 3.0;
  Duration min_idle = milliseconds(0.5);
  /// Natural system noise profile ("none", "emmy-smt-on", ...).
  std::string system_noise = "emmy-smt-on";
  std::uint64_t campaign_seed = 0x5EEDCA3Bull;

  /// Number of grid points (product of axis lengths).
  [[nodiscard]] std::size_t points() const;
};

/// One expanded point: the axis values it was built from plus the
/// ready-to-run experiment.
struct SweepPoint {
  std::size_t index = 0;
  double delay_ms = 0.0;
  std::int64_t msg_bytes = 0;
  int np = 0;
  int ppn = 1;
  double noise_E_percent = 0.0;
  workload::Direction direction = workload::Direction::unidirectional;
  workload::Boundary boundary = workload::Boundary::open;
  Workload workload = Workload::ring;
  core::WaveExperiment exp;
};

/// Expands the Cartesian product of the axes. Throws std::invalid_argument
/// on empty axes, non-positive np/steps, or (for grid2d sweeps) np values
/// without an exact square root.
[[nodiscard]] std::vector<SweepPoint> expand(const SweepSpec& spec);

}  // namespace iw::sweep
