#include "sweep/record.hpp"

#include <utility>

#include "support/stats.hpp"
#include "support/table.hpp"

namespace iw::sweep {
namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::vector<RecordField> record_fields(const SweepRecord& rec) {
  return {
      {"index", u64(rec.index), false},
      {"delay_ms", csv_num(rec.delay_ms), false},
      {"msg_bytes", std::to_string(rec.msg_bytes), false},
      {"np", std::to_string(rec.np), false},
      {"ppn", std::to_string(rec.ppn), false},
      {"noise_E_percent", csv_num(rec.noise_E_percent), false},
      {"workload", rec.workload, true},
      {"direction", rec.direction, true},
      {"boundary", rec.boundary, true},
      // String-typed: u64 seeds exceed the 2^53 range double-backed JSON
      // readers preserve, and a rounded seed cannot reproduce its point.
      {"seed", u64(rec.seed), true},
      {"protocol", rec.protocol, true},
      {"v_up_ranks_per_sec", csv_num(rec.v_up_ranks_per_sec), false},
      {"v_down_ranks_per_sec", csv_num(rec.v_down_ranks_per_sec), false},
      {"v_eq2_ranks_per_sec", csv_num(rec.v_eq2_ranks_per_sec), false},
      {"decay_up_us_per_rank", csv_num(rec.decay_up_us_per_rank), false},
      {"survival_up_hops", std::to_string(rec.survival_up_hops), false},
      {"survival_down_hops", std::to_string(rec.survival_down_hops), false},
      {"cycle_us", csv_num(rec.cycle_us), false},
      {"makespan_ms", csv_num(rec.makespan_ms), false},
      {"events_processed", u64(rec.events_processed), false},
      {"peak_events_pending", u64(rec.peak_events_pending), false},
  };
}

std::vector<std::string> record_columns() {
  std::vector<std::string> names;
  for (const RecordField& f : record_fields(SweepRecord{}))
    names.push_back(f.name);
  return names;
}

SweepRecord reduce(const SweepPoint& point, const core::WaveResult& result) {
  SweepRecord rec;
  rec.index = point.index;
  rec.delay_ms = point.delay_ms;
  rec.msg_bytes = point.msg_bytes;
  rec.np = point.np;
  rec.ppn = point.ppn;
  rec.noise_E_percent = point.noise_E_percent;
  rec.workload = to_string(point.workload);
  rec.direction = to_string(point.direction);
  rec.boundary = to_string(point.boundary);
  rec.seed = point.exp.cluster.seed;
  rec.protocol = result.protocol == mpi::WireProtocol::rendezvous
                     ? "rendezvous"
                     : "eager";
  rec.v_up_ranks_per_sec = result.up.speed_ranks_per_sec;
  rec.v_down_ranks_per_sec = result.down.speed_ranks_per_sec;
  rec.v_eq2_ranks_per_sec = result.predicted_speed;
  rec.decay_up_us_per_rank = result.up.decay_us_per_rank;
  rec.survival_up_hops = result.up.survival_hops;
  rec.survival_down_hops = result.down.survival_hops;
  rec.cycle_us = result.measured_cycle.us();
  rec.makespan_ms = result.trace.makespan().ms();
  rec.events_processed = result.events_processed;
  rec.peak_events_pending = result.peak_events_pending;
  return rec;
}

CsvSink::CsvSink(const std::string& path) : writer_(path) {
  writer_.header(record_columns());
}

void CsvSink::write(const SweepRecord& rec) {
  std::vector<std::string> row;
  for (RecordField& f : record_fields(rec)) row.push_back(std::move(f.value));
  writer_.row(row);
}

JsonlSink::JsonlSink(const std::string& path) : writer_(path) {}

void JsonlSink::write(const SweepRecord& rec) {
  std::vector<std::pair<std::string, std::string>> fields;
  for (RecordField& f : record_fields(rec))
    fields.emplace_back(std::move(f.name),
                        f.is_string ? json_str(f.value) : std::move(f.value));
  writer_.object(fields);
}

std::string render_summary(const std::vector<SweepRecord>& records) {
  TextTable table;
  table.columns({"protocol", "points", "median v_up [ranks/s]",
                 "median decay [us/rank]", "median survival [hops]",
                 "events total"});
  for (const char* proto : {"eager", "rendezvous"}) {
    std::vector<double> v, decay, survival;
    std::uint64_t events = 0;
    for (const SweepRecord& r : records) {
      if (r.protocol != proto) continue;
      v.push_back(r.v_up_ranks_per_sec);
      decay.push_back(r.decay_up_us_per_rank);
      survival.push_back(static_cast<double>(r.survival_up_hops));
      events += r.events_processed;
    }
    if (v.empty()) continue;
    table.add_row({proto, std::to_string(v.size()), fmt_fixed(median(v), 1),
                   fmt_fixed(median(decay), 1), fmt_fixed(median(survival), 0),
                   std::to_string(events)});
  }
  if (table.rows() == 0) table.add_row({"(no records)"});
  return table.render();
}

}  // namespace iw::sweep
