#include "sweep/record.hpp"

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "support/stats.hpp"
#include "support/table.hpp"

namespace iw::sweep {
namespace {

// ---- typed accessors ------------------------------------------------------
// One ColumnDef per SweepRecord member: static metadata plus symmetric
// get/set function pointers. The table below is the only place a column
// exists; everything else (sinks, golden parsing, diffing) derives from it.

struct ColumnDef {
  ColumnMeta meta;
  std::string (*get)(const SweepRecord&);
  void (*set)(SweepRecord&, const std::string&);
};

template <typename T>
T parse_full(const std::string& text);

template <typename Parse>
auto checked(const std::string& text, Parse parse) {
  std::size_t consumed = 0;
  auto value = parse(text, &consumed);
  if (consumed != text.size())
    throw std::invalid_argument("trailing garbage in '" + text + "'");
  return value;
}

template <>
std::uint64_t parse_full<std::uint64_t>(const std::string& text) {
  // stoull skips whitespace and accepts a wrapping '-' sign; demand a bare
  // digit up front so "-5" (or " -5") throws instead of wrapping.
  if (text.empty() || text[0] < '0' || text[0] > '9')
    throw std::invalid_argument("unsigned column needs a bare digit string");
  return checked(text, [](const std::string& s, std::size_t* n) {
    return std::stoull(s, n);
  });
}

template <>
std::int64_t parse_full<std::int64_t>(const std::string& text) {
  return checked(text, [](const std::string& s, std::size_t* n) {
    return std::stoll(s, n);
  });
}

template <>
int parse_full<int>(const std::string& text) {
  const long long v = checked(text, [](const std::string& s, std::size_t* n) {
    return std::stoll(s, n);
  });
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max())
    throw std::invalid_argument("value out of int range: " + text);
  return static_cast<int>(v);
}

template <>
double parse_full<double>(const std::string& text) {
  return checked(text, [](const std::string& s, std::size_t* n) {
    return std::stod(s, n);
  });
}

template <auto Member>
std::string get_field(const SweepRecord& rec) {
  using T = std::remove_cvref_t<decltype(rec.*Member)>;
  if constexpr (std::is_same_v<T, std::string>) return rec.*Member;
  else if constexpr (std::is_same_v<T, double>) return csv_num(rec.*Member);
  else return std::to_string(rec.*Member);
}

template <auto Member>
void set_field(SweepRecord& rec, const std::string& text) {
  using T = std::remove_cvref_t<decltype(rec.*Member)>;
  if constexpr (std::is_same_v<T, std::string>) rec.*Member = text;
  else rec.*Member = parse_full<T>(text);
}

template <auto Member>
constexpr ColumnDef col(const char* name, ColumnType type,
                        ColumnTolerance tol, bool json_quoted = false) {
  return ColumnDef{{name, type, tol, json_quoted},
                   &get_field<Member>, &set_field<Member>};
}

constexpr auto kExact = ColumnTolerance::exact;
constexpr auto kApprox = ColumnTolerance::approx;

/// Schema type of an axis column, from its record representation. Enum
/// axes serialize as text and get JSON quoting like any other string.
template <typename T>
constexpr ColumnType axis_column_type() {
  using R = axis_record_t<T>;
  if constexpr (std::is_same_v<R, std::string>) return ColumnType::text;
  else if constexpr (std::is_same_v<R, double>) return ColumnType::f64;
  else if constexpr (std::is_same_v<R, std::int64_t>) return ColumnType::i64;
  else if constexpr (std::is_same_v<R, std::uint64_t>) return ColumnType::u64;
  else {
    static_assert(std::is_same_v<R, int>, "unmapped axis record type");
    return ColumnType::i32;
  }
}

template <typename T>
constexpr bool axis_quoted() {
  return std::is_same_v<axis_record_t<T>, std::string>;
}

const std::vector<ColumnDef>& column_table() {
  static const std::vector<ColumnDef> table = {
      col<&SweepRecord::index>("index", ColumnType::u64, kExact),
// Axis columns come straight from the IW_SWEEP_AXES registry, in axis
// declaration order; all axes are exact-match identity columns.
#define IW_AXIS_COL(field, Type, flag, column, default_)                 \
  col<&SweepRecord::field>(column, axis_column_type<Type>(), kExact,     \
                           axis_quoted<Type>()),
      IW_SWEEP_AXES(IW_AXIS_COL)
#undef IW_AXIS_COL
      col<&SweepRecord::workload>("workload", ColumnType::text, kExact, true),
      col<&SweepRecord::seed>("seed", ColumnType::u64, kExact, true),
      col<&SweepRecord::protocol>("protocol", ColumnType::text, kExact, true),
      col<&SweepRecord::v_up_ranks_per_sec>("v_up_ranks_per_sec",
                                            ColumnType::f64, kApprox),
      col<&SweepRecord::v_down_ranks_per_sec>("v_down_ranks_per_sec",
                                              ColumnType::f64, kApprox),
      col<&SweepRecord::v_eq2_ranks_per_sec>("v_eq2_ranks_per_sec",
                                             ColumnType::f64, kApprox),
      col<&SweepRecord::decay_up_us_per_rank>("decay_up_us_per_rank",
                                              ColumnType::f64, kApprox),
      col<&SweepRecord::survival_up_hops>("survival_up_hops", ColumnType::i32,
                                          kExact),
      col<&SweepRecord::survival_down_hops>("survival_down_hops",
                                            ColumnType::i32, kExact),
      col<&SweepRecord::front_r2_up>("front_r2_up", ColumnType::f64, kApprox),
      col<&SweepRecord::front_rmse_up_us>("front_rmse_up_us", ColumnType::f64,
                                          kApprox),
      col<&SweepRecord::cycle_us>("cycle_us", ColumnType::f64, kApprox),
      col<&SweepRecord::makespan_ms>("makespan_ms", ColumnType::f64, kApprox),
      col<&SweepRecord::eager_demotions>("eager_demotions", ColumnType::u64,
                                         kExact),
// Protocol-counter columns come from the IW_METRIC_COLUMNS registry; all
// are exact-match uint64 counters named after their record member.
#define IW_METRIC_COL(field) \
  col<&SweepRecord::field>(#field, ColumnType::u64, kExact),
      IW_METRIC_COLUMNS(IW_METRIC_COL)
#undef IW_METRIC_COL
      col<&SweepRecord::events_processed>("events_processed", ColumnType::u64,
                                          kExact),
      col<&SweepRecord::peak_events_pending>("peak_events_pending",
                                             ColumnType::u64, kExact),
      col<&SweepRecord::ffwd_skips>("ffwd_skips", ColumnType::u64, kExact),
      col<&SweepRecord::ffwd_time_skipped_us>("ffwd_time_skipped_us",
                                              ColumnType::u64, kExact),
  };
  return table;
}

}  // namespace

const std::vector<ColumnMeta>& record_schema() {
  static const std::vector<ColumnMeta> schema = [] {
    std::vector<ColumnMeta> metas;
    for (const ColumnDef& def : column_table()) metas.push_back(def.meta);
    return metas;
  }();
  return schema;
}

std::optional<std::size_t> column_index(const std::string& name) {
  const auto& table = column_table();
  for (std::size_t i = 0; i < table.size(); ++i)
    if (name == table[i].meta.name) return i;
  return std::nullopt;
}

std::string column_value(const SweepRecord& rec, std::size_t col) {
  return column_table().at(col).get(rec);
}

void set_column(SweepRecord& rec, std::size_t col, const std::string& text) {
  const ColumnDef& def = column_table().at(col);
  try {
    def.set(rec, text);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("column '") + def.meta.name +
                                "': cannot parse '" + text + "': " + e.what());
  }
}

SweepRecord record_from_row(const std::vector<std::string>& row) {
  const auto& table = column_table();
  if (row.size() != table.size())
    throw std::invalid_argument(
        "record row has " + std::to_string(row.size()) + " fields, schema has " +
        std::to_string(table.size()));
  SweepRecord rec;
  for (std::size_t i = 0; i < table.size(); ++i) set_column(rec, i, row[i]);
  return rec;
}

std::vector<RecordField> record_fields(const SweepRecord& rec) {
  std::vector<RecordField> fields;
  fields.reserve(column_table().size());
  for (const ColumnDef& def : column_table())
    fields.push_back({def.meta.name, def.get(rec), def.meta.json_quoted});
  return fields;
}

std::vector<std::string> record_columns() {
  std::vector<std::string> names;
  for (const ColumnMeta& meta : record_schema()) names.push_back(meta.name);
  return names;
}

SweepRecord reduce(const SweepPoint& point, const core::WaveResult& result) {
  SweepRecord rec;
  rec.index = point.index;
#define IW_AXIS_REDUCE(field, Type, flag, column, default_) \
  rec.field = AxisValue<Type>::to_record(point.field);
  IW_SWEEP_AXES(IW_AXIS_REDUCE)
#undef IW_AXIS_REDUCE
  rec.workload = to_string(point.workload);
  rec.seed = point.exp.cluster.seed;
  rec.protocol = result.protocol == mpi::WireProtocol::rendezvous
                     ? "rendezvous"
                     : "eager";
  rec.v_up_ranks_per_sec = result.up.speed_ranks_per_sec;
  rec.v_down_ranks_per_sec = result.down.speed_ranks_per_sec;
  rec.v_eq2_ranks_per_sec = result.predicted_speed;
  rec.decay_up_us_per_rank = result.up.decay_us_per_rank;
  rec.survival_up_hops = result.up.survival_hops;
  rec.survival_down_hops = result.down.survival_hops;
  rec.front_r2_up = result.up.front_fit.r2;
  rec.front_rmse_up_us = result.up.front_rmse_us;
  rec.cycle_us = result.measured_cycle.us();
  rec.makespan_ms = result.trace.makespan().ms();
  rec.eager_demotions = result.eager_demotions;
#define IW_METRIC_REDUCE(field) rec.field = result.field;
  IW_METRIC_COLUMNS(IW_METRIC_REDUCE)
#undef IW_METRIC_REDUCE
  rec.events_processed = result.events_processed;
  rec.peak_events_pending = result.peak_events_pending;
  rec.ffwd_skips = result.ffwd_skips;
  rec.ffwd_time_skipped_us =
      static_cast<std::uint64_t>(result.ffwd_time_skipped.ns() / 1000);
  return rec;
}

CsvSink::CsvSink(const std::string& path) : writer_(path) {
  writer_.header(record_columns());
}

void CsvSink::write(const SweepRecord& rec) {
  std::vector<std::string> row;
  for (RecordField& f : record_fields(rec)) row.push_back(std::move(f.value));
  writer_.row(row);
}

JsonlSink::JsonlSink(const std::string& path) : writer_(path) {}

void JsonlSink::write(const SweepRecord& rec) {
  writer_.raw_line(record_json_line(rec));
}

std::string record_json_line(const SweepRecord& rec) {
  std::vector<std::pair<std::string, std::string>> fields;
  for (RecordField& f : record_fields(rec))
    fields.emplace_back(std::move(f.name),
                        f.is_string ? json_str(f.value) : std::move(f.value));
  return json_object(fields);
}

std::string render_summary(const std::vector<SweepRecord>& records) {
  TextTable table;
  table.columns({"protocol", "points", "median v_up [ranks/s]",
                 "median decay [us/rank]", "median survival [hops]",
                 "events total"});
  for (const char* proto : {"eager", "rendezvous"}) {
    std::vector<double> v, decay, survival;
    std::uint64_t events = 0;
    for (const SweepRecord& r : records) {
      if (r.protocol != proto) continue;
      v.push_back(r.v_up_ranks_per_sec);
      decay.push_back(r.decay_up_us_per_rank);
      survival.push_back(static_cast<double>(r.survival_up_hops));
      events += r.events_processed;
    }
    if (v.empty()) continue;
    table.add_row({proto, std::to_string(v.size()), fmt_fixed(median(v), 1),
                   fmt_fixed(median(decay), 1), fmt_fixed(median(survival), 0),
                   std::to_string(events)});
  }
  if (table.rows() == 0) table.add_row({"(no records)"});
  return table.render();
}

}  // namespace iw::sweep
