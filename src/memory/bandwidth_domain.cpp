#include "memory/bandwidth_domain.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/error.hpp"

namespace iw::memory {
namespace {
// Residue threshold below which a job counts as finished. Completion events
// are scheduled on the integer-nanosecond clock, so up to one nanosecond of
// progress (tens of bytes at tens of GB/s) can be left over purely from
// rounding; anything under this bound is rounding noise, not lost work.
constexpr double kEpsilonBytes = 128.0;
}  // namespace

BandwidthDomain::BandwidthDomain(sim::Engine& engine, double total_Bps,
                                 double per_core_Bps)
    : engine_(engine), total_Bps_(total_Bps), per_core_Bps_(per_core_Bps) {
  IW_REQUIRE(total_Bps > 0.0, "domain bandwidth must be positive");
  IW_REQUIRE(per_core_Bps > 0.0, "per-core bandwidth must be positive");
}

void BandwidthDomain::reset(double total_Bps, double per_core_Bps) {
  IW_REQUIRE(total_Bps > 0.0, "domain bandwidth must be positive");
  IW_REQUIRE(per_core_Bps > 0.0, "per-core bandwidth must be positive");
  total_Bps_ = total_Bps;
  per_core_Bps_ = per_core_Bps;
  jobs_.clear();
  last_update_ = SimTime::zero();
  next_id_ = 0;
  schedule_generation_ = 0;
  jobs_submitted_ = 0;
  bytes_submitted_ = 0;
}

double BandwidthDomain::current_rate() const {
  if (jobs_.empty()) return per_core_Bps_;
  return std::min(per_core_Bps_,
                  total_Bps_ / static_cast<double>(jobs_.size()));
}

Duration BandwidthDomain::solo_time(std::int64_t bytes) const {
  const double rate = std::min(per_core_Bps_, total_Bps_);
  return seconds(static_cast<double>(bytes) / rate);
}

void BandwidthDomain::submit(std::int64_t bytes, sim::EventFn done) {
  IW_REQUIRE(bytes >= 0, "job size must be non-negative");
  ++jobs_submitted_;
  bytes_submitted_ += static_cast<std::uint64_t>(bytes);
  advance_progress();
  jobs_.push_back(
      Job{static_cast<double>(bytes), std::move(done), next_id_++});
  reschedule();
}

void BandwidthDomain::advance_progress() {
  const SimTime now = engine_.now();
  if (jobs_.empty()) {
    last_update_ = now;
    return;
  }
  const double elapsed_s = (now - last_update_).sec();
  if (elapsed_s > 0.0) {
    const double progress = current_rate() * elapsed_s;
    for (auto& job : jobs_)
      job.remaining_bytes = std::max(0.0, job.remaining_bytes - progress);
  }
  last_update_ = now;
}

void BandwidthDomain::reschedule() {
  ++schedule_generation_;
  if (jobs_.empty()) return;

  // Jobs share one rate, so the smallest remaining byte count finishes
  // first. Completed jobs (remaining ~ 0) fire immediately.
  const auto next = std::min_element(
      jobs_.begin(), jobs_.end(), [](const Job& a, const Job& b) {
        return a.remaining_bytes < b.remaining_bytes;
      });
  const double rate = current_rate();
  // Round the completion up to the next nanosecond so the job has always
  // moved at least its remaining bytes when the event fires.
  const double eta_s = next->remaining_bytes / rate;
  const Duration eta =
      next->remaining_bytes <= kEpsilonBytes
          ? Duration::zero()
          : Duration{static_cast<std::int64_t>(std::ceil(eta_s * 1e9))};

  const std::uint64_t generation = schedule_generation_;
  const std::uint64_t job_id = next->id;
  engine_.after(eta, [this, generation, job_id] {
    if (generation != schedule_generation_) return;  // superseded
    advance_progress();
    const auto it = std::find_if(jobs_.begin(), jobs_.end(),
                                 [&](const Job& j) { return j.id == job_id; });
    IW_ASSERT(it != jobs_.end(), "bandwidth job vanished before completion");
    IW_ASSERT(it->remaining_bytes <= kEpsilonBytes,
              "bandwidth job completed with work left");
    auto done = std::move(it->done);
    jobs_.erase(it);
    reschedule();
    done();
  });
}

}  // namespace iw::memory
