#include "memory/roofline.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iw::memory {

double attainable_flops(const RooflineParams& p, double intensity) {
  IW_REQUIRE(intensity >= 0.0, "intensity must be non-negative");
  IW_REQUIRE(p.peak_flops > 0.0 && p.mem_bandwidth_Bps > 0.0,
             "roofline parameters must be positive");
  return std::min(p.peak_flops, p.mem_bandwidth_Bps * intensity);
}

Duration loop_time(const RooflineParams& p, std::int64_t bytes,
                   std::int64_t flops) {
  IW_REQUIRE(bytes >= 0 && flops >= 0, "work must be non-negative");
  const double t_mem = static_cast<double>(bytes) / p.mem_bandwidth_Bps;
  const double t_cpu = static_cast<double>(flops) / p.peak_flops;
  return seconds(std::max(t_mem, t_cpu));
}

}  // namespace iw::memory
