// Roofline-style node-level performance helpers (paper Sec. I-A, II-A).
//
// Used for the analytic model lines in the Fig. 1 reproduction: predicted
// loop performance is the minimum of the compute roof and the bandwidth
// ceiling at the loop's computational intensity.
#pragma once

#include <cstdint>

#include "support/time.hpp"

namespace iw::memory {

struct RooflineParams {
  double peak_flops = 0.0;      ///< compute roof [flop/s]
  double mem_bandwidth_Bps = 0; ///< bandwidth ceiling [byte/s]
};

/// Attainable performance for a loop with `intensity` flop/byte.
[[nodiscard]] double attainable_flops(const RooflineParams& p,
                                      double intensity);

/// Time to process `bytes` of traffic with `flops` arithmetic under the
/// roofline assumption (whichever bottleneck dominates).
[[nodiscard]] Duration loop_time(const RooflineParams& p, std::int64_t bytes,
                                 std::int64_t flops);

}  // namespace iw::memory
