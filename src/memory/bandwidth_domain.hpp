// Processor-sharing memory-bandwidth domain.
//
// Models the node-level saturation behaviour of data-bound code (paper
// Sec. II-A): the ranks of one socket share the memory interface. While n
// jobs are active, each progresses at rate min(per_core_Bps, total_Bps / n).
// With few active jobs each runs at its core-private speed (scalable
// regime); beyond the saturation point they share the socket bandwidth
// (saturated regime). This is exactly the mechanism behind the paper's
// Fig. 1 observation that desynchronized ranks see *better* per-rank
// execution performance than the all-synchronized model predicts: fewer
// concurrent ranks -> more bandwidth each.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "support/time.hpp"

namespace iw::memory {

class BandwidthDomain {
 public:
  /// `total_Bps`: socket memory bandwidth; `per_core_Bps`: the rate a single
  /// core can draw (total/per_core = saturation core count).
  BandwidthDomain(sim::Engine& engine, double total_Bps, double per_core_Bps);

  BandwidthDomain(const BandwidthDomain&) = delete;
  BandwidthDomain& operator=(const BandwidthDomain&) = delete;

  /// Submits a job that must move `bytes` through the domain; `done` fires
  /// when the transfer completes. Jobs are preemptively re-rated whenever
  /// membership changes. `done` is a one-shot move-only continuation.
  void submit(std::int64_t bytes, sim::EventFn done);

  /// Re-arms the domain for another simulation run with (possibly new)
  /// bandwidth parameters, dropping any leftover jobs but keeping the job
  /// vector's capacity. Must be paired with an Engine::reset(): pending
  /// re-rate events are assumed to have been discarded with the calendar.
  void reset(double total_Bps, double per_core_Bps);

  [[nodiscard]] int active_jobs() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] double total_Bps() const { return total_Bps_; }
  [[nodiscard]] double per_core_Bps() const { return per_core_Bps_; }

  /// Lifetime submission counters for the metrics registry (cleared by
  /// reset(), so one run's publish adds exactly that run's traffic).
  [[nodiscard]] std::uint64_t jobs_submitted() const { return jobs_submitted_; }
  [[nodiscard]] std::uint64_t bytes_submitted() const {
    return bytes_submitted_;
  }

  /// Current per-job progress rate in bytes/s.
  [[nodiscard]] double current_rate() const;

  /// Time a transfer of `bytes` would take if it ran alone in the domain.
  [[nodiscard]] Duration solo_time(std::int64_t bytes) const;

 private:
  struct Job {
    double remaining_bytes;
    sim::EventFn done;
    std::uint64_t id;
  };

  void advance_progress();  ///< applies elapsed progress at the current rate
  void reschedule();        ///< re-arms the next-completion event

  sim::Engine& engine_;
  double total_Bps_;
  double per_core_Bps_;
  std::vector<Job> jobs_;
  SimTime last_update_ = SimTime::zero();
  std::uint64_t next_id_ = 0;
  std::uint64_t schedule_generation_ = 0;  ///< invalidates stale events
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t bytes_submitted_ = 0;
};

}  // namespace iw::memory
