// ASCII timeline rendering: rank-vs-time diagrams in the style of the
// paper's Figs. 4-7 and 9. Each row is a rank, each column a time bin;
// the dominant activity in the bin picks the glyph:
//   '.' compute    'D' injected delay    '#' waiting (idle wave)    ' ' done
#pragma once

#include <string>

#include "mpi/trace.hpp"
#include "support/time.hpp"

namespace iw::core {

struct TimelineOptions {
  SimTime from = SimTime::zero();
  SimTime to = SimTime::zero();  ///< zero: trace makespan
  int columns = 100;
  bool socket_separators = false;
  int ranks_per_socket = 0;      ///< needed when socket_separators is set
  bool show_axis = true;
};

/// Renders the trace as a rank-time character grid, highest rank on top
/// (matching the paper's figures).
[[nodiscard]] std::string render_timeline(const mpi::Trace& trace,
                                          const TimelineOptions& options);

}  // namespace iw::core
