// High-level experiment driver: one-call idle-wave experiments.
//
// Bundles cluster assembly, workload construction (1-D ring/chain or 2-D
// halo-exchange grid), delay injection, optional fine-grained noise
// injection, and wave analysis in both directions — the shape of nearly
// every experiment in the paper.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/cluster.hpp"
#include "core/fast_forward.hpp"
#include "core/idle_wave.hpp"
#include "mpi/message.hpp"
#include "workload/grid2d.hpp"
#include "workload/ring.hpp"

namespace iw::core {

struct WaveExperiment {
  ClusterConfig cluster;
  workload::RingSpec ring;
  /// When set, the experiment runs the 2-D halo-exchange workload instead of
  /// the ring; `ring` is then ignored. The wave is probed along the +x/-x
  /// axis of the injection row (ranks are row-major, so hop-walking stays
  /// meaningful), the straightforward 2-D slice of the paper's Eq. 2.
  std::optional<workload::Grid2DSpec> grid;
  std::vector<workload::DelaySpec> delays;
  noise::NoiseSpec injected_noise = noise::NoiseSpec::none();
  /// Threshold below which a wait does not count as "the wave".
  Duration min_idle = milliseconds(0.5);
  /// Analytic fast-forward over silent regions (ring workloads only; see
  /// core/fast_forward.hpp). Off by default: the full event simulation is
  /// the reference semantics, and its engine counters are golden-pinned.
  FfwdMode ffwd = FfwdMode::off;
};

struct WaveResult {
  mpi::Trace trace;
  /// Wave analyses toward higher / lower ranks from the first delay.
  WaveAnalysis up;
  WaveAnalysis down;
  /// Protocol the transport chose for the ring's message size.
  mpi::WireProtocol protocol = mpi::WireProtocol::eager;
  /// Measured steady-state compute-communicate cycle length (from step
  /// markers of a rank the wave reaches last).
  Duration measured_cycle;
  /// Eq. 2 prediction using the measured cycle: sigma*d / cycle.
  double predicted_speed = 0.0;
  /// Injection wall-clock time (begin of the injected segment).
  SimTime injection_time;
  /// Engine counters for the run: total events fired and the calendar's
  /// peak population (simulation-cost figures tracked by bench/perf_engine).
  std::uint64_t events_processed = 0;
  std::size_t peak_events_pending = 0;
  /// Eager-sized sends the transport demoted to rendezvous during the run:
  /// finite-buffer fallbacks plus credit-window stalls. Zero under the
  /// ideal configuration; a sweep observable for the flow-control axes.
  std::uint64_t eager_demotions = 0;
  /// Per-run transport protocol counters (Transport::Stats fields), named
  /// after the IW_METRIC_COLUMNS registry entries that turn them into
  /// sweep-record columns: injections parked behind a full NIC queue,
  /// rendezvous pushes deferred on a busy NIC, and unexpected eager/RTS
  /// arrivals (receive posted after the message landed).
  std::uint64_t nic_backlogged = 0;
  std::uint64_t deferred_pushes = 0;
  std::uint64_t unexpected_eager = 0;
  std::uint64_t unexpected_rts = 0;
  /// Fast-forward accounting, zero when the ffwd path was not taken:
  /// rank-steps whose event simulation was skipped, and the summed
  /// simulated time of the synthesized silent timelines.
  std::uint64_t ffwd_skips = 0;
  Duration ffwd_time_skipped = Duration::zero();
};

/// Runs the experiment. If `delays` is empty the wave analyses stay empty.
[[nodiscard]] WaveResult run_wave_experiment(const WaveExperiment& exp);

/// Reusable experiment driver: one Cluster is recycled across consecutive
/// runs via Cluster::reset(), so a sweep worker pays for the engine
/// calendar slab, transport pools, and process objects once instead of per
/// point. Results are byte-identical to fresh-cluster runs (guarded by the
/// determinism suite). Not thread-safe; sweep workers hold one each.
class WaveRunner {
 public:
  [[nodiscard]] WaveResult run(const WaveExperiment& exp);

 private:
  std::unique_ptr<Cluster> cluster_;
};

/// Mean distance between consecutive step-begin markers of `rank` over
/// steps [from_step, to_step); the steady-state cycle time Texec + Tcomm.
[[nodiscard]] Duration measured_cycle(const mpi::Trace& trace, int rank,
                                      int from_step, int to_step);

/// Begin time of the first injected-delay segment of `rank`; zero when none.
[[nodiscard]] SimTime injection_begin(const mpi::Trace& trace, int rank);

/// Builds a packed ClusterConfig for a ring spec: one rank per node when
/// `ppn1`, otherwise `per_socket` ranks per socket.
[[nodiscard]] ClusterConfig cluster_for_ring(const workload::RingSpec& ring,
                                             bool ppn1 = true,
                                             int per_socket = 10);

}  // namespace iw::core
