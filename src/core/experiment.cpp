#include "core/experiment.hpp"

#include <algorithm>
#include <utility>

#include "core/speed_model.hpp"
#include "support/stats.hpp"
#include "support/error.hpp"

namespace iw::core {

Duration measured_cycle(const mpi::Trace& trace, int rank, int from_step,
                        int to_step) {
  const auto& marks = trace.step_begin(rank);
  IW_REQUIRE(from_step >= 0 && to_step > from_step, "bad step range");
  IW_REQUIRE(static_cast<std::size_t>(to_step) < marks.size(),
             "step range exceeds the trace");
  // Median of consecutive step-begin differences: robust against the few
  // steps inflated by a passing idle wave.
  std::vector<double> diffs;
  diffs.reserve(static_cast<std::size_t>(to_step - from_step));
  for (int s = from_step; s < to_step; ++s)
    diffs.push_back(static_cast<double>(
        (marks[static_cast<std::size_t>(s + 1)] -
         marks[static_cast<std::size_t>(s)])
            .ns()));
  return Duration{static_cast<std::int64_t>(median(diffs) + 0.5)};
}

SimTime injection_begin(const mpi::Trace& trace, int rank) {
  for (const auto& seg : trace.segments(rank))
    if (seg.kind == mpi::SegKind::injected) return seg.begin;
  return SimTime::zero();
}

ClusterConfig cluster_for_ring(const workload::RingSpec& ring, bool ppn1,
                               int per_socket) {
  ClusterConfig config;
  config.topo = ppn1 ? net::TopologySpec::one_rank_per_node(ring.ranks)
                     : net::TopologySpec::packed(ring.ranks, per_socket);
  return config;
}

namespace {

/// Protocol the transport picks for `bytes` under `config` (static size
/// rule; the buffer-capacity fallback does not trigger in bulk-synchronous
/// workloads, whose backlogs drain every step).
mpi::WireProtocol protocol_for(const ClusterConfig& config,
                               std::int64_t bytes) {
  return config.transport.protocol_by_size(bytes,
                                           config.fabric.eager_limit_bytes);
}

/// Copies the per-run transport counters into the result: the demotion
/// observable (eager-sized sends pushed to rendezvous by a finite buffer or
/// exhausted credits) plus the IW_METRIC_COLUMNS protocol counters.
void reduce_transport_stats(WaveResult& result, const Cluster& cluster) {
  const auto& s = cluster.transport_stats();
  result.eager_demotions = s.eager_fallbacks + s.credit_stalls;
  result.nic_backlogged = s.nic_backlogged;
  result.deferred_pushes = s.deferred_pushes;
  result.unexpected_eager = s.unexpected_eager;
  result.unexpected_rts = s.unexpected_rts;
}

WaveResult run_grid_experiment(Cluster& cluster, const WaveExperiment& exp) {
  const workload::Grid2DSpec& grid = *exp.grid;
  const auto programs = workload::build_grid2d(grid, exp.delays);

  WaveResult result{cluster.run(programs, exp.injected_noise),
                    {}, {}, protocol_for(exp.cluster, grid.msg_bytes),
                    Duration::zero(), 0.0, SimTime::zero(),
                    cluster.events_processed(),
                    cluster.peak_events_pending()};
  reduce_transport_stats(result, cluster);
  if (exp.delays.empty()) return result;

  const int inj_rank = exp.delays.front().rank;
  result.injection_time = injection_begin(result.trace, inj_rank);
  const auto [x0, y0] = workload::grid_coords(grid, inj_rank);

  WaveProbe probe;
  probe.injection_rank = inj_rank;
  probe.injection_time = result.injection_time;
  probe.min_idle = exp.min_idle;
  // Ranks are row-major, so hop-walking ±1 traverses the injection row.
  // The probes never wrap (rank±1 modulo np would jump rows on a torus),
  // so they always run under the open-boundary rule, clamped to the row —
  // and on a torus additionally to half the row, before the branches meet.
  probe.boundary = workload::Boundary::open;
  const int wrap_limit =
      grid.boundary == workload::Boundary::periodic
          ? std::max(1, grid.px / 2 - 1)
          : grid.px;

  probe.direction = +1;
  probe.max_hops = std::min(wrap_limit, grid.px - 1 - x0);
  if (probe.max_hops > 0) result.up = analyze_wave(result.trace, probe);
  probe.direction = -1;
  probe.max_hops = std::min(wrap_limit, x0);
  if (probe.max_hops > 0) result.down = analyze_wave(result.trace, probe);

  // Steady-state cycle from the corner rank farthest (Manhattan) from the
  // injection; like the ring path, median over the post-transient steps.
  const int corners[] = {0, grid.ranks() - 1,
                         workload::grid_rank(grid, grid.px - 1, 0),
                         workload::grid_rank(grid, 0, grid.py - 1)};
  int far_rank = 0, far_dist = -1;
  for (const int c : corners) {
    const int dist = workload::grid_distance(grid, inj_rank, c);
    if (dist > far_dist) {
      far_dist = dist;
      far_rank = c;
    }
  }
  if (grid.steps >= 4)
    result.measured_cycle =
        measured_cycle(result.trace, far_rank, 1, grid.steps - 1);

  // Eq. 2 per hop: 4-neighbor halo exchange behaves like the bidirectional
  // d = 1 mode along each grid axis.
  if (result.measured_cycle.ns() > 0)
    result.predicted_speed =
        static_cast<double>(sigma_factor(workload::Direction::bidirectional,
                                         result.protocol,
                                         exp.cluster.transport)) /
        result.measured_cycle.sec();
  return result;
}

/// Runs the ring either through the fast-forward path (when requested and
/// eligible) or the full event simulation; fills the ffwd counters.
mpi::Trace run_ring_trace(Cluster& cluster, const WaveExperiment& exp,
                          std::uint64_t& ffwd_skips,
                          Duration& ffwd_time_skipped) {
  if (exp.ffwd != FfwdMode::off) {
    const FastForwardPlan plan = plan_fast_forward(exp);
    IW_REQUIRE(exp.ffwd != FfwdMode::force || plan.eligible,
               "ffwd=force but the experiment is ineligible: " + plan.reason);
    // auto mode additionally requires a real silent region — fast-
    // forwarding an all-active machine is pure overhead.
    if (plan.eligible &&
        (exp.ffwd == FfwdMode::force ||
         plan.active_count < static_cast<std::size_t>(exp.ring.ranks))) {
      FastForwardResult ff = run_ring_fast_forward(cluster, exp, plan);
      ffwd_skips = ff.skips;
      ffwd_time_skipped = ff.time_skipped;
      return std::move(ff.trace);
    }
  }
  return cluster.run(workload::build_ring(exp.ring, exp.delays),
                     exp.injected_noise);
}

WaveResult run_ring_experiment(Cluster& cluster, const WaveExperiment& exp) {
  std::uint64_t ffwd_skips = 0;
  Duration ffwd_time_skipped;
  WaveResult result{run_ring_trace(cluster, exp, ffwd_skips,
                                   ffwd_time_skipped),
                    {}, {}, mpi::WireProtocol::eager, Duration::zero(), 0.0,
                    SimTime::zero(), cluster.events_processed(),
                    cluster.peak_events_pending()};
  result.ffwd_skips = ffwd_skips;
  result.ffwd_time_skipped = ffwd_time_skipped;
  reduce_transport_stats(result, cluster);

  result.protocol = protocol_for(exp.cluster, exp.ring.msg_bytes);

  if (exp.delays.empty()) return result;

  const int inj_rank = exp.delays.front().rank;
  result.injection_time = injection_begin(result.trace, inj_rank);

  WaveProbe probe;
  probe.injection_rank = inj_rank;
  probe.injection_time = result.injection_time;
  probe.min_idle = exp.min_idle;
  probe.boundary = exp.ring.boundary;

  // A wave moving in *both* directions exists for bidirectional
  // communication and for rendezvous (where the sender toward the delayed
  // rank blocks too). On a periodic ring the probes must stop before the
  // meeting point (both-ways) or before wrapping into the probed region
  // (one-way), otherwise the front fit mixes the two branches.
  const bool both_ways =
      exp.ring.direction == workload::Direction::bidirectional ||
      result.protocol == mpi::WireProtocol::rendezvous;
  const int n = exp.ring.ranks;
  if (exp.ring.boundary == workload::Boundary::periodic)
    probe.max_hops = both_ways ? std::max(1, n / 2 - 1) : n - 1;

  probe.direction = +1;
  result.up = analyze_wave(result.trace, probe);
  if (both_ways || exp.ring.boundary == workload::Boundary::open) {
    probe.direction = -1;
    result.down = analyze_wave(result.trace, probe);
  }

  // Steady-state cycle: median step length on the rank farthest from the
  // injection, over all steps past the start-up transient. The median is
  // robust against the handful of steps the wave inflates.
  const int far_rank =
      (inj_rank + exp.ring.ranks / 2) % exp.ring.ranks;
  if (exp.ring.steps >= 4)
    result.measured_cycle =
        measured_cycle(result.trace, far_rank, 1, exp.ring.steps - 1);

  if (result.measured_cycle.ns() > 0) {
    const int sigma = sigma_factor(exp.ring.direction, result.protocol,
                                   exp.cluster.transport);
    result.predicted_speed =
        static_cast<double>(sigma) *
        static_cast<double>(exp.ring.distance) / result.measured_cycle.sec();
  }
  return result;
}

WaveResult run_on(Cluster& cluster, const WaveExperiment& exp) {
  return exp.grid ? run_grid_experiment(cluster, exp)
                  : run_ring_experiment(cluster, exp);
}

}  // namespace

WaveResult run_wave_experiment(const WaveExperiment& exp) {
  Cluster cluster(exp.cluster);
  return run_on(cluster, exp);
}

WaveResult WaveRunner::run(const WaveExperiment& exp) {
  if (cluster_ == nullptr) {
    cluster_ = std::make_unique<Cluster>(exp.cluster);
  } else {
    cluster_->reset(exp.cluster);
  }
  return run_on(*cluster_, exp);
}

}  // namespace iw::core
