// Cluster: the one-call assembly of engine + topology + fabric + noise +
// processes. This is the main entry point of the idlewave public API:
//
//   core::ClusterConfig config;
//   config.topo = net::TopologySpec::one_rank_per_node(18);
//   core::Cluster cluster(config);
//   mpi::Trace trace = cluster.run(workload::build_ring(spec, delays));
//
// A Cluster instance executes one simulation per arming: the engine's clock
// cannot be rewound mid-run, but reset() re-arms the whole assembly for the
// next run while recycling every pool — the calendar slab, the transport's
// rank queues and rendezvous slab, the process and bandwidth-domain
// objects. Sweeps run thousands of points through one Cluster this way
// (see core::WaveRunner) instead of reconstructing the world per point. A
// reset cluster is byte-for-byte indistinguishable from a fresh one; the
// determinism suite guards that equivalence.
//
// Machine-scale layout: per-rank state lives in struct-of-arrays storage —
// trace rows index into shared slabs (mpi::Trace), every process's request
// window is a slice of one shared request slab sized exactly from the
// programs' Program::max_window_requests(), and Process/BandwidthDomain
// objects come from chunked object pools with stable addresses. The
// memory-per-rank budget this buys is surfaced as peak_bytes_per_rank().
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "memory/bandwidth_domain.hpp"
#include "mpi/process.hpp"
#include "mpi/request.hpp"
#include "mpi/trace.hpp"
#include "mpi/transport.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "noise/system_profiles.hpp"
#include "sim/engine.hpp"
#include "support/object_pool.hpp"

namespace iw::obs {
class MetricsRegistry;
class Tracer;
}  // namespace iw::obs

namespace iw::core {

/// Socket-level memory system parameters, enabling OpMemWork phases.
/// Defaults match the paper's Ivy Bridge sockets: bmem ~ 40 GB/s, and a
/// single core drawing ~1/6 of that (the paper observes PPN=1 node
/// performance at "about 1/6 of the saturated case").
struct MemorySystem {
  double socket_bandwidth_Bps = 40e9;
  double core_bandwidth_Bps = 6.7e9;
};

struct ClusterConfig {
  net::TopologySpec topo;
  net::FabricProfile fabric = net::FabricProfile::infiniband_qdr();
  noise::NoiseSpec system_noise = noise::NoiseSpec::none();
  mpi::TransportConfig transport;
  std::optional<MemorySystem> memory;  ///< required for memory-bound work
  std::uint64_t seed = 0x1D1E57A7Eull;  // "idle state"
  /// Optional protocol flight recorder, armed through Engine, Transport and
  /// every Process for the run. Null (the default) costs nothing on the hot
  /// path. Non-owning; must outlive the run.
  obs::Tracer* tracer = nullptr;
  /// Optional metrics registry; when set, run() publishes the engine,
  /// transport, bandwidth-domain and tracer counters into it after the run.
  /// Non-owning; must outlive the run. Not synchronized — concurrent
  /// harnesses (sweep workers) publish through their own collector instead.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One pre-scheduled send posted on behalf of a rank outside the
/// fast-forward active set (see Cluster::run_fast_forward).
struct GhostSend {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::int64_t bytes = 0;
};

/// A batch of GhostSends posted at one simulated time: entries
/// [first, first + count) of the ghost-send array, in program order.
struct GhostPost {
  SimTime when;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs one program per rank to completion and returns the trace.
  /// `injected_noise` adds a second per-phase noise source on every rank —
  /// the paper's fine-grained exponential injection with mean E*Texec.
  /// Callable once per construction/reset().
  mpi::Trace run(const std::vector<mpi::Program>& programs,
                 const noise::NoiseSpec& injected_noise =
                     noise::NoiseSpec::none());

  /// Fast-forward run over an *active subset* of ranks: programs[r] is the
  /// rank's program, or nullptr for a silent rank that is provably outside
  /// every delay/boundary light cone. Silent ranks get no Process, no
  /// request slice, and no trace reservation — the analytic layer
  /// (core::run_ring_fast_forward) synthesizes their rows afterwards. The
  /// rim of the active set still receives messages from its silent
  /// neighbors; those arrive as the pre-scheduled `ghost_posts`, each
  /// posting a batch of `ghost_sends` through the transport at the ghost
  /// rank's analytically known send time. Both spans must stay alive for
  /// the duration of the call. Requires the fast-forward eligibility
  /// envelope (no noise, no memory domains, no tracer); callable once per
  /// construction/reset().
  mpi::Trace run_fast_forward(const std::vector<const mpi::Program*>& programs,
                              std::span<const GhostSend> ghost_sends,
                              std::span<const GhostPost> ghost_posts);

  /// Re-arms the cluster for another run under a (possibly different)
  /// configuration. The engine calendar, transport pools, and the process
  /// and domain objects are recycled; behaviour is identical to a freshly
  /// constructed Cluster with the same config.
  void reset(ClusterConfig config);

  [[nodiscard]] const net::Topology& topology() const { return topo_; }
  [[nodiscard]] const mpi::Transport::Stats& transport_stats() const {
    return transport_.stats();
  }
  [[nodiscard]] mpi::Transport::PoolStats transport_pool_stats() const {
    return transport_.pool_stats();
  }
  [[nodiscard]] std::uint64_t events_processed() const {
    return engine_.events_processed();
  }
  [[nodiscard]] std::size_t peak_events_pending() const {
    return engine_.peak_events_pending();
  }

  /// Simulation-state bytes per rank of the last run: trace slabs, request
  /// slab, process/domain pools, the rank-indexed wiring tables, and the
  /// topology's classification tables. The scale bench regression-gates
  /// this against the fixed per-rank budget.
  [[nodiscard]] double peak_bytes_per_rank() const {
    return peak_bytes_per_rank_;
  }

  /// End-to-end one-message communication time between two ranks, matching
  /// the protocol the transport would pick — the `Tcomm` for Eq. 2.
  [[nodiscard]] Duration message_time(int src, int dst,
                                      std::int64_t bytes) const;

 private:
  /// Binds pool process `slot` to `rank`: rebinds an existing object or
  /// constructs a new one in place. Stable addresses — never invalidates
  /// previously bound processes.
  mpi::Process& bind_process(std::size_t slot, int rank, mpi::Trace& trace);

  void wire_domains();
  void publish_metrics();
  void record_footprint(const mpi::Trace& trace);

  ClusterConfig config_;
  sim::Engine engine_;
  net::Topology topo_;
  mpi::Transport transport_;
  support::ObjectPool<memory::BandwidthDomain> domains_;
  std::size_t domains_in_use_ = 0;
  support::ObjectPool<mpi::Process> processes_;
  std::size_t procs_in_use_ = 0;
  std::vector<mpi::Request> request_slab_;    ///< all ranks' request windows
  std::vector<mpi::Process*> process_table_;  ///< rank-indexed hot-path wiring
  std::vector<memory::BandwidthDomain*> domain_table_;
  double peak_bytes_per_rank_ = 0.0;
  bool ran_ = false;
};

}  // namespace iw::core
