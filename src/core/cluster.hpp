// Cluster: the one-call assembly of engine + topology + fabric + noise +
// processes. This is the main entry point of the idlewave public API:
//
//   core::ClusterConfig config;
//   config.topo = net::TopologySpec::one_rank_per_node(18);
//   core::Cluster cluster(config);
//   mpi::Trace trace = cluster.run(workload::build_ring(spec, delays));
//
// A Cluster instance executes one simulation per arming: the engine's clock
// cannot be rewound mid-run, but reset() re-arms the whole assembly for the
// next run while recycling every pool — the calendar slab, the transport's
// rank queues and rendezvous slab, the process and bandwidth-domain
// objects. Sweeps run thousands of points through one Cluster this way
// (see core::WaveRunner) instead of reconstructing the world per point. A
// reset cluster is byte-for-byte indistinguishable from a fresh one; the
// determinism suite guards that equivalence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "memory/bandwidth_domain.hpp"
#include "mpi/process.hpp"
#include "mpi/trace.hpp"
#include "mpi/transport.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "noise/system_profiles.hpp"
#include "sim/engine.hpp"

namespace iw::obs {
class MetricsRegistry;
class Tracer;
}  // namespace iw::obs

namespace iw::core {

/// Socket-level memory system parameters, enabling OpMemWork phases.
/// Defaults match the paper's Ivy Bridge sockets: bmem ~ 40 GB/s, and a
/// single core drawing ~1/6 of that (the paper observes PPN=1 node
/// performance at "about 1/6 of the saturated case").
struct MemorySystem {
  double socket_bandwidth_Bps = 40e9;
  double core_bandwidth_Bps = 6.7e9;
};

struct ClusterConfig {
  net::TopologySpec topo;
  net::FabricProfile fabric = net::FabricProfile::infiniband_qdr();
  noise::NoiseSpec system_noise = noise::NoiseSpec::none();
  mpi::TransportConfig transport;
  std::optional<MemorySystem> memory;  ///< required for memory-bound work
  std::uint64_t seed = 0x1D1E57A7Eull;  // "idle state"
  /// Optional protocol flight recorder, armed through Engine, Transport and
  /// every Process for the run. Null (the default) costs nothing on the hot
  /// path. Non-owning; must outlive the run.
  obs::Tracer* tracer = nullptr;
  /// Optional metrics registry; when set, run() publishes the engine,
  /// transport, bandwidth-domain and tracer counters into it after the run.
  /// Non-owning; must outlive the run. Not synchronized — concurrent
  /// harnesses (sweep workers) publish through their own collector instead.
  obs::MetricsRegistry* metrics = nullptr;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs one program per rank to completion and returns the trace.
  /// `injected_noise` adds a second per-phase noise source on every rank —
  /// the paper's fine-grained exponential injection with mean E*Texec.
  /// Callable once per construction/reset().
  mpi::Trace run(const std::vector<mpi::Program>& programs,
                 const noise::NoiseSpec& injected_noise =
                     noise::NoiseSpec::none());

  /// Re-arms the cluster for another run under a (possibly different)
  /// configuration. The engine calendar, transport pools, and the process
  /// and domain objects are recycled; behaviour is identical to a freshly
  /// constructed Cluster with the same config.
  void reset(ClusterConfig config);

  [[nodiscard]] const net::Topology& topology() const { return topo_; }
  [[nodiscard]] const mpi::Transport::Stats& transport_stats() const {
    return transport_.stats();
  }
  [[nodiscard]] mpi::Transport::PoolStats transport_pool_stats() const {
    return transport_.pool_stats();
  }
  [[nodiscard]] std::uint64_t events_processed() const {
    return engine_.events_processed();
  }
  [[nodiscard]] std::size_t peak_events_pending() const {
    return engine_.peak_events_pending();
  }

  /// End-to-end one-message communication time between two ranks, matching
  /// the protocol the transport would pick — the `Tcomm` for Eq. 2.
  [[nodiscard]] Duration message_time(int src, int dst,
                                      std::int64_t bytes) const;

 private:
  ClusterConfig config_;
  sim::Engine engine_;
  net::Topology topo_;
  mpi::Transport transport_;
  std::vector<std::unique_ptr<memory::BandwidthDomain>> domains_;
  std::vector<std::unique_ptr<mpi::Process>> processes_;
  std::vector<mpi::Process*> process_table_;  ///< rank-indexed hot-path wiring
  std::vector<memory::BandwidthDomain*> domain_table_;
  bool ran_ = false;
};

}  // namespace iw::core
