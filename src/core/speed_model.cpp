#include "core/speed_model.hpp"

#include "support/error.hpp"

namespace iw::core {

int sigma_factor(workload::Direction direction, mpi::WireProtocol protocol) {
  const bool bidi_rendezvous =
      direction == workload::Direction::bidirectional &&
      protocol == mpi::WireProtocol::rendezvous;
  return bidi_rendezvous ? 2 : 1;
}

double v_silent(int sigma, int distance, Duration texec, Duration tcomm) {
  IW_REQUIRE(sigma == 1 || sigma == 2, "sigma must be 1 or 2");
  IW_REQUIRE(distance >= 1, "distance must be >= 1");
  const Duration cycle = texec + tcomm;
  IW_REQUIRE(cycle.ns() > 0, "cycle time must be positive");
  return static_cast<double>(sigma) * static_cast<double>(distance) /
         cycle.sec();
}

double v_silent(workload::Direction direction, mpi::WireProtocol protocol,
                int distance, Duration texec, Duration tcomm) {
  return v_silent(sigma_factor(direction, protocol), distance, texec, tcomm);
}

}  // namespace iw::core
