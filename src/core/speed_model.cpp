#include "core/speed_model.hpp"

#include "support/error.hpp"

namespace iw::core {

int sigma_factor(workload::Direction direction, mpi::WireProtocol protocol) {
  const bool bidi_rendezvous =
      direction == workload::Direction::bidirectional &&
      protocol == mpi::WireProtocol::rendezvous;
  return bidi_rendezvous ? 2 : 1;
}

int sigma_factor(workload::Direction direction, mpi::WireProtocol protocol,
                 const mpi::TransportConfig& config) {
  const bool coupled_push =
      config.rendezvous.flavor == mpi::RendezvousFlavor::two_sided &&
      config.rendezvous.pipelining == mpi::RendezvousPipelining::deferred_push;
  if (!coupled_push) return 1;
  return sigma_factor(direction, protocol);
}

double v_silent(int sigma, int distance, Duration texec, Duration tcomm) {
  IW_REQUIRE(sigma == 1 || sigma == 2, "sigma must be 1 or 2");
  IW_REQUIRE(distance >= 1, "distance must be >= 1");
  const Duration cycle = texec + tcomm;
  IW_REQUIRE(cycle.ns() > 0, "cycle time must be positive");
  return static_cast<double>(sigma) * static_cast<double>(distance) /
         cycle.sec();
}

double v_silent(workload::Direction direction, mpi::WireProtocol protocol,
                int distance, Duration texec, Duration tcomm) {
  return v_silent(sigma_factor(direction, protocol), distance, texec, tcomm);
}

}  // namespace iw::core
