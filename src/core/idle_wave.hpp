// Idle-wave analysis: extracting the paper's observables from traces.
//
// An injected one-off delay shows up on other ranks as long waiting periods
// in WaitAll — the "idle wave". This module turns raw traces into:
//   * per-rank idle periods (filtered by a minimum duration),
//   * the wave front: per-rank arrival time and local idle amplitude,
//   * the propagation speed (ranks/s) via a least-squares front fit,
//   * the decay rate beta (us/rank) via an amplitude fit (paper Fig. 8),
//   * the survival distance (hops until the wave fell below threshold).
#pragma once

#include <optional>
#include <vector>

#include "mpi/trace.hpp"
#include "support/stats.hpp"
#include "support/time.hpp"
#include "workload/ring.hpp"

namespace iw::core {

/// A contiguous waiting period of one rank.
struct IdlePeriod {
  int rank = 0;
  SimTime begin;
  SimTime end;
  std::int32_t step = -1;

  [[nodiscard]] Duration duration() const { return end - begin; }
};

/// All idle periods of `rank` no shorter than `min_duration`.
[[nodiscard]] std::vector<IdlePeriod> idle_periods(const mpi::Trace& trace,
                                                   int rank,
                                                   Duration min_duration);

/// The wave as observed at one rank.
struct WaveObservation {
  int rank = 0;
  int hops = 0;           ///< distance from the injection rank (boundary-aware)
  bool reached = false;   ///< did a qualifying idle period occur?
  SimTime arrival;        ///< begin of the first qualifying idle period
  Duration amplitude;     ///< duration of that idle period
};

struct WaveProbe {
  int injection_rank = 0;
  SimTime injection_time = SimTime::zero();
  /// Idle periods shorter than this do not count as "the wave" (filters
  /// regular communication delays and noise-scale waits).
  Duration min_idle = milliseconds(0.5);
  /// +1: analyze the wave moving toward higher ranks; -1: toward lower.
  int direction = +1;
  workload::Boundary boundary = workload::Boundary::open;
  /// Limits how many hops to follow; 0 = to the boundary (open) or once
  /// around minus one (periodic).
  int max_hops = 0;
};

struct WaveAnalysis {
  std::vector<WaveObservation> observations;
  /// Arrival-time fit over reached ranks: seconds vs hops.
  LineFit front_fit;
  /// Propagation speed in ranks per second (1/front slope); 0 if the wave
  /// reached fewer than two ranks.
  double speed_ranks_per_sec = 0.0;
  /// Amplitude fit over reached ranks: microseconds vs hops.
  LineFit amplitude_fit;
  /// Decay rate beta >= 0 in us/rank (paper Fig. 8): how much idle duration
  /// the wave loses per hop.
  double decay_us_per_rank = 0.0;
  /// Hops the wave survived (count of consecutively reached ranks).
  int survival_hops = 0;
  /// Total observations the wave reached (>= survival_hops; a wave can skip
  /// a rank and reappear past it without extending survival).
  int reached_count = 0;
  /// True when speed_ranks_per_sec came from a real fit: >= 2 reached ranks
  /// and a positive front slope. All edge cases — wave never arrives,
  /// single-observation front, every wait below min_idle — leave this false
  /// with zeroed speed/decay instead of NaN.
  bool front_valid = false;
  /// RMS residual of the front fit in microseconds: how far arrivals
  /// scatter around the fitted line. Principled basis for verification
  /// tolerances (a tolerance far below the residual is noise-chasing).
  double front_rmse_us = 0.0;
  /// RMS residual of the amplitude fit in microseconds.
  double amplitude_rmse_us = 0.0;
};

/// Follows the wave from the injection outward in `probe.direction` and
/// fits front and amplitude. With periodic boundaries ranks wrap.
[[nodiscard]] WaveAnalysis analyze_wave(const mpi::Trace& trace,
                                        const WaveProbe& probe);

/// Convenience: the rank `hops` away from `origin` in `direction` under the
/// boundary rule; nullopt when walking off an open chain.
[[nodiscard]] std::optional<int> rank_at_hops(int origin, int hops,
                                              int direction, int ranks,
                                              workload::Boundary boundary);

}  // namespace iw::core
