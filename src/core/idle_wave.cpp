#include "core/idle_wave.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iw::core {

std::vector<IdlePeriod> idle_periods(const mpi::Trace& trace, int rank,
                                     Duration min_duration) {
  std::vector<IdlePeriod> periods;
  for (const auto& seg : trace.segments(rank)) {
    if (seg.kind != mpi::SegKind::wait) continue;
    if (seg.duration() < min_duration) continue;
    periods.push_back(IdlePeriod{rank, seg.begin, seg.end, seg.step});
  }
  return periods;
}

std::optional<int> rank_at_hops(int origin, int hops, int direction,
                                int ranks, workload::Boundary boundary) {
  IW_REQUIRE(ranks > 0, "need at least one rank");
  IW_REQUIRE(direction == 1 || direction == -1, "direction must be +-1");
  const int raw = origin + direction * hops;
  if (boundary == workload::Boundary::periodic)
    return ((raw % ranks) + ranks) % ranks;
  if (raw < 0 || raw >= ranks) return std::nullopt;
  return raw;
}

WaveAnalysis analyze_wave(const mpi::Trace& trace, const WaveProbe& probe) {
  WaveAnalysis analysis;
  const int n = trace.ranks();

  int max_hops = probe.max_hops;
  if (max_hops <= 0)
    max_hops = n - 1;  // open: clipped by rank_at_hops; periodic: once around

  bool front_broken = false;
  for (int hops = 1; hops <= max_hops; ++hops) {
    const auto rank =
        rank_at_hops(probe.injection_rank, hops, probe.direction, n,
                     probe.boundary);
    if (!rank) break;  // walked off an open chain

    WaveObservation obs;
    obs.rank = *rank;
    obs.hops = hops;
    // First wave-attributable idle period, scanned straight off the trace
    // (no per-rank vector materialization — at machine scale this loop
    // visits up to every rank). The period must *end* after the injection
    // began (a begin-time comparison would race with per-rank noise skew:
    // the neighbor may enter its waiting phase microseconds before the
    // delayed rank starts the injected segment).
    for (const auto& seg : trace.segments(*rank)) {
      if (seg.kind != mpi::SegKind::wait) continue;
      if (seg.duration() < probe.min_idle) continue;
      if (seg.end <= probe.injection_time) continue;
      obs.reached = true;
      obs.arrival = seg.begin;
      obs.amplitude = seg.duration();
      break;
    }
    if (obs.reached && !front_broken) ++analysis.survival_hops;
    if (!obs.reached) front_broken = true;
    analysis.observations.push_back(obs);
  }

  std::vector<double> hops_x, arrival_y, amp_y;
  for (const auto& obs : analysis.observations) {
    if (!obs.reached) continue;
    hops_x.push_back(static_cast<double>(obs.hops));
    arrival_y.push_back(obs.arrival.sec());
    amp_y.push_back(obs.amplitude.us());
  }

  analysis.reached_count = static_cast<int>(hops_x.size());

  analysis.front_fit = fit_line(hops_x, arrival_y);
  if (analysis.front_fit.valid && analysis.front_fit.slope > 0.0) {
    analysis.speed_ranks_per_sec = 1.0 / analysis.front_fit.slope;
    analysis.front_valid = true;
  }
  analysis.front_rmse_us = analysis.front_fit.rmse * 1e6;  // seconds -> us

  analysis.amplitude_fit = fit_line(hops_x, amp_y);
  if (analysis.amplitude_fit.valid)
    analysis.decay_us_per_rank = std::max(0.0, -analysis.amplitude_fit.slope);
  analysis.amplitude_rmse_us = analysis.amplitude_fit.rmse;

  return analysis;
}

}  // namespace iw::core
