#include "core/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/units.hpp"

namespace iw::core {
namespace {

/// Priority of a segment kind when several overlap one bin: injected delay
/// wins over waiting, waiting over compute.
int glyph_priority(mpi::SegKind kind) {
  switch (kind) {
    case mpi::SegKind::injected: return 3;
    case mpi::SegKind::wait: return 2;
    case mpi::SegKind::compute: return 1;
  }
  return 0;
}

char glyph_for(mpi::SegKind kind) {
  switch (kind) {
    case mpi::SegKind::injected: return 'D';
    case mpi::SegKind::wait: return '#';
    case mpi::SegKind::compute: return '.';
  }
  return '?';
}

}  // namespace

std::string render_timeline(const mpi::Trace& trace,
                            const TimelineOptions& options) {
  IW_REQUIRE(options.columns > 0, "timeline needs at least one column");
  const SimTime from = options.from;
  const SimTime to =
      options.to > SimTime::zero() ? options.to : trace.makespan();
  IW_REQUIRE(to > from, "timeline window must be non-empty");
  const Duration window = to - from;
  const double bin_ns = static_cast<double>(window.ns()) /
                        static_cast<double>(options.columns);

  std::ostringstream out;
  for (int rank = trace.ranks() - 1; rank >= 0; --rank) {
    if (options.socket_separators && options.ranks_per_socket > 0 &&
        rank != trace.ranks() - 1 &&
        (rank + 1) % options.ranks_per_socket == 0) {
      out << "     " << std::string(static_cast<std::size_t>(options.columns),
                                    '-')
          << '\n';
    }

    std::vector<char> row(static_cast<std::size_t>(options.columns), ' ');
    std::vector<int> priority(static_cast<std::size_t>(options.columns), 0);
    for (const auto& seg : trace.segments(rank)) {
      if (seg.end <= from || seg.begin >= to) continue;
      const double b0 = static_cast<double>((std::max(seg.begin, from) - from).ns());
      const double b1 = static_cast<double>((std::min(seg.end, to) - from).ns());
      auto c0 = static_cast<std::size_t>(b0 / bin_ns);
      auto c1 = static_cast<std::size_t>((b1 - 1.0) / bin_ns);
      c0 = std::min(c0, static_cast<std::size_t>(options.columns - 1));
      c1 = std::min(c1, static_cast<std::size_t>(options.columns - 1));
      const int prio = glyph_priority(seg.kind);
      for (std::size_t c = c0; c <= c1; ++c) {
        if (prio > priority[c]) {
          priority[c] = prio;
          row[c] = glyph_for(seg.kind);
        }
      }
    }

    out << (rank < 10 ? "  " : rank < 100 ? " " : "") << rank << " |";
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
    out << '\n';
  }

  if (options.show_axis) {
    out << "     " << std::string(static_cast<std::size_t>(options.columns),
                                  '=')
        << '\n';
    out << "     t = " << fmt_duration(from - SimTime::zero()) << " ... "
        << fmt_duration(to - SimTime::zero()) << "  ('.' compute, '#' wait, "
        << "'D' injected delay)\n";
  }
  return out.str();
}

}  // namespace iw::core
