// Trace export: CSV emission of raw traces and step positions for external
// analysis/plotting (gnuplot, pandas), mirroring what the paper extracts
// from Intel Trace Analyzer recordings.
#pragma once

#include <iosfwd>
#include <string>

#include "mpi/trace.hpp"

namespace iw::core {

/// Writes all segments as CSV rows:
/// rank,kind,begin_ns,end_ns,duration_ns,step,noise_ns
void write_segments_csv(const mpi::Trace& trace, std::ostream& out);
void write_segments_csv(const mpi::Trace& trace, const std::string& path);

/// Writes per-rank step-begin wallclock positions (the Fig. 2 markers):
/// step,rank,begin_ns
void write_step_positions_csv(const mpi::Trace& trace, std::ostream& out);
void write_step_positions_csv(const mpi::Trace& trace,
                              const std::string& path);

}  // namespace iw::core
