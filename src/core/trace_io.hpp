// Trace export: CSV emission of raw traces and step positions for external
// analysis/plotting (gnuplot, pandas), mirroring what the paper extracts
// from Intel Trace Analyzer recordings — plus Chrome-trace JSON for the
// protocol flight recorder (chrome://tracing, Perfetto).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mpi/trace.hpp"
#include "obs/tracer.hpp"

namespace iw::core {

/// Writes all segments as CSV rows:
/// rank,kind,begin_ns,end_ns,duration_ns,step,noise_ns
void write_segments_csv(const mpi::Trace& trace, std::ostream& out);
void write_segments_csv(const mpi::Trace& trace, const std::string& path);

/// Writes per-rank step-begin wallclock positions (the Fig. 2 markers):
/// step,rank,begin_ns
void write_step_positions_csv(const mpi::Trace& trace, std::ostream& out);
void write_step_positions_csv(const mpi::Trace& trace,
                              const std::string& path);

/// Writes a Chrome-trace ("Trace Event Format") JSON file loadable by
/// chrome://tracing and Perfetto. One track (tid) per rank carries the
/// trace's segments as complete ("X") events plus every flight-recorder
/// record of that rank as an instant ("i") event; engine-level records
/// (rank < 0) land on an extra "engine" track. Protocol send records are
/// connected to their matching arrival on the peer track by flow arrows
/// ("s"/"f"), matched FIFO per (src, dst, message kind, size) — the same
/// order the wire preserves. Arrivals whose send record was evicted from
/// the recorder ring stay arrowless; timestamps are microseconds at
/// nanosecond resolution, monotone per track. `records` must be in record
/// order (obs::Tracer::drain_ordered()).
void write_chrome_trace(const mpi::Trace& trace,
                        const std::vector<obs::TraceRecord>& records,
                        std::ostream& out);
void write_chrome_trace(const mpi::Trace& trace,
                        const std::vector<obs::TraceRecord>& records,
                        const std::string& path);

}  // namespace iw::core
