#include "core/fast_forward.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "workload/ring.hpp"

namespace iw::core {
namespace {

/// The topology's translational period, computed from the spec (same value
/// as Topology::pattern_period(), without building the rank tables).
int pattern_period_of(const net::TopologySpec& spec) {
  const int per_socket = spec.ranks_per_socket > 0 ? spec.ranks_per_socket
                                                   : spec.cores_per_socket;
  int period = per_socket * spec.sockets_per_node;
  if (spec.nodes_per_switch > 0) {
    period *= spec.nodes_per_switch;
    if (spec.switches_per_island > 0) period *= spec.switches_per_island;
  }
  return period;
}

void mark_cone(std::vector<std::uint8_t>& active, int center, int radius,
               workload::Boundary boundary) {
  const int np = static_cast<int>(active.size());
  for (int off = -radius; off <= radius; ++off) {
    int r = center + off;
    if (boundary == workload::Boundary::periodic) {
      r = ((r % np) + np) % np;
    } else if (r < 0 || r >= np) {
      continue;
    }
    active[static_cast<std::size_t>(r)] = 1;
  }
}

/// Content equality of two traces (slab layout is irrelevant): the
/// byte-identity contract of the fast-forward path.
[[maybe_unused]] bool traces_equal(const mpi::Trace& a, const mpi::Trace& b) {
  if (a.ranks() != b.ranks()) return false;
  for (int r = 0; r < a.ranks(); ++r) {
    if (a.finish(r) != b.finish(r)) return false;
    const auto sa = a.segments(r);
    const auto sb = b.segments(r);
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].kind != sb[i].kind || sa[i].begin != sb[i].begin ||
          sa[i].end != sb[i].end || sa[i].step != sb[i].step ||
          sa[i].noise != sb[i].noise)
        return false;
    }
    const auto ma = a.step_begin(r);
    const auto mb = b.step_begin(r);
    if (!std::equal(ma.begin(), ma.end(), mb.begin(), mb.end())) return false;
  }
  return true;
}

/// Audit-build cross-check: at small np, re-run the experiment through the
/// full event simulation and require the synthesized trace to match it
/// exactly. The threshold keeps audit sweeps affordable; the scale bench
/// exercises the identity explicitly at its smallest point.
[[maybe_unused]] void audit_cross_check(const WaveExperiment& exp,
                                        const mpi::Trace& ffwd) {
  if (exp.ring.ranks > 2048) return;
  ClusterConfig config = exp.cluster;
  config.metrics = nullptr;  // the real run already published
  config.tracer = nullptr;
  Cluster full(config);
  const mpi::Trace reference =
      full.run(workload::build_ring(exp.ring, exp.delays), exp.injected_noise);
  IW_CHECK(traces_equal(ffwd, reference),
           "fast-forward trace diverges from the full simulation");
}

}  // namespace

FfwdMode ffwd_mode_from_string(std::string_view s) {
  if (s == "off") return FfwdMode::off;
  if (s == "auto") return FfwdMode::auto_;
  if (s == "force") return FfwdMode::force;
  IW_REQUIRE(false, "unknown ffwd mode '" + std::string(s) +
                        "' (expected off|auto|force)");
  return FfwdMode::off;  // unreachable
}

FastForwardPlan plan_fast_forward(const WaveExperiment& exp) {
  FastForwardPlan plan;
  const workload::RingSpec& ring = exp.ring;
  const int np = ring.ranks;
  plan.period = pattern_period_of(exp.cluster.topo);
  const int neighborhood = 2 * ring.distance + 1;
  plan.np_ref =
      plan.period *
      std::max(2, (neighborhood + plan.period - 1) / plan.period);

  const auto& tc = exp.cluster.transport;
  std::string reason;
  if (exp.grid) {
    reason = "grid workloads are not eligible";
  } else if (exp.cluster.topo.ranks != np) {
    reason = "topology/ring rank mismatch";
  } else if (exp.cluster.system_noise.kind != noise::NoiseSpec::Kind::none) {
    reason = "system noise perturbs every rank";
  } else if (exp.injected_noise.kind != noise::NoiseSpec::Kind::none) {
    reason = "injected noise perturbs every rank";
  } else if (exp.cluster.memory) {
    reason = "memory domains couple ranks through the bus";
  } else if (exp.cluster.tracer != nullptr) {
    reason = "flight recording needs every event";
  } else if (tc.nic.injection_depth != 0) {
    reason = "finite NIC injection depth couples senders to drain order";
  } else if (tc.eager.credit_window != 0) {
    reason = "eager credit window couples senders to receivers";
  } else if (tc.eager.buffer_capacity !=
             std::numeric_limits<std::int64_t>::max()) {
    reason = "finite eager buffers can demote sends";
  } else if (tc.protocol_by_size(ring.msg_bytes,
                                 exp.cluster.fabric.eager_limit_bytes) !=
             mpi::WireProtocol::eager) {
    reason = "rendezvous messages couple senders to receivers";
  } else if (ring.boundary == workload::Boundary::periodic &&
             np % plan.period != 0) {
    reason = "periodic ring size is not a multiple of the topology period";
  } else if (plan.np_ref > np) {
    reason = "ring smaller than the reference pattern";
  }
  if (!reason.empty()) {
    plan.reason = std::move(reason);
    return plan;
  }

  plan.eligible = true;
  plan.active.assign(static_cast<std::size_t>(np), 0);
  const int radius = ring.distance * (ring.steps + 2);
  for (const auto& d : exp.delays)
    mark_cone(plan.active, d.rank, radius, ring.boundary);
  if (ring.boundary == workload::Boundary::open) {
    mark_cone(plan.active, 0, radius, ring.boundary);
    mark_cone(plan.active, np - 1, radius, ring.boundary);
  }
  plan.active_count = static_cast<std::size_t>(
      std::count(plan.active.begin(), plan.active.end(), 1));
  return plan;
}

FastForwardResult run_ring_fast_forward(Cluster& cluster,
                                        const WaveExperiment& exp,
                                        const FastForwardPlan& plan) {
  IW_REQUIRE(plan.eligible, "fast-forward plan is not eligible");
  const workload::RingSpec& ring = exp.ring;
  const int np = ring.ranks;
  const int period = plan.period;

  // Reference ring: periodic, undisturbed, same per-step physics. Its
  // ranks 0..P-1 are one full topology period, so every silent rank r of
  // the real machine has the timeline of reference rank r mod P.
  workload::RingSpec ref_ring = ring;
  ref_ring.ranks = plan.np_ref;
  ref_ring.boundary = workload::Boundary::periodic;
  ClusterConfig ref_config;
  ref_config.topo = exp.cluster.topo;
  ref_config.topo.ranks = plan.np_ref;
  ref_config.fabric = exp.cluster.fabric;
  ref_config.transport = exp.cluster.transport;
  ref_config.seed = exp.cluster.seed;
  Cluster ref_cluster(ref_config);
  const mpi::Trace ref_trace = ref_cluster.run(workload::build_ring(ref_ring));

  // Per-residue send-post times: with no noise and no delays each step has
  // exactly one compute segment, and sends are posted the instant it ends.
  std::vector<std::vector<SimTime>> send_times(
      static_cast<std::size_t>(period));
  for (int q = 0; q < period; ++q) {
    auto& times = send_times[static_cast<std::size_t>(q)];
    times.reserve(static_cast<std::size_t>(ring.steps));
    for (const auto& seg : ref_trace.segments(q))
      if (seg.kind == mpi::SegKind::compute) times.push_back(seg.end);
    IW_CHECK(static_cast<int>(times.size()) == ring.steps,
             "reference ring must record one compute segment per step");
  }

  // Programs for the active set only: the silent majority never gets one.
  std::vector<const mpi::Program*> programs(static_cast<std::size_t>(np),
                                            nullptr);
  std::vector<mpi::Program> storage;
  storage.reserve(plan.active_count);
  for (int r = 0; r < np; ++r) {
    if (!plan.active[static_cast<std::size_t>(r)]) continue;
    storage.push_back(workload::build_ring_rank(ring, r, exp.delays));
    programs[static_cast<std::size_t>(r)] = &storage.back();
  }

  // Ghost schedule: every silent rank feeding the active rim replays *all*
  // of its sends in program order at its reference send times — partial
  // replay would shift the NIC serialization of the sends that matter.
  std::vector<GhostSend> ghost_sends;
  std::vector<GhostPost> ghost_posts;
  for (int r = 0; r < np; ++r) {
    if (plan.active[static_cast<std::size_t>(r)]) continue;
    const auto peers = workload::send_peers(ring, r);
    const bool feeds_active =
        std::any_of(peers.begin(), peers.end(), [&plan](int p) {
          return plan.active[static_cast<std::size_t>(p)] != 0;
        });
    if (!feeds_active) continue;
    const auto& times = send_times[static_cast<std::size_t>(r % period)];
    for (int step = 0; step < ring.steps; ++step) {
      GhostPost post;
      post.when = times[static_cast<std::size_t>(step)];
      post.first = static_cast<std::uint32_t>(ghost_sends.size());
      post.count = static_cast<std::uint32_t>(peers.size());
      for (const int peer : peers)
        ghost_sends.push_back(GhostSend{r, peer, step, ring.msg_bytes});
      ghost_posts.push_back(post);
    }
  }

  FastForwardResult result{
      cluster.run_fast_forward(programs, ghost_sends, ghost_posts)};

  // Synthesize the silent timelines: one imported canonical row per
  // residue class, O(1) aliases for the rest of the class.
  std::vector<int> canonical(static_cast<std::size_t>(period), -1);
  for (int r = 0; r < np; ++r) {
    if (plan.active[static_cast<std::size_t>(r)]) continue;
    const auto q = static_cast<std::size_t>(r % period);
    if (canonical[q] < 0) {
      result.trace.import_rank(r, ref_trace, r % period);
      canonical[q] = r;
    } else {
      result.trace.alias_rank(r, canonical[q]);
    }
    result.skips += static_cast<std::uint64_t>(ring.steps);
    result.time_skipped += result.trace.finish(r) - SimTime::zero();
  }

  if (exp.cluster.metrics != nullptr) {
    exp.cluster.metrics->add(obs::MetricId::engine_ffwd_skips, result.skips);
    exp.cluster.metrics->add(
        obs::MetricId::engine_ffwd_time_skipped,
        static_cast<std::uint64_t>(result.time_skipped.ns() / 1000));
  }

  IW_AUDIT(audit_cross_check(exp, result.trace));
  return result;
}

}  // namespace iw::core
