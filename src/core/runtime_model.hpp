// The nonoverlapping execution/communication runtime model of the paper's
// introduction (Eq. 1):
//
//     T(n) = Vmem / (n * bmem) + 2 * Vnet / bnet
//
// for one compute-communicate cycle of the strong-scaling STREAM triad on n
// sockets, plus the flop/s conversion used for Fig. 1. The model is
// deliberately optimistic (intra-node communication ignored) and assumes
// zero overlap — the whole point of Fig. 1 is where reality deviates.
#pragma once

#include <cstdint>

#include "support/time.hpp"

namespace iw::core {

struct StreamModelParams {
  double vmem_bytes = 1.2e9;  ///< total working set (5e7 elements * 24 B)
  double bmem_Bps = 40e9;     ///< per-socket memory bandwidth
  double vnet_bytes = 2e6;    ///< per-neighbor message volume
  double bnet_Bps = 3e9;      ///< asymptotic internode bandwidth
  std::int64_t flops = 2 * 50'000'000;  ///< flops per full traversal
};

/// Predicted cycle time on n sockets (Eq. 1).
[[nodiscard]] Duration stream_cycle_time(const StreamModelParams& p, int n);

/// Predicted execution-only time (the memory term alone).
[[nodiscard]] Duration stream_exec_time(const StreamModelParams& p, int n);

/// Predicted total performance in flop/s on n sockets.
[[nodiscard]] double stream_performance(const StreamModelParams& p, int n);

/// Predicted execution-only performance in flop/s on n sockets.
[[nodiscard]] double stream_exec_performance(const StreamModelParams& p,
                                             int n);

/// Performance for a measured cycle time.
[[nodiscard]] double performance_from_time(std::int64_t flops, Duration t);

}  // namespace iw::core
