// Analytic fast-forward over silent regions (machine-scale simulation).
//
// At O(100k-1M) ranks, almost every rank of a ring experiment is *silent*:
// outside the light cone of every injected delay and of the open chain
// ends, its timeline is the unperturbed bulk-synchronous steady state the
// paper's Eq. 1 cycle model describes. Simulating those ranks event by
// event buys nothing — their trace is known in closed form up to the
// per-step protocol times, which a tiny reference ring reproduces exactly.
//
// The engine therefore splits the machine into
//   * an active set — ranks within R = d*(steps+2) hops of a delay or an
//     open boundary (an idle wave and the open-end speed-up front both
//     travel at most d ranks per step; the +2 steps are rim slack) — which
//     is event-simulated normally, and
//   * the silent rest, which gets no Process, no Program, and no events.
// The rim of the active set still receives messages from silent neighbors;
// those are replayed as *ghost sends*: pre-scheduled transport posts fired
// at the silent sender's analytically known per-step send times (taken
// from the reference ring), in program order, so NIC serialization matches
// the full simulation exactly.
//
// Silent timelines are synthesized from a periodic reference ring of
// np_ref = P * max(2, ceil((2d+1)/P)) ranks, where P is the topology's
// pattern_period(): rank r's timeline equals reference rank (r mod P).
// Two periods are the proven minimum — with m >= 2 every wrapped
// reference-ring neighbor pair crosses all topology tiers, exactly like
// the corresponding (non-wrapped) bulk pair in the real machine, so every
// link classifies identically and the per-step times agree bit for bit.
//
// Eligibility (plan_fast_forward) is deliberately conservative: ring
// workloads only, no noise of either source, no memory domains, no flight
// recorder, ideal NIC (unbounded injection/buffers/credits), eager-sized
// messages, and — for periodic rings — np divisible by P. Everything else
// falls back to the full simulation (FfwdMode::auto_) or refuses loudly
// (FfwdMode::force). In audit builds the result is cross-checked
// byte-for-byte against a full simulation at small np.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mpi/trace.hpp"
#include "support/time.hpp"

namespace iw::core {

class Cluster;
struct WaveExperiment;

enum class FfwdMode : std::uint8_t {
  off,    ///< always event-simulate every rank (the default: exact engine
          ///< counters, which several golden columns pin)
  auto_,  ///< fast-forward when eligible and profitable, else fall back
  force,  ///< fast-forward or die — for tests and the A/B scale bench
};

[[nodiscard]] constexpr const char* to_string(FfwdMode m) {
  switch (m) {
    case FfwdMode::off: return "off";
    case FfwdMode::auto_: return "auto";
    case FfwdMode::force: return "force";
  }
  return "?";
}

/// Parses "off" / "auto" / "force"; throws on anything else.
[[nodiscard]] FfwdMode ffwd_mode_from_string(std::string_view s);

/// The eligibility decision plus the active-set geometry.
struct FastForwardPlan {
  bool eligible = false;
  std::string reason;     ///< first failed eligibility condition, if any
  int period = 1;         ///< topology pattern period P
  int np_ref = 0;         ///< reference-ring size (P * m, m >= 2)
  std::vector<std::uint8_t> active;  ///< per-rank: 1 = event-simulated
  std::size_t active_count = 0;
};

[[nodiscard]] FastForwardPlan plan_fast_forward(const WaveExperiment& exp);

struct FastForwardResult {
  mpi::Trace trace;
  /// Rank-steps whose event simulation was skipped (silent ranks * steps).
  std::uint64_t skips = 0;
  /// Sum of the synthesized silent ranks' finish times — the simulated
  /// time the engine never had to walk through.
  Duration time_skipped = Duration::zero();
};

/// Runs the experiment through the fast-forward path on `cluster` (which
/// must be freshly armed with exp.cluster). `plan` must be eligible.
/// Publishes the engine.ffwd_* metrics into exp.cluster.metrics when set.
[[nodiscard]] FastForwardResult run_ring_fast_forward(
    Cluster& cluster, const WaveExperiment& exp, const FastForwardPlan& plan);

}  // namespace iw::core
