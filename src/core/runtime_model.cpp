#include "core/runtime_model.hpp"

#include "support/error.hpp"

namespace iw::core {

Duration stream_exec_time(const StreamModelParams& p, int n) {
  IW_REQUIRE(n >= 1, "need at least one socket");
  return seconds(p.vmem_bytes / (static_cast<double>(n) * p.bmem_Bps));
}

Duration stream_cycle_time(const StreamModelParams& p, int n) {
  return stream_exec_time(p, n) + seconds(2.0 * p.vnet_bytes / p.bnet_Bps);
}

double stream_performance(const StreamModelParams& p, int n) {
  return performance_from_time(p.flops, stream_cycle_time(p, n));
}

double stream_exec_performance(const StreamModelParams& p, int n) {
  return performance_from_time(p.flops, stream_exec_time(p, n));
}

double performance_from_time(std::int64_t flops, Duration t) {
  IW_REQUIRE(t.ns() > 0, "time must be positive");
  return static_cast<double>(flops) / t.sec();
}

}  // namespace iw::core
