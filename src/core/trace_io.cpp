#include "core/trace_io.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iterator>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace iw::core {
namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace output: " + path);
  return out;
}

}  // namespace

void write_segments_csv(const mpi::Trace& trace, std::ostream& out) {
  out << "rank,kind,begin_ns,end_ns,duration_ns,step,noise_ns\n";
  for (int rank = 0; rank < trace.ranks(); ++rank) {
    for (const auto& seg : trace.segments(rank)) {
      out << rank << ',' << mpi::to_string(seg.kind) << ',' << seg.begin.ns()
          << ',' << seg.end.ns() << ',' << seg.duration().ns() << ','
          << seg.step << ',' << seg.noise.ns() << '\n';
    }
  }
}

void write_segments_csv(const mpi::Trace& trace, const std::string& path) {
  auto out = open_or_throw(path);
  write_segments_csv(trace, out);
}

void write_step_positions_csv(const mpi::Trace& trace, std::ostream& out) {
  out << "step,rank,begin_ns\n";
  for (int rank = 0; rank < trace.ranks(); ++rank) {
    const auto& marks = trace.step_begin(rank);
    for (std::size_t step = 0; step < marks.size(); ++step) {
      out << step << ',' << rank << ',' << marks[step].ns() << '\n';
    }
  }
}

void write_step_positions_csv(const mpi::Trace& trace,
                              const std::string& path) {
  auto out = open_or_throw(path);
  write_step_positions_csv(trace, out);
}

namespace {

/// Microsecond timestamp at nanosecond resolution, written as a decimal
/// string ("12.345") so rounding can never reorder equal-ns events.
std::string ts_us(SimTime t) {
  const std::int64_t ns = t.ns();
  const std::int64_t frac = ns % 1000;
  std::string out = std::to_string(ns / 1000);
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

/// One serialized trace event, keyed for the per-track sort.
struct ChromeEvent {
  int tid;
  std::int64_t ts_ns;
  std::string json;
};

/// A send/arrival record pair that becomes a flow arrow. `mirrored` says
/// the arrival is recorded from the receiving rank's perspective
/// (rank=receiver, peer=sender); the RDMA-get pair records both ends on
/// the issuing rank, so its arrival keeps the send's orientation.
struct FlowPairSpec {
  obs::TraceEvent send;
  obs::TraceEvent recv;
  const char* name;
  bool mirrored;
};

constexpr FlowPairSpec kFlowPairs[] = {
    {obs::TraceEvent::kEagerSend, obs::TraceEvent::kEagerRecv, "eager", true},
    {obs::TraceEvent::kRtsSend, obs::TraceEvent::kRtsRecv, "rts", true},
    {obs::TraceEvent::kCtsSend, obs::TraceEvent::kCtsRecv, "cts", true},
    {obs::TraceEvent::kPushSend, obs::TraceEvent::kPushRecv, "push", true},
    {obs::TraceEvent::kGetSend, obs::TraceEvent::kGetRecv, "get", false},
    {obs::TraceEvent::kFinSend, obs::TraceEvent::kFinRecv, "fin", true},
};

/// Index into kFlowPairs when `ev` opens (as_send) or closes (!as_send) a
/// flow; -1 otherwise.
int flow_pair_index(obs::TraceEvent ev, bool as_send) {
  for (int i = 0; i < static_cast<int>(std::size(kFlowPairs)); ++i)
    if ((as_send ? kFlowPairs[i].send : kFlowPairs[i].recv) == ev) return i;
  return -1;
}

}  // namespace

void write_chrome_trace(const mpi::Trace& trace,
                        const std::vector<obs::TraceRecord>& records,
                        std::ostream& out) {
  std::vector<ChromeEvent> events;
  events.reserve(records.size() * 2 + 64);
  const int engine_tid = trace.ranks();  // one past the last rank track

  // Segments: one complete ("X") slice per trace segment.
  for (int rank = 0; rank < trace.ranks(); ++rank) {
    for (const auto& seg : trace.segments(rank)) {
      std::ostringstream os;
      os << "{\"name\":\"" << mpi::to_string(seg.kind)
         << "\",\"cat\":\"segment\",\"ph\":\"X\",\"pid\":0,\"tid\":" << rank
         << ",\"ts\":" << ts_us(seg.begin)
         << ",\"dur\":" << ts_us(SimTime::zero() + seg.duration())
         << ",\"args\":{\"step\":" << seg.step
         << ",\"noise_ns\":" << seg.noise.ns() << "}}";
      events.push_back({rank, seg.begin.ns(), os.str()});
    }
  }

  // Flight-recorder records: one instant ("i") per record, plus FIFO flow
  // matching per (src, dst, kind pair, bytes) — the order the wire (and the
  // bandwidth domains, which never reorder equal-size same-pair transfers)
  // preserves.
  using FlowKey = std::tuple<int, int, int, std::int64_t>;
  std::map<FlowKey, std::deque<std::size_t>> pending;
  std::uint64_t next_flow_id = 1;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const obs::TraceRecord& rec = records[i];
    const int tid = rec.rank < 0 ? engine_tid : rec.rank;
    std::ostringstream os;
    os << "{\"name\":\"" << obs::to_string(rec.ev)
       << "\",\"cat\":\"protocol\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
       << "\"tid\":" << tid << ",\"ts\":" << ts_us(rec.t)
       << ",\"args\":{\"peer\":" << rec.peer << ",\"bytes\":" << rec.bytes;
    if (rec.slot != obs::Tracer::kNoSlot) os << ",\"slot\":" << rec.slot;
    os << "}}";
    events.push_back({tid, rec.t.ns(), os.str()});

    if (const int p = flow_pair_index(rec.ev, /*as_send=*/true); p >= 0) {
      pending[FlowKey{p, rec.rank, rec.peer, rec.bytes}].push_back(i);
      continue;
    }
    const int p = flow_pair_index(rec.ev, /*as_send=*/false);
    if (p < 0) continue;
    const FlowKey key = kFlowPairs[p].mirrored
                            ? FlowKey{p, rec.peer, rec.rank, rec.bytes}
                            : FlowKey{p, rec.rank, rec.peer, rec.bytes};
    const auto it = pending.find(key);
    if (it == pending.end() || it->second.empty())
      continue;  // send record evicted from the ring: no arrow
    const obs::TraceRecord& send = records[it->second.front()];
    it->second.pop_front();
    const std::uint64_t id = next_flow_id++;
    std::ostringstream ss;
    ss << "{\"name\":\"" << kFlowPairs[p].name
       << "\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" << id
       << ",\"pid\":0,\"tid\":" << send.rank << ",\"ts\":" << ts_us(send.t)
       << "}";
    events.push_back({send.rank, send.t.ns(), ss.str()});
    std::ostringstream fs;
    fs << "{\"name\":\"" << kFlowPairs[p].name
       << "\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << id
       << ",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << ts_us(rec.t) << "}";
    events.push_back({tid, rec.t.ns(), fs.str()});
  }

  // Per-track monotone timestamps; the stable sort keeps the natural
  // emission order (segment before instants, instant before its flow leg)
  // among equal-time events of one track.
  std::stable_sort(events.begin(), events.end(),
                   [](const ChromeEvent& a, const ChromeEvent& b) {
                     return a.tid != b.tid ? a.tid < b.tid : a.ts_ns < b.ts_ns;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Track-name metadata first (no timestamps; viewers and the validator
  // treat "M" events as out-of-band).
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"idlewave cluster\"}}";
  for (int rank = 0; rank < trace.ranks(); ++rank)
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << rank << ",\"args\":{\"name\":\"rank " << rank << "\"}}";
  out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
      << engine_tid << ",\"args\":{\"name\":\"engine\"}}";
  for (const ChromeEvent& ev : events) out << ",\n" << ev.json;
  out << "\n]}\n";
}

void write_chrome_trace(const mpi::Trace& trace,
                        const std::vector<obs::TraceRecord>& records,
                        const std::string& path) {
  auto out = open_or_throw(path);
  write_chrome_trace(trace, records, out);
}

}  // namespace iw::core
