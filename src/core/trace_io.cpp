#include "core/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace iw::core {
namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace output: " + path);
  return out;
}

}  // namespace

void write_segments_csv(const mpi::Trace& trace, std::ostream& out) {
  out << "rank,kind,begin_ns,end_ns,duration_ns,step,noise_ns\n";
  for (int rank = 0; rank < trace.ranks(); ++rank) {
    for (const auto& seg : trace.segments(rank)) {
      out << rank << ',' << mpi::to_string(seg.kind) << ',' << seg.begin.ns()
          << ',' << seg.end.ns() << ',' << seg.duration().ns() << ','
          << seg.step << ',' << seg.noise.ns() << '\n';
    }
  }
}

void write_segments_csv(const mpi::Trace& trace, const std::string& path) {
  auto out = open_or_throw(path);
  write_segments_csv(trace, out);
}

void write_step_positions_csv(const mpi::Trace& trace, std::ostream& out) {
  out << "step,rank,begin_ns\n";
  for (int rank = 0; rank < trace.ranks(); ++rank) {
    const auto& marks = trace.step_begin(rank);
    for (std::size_t step = 0; step < marks.size(); ++step) {
      out << step << ',' << rank << ',' << marks[step].ns() << '\n';
    }
  }
}

void write_step_positions_csv(const mpi::Trace& trace,
                              const std::string& path) {
  auto out = open_or_throw(path);
  write_step_positions_csv(trace, out);
}

}  // namespace iw::core
