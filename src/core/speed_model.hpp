// The paper's analytic idle-wave propagation model (Eq. 2):
//
//     v_silent = sigma * d / (Texec + Tcomm)   [ranks/s]
//
// with sigma = 2 for bidirectional rendezvous communication and sigma = 1
// for every other mode, and d the largest distance to any communication
// partner. "It does not matter what Tcomm is composed of, be it latency,
// overhead, transfer time" — communication overhead and execution time
// enter on an equal footing.
#pragma once

#include "mpi/message.hpp"
#include "mpi/transport_config.hpp"
#include "support/time.hpp"
#include "workload/ring.hpp"

namespace iw::core {

/// The sigma factor of Eq. 2. This overload assumes the paper's production
/// transport semantics: two-sided rendezvous with deferred pushes.
[[nodiscard]] int sigma_factor(workload::Direction direction,
                               mpi::WireProtocol protocol);

/// Config-aware sigma: the factor-2 coupling exists only when a
/// bidirectional rendezvous push can be held behind the sender's other
/// outstanding handshake — i.e. under the two_sided flavor with
/// deferred_push pipelining. One-sided puts/gets are executed by the NIC
/// independently of the sender's handshake state, so they propagate at
/// sigma = 1 (as does the `independent` pipelining ablation).
[[nodiscard]] int sigma_factor(workload::Direction direction,
                               mpi::WireProtocol protocol,
                               const mpi::TransportConfig& config);

/// v_silent in ranks per second.
[[nodiscard]] double v_silent(int sigma, int distance, Duration texec,
                              Duration tcomm);

/// Convenience overload taking the mode directly.
[[nodiscard]] double v_silent(workload::Direction direction,
                              mpi::WireProtocol protocol, int distance,
                              Duration texec, Duration tcomm);

}  // namespace iw::core
