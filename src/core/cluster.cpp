#include "core/cluster.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "support/error.hpp"

namespace iw::core {
namespace {

/// Stream-purpose identifiers for Rng::for_stream.
constexpr std::uint64_t kSystemNoiseStream = 0;
constexpr std::uint64_t kInjectedNoiseStream = 1;

/// Calendar pre-sizing: a ring step wakes every rank and keeps a handful of
/// protocol events per rank in flight, but at machine scale (100k+ ranks)
/// the simultaneously pending population stays far below ranks*8 — the
/// cap keeps the pre-allocation bounded while the calendar still grows on
/// demand if a workload genuinely needs more.
std::size_t calendar_budget(int ranks) {
  return std::min<std::size_t>(static_cast<std::size_t>(ranks) * 8, 262144);
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      topo_(config_.topo),
      transport_(engine_, topo_, config_.fabric, config_.transport) {
  engine_.reserve_events(calendar_budget(topo_.ranks()));
}

void Cluster::reset(ClusterConfig config) {
  config_ = std::move(config);
  engine_.reset();
  topo_ = net::Topology(config_.topo);
  // Keep the constructor's calendar pre-sizing when reshaping larger.
  engine_.reserve_events(calendar_budget(topo_.ranks()));
  transport_.reconfigure(config_.fabric, config_.transport);
  ran_ = false;
  // Post-conditions of the recycle: the next run must be indistinguishable
  // from a fresh construction. State leaking through a reset cluster is
  // exactly the bug class that would silently bend sweep physics, so audit
  // builds re-prove it at every sweep point.
  IW_ASSERT(engine_.events_pending() == 0 && engine_.now() == SimTime::zero(),
            "Cluster::reset post-condition: engine not pristine");
  IW_ASSERT(transport_.pool_stats().rdv_in_flight == 0 &&
                transport_.stats().eager_sends == 0 &&
                transport_.stats().rendezvous_sends == 0,
            "Cluster::reset post-condition: transport state leaked");
  IW_AUDIT(transport_.audit());
}

Duration Cluster::message_time(int src, int dst, std::int64_t bytes) const {
  if (transport_.protocol_for(src, dst, bytes) == mpi::WireProtocol::eager)
    return transport_.eager_transfer_time(src, dst, bytes);
  return transport_.rendezvous_transfer_time(src, dst, bytes);
}

mpi::Process& Cluster::bind_process(std::size_t slot, int rank,
                                    mpi::Trace& trace) {
  if (slot < processes_.size()) {
    mpi::Process& proc = processes_[slot];
    proc.reset(rank, trace);
    return proc;
  }
  IW_ASSERT(slot == processes_.size(),
            "process pool slots must be bound in order");
  return processes_.emplace(rank, engine_, transport_, trace);
}

void Cluster::wire_domains() {
  // Socket bandwidth domains (only when memory-bound work is configured).
  // They serve both OpMemWork phases and — via the transport — intra-node
  // message copies, which contend with computation for the memory bus.
  // Domain objects are pooled: reset() re-arms existing ones, and slots
  // beyond this run's socket count simply sit idle (the engine reset
  // guarantees they hold no events).
  const std::size_t sockets =
      config_.memory ? static_cast<std::size_t>(topo_.sockets()) : 0;
  for (std::size_t s = 0; s < sockets; ++s) {
    if (s < domains_.size()) {
      domains_[s].reset(config_.memory->socket_bandwidth_Bps,
                        config_.memory->core_bandwidth_Bps);
    } else {
      domains_.emplace(engine_, config_.memory->socket_bandwidth_Bps,
                       config_.memory->core_bandwidth_Bps);
    }
  }
  domains_in_use_ = sockets;
  domain_table_.clear();
  if (sockets > 0) {
    domain_table_.reserve(static_cast<std::size_t>(topo_.ranks()));
    for (int rank = 0; rank < topo_.ranks(); ++rank)
      domain_table_.push_back(
          &domains_[static_cast<std::size_t>(topo_.socket_of(rank))]);
  }
  transport_.set_memory_domains(domain_table_);
}

void Cluster::publish_metrics() {
  if (config_.metrics == nullptr) return;
  config_.metrics->publish(engine_);
  config_.metrics->publish(transport_);
  for (std::size_t s = 0; s < domains_in_use_; ++s)
    config_.metrics->publish(domains_[s]);
  if (config_.tracer != nullptr) config_.metrics->publish(*config_.tracer);
}

void Cluster::record_footprint(const mpi::Trace& trace) {
  // The per-rank budget counts the rank-proportional simulation state: the
  // trace slabs, the shared request slab, the process/domain pools, the
  // rank-indexed wiring tables, and the topology's classification tables.
  // (The calendar and transport pools scale with the *active* working set,
  // not with ranks, and are deliberately excluded.)
  std::size_t bytes = trace.bytes_used();
  bytes += request_slab_.capacity() * sizeof(mpi::Request);
  bytes += processes_.bytes_used();
  bytes += domains_.bytes_used();
  bytes += process_table_.capacity() * sizeof(mpi::Process*);
  bytes += domain_table_.capacity() * sizeof(memory::BandwidthDomain*);
  const int tiers = 2 + (topo_.has_switch_tier() ? 1 : 0) +
                    (topo_.has_island_tier() ? 1 : 0);
  bytes += static_cast<std::size_t>(topo_.ranks()) *
           static_cast<std::size_t>(tiers) * sizeof(std::int32_t);
  peak_bytes_per_rank_ = static_cast<double>(bytes) /
                         static_cast<double>(std::max(1, topo_.ranks()));
  if (config_.metrics != nullptr)
    config_.metrics->set_max(obs::MetricId::mem_peak_bytes_per_rank,
                             peak_bytes_per_rank_);
}

mpi::Trace Cluster::run(const std::vector<mpi::Program>& programs,
                        const noise::NoiseSpec& injected_noise) {
  IW_REQUIRE(!ran_, "Cluster::run requires a fresh or reset() instance");
  IW_REQUIRE(static_cast<int>(programs.size()) == topo_.ranks(),
             "need exactly one program per rank");
  ran_ = true;

  const auto nranks = static_cast<std::size_t>(topo_.ranks());
  mpi::Trace trace(topo_.ranks());

  wire_domains();

  // The request slab holds every rank's in-flight request window
  // back-to-back, sized exactly from the programs' deepest Isend/Irecv
  // window. Sizing completes before any binding so the slab never moves
  // under a bound process.
  std::size_t slab = 0;
  for (const auto& program : programs) slab += program.max_window_requests();
  request_slab_.resize(slab);

  process_table_.clear();
  process_table_.reserve(nranks);
  std::size_t offset = 0;
  for (int rank = 0; rank < topo_.ranks(); ++rank) {
    const mpi::Program& program = programs[static_cast<std::size_t>(rank)];
    mpi::Process& proc = bind_process(static_cast<std::size_t>(rank), rank,
                                      trace);
    // Size the trace from the program shape (exact segment bound) so
    // recording never reallocates mid-run.
    trace.reserve_rank(rank, program.segment_bound(),
                       static_cast<std::size_t>(program.rounds()) + 1);
    proc.set_request_storage(
        request_slab_.data() + offset,
        static_cast<std::uint32_t>(program.max_window_requests()));
    offset += program.max_window_requests();
    proc.set_program(&program);
    if (config_.system_noise.kind != noise::NoiseSpec::Kind::none) {
      proc.add_noise(config_.system_noise.build(),
                     Rng::for_stream(config_.seed,
                                     static_cast<std::uint64_t>(rank),
                                     kSystemNoiseStream));
    }
    if (injected_noise.kind != noise::NoiseSpec::Kind::none) {
      proc.add_noise(injected_noise.build(),
                     Rng::for_stream(config_.seed,
                                     static_cast<std::uint64_t>(rank),
                                     kInjectedNoiseStream));
    }
    if (!domain_table_.empty())
      proc.set_domain(domain_table_[static_cast<std::size_t>(rank)]);
    process_table_.push_back(&proc);
  }
  procs_in_use_ = nranks;

  // Rank-indexed completion wiring: the transport calls straight into
  // Process::on_request_complete, no type-erased hop.
  transport_.set_processes(process_table_.data());

  // Flight-recorder wiring: one pointer per layer, null in untraced runs.
  engine_.set_tracer(config_.tracer);
  transport_.set_tracer(config_.tracer);
  if (config_.tracer != nullptr)
    for (std::size_t r = 0; r < procs_in_use_; ++r)
      processes_[r].set_tracer(config_.tracer);

  for (std::size_t r = 0; r < procs_in_use_; ++r) processes_[r].start();
  engine_.run();

  for (std::size_t r = 0; r < procs_in_use_; ++r)
    IW_CHECK(processes_[r].done(),
             "deadlock: a process never finished its program");

  publish_metrics();
  record_footprint(trace);

  return trace;
}

mpi::Trace Cluster::run_fast_forward(
    const std::vector<const mpi::Program*>& programs,
    std::span<const GhostSend> ghost_sends,
    std::span<const GhostPost> ghost_posts) {
  IW_REQUIRE(!ran_, "Cluster::run requires a fresh or reset() instance");
  IW_REQUIRE(static_cast<int>(programs.size()) == topo_.ranks(),
             "need exactly one program slot per rank");
  // The fast-forward envelope (core::plan_fast_forward) excludes every
  // feature that could couple a silent rank back into the simulation;
  // re-prove the structural parts here.
  IW_REQUIRE(!config_.memory,
             "fast-forward runs cannot use memory domains");
  IW_REQUIRE(config_.system_noise.kind == noise::NoiseSpec::Kind::none,
             "fast-forward runs cannot carry system noise");
  IW_REQUIRE(config_.tracer == nullptr,
             "fast-forward runs cannot be flight-recorded");
  ran_ = true;

  const auto nranks = static_cast<std::size_t>(topo_.ranks());
  mpi::Trace trace(topo_.ranks());

  domains_in_use_ = 0;
  domain_table_.clear();
  transport_.set_memory_domains(domain_table_);

  std::size_t slab = 0;
  for (const auto* program : programs)
    if (program != nullptr) slab += program->max_window_requests();
  request_slab_.resize(slab);

  // Silent ranks get a null process-table entry. That is safe because a
  // silent rank never posts a receive: arrivals from ghosts into silent
  // destinations park in the transport's unexpected queues and are never
  // completed, so procs_[silent] is never dereferenced.
  process_table_.assign(nranks, nullptr);
  std::size_t slot = 0;
  std::size_t offset = 0;
  for (int rank = 0; rank < topo_.ranks(); ++rank) {
    const mpi::Program* program = programs[static_cast<std::size_t>(rank)];
    if (program == nullptr) continue;
    mpi::Process& proc = bind_process(slot++, rank, trace);
    trace.reserve_rank(rank, program->segment_bound(),
                       static_cast<std::size_t>(program->rounds()) + 1);
    proc.set_request_storage(
        request_slab_.data() + offset,
        static_cast<std::uint32_t>(program->max_window_requests()));
    offset += program->max_window_requests();
    proc.set_program(program);
    process_table_[static_cast<std::size_t>(rank)] = &proc;
  }
  procs_in_use_ = slot;
  transport_.set_processes(process_table_.data());
  engine_.set_tracer(nullptr);
  transport_.set_tracer(nullptr);

  // Pre-schedule the ghost traffic: each post fires at the silent sender's
  // analytically known compute-end time and injects its batch in program
  // order, reproducing the NIC serialization a simulated sender would have.
  for (const auto& post : ghost_posts) {
    IW_REQUIRE(static_cast<std::size_t>(post.first) + post.count <=
                   ghost_sends.size(),
               "ghost post window out of range");
    engine_.at(post.when, [this, ghost_sends, post] {
      for (std::uint32_t i = 0; i < post.count; ++i) {
        const GhostSend& g = ghost_sends[post.first + i];
        transport_.post_ghost_send(g.src, g.dst, g.tag, g.bytes);
      }
    });
  }

  for (std::size_t r = 0; r < procs_in_use_; ++r) processes_[r].start();
  engine_.run();

  for (std::size_t r = 0; r < procs_in_use_; ++r)
    IW_CHECK(processes_[r].done(),
             "deadlock: a process never finished its program");

  publish_metrics();
  record_footprint(trace);

  return trace;
}

}  // namespace iw::core
