#include "core/cluster.hpp"

#include <utility>

#include "support/error.hpp"

namespace iw::core {
namespace {

/// Stream-purpose identifiers for Rng::for_stream.
constexpr std::uint64_t kSystemNoiseStream = 0;
constexpr std::uint64_t kInjectedNoiseStream = 1;

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      topo_(config_.topo),
      transport_(engine_, topo_, config_.fabric, config_.transport) {}

Duration Cluster::message_time(int src, int dst, std::int64_t bytes) const {
  if (transport_.protocol_for(src, dst, bytes) == mpi::WireProtocol::eager)
    return transport_.eager_transfer_time(src, dst, bytes);
  return transport_.rendezvous_transfer_time(src, dst, bytes);
}

mpi::Trace Cluster::run(const std::vector<mpi::Program>& programs,
                        const noise::NoiseSpec& injected_noise) {
  IW_REQUIRE(!ran_, "a Cluster instance can run only once");
  IW_REQUIRE(static_cast<int>(programs.size()) == topo_.ranks(),
             "need exactly one program per rank");
  ran_ = true;

  mpi::Trace trace(topo_.ranks());

  // Socket bandwidth domains (only when memory-bound work is configured).
  // They serve both OpMemWork phases and — via the transport — intra-node
  // message copies, which contend with computation for the memory bus.
  if (config_.memory) {
    domains_.reserve(static_cast<std::size_t>(topo_.sockets()));
    for (int s = 0; s < topo_.sockets(); ++s)
      domains_.push_back(std::make_unique<memory::BandwidthDomain>(
          engine_, config_.memory->socket_bandwidth_Bps,
          config_.memory->core_bandwidth_Bps));
    transport_.set_memory_domains([this](int rank) {
      return domains_[static_cast<std::size_t>(topo_.socket_of(rank))].get();
    });
  }

  std::vector<std::unique_ptr<mpi::Process>> processes;
  processes.reserve(programs.size());
  for (int rank = 0; rank < topo_.ranks(); ++rank) {
    auto proc = std::make_unique<mpi::Process>(rank, engine_, transport_,
                                               trace);
    proc->set_program(std::make_shared<const mpi::Program>(
        programs[static_cast<std::size_t>(rank)]));
    if (config_.system_noise.kind != noise::NoiseSpec::Kind::none) {
      proc->add_noise(config_.system_noise.build(),
                      Rng::for_stream(config_.seed,
                                      static_cast<std::uint64_t>(rank),
                                      kSystemNoiseStream));
    }
    if (injected_noise.kind != noise::NoiseSpec::Kind::none) {
      proc->add_noise(injected_noise.build(),
                      Rng::for_stream(config_.seed,
                                      static_cast<std::uint64_t>(rank),
                                      kInjectedNoiseStream));
    }
    if (!domains_.empty())
      proc->set_domain(
          domains_[static_cast<std::size_t>(topo_.socket_of(rank))].get());
    processes.push_back(std::move(proc));
  }

  transport_.set_completion_handler(
      [&processes](int rank, mpi::RequestId request) {
        processes[static_cast<std::size_t>(rank)]->on_request_complete(
            request);
      });

  for (auto& proc : processes) proc->start();
  engine_.run();

  for (const auto& proc : processes)
    IW_ASSERT(proc->done(), "deadlock: a process never finished its program");

  return trace;
}

}  // namespace iw::core
