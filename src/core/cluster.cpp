#include "core/cluster.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "support/error.hpp"

namespace iw::core {
namespace {

/// Stream-purpose identifiers for Rng::for_stream.
constexpr std::uint64_t kSystemNoiseStream = 0;
constexpr std::uint64_t kInjectedNoiseStream = 1;

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      topo_(config_.topo),
      transport_(engine_, topo_, config_.fabric, config_.transport) {
  // A ring step wakes every rank and keeps a handful of protocol events per
  // rank in flight; pre-sizing the calendar for that working set makes the
  // first run allocation-quiet too.
  engine_.reserve_events(static_cast<std::size_t>(topo_.ranks()) * 8);
}

void Cluster::reset(ClusterConfig config) {
  config_ = std::move(config);
  engine_.reset();
  topo_ = net::Topology(config_.topo);
  // Keep the constructor's calendar pre-sizing when reshaping larger.
  engine_.reserve_events(static_cast<std::size_t>(topo_.ranks()) * 8);
  transport_.reconfigure(config_.fabric, config_.transport);
  ran_ = false;
  // Post-conditions of the recycle: the next run must be indistinguishable
  // from a fresh construction. State leaking through a reset cluster is
  // exactly the bug class that would silently bend sweep physics, so audit
  // builds re-prove it at every sweep point.
  IW_ASSERT(engine_.events_pending() == 0 && engine_.now() == SimTime::zero(),
            "Cluster::reset post-condition: engine not pristine");
  IW_ASSERT(transport_.pool_stats().rdv_in_flight == 0 &&
                transport_.stats().eager_sends == 0 &&
                transport_.stats().rendezvous_sends == 0,
            "Cluster::reset post-condition: transport state leaked");
  IW_AUDIT(transport_.audit());
}

Duration Cluster::message_time(int src, int dst, std::int64_t bytes) const {
  if (transport_.protocol_for(src, dst, bytes) == mpi::WireProtocol::eager)
    return transport_.eager_transfer_time(src, dst, bytes);
  return transport_.rendezvous_transfer_time(src, dst, bytes);
}

mpi::Trace Cluster::run(const std::vector<mpi::Program>& programs,
                        const noise::NoiseSpec& injected_noise) {
  IW_REQUIRE(!ran_, "Cluster::run requires a fresh or reset() instance");
  IW_REQUIRE(static_cast<int>(programs.size()) == topo_.ranks(),
             "need exactly one program per rank");
  ran_ = true;

  const auto nranks = static_cast<std::size_t>(topo_.ranks());
  mpi::Trace trace(topo_.ranks());

  // Socket bandwidth domains (only when memory-bound work is configured).
  // They serve both OpMemWork phases and — via the transport — intra-node
  // message copies, which contend with computation for the memory bus.
  // Domain objects are recycled across reset() runs.
  const std::size_t sockets =
      config_.memory ? static_cast<std::size_t>(topo_.sockets()) : 0;
  if (domains_.size() > sockets) domains_.resize(sockets);
  for (std::size_t s = 0; s < sockets; ++s) {
    if (s < domains_.size()) {
      domains_[s]->reset(config_.memory->socket_bandwidth_Bps,
                         config_.memory->core_bandwidth_Bps);
    } else {
      domains_.push_back(std::make_unique<memory::BandwidthDomain>(
          engine_, config_.memory->socket_bandwidth_Bps,
          config_.memory->core_bandwidth_Bps));
    }
  }
  domain_table_.clear();
  if (!domains_.empty()) {
    domain_table_.reserve(nranks);
    for (int rank = 0; rank < topo_.ranks(); ++rank)
      domain_table_.push_back(
          domains_[static_cast<std::size_t>(topo_.socket_of(rank))].get());
  }
  transport_.set_memory_domains(domain_table_);

  // Processes are pooled too: reset() rebinds existing ones to this run's
  // trace; only a rank-count increase constructs new objects.
  if (processes_.size() > nranks) processes_.resize(nranks);
  for (std::size_t r = 0; r < processes_.size(); ++r)
    processes_[r]->reset(trace);
  while (processes_.size() < nranks)
    processes_.push_back(std::make_unique<mpi::Process>(
        static_cast<int>(processes_.size()), engine_, transport_, trace));

  for (int rank = 0; rank < topo_.ranks(); ++rank) {
    mpi::Process& proc = *processes_[static_cast<std::size_t>(rank)];
    const mpi::Program& program = programs[static_cast<std::size_t>(rank)];
    // Size the trace from the program shape (each op records at most one
    // segment) so recording never reallocates mid-run.
    trace.reserve_rank(rank, program.size(),
                       static_cast<std::size_t>(program.rounds()) + 1);
    proc.set_program(&program);
    if (config_.system_noise.kind != noise::NoiseSpec::Kind::none) {
      proc.add_noise(config_.system_noise.build(),
                     Rng::for_stream(config_.seed,
                                     static_cast<std::uint64_t>(rank),
                                     kSystemNoiseStream));
    }
    if (injected_noise.kind != noise::NoiseSpec::Kind::none) {
      proc.add_noise(injected_noise.build(),
                     Rng::for_stream(config_.seed,
                                     static_cast<std::uint64_t>(rank),
                                     kInjectedNoiseStream));
    }
    if (!domain_table_.empty())
      proc.set_domain(domain_table_[static_cast<std::size_t>(rank)]);
  }

  // Rank-indexed completion wiring: the transport calls straight into
  // Process::on_request_complete, no type-erased hop.
  process_table_.clear();
  process_table_.reserve(nranks);
  for (auto& proc : processes_) process_table_.push_back(proc.get());
  transport_.set_processes(process_table_.data());

  // Flight-recorder wiring: one pointer per layer, null in untraced runs.
  engine_.set_tracer(config_.tracer);
  transport_.set_tracer(config_.tracer);
  if (config_.tracer != nullptr)
    for (auto& proc : processes_) proc->set_tracer(config_.tracer);

  for (auto& proc : processes_) proc->start();
  engine_.run();

  for (const auto& proc : processes_)
    IW_CHECK(proc->done(), "deadlock: a process never finished its program");

  if (config_.metrics != nullptr) {
    config_.metrics->publish(engine_);
    config_.metrics->publish(transport_);
    for (const auto& domain : domains_) config_.metrics->publish(*domain);
    if (config_.tracer != nullptr) config_.metrics->publish(*config_.tracer);
  }

  return trace;
}

}  // namespace iw::core
