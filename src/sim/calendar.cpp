#include "sim/calendar.hpp"

#include <utility>

#include "support/error.hpp"

namespace iw::sim {

std::uint64_t Calendar::schedule(SimTime when, EventFn fn) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Event{when, seq, std::move(fn)});
  return seq;
}

SimTime Calendar::next_time() const {
  IW_REQUIRE(!heap_.empty(), "next_time on empty calendar");
  return heap_.top().when;
}

Event Calendar::pop() {
  IW_REQUIRE(!heap_.empty(), "pop on empty calendar");
  // std::priority_queue::top() returns const&; the move is safe because we
  // pop immediately afterwards.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return ev;
}

}  // namespace iw::sim
