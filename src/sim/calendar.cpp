#include "sim/calendar.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace iw::sim {

std::uint64_t Calendar::schedule(SimTime when, EventFn fn) {
  const std::uint64_t seq = next_seq_++;
  IW_CHECK(seq < (1ull << (64 - kSlotBits)), "calendar sequence exhausted");
  const std::uint32_t slot = acquire_slot(std::move(fn), seq);
  if (std::uint32_t* tail = times_.find_or_insert(when.ns(), slot)) {
    // Timestamp already pending: O(1) chain append, no heap traffic.
    chain_next_[*tail] = slot;
    *tail = slot;
  } else {
    heap_.push_back(Entry{when.ns(), (seq << kSlotBits) | slot});
    sift_up(heap_.size() - 1);
  }
  ++live_;
  if (live_ > peak_size_) peak_size_ = live_;
  return seq;
}

void Calendar::reserve(std::size_t events) {
  heap_.reserve(events);
  slab_.reserve(events);
  chain_next_.reserve(events);
  slot_seq_.reserve(events);
  free_slots_.reserve(events);
}

void Calendar::reset() noexcept {
  // Audit the structure the finished run left behind: corruption that never
  // surfaced as a wrong pop is still corruption, and the reuse path is
  // about to recycle this storage for the next sweep point. (noexcept: an
  // audit failure here terminates, which is the right call outside tests.)
  IW_AUDIT(audit());
  heap_.clear();
  slab_.clear();  // destroys any pending closures; capacity is retained
  chain_next_.clear();
  slot_seq_.clear();
  free_slots_.clear();
  times_.clear();
  next_seq_ = 0;
  live_ = 0;
  peak_size_ = 0;
}

SimTime Calendar::next_time() const {
  IW_REQUIRE(!heap_.empty(), "next_time on empty calendar");
  return SimTime{heap_.front().when_ns};
}

Event Calendar::pop() {
  IW_REQUIRE(!heap_.empty(), "pop on empty calendar");
  const std::int64_t when_ns = heap_.front().when_ns;
  const std::uint32_t slot = advance_root();
  return Event{SimTime{when_ns}, slot_seq_[slot], std::move(slab_[slot])};
}

bool Calendar::pop_if_at(SimTime when, EventFn& out) {
  if (heap_.empty() || heap_.front().when_ns != when.ns()) return false;
  const std::uint32_t slot = advance_root();
  out = std::move(slab_[slot]);
  return true;
}

std::uint32_t Calendar::advance_root() {
  Entry& root = heap_.front();
  const auto slot = static_cast<std::uint32_t>(root.seq_slot & kSlotMask);
  IW_ASSERT(slot < slab_.size(), "heap root references a slot off the slab");
  const std::uint32_t next = chain_next_[slot];
  IW_ASSERT(next == kNil || next < slab_.size(),
            "same-time chain link points off the slab");
  IW_ASSERT(next == kNil || slot_seq_[next] > slot_seq_[slot],
            "same-time chain is not in FIFO (ascending seq) order");
  if (next != kNil) {
    // Promote the next chained event: the entry keeps its heap position
    // (same time; the entry's seq bits are already minimal for this time).
    root.seq_slot = (root.seq_slot & ~kSlotMask) | next;
  } else {
    times_.erase(root.when_ns);
    remove_root();
  }
  free_slots_.push_back(slot);
  --live_;
  return slot;
}

std::uint32_t Calendar::acquire_slot(EventFn&& fn, std::uint64_t seq) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(fn);
  } else {
    IW_CHECK(slab_.size() < kSlotMask,
             "calendar slab exhausted (>16M pending)");
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(fn));
    chain_next_.push_back(kNil);
    slot_seq_.push_back(0);
  }
  chain_next_[slot] = kNil;
  slot_seq_[slot] = seq;
  return slot;
}

void Calendar::remove_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (heap_.size() > 1) sift_down(0);
}

void Calendar::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

std::uint32_t* Calendar::TimeIndex::find_or_insert(std::int64_t when_ns,
                                                   std::uint32_t tail) {
  // Keep load (live + tombstones) under half capacity so probes stay short.
  if (cells_.empty() || (used_ + tombs_ + 1) * 2 > cells_.size()) {
    const std::size_t target =
        tombs_ > used_ / 2 ? cells_.size() : cells_.size() * 2;
    rehash(std::max<std::size_t>(64, target));
  }
  const std::size_t mask = cells_.size() - 1;
  std::size_t reuse = SIZE_MAX;  // first tombstone seen along the probe
  for (std::size_t i = hash(when_ns) & mask;; i = (i + 1) & mask) {
    Cell& c = cells_[i];
    if (c.state == kUsed) {
      if (c.when_ns == when_ns) return &c.tail;
      continue;
    }
    if (c.state == kTomb) {
      if (reuse == SIZE_MAX) reuse = i;
      continue;
    }
    // kFree: the key is absent — insert in the same pass.
    const std::size_t j = reuse == SIZE_MAX ? i : reuse;
    if (cells_[j].state == kTomb) --tombs_;
    cells_[j] = Cell{when_ns, tail, kUsed};
    ++used_;
    return nullptr;
  }
}

void Calendar::TimeIndex::erase(std::int64_t when_ns) noexcept {
  const std::size_t mask = cells_.size() - 1;
  for (std::size_t i = hash(when_ns) & mask;; i = (i + 1) & mask) {
    Cell& c = cells_[i];
    if (c.state == kUsed && c.when_ns == when_ns) {
      c.state = kTomb;
      --used_;
      ++tombs_;
      return;
    }
  }
}

void Calendar::TimeIndex::clear() noexcept {
  for (Cell& c : cells_) c.state = kFree;
  used_ = 0;
  tombs_ = 0;
}

#if IW_AUDIT_ENABLED
const std::uint32_t* Calendar::TimeIndex::find(std::int64_t when_ns) const {
  if (cells_.empty()) return nullptr;
  const std::size_t mask = cells_.size() - 1;
  for (std::size_t i = hash(when_ns) & mask;; i = (i + 1) & mask) {
    const Cell& c = cells_[i];
    if (c.state == kFree) return nullptr;
    if (c.state == kUsed && c.when_ns == when_ns) return &c.tail;
  }
}
#endif

void Calendar::audit() const {
#if IW_AUDIT_ENABLED
  // Slab free-list integrity: every free slot is on the slab, and no slot
  // is freed twice.
  std::vector<std::uint8_t> is_free(slab_.size(), 0);
  for (const std::uint32_t slot : free_slots_) {
    IW_ASSERT(slot < slab_.size(), "free list references a slot off the slab");
    IW_ASSERT(!is_free[slot], "slot appears twice on the free list");
    is_free[slot] = 1;
  }
  IW_ASSERT(free_slots_.size() + live_ == slab_.size(),
            "slab accounting broken: live + free != slab extent");

  // Heap order + chain walk. Chains must cover exactly the non-free slots.
  std::size_t chained = 0;
  std::vector<std::uint8_t> seen(slab_.size(), 0);
  std::vector<std::int64_t> times;
  times.reserve(heap_.size());
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      IW_ASSERT(!earlier(heap_[i], heap_[parent]),
                "heap order property violated");
    }
    times.push_back(heap_[i].when_ns);

    // The time index must map this entry's timestamp to its chain tail.
    std::uint32_t slot = static_cast<std::uint32_t>(heap_[i].seq_slot & kSlotMask);
    std::uint64_t prev_seq = 0;
    std::uint32_t tail = slot;
    for (bool head = true; slot != kNil;
         slot = chain_next_[slot], head = false) {
      IW_ASSERT(slot < slab_.size(), "chain references a slot off the slab");
      IW_ASSERT(!is_free[slot], "live chain references a freed slot");
      IW_ASSERT(!seen[slot], "slot reachable from two chains");
      seen[slot] = 1;
      IW_ASSERT(head || slot_seq_[slot] > prev_seq,
                "chain seq not strictly ascending (FIFO order broken)");
      prev_seq = slot_seq_[slot];
      tail = slot;
      ++chained;
    }
    const std::uint32_t* indexed = times_.find(heap_[i].when_ns);
    IW_ASSERT(indexed != nullptr, "pending timestamp missing from time index");
    IW_ASSERT(*indexed == tail, "time index tail does not match chain tail");
  }
  IW_ASSERT(chained == live_, "live counter does not match chained events");
  IW_ASSERT(times_.live_entries() == heap_.size(),
            "time index holds entries for non-pending timestamps");

  // At most one heap entry per timestamp (same-time arrivals must chain).
  std::sort(times.begin(), times.end());
  IW_ASSERT(std::adjacent_find(times.begin(), times.end()) == times.end(),
            "duplicate timestamp entries in the heap");
#endif
}

void Calendar::TimeIndex::rehash(std::size_t capacity) {
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(capacity, Cell{0, 0, kFree});
  tombs_ = 0;
  const std::size_t mask = capacity - 1;
  for (const Cell& c : old) {
    if (c.state != kUsed) continue;
    std::size_t i = hash(c.when_ns) & mask;
    while (cells_[i].state == kUsed) i = (i + 1) & mask;
    cells_[i] = c;
  }
}

void Calendar::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

}  // namespace iw::sim
