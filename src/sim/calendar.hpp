// The event calendar: a deterministic min-heap of future events.
//
// Layout: a 4-ary implicit heap of 16-byte entries over a slab of EventFn
// closures. An entry packs (when, seq, slot) into two words: the timestamp,
// and seq<<24 | slot. Since sequence numbers are unique, comparing the
// packed word compares seq — the slot bits never decide — so the heap order
// is exactly the deterministic (time, seq) contract. Sift operations move
// only these 16-byte entries; closures stay put in their slab slot from
// schedule() to pop(), where they are moved (never copied) out to the
// caller. The 4-ary shape halves the tree depth of a binary heap and keeps
// a node's children inside one or two cache lines. Freed slots are recycled
// LIFO so a steady-state simulation (schedule/pop churn at a roughly
// constant horizon) touches a small, cache-resident working set.
//
// Same-time chaining: bulk-synchronous simulations schedule bursts of
// events for one timestamp (every rank waking at the same step boundary,
// zero-delay continuations, equal-latency arrivals from different
// senders). A small open-addressed index maps each pending timestamp to
// its chain tail, so a schedule() at an already-pending time appends in
// O(1) to a FIFO chain hanging off the existing heap entry instead of
// becoming a heap node of its own; pops advance the chain head in place
// with no sift at all. The heap therefore holds at most one entry per
// distinct timestamp. This is safe for the (time, seq) contract: chains
// grow by global scheduling order, so FIFO chain order is exactly seq
// order within a timestamp, and across timestamps the heap orders as
// before.
//
// Capacity: 24 slot bits allow 16.7M simultaneously pending events and 40
// seq bits allow ~1.1e12 events per run; both are enforced loudly.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "support/check.hpp"

namespace iw::sim {

class Calendar {
 public:
  /// Enqueues `fn` to run at `when`. Returns the event's sequence number
  /// (useful only for diagnostics; events cannot be cancelled — cancellation
  /// is expressed by the closure checking its own validity flag).
  std::uint64_t schedule(SimTime when, EventFn fn);

  /// Pre-sizes the slab, heap, and free list for `events` simultaneously
  /// pending events, so a run of known shape never reallocates.
  void reserve(std::size_t events);

  /// Discards every pending event and restores the pristine state (seq
  /// counter and peak tracking included) while keeping all heap capacity —
  /// the slab, chain links, free list, and time index stay allocated. A
  /// reset calendar behaves exactly like a freshly constructed one, which
  /// is what makes cluster reuse byte-deterministic.
  void reset() noexcept;

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Largest number of simultaneously pending events seen so far.
  [[nodiscard]] std::size_t peak_size() const noexcept { return peak_size_; }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest event. Requires !empty().
  Event pop();

  /// Fast path for draining a same-timestamp batch: if the earliest pending
  /// event fires exactly at `when`, moves its closure into `out` and returns
  /// true; otherwise leaves `out` untouched and returns false. Equal-time
  /// events come out in ascending seq order, so a drain loop preserves the
  /// deterministic (time, seq) contract.
  bool pop_if_at(SimTime when, EventFn& out);

  /// Full structural audit (audit builds only; a no-op otherwise). Walks
  /// the heap (4-ary order property, one entry per timestamp), every
  /// same-time chain (ascending seq, live slots only), the slab free list
  /// (no duplicates, no live slot), and the time index (every heap entry's
  /// timestamp maps to its chain tail), and reconciles the slot accounting:
  /// chained live events == size() and live + free == slab extent. O(n);
  /// called from Engine::reset and the audit-mode tests, never per event.
  void audit() const;

 private:
  static constexpr std::size_t kArity = 4;
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Entry {
    std::int64_t when_ns;
    std::uint64_t seq_slot;  ///< seq << kSlotBits | slot of the chain head
  };

  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.seq_slot < b.seq_slot;
  }

  /// Open-addressed hash index: pending timestamp -> chain tail slot.
  /// Power-of-two capacity, linear probing, tombstone deletion with
  /// rehash-on-clutter. Determinism is untouched: the index is only ever
  /// queried per key, never iterated.
  class TimeIndex {
   public:
    /// Single-pass upsert: if `when_ns` is present, returns the address of
    /// its tail slot (caller appends to the chain). Otherwise records
    /// (when_ns -> tail) and returns nullptr (caller creates a heap entry).
    std::uint32_t* find_or_insert(std::int64_t when_ns, std::uint32_t tail);
    /// Erases a timestamp (must be present).
    void erase(std::int64_t when_ns) noexcept;

    /// Drops every entry; table storage is retained.
    void clear() noexcept;

#if IW_AUDIT_ENABLED
    /// Audit-only probe: the tail recorded for `when_ns`, or nullptr when
    /// the timestamp is absent. Mutates nothing.
    [[nodiscard]] const std::uint32_t* find(std::int64_t when_ns) const;
    /// Audit-only: number of live (kUsed) cells.
    [[nodiscard]] std::size_t live_entries() const noexcept { return used_; }
#endif

   private:
    enum : std::uint32_t { kFree = 0, kUsed = 1, kTomb = 2 };
    struct Cell {
      std::int64_t when_ns;
      std::uint32_t tail;
      std::uint32_t state;
    };

    static std::size_t hash(std::int64_t when_ns) noexcept {
      auto x = static_cast<std::uint64_t>(when_ns) * 0x9E3779B97F4A7C15ull;
      return static_cast<std::size_t>(x >> 32);
    }

    void rehash(std::size_t capacity);

    std::vector<Cell> cells_;  ///< size is a power of two (or empty)
    std::size_t used_ = 0;
    std::size_t tombs_ = 0;
  };

  std::uint32_t acquire_slot(EventFn&& fn, std::uint64_t seq);
  /// Releases the root's slot and either advances its chain or removes the
  /// heap entry. Returns the released slot.
  std::uint32_t advance_root();
  void remove_root();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Entry> heap_;
  std::vector<EventFn> slab_;  ///< closure storage, indexed by slot
  std::vector<std::uint32_t> chain_next_;  ///< same-time FIFO links
  std::vector<std::uint64_t> slot_seq_;    ///< per-slot sequence numbers
  std::vector<std::uint32_t> free_slots_;
  TimeIndex times_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace iw::sim
