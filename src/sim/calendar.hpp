// The event calendar: a deterministic min-heap of future events.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/event.hpp"

namespace iw::sim {

class Calendar {
 public:
  /// Enqueues `fn` to run at `when`. Returns the event's sequence number
  /// (useful only for diagnostics; events cannot be cancelled — cancellation
  /// is expressed by the closure checking its own validity flag).
  std::uint64_t schedule(SimTime when, EventFn fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest event. Requires !empty().
  Event pop();

 private:
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace iw::sim
