// The discrete-event engine.
//
// The engine owns the simulated clock and the calendar and advances time by
// firing events in deterministic (time, sequence) order. Everything in
// idlewave — compute phases, message transfers, protocol handshakes,
// bandwidth-domain re-scheduling — is expressed as events.
#pragma once

#include <cstdint>

#include "sim/calendar.hpp"
#include "support/time.hpp"

namespace iw::obs {
class Tracer;
}

namespace iw::sim {

class Engine {
 public:
  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`; `when` must not precede now().
  void at(SimTime when, EventFn fn);

  /// Schedules `fn` after a non-negative delay from now().
  void after(Duration delay, EventFn fn);

  /// Runs until the calendar empties or stop() is called.
  void run();

  /// Runs until simulated time exceeds `deadline` (events exactly at the
  /// deadline still fire), the calendar empties, or stop() is called.
  void run_until(SimTime deadline);

  /// Requests the run loop to exit after the current event.
  void stop() { stopped_ = true; }

  /// Rewinds the engine to its freshly constructed state — clock at zero,
  /// counters cleared, every pending event discarded — while keeping the
  /// calendar's slab capacity. The reuse path (Cluster::reset) relies on a
  /// reset engine being indistinguishable from a new one; audit builds
  /// verify that post-condition structurally.
  void reset() noexcept {
    calendar_.reset();
    now_ = SimTime::zero();
    stopped_ = false;
    processed_ = 0;
    batches_ = 0;
    tracer_ = nullptr;
    IW_ASSERT(calendar_.empty() && calendar_.size() == 0 &&
                  calendar_.peak_size() == 0,
              "Engine::reset post-condition: calendar not pristine");
    IW_AUDIT(calendar_.audit());
  }

  /// Arms (or with nullptr disarms) the protocol flight recorder: the run
  /// loop brackets each run with run_begin/run_end records. Cleared by
  /// reset(); harnesses re-arm per run.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Pre-sizes the calendar for `events` simultaneously pending events.
  void reserve_events(std::size_t events) { calendar_.reserve(events); }

  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  /// Same-timestamp batches drained (outer run-loop iterations) — the
  /// events_processed/batches ratio is the calendar's chaining win.
  [[nodiscard]] std::uint64_t batches() const { return batches_; }
  [[nodiscard]] std::size_t events_pending() const { return calendar_.size(); }

  /// Largest calendar population seen so far — the working-set figure the
  /// perf bench tracks (BENCH_engine.json).
  [[nodiscard]] std::size_t peak_events_pending() const {
    return calendar_.peak_size();
  }

 private:
  Calendar calendar_;
  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
  std::uint64_t processed_ = 0;
  std::uint64_t batches_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace iw::sim
