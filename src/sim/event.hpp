// Event primitives for the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>

#include "support/time.hpp"

namespace iw::sim {

/// An event action. Events are closures so that the higher layers (MPI
/// protocol machines, bandwidth domains, processes) can schedule arbitrary
/// continuations without the engine knowing their types.
using EventFn = std::function<void()>;

/// A scheduled event. `seq` is a global monotone counter that breaks
/// timestamp ties deterministically: two events at the same simulated time
/// always fire in scheduling order, on every platform.
struct Event {
  SimTime when;
  std::uint64_t seq;
  EventFn fn;
};

/// Strict weak ordering for the calendar's min-heap.
struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

}  // namespace iw::sim
