// Event primitives for the discrete-event engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "support/error.hpp"
#include "support/time.hpp"

namespace iw::sim {

/// An event action. Events are closures so that the higher layers (MPI
/// protocol machines, bandwidth domains, processes) can schedule arbitrary
/// continuations without the engine knowing their types.
///
/// EventFn is a move-only replacement for std::function<void()> tuned for
/// the calendar hot path: closures up to kInlineBytes with a nothrow move
/// constructor live inside the object (no allocation, and a pop() moves at
/// most kInlineBytes instead of touching the heap); larger or throwing-move
/// callables fall back to a single heap allocation whose relocation is one
/// pointer copy. Being move-only also lets call sites thread one-shot
/// continuations through protocol layers without shared_ptr wrappers.
class EventFn {
 public:
  /// Sized for the engine's common closures: a this-pointer plus a few
  /// captured scalars. Every closure in src/ scheduled on the hot path
  /// (compute completion, NIC completion, bandwidth re-rating) fits.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }
  friend bool operator==(const EventFn& f, std::nullptr_t) noexcept {
    return f.vtable_ == nullptr;
  }

  /// Invokes the callable. Calling an empty EventFn is a contract
  /// violation and fails loudly (the std::function it replaced threw
  /// std::bad_function_call; silent UB is not acceptable here).
  void operator()() {
    IW_CHECK(vtable_ != nullptr, "invoking an empty EventFn");
    vtable_->invoke(storage_);
  }

  /// True when the callable lives in the inline buffer (observable for
  /// tests; meaningless on an empty EventFn).
  [[nodiscard]] bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

 private:
  struct VTable {
    void (*invoke)(void* p);
    /// Move-constructs the callable from `from` into `to` and destroys the
    /// source (for heap-held callables: one pointer copy). Consulted only
    /// when !trivial_relocate.
    void (*relocate)(void* from, void* to) noexcept;
    /// Consulted only when !trivial_destroy.
    void (*destroy)(void* p) noexcept;
    bool inline_storage;
    /// Relocation is a plain buffer copy: trivially copyable inline
    /// callables, and every heap-held callable (its storage is one raw
    /// pointer). Lets move_from skip the indirect call — the calendar moves
    /// each event several times between schedule() and invocation, and
    /// simulator closures (a this-pointer plus scalars) are almost always
    /// in this class.
    bool trivial_relocate;
    /// Destruction is a no-op (trivially destructible inline callables).
    bool trivial_destroy;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
      true,
      std::is_trivially_copyable_v<D>,
      std::is_trivially_destructible_v<D>,
  };

  template <typename D>
  static constexpr VTable kHeapVTable{
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D*(*std::launder(reinterpret_cast<D**>(from)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
      false,
      true,   // storage is one raw pointer; copying the buffer moves it
      false,  // must delete the heap object
  };

  void move_from(EventFn& other) noexcept {
    const VTable* vt = other.vtable_;
    if (vt == nullptr) return;
    if (vt->trivial_relocate) {
      // Copying the whole buffer is correct for any trivially relocatable
      // callable and lets the compiler emit a few wide moves inline.
      std::memcpy(storage_, other.storage_, kInlineBytes);
    } else {
      vt->relocate(other.storage_, storage_);
    }
    vtable_ = vt;
    other.vtable_ = nullptr;
  }

  void reset() noexcept {
    const VTable* vt = vtable_;
    if (vt != nullptr) {
      if (!vt->trivial_destroy) vt->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

/// A scheduled event. `seq` is a global monotone counter that breaks
/// timestamp ties deterministically: two events at the same simulated time
/// always fire in scheduling order, on every platform.
struct Event {
  SimTime when;
  std::uint64_t seq;
  EventFn fn;
};

/// Strict weak ordering on (time, seq): the calendar's contract. Kept as a
/// named comparator so reference implementations (e.g. the naive
/// priority_queue baseline in bench/perf_engine.cpp) state the identical
/// ordering.
struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

}  // namespace iw::sim
