#include "sim/engine.hpp"

#include <utility>

#include "obs/tracer.hpp"
#include "support/error.hpp"

namespace iw::sim {

void Engine::at(SimTime when, EventFn fn) {
  IW_REQUIRE(when >= now_, "cannot schedule an event in the past");
  calendar_.schedule(when, std::move(fn));
}

void Engine::after(Duration delay, EventFn fn) {
  IW_REQUIRE(delay.ns() >= 0, "event delay must be non-negative");
  calendar_.schedule(now_ + delay, std::move(fn));
}

void Engine::run() { run_until(SimTime::max()); }

void Engine::run_until(SimTime deadline) {
  stopped_ = false;
  if (tracer_ != nullptr)
    tracer_->record(now_, obs::TraceEvent::kRunBegin, -1);
  EventFn fn;
  while (!stopped_ && !calendar_.empty()) {
    const SimTime batch = calendar_.next_time();
    if (batch > deadline) break;
    IW_ASSERT(batch >= now_, "calendar produced an out-of-order event");
    now_ = batch;
    ++batches_;
    // Same-timestamp fast path: drain the whole batch with one combined
    // check-and-pop per event instead of an empty/next_time/pop triple.
    // (time, seq) determinism is preserved: the heap yields equal-time
    // entries in ascending seq order, and anything scheduled at `batch`
    // from inside a handler gets a larger seq, so it drains after the
    // events already pending — exactly the one-at-a-time order.
    while (calendar_.pop_if_at(batch, fn)) {
      ++processed_;
      fn();
      if (stopped_) break;
    }
  }
  if (tracer_ != nullptr) tracer_->record(now_, obs::TraceEvent::kRunEnd, -1);
}

}  // namespace iw::sim
