#include "sim/engine.hpp"

#include <utility>

#include "support/error.hpp"

namespace iw::sim {

void Engine::at(SimTime when, EventFn fn) {
  IW_REQUIRE(when >= now_, "cannot schedule an event in the past");
  calendar_.schedule(when, std::move(fn));
}

void Engine::after(Duration delay, EventFn fn) {
  IW_REQUIRE(delay.ns() >= 0, "event delay must be non-negative");
  calendar_.schedule(now_ + delay, std::move(fn));
}

void Engine::run() { run_until(SimTime::max()); }

void Engine::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !calendar_.empty()) {
    if (calendar_.next_time() > deadline) break;
    Event ev = calendar_.pop();
    IW_ASSERT(ev.when >= now_, "calendar produced an out-of-order event");
    now_ = ev.when;
    ++processed_;
    ev.fn();
  }
}

}  // namespace iw::sim
