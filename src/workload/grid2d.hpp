// Two-dimensional Cartesian halo-exchange workload.
//
// The paper's categorization (Sec. II-C2b) names multiple-neighbor
// communication as the generalization of its 1-D chains: "this occurs in
// many linear algebra and domain decomposition scenarios and entails more
// rigid dependencies across the processor grid". This builder creates a
// px * py process grid with 4-neighbor (von Neumann) halo exchange, letting
// idle waves be studied in two dimensions, where the front becomes a
// diamond (L1 ball) expanding at the Eq. 2 speed per hop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpi/program.hpp"
#include "workload/ring.hpp"

namespace iw::workload {

struct Grid2DSpec {
  int px = 4;                    ///< ranks along x
  int py = 4;                    ///< ranks along y
  Boundary boundary = Boundary::open;
  std::int64_t msg_bytes = 8192;
  int steps = 20;
  Duration texec = milliseconds(3.0);
  bool noisy = true;

  [[nodiscard]] int ranks() const { return px * py; }
};

/// Rank of grid coordinate (x, y); row-major.
[[nodiscard]] int grid_rank(const Grid2DSpec& spec, int x, int y);

/// Coordinates of a rank.
[[nodiscard]] std::pair<int, int> grid_coords(const Grid2DSpec& spec,
                                              int rank);

/// The 4-neighborhood of `rank` under the boundary rule (out-of-range
/// neighbors dropped for open boundaries). Order: +x, -x, +y, -y.
[[nodiscard]] std::vector<int> grid_neighbors(const Grid2DSpec& spec,
                                              int rank);

/// Manhattan (hop) distance between two ranks under the boundary rule.
[[nodiscard]] int grid_distance(const Grid2DSpec& spec, int a, int b);

/// Builds one Program per rank: compute + 4-neighbor exchange + waitall per
/// step, with one-off delays injected per `delays`.
[[nodiscard]] std::vector<mpi::Program> build_grid2d(
    const Grid2DSpec& spec, std::span<const DelaySpec> delays = {});

}  // namespace iw::workload
