#include "workload/collectives.hpp"

#include <map>

#include "support/error.hpp"

namespace iw::workload {
namespace {

/// Lowest set bit; for rank 0 (the root) returns a value above any rank.
int lowbit(int r, int ranks) { return r == 0 ? 2 * ranks : r & (-r); }

/// Children of `rank` in the binomial tree rooted at 0.
std::vector<int> tree_children(int rank, int ranks) {
  std::vector<int> children;
  for (int m = 1; m < lowbit(rank, ranks); m <<= 1) {
    const int child = rank + m;
    if (child < ranks) children.push_back(child);
  }
  return children;
}

/// Parent of `rank` (rank 0 has none).
int tree_parent(int rank) { return rank - (rank & (-rank)); }

int log2_ceil(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

int collective_tag_span(CollectiveKind kind, int ranks) {
  switch (kind) {
    case CollectiveKind::none: return 0;
    case CollectiveKind::barrier: return 2;  // up tag + down tag
    case CollectiveKind::allreduce: return 2 * (ranks - 1);
    case CollectiveKind::bcast: return 1;
  }
  return 0;
}

void append_barrier(mpi::Program& prog, int rank, int ranks, int tag_base) {
  IW_REQUIRE(ranks >= 1, "barrier needs at least one rank");
  IW_REQUIRE(rank >= 0 && rank < ranks, "rank out of range");
  if (ranks == 1) return;
  const int up_tag = tag_base;
  const int down_tag = tag_base + 1;
  const auto children = tree_children(rank, ranks);

  // Up-sweep: wait for all children, then notify the parent.
  for (const int child : children) prog.irecv(child, 1, up_tag);
  if (!children.empty()) prog.waitall();
  if (rank != 0) {
    prog.isend(tree_parent(rank), 1, up_tag);
    prog.irecv(tree_parent(rank), 1, down_tag);
    prog.waitall();
  }
  // Down-sweep: release the children.
  for (const int child : children) prog.isend(child, 1, down_tag);
  if (!children.empty()) prog.waitall();
}

void append_ring_allreduce(mpi::Program& prog, int rank, int ranks,
                           std::int64_t bytes, int tag_base) {
  IW_REQUIRE(ranks >= 2, "ring allreduce needs at least two ranks");
  IW_REQUIRE(rank >= 0 && rank < ranks, "rank out of range");
  IW_REQUIRE(bytes >= 0, "payload must be non-negative");
  const std::int64_t chunk = std::max<std::int64_t>(1, bytes / ranks);
  const int right = (rank + 1) % ranks;
  const int left = (rank - 1 + ranks) % ranks;
  // Reduce-scatter then allgather: 2(n-1) synchronous neighbor rounds.
  for (int round = 0; round < 2 * (ranks - 1); ++round) {
    prog.isend(right, chunk, tag_base + round);
    prog.irecv(left, chunk, tag_base + round);
    prog.waitall();
  }
}

void append_bcast(mpi::Program& prog, int rank, int ranks, std::int64_t bytes,
                  int tag_base) {
  IW_REQUIRE(ranks >= 1, "broadcast needs at least one rank");
  IW_REQUIRE(rank >= 0 && rank < ranks, "rank out of range");
  if (ranks == 1) return;
  // Receive from the parent first (except the root), then forward down.
  if (rank != 0) {
    prog.irecv(tree_parent(rank), bytes, tag_base);
    prog.waitall();
  }
  for (const int child : tree_children(rank, ranks)) {
    prog.isend(child, bytes, tag_base);
  }
  if (!tree_children(rank, ranks).empty()) prog.waitall();
}

std::vector<mpi::Program> build_ring_with_collective(
    const RingSpec& spec, CollectiveKind kind, int collective_every,
    std::int64_t collective_bytes, std::span<const DelaySpec> delays) {
  IW_REQUIRE(collective_every >= 1, "collective interval must be >= 1");

  std::map<std::pair<int, int>, Duration> delay_at;
  for (const auto& d : delays) {
    IW_REQUIRE(d.rank >= 0 && d.rank < spec.ranks, "delay rank out of range");
    IW_REQUIRE(d.step >= 0 && d.step < spec.steps, "delay step out of range");
    delay_at[{d.rank, d.step}] += d.duration;
  }

  // Tag layout: even tags for the halo exchange of each step, a disjoint
  // band above `spec.steps` for collectives (span per invocation).
  const int span = std::max(1, collective_tag_span(kind, spec.ranks));
  const int log_depth = log2_ceil(std::max(2, spec.ranks));
  (void)log_depth;

  std::vector<mpi::Program> programs(static_cast<std::size_t>(spec.ranks));
  for (int rank = 0; rank < spec.ranks; ++rank) {
    auto& prog = programs[static_cast<std::size_t>(rank)];
    const auto sends = send_peers(spec, rank);
    const auto recvs = recv_peers(spec, rank);
    for (int step = 0; step < spec.steps; ++step) {
      prog.mark(step);
      prog.compute(spec.texec, spec.noisy);
      if (const auto it = delay_at.find({rank, step}); it != delay_at.end())
        prog.inject(it->second);
      for (const int peer : sends) prog.isend(peer, spec.msg_bytes, step);
      for (const int peer : recvs) prog.irecv(peer, spec.msg_bytes, step);
      prog.waitall();

      if ((step + 1) % collective_every == 0 &&
          kind != CollectiveKind::none) {
        const int tag_base = spec.steps + (step / collective_every) * span;
        switch (kind) {
          case CollectiveKind::barrier:
            append_barrier(prog, rank, spec.ranks, tag_base);
            break;
          case CollectiveKind::allreduce:
            append_ring_allreduce(prog, rank, spec.ranks, collective_bytes,
                                  tag_base);
            break;
          case CollectiveKind::bcast:
            append_bcast(prog, rank, spec.ranks, collective_bytes, tag_base);
            break;
          case CollectiveKind::none:
            break;
        }
      }
    }
  }
  return programs;
}

}  // namespace iw::workload
