// MPI-parallel STREAM triad workload (paper Sec. I-B, Fig. 1).
//
// The motivating experiment: A(:) = B(:) + s*C(:) over 5e7 elements
// (Vmem = 1.2 GB working set, 24 B/element across three arrays), split
// evenly across ranks; after each full traversal every rank exchanges
// Vnet = 2 MB with both ring neighbors (closed ring). The compute phase is
// memory-bound and runs in the rank's socket bandwidth domain, so the
// saturation/overlap physics of Fig. 1 emerges in simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/program.hpp"

namespace iw::workload {

struct StreamTriadSpec {
  std::int64_t elements = 50'000'000;  ///< total vector length
  int bytes_per_element = 24;          ///< 3 arrays x 8 B
  int flops_per_element = 2;           ///< multiply + add
  std::int64_t halo_bytes = 2 * 1024 * 1024;  ///< Vnet per neighbor
  int ranks = 20;
  int steps = 100;
};

/// Working-set bytes one rank streams per traversal.
[[nodiscard]] std::int64_t triad_bytes_per_rank(const StreamTriadSpec& spec);

/// Total flops of one full traversal (all ranks).
[[nodiscard]] std::int64_t triad_flops_per_step(const StreamTriadSpec& spec);

/// Builds one Program per rank: mem_work + bidirectional ring exchange.
[[nodiscard]] std::vector<mpi::Program> build_stream_triad(
    const StreamTriadSpec& spec);

}  // namespace iw::workload
