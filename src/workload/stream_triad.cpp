#include "workload/stream_triad.hpp"

#include "support/error.hpp"

namespace iw::workload {

std::int64_t triad_bytes_per_rank(const StreamTriadSpec& spec) {
  return spec.elements * spec.bytes_per_element / spec.ranks;
}

std::int64_t triad_flops_per_step(const StreamTriadSpec& spec) {
  return spec.elements * spec.flops_per_element;
}

std::vector<mpi::Program> build_stream_triad(const StreamTriadSpec& spec) {
  IW_REQUIRE(spec.ranks >= 1, "need at least one rank");
  IW_REQUIRE(spec.steps >= 1, "need at least one step");
  IW_REQUIRE(spec.elements > 0, "need a non-empty vector");

  const std::int64_t work = triad_bytes_per_rank(spec);
  std::vector<mpi::Program> programs(static_cast<std::size_t>(spec.ranks));
  for (int rank = 0; rank < spec.ranks; ++rank) {
    auto& prog = programs[static_cast<std::size_t>(rank)];
    const int n = spec.ranks;
    const int up = (rank + 1) % n;
    const int down = (rank - 1 + n) % n;
    for (int step = 0; step < spec.steps; ++step) {
      prog.mark(step);
      prog.mem_work(work);
      if (n > 1) {
        prog.isend(up, spec.halo_bytes, step);
        if (down != up) prog.isend(down, spec.halo_bytes, step);
        prog.irecv(down, spec.halo_bytes, step);
        if (down != up) prog.irecv(up, spec.halo_bytes, step);
      }
      prog.waitall();
    }
  }
  return programs;
}

}  // namespace iw::workload
