// Delay-injection plans (paper Sec. IV-B, Fig. 6).
//
// Fig. 6 injects delays "on local rank 5 of every socket" in three
// variants: equal everywhere, half-length on odd sockets, and random
// lengths. These builders produce the corresponding DelaySpec lists.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "support/time.hpp"
#include "workload/ring.hpp"

namespace iw::workload {

enum class MultiDelayMode : std::uint8_t {
  equal,     ///< same duration on every socket — full mutual cancellation
  half_odd,  ///< odd sockets get half the duration — partial cancellation
  random,    ///< uniformly random durations in (0, base] — longest survives
};

[[nodiscard]] constexpr const char* to_string(MultiDelayMode m) {
  switch (m) {
    case MultiDelayMode::equal: return "equal";
    case MultiDelayMode::half_odd: return "half";
    case MultiDelayMode::random: return "random";
  }
  return "?";
}

/// One delay at a single (rank, step).
[[nodiscard]] std::vector<DelaySpec> single_delay(int rank, int step,
                                                  Duration duration);

/// One delay on the `local_rank`-th process of each of `sockets` consecutive
/// groups of `ranks_per_socket` ranks, at `step`, with durations per `mode`.
/// `rng` is consulted only in random mode.
[[nodiscard]] std::vector<DelaySpec> per_socket_delays(
    int sockets, int ranks_per_socket, int local_rank, int step,
    Duration base_duration, MultiDelayMode mode, Rng& rng);

}  // namespace iw::workload
