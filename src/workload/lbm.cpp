#include "workload/lbm.hpp"

#include "support/error.hpp"

namespace iw::workload {

std::int64_t lbm_bytes_per_rank(const LbmSpec& spec) {
  const std::int64_t cells = static_cast<std::int64_t>(spec.nx) * spec.ny *
                             spec.nz / spec.ranks;
  return cells * spec.bytes_per_cell;
}

std::int64_t lbm_halo_bytes(const LbmSpec& spec) {
  // One face: ny*nz cells, halo_populations doubles each.
  return static_cast<std::int64_t>(spec.ny) * spec.nz *
         spec.halo_populations * 8;
}

std::int64_t lbm_working_set(const LbmSpec& spec) {
  return static_cast<std::int64_t>(spec.nx) * spec.ny * spec.nz * 19 * 8 * 2;
}

std::vector<mpi::Program> build_lbm(const LbmSpec& spec) {
  IW_REQUIRE(spec.ranks >= 2, "LBM proxy needs at least two ranks");
  IW_REQUIRE(spec.nx >= spec.ranks,
             "outer dimension must be at least one layer per rank");
  IW_REQUIRE(spec.steps >= 1, "need at least one timestep");

  const std::int64_t work = lbm_bytes_per_rank(spec);
  const std::int64_t halo = lbm_halo_bytes(spec);

  std::vector<mpi::Program> programs(static_cast<std::size_t>(spec.ranks));
  for (int rank = 0; rank < spec.ranks; ++rank) {
    auto& prog = programs[static_cast<std::size_t>(rank)];
    const int n = spec.ranks;
    const int up = (rank + 1) % n;
    const int down = (rank - 1 + n) % n;
    for (int step = 0; step < spec.steps; ++step) {
      prog.mark(step);
      prog.mem_work(work);
      prog.isend(up, halo, step);
      if (down != up) prog.isend(down, halo, step);
      prog.irecv(down, halo, step);
      if (down != up) prog.irecv(up, halo, step);
      prog.waitall();
    }
  }
  return programs;
}

}  // namespace iw::workload
