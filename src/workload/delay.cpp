#include "workload/delay.hpp"

#include "support/error.hpp"

namespace iw::workload {

std::vector<DelaySpec> single_delay(int rank, int step, Duration duration) {
  return {DelaySpec{rank, step, duration}};
}

std::vector<DelaySpec> per_socket_delays(int sockets, int ranks_per_socket,
                                         int local_rank, int step,
                                         Duration base_duration,
                                         MultiDelayMode mode, Rng& rng) {
  IW_REQUIRE(sockets >= 1, "need at least one socket");
  IW_REQUIRE(ranks_per_socket >= 1, "need at least one rank per socket");
  IW_REQUIRE(local_rank >= 0 && local_rank < ranks_per_socket,
             "local rank must fit in the socket");
  IW_REQUIRE(base_duration.ns() > 0, "base delay must be positive");

  std::vector<DelaySpec> delays;
  delays.reserve(static_cast<std::size_t>(sockets));
  for (int s = 0; s < sockets; ++s) {
    Duration d = base_duration;
    switch (mode) {
      case MultiDelayMode::equal:
        break;
      case MultiDelayMode::half_odd:
        if (s % 2 == 1) d = d / 2;
        break;
      case MultiDelayMode::random: {
        // Uniform in (0.1, 1.0] of the base so even the shortest delay is
        // clearly visible against background noise.
        const double frac = rng.uniform(0.1, 1.0);
        d = Duration{static_cast<std::int64_t>(
            static_cast<double>(base_duration.ns()) * frac)};
        break;
      }
    }
    delays.push_back(DelaySpec{s * ranks_per_socket + local_rank, step, d});
  }
  return delays;
}

}  // namespace iw::workload
