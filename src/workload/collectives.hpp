// Collective operations composed from point-to-point primitives.
//
// The paper's outlook (Sec. VII) asks how "more advanced point-to-point and
// also collective communication patterns influence the idle wave
// phenomenon". These builders append textbook collective algorithms to rank
// programs so that question can be studied on the simulator:
//
//  * binomial-tree barrier  — O(log n) depth, rooted at rank 0;
//  * ring allreduce         — 2(n-1) rounds of neighbor exchange
//                             (reduce-scatter + allgather);
//  * binomial broadcast     — root-to-all along the same tree.
//
// A collective is a *synchronization funnel*: an idle wave that reaches any
// participant is instantly globalized by the barrier/allreduce dependency
// structure, which changes the propagation picture qualitatively (see
// bench/ext_collective_waves).
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/program.hpp"
#include "workload/ring.hpp"

namespace iw::workload {

enum class CollectiveKind : std::uint8_t { none, barrier, allreduce, bcast };

[[nodiscard]] constexpr const char* to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::none: return "none";
    case CollectiveKind::barrier: return "barrier";
    case CollectiveKind::allreduce: return "allreduce";
    case CollectiveKind::bcast: return "bcast";
  }
  return "?";
}

/// Appends a binomial-tree barrier (up-sweep to rank 0, down-sweep back).
/// `tag_base` must leave 2*ceil(log2(n)) tag values free.
void append_barrier(mpi::Program& prog, int rank, int ranks, int tag_base);

/// Appends a ring allreduce of `bytes` total payload: 2(n-1) rounds of
/// send-right/receive-left with bytes/n chunks (reduce-scatter followed by
/// allgather). Requires ranks >= 2.
void append_ring_allreduce(mpi::Program& prog, int rank, int ranks,
                           std::int64_t bytes, int tag_base);

/// Appends a binomial broadcast of `bytes` from rank 0.
void append_bcast(mpi::Program& prog, int rank, int ranks, std::int64_t bytes,
                  int tag_base);

/// Number of distinct tags a collective may consume (for tag budgeting).
[[nodiscard]] int collective_tag_span(CollectiveKind kind, int ranks);

/// Ring workload in which every `collective_every` steps the compute-
/// exchange cycle is followed by the given collective (payload
/// `collective_bytes` where applicable). This is the paper's bulk-
/// synchronous benchmark with a periodic global synchronization point.
[[nodiscard]] std::vector<mpi::Program> build_ring_with_collective(
    const RingSpec& spec, CollectiveKind kind, int collective_every,
    std::int64_t collective_bytes,
    std::span<const DelaySpec> delays = {});

}  // namespace iw::workload
