// Lattice-Boltzmann D3Q19 proxy workload (paper Sec. I-B, Fig. 2).
//
// The paper's second motivating example: a double-precision D3Q19
// single-relaxation-time LBM solver on 302^3 cells, decomposed along the
// outer dimension across 100 ranks with periodic boundaries, giving >=30 %
// communication overhead. The proxy reproduces the performance-relevant
// structure: a memory-bound sweep over the rank's slab (two lattices, 19
// populations) followed by halo exchanges with both neighbors.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/program.hpp"

namespace iw::workload {

struct LbmSpec {
  int nx = 302, ny = 302, nz = 302;  ///< lattice cells incl. boundary layer
  int ranks = 100;
  int steps = 1000;
  /// Memory traffic per cell update: 19 populations read + 19 written with
  /// write-allocate (19*8*3 = 456 B). Tunable for calibration studies.
  int bytes_per_cell = 456;
  /// Populations crossing a face per cell (5 of 19 move in +x or -x).
  int halo_populations = 5;
};

/// Memory traffic one rank's slab generates per timestep.
[[nodiscard]] std::int64_t lbm_bytes_per_rank(const LbmSpec& spec);

/// Halo bytes exchanged with each neighbor per timestep.
[[nodiscard]] std::int64_t lbm_halo_bytes(const LbmSpec& spec);

/// Aggregate working set (both lattices), for reporting.
[[nodiscard]] std::int64_t lbm_working_set(const LbmSpec& spec);

/// Builds one Program per rank: mem_work + bidirectional periodic halo
/// exchange along the decomposed (outer) dimension.
[[nodiscard]] std::vector<mpi::Program> build_lbm(const LbmSpec& spec);

}  // namespace iw::workload
