// Ring / chain workload builder: the bulk-synchronous synthetic benchmark
// of the paper (Sec. II-C2, IV).
//
// Every rank executes `steps` iterations of
//   compute(Texec)  ->  Isend/Irecv to all neighbors  ->  Waitall
// with next-neighbor (or distance-d) point-to-point communication, in all
// eight combinations of {eager, rendezvous} x {uni, bi}directional x
// {open, periodic} boundaries that Fig. 5 scans. One-off delays are injected
// at given (rank, step) positions right after the compute phase of that
// step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpi/program.hpp"
#include "support/time.hpp"

namespace iw::workload {

enum class Direction : std::uint8_t { unidirectional, bidirectional };
enum class Boundary : std::uint8_t { open, periodic };

[[nodiscard]] constexpr const char* to_string(Direction d) {
  return d == Direction::unidirectional ? "unidirectional" : "bidirectional";
}
[[nodiscard]] constexpr const char* to_string(Boundary b) {
  return b == Boundary::open ? "open" : "periodic";
}

struct RingSpec {
  int ranks = 18;
  Direction direction = Direction::unidirectional;
  Boundary boundary = Boundary::open;
  int distance = 1;                     ///< d: talk to i±1..i±d
  std::int64_t msg_bytes = 8192;        ///< paper default message size
  int steps = 20;
  Duration texec = milliseconds(3.0);   ///< paper default execution phase
  bool noisy = true;                    ///< compute phases receive noise
};

/// A one-off delay injected at `rank` after the compute phase of `step`.
struct DelaySpec {
  int rank = 0;
  int step = 0;
  Duration duration;
};

/// Builds one Program per rank.
///
/// Unidirectional: rank i sends to i+k and receives from i-k, k = 1..d
/// (paper: "each process receives data from one neighbor and sends it to
/// the other"). Bidirectional: i exchanges with both i±k. With open
/// boundaries, out-of-range neighbors are skipped; with periodic boundaries
/// indices wrap (closed ring). Message tags encode the step so matching is
/// unambiguous across rounds.
[[nodiscard]] std::vector<mpi::Program> build_ring(
    const RingSpec& spec, std::span<const DelaySpec> delays = {});

/// Builds the Program of a single rank — identical op stream to the
/// corresponding build_ring entry. The fast-forward path uses this to
/// materialize only the active ranks' programs: at machine scale the silent
/// majority never gets a Program at all.
[[nodiscard]] mpi::Program build_ring_rank(const RingSpec& spec, int rank,
                                           std::span<const DelaySpec> delays =
                                               {});

/// Neighbor list (send targets) of `rank` under the spec; exposed for tests
/// and for the analytic Tcomm estimate.
[[nodiscard]] std::vector<int> send_peers(const RingSpec& spec, int rank);

/// Neighbor list (receive sources) of `rank` under the spec.
[[nodiscard]] std::vector<int> recv_peers(const RingSpec& spec, int rank);

}  // namespace iw::workload
