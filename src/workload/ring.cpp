#include "workload/ring.hpp"

#include <map>

#include "support/error.hpp"

namespace iw::workload {
namespace {

/// Resolves rank + offset under the boundary rule; -1 if outside an open
/// chain.
int neighbor(const RingSpec& spec, int rank, int offset) {
  const int n = spec.ranks;
  int peer = rank + offset;
  if (spec.boundary == Boundary::periodic) return ((peer % n) + n) % n;
  return (peer >= 0 && peer < n) ? peer : -1;
}

void validate(const RingSpec& spec) {
  IW_REQUIRE(spec.ranks >= 2, "ring needs at least two ranks");
  IW_REQUIRE(spec.distance >= 1, "communication distance must be >= 1");
  IW_REQUIRE(spec.distance < spec.ranks,
             "communication distance must be smaller than the ring");
  IW_REQUIRE(spec.steps >= 1, "need at least one timestep");
  IW_REQUIRE(spec.msg_bytes >= 0, "message size must be non-negative");
  if (spec.boundary == Boundary::periodic)
    IW_REQUIRE(2 * spec.distance < spec.ranks,
               "periodic ring must be larger than the neighborhood");
}

}  // namespace

std::vector<int> send_peers(const RingSpec& spec, int rank) {
  std::vector<int> peers;
  for (int k = 1; k <= spec.distance; ++k) {
    if (const int up = neighbor(spec, rank, k); up >= 0) peers.push_back(up);
    if (spec.direction == Direction::bidirectional)
      if (const int down = neighbor(spec, rank, -k); down >= 0)
        peers.push_back(down);
  }
  return peers;
}

std::vector<int> recv_peers(const RingSpec& spec, int rank) {
  std::vector<int> peers;
  for (int k = 1; k <= spec.distance; ++k) {
    if (const int down = neighbor(spec, rank, -k); down >= 0)
      peers.push_back(down);
    if (spec.direction == Direction::bidirectional)
      if (const int up = neighbor(spec, rank, k); up >= 0)
        peers.push_back(up);
  }
  return peers;
}

namespace {

/// Emits one rank's op stream into `prog`; `delay_at` is the (rank, step)
/// -> duration index shared by the whole-ring and single-rank builders so
/// both emit bit-identical programs.
void emit_ring_rank(const RingSpec& spec, int rank,
                    const std::map<std::pair<int, int>, Duration>& delay_at,
                    mpi::Program& prog) {
  const auto sends = send_peers(spec, rank);
  const auto recvs = recv_peers(spec, rank);
  for (int step = 0; step < spec.steps; ++step) {
    prog.mark(step);
    prog.compute(spec.texec, spec.noisy);
    if (const auto it = delay_at.find({rank, step}); it != delay_at.end())
      prog.inject(it->second);
    for (const int peer : sends) prog.isend(peer, spec.msg_bytes, step);
    for (const int peer : recvs) prog.irecv(peer, spec.msg_bytes, step);
    prog.waitall();
  }
}

/// Index delays by (rank, step) for O(1) lookup while emitting.
std::map<std::pair<int, int>, Duration> index_delays(
    const RingSpec& spec, std::span<const DelaySpec> delays) {
  std::map<std::pair<int, int>, Duration> delay_at;
  for (const auto& d : delays) {
    IW_REQUIRE(d.rank >= 0 && d.rank < spec.ranks, "delay rank out of range");
    IW_REQUIRE(d.step >= 0 && d.step < spec.steps, "delay step out of range");
    delay_at[{d.rank, d.step}] += d.duration;
  }
  return delay_at;
}

}  // namespace

std::vector<mpi::Program> build_ring(const RingSpec& spec,
                                     std::span<const DelaySpec> delays) {
  validate(spec);
  const auto delay_at = index_delays(spec, delays);
  std::vector<mpi::Program> programs(static_cast<std::size_t>(spec.ranks));
  for (int rank = 0; rank < spec.ranks; ++rank)
    emit_ring_rank(spec, rank, delay_at,
                   programs[static_cast<std::size_t>(rank)]);
  return programs;
}

mpi::Program build_ring_rank(const RingSpec& spec, int rank,
                             std::span<const DelaySpec> delays) {
  validate(spec);
  IW_REQUIRE(rank >= 0 && rank < spec.ranks, "rank out of range");
  const auto delay_at = index_delays(spec, delays);
  mpi::Program prog;
  emit_ring_rank(spec, rank, delay_at, prog);
  return prog;
}

}  // namespace iw::workload
