#include "workload/grid2d.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "support/error.hpp"

namespace iw::workload {
namespace {

void validate(const Grid2DSpec& spec) {
  IW_REQUIRE(spec.px >= 1 && spec.py >= 1, "grid must be non-empty");
  IW_REQUIRE(spec.ranks() >= 2, "grid needs at least two ranks");
  IW_REQUIRE(spec.steps >= 1, "need at least one timestep");
  if (spec.boundary == Boundary::periodic)
    IW_REQUIRE(spec.px >= 3 && spec.py >= 3,
               "periodic grid needs at least 3 ranks per dimension");
}

/// Wraps or clips a coordinate; -1 when outside an open grid.
int resolve(int coord, int extent, Boundary boundary) {
  if (boundary == Boundary::periodic) return ((coord % extent) + extent) % extent;
  return (coord >= 0 && coord < extent) ? coord : -1;
}

int axis_distance(int a, int b, int extent, Boundary boundary) {
  const int direct = std::abs(a - b);
  if (boundary == Boundary::open) return direct;
  return std::min(direct, extent - direct);
}

}  // namespace

int grid_rank(const Grid2DSpec& spec, int x, int y) {
  IW_REQUIRE(x >= 0 && x < spec.px && y >= 0 && y < spec.py,
             "grid coordinate out of range");
  return y * spec.px + x;
}

std::pair<int, int> grid_coords(const Grid2DSpec& spec, int rank) {
  IW_REQUIRE(rank >= 0 && rank < spec.ranks(), "rank out of range");
  return {rank % spec.px, rank / spec.px};
}

std::vector<int> grid_neighbors(const Grid2DSpec& spec, int rank) {
  const auto [x, y] = grid_coords(spec, rank);
  std::vector<int> neighbors;
  const int offsets[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  for (const auto& off : offsets) {
    const int nx = resolve(x + off[0], spec.px, spec.boundary);
    const int ny = resolve(y + off[1], spec.py, spec.boundary);
    if (nx < 0 || ny < 0) continue;
    const int peer = grid_rank(spec, nx, ny);
    if (peer != rank) neighbors.push_back(peer);
  }
  return neighbors;
}

int grid_distance(const Grid2DSpec& spec, int a, int b) {
  const auto [ax, ay] = grid_coords(spec, a);
  const auto [bx, by] = grid_coords(spec, b);
  return axis_distance(ax, bx, spec.px, spec.boundary) +
         axis_distance(ay, by, spec.py, spec.boundary);
}

std::vector<mpi::Program> build_grid2d(const Grid2DSpec& spec,
                                       std::span<const DelaySpec> delays) {
  validate(spec);

  std::map<std::pair<int, int>, Duration> delay_at;
  for (const auto& d : delays) {
    IW_REQUIRE(d.rank >= 0 && d.rank < spec.ranks(),
               "delay rank out of range");
    IW_REQUIRE(d.step >= 0 && d.step < spec.steps,
               "delay step out of range");
    delay_at[{d.rank, d.step}] += d.duration;
  }

  std::vector<mpi::Program> programs(static_cast<std::size_t>(spec.ranks()));
  for (int rank = 0; rank < spec.ranks(); ++rank) {
    auto& prog = programs[static_cast<std::size_t>(rank)];
    const auto neighbors = grid_neighbors(spec, rank);
    for (int step = 0; step < spec.steps; ++step) {
      prog.mark(step);
      prog.compute(spec.texec, spec.noisy);
      if (const auto it = delay_at.find({rank, step}); it != delay_at.end())
        prog.inject(it->second);
      for (const int peer : neighbors) prog.isend(peer, spec.msg_bytes, step);
      for (const int peer : neighbors) prog.irecv(peer, spec.msg_bytes, step);
      prog.waitall();
    }
  }
  return programs;
}

}  // namespace iw::workload
