// Minimal self-contained JSON reader.
//
// Covers exactly the dialect this project emits (json_str() escapes,
// csv_num() numbers, flat objects/arrays): objects, arrays, strings,
// numbers, booleans and null. Promoted out of verify/baseline.cpp so the
// campaign-service protocol (line-delimited JSON over a local socket) and
// the verdict baseliner parse with one implementation. Unknown fields are
// the caller's business — the reader materializes the whole document and
// lookups are by key.
//
// Not a general-purpose parser: \u escapes beyond Latin-1 are rejected
// (json_str never emits them) and numbers land in a double (u64-exact
// values travel quoted, per the record-schema convention).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace iw::json {

struct Value {
  enum class Kind : std::uint8_t { null, boolean, number, string, array, object };
  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;

  /// First member named `key`; nullptr when absent (objects only).
  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [name, value] : members)
      if (name == key) return &value;
    return nullptr;
  }

  [[nodiscard]] bool is(Kind k) const { return kind == k; }
};

/// Parses one complete JSON document. Throws std::runtime_error naming the
/// byte offset on malformed input or trailing content; `what` prefixes the
/// message so callers can say whose JSON was bad ("verdict JSON",
/// "request").
[[nodiscard]] Value parse(const std::string& text,
                          const std::string& what = "JSON");

}  // namespace iw::json
