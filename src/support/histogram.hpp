// Fixed-bin-width histogram, used for the Fig. 3 noise characterization
// (the paper uses 640 ns bins for SMT-on data and 7.2 us bins for SMT-off).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace iw {

class Histogram {
 public:
  /// Creates a histogram over [lo, hi) with `bins` equal-width bins.
  /// Out-of-range samples are tallied in underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t count(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }

  /// Fraction of in-range samples in bin i (0 if the histogram is empty).
  [[nodiscard]] double fraction(std::size_t i) const;

  /// Index of the most populated bin (0 if empty).
  [[nodiscard]] std::size_t mode_bin() const;

  /// Renders the histogram as rows "center count fraction bar" for
  /// human-readable figure output. Bins with zero count may be skipped.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50,
                                   bool skip_empty = true) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace iw
