#include "support/json.hpp"

#include <stdexcept>

namespace iw::json {
namespace {

class Reader {
 public:
  Reader(const std::string& text, const std::string& what)
      : p_(text.data()), end_(text.data() + text.size()), what_(what) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (p_ != end_) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(what_ + ": " + msg + " at byte " +
                             std::to_string(offset_));
  }

  [[nodiscard]] bool eof() const { return p_ == end_; }

  char peek() const {
    if (eof()) fail("unexpected end of input");
    return *p_;
  }

  char next() {
    const char c = peek();
    ++p_;
    ++offset_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (!eof() && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      next();
  }

  bool consume_word(const char* word) {
    const char* q = p_;
    for (const char* w = word; *w; ++w, ++q)
      if (q == end_ || *q != *w) return false;
    while (p_ != q) next();
    return true;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::string;
      v.text = string();
      return v;
    }
    if (consume_word("true")) {
      Value v;
      v.kind = Value::Kind::boolean;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      Value v;
      v.kind = Value::Kind::boolean;
      return v;
    }
    if (consume_word("null")) return {};
    return number();
  }

  Value object() {
    Value v;
    v.kind = Value::Kind::object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      next();
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value array() {
    Value v;
    v.kind = Value::Kind::array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      next();
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code *= 16;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
            else fail("bad \\u escape");
          }
          // json_str only emits \u escapes for control bytes; anything
          // beyond Latin-1 would need surrogate handling we don't accept.
          if (code > 0xFF) fail("non-Latin-1 \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown string escape");
      }
    }
  }

  Value number() {
    std::string digits;
    if (peek() == '-') digits += next();
    while (!eof() && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                      *p_ == 'E' || *p_ == '+' || *p_ == '-'))
      digits += next();
    if (digits.empty() || digits == "-") fail("expected a value");
    Value v;
    v.kind = Value::Kind::number;
    std::size_t consumed = 0;
    try {
      v.number = std::stod(digits, &consumed);
    } catch (const std::exception&) {
      fail("malformed number '" + digits + "'");
    }
    if (consumed != digits.size()) fail("malformed number '" + digits + "'");
    return v;
  }

  const char* p_;
  const char* end_;
  const std::string& what_;
  std::size_t offset_ = 0;
};

}  // namespace

Value parse(const std::string& text, const std::string& what) {
  return Reader(text, what).parse();
}

}  // namespace iw::json
