// Minimal CSV and JSON-Lines emission for figure benches and sweep sinks.
#pragma once

#include <fstream>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace iw {

/// Writes rows of comma-separated values with RFC-4180-style quoting of
/// fields that contain commas, quotes, or newlines. The writer owns the
/// stream; destruction flushes and closes it.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// A no-op writer (all rows discarded). Lets benches unconditionally call
  /// row() whether or not --out was given.
  CsvWriter();

  void header(std::initializer_list<std::string> names);
  void header(const std::vector<std::string>& names);
  void row(std::initializer_list<std::string> fields);
  void row(const std::vector<std::string>& fields);

  /// True if this writer actually writes somewhere.
  [[nodiscard]] bool active() const { return static_cast<bool>(out_); }

 private:
  void emit(const std::vector<std::string>& fields);

  std::unique_ptr<std::ofstream> out_;
};

/// Formats a double with enough digits for round-tripping figure data.
[[nodiscard]] std::string csv_num(double v);

/// Streams one JSON object per line (JSON Lines). Field values are raw JSON
/// fragments: pass numbers through csv_num()/std::to_string() and strings
/// through json_str(). Mirrors CsvWriter's inactive-by-default behavior.
class JsonlWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlWriter(const std::string& path);

  /// A no-op writer (all objects discarded).
  JsonlWriter();

  void object(const std::vector<std::pair<std::string, std::string>>& fields);

  /// Writes one already-serialized JSON object as a line, verbatim. The
  /// campaign service streams the exact same bytes over its socket; sharing
  /// the serialization (json_object below) is what makes "cached replay is
  /// byte-identical to a sink file" a structural property instead of a hope.
  void raw_line(const std::string& json);

  /// True if this writer actually writes somewhere.
  [[nodiscard]] bool active() const { return static_cast<bool>(out_); }

 private:
  std::unique_ptr<std::ofstream> out_;
};

/// Encodes `s` as a JSON string literal, quotes included.
[[nodiscard]] std::string json_str(const std::string& s);

/// Serializes one flat JSON object (no trailing newline). Field values are
/// raw JSON fragments, exactly as JsonlWriter::object treats them; this is
/// the single serialization the JSONL sink and the service stream share.
[[nodiscard]] std::string json_object(
    const std::vector<std::pair<std::string, std::string>>& fields);

}  // namespace iw
