// A grow-only pool of non-movable objects with stable addresses.
//
// The Cluster wires Process and BandwidthDomain objects by raw pointer into
// the transport's rank tables, so their addresses must survive pool growth;
// and per-object unique_ptr storage is exactly the allocation-per-rank
// pattern the SoA refactor removes. The pool allocates fixed-size chunks
// (one allocation per 64 objects instead of one per object), constructs in
// place, and never moves or destroys an element until the pool itself dies
// — reuse across runs goes through the element's own reset() instead.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace iw::support {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() {
    for (std::size_t i = size_; i > 0; --i) slot(i - 1)->~T();
  }

  /// Constructs a new element in place and returns it. Never invalidates
  /// existing references.
  template <typename... Args>
  T& emplace(Args&&... args) {
    if (size_ == chunks_.size() * kChunkSize)
      chunks_.push_back(std::make_unique<Chunk>());
    T* obj = new (slot(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *obj;
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    IW_REQUIRE(i < size_, "object pool index out of range");
    return *slot(i);
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    IW_REQUIRE(i < size_, "object pool index out of range");
    return *std::launder(reinterpret_cast<const T*>(
        chunks_[i / kChunkSize]->storage + (i % kChunkSize) * sizeof(T)));
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Heap bytes held (chunk storage + chunk table).
  [[nodiscard]] std::size_t bytes_used() const {
    return chunks_.size() * sizeof(Chunk) +
           chunks_.capacity() * sizeof(std::unique_ptr<Chunk>);
  }

 private:
  static constexpr std::size_t kChunkSize = 64;
  struct Chunk {
    alignas(T) std::byte storage[kChunkSize * sizeof(T)];
  };

  [[nodiscard]] T* slot(std::size_t i) {
    return std::launder(reinterpret_cast<T*>(
        chunks_[i / kChunkSize]->storage + (i % kChunkSize) * sizeof(T)));
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace iw::support
