#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace iw {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  IW_REQUIRE(hi > lo, "histogram range must be non-empty");
  IW_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double value) {
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((value - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  IW_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bin_center(std::size_t i) const {
  return bin_lo(i) + 0.5 * width_;
}

std::size_t Histogram::count(std::size_t i) const {
  IW_REQUIRE(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(i)) / static_cast<double>(total_);
}

std::size_t Histogram::mode_bin() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return static_cast<std::size_t>(it - counts_.begin());
}

std::string Histogram::render(std::size_t max_bar_width,
                              bool skip_empty) const {
  std::ostringstream os;
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (skip_empty && counts_[i] == 0) continue;
    const auto bar =
        peak == 0 ? std::size_t{0}
                  : (counts_[i] * max_bar_width + peak - 1) / peak;
    os << bin_center(i) << '\t' << counts_[i] << '\t' << fraction(i) << '\t'
       << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace iw
