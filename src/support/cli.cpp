#include "support/cli.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace iw {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("expected --flag, got: " + arg);
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key,
                        const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Cli::get_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::stod(*v);
}

std::int64_t Cli::get_or(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::stoll(*v);
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

namespace {

// Splits "4,8,16" into trimmed-nothing elements and converts each with
// `parse`, demanding that the whole element is consumed.
template <typename T, typename ParseFn>
std::vector<T> parse_list(const std::string& key, const std::string& raw,
                          ParseFn parse) {
  std::vector<T> out;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t comma = raw.find(',', begin);
    const std::string elem = raw.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    std::size_t consumed = 0;
    try {
      out.push_back(parse(elem, &consumed));
    } catch (const std::exception&) {
      consumed = std::string::npos;  // signal failure uniformly below
    }
    if (consumed == std::string::npos || consumed != elem.size())
      throw std::invalid_argument("--" + key + ": bad list element '" + elem +
                                  "' in '" + raw + "'");
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> Cli::get_list_or(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return parse_list<std::int64_t>(key, *v, [](const std::string& s,
                                              std::size_t* consumed) {
    return std::stoll(s, consumed);
  });
}

std::vector<double> Cli::get_list_or(const std::string& key,
                                     std::vector<double> fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return parse_list<double>(
      key, *v,
      [](const std::string& s, std::size_t* consumed) {
        return std::stod(s, consumed);
      });
}

std::vector<int> Cli::get_int_list_or(const std::string& key,
                                      std::vector<int> fallback) const {
  if (!has(key)) return fallback;
  std::vector<int> out;
  for (const std::int64_t v : get_list_or(key, std::vector<std::int64_t>{})) {
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max())
      throw std::invalid_argument("--" + key + ": value out of range: " +
                                  std::to_string(v));
    out.push_back(static_cast<int>(v));
  }
  return out;
}

void Cli::allow_only(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end())
      throw std::invalid_argument("unknown flag: --" + key);
  }
}

}  // namespace iw
