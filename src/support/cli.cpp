#include "support/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace iw {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("expected --flag, got: " + arg);
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key,
                        const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Cli::get_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::stod(*v);
}

std::int64_t Cli::get_or(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::stoll(*v);
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

void Cli::allow_only(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end())
      throw std::invalid_argument("unknown flag: --" + key);
  }
}

}  // namespace iw
