// Descriptive statistics and least-squares fitting.
//
// The paper reports medians with min/max whiskers (Figs. 1, 8) and the core
// quantitative results are slopes: idle-wave front speed (ranks/s) and decay
// rate (us/rank) are both linear-regression slopes over (rank, time) or
// (rank, idle-duration) point sets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iw {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
};

/// Computes the full summary of `values`. Empty input yields a zero summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> values);

/// Median (average of central pair for even counts); 0 for empty input.
[[nodiscard]] double median(std::span<const double> values);

/// p-th percentile with linear interpolation, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Result of an ordinary-least-squares line fit y = slope*x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;            ///< coefficient of determination
  double rmse = 0.0;          ///< root-mean-square residual, in y units
  std::size_t n = 0;          ///< number of points used
  /// True when the fit used >= 2 points with distinct x — the only case
  /// where slope/intercept/r2/rmse carry information. A zero fit (n < 2 or
  /// constant x) is the well-defined "no fit" value, never NaN.
  bool valid = false;
};

/// Fits a line through (x[i], y[i]). Requires x.size() == y.size(); returns a
/// zero fit for fewer than two points or degenerate (constant) x.
[[nodiscard]] LineFit fit_line(std::span<const double> x,
                               std::span<const double> y);

}  // namespace iw
