#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace iw {

void TextTable::columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
}

void TextTable::add_row(std::vector<std::string> cells) {
  IW_REQUIRE(cells.size() <= headers_.size() || headers_.empty(),
             "row has more cells than table columns");
  if (!headers_.empty()) cells.resize(headers_.size());
  IW_CHECK(!cells.empty(), "cannot add an empty row; use add_separator");
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::render() const {
  const std::size_t ncols =
      headers_.empty()
          ? (rows_.empty() ? 0 : rows_.front().size())
          : headers_.size();
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) {
    if (c < headers_.size()) width[c] = headers_[c].size();
    for (const auto& row : rows_)
      if (c < row.size()) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) os << "  ";
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c])) << cell;
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
  };

  if (!headers_.empty()) {
    emit_row(headers_);
    emit_rule();
  }
  for (const auto& row : rows_) {
    if (row.empty())
      emit_rule();
    else
      emit_row(row);
  }
  return os.str();
}

std::string fmt_fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace iw
