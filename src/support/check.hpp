// Debug-mode invariant checking for idlewave.
//
// IW_ASSERT(cond, msg) — cheap internal invariant on a hot path. Checked in
//   audit builds, compiles to nothing otherwise. Use for per-operation
//   checks (index ranges, state-machine steps) whose cost would be visible
//   in the event loop.
// IW_AUDIT(stmt)       — expensive structural audit (full heap walk,
//   free-list reconciliation). The whole statement is compiled out of
//   non-audit builds, so the audited structures may expose audit-only
//   methods behind #if IW_AUDIT_ENABLED.
//
// Gating: audits are ON when the build defines IDLEWAVE_AUDIT (the CMake
// option of the same name), ON by default in Debug builds (no NDEBUG), and
// OFF — compiled out entirely, zero code and zero symbols — in Release.
// The CI Release job proves the compiled-out claim with a symbol check:
// `nm libidlewave.a` must not contain `iw_audit_failure`.
//
// Contrast with support/error.hpp: IW_REQUIRE / IW_CHECK are *always on* in
// every build type — they guard API misuse and cross-layer contracts whose
// cost is off the hot path and whose failure modes tests assert on. The
// rule of thumb: error.hpp protects callers from the library, check.hpp
// protects the library from itself.
//
// Failure behaviour: audit failures throw std::logic_error through
// iw::check::audit_failure() so tests can assert that a corrupted structure
// is caught (EXPECT_THROW) without death tests. Note several audited
// methods are noexcept — an audit failure inside one terminates, which is
// the right behaviour outside tests anyway.
#pragma once

#if !defined(IW_AUDIT_ENABLED)
#if defined(IDLEWAVE_AUDIT)
#define IW_AUDIT_ENABLED 1
#elif !defined(NDEBUG)
#define IW_AUDIT_ENABLED 1
#else
#define IW_AUDIT_ENABLED 0
#endif
#endif

namespace iw::check {

/// True when this translation unit was compiled with audits on. Benches use
/// this (plus sanitizer detection) to refuse to record baselines from an
/// instrumented build.
inline constexpr bool kAuditEnabled = IW_AUDIT_ENABLED != 0;

}  // namespace iw::check

#if IW_AUDIT_ENABLED

#include <sstream>
#include <stdexcept>
#include <string>

namespace iw::check {

// Deliberately non-inline-named and only defined in audit builds: its
// absence from the Release archive is the zero-overhead proof the CI
// symbol check looks for.
[[noreturn]] inline void iw_audit_failure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::ostringstream os;
  os << "audit invariant violated: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace iw::check

#define IW_ASSERT(cond, msg)                                            \
  do {                                                                  \
    if (!(cond))                                                        \
      ::iw::check::iw_audit_failure(#cond, __FILE__, __LINE__, (msg));  \
  } while (false)

#define IW_AUDIT(stmt) \
  do {                 \
    stmt;              \
  } while (false)

#else  // !IW_AUDIT_ENABLED

#define IW_ASSERT(cond, msg) \
  do {                       \
  } while (false)

#define IW_AUDIT(stmt) \
  do {                 \
  } while (false)

#endif  // IW_AUDIT_ENABLED
