// Human-readable unit formatting for durations, byte counts, and rates.
#pragma once

#include <cstdint>
#include <string>

#include "support/time.hpp"

namespace iw {

/// "1.50 ms", "640 ns", "2.40 us", "3.2 s" — picks the natural scale.
[[nodiscard]] std::string fmt_duration(Duration d);

/// "16 KiB", "2.0 MiB", "8192 B".
[[nodiscard]] std::string fmt_bytes(std::int64_t bytes);

/// "40.0 GB/s" (decimal gigabytes, the convention used in the paper).
[[nodiscard]] std::string fmt_bandwidth(double bytes_per_sec);

/// "12.3 GF/s" for flops-per-second performance numbers (paper Fig. 1).
[[nodiscard]] std::string fmt_gflops(double flops_per_sec);

}  // namespace iw
