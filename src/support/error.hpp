// Lightweight contract checking for idlewave.
//
// IW_REQUIRE  — precondition check, always on (throws std::invalid_argument).
// IW_ASSERT   — internal invariant, always on (throws std::logic_error).
//
// Simulation code favors loud failure over UB: a broken invariant in a
// discrete-event simulation silently corrupts every number downstream.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace iw {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'p')  // "precondition"
    throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace iw

#define IW_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::iw::contract_failure("precondition", #cond, __FILE__, __LINE__,    \
                             (msg));                                       \
  } while (false)

#define IW_ASSERT(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::iw::contract_failure("invariant", #cond, __FILE__, __LINE__,       \
                             (msg));                                       \
  } while (false)
