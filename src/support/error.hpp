// Always-on contract checking for idlewave.
//
// IW_REQUIRE — precondition check, always on (throws std::invalid_argument).
// IW_CHECK   — internal invariant, always on (throws std::logic_error).
//              For cold-path invariants whose failure callers must be able
//              to observe in every build type (capacity exhaustion, API
//              misuse that tests assert on).
//
// Hot-path invariants use IW_ASSERT / IW_AUDIT from support/check.hpp
// (included here for convenience): compiled out in Release, on in Debug
// and under the IDLEWAVE_AUDIT build option.
//
// Simulation code favors loud failure over UB: a broken invariant in a
// discrete-event simulation silently corrupts every number downstream.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "support/check.hpp"

namespace iw {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'p')  // "precondition"
    throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace iw

#define IW_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::iw::contract_failure("precondition", #cond, __FILE__, __LINE__,    \
                             (msg));                                       \
  } while (false)

#define IW_CHECK(cond, msg)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::iw::contract_failure("invariant", #cond, __FILE__, __LINE__,       \
                             (msg));                                       \
  } while (false)
