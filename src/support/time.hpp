// Simulated time for idlewave.
//
// All simulation timestamps and durations are integer nanoseconds wrapped in
// strong types. Integer time keeps the event calendar exactly deterministic
// (no floating-point accumulation drift across platforms), which the
// reproduction relies on: identical seeds must give identical traces.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace iw {

/// A span of simulated time in nanoseconds. Signed so that differences and
/// "lag" quantities are representable; negative durations are legal values
/// for arithmetic but never legal as event-scheduling delays.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock, in nanoseconds since t=0.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  friend constexpr SimTime operator+(SimTime t, Duration d) { return SimTime{t.ns_ + d.ns()}; }
  friend constexpr SimTime operator+(Duration d, SimTime t) { return t + d; }
  friend constexpr SimTime operator-(SimTime t, Duration d) { return SimTime{t.ns_ - d.ns()}; }
  friend constexpr Duration operator-(SimTime a, SimTime b) { return Duration{a.ns_ - b.ns_}; }

  SimTime& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t ns_ = 0;
};

/// Duration literals / factory helpers. Double-valued factories round to the
/// nearest nanosecond, which is far below every timescale in the paper (the
/// finest noise granularity studied is ~0.6 us).
[[nodiscard]] constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
[[nodiscard]] constexpr Duration microseconds(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e3 + (v >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr Duration milliseconds(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e6 + (v >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr Duration seconds(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e9 + (v >= 0 ? 0.5 : -0.5))};
}

}  // namespace iw
