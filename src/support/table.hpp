// Aligned plain-text tables: the figure benches print the paper's series as
// rows so "who wins, by what factor, where crossovers fall" is readable
// straight off the terminal.
#pragma once

#include <string>
#include <vector>

namespace iw {

class TextTable {
 public:
  /// Sets the column headers; defines the column count.
  void columns(std::vector<std::string> headers);

  /// Appends a data row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows are a precondition violation.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table with column alignment and a header rule.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

/// Convenience numeric formatting with fixed decimals.
[[nodiscard]] std::string fmt_fixed(double v, int decimals);

}  // namespace iw
