#include "support/units.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace iw {
namespace {

std::string with_unit(double value, const char* unit, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value << ' ' << unit;
  return os.str();
}

}  // namespace

std::string fmt_duration(Duration d) {
  const double ns = static_cast<double>(d.ns());
  const double mag = std::abs(ns);
  if (mag < 1e3) return with_unit(ns, "ns", 0);
  if (mag < 1e6) return with_unit(ns / 1e3, "us", 2);
  if (mag < 1e9) return with_unit(ns / 1e6, "ms", 2);
  return with_unit(ns / 1e9, "s", 3);
}

std::string fmt_bytes(std::int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (std::abs(b) < 1024.0) return with_unit(b, "B", 0);
  if (std::abs(b) < 1024.0 * 1024.0) return with_unit(b / 1024.0, "KiB", 1);
  if (std::abs(b) < 1024.0 * 1024.0 * 1024.0)
    return with_unit(b / (1024.0 * 1024.0), "MiB", 1);
  return with_unit(b / (1024.0 * 1024.0 * 1024.0), "GiB", 2);
}

std::string fmt_bandwidth(double bytes_per_sec) {
  if (bytes_per_sec < 1e6) return with_unit(bytes_per_sec / 1e3, "KB/s", 1);
  if (bytes_per_sec < 1e9) return with_unit(bytes_per_sec / 1e6, "MB/s", 1);
  return with_unit(bytes_per_sec / 1e9, "GB/s", 1);
}

std::string fmt_gflops(double flops_per_sec) {
  return with_unit(flops_per_sec / 1e9, "GF/s", 2);
}

}  // namespace iw
