// Tiny command-line flag parser for the benches and examples.
//
// Accepts `--key=value`, `--key value`, and boolean `--flag` forms. Unknown
// flags are an error so typos in sweep scripts fail loudly instead of
// silently running the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace iw {

class Cli {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  /// Declares a flag so it passes the unknown-flag check; returns its value.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get_or(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Comma-separated numeric lists for sweep axes: `--np=4,8,16`. Returns
  /// `fallback` when the flag is absent; throws std::invalid_argument on
  /// empty elements ("4,,8"), trailing separators, or non-numeric input.
  [[nodiscard]] std::vector<std::int64_t> get_list_or(
      const std::string& key, std::vector<std::int64_t> fallback) const;
  [[nodiscard]] std::vector<double> get_list_or(
      const std::string& key, std::vector<double> fallback) const;

  /// Int-valued axis lists (`--np=4,8,16`): parses as int64 and range-checks
  /// every element into int, throwing std::invalid_argument on overflow
  /// instead of silently truncating.
  [[nodiscard]] std::vector<int> get_int_list_or(
      const std::string& key, std::vector<int> fallback) const;

  /// Ensures every provided flag is among `known`; throws otherwise.
  void allow_only(const std::vector<std::string>& known) const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace iw
